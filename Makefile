GO ?= go

.PHONY: all build test lint bench-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint mirrors the blocking lint steps in CI exactly: formatting, vet,
# and the repo's own determinism/invariant analyzers (cmd/pdsilint),
# with per-analyzer wall times reported so a regressing analyzer is
# visible. CI sets LINT_BUDGET to gate total lint time; locally it
# defaults to 0 (disabled) since machine speeds vary. Pinned
# third-party tools (staticcheck, govulncheck, shadow) run in CI only,
# because they need a network fetch to install.
LINT_BUDGET ?= 0
lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/pdsilint -time -budget $(LINT_BUDGET) ./...

bench-smoke:
	$(GO) test -run=NONE -bench=GlobalIndex -benchtime=1x ./internal/core/...
	$(GO) test -run=NONE -bench='Quantile|OpTimer' -benchtime=1x ./internal/obs/...
	$(GO) test -run=NONE -bench='EngineSchedule|EngineCancelHeavy' -benchtime=1x ./internal/sim/...
	$(GO) test -run=NONE -bench=BB -benchtime=1x ./internal/bb/...
	$(GO) test -run=NONE -bench=Rebuild -benchtime=1x ./internal/pfs/... ./internal/workload/...
	$(GO) test -run=NONE -bench=Declustered -benchtime=1x ./internal/placement/...
