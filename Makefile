GO ?= go

.PHONY: all build test lint bench-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint mirrors the blocking lint steps in CI exactly: formatting, vet,
# and the repo's own determinism/invariant analyzers (cmd/pdsilint).
# Pinned third-party tools (staticcheck, govulncheck, shadow) run in CI
# only, because they need a network fetch to install.
lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/pdsilint ./...

bench-smoke:
	$(GO) test -run=NONE -bench=GlobalIndex -benchtime=1x ./internal/core/...
	$(GO) test -run=NONE -bench='Quantile|OpTimer' -benchtime=1x ./internal/obs/...
	$(GO) test -run=NONE -bench='EngineSchedule|EngineCancelHeavy' -benchtime=1x ./internal/sim/...
	$(GO) test -run=NONE -bench=BB -benchtime=1x ./internal/bb/...
