// Package plfs is the public API of the PLFS (Parallel Log-structured File
// System) reproduction. PLFS is interposition middleware for checkpoint
// I/O: it decouples a concurrently written shared file into one
// append-only data log and index log per writer, converting arbitrarily
// small, strided, unaligned N-to-1 write patterns into streaming N-to-N
// appends that every parallel file system serves at full bandwidth. The
// logical file's contents are resolved at read time by merging the index
// logs (last writer wins).
//
// Typical use:
//
//	backend := plfs.NewMemBackend()
//	c, _ := plfs.CreateContainer(backend, "/ckpt", plfs.DefaultOptions())
//	w, _ := c.OpenWriter(rank)       // one writer per process, no coordination
//	w.WriteAt(state, myOffset)       // any offset, any size — always an append
//	w.Close()
//	r, _ := c.OpenReader()           // merges every writer's index
//	r.ReadAt(buf, 0)                 // transparent logical view
//
// The implementation lives in repro/internal/core; this package re-exports
// it for library users.
package plfs

import "repro/internal/core"

// Core types, re-exported.
type (
	// Backend is the POSIX-ish storage namespace PLFS runs on top of.
	Backend = core.Backend
	// BackendFile is an append-writable, randomly readable backing file.
	BackendFile = core.BackendFile
	// MemBackend is the in-memory reference backend.
	MemBackend = core.MemBackend
	// Options tunes container layout (hostdir spreading, index coalescing).
	Options = core.Options
	// Container is an open PLFS container — one logical file.
	Container = core.Container
	// Writer is a single process's uncoordinated write handle.
	Writer = core.Writer
	// Reader is the merged, resolved read view of a container.
	Reader = core.Reader
	// IndexEntry is one logical-write record in a writer's index log.
	IndexEntry = core.IndexEntry
	// GlobalIndex is the merged and conflict-resolved container index.
	GlobalIndex = core.GlobalIndex
	// Piece is a resolved mapping of a logical range onto a data log.
	Piece = core.Piece
	// Mount is the FUSE-flavored interface: logical paths transparently
	// become containers, so PLFS-oblivious code gets the speedup too.
	Mount = core.Mount
	// LogicalFile is an open per-process handle through a Mount.
	LogicalFile = core.LogicalFile
	// ReadSeeker adapts a LogicalFile to io.Reader/io.Seeker.
	ReadSeeker = core.ReadSeeker
)

// Errors, re-exported.
var (
	ErrNotExist = core.ErrNotExist
	ErrExist    = core.ErrExist
	ErrClosed   = core.ErrClosed
)

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return core.NewMemBackend() }

// DefaultOptions matches PLFS defaults (32 hostdirs, no coalescing).
func DefaultOptions() Options { return core.DefaultOptions() }

// CreateContainer makes a new container directory tree on the backend.
func CreateContainer(b Backend, path string, opts Options) (*Container, error) {
	return core.CreateContainer(b, path, opts)
}

// OpenContainer opens an existing container.
func OpenContainer(b Backend, path string, opts Options) (*Container, error) {
	return core.OpenContainer(b, path, opts)
}

// IsContainer reports whether path holds a PLFS container.
func IsContainer(b Backend, path string) bool { return core.IsContainer(b, path) }

// BuildGlobalIndex merges raw index entries with last-writer-wins
// resolution; exposed for tooling that inspects containers.
func BuildGlobalIndex(entries []IndexEntry) *GlobalIndex {
	return core.BuildGlobalIndex(entries)
}

// NewMount attaches a PLFS mount at root on the backend, creating missing
// ancestor directories.
func NewMount(b Backend, root string, opts Options) (*Mount, error) {
	return core.NewMount(b, root, opts)
}

// NewReadSeeker wraps an open LogicalFile at position zero.
func NewReadSeeker(f *LogicalFile) *ReadSeeker { return core.NewReadSeeker(f) }
