// Tests exercising the library strictly through the public API, the way a
// downstream user would.
package plfs_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/plfs"
)

func TestPublicContainerRoundTrip(t *testing.T) {
	backend := plfs.NewMemBackend()
	c, err := plfs.CreateContainer(backend, "/ckpt", plfs.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.OpenWriter(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte("public api"), 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if !plfs.IsContainer(backend, "/ckpt") {
		t.Fatal("IsContainer = false")
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 10)
	if _, err := r.ReadAt(buf, 100); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "public api" {
		t.Fatalf("read %q", buf)
	}
	// The first 100 bytes are a hole.
	hole := make([]byte, 100)
	if _, err := r.ReadAt(hole, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 100)) {
		t.Fatal("hole not zero-filled")
	}
}

func TestPublicMount(t *testing.T) {
	backend := plfs.NewMemBackend()
	m, err := plfs.NewMount(backend, "/mnt/plfs", plfs.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("app.out", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("through the mount"), 0); err != nil {
		t.Fatal(err)
	}
	rs := plfs.NewReadSeeker(f)
	data, err := io.ReadAll(rs)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "through the mount" {
		t.Fatalf("ReadAll = %q", data)
	}
}

func TestPublicIndexHelpers(t *testing.T) {
	g := plfs.BuildGlobalIndex([]plfs.IndexEntry{
		{LogicalOffset: 0, Length: 10, Writer: 1, LogOffset: 0, Timestamp: 1},
		{LogicalOffset: 5, Length: 10, Writer: 2, LogOffset: 0, Timestamp: 2},
	})
	if g.Size() != 15 {
		t.Fatalf("Size = %d", g.Size())
	}
	pieces := g.Lookup(0, 15)
	if len(pieces) != 2 || pieces[1].Writer != 2 {
		t.Fatalf("pieces = %+v", pieces)
	}
}

func TestPublicErrors(t *testing.T) {
	backend := plfs.NewMemBackend()
	if _, err := plfs.OpenContainer(backend, "/missing", plfs.DefaultOptions()); err == nil {
		t.Fatal("open missing container should fail")
	}
	c, _ := plfs.CreateContainer(backend, "/c", plfs.DefaultOptions())
	w, _ := c.OpenWriter(0)
	w.Close()
	if _, err := w.WriteAt([]byte("x"), 0); !errors.Is(err, plfs.ErrClosed) {
		t.Fatalf("err = %v, want plfs.ErrClosed", err)
	}
}
