// Incast: reproduce TCP goodput collapse under synchronized reads from a
// growing number of storage servers, then apply the PDSI fix — a 1 ms
// minimum retransmission timeout (plus timer randomization at scale) —
// and watch goodput recover (Figure 9 of the report).
package main

import (
	"fmt"
	"strings"

	"repro/internal/incast"
)

func bar(mbps float64) string {
	n := int(mbps / 25)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}

func main() {
	counts := []int{1, 2, 4, 8, 16, 32, 48}

	fmt.Println("synchronized reads through one 1GbE client port, 64-packet switch buffer")
	fmt.Println()
	fmt.Println("conventional 200ms minimum RTO:")
	for _, r := range incast.Sweep(counts, nil) {
		mbps := r.GoodputBps * 8 / 1e6
		fmt.Printf("  %3d senders %8.1f Mbps %-40s (timeouts: %d)\n",
			r.Params.Senders, mbps, bar(mbps), r.Timeouts)
	}

	fmt.Println()
	fmt.Println("1ms minimum RTO with randomized timers (the SIGCOMM'09 fix):")
	for _, r := range incast.Sweep(counts, func(p *incast.Params) {
		p.MinRTO = 1e-3
		p.RTORandomize = true
	}) {
		mbps := r.GoodputBps * 8 / 1e6
		fmt.Printf("  %3d senders %8.1f Mbps %-40s (timeouts: %d)\n",
			r.Params.Senders, mbps, bar(mbps), r.Timeouts)
	}

	fmt.Println()
	fmt.Println("the collapse mechanism: a sender that loses the tail of its transfer")
	fmt.Println("gets no duplicate ACKs, so only a timeout recovers it — and a 200ms")
	fmt.Println("floor idles the link for ~2000 round trips every time.")
}
