//lint:allowfile goroutine -- the example demonstrates N uncoordinated concurrent writer ranks, the exact workload PLFS exists to absorb

// Quickstart: create a PLFS container, write to it from several
// uncoordinated "ranks" (goroutines), and read the merged logical file
// back — the core PLFS semantics in ~60 lines.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"

	"repro/plfs"
)

func main() {
	backend := plfs.NewMemBackend()
	container, err := plfs.CreateContainer(backend, "/ckpt", plfs.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Eight ranks concurrently write an N-1 strided checkpoint: rank r owns
	// every 8th record. No rank ever waits for another — each writes only
	// to its own data and index logs inside the container.
	const (
		ranks   = 8
		records = 4
		recSize = 32
	)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := container.OpenWriter(int32(r))
			if err != nil {
				log.Fatal(err)
			}
			defer w.Close()
			for i := 0; i < records; i++ {
				offset := int64((i*ranks + r) * recSize)
				payload := bytes.Repeat([]byte{byte('A' + r)}, recSize)
				if _, err := w.WriteAt(payload, offset); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()

	// Read the logical file: PLFS merges every writer's index on open.
	reader, err := container.OpenReader()
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()

	fmt.Printf("logical file size: %d bytes (%d ranks x %d records x %d B)\n",
		reader.Size(), ranks, records, recSize)
	fmt.Printf("index: %d raw entries -> %d resolved extents\n",
		reader.Index().NumEntries(), reader.Index().NumExtents())

	buf := make([]byte, reader.Size())
	if _, err := reader.ReadAt(buf, 0); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("first records: %s...\n", buf[:ranks*recSize/2])

	// Verify the interleaving round-tripped exactly.
	for rec := 0; rec < ranks*records; rec++ {
		want := byte('A' + rec%ranks)
		if buf[rec*recSize] != want {
			log.Fatalf("record %d corrupted: got %c want %c", rec, buf[rec*recSize], want)
		}
	}
	fmt.Println("verified: every rank's strided records read back intact")

	// Flatten materializes the resolved file as a plain flat file.
	n, err := reader.Flatten("/ckpt.flat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flattened container to /ckpt.flat (%d bytes)\n", n)
}
