// Gigadir: grow a GIGA+ directory under a create storm and watch
// partitions split across metadata servers while client maps go stale and
// heal lazily — the scalable-directories exploration of the PDSI report
// (Figure 7).
package main

import (
	"fmt"

	"repro/internal/giga"
)

func main() {
	fmt.Println("GIGA+ create storm: 64 clients inserting 40,000 files")
	fmt.Println()
	fmt.Printf("%8s %16s %12s %10s %12s\n", "servers", "creates/sec", "partitions", "splits", "addr errors")
	var one, sixteen float64
	for _, servers := range []int{1, 2, 4, 8, 16} {
		cfg := giga.DefaultConfig(servers)
		cfg.SplitThreshold = 200
		res := giga.CreateStorm(cfg, 64, 40000)
		fmt.Printf("%8d %16.0f %12d %10d %12d\n",
			servers, res.CreatesPerSecond, res.Partitions, res.Splits, res.AddressingErrors)
		switch servers {
		case 1:
			one = res.CreatesPerSecond
		case 16:
			sixteen = res.CreatesPerSecond
		}
	}
	fmt.Printf("\nscaling 1 -> 16 servers: %.1fx\n", sixteen/one)

	// The ablation: synchronously invalidating every client map on every
	// split (the conventional cache-consistent design) versus GIGA+'s lazy
	// stale maps.
	lazy := giga.DefaultConfig(8)
	lazy.SplitThreshold = 200
	sync := lazy
	sync.SyncInvalidate = true
	lr := giga.CreateStorm(lazy, 64, 40000)
	sr := giga.CreateStorm(sync, 64, 40000)
	fmt.Printf("\nlazy stale maps:        %.0f creates/sec\n", lr.CreatesPerSecond)
	fmt.Printf("sync invalidation:      %.0f creates/sec (%.0f%% of lazy)\n",
		sr.CreatesPerSecond, 100*sr.CreatesPerSecond/lr.CreatesPerSecond)
	fmt.Println("\nGIGA+'s bet: tolerate bounded addressing errors instead of synchronous")
	fmt.Println("invalidation, and file creates scale with metadata servers.")
}
