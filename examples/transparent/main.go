//lint:allowfile goroutine -- the example demonstrates concurrent uncoordinated processes writing through one mount, the workload PLFS exists to absorb

// Transparent: use PLFS through its FUSE-flavored Mount, the interface
// that made PLFS deployable with *no application changes*: an application
// that thinks it's doing plain file I/O gets per-process logs underneath.
package main

import (
	"fmt"
	"io"
	"log"
	"sync"

	"repro/plfs"
)

// checkpointWriter stands in for an application that knows nothing about
// PLFS: it just has something satisfying WriteAt.
type checkpointWriter interface {
	WriteAt(p []byte, off int64) (int, error)
}

// appCheckpoint is the "unmodified application": it writes its strided
// region of a shared checkpoint through a plain interface.
func appCheckpoint(w checkpointWriter, rank, ranks, records int, recSize int64) error {
	payload := make([]byte, recSize)
	for i := range payload {
		payload[i] = byte('0' + rank)
	}
	for i := 0; i < records; i++ {
		off := (int64(i)*int64(ranks) + int64(rank)) * recSize
		if _, err := w.WriteAt(payload, off); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	backend := plfs.NewMemBackend()
	mount, err := plfs.NewMount(backend, "/mnt/plfs", plfs.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	const (
		ranks   = 6
		records = 5
		recSize = int64(64)
	)

	// Every "process" opens the same logical path and writes through it.
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := mount.OpenFile("ckpt/timestep-0042", int32(rank), true)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := appCheckpoint(f, rank, ranks, records, recSize); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()

	// A restart tool later reads the file back as an io.Reader.
	f, err := mount.OpenFile("ckpt/timestep-0042", 999, false)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical checkpoint: %d bytes from %d uncoordinated writers\n", size, ranks)

	data, err := io.ReadAll(plfs.NewReadSeeker(f))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first bytes: %s...\n", data[:ranks*int(recSize)/4])
	for rec := 0; rec < ranks*records; rec++ {
		want := byte('0' + rec%ranks)
		if data[int64(rec)*recSize] != want {
			log.Fatalf("record %d corrupted", rec)
		}
	}
	fmt.Println("verified: the strided interleaving reassembled exactly")
	fmt.Println()
	fmt.Println("the application never imported anything PLFS-specific beyond the")
	fmt.Println("mount handle — that transparency is why LANL could deploy PLFS under")
	fmt.Println("production codes without modifying them.")
}
