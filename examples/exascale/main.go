// Exascale: the PDSI fault-tolerance arithmetic (Figures 4 and 5). Project
// chip counts and MTTI for top500-trend machines, derive the optimal
// checkpoint interval year by year, and find when checkpoint/restart stops
// making forward progress — then compare the report's mitigation options.
package main

import (
	"fmt"

	"repro/internal/failure"
)

func main() {
	proj := failure.ReportProjection(18) // Moore's-law per-chip growth
	const delta, restart = 600.0, 600.0  // 10-minute checkpoint capture

	fmt.Println("balanced-system projection: 1 PFLOP / 20k chips in 2008,")
	fmt.Println("system speed 2x/year, 0.1 interrupts per chip-year, 10 min checkpoints")
	fmt.Println()
	fmt.Printf("%6s %12s %14s %16s %14s %16s\n",
		"year", "chips", "MTTI", "opt interval", "utilization", "process pairs")
	points := failure.BalancedUtilization(proj, delta, restart, 2008, 2020)
	for _, p := range points {
		pp := failure.ProcessPairsUtilization(failure.Daly{Delta: delta, Restart: restart, MTTI: p.MTTI})
		fmt.Printf("%6d %12.0f %11.1f min %13.1f min %14.1f%% %15.1f%%\n",
			p.Year, p.Chips, p.MTTI/60, p.OptimalTau/60, p.Utilization*100, pp*100)
	}
	fmt.Printf("\ncheckpoint/restart utilization crosses 50%% in %d\n",
		failure.CrossingYear(points, 0.5))

	growth := failure.DiskGrowth(1.0, 0.2)
	fmt.Printf("\nstorage-cost corollary: balanced bandwidth growth (100%%/yr) on disks\n")
	fmt.Printf("improving 20%%/yr requires %.0f%%/yr more disks — compounding to %.0fx\n",
		(growth-1)*100, pow(growth, 6))
	fmt.Println("in six years, which is why PDSI judged it unaffordable and built PLFS,")
	fmt.Println("process pairs, and checkpoint compression as the alternatives.")
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}
