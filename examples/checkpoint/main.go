// Checkpoint: run the same N-1 strided application checkpoint against
// three simulated parallel file systems (PanFS-, Lustre-, GPFS-like),
// directly and through PLFS, and report the bandwidth each achieves —
// the experiment that motivated PLFS (Figure 8 of the PDSI report).
package main

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const (
		ranks        = 32
		bytesPerRank = 4 << 20
		recordSize   = 47008 // small, unaligned: the checkpoint pathology
	)

	fmt.Println("workload: ", ranks, "ranks x", bytesPerRank>>20, "MiB each,",
		recordSize, "byte strided records into one shared file")
	fmt.Println()

	// First, look at the pattern itself the way LANL's Ninjat tool renders
	// it: the file as a wrapped array, cells labeled by writing rank.
	tr := trace.SyntheticN1Strided(8, 8, recordSize)
	fmt.Println("Ninjat view of the shared file (8 ranks, '0'-'7'):")
	for _, row := range tr.RenderMap(64, 4) {
		fmt.Println(" ", row)
	}
	fmt.Println(" pattern classified as:", trace.Classify(tr))
	fmt.Println()

	fmt.Printf("%-14s %18s %16s %10s\n", "file system", "direct N-1 MB/s", "PLFS MB/s", "speedup")
	for _, cfg := range pfs.AllPresets(8) {
		direct, viaPLFS, ratio := workload.Speedup(cfg, ranks, bytesPerRank, recordSize)
		fmt.Printf("%-14s %18.1f %16.1f %9.1fx\n",
			cfg.Name, direct.Bandwidth/1e6, viaPLFS.Bandwidth/1e6, ratio)
	}
	fmt.Println()
	fmt.Println("PLFS rewrites the strided pattern into per-rank sequential logs, so the")
	fmt.Println("same hardware that crawled under false sharing and read-modify-write")
	fmt.Println("streams at full speed — no application changes required.")
}
