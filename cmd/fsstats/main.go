// Command fsstats reproduces the PDSI-released fsstats survey tool
// (CMU/Panasas; used for the Figure 3 data releases): it surveys a file
// population and prints the per-size-bucket table plus an ASCII CDF, for
// one synthetic system or the whole eleven-system comparison.
//
//	fsstats                 # survey all eleven Figure 3 populations
//	fsstats -system viz1    # one system, with its CDF curve
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fsstats"
)

func human(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fK", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

func plotCDF(rep fsstats.Report, width int) {
	xs, ys := rep.CDFPoints(24)
	for i := range xs {
		bar := int(ys[i] * float64(width))
		fmt.Printf("  %10s |%s %5.1f%%\n", human(xs[i]), strings.Repeat("#", bar), ys[i]*100)
	}
}

func main() {
	var (
		system = flag.String("system", "", "survey one system (default: all)")
		files  = flag.Int("files", 40000, "files per synthetic population")
		seed   = flag.Int64("seed", 100, "generator seed")
	)
	flag.Parse()

	specs := fsstats.ElevenSystems(*files)
	if *system != "" {
		for i, spec := range specs {
			if spec.Name != *system {
				continue
			}
			rep := fsstats.Survey(spec.Name, fsstats.Generate(spec, *seed+int64(i)))
			fmt.Printf("%s: %d files, %.1f GB total, median %s, mean %s\n",
				rep.Name, rep.Count, float64(rep.TotalBytes)/(1<<30),
				human(rep.MedianSize), human(rep.MeanSize))
			for _, th := range fsstats.Thresholds {
				fmt.Printf("  files <= %-6s %5.1f%%   bytes in files > %-6s %5.1f%%\n",
					human(float64(th)), rep.FractionFilesUnder[th]*100,
					human(float64(th)), rep.FractionBytesOver[th]*100)
			}
			fmt.Println("\nfile size CDF:")
			plotCDF(rep, 50)
			return
		}
		fmt.Fprintf(os.Stderr, "unknown -system %q; known:", *system)
		for _, spec := range specs {
			fmt.Fprintf(os.Stderr, " %s", spec.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	fmt.Printf("%-16s %10s %10s %10s %12s %12s\n",
		"system", "files", "median", "mean", "%files<=64K", "%bytes>1M")
	for i, spec := range specs {
		rep := fsstats.Survey(spec.Name, fsstats.Generate(spec, *seed+int64(i)))
		fmt.Printf("%-16s %10d %10s %10s %11.1f%% %11.1f%%\n",
			rep.Name, rep.Count, human(rep.MedianSize), human(rep.MeanSize),
			rep.FractionFilesUnder[64<<10]*100, rep.FractionBytesOver[1<<20]*100)
	}
	fmt.Println("\nthe survey's shape: most files are small; most bytes live in big files")
}
