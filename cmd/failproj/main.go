// Command failproj runs the PDSI failure analyses: synthetic LANL-style
// trace generation and the interrupts-vs-chips fit (Figure 4), the MTTI
// and utilization projections (Figures 4/5), and the FAST'07 disk fleet
// study (no bathtub; field rates far above datasheet).
package main

import (
	"flag"
	"fmt"

	"repro/internal/failure"
	"repro/internal/stats"
)

func main() {
	var (
		chipDoubling = flag.Float64("chip-doubling-months", 18, "per-chip speed doubling period")
		delta        = flag.Float64("checkpoint-seconds", 600, "checkpoint capture time")
		fleetN       = flag.Int("drives", 10000, "disk fleet size for the FAST'07 study")
		years        = flag.Int("years", 5, "disk fleet observation years")
		seed         = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()

	// --- Figure 4: interrupts linear in chips.
	fmt.Println("== synthetic LANL fleet: interrupts vs chips ==")
	specs := failure.LANLStyleFleet(22, 0.25, 0.8, *seed)
	var sys []failure.SystemStats
	for i, spec := range specs {
		s := failure.Analyze(spec, failure.GenerateTrace(spec, 9, *seed+int64(i)), 9)
		sys = append(sys, s)
	}
	fit, err := failure.FitInterruptsVsChips(sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fit: interrupts/yr = %.3f*chips %+.1f (R2 %.3f) across %d systems\n",
		fit.Slope, fit.Intercept, fit.R2, len(sys))

	// --- Figures 4/5: projections.
	proj := failure.ReportProjection(*chipDoubling)
	fmt.Printf("\n== projection (chip speed 2x every %.0f months) ==\n", *chipDoubling)
	points := failure.BalancedUtilization(proj, *delta, *delta, 2008, 2020)
	fmt.Printf("%6s %12s %12s %14s\n", "year", "chips", "MTTI (min)", "utilization")
	for _, p := range points {
		fmt.Printf("%6d %12.0f %12.1f %13.1f%%\n", p.Year, p.Chips, p.MTTI/60, p.Utilization*100)
	}
	fmt.Printf("50%% utilization crossing: %d\n", failure.CrossingYear(points, 0.5))

	// --- FAST'07 disk study.
	fmt.Printf("\n== disk fleet (%d drives, %d years) ==\n", *fleetN, *years)
	for _, class := range []failure.DriveClass{failure.EnterpriseClass(), failure.NearlineClass()} {
		fleet := failure.SimulateFleet(class, *fleetN, *years, *seed)
		fmt.Printf("%-11s datasheet AFR %.2f%%  observed AFR %.2f%%  ARR by year:",
			class.Name, class.DatasheetAFR()*100, failure.ObservedAFR(fleet)*100)
		for _, y := range fleet {
			fmt.Printf(" %.1f%%", y.ARR*100)
		}
		fmt.Println()
	}
	gaps := failure.ReplacementInterarrivals(failure.EnterpriseClass(), 2000, *years, *seed)
	w, err := stats.FitWeibull(gaps)
	if err == nil {
		fmt.Printf("replacement interarrival Weibull fit: shape %.2f scale %.0f h (CoV %.2f)\n",
			w.Shape, w.Scale, stats.Summarize(gaps).CoefficientVar)
	}
	fmt.Println("\nfindings mirrored: no infant-mortality bathtub (ARR climbs with age),")
	fmt.Println("field rates several times datasheet, enterprise ~ nearline.")
}
