// Command plfsbench measures checkpoint bandwidth for a chosen access
// pattern on a simulated parallel file system, with or without PLFS
// interposition, and (with -indexbench) wall-clock timings for the PLFS
// global-index build — the read-back cost the write path defers.
//
// Examples:
//
//	plfsbench -fs lustre -servers 8 -ranks 64 -mb 4 -record 47008
//	plfsbench -fs panfs -pattern nn
//	plfsbench -sweep          # rank sweep comparing all patterns
//	plfsbench -indexbench -entries 1048576 -writers 64
//	plfsbench -sweep -json BENCH_plfs.json
//	plfsbench -pattern nn -mtbf 8 -checkpoints 4 -compute 0.5
//	plfsbench -pattern nn -mtbf 8 -ec-k 4 -ec-m 2 -ec-declustering 0.5
//	plfsbench -corrupt-rate 20 -scrub 600 -verify=false
//	plfsbench -pattern nn -bb-mode back -bb-nodes 2 -bb-capacity-mb 32 -bb-drain-mbps 100
//	plfsbench -pattern nn -bb-mode back -mtbf 8   # buffered rounds under OSS crashes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// writeOut streams write into the named file ("-" for stdout, empty
// skips). Exits non-zero on I/O errors so CI catches them.
func writeOut(path, what string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	var err error
	if path == "-" {
		err = write(os.Stdout)
	} else {
		var f *os.File
		f, err = os.Create(path)
		if err == nil {
			err = write(f)
			if e := f.Close(); err == nil {
				err = e
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", what, err)
		os.Exit(1)
	}
}

// writeObs dumps the metrics snapshot, latency report, time series, and
// trace to the named files (empty names skip).
func writeObs(reg *obs.Registry, tr *obs.Tracer, metricsPath, reportPath, tsPath, tracePath string) {
	if metricsPath != "" {
		writeOut(metricsPath, "metrics", reg.WriteJSON)
	}
	if reportPath != "" {
		snap := reg.Snapshot()
		writeOut(reportPath, "report", func(w io.Writer) error { return obs.WriteReport(w, snap) })
	}
	if tsPath != "" {
		writeOut(tsPath, "timeseries", reg.WriteSeriesCSV)
	}
	if tracePath != "" {
		writeOut(tracePath, "trace", tr.WriteJSON)
	}
}

func fsConfig(name string, servers int) (pfs.Config, bool) {
	switch name {
	case "panfs":
		return pfs.PanFSLike(servers), true
	case "lustre":
		return pfs.LustreLike(servers), true
	case "gpfs":
		return pfs.GPFSLike(servers), true
	}
	return pfs.Config{}, false
}

// patternResult is one simulated-checkpoint data point in -json output.
type patternResult struct {
	FS            string  `json:"fs"`
	Pattern       string  `json:"pattern"`
	Ranks         int     `json:"ranks"`
	MBPerRank     int64   `json:"mb_per_rank"`
	RecordBytes   int64   `json:"record_bytes"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	ElapsedSimSec float64 `json:"elapsed_sim_sec"`
	MetadataOps   int64   `json:"metadata_ops"`
}

// indexBenchResult is the -indexbench data point: wall-clock cost of
// turning per-writer index logs back into one global index.
type indexBenchResult struct {
	Entries        int     `json:"entries"`
	Writers        int     `json:"writers"`
	Hostdirs       int     `json:"hostdirs"`
	IngestWorkers  int     `json:"ingest_workers"`
	Extents        int     `json:"extents"`
	OpenSec        float64 `json:"open_sec"`
	MergeSec       float64 `json:"merge_sec"`
	OpenEntriesPS  float64 `json:"open_entries_per_sec"`
	MergeEntriesPS float64 `json:"merge_entries_per_sec"`
}

// benchJSON is the machine-readable result file (-json) future PRs diff as
// a BENCH_plfs.json trajectory.
type benchJSON struct {
	Results    []patternResult   `json:"results,omitempty"`
	IndexBench *indexBenchResult `json:"index_bench,omitempty"`
}

func writeJSONFile(path string, v any) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		buf = append(buf, '\n')
		err = os.WriteFile(path, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing json: %v\n", err)
		os.Exit(1)
	}
}

// runIndexBench builds an N-1 strided container with small records, then
// times (a) the full OpenReader — parallel hostdir ingest plus the
// sweep-line merge — and (b) the merge alone on an identical entry set.
func runIndexBench(entries, writers, ingestWorkers int, reg *obs.Registry) indexBenchResult {
	const rec = 8
	backend := core.NewMemBackend()
	opts := core.Options{NumHostdirs: 32, IngestWorkers: ingestWorkers, Metrics: reg}
	c, err := core.CreateContainer(backend, "/bench", opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indexbench: %v\n", err)
		os.Exit(1)
	}
	buf := make([]byte, rec)
	perWriter := entries / writers
	for w := 0; w < writers; w++ {
		wr, err := c.OpenWriter(int32(w))
		if err != nil {
			fmt.Fprintf(os.Stderr, "indexbench: %v\n", err)
			os.Exit(1)
		}
		for i := 0; i < perWriter; i++ {
			if _, err := wr.WriteAt(buf, int64((i*writers+w)*rec)); err != nil {
				fmt.Fprintf(os.Stderr, "indexbench: %v\n", err)
				os.Exit(1)
			}
		}
		if err := wr.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "indexbench: %v\n", err)
			os.Exit(1)
		}
	}

	sw := obs.StartStopwatch()
	r, err := c.OpenReader()
	openDur := sw.Elapsed()
	if err != nil {
		fmt.Fprintf(os.Stderr, "indexbench: %v\n", err)
		os.Exit(1)
	}
	defer r.Close()

	raw := make([]core.IndexEntry, 0, perWriter*writers)
	ts := uint64(0)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			ts++
			raw = append(raw, core.IndexEntry{
				LogicalOffset: int64((i*writers + w) * rec),
				Length:        rec,
				Writer:        int32(w),
				LogOffset:     int64(i * rec),
				Timestamp:     ts,
			})
		}
	}
	sw = obs.StartStopwatch()
	g := core.BuildGlobalIndex(raw)
	mergeDur := sw.Elapsed()

	n := r.Index().NumEntries()
	res := indexBenchResult{
		Entries:       n,
		Writers:       writers,
		Hostdirs:      opts.NumHostdirs,
		IngestWorkers: ingestWorkers,
		Extents:       g.NumExtents(),
		OpenSec:       openDur.Seconds(),
		MergeSec:      mergeDur.Seconds(),
	}
	if openDur > 0 {
		res.OpenEntriesPS = float64(n) / openDur.Seconds()
	}
	if mergeDur > 0 {
		res.MergeEntriesPS = float64(len(raw)) / mergeDur.Seconds()
	}
	return res
}

// runCorrupt executes the single-pattern checkpoint under silent data
// corruption: latent sector errors arrive on the servers at the given
// rate over a one-hour dwell between write and read-back, optionally
// swept by periodic scrubs, with read-path checksums toggled by -verify.
func runCorrupt(cfg pfs.Config, p workload.Pattern, ranks int, mbEach, record int64,
	ratePerHour, scrubSec float64, verify bool, seed int64, shards int, reg *obs.Registry, tr *obs.Tracer) {
	const dwell = 3600.0 // seconds of exposure between checkpoint and read-back
	cfg.Checksums = verify
	perServer := int64(ranks) * (mbEach << 20) / int64(cfg.NumServers)
	events := failure.DrawLSE(failure.LSESpec{
		Disks:         cfg.NumServers,
		CapacityBytes: perServer,
		MTBC:          dwell / ratePerHour,
		Shape:         1,
		TornFraction:  0.2,
		Horizon:       dwell,
	}, seed)
	res := workload.RunIntegrity(cfg, workload.IntegritySpec{
		Spec: workload.Spec{
			Ranks: ranks, BytesPerRank: mbEach << 20, RecordSize: record,
			Pattern: p, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
		},
		Events:        events,
		Expose:        sim.Time(dwell),
		ScrubInterval: sim.Time(scrubSec),
		Shards:        shards,
	}, reg, tr)
	st := res.Stats
	fmt.Printf("file system:   %s (%d servers), %.2f corruptions/drive-hour, checksums %v\n",
		cfg.Name, cfg.NumServers, ratePerHour, verify)
	fmt.Printf("pattern:       %s, %d ranks x %d MiB, %.0f s dwell\n", p, ranks, mbEach, dwell)
	fmt.Printf("write:         %v, %.1f MB/s aggregate\n", res.Write.Elapsed, res.Write.Bandwidth/1e6)
	fmt.Printf("read-back:     %v, %d ops flagged\n", res.ReadElapsed, res.FlaggedReads)
	fmt.Printf("corruption:    %d injected, %d unrepaired at read-back\n", st.Injected, res.UnrepairedAtRead)
	fmt.Printf("scrub:         %d passes, %d stripe units verified\n", res.ScrubPasses, st.ScrubbedUnits)
	fmt.Printf("integrity:     %d detected, %d repaired, %d unrecoverable, %d silent reads\n",
		st.Detected, st.Repaired, st.Unrecoverable, st.SilentReads)
}

// runFaulty executes the single-pattern checkpoint under a deterministic
// fault plan: servers crash with exponential interarrivals of the given
// MTBF while the application alternates compute and checkpoint rounds,
// retrying failed ops with capped backoff.
func runFaulty(cfg pfs.Config, bcfg *bb.Config, p workload.Pattern, ranks int, mbEach, record int64,
	mtbf, downtime, computeSec float64, ckpts int, seed int64, shards int, reg *obs.Registry, tr *obs.Tracer) {
	spec := workload.Spec{
		Ranks: ranks, BytesPerRank: mbEach << 20, RecordSize: record,
		Pattern: p, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
	}
	// A clean run sizes the fault horizon: compute plus a generous
	// multiple of the healthy capture time per round.
	clean := workload.RunFaults(cfg, workload.FaultSpec{Spec: spec, Checkpoints: 1, Shards: shards}, nil, nil)
	horizon := float64(ckpts) * (computeSec + 8*float64(clean.Elapsed) + downtime)
	plan := failure.DrawOSSFaults(failure.OSSFaultSpec{
		Servers:  cfg.NumServers,
		MTBF:     mtbf,
		Shape:    1,
		Downtime: downtime,
		Horizon:  horizon,
	}, seed)
	res := workload.RunFaults(cfg, workload.FaultSpec{
		Spec:         spec,
		Checkpoints:  ckpts,
		ComputeTime:  sim.Time(computeSec),
		Plan:         plan,
		MaxRetries:   6,
		RetryBackoff: sim.Time(5e-3),
		MaxBackoff:   sim.Time(0.1),
		BB:           bcfg,
		Shards:       shards,
	}, reg, tr)
	fmt.Printf("file system:   %s (%d servers), per-server MTBF %.1f s, downtime %.1f s\n",
		cfg.Name, cfg.NumServers, mtbf, downtime)
	if bcfg != nil {
		printBBLines(bcfg, res)
	}
	fmt.Printf("pattern:       %s, %d ranks x %d MiB x %d checkpoints\n", p, ranks, mbEach, ckpts)
	fmt.Printf("healthy ckpt:  %v\n", clean.Elapsed)
	fmt.Printf("faulty ckpts:  %v total (%.2fx slowdown)\n",
		res.Elapsed, float64(res.Elapsed)/(float64(clean.Elapsed)*float64(ckpts)))
	fmt.Printf("utilization:   %.3f over %v wall clock\n", res.Utilization, res.WallClock)
	fmt.Printf("faults:        %d crashes, %d recoveries, %d failed ops, %d degraded reads\n",
		res.Faults.Crashes, res.Faults.Recoveries, res.Faults.FailedOps, res.Faults.DegradedReads)
	fmt.Printf("client:        %d retries, %d dropped ops\n", res.Retries, res.DroppedOps)
}

// printBBLines reports the burst-buffer tier's shape and accounting for
// any buffered run.
func printBBLines(bcfg *bb.Config, res workload.FaultResult) {
	fmt.Printf("burst buffer:  %d nodes x %d MiB flash (%s), %s, drain %.0f MB/s\n",
		bcfg.Nodes, bcfg.CapacityBytes()>>20, bcfg.Flash.Name, bcfg.Mode, bcfg.DrainBandwidth/1e6)
	moved := res.BB.DrainedBytes // write-back: async drains; write-through: sync forwards
	if bcfg.Mode == bb.WriteThrough {
		moved = res.BB.ForwardedBytes
	}
	fmt.Printf("tier:          %d B absorbed, %d to FS, %d stalls, peak occupancy %.2f\n",
		res.BB.AbsorbedBytes, moved, res.BB.Stalls, res.BB.PeakOccupancy)
	if res.BB.LostBytes > 0 || res.BB.TornDrains > 0 || res.BB.DroppedDrainBytes > 0 {
		fmt.Printf("tier faults:   %d dirty bytes lost, %d torn drains, %d drain bytes dropped\n",
			res.BB.LostBytes, res.BB.TornDrains, res.BB.DroppedDrainBytes)
	}
	fmt.Printf("drained at:    %v sim time (tail past the last checkpoint overlaps compute)\n", res.DrainedAt)
}

// runBuffered executes fault-free compute+checkpoint rounds through a
// burst-buffer tier and reports the latency hiding against the same
// rounds on the direct path.
func runBuffered(cfg pfs.Config, bcfg *bb.Config, p workload.Pattern, ranks int, mbEach, record int64,
	computeSec float64, ckpts, shards int, reg *obs.Registry, tr *obs.Tracer) {
	spec := workload.Spec{
		Ranks: ranks, BytesPerRank: mbEach << 20, RecordSize: record,
		Pattern: p, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
	}
	direct := workload.RunFaults(cfg, workload.FaultSpec{
		Spec: spec, Checkpoints: ckpts, ComputeTime: sim.Time(computeSec), Shards: shards,
	}, nil, nil)
	res := workload.RunFaults(cfg, workload.FaultSpec{
		Spec: spec, Checkpoints: ckpts, ComputeTime: sim.Time(computeSec), BB: bcfg, Shards: shards,
	}, reg, tr)
	fmt.Printf("file system:   %s (%d servers)\n", cfg.Name, cfg.NumServers)
	printBBLines(bcfg, res)
	fmt.Printf("pattern:       %s, %d ranks x %d MiB x %d checkpoints\n", p, ranks, mbEach, ckpts)
	fmt.Printf("direct ckpts:  %v\n", direct.Elapsed)
	fmt.Printf("buffered:      %v (%.2fx faster application-visible)\n",
		res.Elapsed, float64(direct.Elapsed)/float64(res.Elapsed))
	fmt.Printf("utilization:   %.3f buffered vs %.3f direct\n", res.Utilization, direct.Utilization)
}

func pattern(name string) (workload.Pattern, bool) {
	switch name {
	case "n1", "strided":
		return workload.N1Strided, true
	case "segmented":
		return workload.N1Segmented, true
	case "nn":
		return workload.NN, true
	case "plfs":
		return workload.PLFSPattern, true
	}
	return 0, false
}

func main() {
	var (
		fsName     = flag.String("fs", "panfs", "file system preset: panfs, lustre, gpfs")
		servers    = flag.Int("servers", 8, "number of I/O servers")
		ranks      = flag.Int("ranks", 32, "application ranks")
		mbEach     = flag.Int64("mb", 4, "checkpoint MiB per rank")
		record     = flag.Int64("record", 47008, "application record size in bytes")
		pat        = flag.String("pattern", "n1", "pattern: n1, segmented, nn, plfs")
		sweep      = flag.Bool("sweep", false, "sweep ranks {8,16,32,64,128} across all patterns")
		indexBench = flag.Bool("indexbench", false, "time the PLFS global-index build (ingest + merge) instead of a checkpoint simulation")
		entries    = flag.Int("entries", 1<<20, "indexbench: total index entries")
		writers    = flag.Int("writers", 64, "indexbench: writer (rank) count")
		ingestW    = flag.Int("ingest-workers", 0, "indexbench: parallel ingest workers (0 = GOMAXPROCS)")
		mtbf       = flag.Float64("mtbf", 0, "per-server MTBF in seconds; > 0 injects OSS crashes into the (non-sweep) run")
		corrupt    = flag.Float64("corrupt-rate", 0, "silent corruptions per drive-hour; > 0 runs write/dwell/read-back under latent sector errors")
		scrubSec   = flag.Float64("scrub", 0, "background scrub interval in seconds during the -corrupt-rate dwell (0 = no scrubbing)")
		verify     = flag.Bool("verify", true, "verify per-stripe-unit checksums on read during -corrupt-rate runs")
		downtime   = flag.Float64("downtime", 0.5, "crash downtime in seconds (0 = permanent failure)")
		faultSeed  = flag.Int64("fault-seed", 42, "seed for the deterministic fault draw")
		ckpts      = flag.Int("checkpoints", 4, "compute+checkpoint rounds under -mtbf")
		ecK        = flag.Int("ec-k", 0, "erasure coding: data fragments per redundancy group (0 = legacy parity-neighbour model)")
		ecM        = flag.Int("ec-m", 0, "erasure coding: parity fragments per group (with -ec-k)")
		ecRatio    = flag.Float64("ec-declustering", 1, "erasure coding: declustering window as a fraction of the server population, in (0,1]")
		shards     = flag.Int("shards", 0, "run the simulation on a sharded cluster of this many event queues (0 = single engine); outputs are byte-identical for any value")
		bbMode     = flag.String("bb-mode", "off", "burst-buffer tier between ranks and the FS: off, back (write-back), through (write-through)")
		bbNodes    = flag.Int("bb-nodes", 2, "burst-buffer node count (with -bb-mode)")
		bbCapMB    = flag.Int64("bb-capacity-mb", 32, "flash capacity per burst-buffer node in MiB (with -bb-mode)")
		bbDrain    = flag.Float64("bb-drain-mbps", 100, "burst-buffer drain bandwidth to the FS in MB/s (with -bb-mode)")
		computeSec = flag.Float64("compute", 0.5, "simulated compute seconds between checkpoints under -mtbf")
		jsonPath   = flag.String("json", "", "write machine-readable results (JSON) to this file")
		metrics    = flag.String("metrics", "", "write a deterministic metrics snapshot (JSON) to this file")
		report     = flag.String("report", "", "write a latency/SLO dashboard (exact quantiles, stage attribution, bottlenecks) to this file, or '-' for stdout; enables per-op stage timers")
		timeseries = flag.String("timeseries", "", "write sim-time series as CSV to this file; enables windowed sampling")
		tsWindow   = flag.Float64("ts-window", 0.1, "sim-time series window in seconds (with -timeseries)")
		trace      = flag.String("trace", "", "write a Chrome trace-event file (Perfetto/chrome://tracing) to this file")
	)
	flag.Parse()

	cfg, ok := fsConfig(*fsName, *servers)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -fs %q\n", *fsName)
		os.Exit(2)
	}
	if *ecK > 0 || *ecM > 0 {
		cfg.Redundancy = pfs.Redundancy{K: *ecK, M: *ecM, Declustering: *ecRatio}
		if err := cfg.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}

	var bbCfg *bb.Config
	switch *bbMode {
	case "off":
	case "back", "through":
		c := bb.DefaultConfig(*bbNodes)
		if *bbMode == "through" {
			c.Mode = bb.WriteThrough
		}
		c.Flash.UserPages = int(*bbCapMB << 20 / c.Flash.PageSize)
		c.DrainBandwidth = *bbDrain * 1e6
		if err := c.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		bbCfg = &c
	default:
		fmt.Fprintf(os.Stderr, "unknown -bb-mode %q (off, back, through)\n", *bbMode)
		os.Exit(2)
	}

	var reg *obs.Registry
	var tr *obs.Tracer
	if *metrics != "" || *report != "" || *timeseries != "" {
		reg = obs.NewRegistry()
	}
	if *report != "" {
		reg.EnableOpTimers()
	}
	if *timeseries != "" {
		reg.EnableTimeSeries(*tsWindow)
	}
	if *trace != "" {
		tr = obs.NewTracer()
	}
	defer writeObs(reg, tr, *metrics, *report, *timeseries, *trace)

	if *indexBench {
		res := runIndexBench(*entries, *writers, *ingestW, reg)
		effWorkers := *ingestW
		if effWorkers <= 0 {
			effWorkers = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("index build:   %d entries from %d writers over %d hostdirs\n",
			res.Entries, res.Writers, res.Hostdirs)
		fmt.Printf("ingest:        %d workers (requested %d)\n", effWorkers, *ingestW)
		fmt.Printf("open reader:   %v ingest+merge (%.2fM entries/s)\n",
			time.Duration(res.OpenSec*float64(time.Second)).Round(time.Microsecond), res.OpenEntriesPS/1e6)
		fmt.Printf("merge only:    %v sweep-line (%.2fM entries/s)\n",
			time.Duration(res.MergeSec*float64(time.Second)).Round(time.Microsecond), res.MergeEntriesPS/1e6)
		fmt.Printf("extents:       %d resolved\n", res.Extents)
		writeJSONFile(*jsonPath, benchJSON{IndexBench: &res})
		return
	}

	var jsonResults []patternResult
	addResult := func(p workload.Pattern, r int, res workload.Result) {
		jsonResults = append(jsonResults, patternResult{
			FS: cfg.Name, Pattern: p.String(), Ranks: r,
			MBPerRank: *mbEach, RecordBytes: *record,
			BandwidthMBps: res.Bandwidth / 1e6,
			ElapsedSimSec: float64(res.Elapsed),
			MetadataOps:   res.MetadataOps,
		})
	}

	if *sweep {
		fmt.Printf("sweep on %s (%d servers), %d MiB/rank, %d B records\n",
			cfg.Name, *servers, *mbEach, *record)
		fmt.Printf("%8s %16s %16s %16s %16s\n", "ranks", "N-1 MB/s", "segmented MB/s", "N-N MB/s", "PLFS MB/s")
		for _, r := range []int{8, 16, 32, 64, 128} {
			row := []float64{}
			for _, p := range []workload.Pattern{workload.N1Strided, workload.N1Segmented, workload.NN, workload.PLFSPattern} {
				res := workload.RunProbed(cfg, workload.Spec{
					Ranks: r, BytesPerRank: *mbEach << 20, RecordSize: *record,
					Pattern: p, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
				}, reg, tr)
				row = append(row, res.Bandwidth/1e6)
				addResult(p, r, res)
			}
			fmt.Printf("%8d %16.1f %16.1f %16.1f %16.1f\n", r, row[0], row[1], row[2], row[3])
		}
		writeJSONFile(*jsonPath, benchJSON{Results: jsonResults})
		return
	}

	p, ok := pattern(*pat)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -pattern %q\n", *pat)
		os.Exit(2)
	}
	if *corrupt > 0 {
		runCorrupt(cfg, p, *ranks, *mbEach, *record, *corrupt, *scrubSec, *verify, *faultSeed, *shards, reg, tr)
		return
	}
	if *mtbf > 0 {
		runFaulty(cfg, bbCfg, p, *ranks, *mbEach, *record, *mtbf, *downtime, *computeSec, *ckpts, *faultSeed, *shards, reg, tr)
		return
	}
	if bbCfg != nil {
		runBuffered(cfg, bbCfg, p, *ranks, *mbEach, *record, *computeSec, *ckpts, *shards, reg, tr)
		return
	}
	res := workload.RunProbed(cfg, workload.Spec{
		Ranks: *ranks, BytesPerRank: *mbEach << 20, RecordSize: *record,
		Pattern: p, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
	}, reg, tr)
	addResult(p, *ranks, res)
	fmt.Printf("file system:   %s (%d servers)\n", cfg.Name, *servers)
	fmt.Printf("pattern:       %s\n", p)
	fmt.Printf("ranks:         %d x %d MiB (records of %d B)\n", *ranks, *mbEach, *record)
	fmt.Printf("elapsed:       %v\n", res.Elapsed)
	fmt.Printf("bandwidth:     %.1f MB/s aggregate\n", res.Bandwidth/1e6)
	fmt.Printf("metadata ops:  %d\n", res.MetadataOps)
	writeJSONFile(*jsonPath, benchJSON{Results: jsonResults})
}
