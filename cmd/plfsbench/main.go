// Command plfsbench measures checkpoint bandwidth for a chosen access
// pattern on a simulated parallel file system, with or without PLFS
// interposition.
//
// Examples:
//
//	plfsbench -fs lustre -servers 8 -ranks 64 -mb 4 -record 47008
//	plfsbench -fs panfs -pattern nn
//	plfsbench -sweep          # rank sweep comparing all patterns
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/workload"
)

// writeObs dumps the metrics snapshot and trace to the named files (empty
// names skip). Exits non-zero on I/O errors so CI catches them.
func writeObs(reg *obs.Registry, tr *obs.Tracer, metricsPath, tracePath string) {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err == nil {
			err = reg.WriteJSON(f)
			if e := f.Close(); err == nil {
				err = e
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err == nil {
			err = tr.WriteJSON(f)
			if e := f.Close(); err == nil {
				err = e
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
	}
}

func fsConfig(name string, servers int) (pfs.Config, bool) {
	switch name {
	case "panfs":
		return pfs.PanFSLike(servers), true
	case "lustre":
		return pfs.LustreLike(servers), true
	case "gpfs":
		return pfs.GPFSLike(servers), true
	}
	return pfs.Config{}, false
}

func pattern(name string) (workload.Pattern, bool) {
	switch name {
	case "n1", "strided":
		return workload.N1Strided, true
	case "segmented":
		return workload.N1Segmented, true
	case "nn":
		return workload.NN, true
	case "plfs":
		return workload.PLFSPattern, true
	}
	return 0, false
}

func main() {
	var (
		fsName  = flag.String("fs", "panfs", "file system preset: panfs, lustre, gpfs")
		servers = flag.Int("servers", 8, "number of I/O servers")
		ranks   = flag.Int("ranks", 32, "application ranks")
		mbEach  = flag.Int64("mb", 4, "checkpoint MiB per rank")
		record  = flag.Int64("record", 47008, "application record size in bytes")
		pat     = flag.String("pattern", "n1", "pattern: n1, segmented, nn, plfs")
		sweep   = flag.Bool("sweep", false, "sweep ranks {8,16,32,64,128} across all patterns")
		metrics = flag.String("metrics", "", "write a deterministic metrics snapshot (JSON) to this file")
		trace   = flag.String("trace", "", "write a Chrome trace-event file (Perfetto/chrome://tracing) to this file")
	)
	flag.Parse()

	cfg, ok := fsConfig(*fsName, *servers)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -fs %q\n", *fsName)
		os.Exit(2)
	}

	var reg *obs.Registry
	var tr *obs.Tracer
	if *metrics != "" {
		reg = obs.NewRegistry()
	}
	if *trace != "" {
		tr = obs.NewTracer()
	}
	defer writeObs(reg, tr, *metrics, *trace)

	if *sweep {
		fmt.Printf("sweep on %s (%d servers), %d MiB/rank, %d B records\n",
			cfg.Name, *servers, *mbEach, *record)
		fmt.Printf("%8s %16s %16s %16s %16s\n", "ranks", "N-1 MB/s", "segmented MB/s", "N-N MB/s", "PLFS MB/s")
		for _, r := range []int{8, 16, 32, 64, 128} {
			row := []float64{}
			for _, p := range []workload.Pattern{workload.N1Strided, workload.N1Segmented, workload.NN, workload.PLFSPattern} {
				res := workload.RunProbed(cfg, workload.Spec{
					Ranks: r, BytesPerRank: *mbEach << 20, RecordSize: *record,
					Pattern: p, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
				}, reg, tr)
				row = append(row, res.Bandwidth/1e6)
			}
			fmt.Printf("%8d %16.1f %16.1f %16.1f %16.1f\n", r, row[0], row[1], row[2], row[3])
		}
		return
	}

	p, ok := pattern(*pat)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -pattern %q\n", *pat)
		os.Exit(2)
	}
	res := workload.RunProbed(cfg, workload.Spec{
		Ranks: *ranks, BytesPerRank: *mbEach << 20, RecordSize: *record,
		Pattern: p, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
	}, reg, tr)
	fmt.Printf("file system:   %s (%d servers)\n", cfg.Name, *servers)
	fmt.Printf("pattern:       %s\n", p)
	fmt.Printf("ranks:         %d x %d MiB (records of %d B)\n", *ranks, *mbEach, *record)
	fmt.Printf("elapsed:       %v\n", res.Elapsed)
	fmt.Printf("bandwidth:     %.1f MB/s aggregate\n", res.Bandwidth/1e6)
	fmt.Printf("metadata ops:  %d\n", res.MetadataOps)
}
