// Command pdsilint is the repository's determinism multichecker: it
// runs the internal/lint analyzer suite — walltime, globalrand,
// maporder, metricname, errwrap — over the module and exits non-zero
// on any finding. CI gates on it; run it locally with:
//
//	go run ./cmd/pdsilint ./...
//	go run ./cmd/pdsilint ./internal/pfs ./internal/core
//
// Suppress an individual finding with a trailing //lint:allow <name>
// comment (policy in DESIGN.md, "Determinism invariants and static
// enforcement"). Unlike go vet, pdsilint also lints _test.go files:
// golden-snapshot tests are part of the determinism contract.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pdsilint [-list] [patterns]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdsilint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdsilint:", err)
		os.Exit(2)
	}
	findings, err := lint.RunPatterns(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdsilint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pdsilint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
