// Command pdsilint is the repository's determinism multichecker: it
// runs the internal/lint analyzer suite — the syntactic checks
// (walltime, globalrand, maporder, metricname, errwrap) and the
// flow-aware ones (goroutine, shardown, errflow, walltime-reach) —
// over the module and exits non-zero on any finding. CI gates on it;
// run it locally with:
//
//	go run ./cmd/pdsilint ./...
//	go run ./cmd/pdsilint ./internal/pfs ./internal/core
//
// Flags: -list enumerates the analyzers; -json emits the findings as a
// deterministic JSON object on stdout (file paths module-relative, so
// two checkouts produce identical bytes); -time reports per-analyzer
// wall time on stderr; -budget fails the run (exit 3) when the total
// load+analysis wall time exceeds the given duration, which CI uses to
// keep the lint gate from quietly absorbing the build budget.
//
// Suppress an individual finding with a trailing //lint:allow <name>
// comment, or a whole sanctioned file with //lint:allowfile <name> --
// reason (policy in DESIGN.md, "Determinism invariants and static
// enforcement"). Unlike go vet, pdsilint also lints _test.go files:
// golden-snapshot tests are part of the determinism contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/engine"
	"repro/internal/obs"
)

// jsonFinding is one finding in -json output. Fields are a flat,
// stable-ordered struct (no maps) so the bytes are deterministic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as deterministic JSON on stdout")
	timing := flag.Bool("time", false, "report per-analyzer wall time on stderr")
	budget := flag.Duration("budget", 0, "exit 3 if load+analysis wall time exceeds this (0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: pdsilint [-list] [-json] [-time] [-budget d] [patterns]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdsilint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdsilint:", err)
		os.Exit(2)
	}

	// Load once, then run analyzers one at a time over the shared units
	// so each analyzer's wall time is its own. Findings are merged back
	// into the canonical order, so the output is byte-identical to a
	// single combined run.
	sw := obs.StartStopwatch()
	units, err := lint.LoadUnits(root, flag.Args())
	loadTime := sw.Elapsed()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdsilint:", err)
		os.Exit(2)
	}

	type lap struct {
		name string
		d    time.Duration
	}
	laps := []lap{{"(load)", loadTime}}
	total := loadTime
	var findings []engine.Finding
	for _, a := range lint.All() {
		sw := obs.StartStopwatch()
		fs, err := engine.Run(units, []*engine.Analyzer{a})
		d := sw.Elapsed()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdsilint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
		laps = append(laps, lap{a.Name, d})
		total += d
	}
	engine.SortFindings(findings)

	if *timing {
		for _, l := range laps {
			fmt.Fprintf(os.Stderr, "pdsilint: %-14s %8.1fms\n", l.name, float64(l.d.Microseconds())/1000)
		}
		fmt.Fprintf(os.Stderr, "pdsilint: total %v\n", total.Round(time.Millisecond))
	}

	if *jsonOut {
		report := jsonReport{Findings: make([]jsonFinding, 0, len(findings)), Count: len(findings)}
		for _, f := range findings {
			file := f.Position.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     file,
				Line:     f.Position.Line,
				Col:      f.Position.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "pdsilint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}

	exit := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pdsilint: %d finding(s)\n", len(findings))
		exit = 1
	}
	if *budget > 0 && total > *budget {
		fmt.Fprintf(os.Stderr, "pdsilint: analysis took %v, over the %v budget\n",
			total.Round(time.Millisecond), *budget)
		if exit == 0 {
			exit = 3
		}
	}
	os.Exit(exit)
}
