// Command pdsirepro regenerates every table and figure of the PDSI final
// report's evaluation from the simulated substrates in this repository.
//
// Usage:
//
//	pdsirepro -fig all        # everything (the EXPERIMENTS.md content)
//	pdsirepro -fig 8          # just the PLFS speedup experiment
//	pdsirepro -fig 9,11,tape  # a comma-separated subset
//
// Known experiment ids: 2 3 4 5 7 8 9 10 11 12 13 14 tape place diag
// search restart power security prefetch trace pnfs fsva posix disc index
// faults integrity scale bb rebuild.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/archive"
	"repro/internal/bb"
	"repro/internal/cloudfs"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/diskreduce"
	"repro/internal/failure"
	"repro/internal/flash"
	"repro/internal/fsstats"
	"repro/internal/fsva"
	"repro/internal/giga"
	"repro/internal/hdf5sim"
	"repro/internal/incast"
	"repro/internal/mdindex"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/placement"
	"repro/internal/pnfs"
	"repro/internal/posixext"
	"repro/internal/prefetch"
	"repro/internal/scalatrace"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/tape"
	"repro/internal/workload"

	"repro/internal/argon"
)

var experiments = map[string]func(){
	"2":         fig2,
	"3":         fig3,
	"4":         fig4,
	"5":         fig5,
	"7":         fig7,
	"8":         fig8,
	"9":         fig9,
	"10":        fig10,
	"11":        fig11,
	"12":        fig12,
	"13":        fig13,
	"14":        fig14,
	"tape":      figTape,
	"place":     figPlace,
	"diag":      figDiag,
	"search":    figSearch,
	"restart":   figRestart,
	"power":     figPower,
	"security":  figSecurity,
	"prefetch":  figPrefetch,
	"trace":     figTraceComp,
	"pnfs":      figPNFS,
	"fsva":      figFSVA,
	"posix":     figPosixExt,
	"disc":      figDiskReduce,
	"index":     figIndex,
	"faults":    figFaults,
	"integrity": figIntegrity,
	"scale":     figScale,
	"bb":        figBB,
	"rebuild":   figRebuild,
}

var order = []string{
	"2", "3", "4", "5", "7", "8", "9", "10", "11", "12", "13", "14",
	"tape", "place", "diag", "search", "restart", "power", "security",
	"prefetch", "trace", "pnfs", "fsva", "posix", "disc", "index",
	"faults", "integrity", "scale", "bb", "rebuild",
}

// probeReg and probeTr are the process-wide observability probe, non-nil
// when -metrics / -trace are given. Simulation-backed experiments thread
// them into their engines; successive experiments accumulate into the
// same registry and trace.
var (
	probeReg *obs.Registry
	probeTr  *obs.Tracer
)

// probeShards > 0 runs the simulation-backed fault/integrity
// experiments on a sim.Cluster of that many shards; outputs are
// byte-identical to the single-engine path for any value (the CI
// shard-determinism smoke diffs them).
var probeShards int

// Scale-experiment knobs (the 'scale' experiment only).
var (
	scalePods   int
	scaleRanks  int
	scaleOSS    int
	scaleRounds int
)

// Rebuild-experiment knobs (the 'rebuild' experiment only).
var (
	rebuildDrives int
	rebuildOSS    int
	rebuildRounds int
)

func main() {
	figs := flag.String("fig", "all", "comma-separated experiment ids, or 'all'")
	metrics := flag.String("metrics", "", "write a deterministic metrics snapshot (JSON) to this file")
	trace := flag.String("trace", "", "write a Chrome trace-event file (Perfetto/chrome://tracing) to this file")
	report := flag.String("report", "", "write a latency/SLO dashboard (exact quantiles, stage attribution, bottlenecks) to this file, or '-' for stdout; enables per-op stage timers")
	timeseries := flag.String("timeseries", "", "write sim-time series as CSV to this file; enables windowed sampling")
	tsWindow := flag.Float64("ts-window", 0.1, "sim-time series window in seconds (with -timeseries)")
	flag.IntVar(&probeShards, "shards", 0, "run simulation-backed experiments on a sharded cluster (0 = single engine); outputs are byte-identical for any value")
	flag.IntVar(&scalePods, "scale-pods", 8, "scale experiment: number of file-system pods")
	flag.IntVar(&scaleRanks, "scale-ranks", 32, "scale experiment: checkpointing ranks per pod")
	flag.IntVar(&scaleOSS, "scale-oss", 4, "scale experiment: object storage servers per pod")
	flag.IntVar(&scaleRounds, "scale-rounds", 2, "scale experiment: globally barriered checkpoint rounds")
	flag.IntVar(&rebuildDrives, "rebuild-drives", 10240, "rebuild experiment: simulated drive population at the large sweep scale")
	flag.IntVar(&rebuildOSS, "rebuild-oss", 64, "rebuild experiment: object storage servers (drives) per pod")
	flag.IntVar(&rebuildRounds, "rebuild-rounds", 3, "rebuild experiment: foreground checkpoint rounds per pod")
	flag.Parse()
	var run []string
	if *figs == "all" {
		run = order
	} else {
		for _, f := range strings.Split(*figs, ",") {
			f = strings.TrimSpace(f)
			if _, ok := experiments[f]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", f, strings.Join(order, " "))
				os.Exit(2)
			}
			run = append(run, f)
		}
	}
	if *metrics != "" || *report != "" || *timeseries != "" {
		probeReg = obs.NewRegistry()
	}
	if *report != "" {
		probeReg.EnableOpTimers()
	}
	if *timeseries != "" {
		probeReg.EnableTimeSeries(*tsWindow)
	}
	if *trace != "" {
		probeTr = obs.NewTracer()
	}
	for _, f := range run {
		experiments[f]()
		fmt.Println()
	}
	if *metrics != "" {
		if err := writeFile(*metrics, probeReg.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *report != "" {
		snap := probeReg.Snapshot()
		if err := writeFile(*report, func(w io.Writer) error { return obs.WriteReport(w, snap) }); err != nil {
			fmt.Fprintf(os.Stderr, "writing report: %v\n", err)
			os.Exit(1)
		}
	}
	if *timeseries != "" {
		if err := writeFile(*timeseries, probeReg.WriteSeriesCSV); err != nil {
			fmt.Fprintf(os.Stderr, "writing timeseries: %v\n", err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		if err := writeFile(*trace, probeTr.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeFile creates path and streams write into it; "-" writes to
// stdout.
func writeFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if e := f.Close(); err == nil {
		err = e
	}
	return err
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

func mb(bps float64) float64 { return bps / 1e6 }

// fig2: S3D weak-scaling checkpoint time and predicted 12-hour fraction.
func fig2() {
	header("Figure 2 — S3D checkpoint I/O, weak scaling (c2h4-style problem)")
	fsCfg := pfs.PanFSLike(8)
	points := workload.S3DWeakScaling(fsCfg, workload.DefaultS3D(), []int{16, 32, 64, 128, 256})
	fmt.Printf("%8s %16s %14s %22s\n", "ranks", "ckpt time (s)", "I/O fraction", "12h predicted I/O frac")
	for _, p := range points {
		fmt.Printf("%8d %16.2f %14.3f %22.3f\n",
			p.Ranks, float64(p.CheckpointTime), p.FractionIO, p.Predicted12hFraction)
	}
	fmt.Println("shape check: I/O fraction grows with scale (1% at small N -> tens of % at large N)")
}

// fig3: CDF of file sizes across eleven surveyed file systems.
func fig3() {
	header("Figure 3 — CDF of file sizes across eleven non-archival file systems")
	fmt.Printf("%-16s %10s %12s %12s %14s %16s\n",
		"system", "files", "median", "p90", "%files<=64K", "%bytes>1M")
	for i, spec := range fsstats.ElevenSystems(40000) {
		rep := fsstats.Survey(spec.Name, fsstats.Generate(spec, int64(100+i)))
		fmt.Printf("%-16s %10d %12.0f %12.0f %14.1f %16.1f\n",
			rep.Name, rep.Count, rep.MedianSize, rep.P90Size,
			rep.FractionFilesUnder[64<<10]*100, rep.FractionBytesOver[1<<20]*100)
	}
	fmt.Println("shape check: medians are small (KBs) while most bytes sit in >1MB files")
}

// fig4: interrupts linear in chips; MTTI projection.
func fig4() {
	header("Figure 4 — interrupts linear in #chips; projected MTTI vs year")
	specs := failure.LANLStyleFleet(22, 0.25, 0.8, 11)
	var sys []failure.SystemStats
	for i, spec := range specs {
		sys = append(sys, failure.Analyze(spec, failure.GenerateTrace(spec, 9, int64(100+i)), 9))
	}
	fit, err := failure.FitInterruptsVsChips(sys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet fit: interrupts/yr = %.3f * chips + %.1f   (R2 = %.3f)\n",
		fit.Slope, fit.Intercept, fit.R2)
	fmt.Printf("\n%6s %18s %18s %18s\n", "year", "MTTI (18mo chip 2x)", "MTTI (24mo)", "MTTI (30mo)")
	for y := 2008; y <= 2020; y += 2 {
		m18 := failure.ReportProjection(18).MTTISeconds(y)
		m24 := failure.ReportProjection(24).MTTISeconds(y)
		m30 := failure.ReportProjection(30).MTTISeconds(y)
		fmt.Printf("%6d %15.1f min %15.1f min %15.1f min\n", y, m18/60, m24/60, m30/60)
	}
	fmt.Println("shape check: MTTI falls from hours toward minutes approaching exascale")
}

// fig5: effective application utilization under balanced growth.
func fig5() {
	header("Figure 5 — effective application utilization (checkpoint/restart)")
	fmt.Printf("%6s %14s %14s %14s %16s\n", "year", "util (18mo)", "util (24mo)", "util (30mo)", "process pairs")
	series := map[float64][]failure.UtilizationPoint{}
	for _, m := range []float64{18, 24, 30} {
		series[m] = failure.BalancedUtilization(failure.ReportProjection(m), 600, 600, 2008, 2020)
	}
	for i := range series[18] {
		p18, p24, p30 := series[18][i], series[24][i], series[30][i]
		pp := failure.ProcessPairsUtilization(failure.Daly{Delta: 600, Restart: 600, MTTI: p18.MTTI})
		fmt.Printf("%6d %14.3f %14.3f %14.3f %16.3f\n",
			p18.Year, p18.Utilization, p24.Utilization, p30.Utilization, pp)
	}
	for _, m := range []float64{18, 24, 30} {
		fmt.Printf("50%% crossing (chip 2x every %.0f mo): %d\n",
			m, failure.CrossingYear(series[m], 0.5))
	}
	bbSeries := failure.BurstBufferProjection(failure.ReportProjection(18), 600, 600, 10, 2008, 2020)
	fmt.Printf("with a 10x flash burst buffer the crossing moves to: %d\n",
		failure.CrossingYear(bbSeries, 0.5))
	fmt.Println("shape check: utilization crosses below 50% before 2014")
}

// fig7: GIGA+ create throughput scaling.
func fig7() {
	header("Figure 7 — GIGA+ directory create throughput vs metadata servers")
	fmt.Printf("%8s %16s %12s %10s %12s %12s\n",
		"servers", "creates/sec", "partitions", "splits", "addr errs", "imbalance")
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		cfg := giga.DefaultConfig(s)
		cfg.SplitThreshold = 200
		res := giga.CreateStorm(cfg, 64, 40000)
		fmt.Printf("%8d %16.0f %12d %10d %12d %12.2f\n",
			s, res.CreatesPerSecond, res.Partitions, res.Splits, res.AddressingErrors, res.LoadImbalance)
	}
	base := giga.SingleServerBaseline(giga.DefaultConfig(1).InsertTime, giga.DefaultConfig(1).RPC, 64, 40000)
	fmt.Printf("conventional single metadata server baseline: %.0f creates/sec\n", base.CreatesPerSecond)
	fmt.Println("shape check: near-linear scaling with servers; baseline flat")
}

// fig8: PLFS checkpoint speedups on three file system presets.
func fig8() {
	header("Figure 8 — PLFS checkpoint bandwidth vs direct N-1 strided writes")
	fmt.Printf("%-14s %16s %16s %16s %10s\n",
		"file system", "N-1 direct MB/s", "PLFS MB/s", "N-N MB/s", "speedup")
	for _, cfg := range pfs.AllPresets(8) {
		base := workload.Spec{Ranks: 32, BytesPerRank: 4 << 20, RecordSize: 47008, Pattern: workload.N1Strided}
		direct := workload.RunProbed(cfg, base, probeReg, probeTr)
		viaSpec := base
		viaSpec.Pattern = workload.PLFSPattern
		viaSpec.PLFSHostdirs = 32
		viaSpec.PLFSIndexFlushEvery = 64
		viaPLFS := workload.RunProbed(cfg, viaSpec, probeReg, probeTr)
		nnSpec := base
		nnSpec.Pattern = workload.NN
		nn := workload.RunProbed(cfg, nnSpec, probeReg, probeTr)
		var ratio float64
		if direct.Bandwidth > 0 {
			ratio = viaPLFS.Bandwidth / direct.Bandwidth
		}
		fmt.Printf("%-14s %16.1f %16.1f %16.1f %9.1fx\n",
			cfg.Name, mb(direct.Bandwidth), mb(viaPLFS.Bandwidth), mb(nn.Bandwidth), ratio)
	}
	fmt.Println("shape check: order-of-magnitude speedups (LANL saw 5-28x in production,")
	fmt.Println("10x Chombo, ~100x FLASH); PLFS lands within a small factor of native N-N")
}

// fig9: TCP incast goodput collapse and the low-RTO fix.
func fig9() {
	header("Figure 9 — TCP incast: goodput vs number of synchronized senders")
	counts := []int{1, 2, 4, 8, 16, 32, 48, 64}
	fmt.Printf("%8s %20s %20s %22s\n", "senders", "200ms RTO (Mbps)", "1ms RTO (Mbps)", "1ms+random (Mbps)")
	slow := incast.SweepProbed(counts, nil, probeReg, probeTr)
	fast := incast.SweepProbed(counts, func(p *incast.Params) { p.MinRTO = 1e-3 }, probeReg, probeTr)
	rnd := incast.SweepProbed(counts, func(p *incast.Params) { p.MinRTO = 1e-3; p.RTORandomize = true }, probeReg, probeTr)
	for i, n := range counts {
		fmt.Printf("%8d %20.1f %20.1f %22.1f\n",
			n, slow[i].GoodputBps*8/1e6, fast[i].GoodputBps*8/1e6, rnd[i].GoodputBps*8/1e6)
	}
	fmt.Println("shape check: default-RTO goodput collapses >10x past the buffer limit;")
	fmt.Println("1ms minimum RTO restores most of the link bandwidth")
}

// fig10: Argon performance insulation.
func fig10() {
	header("Figure 10 — Argon: insulation of a stream vs a random-I/O tenant")
	fmt.Printf("%-20s %18s %18s\n", "policy", "stream frac of solo", "random frac of solo")
	for _, pol := range []argon.Policy{argon.Interleave, argon.TimesliceCoSched} {
		cfg := argon.DefaultConfig(1, pol)
		cfg.Duration = 10
		ins := argon.Measure(cfg)
		fmt.Printf("%-20s %18.2f %18.2f\n", pol, ins.StreamFraction, ins.RandFraction)
	}
	fmt.Println("\ncluster co-scheduling (8 servers, striped synchronous client):")
	fmt.Printf("%-20s %16s\n", "policy", "stream MB/s")
	for _, pol := range []argon.Policy{argon.TimesliceUnsync, argon.TimesliceCoSched} {
		cfg := argon.DefaultConfig(8, pol)
		cfg.Duration = 10
		res := argon.Run(cfg)
		fmt.Printf("%-20s %16.1f\n", pol, mb(res.StreamBps))
	}
	fmt.Println("shape check: timeslicing gives each tenant ~fair share minus a <10% guard")
	fmt.Println("band; co-scheduled slices recover ~90% of best case vs unsynchronized")
}

// fig11: Table 1 + flash vs disk characteristics.
func fig11() {
	header("Figure 11 / Table 1 — flash device characteristics vs magnetic disk")
	fmt.Printf("%-32s %12s %14s %14s %14s\n",
		"device", "seq MB/s", "rd 4K IOPS", "wr 4K fresh", "wr 4K steady")
	for _, spec := range flash.AllTable1Devices() {
		fmt.Printf("%-32s %12.0f %14.0f %14.0f %14.0f\n",
			spec.Name,
			flash.SequentialWriteRate(spec)/1e6,
			flash.RandomReadRate(spec, 2000, 3),
			flash.FreshRandomWriteRate(spec, 5),
			flash.SteadyRandomWriteRate(spec, 5))
	}
	fmt.Println("magnetic disk reference: ~70-90 MB/s sequential, ~100-150 random 4K IOPS")
	fmt.Println("shape check: flash random reads 100-1000x disk; sustained random writes")
	fmt.Println("degrade sharply once the pre-erased pool drains")
}

// fig12: Hadoop-on-PVFS vs HDFS.
func fig12() {
	header("Figure 12 — Hadoop text search: HDFS vs PVFS shim variants")
	fmt.Printf("%-30s %12s %14s %10s %10s\n", "stack", "job (s)", "scan MB/s", "local", "remote")
	for _, r := range cloudfs.Compare(cloudfs.DefaultParams(16, 64)) {
		fmt.Printf("%-30s %12.2f %14.1f %10d %10d\n",
			r.Mode, float64(r.Elapsed), mb(r.Throughput), r.LocalReads, r.RemoteReads)
	}
	fmt.Println("shape check: naive shim > 2x slower than HDFS; readahead closes most of")
	fmt.Println("the gap; exposing replica layout reaches parity")
}

// fig13: HDF5 optimization stack.
func fig13() {
	header("Figure 13 — cumulative HDF5 optimization benefits (Chombo, GCRM)")
	fsCfg := pfs.LustreLike(8)
	for _, code := range []hdf5sim.Code{hdf5sim.Chombo, hdf5sim.GCRM} {
		fmt.Printf("%s:\n", code)
		for _, r := range hdf5sim.RunStack(fsCfg, code, 32, 2<<20) {
			fmt.Printf("  %-26s %12.1f MB/s %10.1fx\n", r.Level, mb(r.Bandwidth), r.SpeedupVsBaseline)
		}
	}
	fmt.Println("shape check: each optimization compounds; full stack reaches an order of")
	fmt.Println("magnitude (report: up to 33x) and approaches the file system's peak")
}

// fig14: sustained random write degradation.
func fig14() {
	header("Figure 14 — sustained 4K random write IOPS over time per device")
	for i, spec := range flash.AllTable1Devices() {
		res := flash.SustainedRandomWriteProbed(spec, 1.0, 60, 5, 99,
			probeReg, fmt.Sprintf("flash.dev%02d", i))
		fmt.Printf("%-32s ", spec.Name)
		for _, w := range res {
			fmt.Printf("%8.0f", w.IOPS)
		}
		fmt.Printf("   (IOPS per 5s window; WA end %.2f)\n", res[len(res)-1].WriteAmp)
	}
	fmt.Println("shape check: SATA-class (low spare area) devices fall off a cliff;")
	fmt.Println("PCIe-class (high overprovisioning) decline far more gently")
}

// figTape: NERSC tape verification statistics.
func figTape() {
	header("Tape verification — NERSC media migration (§5.2.3)")
	migration := tape.Campaign(tape.NERSCArchive(), 5, 42)
	appliance := tape.Campaign(tape.NERSCArchive(), 1, 42)
	fmt.Printf("tapes read:                  %d (%.1f TB)\n", migration.Tapes, migration.DataGB/1e3)
	fmt.Printf("fully readable (5 retries):  %d (%.3f%%)\n",
		migration.FullyRead, migration.ReadabilityFraction*100)
	fmt.Printf("unreadable after retries:    %d tapes, %d files, %.1f GB\n",
		migration.Unreadable, migration.LostFiles, migration.LostGB)
	fmt.Printf("single-pass appliance flags: %d (overstates by %.1fx)\n",
		appliance.Unreadable, float64(appliance.Unreadable)/float64(migration.Unreadable))
	fmt.Println("shape check: ~99.95% of media fully readable; appliance needs 3-5 rereads")
}

// figPlace: placement strategy comparison.
func figPlace() {
	header("Placement — strategy comparison (§4.2.3 parallel layout study)")
	chunks := placement.CheckpointChunks(256, 64, 1<<20)
	small := placement.CheckpointChunks(4096, 1, 1<<20)
	fmt.Printf("%-20s %12s %16s %14s\n", "strategy", "imbalance", "small-file imbal", "moved 8->9")
	for _, s := range []placement.Strategy{placement.RoundRobin{}, placement.FileOffsetStripe{}, placement.CRUSHLike{}} {
		ev := placement.Evaluate(s, chunks, 8, 1)
		evs := placement.Evaluate(s, small, 8, 1)
		moved := placement.MovedFraction(s, chunks, 8, 9, 1)
		fmt.Printf("%-20s %12.2f %16.2f %14.2f\n", s.Name(), ev.Imbalance, evs.Imbalance, moved)
	}
	fmt.Println("shape check: round-robin convoys small files on server 0; CRUSH-like")
	fmt.Println("placement moves only ~1/n of data on growth")
}

// figSearch: partitioned metadata search vs flat scan.
func figSearch() {
	header("Metadata search — Spyglass-style partitioned index (§4.2.2)")
	records := make([]mdindex.FileMeta, 0, 200000)
	for p := 0; p < 500; p++ {
		for f := 0; f < 400; f++ {
			ext := []string{".h5", ".nc", ".dat", ".txt"}[p%4]
			records = append(records, mdindex.FileMeta{
				Path:  fmt.Sprintf("/proj%03d/run%02d/f%05d%s", p, f%8, f, ext),
				Size:  int64((p*37 + f*13) % (1 << 24)),
				MTime: int64(p*1000 + f),
				Owner: uint32(p % 50),
				Ext:   ext,
			})
		}
	}
	ix := mdindex.Build(records, 1)
	owner := uint32(8)
	maxSize := int64(4096)
	q := mdindex.Query{Owner: &owner, Ext: ".h5", MaxSize: &maxSize}

	// Warm both paths, then time several iterations for stable numbers.
	flat := mdindex.FlatScan(records, q)
	idx := ix.Search(q)
	const iters = 20
	swFlat := obs.StartStopwatch()
	for i := 0; i < iters; i++ {
		mdindex.FlatScan(records, q)
	}
	flatDur := swFlat.Elapsed() / iters
	swIdx := obs.StartStopwatch()
	for i := 0; i < iters; i++ {
		ix.Search(q)
	}
	idxDur := swIdx.Elapsed() / iters

	fmt.Printf("corpus:          %d files in %d partitions\n", ix.Len(), ix.Partitions())
	fmt.Printf("query:           owner=8 AND ext=.h5 AND size<=4K -> %d matches (flat scan agrees: %v)\n",
		len(idx), len(idx) == len(flat))
	fmt.Printf("flat scan:       %v over %d records\n", flatDur, len(records))
	perQuery := ix.RecordsScanned / (iters + 1)
	fmt.Printf("partitioned:     %v over %d records (%.0fx wall, %.0fx fewer records)\n",
		idxDur, perQuery, float64(flatDur)/float64(idxDur),
		float64(len(records))/float64(perQuery))
	fmt.Println("shape check: 10-1000x over a database-style scan on selective queries")
}

// figRestart: PLFS read-back performance.
func figRestart() {
	header("Restart — PLFS read-back (PDSW'09 '...And eat it too')")
	cfg := pfs.PanFSLike(8)
	spec := workload.Spec{
		Ranks: 16, BytesPerRank: 4 << 20, RecordSize: 47008,
		Pattern: workload.PLFSPattern, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
	}
	uni := workload.RunRestartProbed(cfg, spec, workload.UniformRestart, probeReg, probeTr)
	sh := workload.RunRestartProbed(cfg, spec, workload.ShiftedRestart, probeReg, probeTr)
	direct := workload.RunRestartProbed(cfg, workload.Spec{
		Ranks: 16, BytesPerRank: 4 << 20, RecordSize: 47008, Pattern: workload.N1Strided,
	}, workload.UniformRestart, probeReg, probeTr)
	fmt.Printf("%-34s %12s %14s\n", "scenario", "time (s)", "MB/s moved")
	fmt.Printf("%-34s %12.2f %14.1f\n", "PLFS write + uniform restart", float64(uni.Elapsed), mb(uni.Bandwidth))
	fmt.Printf("%-34s %12.2f %14.1f\n", "PLFS write + shifted restart", float64(sh.Elapsed), mb(sh.Bandwidth))
	fmt.Printf("%-34s %12.2f %14.1f\n", "direct N-1 write + restart", float64(direct.Elapsed), mb(direct.Bandwidth))
	fmt.Println("shape check: uniform restart streams each rank's own log; shifted")
	fmt.Println("restart pays scattered log reads but still beats the direct pattern")
}

// figIndex: PLFS global-index build scaling (sweep-line merge).
func figIndex() {
	header("Index build — sweep-line global-index merge, N-1 strided entries")
	fmt.Printf("%12s %12s %14s %16s\n", "entries", "extents", "build (ms)", "entries/s")
	for _, n := range []int{1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		entries := make([]core.IndexEntry, n)
		const writers, rec = 64, 4096
		for i := range entries {
			w := i % writers
			entries[i] = core.IndexEntry{
				LogicalOffset: int64(i) * rec,
				Length:        rec,
				Writer:        int32(w),
				LogOffset:     int64(i/writers) * rec,
				Timestamp:     uint64(i + 1),
			}
		}
		sw := obs.StartStopwatch()
		g := core.BuildGlobalIndex(entries)
		dur := sw.Elapsed()
		fmt.Printf("%12d %12d %14.1f %16.0f\n",
			n, g.NumExtents(), float64(dur.Microseconds())/1e3, float64(n)/dur.Seconds())
	}
	fmt.Println("shape check: wall time grows ~n log n (the pre-rewrite overlay was")
	fmt.Println("quadratic: 32k entries took seconds, 1M was infeasible); timings are")
	fmt.Println("measured on this host, so only the scaling shape is reproducible")
}

// figPower: power-managed archival storage.
func figPower() {
	header("Archival power — Pergamum-style spin-down archive (§4.2.4/UCSC)")
	fmt.Printf("%-18s %12s %12s %12s %14s\n",
		"policy", "avg watts", "spin-ups", "sleep frac", "p99 latency")
	for _, pol := range []archive.Policy{archive.Striped, archive.Packed, archive.SemanticGroups} {
		res := archive.Run(archive.DefaultConfig(16, pol))
		fmt.Printf("%-18s %12.1f %12d %12.2f %14v\n",
			pol, res.AvgWatts, res.SpinUps, res.DiskSleepFrac, res.P99Latency)
	}
	fmt.Printf("always-on array baseline: %.1f watts\n",
		archive.AlwaysOnWatts(archive.DefaultConfig(16, archive.Packed)))
	fmt.Println("shape check: spin-down archives run far below always-on power;")
	fmt.Println("semantic grouping minimizes wake-ups; striping wakes everything")
}

// figSecurity: Maat capability overheads.
func figSecurity() {
	header("Security — scalable capabilities for parallel file systems (§4.2.4)")
	fmt.Printf("%-24s %18s %18s\n", "scheme", "shared-file ovhd", "private-file ovhd")
	for _, mode := range []security.Mode{security.PerFileCaps, security.ExtendedCaps} {
		sh := security.Overhead(security.DefaultConfig(32, mode, true))
		pr := security.Overhead(security.DefaultConfig(32, mode, false))
		fmt.Printf("%-24s %17.1f%% %17.1f%%\n", mode, sh*100, pr*100)
	}
	fmt.Println("shape check: Maat's extended capabilities keep overhead at 1-2%")
	fmt.Println("typical and under 6-7% on shared-file/shared-disk workloads")
}

// figPrefetch: GMC multi-order prefetching.
func figPrefetch() {
	header("Prefetching — Global Multi-order Context analysis (§5.4.2)")
	stream := prefetch.MixedPhases(64, 4, 12)
	fmt.Printf("%8s %12s %12s\n", "order", "accuracy", "coverage")
	for _, order := range []int{1, 2, 3} {
		m := prefetch.Evaluate(stream, order)
		fmt.Printf("%8d %12.3f %12.3f\n", m.Order, m.Accuracy, m.Coverage)
	}
	m1 := prefetch.Evaluate(stream, 1)
	m3 := prefetch.Evaluate(stream, 3)
	fmt.Printf("GMC (order 3) coverage gain over order 1: %.0f%%\n",
		(m3.Coverage/m1.Coverage-1)*100)
	fmt.Println("shape check: multi-order context raises coverage while keeping")
	fmt.Println("accuracy (the paper's layout/prefetch work reported >= 24% benefit)")
}

// figTraceComp: ScalaTrace-style trace compression.
func figTraceComp() {
	header("Trace compression — ScalaTrace-style loop folding (§5.4.2)")
	loop := []scalatrace.Event{
		{Op: "open", File: 1, Size: 0},
		{Op: "write", File: 1, Delta: 47008, Size: 47008},
		{Op: "write", File: 1, Delta: 47008, Size: 47008},
		{Op: "close", File: 1, Size: 0},
	}
	fmt.Printf("%12s %14s %14s %12s\n", "iterations", "events", "stored terms", "ratio")
	for _, iters := range []int{10, 100, 1000, 10000} {
		var events []scalatrace.Event
		for i := 0; i < iters; i++ {
			events = append(events, loop...)
		}
		tr := scalatrace.Compress(events, 64)
		fmt.Printf("%12d %14d %14d %11.0fx\n",
			iters, tr.Len(), tr.TermCount(), tr.CompressionRatio())
	}
	fmt.Println("shape check: stored size tracks program structure, not run length")
}

// figPNFS: parallel NFS scaling vs plain NFS.
func figPNFS() {
	header("pNFS — parallel NFS vs the NAS bottleneck (§2.2)")
	fmt.Printf("%8s %16s %16s %20s\n", "servers", "nfs MB/s", "pnfs MB/s", "pnfs no-layout-cache")
	counts := []int{1, 2, 4, 8, 16}
	nfs := pnfs.ScalingSweep(16, counts, pnfs.PlainNFS)
	pn := pnfs.ScalingSweep(16, counts, pnfs.PNFSFiles)
	nc := pnfs.ScalingSweep(16, counts, pnfs.PNFSNoCache)
	for i, n := range counts {
		fmt.Printf("%8d %16.1f %16.1f %20.1f\n",
			n, mb(nfs[i].AggregateBps), mb(pn[i].AggregateBps), mb(nc[i].AggregateBps))
	}
	fmt.Println("shape check: plain NFS is pinned at one server's NIC; pNFS scales with")
	fmt.Println("data servers; layout caching keeps the metadata server off the data path")
}

// figFSVA: file system virtual appliance forwarding overheads.
func figFSVA() {
	header("FSVA — file system virtual appliances (§4.2.1)")
	fmt.Printf("%-26s %14s %14s\n", "transport", "kops/sec", "overhead")
	for _, r := range fsva.Compare(fsva.DefaultConfig(fsva.Native)) {
		fmt.Printf("%-26s %14.1f %13.1f%%\n",
			r.Config.Transport, r.OpsPerSecond/1e3, r.OverheadVsNative*100)
	}
	fmt.Printf("porting churn avoided: %.0f engineer-weeks/year (quarterly kernels,\n",
		fsva.PortingChurn(4, 1, 4))
	fmt.Println("annual FS releases, 4-week ports)")
	fmt.Println("shape check: shared-memory forwarding lands within a few percent of a")
	fmt.Println("native kernel client; synchronous per-op VM crossings do not")
}

// figPosixExt: HEC POSIX extensions (group open).
func figPosixExt() {
	header("POSIX HEC extensions — openg()/openfh() group open (§2.2)")
	fmt.Printf("%8s %18s %18s %10s\n", "procs", "posix open (ms)", "group open (ms)", "speedup")
	for _, n := range []int{64, 256, 1024, 4096} {
		p := posixext.RunOpen(posixext.DefaultOpenConfig(n, posixext.PosixOpen))
		g := posixext.RunOpen(posixext.DefaultOpenConfig(n, posixext.GroupOpen))
		fmt.Printf("%8d %18.2f %18.2f %9.0fx\n",
			n, float64(p.Elapsed)*1e3, float64(g.Elapsed)*1e3,
			float64(p.Elapsed)/float64(g.Elapsed))
	}
	l := posixext.Layout{StripeUnit: 64 << 10, StripeCount: 8}
	fmt.Printf("layout query: 47008-byte records align to %d (misalignment was %.0f%%)\n",
		l.AlignUp(47008), l.Misalignment(47008)*100)
	fmt.Println("shape check: group open turns an O(N) metadata storm into one")
	fmt.Println("resolution plus a log-depth broadcast")
}

// figDiskReduce: background erasure coding of replicated DISC storage.
func figDiskReduce() {
	header("DiskReduce — replication as a prelude to erasure coding (PDSW'09)")
	cfg := diskreduce.DefaultConfig()
	cfg.EncodeAfter = 10
	traj := diskreduce.Simulate(cfg, 100, 120)
	fmt.Printf("%8s %20s\n", "tick", "capacity overhead")
	for _, tick := range []int{0, 5, 10, 20, 40, 80, 119} {
		fmt.Printf("%8d %20.2f\n", tick, traj[tick])
	}
	fmt.Printf("RAID-6 group-of-8 floor: %.2fx; triplication: 3.00x\n",
		diskreduce.RAID6Group.Overhead(cfg.GroupSize))
	fmt.Println("shape check: overhead starts at 3x and converges toward the RAID floor")
	fmt.Println("as cold blocks encode, while hot blocks keep replicas for locality")
}

// figFaults: fault-injected checkpointing vs the analytic optimum-interval
// model. The same Weibull failure machinery that drives the Figure 4/5
// projections is turned into a concrete fault plan; object storage servers
// crash mid-checkpoint and the application-visible slowdown is compared
// against the Daly model's predictions.
func figFaults() {
	header("Faults — injected OSS crashes vs the Daly checkpoint-interval model")
	cfg := pfs.PanFSLike(4)
	cfg.FailTimeout = sim.Time(5e-3)
	cfg.LeaseExpiry = sim.Time(20e-3)
	cfg.RebuildTime = sim.Time(0.25)
	spec := workload.Spec{Ranks: 8, BytesPerRank: 2 << 20, RecordSize: 1 << 18, Pattern: workload.NN}

	// The healthy capture time is the Daly model's delta.
	clean := workload.RunFaults(cfg, workload.FaultSpec{Spec: spec, Checkpoints: 1, Shards: probeShards}, probeReg, probeTr)
	delta := float64(clean.Elapsed)

	const (
		serverMTBF = 8.0 // seconds — accelerated so crashes land inside the run
		downtime   = 0.5
		seed       = 4242
		rounds     = 6
	)
	// Any server's crash interrupts the whole striped checkpoint, so the
	// application-visible MTTI is the per-server MTBF over the server count.
	mtti := serverMTBF / float64(cfg.NumServers)
	model := failure.Daly{Delta: delta, Restart: downtime, MTTI: mtti}
	tauOpt := model.OptimalInterval()

	fmt.Printf("healthy capture: delta = %.3f s; server MTBF %.0f s x %d servers -> MTTI %.1f s\n",
		delta, serverMTBF, cfg.NumServers, mtti)
	fmt.Printf("analytic optimum: tau* = %.2f s -> predicted utilization %.3f\n\n",
		tauOpt, model.OptimalUtilization())

	fmt.Printf("%10s %15s %10s %15s %10s %10s %10s\n",
		"tau (s)", "analytic util", "sim util", "ckpt slowdown", "crashes", "retries", "dropped")
	for _, tau := range []float64{tauOpt / 4, tauOpt, 4 * tauOpt} {
		horizon := float64(rounds) * (tau + 8*delta + downtime)
		plan := failure.DrawOSSFaults(failure.OSSFaultSpec{
			Servers:  cfg.NumServers,
			MTBF:     serverMTBF,
			Shape:    1,
			Downtime: downtime,
			Horizon:  horizon,
		}, seed)
		res := workload.RunFaults(cfg, workload.FaultSpec{
			Spec:         spec,
			Checkpoints:  rounds,
			ComputeTime:  sim.Time(tau),
			Plan:         plan,
			MaxRetries:   6,
			RetryBackoff: sim.Time(5e-3),
			MaxBackoff:   sim.Time(0.1),
			Shards:       probeShards,
		}, probeReg, probeTr)
		slowdown := float64(res.Elapsed) / (delta * rounds)
		fmt.Printf("%10.2f %15.3f %10.3f %14.2fx %10d %10d %10d\n",
			tau, model.Utilization(tau), res.Utilization, slowdown,
			res.Faults.Crashes, res.Retries, res.DroppedOps)
	}
	fmt.Println("\nshape check: crashes stretch checkpoints well past the healthy capture")
	fmt.Println("time (retry backoff + failover timeouts); short intervals checkpoint too")
	fmt.Println("often and lose utilization exactly as the analytic curve predicts, while")
	fmt.Println("the analytic model additionally charges lost work the retrying simulator")
	fmt.Println("does not, so its long-interval utilization falls off faster")
}

// figIntegrity: silent corruption survival — corruption rate x scrub
// cadence against the analytic exposure window. Each cell writes a
// checkpoint, lets latent sector errors accumulate for an hour (drawn by
// failure.DrawLSE from the same Weibull machinery as the loud failures),
// and reads it back. With checksums off the corrupt stripe units ride
// silently into the application — the measured count is compared to the
// analytic expectation servers x residual/MTBC, where residual is the
// dwell left after the last scrub pass. With checksums on every mismatch
// is detected and repaired from a parity neighbour: silent reads must be
// exactly zero.
func figIntegrity() {
	header("Integrity — silent corruption vs scrub cadence and checksums")
	base := pfs.PanFSLike(4)
	spec := workload.Spec{Ranks: 4, BytesPerRank: 1 << 18, RecordSize: 4096, Pattern: workload.N1Strided}
	const (
		expose = sim.Time(3600) // dwell between checkpoint and read-back
		seed   = 77
	)
	fmt.Printf("%10s %10s %9s %7s %10s %10s %10s %9s\n",
		"MTBC (s)", "scrub (s)", "injected", "passes", "silent", "analytic", "repaired", "flagged")
	for _, mtbc := range []float64{100, 400} {
		for _, scrub := range []sim.Time{0, 900, 300} {
			events := failure.DrawLSE(failure.LSESpec{
				Disks:         base.NumServers,
				CapacityBytes: 1 << 17, // inside the written region of every drive
				MTBC:          mtbc,
				Shape:         1.0, // Poisson arrivals, so the analytic column is exact
				TornFraction:  0.2,
				Horizon:       float64(expose),
			}, seed)
			ispec := workload.IntegritySpec{Spec: spec, Events: events, Expose: expose, ScrubInterval: scrub, Shards: probeShards}
			cfgOff := base
			cfgOff.Checksums = false
			off := workload.RunIntegrity(cfgOff, ispec, probeReg, probeTr)
			cfgOn := base
			cfgOn.Checksums = true
			on := workload.RunIntegrity(cfgOn, ispec, probeReg, probeTr)
			// Residual exposure: dwell remaining after the last scrub pass
			// (mirrors the harness's schedule of passes at k*scrub < expose).
			residual := expose
			if scrub > 0 {
				passes := 0
				for t := scrub; t < expose; t += scrub {
					passes++
				}
				residual = expose - sim.Time(passes)*scrub
			}
			analytic := float64(base.NumServers) * float64(residual) / mtbc
			if on.Stats.SilentReads != 0 {
				panic("checksummed run let corruption through silently")
			}
			fmt.Printf("%10.0f %10.0f %9d %7d %10d %10.1f %10d %9d\n",
				mtbc, float64(scrub), off.Stats.Injected, off.ScrubPasses,
				off.Stats.SilentReads, analytic, on.Stats.Repaired, on.FlaggedReads)
		}
	}
	fmt.Println("shape check: silent corruption tracks the analytic exposure window —")
	fmt.Println("shrinking ~linearly with scrub cadence — and drops to exactly zero the")
	fmt.Println("moment read-path checksums are on (every mismatch repaired from parity)")
}

// figScale: the sharded-engine scale experiment — many file-system pods
// checkpointing in globally barriered rounds, swept over shard counts.
// Every sweep point must produce a byte-identical metrics snapshot (the
// determinism contract of the conservative-lookahead cluster); wall
// clock is the only thing allowed to change, and the table reports the
// measured speedup over the single-shard run. On a single-core host the
// sweep is flat (the shards serialize); the architecture-level win is
// reported by the engine microbenchmarks in internal/sim.
func figScale() {
	header("Scale — sharded engine, pods x ranks under conservative lookahead")
	spec := workload.ScaleSpec{
		Pods:            scalePods,
		RanksPerPod:     scaleRanks,
		ServersPerPod:   scaleOSS,
		Rounds:          scaleRounds,
		BytesPerRank:    64 << 10,
		ComputeTime:     0.25,
		InterPodLatency: 5e-6,
	}
	fmt.Printf("%d pods x %d ranks/pod = %d ranks, %d OSSes, %d rounds, %d KiB/rank/round\n",
		spec.Pods, spec.RanksPerPod, spec.Pods*spec.RanksPerPod,
		spec.Pods*spec.ServersPerPod, spec.Rounds, spec.BytesPerRank>>10)
	fmt.Printf("lookahead (inter-pod NIC latency): %.0f us; GOMAXPROCS %d\n\n",
		float64(spec.InterPodLatency)*1e6, runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %12s %12s %11s %9s %10s\n",
		"shards", "events", "sim (s)", "wall (s)", "speedup", "snapshot")
	var refSnap []byte
	var refWall float64
	for _, shards := range []int{1, 2, 4, 8} {
		s := spec
		s.Shards = shards
		reg := obs.NewRegistry()
		sw := obs.StartStopwatch()
		res := workload.RunScale(s, reg)
		wall := sw.Elapsed().Seconds()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			panic(err)
		}
		status := "reference"
		if refSnap == nil {
			refSnap, refWall = buf.Bytes(), wall
		} else if bytes.Equal(buf.Bytes(), refSnap) {
			status = "identical"
		} else {
			status = "DIVERGED"
		}
		fmt.Printf("%8d %12d %12.3f %11.3f %8.2fx %10s\n",
			shards, res.Events, float64(res.WallClock), wall, refWall/wall, status)
		if status == "DIVERGED" {
			panic("scale: snapshot diverged across shard counts")
		}
	}
	fmt.Println("\nshape check: every sweep point serializes the same snapshot byte for")
	fmt.Println("byte; speedup tracks available cores (flat when GOMAXPROCS/cores pin")
	fmt.Println("the shards to one thread)")
}

// figBB: the burst-buffer tier — a host-side flash log between the
// checkpointing application and the striped file system. Write-back
// acks a checkpoint as soon as it lands in node-local flash and drains
// it to the FS while the application computes, so the visible
// checkpoint cost is the flash absorb, not the striped write — until
// the buffer fills or the drain loses the race with the next round.
// The sweep covers buffer capacity x drain bandwidth x checkpoint
// interval for all three modes; the Daly section translates the
// measured capture times into model utilization at the analytic
// optimum. A final pass crashes a buffer node mid-drain (write-back
// dirty data dies with the node) and pins byte-identical snapshots
// across shard counts.
func figBB() {
	header("Burst buffer — flash logging between checkpoint and the striped FS")
	cfg := pfs.PanFSLike(4)
	spec := workload.Spec{Ranks: 8, BytesPerRank: 1 << 20, RecordSize: 1 << 18, Pattern: workload.NN}
	const rounds = 3

	run := func(bcfg *bb.Config, tau sim.Time, plan *sim.FaultPlan, shards int, reg *obs.Registry, tr *obs.Tracer) workload.FaultResult {
		fspec := workload.FaultSpec{Spec: spec, Checkpoints: rounds, ComputeTime: tau, BB: bcfg, Shards: shards}
		if plan != nil {
			fspec.Plan = plan
			fspec.MaxRetries = 4
			fspec.RetryBackoff = sim.Time(2e-3)
		}
		return workload.RunFaults(cfg, fspec, reg, tr)
	}
	tier := func(m bb.Mode, pages int, drainBW float64) *bb.Config {
		c := bb.DefaultConfig(2)
		c.Mode = m
		c.Flash.UserPages = pages
		c.DrainBandwidth = drainBW
		return &c
	}
	ms := func(r workload.FaultResult) float64 { return float64(r.Elapsed) / rounds * 1e3 }

	fmt.Printf("%d ranks x %d MiB per round on 2 buffer nodes; direct = no tier\n\n",
		spec.Ranks, spec.BytesPerRank>>20)
	fmt.Printf("%9s %11s %8s %11s %11s %11s %8s %8s\n",
		"cap (MiB)", "drain MB/s", "tau (s)", "direct", "wr-through", "wr-back", "stalls", "peakocc")
	for _, pages := range []int{1024, 8192} { // 4 and 32 MiB per node
		for _, drainBW := range []float64{40e6, 200e6} {
			for _, tau := range []sim.Time{0.02, 0.25} {
				direct := run(nil, tau, nil, probeShards, probeReg, probeTr)
				wt := run(tier(bb.WriteThrough, pages, drainBW), tau, nil, probeShards, probeReg, probeTr)
				wb := run(tier(bb.WriteBack, pages, drainBW), tau, nil, probeShards, probeReg, probeTr)
				fmt.Printf("%9d %11.0f %8.2f %9.2fms %9.2fms %9.2fms %8d %8.2f\n",
					int64(pages)*4096>>20, drainBW/1e6, float64(tau),
					ms(direct), ms(wt), ms(wb), wb.BB.Stalls, wb.BB.PeakOccupancy)
				if wb.BB.Stalls == 0 && ms(wb) >= ms(direct)/2 {
					panic("bb: unsaturated write-back failed to hide checkpoint latency")
				}
			}
		}
	}

	// Daly translation: the measured per-round capture time is the
	// model's delta. Hiding the striped write behind the flash absorb
	// shrinks delta, which both shortens the optimal interval and lifts
	// the utilization ceiling — the reason machine rooms bolt flash
	// between the compute fabric and the disk array.
	deltaDirect := float64(run(nil, 0.25, nil, probeShards, probeReg, probeTr).Elapsed) / rounds
	deltaWB := float64(run(tier(bb.WriteBack, 8192, 200e6), 0.25, nil, probeShards, probeReg, probeTr).Elapsed) / rounds
	const mtti, restart = 2.0, 0.5
	mDirect := failure.Daly{Delta: deltaDirect, Restart: restart, MTTI: mtti}
	mWB := failure.Daly{Delta: deltaWB, Restart: restart, MTTI: mtti}
	fmt.Printf("\nDaly model at MTTI %.0f s, restart %.1f s:\n", mtti, restart)
	fmt.Printf("  direct:     delta %6.2f ms -> tau* %5.2f s, utilization %.4f\n",
		deltaDirect*1e3, mDirect.OptimalInterval(), mDirect.OptimalUtilization())
	fmt.Printf("  write-back: delta %6.2f ms -> tau* %5.2f s, utilization %.4f\n",
		deltaWB*1e3, mWB.OptimalInterval(), mWB.OptimalUtilization())

	// Failure semantics: crash a buffer node while it still holds dirty
	// data behind a deliberately slow drain. Write-back forfeits exactly
	// the un-drained bytes; a drain torn mid-flight surfaces as injected
	// corruption for the FS checksums to catch.
	fr := run(tier(bb.WriteBack, 8192, 10e6), sim.Time(0.1),
		sim.NewFaultPlan().Add(bb.NodeTarget(0), 0.35, 0.2),
		probeShards, probeReg, probeTr)
	fmt.Printf("\ncrash bb0 at t=0.35 s behind a 10 MB/s drain: lost %d dirty bytes, %d torn drains\n",
		fr.BB.LostBytes, fr.BB.TornDrains)
	fmt.Printf("byte accounting: absorbed %d = drained %d + lost %d + dropped %d\n",
		fr.BB.AbsorbedBytes, fr.BB.DrainedBytes, fr.BB.LostBytes, fr.BB.DroppedDrainBytes)
	if fr.BB.AbsorbedBytes != fr.BB.DrainedBytes+fr.BB.LostBytes+fr.BB.DroppedDrainBytes {
		panic("bb: byte accounting identity violated")
	}
	if fr.BB.LostBytes == 0 {
		panic("bb: write-back crash lost no dirty data")
	}

	// Determinism: the same buffered, fault-injected run must serialize
	// a byte-identical snapshot on one shard and on four.
	snap := func(shards int) []byte {
		reg := obs.NewRegistry()
		workload.RunFaults(cfg, workload.FaultSpec{
			Spec:         spec,
			Checkpoints:  rounds,
			ComputeTime:  sim.Time(0.02),
			BB:           tier(bb.WriteBack, 1024, 40e6),
			Plan:         sim.NewFaultPlan().Add(bb.NodeTarget(1), 0.2, 0.15).Add(pfs.OSSTarget(0), 0.4, 0.1),
			MaxRetries:   4,
			RetryBackoff: sim.Time(2e-3),
			Shards:       shards,
		}, reg, nil)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	s1, s4 := snap(1), snap(4)
	status := "identical"
	if !bytes.Equal(s1, s4) {
		status = "DIVERGED"
	}
	fmt.Printf("\nshard determinism: 1-shard vs 4-shard snapshot %s (%d bytes)\n", status, len(s1))
	if status == "DIVERGED" {
		panic("bb: snapshot diverged across shard counts")
	}

	fmt.Println("\nshape check: write-back holds the visible checkpoint near the flash")
	fmt.Println("absorb time until the buffer fills or the drain loses the race with")
	fmt.Println("the next round; write-through only re-orders the same wire time; a")
	fmt.Println("node crash forfeits exactly the un-drained dirty bytes")
}

// figDiag: peer-comparison diagnosis.
func figDiag() {
	header("Diagnosis — peer comparison on a 20-server PVFS-like cluster (§4.2.6)")
	ev := diagnose.Evaluate(20, 30, 300, 5)
	fmt.Printf("trials:               %d\n", ev.Trials)
	fmt.Printf("true positive rate:   %.1f%%\n", ev.TPRate*100)
	fmt.Printf("false pos per trial:  %.3f\n", ev.FPPerTrial)
	fmt.Println("shape check: >= 66% correct identification, essentially no false alarms")
}

// figRebuild: general k+m erasure coding under a rebuild storm — a
// population of independent erasure-coded pods (one drive per OSS)
// survives drawn Weibull crashes plus correlated bursts while a
// foreground client keeps checkpointing. Crashes launch declustered
// rebuilds that fan the repair load across the surviving drives and
// compete with the foreground traffic through the shared disk queues;
// overlapping failures beyond m are typed, counted data-loss events.
// The sweep crosses drive count x (k,m) x declustering ratio and
// reports the measured data-loss probability, rebuild time, and the
// foreground p99 under the storm; quiet baselines isolate the
// interference. Everything is in deterministic sim time, so the whole
// table is byte-identical for any -shards value.
func figRebuild() {
	header("Rebuild — k+m erasure coding, declustered rebuild under a failure storm")
	shards := probeShards
	if shards < 1 {
		shards = 1
	}
	base := workload.RebuildSpec{
		Servers: rebuildOSS,
		Faults: failure.OSSFaultSpec{
			MTBF:     30, // accelerated: compresses years of drive life into 4 s
			Shape:    1,
			Downtime: 0, // failures are permanent; overlaps accumulate
			Horizon:  4,
			Bursts:   failure.BurstSpec{MTBB: 2, Size: 3},
		},
		Seed:         42,
		Rounds:       rebuildRounds,
		ComputeTime:  0.25,
		WriteBytes:   1 << 20,
		MaxRetries:   3,
		RetryBackoff: sim.Time(5e-3),
		Shards:       shards,
	}
	red := func(k, m int, ratio float64) pfs.Redundancy {
		return pfs.Redundancy{K: k, M: m, Declustering: ratio, UnitBytes: 256 << 10, ChunkBytes: 64 << 10}
	}
	run := func(drives, k, m int, ratio float64, faulty bool) workload.RebuildResult {
		s := base
		s.Red = red(k, m, ratio)
		s.Pods = drives / s.Servers
		if s.Pods < 1 {
			s.Pods = 1
		}
		if !faulty {
			s.Faults = failure.OSSFaultSpec{MTBF: 1e9, Shape: 1, Horizon: 4}
		}
		return workload.RunRebuild(s, probeReg)
	}
	codes := [][2]int{{4, 1}, {8, 2}, {8, 3}}
	scales := []int{rebuildDrives / 4, rebuildDrives}
	if scales[0] < rebuildOSS {
		scales[0] = rebuildOSS
	}
	if scales[0] == scales[1] {
		scales = scales[:1]
	}

	fmt.Printf("pods of %d OSSes (1 drive each); MTBF %.0f s, horizon %.0f s, permanent\n",
		base.Servers, float64(base.Faults.MTBF), float64(base.Faults.Horizon))
	fmt.Printf("crashes, correlated bursts every %.0f s killing %d drives; %d foreground\n",
		float64(base.Faults.Bursts.MTBB), base.Faults.Bursts.Size, base.Rounds)
	fmt.Printf("rounds of 1 MiB checkpoints per pod\n\n")

	fmt.Println("quiet baseline (no faults) at the small scale:")
	fmt.Printf("%6s %12s %12s\n", "k+m", "wr p99 (ms)", "rd p99 (ms)")
	quiet := map[[2]int]workload.RebuildResult{}
	for _, km := range codes {
		r := run(scales[0], km[0], km[1], 1.0, false)
		quiet[km] = r
		if r.Crashes != 0 || r.Loss.Events != 0 {
			panic("rebuild: quiet baseline saw faults")
		}
		fmt.Printf("%4d+%-1d %12.3f %12.3f\n", km[0], km[1], r.WriteP99*1e3, r.ReadP99*1e3)
	}

	fmt.Printf("\n%7s %6s %6s %8s %9s %9s %10s %9s %11s %11s %9s\n",
		"drives", "k+m", "declus", "crashes", "loss prob", "pods lost",
		"rebuilt", "rb max(s)", "wr p99 (ms)", "rd p99 (ms)", "degraded")
	for _, drives := range scales {
		for _, km := range codes {
			for _, ratio := range []float64{0.05, 1.0} {
				r := run(drives, km[0], km[1], ratio, true)
				fmt.Printf("%7d %4d+%-1d %6.2f %8d %9.5f %6d/%-3d %10d %9.3f %11.3f %11.3f %9d\n",
					r.Drives, km[0], km[1], ratio, r.Crashes, r.GroupLossFrac,
					r.PodsWithLoss, r.Pods, r.Rebuild.GroupsRebuilt,
					float64(r.Rebuild.MaxDuration), r.WriteP99*1e3, r.ReadP99*1e3,
					r.DegradedReads)
				if r.Crashes == 0 || r.Rebuild.Started == 0 {
					panic("rebuild: storm never launched a rebuild")
				}
				if r.GroupLossFrac < 0 || r.GroupLossFrac > 1 {
					panic("rebuild: loss probability out of range")
				}
				if q := quiet[km]; r.WriteP99 < q.WriteP99/2 {
					panic("rebuild: storm p99 below the quiet baseline")
				}
			}
		}
	}

	// Determinism: the same storm must serialize a byte-identical
	// snapshot on one shard and on four.
	snap := func(nshards int) []byte {
		s := base
		s.Red = red(4, 2, 1.0)
		s.Pods, s.Servers = 8, 16
		s.Rounds = 2
		s.Shards = nshards
		reg := obs.NewRegistry()
		workload.RunRebuild(s, reg)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	s1, s4 := snap(1), snap(4)
	status := "identical"
	if !bytes.Equal(s1, s4) {
		status = "DIVERGED"
	}
	fmt.Printf("\nshard determinism: 1-shard vs 4-shard snapshot %s (%d bytes)\n", status, len(s1))
	if status == "DIVERGED" {
		panic("rebuild: snapshot diverged across shard counts")
	}

	fmt.Println("\nshape check: more parity (larger m) cuts the loss probability at the")
	fmt.Println("same storm; declustering over the full population fans each rebuild")
	fmt.Println("across more survivors than a narrow window, and losses beyond m are")
	fmt.Println("typed events with exact byte accounting, never silent reads")
}
