// Command ninjat renders parallel-write patterns the way LANL's Ninjat
// visualization tool did (Figure 15 of the report): the shared file as a
// wrapped linear array with each cell labeled by the rank that wrote it,
// plus the time-vs-offset view and the pattern classification.
//
//	ninjat -pattern strided -ranks 8 -records 16 -record-size 47008
//	ninjat -pattern segmented -width 80 -rows 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		pattern = flag.String("pattern", "strided", "strided or segmented")
		ranks   = flag.Int("ranks", 8, "writing ranks")
		records = flag.Int("records", 16, "records per rank")
		recSize = flag.Int64("record-size", 47008, "record size in bytes")
		width   = flag.Int("width", 64, "map width in cells")
		rows    = flag.Int("rows", 8, "map rows")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *pattern {
	case "strided":
		tr = trace.SyntheticN1Strided(*ranks, *records, *recSize)
	case "segmented":
		tr = trace.SyntheticN1Segmented(*ranks, *records, *recSize)
	default:
		fmt.Fprintf(os.Stderr, "unknown -pattern %q (strided, segmented)\n", *pattern)
		os.Exit(2)
	}

	s := trace.Summarize(tr)
	fmt.Println(s.Description)
	fmt.Println()
	fmt.Println("file as a wrapped array (cell = majority writer):")
	for _, row := range tr.RenderMap(*width, *rows) {
		fmt.Println(" ", row)
	}
	fmt.Println()
	fmt.Println("time (x) vs offset (y, growing upward):")
	for _, row := range tr.RenderTimeline(*width, *rows) {
		fmt.Println(" ", row)
	}
}
