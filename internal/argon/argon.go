// Package argon models Argon (Wachs et al., FAST'07) and its cluster
// co-scheduling extension (Figure 10 of the report): performance
// insulation for shared storage servers. When a streaming job and a
// small-random-I/O job share disks, naive request interleaving destroys
// the streamer's sequentiality and total efficiency collapses. Argon
// timeslices the disk head, giving each job long exclusive slices so each
// achieves nearly its fair share of standalone performance (within a
// ~10% "guard band"). On striped multi-server storage a second problem
// appears: if each server timeslices on its own phase, a striped client
// waits for the *last* server's slice, so slices must be co-scheduled
// across servers to recover ~90% of best case.
package argon

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Policy selects the sharing discipline.
type Policy int

// Policies under comparison.
const (
	// Interleave is the uninsulated baseline: FIFO alternation between
	// jobs at each server.
	Interleave Policy = iota
	// TimesliceUnsync gives each job exclusive disk slices, but each
	// server picks its own slice phase.
	TimesliceUnsync
	// TimesliceCoSched aligns slice phases across all servers.
	TimesliceCoSched
)

func (p Policy) String() string {
	switch p {
	case Interleave:
		return "interleave"
	case TimesliceUnsync:
		return "timeslice-unsync"
	case TimesliceCoSched:
		return "timeslice-cosched"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes the shared-storage experiment.
type Config struct {
	Servers   int
	Disk      disk.Geometry
	Policy    Policy
	Slice     sim.Time // timeslice length per job
	Duration  sim.Time // simulated run length
	StreamReq int64    // streaming job request size per server
	RandReq   int64    // random job request size
}

// DefaultConfig mirrors the Ursa Minor experiments: a streaming job with
// 1 MiB per-server requests against a 4 KiB random-I/O job.
func DefaultConfig(servers int, policy Policy) Config {
	return Config{
		Servers:   servers,
		Disk:      disk.Enterprise2006(),
		Policy:    policy,
		Slice:     sim.Time(100e-3),
		Duration:  20,
		StreamReq: 1 << 20,
		RandReq:   4096,
	}
}

// Result reports each job's achieved throughput.
type Result struct {
	Config      Config
	StreamBytes int64
	RandOps     int64
	// StreamBps and RandIOPS are the achieved rates.
	StreamBps float64
	RandIOPS  float64
}

// jobID distinguishes the two tenants.
type jobID int

const (
	streamJob jobID = iota
	randJob
)

type srv struct {
	dsk *disk.Disk
	// busy marks the disk in service; queues hold pending requests per job.
	busy   bool
	queues [2][]*req
	// streamPos and randRegion place the two jobs in different disk
	// regions, so switching between them costs a real seek.
	streamPos int64
	rngState  uint64
	// lastServed drives fair alternation under the Interleave policy.
	lastServed jobID
}

type req struct {
	job  jobID
	size int64
	done func()
}

type experiment struct {
	cfg Config
	eng *sim.Engine
	srv []*srv
	res Result
}

// sliceOwner returns which job owns server s's disk at time t.
func (e *experiment) sliceOwner(s int, t sim.Time) jobID {
	period := 2 * e.cfg.Slice
	phase := sim.Time(0)
	if e.cfg.Policy == TimesliceUnsync {
		// Deterministic staggered phases.
		phase = sim.Time(float64(s)) * period / sim.Time(float64(e.cfg.Servers))
	}
	pos := t + phase
	inPeriod := pos - sim.Time(float64(int64(float64(pos)/float64(period))))*period
	if inPeriod < e.cfg.Slice {
		return streamJob
	}
	return randJob
}

// nextBoundary returns when server s's slice ownership next changes. The
// result is guaranteed strictly after t: at an exact boundary, floating
// point can otherwise round the "next" boundary back onto t and livelock
// the wake-up loop.
func (e *experiment) nextBoundary(s int, t sim.Time) sim.Time {
	period := 2 * e.cfg.Slice
	phase := sim.Time(0)
	if e.cfg.Policy == TimesliceUnsync {
		phase = sim.Time(float64(s)) * period / sim.Time(float64(e.cfg.Servers))
	}
	pos := float64(t + phase)
	half := float64(e.cfg.Slice)
	k := float64(int64(pos/half)) + 1
	next := sim.Time(k*half) - phase
	if next <= t {
		next = t + e.cfg.Slice/2
	}
	return next
}

// xorshift gives each server a deterministic random offset stream for the
// random job without sharing state across servers.
func (s *srv) nextRandOffset(capacity int64) int64 {
	s.rngState ^= s.rngState << 13
	s.rngState ^= s.rngState >> 7
	s.rngState ^= s.rngState << 17
	v := int64(s.rngState % uint64(capacity/2))
	return capacity/2 + v - v%4096 // random job lives in the upper half
}

// Run executes the experiment.
func Run(cfg Config) Result {
	if cfg.Servers < 1 || cfg.Slice <= 0 || cfg.Duration <= 0 {
		panic(fmt.Sprintf("argon: invalid config %+v", cfg))
	}
	e := &experiment{cfg: cfg, eng: sim.NewEngine()}
	e.res.Config = cfg
	for i := 0; i < cfg.Servers; i++ {
		e.srv = append(e.srv, &srv{dsk: disk.New(cfg.Disk), rngState: uint64(i)*2654435761 + 1})
	}
	e.startStream()
	for i := range e.srv {
		e.pumpRandom(i)
	}
	e.eng.RunUntil(cfg.Duration)
	e.res.StreamBps = float64(e.res.StreamBytes) / float64(cfg.Duration)
	e.res.RandIOPS = float64(e.res.RandOps) / float64(cfg.Duration)
	return e.res
}

// startStream issues striped rows: one StreamReq per server, next row only
// after every server finishes (the synchronous striped client of the
// report's co-scheduling experiment).
func (e *experiment) startStream() {
	var row func()
	row = func() {
		if e.eng.Now() >= e.cfg.Duration {
			return
		}
		barrier := sim.NewBarrier(e.eng, e.cfg.Servers, func(sim.Time) { row() })
		for i := range e.srv {
			i := i
			e.enqueue(i, &req{job: streamJob, size: e.cfg.StreamReq, done: func() {
				e.res.StreamBytes += e.cfg.StreamReq
				barrier.Arrive()
			}})
		}
	}
	row()
}

// pumpRandom keeps one random request outstanding per server.
func (e *experiment) pumpRandom(s int) {
	if e.eng.Now() >= e.cfg.Duration {
		return
	}
	e.enqueue(s, &req{job: randJob, size: e.cfg.RandReq, done: func() {
		e.res.RandOps++
		e.pumpRandom(s)
	}})
}

func (e *experiment) enqueue(s int, r *req) {
	sv := e.srv[s]
	sv.queues[r.job] = append(sv.queues[r.job], r)
	if !sv.busy {
		e.dispatch(s)
	}
}

// dispatch picks the next request at server s per policy and serves it.
func (e *experiment) dispatch(s int) {
	sv := e.srv[s]
	if sv.busy {
		return
	}
	var r *req
	switch e.cfg.Policy {
	case Interleave:
		// FIFO across jobs: alternate when both have work, serving the job
		// not served last — the uninsulated sharing that shreds the
		// streamer's sequentiality.
		if len(sv.queues[streamJob]) > 0 && len(sv.queues[randJob]) > 0 {
			r = e.pop(sv, 1-sv.lastServed)
		} else if len(sv.queues[streamJob]) > 0 {
			r = e.pop(sv, streamJob)
		} else if len(sv.queues[randJob]) > 0 {
			r = e.pop(sv, randJob)
		}
	case TimesliceUnsync, TimesliceCoSched:
		owner := e.sliceOwner(s, e.eng.Now())
		if len(sv.queues[owner]) > 0 {
			r = e.pop(sv, owner)
		} else {
			// Strict insulation: idle until the boundary (the other job's
			// work waits for its own slice). Wake at the boundary.
			if len(sv.queues[1-owner]) > 0 {
				wake := e.nextBoundary(s, e.eng.Now())
				if wake < e.cfg.Duration {
					e.eng.At(wake, func() { e.dispatch(s) })
				}
			}
			return
		}
	}
	if r == nil {
		return
	}
	sv.lastServed = r.job
	sv.busy = true
	var svc sim.Time
	if r.job == streamJob {
		svc = sv.dsk.Access(sv.streamPos, r.size)
		sv.streamPos += r.size
		if sv.streamPos > e.cfg.Disk.CapacityBytes/2-r.size {
			sv.streamPos = 0
		}
	} else {
		svc = sv.dsk.Access(sv.nextRandOffset(e.cfg.Disk.CapacityBytes), r.size)
	}
	e.eng.Schedule(svc, func() {
		sv.busy = false
		r.done()
		e.dispatch(s)
	})
}

func (e *experiment) pop(sv *srv, j jobID) *req {
	q := sv.queues[j]
	r := q[0]
	copy(q, q[1:])
	sv.queues[j] = q[:len(q)-1]
	return r
}

// SoloStream measures the streaming job running alone (its standalone
// baseline for insulation math).
func SoloStream(cfg Config) float64 {
	c := cfg
	c.Policy = Interleave
	e := &experiment{cfg: c, eng: sim.NewEngine()}
	for i := 0; i < c.Servers; i++ {
		e.srv = append(e.srv, &srv{dsk: disk.New(c.Disk), rngState: uint64(i) + 1})
	}
	e.startStream()
	e.eng.RunUntil(c.Duration)
	return float64(e.res.StreamBytes) / float64(c.Duration)
}

// SoloRandom measures the random job running alone.
func SoloRandom(cfg Config) float64 {
	c := cfg
	c.Policy = Interleave
	e := &experiment{cfg: c, eng: sim.NewEngine()}
	for i := 0; i < c.Servers; i++ {
		e.srv = append(e.srv, &srv{dsk: disk.New(c.Disk), rngState: uint64(i)*2654435761 + 1})
		e.pumpRandom(i)
	}
	e.eng.RunUntil(c.Duration)
	return float64(e.res.RandOps) / float64(c.Duration)
}

// Insulation summarizes a shared run against solo baselines: each job's
// achieved fraction of its standalone throughput. Perfect fair sharing
// would give 0.5 each; Argon promises >= share minus a small guard band.
type Insulation struct {
	Policy         Policy
	StreamFraction float64
	RandFraction   float64
}

// Measure runs solo baselines and the shared configuration and reports
// fractions.
func Measure(cfg Config) Insulation {
	soloS := SoloStream(cfg)
	soloR := SoloRandom(cfg)
	shared := Run(cfg)
	return Insulation{
		Policy:         cfg.Policy,
		StreamFraction: shared.StreamBps / soloS,
		RandFraction:   shared.RandIOPS / soloR,
	}
}
