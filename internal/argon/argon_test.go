package argon

import (
	"testing"
)

func TestPolicyString(t *testing.T) {
	if Interleave.String() != "interleave" ||
		TimesliceUnsync.String() != "timeslice-unsync" ||
		TimesliceCoSched.String() != "timeslice-cosched" {
		t.Fatal("policy names wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Run(Config{})
}

func TestSoloBaselinesSane(t *testing.T) {
	cfg := DefaultConfig(1, Interleave)
	cfg.Duration = 5
	bps := SoloStream(cfg)
	// A lone streamer on an 80MB/s disk should get most of the bandwidth.
	if bps < 0.5*cfg.Disk.SeqBandwidth {
		t.Fatalf("solo stream %.0f B/s, want >= half of %.0f", bps, cfg.Disk.SeqBandwidth)
	}
	iops := SoloRandom(cfg)
	if iops < 50 || iops > 400 {
		t.Fatalf("solo random IOPS = %.0f, want O(100)", iops)
	}
}

func TestInterleavingHurtsTotalEfficiency(t *testing.T) {
	// The uninsulated baseline: fractions of solo throughput sum well
	// below 1 because the streamer loses its sequentiality.
	cfg := DefaultConfig(1, Interleave)
	cfg.Duration = 5
	ins := Measure(cfg)
	if sum := ins.StreamFraction + ins.RandFraction; sum > 0.85 {
		t.Fatalf("uninsulated efficiency sum = %.2f, expected inefficiency (< 0.85)", sum)
	}
}

func TestTimeslicingInsulatesBothJobs(t *testing.T) {
	// Argon's promise: each job gets close to its fair share (0.5) minus a
	// small guard band.
	cfg := DefaultConfig(1, TimesliceCoSched)
	cfg.Duration = 5
	ins := Measure(cfg)
	if ins.StreamFraction < 0.40 {
		t.Fatalf("stream fraction = %.2f, want >= 0.40 (fair share - guard band)", ins.StreamFraction)
	}
	if ins.RandFraction < 0.40 {
		t.Fatalf("random fraction = %.2f, want >= 0.40", ins.RandFraction)
	}
}

func TestTimeslicingBeatsInterleavingForStreamer(t *testing.T) {
	base := DefaultConfig(1, Interleave)
	base.Duration = 5
	ts := DefaultConfig(1, TimesliceCoSched)
	ts.Duration = 5
	a, b := Measure(base), Measure(ts)
	if b.StreamFraction <= a.StreamFraction {
		t.Fatalf("timeslicing stream fraction %.2f should beat interleaving %.2f",
			b.StreamFraction, a.StreamFraction)
	}
}

func TestCoSchedulingBeatsUnsyncOnStripedCluster(t *testing.T) {
	// Figure 10's right-hand result: on a multi-server stripe the
	// synchronous client waits for the last server, so unsynchronized
	// slices underperform co-scheduled ones.
	unsync := DefaultConfig(8, TimesliceUnsync)
	unsync.Duration = 5
	co := DefaultConfig(8, TimesliceCoSched)
	co.Duration = 5
	u, c := Run(unsync), Run(co)
	if c.StreamBps <= u.StreamBps {
		t.Fatalf("co-scheduled stream %.0f should beat unsync %.0f", c.StreamBps, u.StreamBps)
	}
	if c.StreamBps < 1.5*u.StreamBps {
		t.Fatalf("co-scheduling advantage only %.2fx, want pronounced (>= 1.5x)",
			c.StreamBps/u.StreamBps)
	}
}

func TestCoSchedulingNearBestCase(t *testing.T) {
	// "delivering about 90% of the best case": best case here is the
	// stream's fair share of solo striped bandwidth.
	cfg := DefaultConfig(4, TimesliceCoSched)
	cfg.Duration = 5
	solo := SoloStream(cfg)
	shared := Run(cfg)
	share := shared.StreamBps / (solo / 2)
	if share < 0.75 {
		t.Fatalf("co-scheduled stream at %.0f%% of fair share, want >= 75%%", share*100)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig(2, TimesliceUnsync)
	cfg.Duration = 3
	a, b := Run(cfg), Run(cfg)
	if a.StreamBytes != b.StreamBytes || a.RandOps != b.RandOps {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRandomJobUnaffectedByServerCount(t *testing.T) {
	// The random job is per-server closed-loop; per-server IOPS should be
	// roughly constant as servers scale.
	c1 := DefaultConfig(1, TimesliceCoSched)
	c1.Duration = 3
	c4 := DefaultConfig(4, TimesliceCoSched)
	c4.Duration = 3
	r1, r4 := Run(c1), Run(c4)
	per1 := r1.RandIOPS
	per4 := r4.RandIOPS / 4
	if per4 < per1*0.5 || per4 > per1*2 {
		t.Fatalf("per-server random IOPS changed wildly: %v vs %v", per1, per4)
	}
}
