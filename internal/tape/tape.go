// Package tape models the NERSC tape media verification project (§5.2.3
// of the report): reading more than 23,000 enterprise tape cartridges end
// to end during a migration, finding that 99.945% of media were fully
// readable (13 bad tapes, 14 lost files, <100 GB of 5+ PB), and that the
// verification appliance — which reads each tape once — flags suspect
// media that often succeed after 3-5 retries, so single-read verification
// overstates loss.
package tape

import (
	"fmt"
	"math/rand"
)

// MediaClass describes one cartridge generation in the archive.
type MediaClass struct {
	Name  string
	Count int
	// AgeYears drives the error rates.
	AgeYears float64
	// CapacityGB per cartridge.
	CapacityGB float64
	// PermanentBadProb is the chance a cartridge has truly unreadable data
	// regardless of retries.
	PermanentBadProb float64
	// TransientErrorProb is the chance a single end-to-end read of a good
	// cartridge reports errors anyway (dirty heads, marginal tracking).
	TransientErrorProb float64
}

// NERSCArchive mirrors the report's migrated media mix: 6,859 T10KA (≤2y),
// 9,155 9940B (≤8y), 7,806 9840A (≤12y).
func NERSCArchive() []MediaClass {
	return []MediaClass{
		{Name: "T10KA", Count: 6859, AgeYears: 2, CapacityGB: 500, PermanentBadProb: 0.0002, TransientErrorProb: 0.004},
		{Name: "9940B", Count: 9155, AgeYears: 8, CapacityGB: 200, PermanentBadProb: 0.0006, TransientErrorProb: 0.008},
		{Name: "9840A", Count: 7806, AgeYears: 12, CapacityGB: 20, PermanentBadProb: 0.0008, TransientErrorProb: 0.012},
	}
}

// VerifyStats reports one verification campaign.
type VerifyStats struct {
	Tapes     int
	DataGB    float64
	FullyRead int
	// FlaggedFirstPass counts tapes whose first read reported errors (what
	// a single-pass appliance would flag).
	FlaggedFirstPass int
	// Unreadable counts tapes with data lost after all retries.
	Unreadable int
	// LostFiles estimates files lost (a few per bad tape).
	LostFiles int
	// LostGB estimates data lost.
	LostGB float64
	// ReadabilityFraction is FullyRead / Tapes.
	ReadabilityFraction float64
}

// Campaign simulates reading every cartridge with up to maxRetries
// re-reads of error-reporting tapes (the migration practice; the appliance
// uses maxRetries = 1).
func Campaign(classes []MediaClass, maxRetries int, seed int64) VerifyStats {
	if maxRetries < 1 {
		panic(fmt.Sprintf("tape: maxRetries %d < 1", maxRetries))
	}
	r := rand.New(rand.NewSource(seed))
	var s VerifyStats
	for _, c := range classes {
		for i := 0; i < c.Count; i++ {
			s.Tapes++
			s.DataGB += c.CapacityGB
			permanentBad := r.Float64() < c.PermanentBadProb
			firstRead := permanentBad || r.Float64() < c.TransientErrorProb
			if firstRead {
				s.FlaggedFirstPass++
			}
			read := !firstRead
			for attempt := 1; !read && attempt < maxRetries; attempt++ {
				read = !permanentBad && r.Float64() >= c.TransientErrorProb
			}
			if permanentBad {
				read = false
			}
			if read {
				s.FullyRead++
			} else {
				s.Unreadable++
				files := 1 + r.Intn(2)
				s.LostFiles += files
				s.LostGB += c.CapacityGB * (0.005 + r.Float64()*0.03)
			}
		}
	}
	if s.Tapes > 0 {
		s.ReadabilityFraction = float64(s.FullyRead) / float64(s.Tapes)
	}
	return s
}
