package tape

import "testing"

func TestArchiveShape(t *testing.T) {
	classes := NERSCArchive()
	total := 0
	for _, c := range classes {
		total += c.Count
	}
	if total != 23820 {
		t.Fatalf("archive has %d tapes, want 23820 (report total)", total)
	}
}

func TestMigrationReadabilityMatchesReport(t *testing.T) {
	// Report: 99.945% probability of reading 100% of each tape; 13 bad
	// tapes out of 23,820 with < 100 GB lost.
	s := Campaign(NERSCArchive(), 5, 42)
	if s.ReadabilityFraction < 0.999 {
		t.Fatalf("readability = %.5f, want >= 0.999", s.ReadabilityFraction)
	}
	if s.Unreadable == 0 {
		t.Fatal("expected a handful of unreadable tapes, got zero")
	}
	if s.Unreadable > 60 {
		t.Fatalf("unreadable = %d, want tens at most", s.Unreadable)
	}
	if s.LostGB > 200 {
		t.Fatalf("lost %.1f GB, want under ~100-200 GB", s.LostGB)
	}
	if s.DataGB < 4e6 {
		t.Fatalf("archive only %.0f GB, want multi-PB", s.DataGB)
	}
}

func TestSinglePassApplianceOverstates(t *testing.T) {
	// The appliance reads once; the migration retried 3-5 times. First-pass
	// flags must exceed true unreadables by a wide margin.
	one := Campaign(NERSCArchive(), 1, 42)
	five := Campaign(NERSCArchive(), 5, 42)
	if one.Unreadable <= five.Unreadable {
		t.Fatalf("1-pass unreadable %d should exceed 5-pass %d", one.Unreadable, five.Unreadable)
	}
	if five.FlaggedFirstPass < 3*five.Unreadable {
		t.Fatalf("first-pass flags %d should far exceed real bad tapes %d",
			five.FlaggedFirstPass, five.Unreadable)
	}
}

func TestOlderMediaWorse(t *testing.T) {
	classes := NERSCArchive()
	young := Campaign([]MediaClass{classes[0]}, 5, 7)
	old := Campaign([]MediaClass{classes[2]}, 5, 7)
	if old.ReadabilityFraction > young.ReadabilityFraction {
		t.Fatalf("12-year media readability %.5f should not beat 2-year %.5f",
			old.ReadabilityFraction, young.ReadabilityFraction)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := Campaign(NERSCArchive(), 3, 5)
	b := Campaign(NERSCArchive(), 3, 5)
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestInvalidRetriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxRetries 0 did not panic")
		}
	}()
	Campaign(NERSCArchive(), 0, 1)
}
