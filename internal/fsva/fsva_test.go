package fsva

import "testing"

func TestTransportStrings(t *testing.T) {
	if Native.String() != "native-kernel-client" ||
		SyncVMRPC.String() != "fsva-sync-rpc" ||
		SharedMemRing.String() != "fsva-shared-memory" {
		t.Fatal("transport names wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Run(Config{})
}

func TestNativeFastest(t *testing.T) {
	rs := Compare(DefaultConfig(Native))
	if !(rs[0].Elapsed <= rs[2].Elapsed && rs[2].Elapsed <= rs[1].Elapsed) {
		t.Fatalf("ordering wrong: native %v, sync %v, shm %v",
			rs[0].Elapsed, rs[1].Elapsed, rs[2].Elapsed)
	}
}

func TestSharedMemoryNearNative(t *testing.T) {
	// The FSVA thesis: shared-memory forwarding costs only a few percent.
	rs := Compare(DefaultConfig(Native))
	shm := rs[2]
	if shm.OverheadVsNative > 0.10 {
		t.Fatalf("shared-memory overhead %.1f%%, want <= 10%%", shm.OverheadVsNative*100)
	}
	sync := rs[1]
	if sync.OverheadVsNative < 2*shm.OverheadVsNative {
		t.Fatalf("sync RPC overhead %.3f should dwarf shared memory %.3f",
			sync.OverheadVsNative, shm.OverheadVsNative)
	}
}

func TestBiggerBatchesAmortizeBetter(t *testing.T) {
	small := DefaultConfig(SharedMemRing)
	small.RingBatch = 2
	big := DefaultConfig(SharedMemRing)
	big.RingBatch = 64
	rs, rb := Run(small), Run(big)
	if rb.Elapsed > rs.Elapsed {
		t.Fatalf("batch 64 (%v) should not be slower than batch 2 (%v)", rb.Elapsed, rs.Elapsed)
	}
}

func TestPortingChurn(t *testing.T) {
	// Quarterly kernels vs annual FS releases at 4 weeks per port.
	if got := PortingChurn(4, 1, 4); got != 12 {
		t.Fatalf("saved weeks = %v, want 12", got)
	}
	if got := PortingChurn(1, 4, 4); got != 0 {
		t.Fatalf("negative churn should clamp to 0, got %v", got)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Run(DefaultConfig(SyncVMRPC)), Run(DefaultConfig(SyncVMRPC))
	if a.Elapsed != b.Elapsed {
		t.Fatal("non-deterministic")
	}
}
