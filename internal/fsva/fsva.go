// Package fsva models File System Virtual Appliances (§4.2.1 of the
// report; Abd-El-Malek et al., CMU-PDL-08-106): to stop the porting churn
// of parallel file system client code chasing every kernel release, the
// real client runs inside a virtual machine with a frozen OS, and the
// application's OS carries only a small generic forwarding client. The
// open question the CMU work answered is the cost of that indirection:
// naive transports pay a VM world switch per operation, while
// shared-memory rings amortize it to near-native performance — "with
// shared memory tricks common in virtual machines, we hope that this need
// not slow down applications significantly".
package fsva

import (
	"fmt"

	"repro/internal/sim"
)

// Transport selects how the forwarding client reaches the appliance.
type Transport int

// Transports under comparison.
const (
	// Native is the baseline: client code in the application kernel.
	Native Transport = iota
	// SyncVMRPC crosses the VM boundary with a world switch per call.
	SyncVMRPC
	// SharedMemRing batches calls through a shared-memory ring with
	// doorbells only when the ring goes idle.
	SharedMemRing
)

func (t Transport) String() string {
	switch t {
	case Native:
		return "native-kernel-client"
	case SyncVMRPC:
		return "fsva-sync-rpc"
	case SharedMemRing:
		return "fsva-shared-memory"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Config describes the appliance deployment and workload.
type Config struct {
	Transport Transport

	// Ops is the number of file system operations issued (synchronously).
	Ops int
	// OpService is the file system client's own per-op work.
	OpService sim.Time
	// WorldSwitch is the cost of one VM context switch (entry + exit).
	WorldSwitch sim.Time
	// RingBatch is how many queued ops one doorbell drains in the
	// shared-memory transport.
	RingBatch int
	// Threads is the number of concurrent application threads (each
	// issues Ops/Threads operations).
	Threads int
}

// DefaultConfig uses the magnitudes of the CMU prototype: ~3us world
// switches against ~20us metadata-ish client operations.
func DefaultConfig(transport Transport) Config {
	return Config{
		Transport:   transport,
		Ops:         20000,
		OpService:   sim.Time(20e-6),
		WorldSwitch: sim.Time(3e-6),
		RingBatch:   16,
		// One synchronous thread: the forwarding cost sits on the critical
		// path of every call, as it does for a single-threaded application
		// (concurrent threads can hide it behind the appliance's queue).
		Threads: 1,
	}
}

// Result reports one run.
type Result struct {
	Config       Config
	Elapsed      sim.Time
	OpsPerSecond float64
	// OverheadVsNative is elapsed/native - 1; filled by Compare.
	OverheadVsNative float64
}

// Run executes the workload through the configured transport.
func Run(cfg Config) Result {
	if cfg.Ops < 1 || cfg.Threads < 1 || cfg.OpService <= 0 {
		panic(fmt.Sprintf("fsva: invalid config %+v", cfg))
	}
	if cfg.RingBatch < 1 {
		cfg.RingBatch = 1
	}
	eng := sim.NewEngine()
	// The appliance (or kernel client) serializes per-CPU work on one
	// service thread.
	svc := sim.NewServer(eng, 1)

	var res Result
	res.Config = cfg
	perThread := cfg.Ops / cfg.Threads
	done := sim.NewBarrier(eng, cfg.Threads, func(at sim.Time) { res.Elapsed = at })

	for th := 0; th < cfg.Threads; th++ {
		th := th
		var issue func(k int)
		issue = func(k int) {
			if k == perThread {
				done.Arrive()
				return
			}
			service := cfg.OpService
			entry := sim.Time(0)
			switch cfg.Transport {
			case SyncVMRPC:
				// Two world switches (into the appliance and back) on the
				// critical path of every call.
				entry = 2 * cfg.WorldSwitch
			case SharedMemRing:
				// The doorbell world switch amortizes over RingBatch ops;
				// enqueue/dequeue adds a small fixed cost.
				entry = 2*cfg.WorldSwitch/sim.Time(float64(cfg.RingBatch)) + sim.Time(0.3e-6)
			}
			eng.Schedule(entry, func() {
				svc.Submit(service, func(sim.Time) { issue(k + 1) })
			})
			_ = th
		}
		issue(0)
	}
	eng.Run()
	if res.Elapsed > 0 {
		res.OpsPerSecond = float64(perThread*cfg.Threads) / float64(res.Elapsed)
	}
	return res
}

// Compare runs all transports and fills OverheadVsNative.
func Compare(base Config) []Result {
	out := make([]Result, 0, 3)
	var native float64
	for _, tr := range []Transport{Native, SyncVMRPC, SharedMemRing} {
		cfg := base
		cfg.Transport = tr
		r := Run(cfg)
		if tr == Native {
			native = float64(r.Elapsed)
		}
		if native > 0 {
			r.OverheadVsNative = float64(r.Elapsed)/native - 1
		}
		out = append(out, r)
	}
	return out
}

// PortingChurn quantifies the deployment argument: with K kernel releases
// a year and a port costing portWeeks engineer-weeks, the appliance
// approach pays the port once per file system release instead of once per
// kernel release. Returns engineer-weeks/year saved.
func PortingChurn(kernelReleasesPerYear, fsReleasesPerYear int, portWeeks float64) float64 {
	saved := float64(kernelReleasesPerYear-fsReleasesPerYear) * portWeeks
	if saved < 0 {
		return 0
	}
	return saved
}
