package placement

import (
	"testing"
	"testing/quick"
)

func workload() []Chunk { return CheckpointChunks(64, 128, 1<<20) }

func TestRoundRobinDeterministicAndValid(t *testing.T) {
	s := RoundRobin{}
	c := Chunk{File: 3, Index: 7, Size: 1}
	a := s.Place(c, 8, 2)
	b := s.Place(c, 8, 2)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("round robin not deterministic")
	}
	if a[0] != 7 || a[1] != 0 {
		t.Fatalf("round robin placement = %v, want [7 0]", a)
	}
}

func TestAllStrategiesPlaceWithinRange(t *testing.T) {
	f := func(file uint64, index int64, n8 uint8) bool {
		n := int(n8)%16 + 1
		c := Chunk{File: file, Index: index & 0xffff, Size: 1}
		if c.Index < 0 {
			c.Index = -c.Index
		}
		for _, s := range []Strategy{RoundRobin{}, FileOffsetStripe{}, CRUSHLike{}} {
			repl := 2
			if repl > n {
				repl = n
			}
			for _, p := range s.Place(c, n, repl) {
				if p < 0 || p >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicasDistinct(t *testing.T) {
	for _, s := range []Strategy{RoundRobin{}, FileOffsetStripe{}, CRUSHLike{}} {
		ev := Evaluate(s, workload(), 10, 3)
		if ev.ReplicaSpread != 1.0 {
			t.Errorf("%s: replica spread = %v, want 1.0", s.Name(), ev.ReplicaSpread)
		}
	}
}

func TestAllStrategiesReasonablyBalanced(t *testing.T) {
	for _, s := range []Strategy{RoundRobin{}, FileOffsetStripe{}, CRUSHLike{}} {
		ev := Evaluate(s, workload(), 8, 1)
		if ev.Imbalance > 1.5 {
			t.Errorf("%s: imbalance = %v, want <= 1.5 on a uniform workload", s.Name(), ev.Imbalance)
		}
	}
}

func TestRoundRobinConvoysOnSmallFiles(t *testing.T) {
	// Many single-chunk files: round robin dumps every file's chunk 0 on
	// server 0; the randomized strategies spread them.
	chunks := CheckpointChunks(1000, 1, 1<<20)
	rr := Evaluate(RoundRobin{}, chunks, 8, 1)
	fo := Evaluate(FileOffsetStripe{}, chunks, 8, 1)
	if rr.Imbalance < 7.9 {
		t.Fatalf("round-robin single-chunk imbalance = %v, want ~8 (all on server 0)", rr.Imbalance)
	}
	if fo.Imbalance > 1.5 {
		t.Fatalf("file-offset imbalance = %v, want small", fo.Imbalance)
	}
}

func TestCRUSHMovesLittleOnGrowth(t *testing.T) {
	chunks := workload()
	crush := MovedFraction(CRUSHLike{}, chunks, 8, 9, 1)
	rr := MovedFraction(RoundRobin{}, chunks, 8, 9, 1)
	// Ideal minimum is 1/9 ~ 0.11.
	if crush > 0.25 {
		t.Fatalf("CRUSH-like moved %.2f on 8->9 growth, want near 1/9", crush)
	}
	if rr < 0.5 {
		t.Fatalf("round-robin moved only %.2f, expected a wholesale reshuffle", rr)
	}
	if crush >= rr {
		t.Fatal("CRUSH-like should move less than round robin")
	}
}

func TestEvaluatePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid args did not panic")
		}
	}()
	Evaluate(RoundRobin{}, workload(), 0, 1)
}

func TestCheckpointChunksShape(t *testing.T) {
	chunks := CheckpointChunks(3, 4, 100)
	if len(chunks) != 12 {
		t.Fatalf("got %d chunks, want 12", len(chunks))
	}
	if chunks[0].File == 0 {
		t.Fatal("file ids should be nonzero for hashing")
	}
}

// Regression: RoundRobin and FileOffsetStripe used to place replicas at
// (index + r) % n without clamping the replication factor, so asking for
// more replicas than servers wrapped the ring and landed two replicas of
// one chunk on the same server.
func TestStripingReplicasClampedAndDistinct(t *testing.T) {
	for _, s := range []Strategy{RoundRobin{}, FileOffsetStripe{}, Declustered{}} {
		for n := 1; n <= 4; n++ {
			for replicas := 1; replicas <= 6; replicas++ {
				for idx := int64(0); idx < 8; idx++ {
					places := s.Place(Chunk{File: 9, Index: idx, Size: 1}, n, replicas)
					want := replicas
					if want > n {
						want = n
					}
					if len(places) != want {
						t.Fatalf("%s: n=%d replicas=%d placed %d, want %d",
							s.Name(), n, replicas, len(places), want)
					}
					seen := map[int]bool{}
					for _, p := range places {
						if seen[p] {
							t.Fatalf("%s: n=%d replicas=%d duplicate server %d in %v",
								s.Name(), n, replicas, p, places)
						}
						seen[p] = true
					}
				}
			}
		}
	}
}

func TestDeclusteredDeterministicAndDistinct(t *testing.T) {
	d := Declustered{Ratio: 0.1}
	c := Chunk{File: 7, Index: 42, Size: 1}
	a := d.Place(c, 100, 10)
	b := d.Place(c, 100, 10)
	if len(a) != 10 {
		t.Fatalf("placed %d members, want 10", len(a))
	}
	seen := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("declustered placement not deterministic")
		}
		if seen[a[i]] {
			t.Fatalf("duplicate member %d in %v", a[i], a)
		}
		seen[a[i]] = true
	}
}

// partnerCount measures how many distinct servers ever share a group
// with server 0 — the rebuild fan-out a declustering ratio buys.
func partnerCount(ratio float64, n, width, groups int) int {
	d := Declustered{Ratio: ratio}
	partners := map[int]bool{}
	for g := 0; g < groups; g++ {
		places := d.Place(Chunk{File: 1, Index: int64(g)}, n, width)
		member := false
		for _, p := range places {
			if p == 0 {
				member = true
			}
		}
		if !member {
			continue
		}
		for _, p := range places {
			if p != 0 {
				partners[p] = true
			}
		}
	}
	return len(partners)
}

func TestDeclusteringRatioControlsPartnerSpread(t *testing.T) {
	// At ratio 1.0 a drive's rebuild partners spread across the whole
	// population; at a narrow ratio they stay inside a small window.
	const n, width, groups = 400, 10, 4000
	wide := partnerCount(1.0, n, width, groups)
	narrow := partnerCount(0.05, n, width, groups)
	if narrow == 0 || wide == 0 {
		t.Fatalf("no groups hit server 0 (narrow=%d wide=%d)", narrow, wide)
	}
	// Narrow windows bound the partner set near the window size (0.05 *
	// 400 = 20 servers; server 0 sits in up to ~2w windows).
	if narrow > 60 {
		t.Fatalf("narrow declustering produced %d partners, want a bounded neighbourhood", narrow)
	}
	if wide < 3*narrow {
		t.Fatalf("full declustering produced %d partners vs %d narrow — no spread", wide, narrow)
	}
}

func TestDeclusteredBalanced(t *testing.T) {
	ev := Evaluate(Declustered{}, workload(), 16, 4)
	if ev.ReplicaSpread != 1.0 {
		t.Fatalf("replica spread = %v, want 1.0", ev.ReplicaSpread)
	}
	if ev.Imbalance > 2.0 {
		t.Fatalf("imbalance = %v, want <= 2.0 on a uniform workload", ev.Imbalance)
	}
}

func TestCRUSHReplicasCappedAtServers(t *testing.T) {
	c := Chunk{File: 1, Index: 0, Size: 1}
	places := CRUSHLike{}.Place(c, 2, 3)
	if len(places) != 2 {
		t.Fatalf("got %d replicas on a 2-server cluster, want 2", len(places))
	}
	if places[0] == places[1] {
		t.Fatal("duplicate replica placement")
	}
}

func BenchmarkDeclusteredPlace(b *testing.B) {
	d := Declustered{Ratio: 0.1}
	for i := 0; i < b.N; i++ {
		d.Place(Chunk{File: uint64(i), Index: int64(i)}, 10000, 12)
	}
}
