package placement

import (
	"testing"
	"testing/quick"
)

func workload() []Chunk { return CheckpointChunks(64, 128, 1<<20) }

func TestRoundRobinDeterministicAndValid(t *testing.T) {
	s := RoundRobin{}
	c := Chunk{File: 3, Index: 7, Size: 1}
	a := s.Place(c, 8, 2)
	b := s.Place(c, 8, 2)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("round robin not deterministic")
	}
	if a[0] != 7 || a[1] != 0 {
		t.Fatalf("round robin placement = %v, want [7 0]", a)
	}
}

func TestAllStrategiesPlaceWithinRange(t *testing.T) {
	f := func(file uint64, index int64, n8 uint8) bool {
		n := int(n8)%16 + 1
		c := Chunk{File: file, Index: index & 0xffff, Size: 1}
		if c.Index < 0 {
			c.Index = -c.Index
		}
		for _, s := range []Strategy{RoundRobin{}, FileOffsetStripe{}, CRUSHLike{}} {
			repl := 2
			if repl > n {
				repl = n
			}
			for _, p := range s.Place(c, n, repl) {
				if p < 0 || p >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicasDistinct(t *testing.T) {
	for _, s := range []Strategy{RoundRobin{}, FileOffsetStripe{}, CRUSHLike{}} {
		ev := Evaluate(s, workload(), 10, 3)
		if ev.ReplicaSpread != 1.0 {
			t.Errorf("%s: replica spread = %v, want 1.0", s.Name(), ev.ReplicaSpread)
		}
	}
}

func TestAllStrategiesReasonablyBalanced(t *testing.T) {
	for _, s := range []Strategy{RoundRobin{}, FileOffsetStripe{}, CRUSHLike{}} {
		ev := Evaluate(s, workload(), 8, 1)
		if ev.Imbalance > 1.5 {
			t.Errorf("%s: imbalance = %v, want <= 1.5 on a uniform workload", s.Name(), ev.Imbalance)
		}
	}
}

func TestRoundRobinConvoysOnSmallFiles(t *testing.T) {
	// Many single-chunk files: round robin dumps every file's chunk 0 on
	// server 0; the randomized strategies spread them.
	chunks := CheckpointChunks(1000, 1, 1<<20)
	rr := Evaluate(RoundRobin{}, chunks, 8, 1)
	fo := Evaluate(FileOffsetStripe{}, chunks, 8, 1)
	if rr.Imbalance < 7.9 {
		t.Fatalf("round-robin single-chunk imbalance = %v, want ~8 (all on server 0)", rr.Imbalance)
	}
	if fo.Imbalance > 1.5 {
		t.Fatalf("file-offset imbalance = %v, want small", fo.Imbalance)
	}
}

func TestCRUSHMovesLittleOnGrowth(t *testing.T) {
	chunks := workload()
	crush := MovedFraction(CRUSHLike{}, chunks, 8, 9, 1)
	rr := MovedFraction(RoundRobin{}, chunks, 8, 9, 1)
	// Ideal minimum is 1/9 ~ 0.11.
	if crush > 0.25 {
		t.Fatalf("CRUSH-like moved %.2f on 8->9 growth, want near 1/9", crush)
	}
	if rr < 0.5 {
		t.Fatalf("round-robin moved only %.2f, expected a wholesale reshuffle", rr)
	}
	if crush >= rr {
		t.Fatal("CRUSH-like should move less than round robin")
	}
}

func TestEvaluatePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid args did not panic")
		}
	}()
	Evaluate(RoundRobin{}, workload(), 0, 1)
}

func TestCheckpointChunksShape(t *testing.T) {
	chunks := CheckpointChunks(3, 4, 100)
	if len(chunks) != 12 {
		t.Fatalf("got %d chunks, want 12", len(chunks))
	}
	if chunks[0].File == 0 {
		t.Fatal("file ids should be nonzero for hashing")
	}
}

func TestCRUSHReplicasCappedAtServers(t *testing.T) {
	c := Chunk{File: 1, Index: 0, Size: 1}
	places := CRUSHLike{}.Place(c, 2, 3)
	if len(places) != 2 {
		t.Fatalf("got %d replicas on a 2-server cluster, want 2", len(places))
	}
	if places[0] == places[1] {
		t.Fatal("duplicate replica placement")
	}
}
