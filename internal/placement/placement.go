// Package placement implements the data-placement strategy comparison of
// the report's "Parallel Layout" exploration (§4.2.3, Molina-Estolano et
// al.): a trace-driven simulator abstracting over how parallel file
// systems choose storage nodes for chunks of data. Three strategy
// families are implemented — deterministic round-robin striping
// (PVFS-like), per-file randomized striping (PanFS-like), and
// CRUSH-style pseudo-random hashing with replica placement and
// remapping-on-growth (Ceph-like) — and evaluated for load balance and
// data movement under cluster expansion.
package placement

import (
	"fmt"
	"hash/fnv"
)

// Chunk identifies one placeable unit of a file.
type Chunk struct {
	File  uint64
	Index int64
	Size  int64
}

// Strategy maps chunks to servers.
type Strategy interface {
	Name() string
	// Place returns the servers (primary first) storing the chunk among n
	// servers, with the given replication factor.
	Place(c Chunk, n, replicas int) []int
}

// RoundRobin stripes chunk i of every file to server i mod n, the
// PVFS-style deterministic layout.
type RoundRobin struct{}

// Name identifies the strategy.
func (RoundRobin) Name() string { return "round-robin" }

// Place implements Strategy. Replicas land on consecutive distinct
// servers; a replication factor beyond the population is clamped to n
// (matching CRUSHLike), so no chunk ever stores two replicas on one
// server.
func (RoundRobin) Place(c Chunk, n, replicas int) []int {
	if replicas > n {
		replicas = n
	}
	out := make([]int, replicas)
	for r := 0; r < replicas; r++ {
		out[r] = int((c.Index + int64(r)) % int64(n))
	}
	return out
}

// FileOffsetStripe starts each file's stripe rotation at a per-file random
// server (PanFS-like), decorrelating files.
type FileOffsetStripe struct{}

// Name identifies the strategy.
func (FileOffsetStripe) Name() string { return "file-offset-stripe" }

// Place implements Strategy. Like RoundRobin, the replication factor is
// clamped to n so replicas are always distinct.
func (FileOffsetStripe) Place(c Chunk, n, replicas int) []int {
	if replicas > n {
		replicas = n
	}
	start := int(mix(c.File) % uint64(n))
	out := make([]int, replicas)
	for r := 0; r < replicas; r++ {
		out[r] = (start + int(c.Index) + r) % n
	}
	return out
}

// CRUSHLike places each chunk pseudo-randomly by hashing (file, index,
// replica) with highest-random-weight (rendezvous) selection, so adding a
// server remaps only ~1/n of the data — the stable-placement property
// Ceph's CRUSH provides.
type CRUSHLike struct{}

// Name identifies the strategy.
func (CRUSHLike) Name() string { return "crush-like" }

// Place implements Strategy.
func (CRUSHLike) Place(c Chunk, n, replicas int) []int {
	if replicas > n {
		replicas = n
	}
	type cand struct {
		server int
		weight uint64
	}
	// Rendezvous hashing: score every server, take the top `replicas`.
	best := make([]cand, 0, replicas)
	for s := 0; s < n; s++ {
		w := mix(c.File ^ uint64(c.Index)<<20 ^ uint64(s)*0x9e3779b97f4a7c15)
		inserted := false
		for i := range best {
			if w > best[i].weight {
				best = append(best, cand{})
				copy(best[i+1:], best[i:])
				best[i] = cand{server: s, weight: w}
				inserted = true
				break
			}
		}
		if !inserted && len(best) < replicas {
			best = append(best, cand{server: s, weight: w})
		}
		if len(best) > replicas {
			best = best[:replicas]
		}
	}
	out := make([]int, len(best))
	for i, b := range best {
		out[i] = b.server
	}
	return out
}

// Declustered places each redundancy group on a pseudo-random window of
// the population: a hash of (file, index) picks the window start, and
// rendezvous hashing selects the group's members inside it. Ratio is the
// fraction of the population one window spans — at 1.0 every server is a
// potential rebuild partner of every other (full declustering, the
// CRUSH-style limit); small ratios confine a drive's partners to a
// narrow neighbourhood, approaching traditional RAID groups. The window
// is never smaller than the group itself, so members are always
// distinct. Unlike CRUSHLike this strategy scores with an inline
// splitmix64-style mixer instead of an allocating fnv hash, because
// internal/pfs builds population-scale group maps (10^4–10^5 drives)
// through it.
type Declustered struct {
	// Ratio is the window span as a fraction of the population, in
	// (0, 1]; zero defaults to 1.0 (fully declustered).
	Ratio float64
}

// Name identifies the strategy.
func (d Declustered) Name() string { return "declustered" }

// Place implements Strategy.
func (d Declustered) Place(c Chunk, n, replicas int) []int {
	if replicas > n {
		replicas = n
	}
	ratio := d.Ratio
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	w := int(ratio*float64(n) + 0.5)
	if w < replicas {
		w = replicas
	}
	if w > n {
		w = n
	}
	start := int(mix64(c.File*0x9e3779b97f4a7c15^uint64(c.Index)) % uint64(n))
	type cand struct {
		server int
		weight uint64
	}
	// Rendezvous hashing inside the window: score every member of the
	// window, take the top `replicas` — stable under population growth
	// like CRUSHLike, but over the declustering window only.
	best := make([]cand, 0, replicas)
	for i := 0; i < w; i++ {
		s := (start + i) % n
		weight := mix64(c.File ^ uint64(c.Index)<<20 ^ uint64(s)*0x9e3779b97f4a7c15)
		inserted := false
		for j := range best {
			if weight > best[j].weight {
				best = append(best, cand{})
				copy(best[j+1:], best[j:])
				best[j] = cand{server: s, weight: weight}
				inserted = true
				break
			}
		}
		if !inserted && len(best) < replicas {
			best = append(best, cand{server: s, weight: weight})
		}
		if len(best) > replicas {
			best = best[:replicas]
		}
	}
	out := make([]int, len(best))
	for i, b := range best {
		out[i] = b.server
	}
	return out
}

func mix(x uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// Mix64 exposes the placement mixer for callers that must hash
// compatibly with Declustered — internal/pfs maps stripe units onto
// redundancy groups with it.
func Mix64(x uint64) uint64 { return mix64(x) }

// mix64 is a splitmix64-style finalizer: a cheap, allocation-free,
// well-distributed 64-bit mixer for the hot placement paths.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Evaluation measures a strategy over a workload of chunks.
type Evaluation struct {
	Strategy string
	Servers  int
	// BytesPerServer is the stored load per server (primary replica only).
	BytesPerServer []int64
	// Imbalance is max/mean primary load.
	Imbalance float64
	// ReplicaSpread is the fraction of chunks whose replicas all land on
	// distinct servers (must be 1.0 for correct strategies when n >=
	// replicas).
	ReplicaSpread float64
}

// Evaluate places every chunk and computes balance metrics.
func Evaluate(s Strategy, chunks []Chunk, n, replicas int) Evaluation {
	if n < 1 || replicas < 1 {
		panic(fmt.Sprintf("placement: invalid n=%d replicas=%d", n, replicas))
	}
	ev := Evaluation{Strategy: s.Name(), Servers: n, BytesPerServer: make([]int64, n)}
	distinct := 0
	for _, c := range chunks {
		places := s.Place(c, n, replicas)
		ev.BytesPerServer[places[0]] += c.Size
		seen := map[int]bool{}
		ok := true
		for _, p := range places {
			if p < 0 || p >= n {
				panic(fmt.Sprintf("placement: %s placed chunk on invalid server %d", s.Name(), p))
			}
			if seen[p] {
				ok = false
			}
			seen[p] = true
		}
		if ok {
			distinct++
		}
	}
	var total, maxLoad int64
	for _, b := range ev.BytesPerServer {
		total += b
		if b > maxLoad {
			maxLoad = b
		}
	}
	if total > 0 {
		ev.Imbalance = float64(maxLoad) / (float64(total) / float64(n))
	}
	if len(chunks) > 0 {
		ev.ReplicaSpread = float64(distinct) / float64(len(chunks))
	}
	return ev
}

// MovedFraction reports the fraction of chunks whose primary changes when
// the cluster grows from n to m servers — CRUSH-style placement moves
// ~(m-n)/m; striping strategies reshuffle nearly everything.
func MovedFraction(s Strategy, chunks []Chunk, n, m, replicas int) float64 {
	if len(chunks) == 0 {
		return 0
	}
	moved := 0
	for _, c := range chunks {
		if s.Place(c, n, replicas)[0] != s.Place(c, m, replicas)[0] {
			moved++
		}
	}
	return float64(moved) / float64(len(chunks))
}

// CheckpointChunks builds the N-1 checkpoint workload used in the study:
// files of fileChunks chunks each.
func CheckpointChunks(files, fileChunks int, chunkSize int64) []Chunk {
	out := make([]Chunk, 0, files*fileChunks)
	for f := 0; f < files; f++ {
		for i := 0; i < fileChunks; i++ {
			out = append(out, Chunk{File: uint64(f) + 1, Index: int64(i), Size: chunkSize})
		}
	}
	return out
}
