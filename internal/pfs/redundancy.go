package pfs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
)

// This file generalizes the failure model from a single parity neighbour
// to k+m Reed-Solomon-style redundancy groups with declustered placement
// — the layer the report's petascale reliability argument turns on. The
// population is carved into redundancy groups of width k+m whose members
// a placement.Declustered window hash spreads over the cluster, so every
// drive's rebuild partners fan out across (a configurable fraction of)
// the whole population. A crash starts a real rebuild: every group the
// dead drive belonged to re-creates its share onto a spare by reading
// chunks from k surviving members — ordinary disk-queue traffic that
// competes with foreground checkpoints and reads, which is where
// rebuild-storm interference comes from. Degraded reads reconstruct from
// any k survivors at a cost proportional to the group width, and the
// (m+1)-th overlapping failure inside a group is a counted, typed data-
// loss event (ErrDataLoss, pfs.loss.*) — never a silent read, never a
// panic. With the zero Redundancy value none of this exists and every
// event trajectory is byte-identical to the parity-neighbour model.

// ErrDataLoss is returned by ReadErr completions when more than m
// members of the piece's redundancy group are concurrently failed —
// fewer than k survivors remain, so nothing can reconstruct the data.
var ErrDataLoss = errors.New("pfs: data loss: redundancy group lost more than m members")

// Redundancy configures k+m erasure-coded redundancy groups with
// declustered placement. The zero value disables the layer entirely,
// keeping the legacy single-parity-neighbour model and its exact event
// trajectories.
type Redundancy struct {
	// K is the number of data fragments per group; M the number of
	// redundancy fragments. A group survives any M concurrent member
	// failures and reconstructs reads from any K survivors.
	K, M int

	// Declustering is the fraction of the population over which one
	// group's members (and therefore one drive's rebuild partners)
	// spread, in (0, 1]; zero defaults to 1.0 — fully declustered,
	// every server a potential partner. Small values confine groups to
	// narrow windows, approaching traditional RAID sets.
	Declustering float64

	// GroupsPerServer is how many redundancy groups each server
	// participates in (default 4). More groups spread a dead drive's
	// rebuild over more partners but widen its failure exposure.
	GroupsPerServer int

	// UnitBytes is each member's share of one group — the bytes a
	// rebuild must re-create per group (default 8 MiB).
	UnitBytes int64

	// ChunkBytes is the rebuild I/O granularity: each chunk is k
	// parallel partner reads plus one spare write (default 2 MiB).
	ChunkBytes int64

	// Throttle is the fraction of its partners' disk time a rebuild may
	// consume, in (0, 1]; default 1 (rebuild at full speed). Lower
	// values idle the rebuild between chunks, trading longer rebuild
	// windows for less foreground interference.
	Throttle float64
}

// Enabled reports whether the redundancy layer is active.
func (r Redundancy) Enabled() bool { return r.K > 0 || r.M > 0 }

// Width is the group size k+m.
func (r Redundancy) Width() int { return r.K + r.M }

// Validate reports a descriptive error for an unusable configuration.
func (r Redundancy) Validate() error {
	switch {
	case r.K < 1 || r.M < 1:
		return fmt.Errorf("pfs: redundancy needs K >= 1 and M >= 1, got %d+%d", r.K, r.M)
	case r.Declustering < 0 || r.Declustering > 1:
		return fmt.Errorf("pfs: declustering ratio %v outside (0, 1]", r.Declustering)
	case r.GroupsPerServer < 0:
		return fmt.Errorf("pfs: GroupsPerServer %d < 0", r.GroupsPerServer)
	case r.UnitBytes < 0 || r.ChunkBytes < 0:
		return fmt.Errorf("pfs: negative rebuild sizes")
	case r.Throttle < 0 || r.Throttle > 1:
		return fmt.Errorf("pfs: rebuild throttle %v outside (0, 1]", r.Throttle)
	}
	return nil
}

func (r Redundancy) groupsPerServer() int {
	if r.GroupsPerServer > 0 {
		return r.GroupsPerServer
	}
	return 4
}

func (r Redundancy) unitBytes() int64 {
	if r.UnitBytes > 0 {
		return r.UnitBytes
	}
	return 8 << 20
}

func (r Redundancy) chunkBytes() int64 {
	if r.ChunkBytes > 0 {
		return r.ChunkBytes
	}
	return 2 << 20
}

func (r Redundancy) ratio() float64 {
	if r.Declustering > 0 {
		return r.Declustering
	}
	return 1
}

func (r Redundancy) throttle() float64 {
	if r.Throttle > 0 {
		return r.Throttle
	}
	return 1
}

// RebuildStats aggregates the declustered-rebuild activity over a run.
type RebuildStats struct {
	// Started counts rebuilds launched (one per applied crash);
	// Completed counts rebuilds that re-created every group; Aborted
	// counts rebuilds cancelled because the server recovered first.
	Started, Completed, Aborted int64

	// GroupsRebuilt counts groups whose share was fully re-created onto
	// a spare; AbandonedGroups counts groups a rebuild had to give up on
	// (fewer than k live members, or no spare).
	GroupsRebuilt, AbandonedGroups int64

	// Bytes is the reconstructed data written to spares.
	Bytes int64

	// Busy sums completed rebuild durations; MaxDuration is the longest.
	Busy, MaxDuration sim.Time
}

// LossStats aggregates data-loss accounting over a run.
type LossStats struct {
	// Events counts transitions of any group beyond m concurrent
	// failures (each overlapping (m+1)-th crash is one event).
	Events int64

	// Groups counts distinct groups that ever exceeded m concurrent
	// failures; Bytes is their data payload (k * UnitBytes each).
	Groups int64
	Bytes  int64

	// Reads counts client reads that failed with ErrDataLoss.
	Reads int64
}

// ecGroup is one k+m redundancy group. members holds server indices,
// data slots first ([0,K)), redundancy slots after ([K,K+M)). failed
// counts members currently crashed and not yet rebuilt or recovered.
// reserved holds spares claimed by in-flight rebuild chains: two members
// of one group can be rebuilding concurrently, and without the claim
// both chains could pick the same spare for different slots.
type ecGroup struct {
	members  []int32
	reserved []int32
	failed   int
	lost     bool // ever exceeded m concurrent failures
}

func (g *ecGroup) has(idx int32) bool {
	for _, m := range g.members {
		if m == idx {
			return true
		}
	}
	return false
}

func (g *ecGroup) reservedHas(idx int32) bool {
	for _, r := range g.reserved {
		if r == idx {
			return true
		}
	}
	return false
}

func (g *ecGroup) reserve(idx int32) { g.reserved = append(g.reserved, idx) }

func (g *ecGroup) unreserve(idx int32) {
	for i, r := range g.reserved {
		if r == idx {
			g.reserved = append(g.reserved[:i], g.reserved[i+1:]...)
			return
		}
	}
}

// ecIncident tracks one crashed server's rebuild: the groups still open
// (not yet rebuilt — including groups whose chain abandoned, since their
// member is still crashed and only the server's recovery can restore the
// failed count), and whether a recovery cancelled the job.
type ecIncident struct {
	server    int
	start     sim.Time
	gids      []int32 // affected groups, in deterministic order
	open      map[int32]bool
	pending   int // rebuild chains still running
	cancelled bool
}

// redState is the redundancy layer's runtime state.
type redState struct {
	cfg       Redundancy
	groups    []ecGroup
	byServer  [][]int32 // server index -> groups it belongs to
	incidents map[int]*ecIncident

	stats RebuildStats
	loss  LossStats

	// Instrument handles (nil when uninstrumented).
	cRebStarted   *obs.Counter
	cRebCompleted *obs.Counter
	cRebAborted   *obs.Counter
	cRebGroups    *obs.Counter
	cRebBytes     *obs.Counter
	cLossEvents   *obs.Counter
	cLossGroups   *obs.Counter
	cLossBytes    *obs.Counter
	cLossReads    *obs.Counter
}

// newRedState builds the population-scale group map: G = servers *
// GroupsPerServer / width groups, each placed by the declustered window
// hash. Construction is pure (no events), so it cannot perturb the sim.
func newRedState(cfg Config) *redState {
	r := cfg.Redundancy
	width := r.Width()
	groups := cfg.NumServers * r.groupsPerServer() / width
	if groups < 1 {
		groups = 1
	}
	strat := placement.Declustered{Ratio: r.ratio()}
	red := &redState{
		cfg:       r,
		groups:    make([]ecGroup, groups),
		byServer:  make([][]int32, cfg.NumServers),
		incidents: make(map[int]*ecIncident),
	}
	for g := 0; g < groups; g++ {
		members := strat.Place(placement.Chunk{File: 0x5245445f, Index: int64(g)}, cfg.NumServers, width)
		ms := make([]int32, len(members))
		for i, m := range members {
			ms[i] = int32(m)
			red.byServer[m] = append(red.byServer[m], int32(g))
		}
		red.groups[g].members = ms
	}
	return red
}

// armRedundancy registers the pfs.rebuild.* and pfs.loss.* instruments.
// Called from instrument() only when the layer is enabled, so legacy
// configurations register exactly the pre-redundancy metric set.
func (fs *FS) armRedundancy(reg *obs.Registry) {
	red := fs.red
	red.cRebStarted = reg.Counter(fs.metric("pfs.rebuild.started"))
	red.cRebCompleted = reg.Counter(fs.metric("pfs.rebuild.completed"))
	red.cRebAborted = reg.Counter(fs.metric("pfs.rebuild.aborted"))
	red.cRebGroups = reg.Counter(fs.metric("pfs.rebuild.groups_rebuilt"))
	red.cRebBytes = reg.Counter(fs.metric("pfs.rebuild.bytes"))
	red.cLossEvents = reg.Counter(fs.metric("pfs.loss.events"))
	red.cLossGroups = reg.Counter(fs.metric("pfs.loss.groups"))
	red.cLossBytes = reg.Counter(fs.metric("pfs.loss.bytes"))
	red.cLossReads = reg.Counter(fs.metric("pfs.loss.reads"))
	reg.GaugeFunc(fs.metric("pfs.rebuild.busy_s"), func() float64 { return float64(red.stats.Busy) })
}

// RebuildStats returns a copy of the rebuild accounting so far (zero
// without redundancy).
func (fs *FS) RebuildStats() RebuildStats {
	if fs.red == nil {
		return RebuildStats{}
	}
	return fs.red.stats
}

// LossStats returns a copy of the data-loss accounting so far (zero
// without redundancy).
func (fs *FS) LossStats() LossStats {
	if fs.red == nil {
		return LossStats{}
	}
	return fs.red.loss
}

// RedundancyGroups reports the number of redundancy groups (0 without
// redundancy).
func (fs *FS) RedundancyGroups() int {
	if fs.red == nil {
		return 0
	}
	return len(fs.red.groups)
}

// groupOf maps a file's stripe unit into its redundancy group: a hash of
// (file, unit/k) picks the group, unit%k the data slot — k consecutive
// units of a file share a group, their redundancy fragments live on the
// group's m trailing members.
func (red *redState) groupOf(fileID int, unit int64) (gid, slot int) {
	k := int64(red.cfg.K)
	gid = int(placement.Mix64(uint64(fileID+1)*0x9e3779b97f4a7c15^uint64(unit/k)) % uint64(len(red.groups)))
	slot = int(unit % k)
	return gid, slot
}

// dataServer resolves the server storing a file's stripe unit and its
// redundancy group (-1 without redundancy, where placement stays the
// legacy rotation). With redundancy the group map is authoritative, so a
// rebuilt slot's traffic follows the member replacement to the spare.
func (fs *FS) dataServer(st *fileState, unit int64) (*server, int) {
	if fs.red == nil {
		return fs.serverFor(st, unit), -1
	}
	gid, slot := fs.red.groupOf(st.id, unit)
	return fs.servers[fs.red.groups[gid].members[slot]], gid
}

// ecFileID is the synthetic extent-map file id for group gid's
// redundancy-layer extents (negative, so it never collides with a real
// file id).
func ecFileID(gid int) int { return -(gid + 1) }

// ecExtent returns (allocating on first use) the disk offset of server
// s's share of group gid — the UnitBytes region its fragment for that
// slot occupies. Both the redundancy-fragment write path and the rebuild
// read/write paths address group data through it.
func (fs *FS) ecExtent(s *server, gid, slot int) int64 {
	key := stripeKey{file: ecFileID(gid), unit: int64(slot)}
	off, ok := s.extent[key]
	if !ok {
		off = s.next
		s.next += fs.red.cfg.unitBytes()
		s.extent[key] = off
	}
	return off
}

// ecPosIn maps a piece to an offset inside a group-unit region.
func (fs *FS) ecPosIn(p subOp) int64 {
	return (p.unit*fs.Cfg.StripeUnit + p.offIn) % fs.red.cfg.unitBytes()
}

// liveMember pairs a group member with its slot for extent addressing.
type liveMember struct {
	srv  *server
	slot int
}

// ecLiveMembers returns up to want live members of gid, excluding the
// slot being reconstructed, in member order — the "any k survivors" a
// reconstruction reads from.
func (fs *FS) ecLiveMembers(gid, exclude, want int) []liveMember {
	g := &fs.red.groups[gid]
	out := make([]liveMember, 0, want)
	for slot, idx := range g.members {
		if slot == exclude {
			continue
		}
		s := fs.servers[idx]
		if s.down {
			continue
		}
		out = append(out, liveMember{srv: s, slot: slot})
		if len(out) == want {
			break
		}
	}
	return out
}

// writeRedundant fans a data piece's redundancy updates to the group's
// live m fragment holders: each pays a fragment-sized disk write on its
// own queues before the client's write acknowledges — the erasure-coding
// write amplification. Crashed fragment holders are skipped; the group's
// failed count already accounts for their staleness.
func (fs *FS) writeRedundant(gid int, p subOp, ot *obs.OpTimer, done func()) {
	red := fs.red
	g := &red.groups[gid]
	var frag []liveMember
	for slot := red.cfg.K; slot < len(g.members); slot++ {
		s := fs.servers[g.members[slot]]
		if !s.down {
			frag = append(frag, liveMember{srv: s, slot: slot})
		}
	}
	if len(frag) == 0 {
		done()
		return
	}
	barrier := sim.NewBarrier(fs.eng, len(frag), func(sim.Time) { done() })
	posIn := fs.ecPosIn(p)
	for _, m := range frag {
		m := m
		off := fs.ecExtent(m.srv, gid, m.slot)
		svc, det := m.srv.dsk.AccessTimed(off+posIn, p.size)
		ot.Add(obs.StageDiskSeek, det.SeekSec)
		ot.Add(obs.StageDiskRotation, det.RotationSec)
		ot.Add(obs.StageDiskTransfer, det.TransferSec)
		m.srv.bytesWritten += p.size
		m.srv.cOps.Inc()
		m.srv.cBytesW.Add(p.size)
		enq := fs.eng.Now()
		m.srv.dq.Submit(svc, func(at sim.Time) {
			ot.Add(obs.StageQueue, float64(at-enq-svc))
			barrier.Arrive()
		})
	}
}

// readReconstruct serves a piece whose home member is down by reading
// from any k live members of its group in parallel — k fragment-sized
// disk reads, so the degraded cost is proportional to the group width —
// and shipping the decoded data from the first survivor's NIC.
func (fs *FS) readReconstruct(gid int, home *server, p subOp, ot *obs.OpTimer, done func(error)) {
	red := fs.red
	g := &red.groups[gid]
	if g.failed > red.cfg.M {
		fs.lossRead(done)
		return
	}
	homeSlot := -1
	for slot, idx := range g.members {
		if int(idx) == home.idx {
			homeSlot = slot
			break
		}
	}
	readers := fs.ecLiveMembers(gid, homeSlot, red.cfg.K)
	if len(readers) < red.cfg.K {
		fs.failOp(done)
		return
	}
	fs.faults.DegradedReads++
	fs.cDegraded.Inc()
	posIn := fs.ecPosIn(p)
	var total, base sim.Time
	failed := false
	barrier := sim.NewBarrier(fs.eng, len(readers), func(sim.Time) {
		if failed {
			fs.failOp(done)
			return
		}
		first := readers[0].srv
		xfer := sim.Time(float64(p.size) / fs.Cfg.ServerNetBW)
		enq := fs.eng.Now()
		first.nic.Submit(xfer, func(at sim.Time) {
			ot.Add(obs.StageNet, float64(xfer))
			ot.Add(obs.StageQueue, float64(at-enq-xfer))
			done(nil)
		})
	})
	for i, m := range readers {
		m := m
		off := fs.ecExtent(m.srv, gid, m.slot)
		svc, det := m.srv.dsk.AccessTimed(off+posIn, p.size)
		ot.Add(obs.StageDiskSeek, det.SeekSec)
		ot.Add(obs.StageDiskRotation, det.RotationSec)
		ot.Add(obs.StageDiskTransfer, det.TransferSec)
		total += svc
		if i == 0 {
			base = svc
		}
		m.srv.bytesRead += p.size
		m.srv.cOps.Inc()
		m.srv.cBytesR.Add(p.size)
		epoch := m.srv.epoch
		enq := fs.eng.Now()
		m.srv.dq.Submit(svc, func(at sim.Time) {
			ot.Add(obs.StageQueue, float64(at-enq-svc))
			if m.srv.epoch != epoch {
				failed = true
			}
			barrier.Arrive()
		})
	}
	// The reads beyond one nominal fragment are the reconstruction cost.
	ot.Add(obs.StageDegraded, float64(total-base))
}

// lossRead fails a read of a group with more than m concurrent failures:
// a counted, typed data-loss event delivered after the RPC timeout —
// never a silent read, never a panic.
func (fs *FS) lossRead(done func(error)) {
	fs.red.loss.Reads++
	fs.red.cLossReads.Inc()
	fs.eng.Schedule(fs.failTimeout(), func() { done(ErrDataLoss) })
}

// ecOnCrash is the redundancy layer's CrashTarget hook: bump every
// affected group's failed count (counting loss events past m), then fan
// the rebuild out — one chain per group, all running concurrently
// against the surviving partners' disk queues.
func (fs *FS) ecOnCrash(srv *server) {
	red := fs.red
	gids := append([]int32(nil), red.byServer[srv.idx]...)
	if len(gids) == 0 {
		// A server in no groups has nothing to rebuild; counting a
		// zero-duration rebuild here would dilute the duration stats.
		return
	}
	inc := &ecIncident{
		server:  srv.idx,
		start:   fs.eng.Now(),
		gids:    gids,
		open:    make(map[int32]bool, len(gids)),
		pending: len(gids),
	}
	red.incidents[srv.idx] = inc
	for _, gid := range gids {
		g := &red.groups[gid]
		g.failed++
		if g.failed > red.cfg.M {
			red.loss.Events++
			red.cLossEvents.Inc()
			if !g.lost {
				g.lost = true
				red.loss.Groups++
				red.cLossGroups.Inc()
				lost := int64(red.cfg.K) * red.cfg.unitBytes()
				red.loss.Bytes += lost
				red.cLossBytes.Add(lost)
			}
		}
		inc.open[gid] = true
	}
	red.stats.Started++
	red.cRebStarted.Inc()
	for _, gid := range gids {
		gid := gid
		fs.rebuildGroup(inc, int(gid), func(completed bool) { fs.ecGroupDone(inc, gid, completed) })
	}
}

// ecOnRecover is the redundancy layer's RecoverTarget hook: the server's
// data is back, so groups not yet rebuilt regain their member and the
// remaining rebuild chains stand down at their next chunk boundary.
// Groups already re-created on spares keep the spare — the recovered
// drive simply no longer serves them.
func (fs *FS) ecOnRecover(srv *server) {
	red := fs.red
	inc := red.incidents[srv.idx]
	if inc == nil || inc.cancelled {
		return
	}
	inc.cancelled = true
	for _, gid := range inc.gids {
		if inc.open[gid] {
			delete(inc.open, gid)
			red.groups[gid].failed--
		}
	}
	if inc.pending == 0 {
		// Every chain had already finished; abandoned groups kept the
		// record alive for exactly this decrement, and nothing else will
		// retire it now.
		delete(red.incidents, srv.idx)
	}
}

// ecGroupDone closes one group's rebuild chain. A completed group leaves
// the incident and drops its failed count — the spare holds its share
// now. An abandoned group stays open: its member is still crashed and
// not rebuilt, so only the server's recovery (ecOnRecover) may restore
// the failed count.
func (fs *FS) ecGroupDone(inc *ecIncident, gid int32, completed bool) {
	red := fs.red
	if inc.open[gid] {
		if completed {
			delete(inc.open, gid)
			red.groups[gid].failed--
			red.stats.GroupsRebuilt++
			red.cRebGroups.Inc()
		} else {
			red.stats.AbandonedGroups++
		}
	}
	inc.pending--
	if inc.pending == 0 {
		fs.ecRebuildFinished(inc)
	}
}

// ecRebuildFinished retires an incident once every chain has drained.
// An incident with abandoned groups still open stays registered so a
// later recovery can restore their failed counts.
func (fs *FS) ecRebuildFinished(inc *ecIncident) {
	red := fs.red
	if len(inc.open) == 0 && red.incidents[inc.server] == inc {
		// A crash→recover→crash sequence may have installed a newer
		// incident for this server; only this one's record is retired.
		delete(red.incidents, inc.server)
	}
	if inc.cancelled {
		red.stats.Aborted++
		red.cRebAborted.Inc()
		return
	}
	dur := fs.eng.Now() - inc.start
	red.stats.Completed++
	red.stats.Busy += dur
	if dur > red.stats.MaxDuration {
		red.stats.MaxDuration = dur
	}
	red.cRebCompleted.Inc()
}

// ecPickSpare walks the ring from the dead server for a live server
// outside the group — the distributed spare the group's share is
// re-created on. The pick is reserved in the group, so a concurrent
// chain rebuilding another member of the same group (two crashes at
// once) cannot claim the same spare for a different slot; the chain
// releases the claim when it replaces the member, re-picks, or gives up.
func (fs *FS) ecPickSpare(gid, deadIdx int) *server {
	g := &fs.red.groups[gid]
	n := len(fs.servers)
	for i := 1; i < n; i++ {
		s := fs.servers[(deadIdx+i)%n]
		if !s.down && !g.has(int32(s.idx)) && !g.reservedHas(int32(s.idx)) {
			g.reserve(int32(s.idx))
			return s
		}
	}
	return nil
}

// rebuildGroup re-creates one group's dead share chunk by chunk: each
// chunk is k parallel partner reads (one fragment each, on the partners'
// own disk queues, competing with whatever else those spindles are
// doing) followed by one reconstruction write on the spare. A partner or
// spare death retries the chunk against re-picked survivors; dropping
// below k live members, running out of spares, or a cancellation
// abandons the chain. On completion the spare replaces the dead member
// in the group map and inherits its extents.
func (fs *FS) rebuildGroup(inc *ecIncident, gid int, done func(completed bool)) {
	red := fs.red
	g := &red.groups[gid]
	slot := -1
	for i, idx := range g.members {
		if int(idx) == inc.server {
			slot = i
			break
		}
	}
	if slot < 0 {
		fs.eng.Schedule(0, func() { done(false) })
		return
	}
	total := red.cfg.unitBytes()
	chunkBytes := red.cfg.chunkBytes()
	var spare *server
	// finish releases the chain's spare reservation (the completed path
	// converts it into group membership first) before reporting back.
	finish := func(completed bool) {
		if spare != nil {
			g.unreserve(int32(spare.idx))
		}
		if completed {
			fs.ecReplaceMember(gid, slot, spare)
		}
		done(completed)
	}
	var step func(off int64)
	step = func(off int64) {
		if inc.cancelled {
			finish(false)
			return
		}
		if off >= total {
			finish(true)
			return
		}
		if g.failed > red.cfg.M {
			// Beyond m concurrent failures nothing can be reconstructed.
			finish(false)
			return
		}
		if spare == nil || spare.down {
			if spare != nil {
				g.unreserve(int32(spare.idx)) // the dead spare's claim
				spare = nil
			}
			spare = fs.ecPickSpare(gid, inc.server)
			if spare == nil {
				finish(false)
				return
			}
			off = 0 // a fresh spare restarts the share
		}
		readers := fs.ecLiveMembers(gid, slot, red.cfg.K)
		if len(readers) < red.cfg.K {
			finish(false)
			return
		}
		n := chunkBytes
		if off+n > total {
			n = total - off
		}
		t0 := fs.eng.Now()
		failed := false
		target := spare
		barrier := sim.NewBarrier(fs.eng, len(readers), func(sim.Time) {
			if inc.cancelled {
				finish(false)
				return
			}
			if failed {
				step(off) // re-pick readers and retry the chunk
				return
			}
			woff := fs.ecExtent(target, gid, slot)
			svc, _ := target.dsk.AccessTimed(woff+off, n)
			target.bytesWritten += n
			target.cOps.Inc()
			target.cBytesW.Add(n)
			epoch := target.epoch
			target.dq.Submit(svc, func(sim.Time) {
				if target.epoch != epoch {
					step(off) // the spare died: step re-picks and restarts
					return
				}
				red.stats.Bytes += n
				red.cRebBytes.Add(n)
				if th := red.cfg.throttle(); th < 1 {
					// Idle between chunks so foreground traffic keeps
					// (1 - throttle) of the spindles.
					idle := sim.Time(float64(fs.eng.Now()-t0) * (1 - th) / th)
					fs.eng.Schedule(idle, func() { step(off + n) })
					return
				}
				step(off + n)
			})
		})
		for _, m := range readers {
			m := m
			roff := fs.ecExtent(m.srv, gid, m.slot)
			svc, _ := m.srv.dsk.AccessTimed(roff+off, n)
			m.srv.bytesRead += n
			m.srv.cOps.Inc()
			m.srv.cBytesR.Add(n)
			epoch := m.srv.epoch
			m.srv.dq.Submit(svc, func(sim.Time) {
				if m.srv.epoch != epoch {
					failed = true
				}
				barrier.Arrive()
			})
		}
	}
	step(0)
}

// ecReplaceMember installs the spare as the group's member for slot and
// migrates the dead server's extents for that (group, slot) to it: the
// re-created data lives on the spare now, so post-rebuild traffic costs
// real disk work there instead of hole-reads.
func (fs *FS) ecReplaceMember(gid, slot int, spare *server) {
	red := fs.red
	g := &red.groups[gid]
	oldIdx := int(g.members[slot])
	g.members[slot] = int32(spare.idx)
	list := red.byServer[oldIdx]
	for i, id := range list {
		if int(id) == gid {
			red.byServer[oldIdx] = append(list[:i], list[i+1:]...)
			break
		}
	}
	red.byServer[spare.idx] = append(red.byServer[spare.idx], int32(gid))
	fs.ecMigrateExtents(fs.servers[oldIdx], spare, gid, slot)
}

// ecMigrateExtents moves the (group, slot) extents — the group-unit
// region plus every file stripe unit mapped to that slot — from the dead
// server's extent map to the spare, allocating fresh regions there.
// Extent keys are collected and sorted before allocation so the spare's
// layout is deterministic regardless of map iteration order.
func (fs *FS) ecMigrateExtents(old, spare *server, gid, slot int) {
	red := fs.red
	var keys []stripeKey
	for k := range old.extent {
		if k.file >= 0 {
			kgid, kslot := red.groupOf(k.file, k.unit)
			if kgid == gid && kslot == slot {
				keys = append(keys, k)
			}
		} else if k.file == ecFileID(gid) && int(k.unit) == slot {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].unit < keys[j].unit
	})
	for _, k := range keys {
		delete(old.extent, k)
		if _, ok := spare.extent[k]; ok {
			continue
		}
		size := fs.Cfg.StripeUnit
		if k.file < 0 {
			size = red.cfg.unitBytes()
		}
		spare.extent[k] = spare.next
		spare.next += size
	}
}
