package pfs

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Latency analytics: the opt-in attribution layer over the data path.
// When the engine's registry has op timers enabled, every WriteErr/
// ReadErr carries an obs.OpTimer through its pieces and folds it into
// exact per-stage quantiles at completion; when sim-time series are
// enabled, a periodic sampler records per-OSS utilization, queue
// depths, in-flight ops, and rebuild activity on a fixed window grid.
// Neither exists on a default registry — disabled runs schedule the
// same events and serialize byte-identical snapshots.

// armSeries registers the file system's sim-time series and joins the
// engine's sampling cadence. Called from instrument only when the
// registry has EnableTimeSeries armed.
func (fs *FS) armSeries(reg *obs.Registry, window float64) {
	fs.tsOn = true
	tsInflight := reg.TimeSeries(fs.metric("pfs.ops.inflight"))
	tsMDS := reg.TimeSeries(fs.metric("pfs.mds.qdepth"))
	tsRebuild := reg.TimeSeries(fs.metric("pfs.rebuild.active"))
	type srvSeries struct {
		s    *server
		util *obs.TimeSeries
		qd   *obs.TimeSeries
	}
	series := make([]srvSeries, len(fs.servers))
	for i, s := range fs.servers {
		name := fs.metric(fmt.Sprintf("pfs.oss%02d", i))
		series[i] = srvSeries{
			s:    s,
			util: reg.TimeSeries(name + ".disk.util"),
			qd:   reg.TimeSeries(name + ".disk.qdepth"),
		}
	}
	fs.eng.Sample(sim.Time(window), func(now sim.Time) {
		t := float64(now)
		tsInflight.Observe(t, float64(fs.inflight))
		tsMDS.Observe(t, float64(fs.mds.QueueLen()))
		rebuilding := 0
		for _, e := range series {
			e.util.Observe(t, e.s.dq.Utilization())
			e.qd.Observe(t, float64(e.s.dq.QueueLen()))
			if e.s.down || e.s.rebuildUntil > now {
				rebuilding++
			}
		}
		tsRebuild.Observe(t, float64(rebuilding))
	})
}

// StartWriteOp returns a stage timer for one logical write operation,
// or nil when op timers are disabled. Callers that manage their own
// retry loops (the fault-injected workload harness) start one timer per
// logical op, pass it through WriteOp attempts, charge
// obs.StageBackoff for retry delays, and fold it in with FinishWriteOp
// on final success.
func (fs *FS) StartWriteOp() *obs.OpTimer {
	return fs.otWrite.Start(float64(fs.eng.Now()))
}

// FinishWriteOp folds a completed write's timer into the write
// quantiles. No-op when analytics are disabled or t is nil.
func (fs *FS) FinishWriteOp(t *obs.OpTimer) {
	fs.otWrite.Observe(t, float64(fs.eng.Now()))
}

// StartReadOp is StartWriteOp for reads.
func (fs *FS) StartReadOp() *obs.OpTimer {
	return fs.otRead.Start(float64(fs.eng.Now()))
}

// FinishReadOp folds a completed read's timer into the read quantiles.
func (fs *FS) FinishReadOp(t *obs.OpTimer) {
	fs.otRead.Observe(t, float64(fs.eng.Now()))
}

// InFlight reports the number of client data operations currently in
// flight (0 unless time-series sampling is armed, which is what
// maintains the count).
func (fs *FS) InFlight() int64 { return fs.inflight }
