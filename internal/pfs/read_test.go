package pfs

import (
	"testing"

	"repro/internal/sim"
)

// aggregateRead writes a file then measures read bandwidth for nClients
// reading it back with the given record size and sharing mode.
func aggregateRead(t *testing.T, cfg Config, nClients int, perClient, recSize int64, shared bool) float64 {
	t.Helper()
	eng := sim.NewEngine()
	fs := New(eng, cfg)
	// Populate.
	writer := fs.NewClient(1000)
	written := 0
	populate := func(name string, size int64, then func(*File)) {
		writer.Create(name, func(f *File) {
			writer.Write(f, 0, size, func() { written++; then(f) })
		})
	}
	var start, end sim.Time
	done := sim.NewBarrier(eng, nClients, func(at sim.Time) { end = at })
	launch := func(cl *Client, f *File, rank int) {
		nRecs := perClient / recSize
		var issue func(i int64)
		issue = func(i int64) {
			if i == nRecs {
				done.Arrive()
				return
			}
			var off int64
			if shared {
				off = (i*int64(nClients) + int64(rank)) * recSize
			} else {
				off = i * recSize
			}
			cl.Read(f, off, recSize, func() { issue(i + 1) })
		}
		issue(0)
	}
	if shared {
		populate("/data", perClient*int64(nClients), func(f *File) {
			start = eng.Now()
			for r := 0; r < nClients; r++ {
				launch(fs.NewClient(r), f, r)
			}
		})
	} else {
		ready := sim.NewBarrier(eng, nClients, func(at sim.Time) { start = at })
		for r := 0; r < nClients; r++ {
			r := r
			name := "/data." + string(rune('a'+r))
			populate(name, perClient, func(f *File) {
				ready.Arrive()
				launch(fs.NewClient(r), f, r)
			})
		}
	}
	eng.Run()
	if end <= start {
		t.Fatal("read phase did not complete")
	}
	return float64(perClient) * float64(nClients) / float64(end-start)
}

func TestReadBandwidthPositive(t *testing.T) {
	bw := aggregateRead(t, PanFSLike(4), 4, 2<<20, 1<<20, false)
	if bw <= 0 {
		t.Fatalf("read bandwidth %v", bw)
	}
}

func TestLargeReadsBeatSmallStridedReads(t *testing.T) {
	// Reads skip locks and RMW, but positioning costs still punish small
	// scattered requests.
	cfg := PanFSLike(4)
	large := aggregateRead(t, cfg, 4, 2<<20, 1<<20, false)
	small := aggregateRead(t, cfg, 4, 2<<20, 47008, true)
	if large <= small {
		t.Fatalf("large sequential reads %.0f should beat small strided %.0f", large, small)
	}
}

func TestSharedReadsNeedNoLockRevokes(t *testing.T) {
	cfg := PanFSLike(4)
	eng := sim.NewEngine()
	fs := New(eng, cfg)
	cl := fs.NewClient(0)
	cl.Create("/f", func(f *File) {
		cl.Write(f, 0, 4<<20, func() {
			before := fs.LockRevokes()
			readers := make([]*Client, 4)
			for i := range readers {
				readers[i] = fs.NewClient(i + 1)
			}
			for i, r := range readers {
				r.Read(f, int64(i)*47008, 47008, nil)
			}
			eng.Schedule(0, func() {
				_ = before
			})
		})
	})
	eng.Run()
	// Writers grabbed locks; the concurrent readers must not have added
	// revocations beyond the write phase's.
	if fs.LockRevokes() != 0 {
		t.Fatalf("single-writer + readers produced %d revokes, want 0", fs.LockRevokes())
	}
}
