package pfs

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// analyticsEngine returns an engine whose registry has both op timers
// and sim-time series armed, the full analytics configuration.
func analyticsEngine(window float64) (*sim.Engine, *obs.Registry) {
	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	reg.EnableOpTimers()
	reg.EnableTimeSeries(window)
	eng.Instrument(reg, nil)
	return eng, reg
}

func TestAnalyticsQuantilesPopulated(t *testing.T) {
	eng, reg := analyticsEngine(1e-3)
	fs := New(eng, testConfig(4))
	cl := fs.NewClient(0)
	cl.Create("/f", func(f *File) {
		cl.Write(f, 0, 4<<20, func() {
			cl.Read(f, 0, 4<<20, nil)
		})
	})
	eng.Run()

	s := reg.Snapshot()
	w := s.Quantiles["pfs.write.latency_s"]
	r := s.Quantiles["pfs.read.latency_s"]
	if w.Count != 1 || r.Count != 1 {
		t.Fatalf("op counts = %d writes, %d reads, want 1 each", w.Count, r.Count)
	}
	if w.P50 <= 0 || r.P50 <= 0 {
		t.Fatalf("latency p50 = %v write, %v read, want > 0", w.P50, r.P50)
	}
	// The striped data path must attribute transfer and RPC work.
	for _, name := range []string{
		"pfs.write.stage.disk_transfer_s",
		"pfs.write.stage.net_s",
		"pfs.write.stage.rpc_s",
		"pfs.read.stage.disk_transfer_s",
	} {
		if q := s.Quantiles[name]; q.Sum <= 0 {
			t.Fatalf("%s sum = %v, want > 0", name, q.Sum)
		}
	}
	// A healthy run pays no degraded or backoff cost.
	if q := s.Quantiles["pfs.read.stage.degraded_s"]; q.Sum != 0 {
		t.Fatalf("healthy read attributed degraded time %v", q.Sum)
	}
	// Exactly one bottleneck count per observed op.
	var wb, rb int64
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		wb += s.Counters["pfs.write.bottleneck."+st.String()]
		rb += s.Counters["pfs.read.bottleneck."+st.String()]
	}
	if wb != 1 || rb != 1 {
		t.Fatalf("bottleneck counts = %d writes, %d reads, want 1 each", wb, rb)
	}
	if fs.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", fs.InFlight())
	}
}

func TestAnalyticsSeriesPopulated(t *testing.T) {
	eng, reg := analyticsEngine(1e-3)
	fs := New(eng, testConfig(2))
	cl := fs.NewClient(0)
	cl.Create("/f", func(f *File) {
		cl.Write(f, 0, 8<<20, nil)
	})
	eng.Run()
	_ = fs

	s := reg.Snapshot()
	for _, name := range []string{
		"pfs.ops.inflight", "pfs.mds.qdepth", "pfs.rebuild.active",
		"pfs.oss00.disk.util", "pfs.oss01.disk.qdepth",
		"sim.events.pending",
	} {
		ts, ok := s.Series[name]
		if !ok || len(ts.Values) == 0 {
			t.Fatalf("series %s missing or empty", name)
		}
	}
	// The write kept ops in flight at some sampled instant.
	peak := 0.0
	for _, v := range s.Series["pfs.ops.inflight"].Values {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		t.Fatal("inflight series never saw the write in flight")
	}
}

func TestAnalyticsDegradedReadAttributed(t *testing.T) {
	eng, reg := analyticsEngine(1e-3)
	fs := New(eng, faultConfig(4))
	cl := fs.NewClient(0)
	var f *File
	cl.Create("/d", func(h *File) {
		f = h
		cl.Write(h, 0, 4<<20, nil)
	})
	eng.Run()
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), eng.Now(), 0))
	cl.ReadErr(f, 0, 4<<20, func(err error) {
		if err != nil {
			t.Errorf("degraded read failed: %v", err)
		}
	})
	eng.Run()
	if fs.FaultStats().DegradedReads == 0 {
		t.Fatal("no degraded reads happened; test setup broken")
	}
	if q := reg.Snapshot().Quantiles["pfs.read.stage.degraded_s"]; q.Sum <= 0 {
		t.Fatalf("degraded stage sum = %v, want > 0", q.Sum)
	}
}

// TestAnalyticsDisabledLeavesNoTrace pins the opt-in contract: on a
// default (even instrumented-but-unarmed) registry the analytics layer
// must register nothing and keep no state.
func TestAnalyticsDisabledLeavesNoTrace(t *testing.T) {
	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	eng.Instrument(reg, nil)
	fs := New(eng, testConfig(2))
	cl := fs.NewClient(0)
	cl.Create("/f", func(f *File) {
		cl.Write(f, 0, 1<<20, func() { cl.Read(f, 0, 1<<20, nil) })
	})
	eng.Run()
	s := reg.Snapshot()
	if len(s.Quantiles) != 0 || len(s.Series) != 0 {
		t.Fatalf("unarmed registry accumulated analytics: %d quantiles, %d series",
			len(s.Quantiles), len(s.Series))
	}
	if fs.otWrite != nil || fs.otRead != nil || fs.tsOn {
		t.Fatal("analytics handles armed without opt-in")
	}
	if eng.SampleInterval() != 0 {
		t.Fatal("sampler armed without series enabled")
	}
}
