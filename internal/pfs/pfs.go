// Package pfs simulates a striped parallel file system of the kind deployed
// at the PDSI sites (PanFS, Lustre, GPFS): files are striped over object
// storage servers, a distributed lock manager mediates concurrent writers,
// and unaligned partial-stripe writes pay a read-modify-write penalty at
// the server.
//
// The model exists to reproduce the pathology PLFS removes: when N clients
// concurrently issue small, unaligned, strided writes into one shared file
// (the N-1 checkpoint pattern), stripe-lock ping-ponging serializes the
// clients, read-modify-write doubles and randomizes the disk traffic, and
// aggregate bandwidth collapses to a tiny fraction of the hardware. The
// same hardware streams at full speed when each client appends to its own
// file (N-N) — which is exactly the transformation PLFS performs.
//
// Servers can also fail: InjectFaults arms a sim.FaultPlan so object
// storage servers crash and recover mid-run. A down server times out
// in-flight and new operations (ErrServerDown after FailTimeout), holds
// its stripe locks until the LeaseExpiry lease lapses, and keeps its data
// readable through redundancy. By default that redundancy is the legacy
// single-parity model — a surviving neighbour reconstructs reads at a
// DegradedPenalty cost until the RebuildTime window after recovery drains.
// With Config.Redundancy set it generalizes to k+m erasure-coded groups
// with declustered placement (see redundancy.go): degraded reads
// reconstruct from any k surviving group members at cost proportional to
// the group width, a crash fans real rebuild traffic out across the
// population's disk queues, and overlapping failures beyond m surface as
// typed, counted data-loss events (ErrDataLoss, pfs.loss.*) rather than
// silent reads. With no plan injected the fault machinery is inert and
// the event trajectory is byte-identical to a build without it.
package pfs

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config describes a file system deployment.
type Config struct {
	Name string

	// MetricPrefix is prepended to every instrument name the file
	// system registers ("pfs.mds", "pfs.oss00.*", ...). Empty for a
	// standalone file system. A sim.Cluster running several file-system
	// pods gives each pod a unique prefix ("pod03.") so that every
	// order-sensitive instrument — histograms, quantiles, op-timer
	// stage sets, time series — has a single writer shard, which is
	// what keeps snapshots byte-identical across shard counts. The
	// prefix changes instrument names only, never model behavior.
	MetricPrefix string

	// NumServers is the number of object storage servers.
	NumServers int

	// StripeUnit is the striping granularity in bytes.
	StripeUnit int64

	// ServerDisk is the geometry of each server's backing store.
	ServerDisk disk.Geometry

	// DisksPerServer aggregates several spindles per server (bandwidth
	// scales, positioning does not improve).
	DisksPerServer int

	// ServerNetBW is each server's ingest/egress bandwidth, bytes/second.
	ServerNetBW float64

	// ClientNetBW is each client's link bandwidth, bytes/second.
	ClientNetBW float64

	// RPCLatency is the fixed per-operation messaging overhead.
	RPCLatency sim.Time

	// LockRevoke is the cost of transferring a stripe lock between
	// clients (revocation round trip through the lock manager). Zero
	// disables lock modeling.
	LockRevoke sim.Time

	// LockGranularity is the byte span covered by one writer lock. Zero
	// defaults to StripeUnit. Lustre-style optimistic extent locks cover
	// very large ranges, so unrelated small writers conflict constantly —
	// the dominant N-1 cost on such systems.
	LockGranularity int64

	// MetadataOp is the service time of one metadata operation (create,
	// open) at the metadata server.
	MetadataOp sim.Time

	// MetadataThreads is the metadata server's concurrency (0 means 1).
	// Even with parallel threads, creates within one parent directory
	// serialize on that directory's lock — the contention PLFS's hostdir
	// spreading exists to avoid.
	MetadataThreads int

	// RMWPartialStripe: when true, a write that does not cover a full
	// stripe unit forces the server to read the unit and write it back.
	RMWPartialStripe bool

	// Fault-tolerance knobs. They take effect only once a FaultPlan is
	// injected (FS.InjectFaults); a fault-free run is bit-identical with
	// any values here, so the layer is zero-cost when disabled.

	// FailTimeout is how long a request to a crashed server waits before
	// erroring back to the client (the RPC timeout). Zero defaults to
	// 25ms — a typical aggressive OSS ping interval.
	FailTimeout sim.Time

	// LeaseExpiry is how long a stripe lock held by a failed write
	// lingers before the lock manager reclaims it for waiters — the DLM
	// lease granted by the dead server must time out before anyone else
	// may touch the stripe. Zero reclaims immediately.
	LeaseExpiry sim.Time

	// RebuildTime is how long a recovered server spends reconstructing
	// its objects from parity; reads of its stripes stay degraded until
	// the rebuild completes. Zero means recovery is instant.
	RebuildTime sim.Time

	// DegradedPenalty multiplies the disk service time of reads that
	// must reconstruct data from parity (server down or rebuilding):
	// the surviving stripes plus parity are read and XOR-combined. Zero
	// defaults to 4.
	DegradedPenalty float64

	// Checksums enables per-stripe-unit crc32c verification on every
	// read: a mismatch against injected corruption (InjectCorruption)
	// triggers parity reconstruction and an in-place rewrite instead of
	// returning rotten bytes. Off, corrupt reads succeed silently (the
	// pfs.integrity.silent_reads counter is the only witness). With no
	// corruption injected the flag changes nothing.
	Checksums bool

	// Redundancy generalizes the failure model from the implicit single-
	// parity neighbour to k+m erasure-coded redundancy groups with
	// declustered placement and real rebuild traffic (see the Redundancy
	// type). The zero value keeps the legacy model, byte-identically.
	Redundancy Redundancy
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.NumServers < 1:
		return fmt.Errorf("pfs: NumServers %d < 1", c.NumServers)
	case c.StripeUnit < 1:
		return fmt.Errorf("pfs: StripeUnit %d < 1", c.StripeUnit)
	case c.ServerNetBW <= 0 || c.ClientNetBW <= 0:
		return fmt.Errorf("pfs: non-positive network bandwidth")
	case c.DisksPerServer < 1:
		return fmt.Errorf("pfs: DisksPerServer %d < 1", c.DisksPerServer)
	}
	if c.Redundancy.Enabled() {
		if err := c.Redundancy.Validate(); err != nil {
			return err
		}
		if c.NumServers < c.Redundancy.Width()+1 {
			return fmt.Errorf("pfs: %d servers cannot host %d+%d groups plus a rebuild spare",
				c.NumServers, c.Redundancy.K, c.Redundancy.M)
		}
	}
	return nil
}

// PanFSLike is an object-RAID file system with a modest stripe unit and
// per-stripe parity, so partial-stripe writes are expensive.
func PanFSLike(servers int) Config {
	return Config{
		Name:             "panfs-like",
		NumServers:       servers,
		StripeUnit:       64 << 10,
		ServerDisk:       disk.Enterprise2006(),
		DisksPerServer:   4,
		ServerNetBW:      1e9 / 8 * 0.9, // ~GbE payload
		ClientNetBW:      1e9 / 8 * 0.9,
		RPCLatency:       sim.Time(100e-6),
		LockRevoke:       sim.Time(600e-6),
		MetadataOp:       sim.Time(1e-3),
		MetadataThreads:  4,
		RMWPartialStripe: true,
	}
}

// LustreLike has a large stripe size and an aggressive distributed lock
// manager; false sharing on its wide stripes is the dominant N-1 cost.
func LustreLike(servers int) Config {
	return Config{
		Name:             "lustre-like",
		NumServers:       servers,
		StripeUnit:       1 << 20,
		ServerDisk:       disk.Enterprise2006(),
		DisksPerServer:   4,
		ServerNetBW:      1e9 / 8 * 0.9,
		ClientNetBW:      1e9 / 8 * 0.9,
		RPCLatency:       sim.Time(100e-6),
		LockRevoke:       sim.Time(900e-6),
		LockGranularity:  16 << 20, // optimistic wide extent locks
		MetadataOp:       sim.Time(1.2e-3),
		MetadataThreads:  4,
		RMWPartialStripe: false, // no parity RMW, but extent-lock ping-pong remains
	}
}

// GPFSLike uses mid-size blocks with byte-range-ish locking (modeled as
// stripe locks with a cheaper revoke) and RMW on partial blocks.
func GPFSLike(servers int) Config {
	return Config{
		Name:             "gpfs-like",
		NumServers:       servers,
		StripeUnit:       256 << 10,
		ServerDisk:       disk.Enterprise2006(),
		DisksPerServer:   4,
		ServerNetBW:      1e9 / 8 * 0.9,
		ClientNetBW:      1e9 / 8 * 0.9,
		RPCLatency:       sim.Time(100e-6),
		LockRevoke:       sim.Time(400e-6),
		MetadataOp:       sim.Time(0.8e-3),
		MetadataThreads:  4,
		RMWPartialStripe: true,
	}
}

// AllPresets returns the three deployment presets used in Figure 8.
func AllPresets(servers int) []Config {
	return []Config{PanFSLike(servers), LustreLike(servers), GPFSLike(servers)}
}

// stripeKey identifies one stripe unit of one file for lock ownership.
type stripeKey struct {
	file int
	unit int64
}

type fileState struct {
	id   int
	name string
	size int64
}

type server struct {
	idx  int
	nic  *sim.Server
	dsk  *disk.Disk
	dq   *sim.Server // disk queue (capacity = DisksPerServer)
	next int64       // next free byte on this server's disk
	// extent maps (file, stripe unit) -> disk offset.
	extent map[stripeKey]int64

	// Fault state. epoch increments on every crash so that operations in
	// flight when the server dies can detect, at completion time, that
	// their acknowledgment was lost. rebuildUntil marks the end of the
	// post-recovery parity rebuild window.
	down         bool
	epoch        int
	rebuildUntil sim.Time

	// corr tracks this server's drive-level latent corruption; nil (the
	// common case) means the drive never lies.
	corr *disk.Corruptor

	// repairing deduplicates concurrent repairs of one rotten unit: a
	// scrub and a checksummed read that detect the same disk offset share
	// a single reconstruction instead of double-repairing (nil until the
	// first repair).
	repairing map[int64][]func(error)

	bytesWritten int64
	bytesRead    int64

	// Per-OSS instrument handles (nil when uninstrumented).
	cOps    *obs.Counter
	cBytesW *obs.Counter
	cBytesR *obs.Counter
	cRMW    *obs.Counter
}

// FS is a simulated parallel file system instance bound to a sim.Engine.
type FS struct {
	Cfg     Config
	eng     *sim.Engine
	servers []*server
	mds     *sim.Server
	files   map[string]*fileState
	nextID  int
	// locks holds per-stripe writer locks. A lock is held for the duration
	// of the write (through the disk), so concurrent writers to one stripe
	// serialize — the distributed-lock-manager behaviour that makes
	// false sharing so expensive on real deployments.
	locks map[stripeKey]*stripeLock

	// dirLocks serialize creates per parent directory.
	dirLocks map[string]*stripeLock

	metadataOps int64
	lockRevokes int64

	// Fault accounting (see faults.go).
	faults FaultStats

	// Integrity accounting (see integrity.go).
	integrity IntegrityStats

	// red is the k+m redundancy layer (see redundancy.go); nil with the
	// zero Redundancy config, leaving the legacy parity-neighbour model.
	red *redState

	// File-system-wide instrument handles (nil when uninstrumented).
	cMeta      *obs.Counter
	cRevokes   *obs.Counter
	cLockWaits *obs.Counter
	cRMW       *obs.Counter
	hLockWait  *obs.Histogram

	// Fault instrument handles (nil when uninstrumented).
	cCrashes    *obs.Counter
	cRecoveries *obs.Counter
	cRebuilds   *obs.Counter
	cFailedOps  *obs.Counter
	cDegraded   *obs.Counter
	cLeaseExp   *obs.Counter

	// Integrity instrument handles, registered lazily by armIntegrity so
	// corruption-free snapshots stay byte-identical (nil otherwise).
	cIntInjected *obs.Counter
	cIntDetected *obs.Counter
	cIntRepaired *obs.Counter
	cIntUnrecov  *obs.Counter
	cIntSilent   *obs.Counter
	cIntScrubbed *obs.Counter

	// Latency-analytics handles (see analytics.go). Nil unless the
	// registry opted in via EnableOpTimers/EnableTimeSeries, so default
	// runs and snapshots are untouched.
	otWrite  *obs.OpTimerSet
	otRead   *obs.OpTimerSet
	tsOn     bool
	inflight int64
}

// stripeLock is a FIFO mutex with an ownership-transfer penalty.
type stripeLock struct {
	held    bool
	owner   int
	waiters []lockWaiter
}

type lockWaiter struct {
	client int
	fn     func()
	since  sim.Time // when the waiter queued, for contention histograms
}

// New creates a file system on the given engine.
func New(eng *sim.Engine, cfg Config) *FS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	threads := cfg.MetadataThreads
	if threads < 1 {
		threads = 1
	}
	fs := &FS{
		Cfg:      cfg,
		eng:      eng,
		files:    make(map[string]*fileState),
		locks:    make(map[stripeKey]*stripeLock),
		dirLocks: make(map[string]*stripeLock),
		mds:      sim.NewServer(eng, threads),
	}
	for i := 0; i < cfg.NumServers; i++ {
		fs.servers = append(fs.servers, &server{
			idx:    i,
			nic:    sim.NewServer(eng, 1),
			dsk:    disk.New(cfg.ServerDisk),
			dq:     sim.NewServer(eng, cfg.DisksPerServer),
			extent: make(map[stripeKey]int64),
		})
	}
	if cfg.Redundancy.Enabled() {
		fs.red = newRedState(cfg)
	}
	fs.instrument()
	return fs
}

// instrument registers the file system's probes in the engine's metrics
// registry. A no-op (leaving all handles nil) when the engine is
// uninstrumented.
// metric prepends the configured pod prefix to an instrument name.
func (fs *FS) metric(name string) string { return fs.Cfg.MetricPrefix + name }

func (fs *FS) instrument() {
	reg := fs.eng.Metrics()
	if reg == nil {
		return
	}
	fs.mds.Instrument(fs.metric("pfs.mds"))
	fs.cMeta = reg.Counter(fs.metric("pfs.metadata_ops"))
	fs.cRevokes = reg.Counter(fs.metric("pfs.lock.revokes"))
	fs.cLockWaits = reg.Counter(fs.metric("pfs.lock.waits"))
	fs.cRMW = reg.Counter(fs.metric("pfs.rmw_ops"))
	fs.hLockWait = reg.Histogram(fs.metric("pfs.lock.wait_s"), obs.TimeBuckets())
	fs.cCrashes = reg.Counter(fs.metric("pfs.faults.crashes"))
	fs.cRecoveries = reg.Counter(fs.metric("pfs.faults.recoveries"))
	fs.cRebuilds = reg.Counter(fs.metric("pfs.faults.rebuilds"))
	fs.cFailedOps = reg.Counter(fs.metric("pfs.faults.failed_ops"))
	fs.cDegraded = reg.Counter(fs.metric("pfs.faults.degraded_reads"))
	fs.cLeaseExp = reg.Counter(fs.metric("pfs.faults.lease_expiries"))
	reg.GaugeFunc(fs.metric("pfs.faults.rebuild_busy_s"), func() float64 { return float64(fs.faults.RebuildBusy) })
	for i, s := range fs.servers {
		name := fs.metric(fmt.Sprintf("pfs.oss%02d", i))
		s.nic.Instrument(name + ".nic")
		s.dq.Instrument(name + ".disk")
		s.cOps = reg.Counter(name + ".ops")
		s.cBytesW = reg.Counter(name + ".bytes_written")
		s.cBytesR = reg.Counter(name + ".bytes_read")
		s.cRMW = reg.Counter(name + ".rmw_ops")
		d := s.dsk
		reg.GaugeFunc(name+".disk.seek_s", func() float64 { return d.Stats().SeekSec })
		reg.GaugeFunc(name+".disk.rotation_s", func() float64 { return d.Stats().RotationSec })
		reg.GaugeFunc(name+".disk.transfer_s", func() float64 { return d.Stats().TransferSec })
		reg.GaugeFunc(name+".disk.positioned_frac", func() float64 {
			st := d.Stats()
			if st.Accesses == 0 {
				return 0
			}
			return float64(st.Positioned) / float64(st.Accesses)
		})
	}
	fs.otWrite = reg.OpTimerSet(fs.metric("pfs.write"))
	fs.otRead = reg.OpTimerSet(fs.metric("pfs.read"))
	if fs.red != nil {
		fs.armRedundancy(reg)
	}
	if w := reg.SeriesWindow(); w > 0 {
		fs.armSeries(reg, w)
	}
}

// Engine returns the engine the file system is bound to.
func (fs *FS) Engine() *sim.Engine { return fs.eng }

// NumFiles reports how many files exist.
func (fs *FS) NumFiles() int { return len(fs.files) }

// MetadataOps reports completed metadata operations.
func (fs *FS) MetadataOps() int64 { return fs.metadataOps }

// LockRevokes reports how many times a stripe lock changed owner.
func (fs *FS) LockRevokes() int64 { return fs.lockRevokes }

// serverFor maps a file's stripe unit to a server, offsetting by file id so
// different files start their stripe rotation on different servers (as real
// deployments randomize placement) instead of convoying on server 0.
func (fs *FS) serverFor(st *fileState, unit int64) *server {
	return fs.servers[(st.id+int(unit))%len(fs.servers)]
}

// acquire grants the stripe lock to client and runs fn, paying the revoke
// penalty when ownership transfers; contended requests queue FIFO.
func (fs *FS) acquire(key stripeKey, client int, fn func()) {
	lk := fs.locks[key]
	if lk == nil {
		lk = &stripeLock{owner: -1}
		fs.locks[key] = lk
	}
	if lk.held {
		fs.cLockWaits.Inc()
		lk.waiters = append(lk.waiters, lockWaiter{client: client, fn: fn, since: fs.eng.Now()})
		return
	}
	lk.held = true
	fs.grant(lk, client, fn)
}

func (fs *FS) grant(lk *stripeLock, client int, fn func()) {
	delay := sim.Time(0)
	if lk.owner != -1 && lk.owner != client {
		delay = fs.Cfg.LockRevoke
		fs.lockRevokes++
		fs.cRevokes.Inc()
	}
	lk.owner = client
	if delay > 0 {
		fs.eng.Schedule(delay, fn)
	} else {
		fn()
	}
}

// acquireDir serializes metadata operations within one parent directory.
func (fs *FS) acquireDir(dir string, client int, fn func()) {
	lk := fs.dirLocks[dir]
	if lk == nil {
		lk = &stripeLock{owner: -1}
		fs.dirLocks[dir] = lk
	}
	if lk.held {
		lk.waiters = append(lk.waiters, lockWaiter{client: client, fn: fn})
		return
	}
	lk.held = true
	lk.owner = client
	fn()
}

func (fs *FS) releaseDir(dir string) {
	lk := fs.dirLocks[dir]
	if lk == nil || !lk.held {
		panic("pfs: release of unheld directory lock")
	}
	if len(lk.waiters) == 0 {
		lk.held = false
		return
	}
	next := lk.waiters[0]
	copy(lk.waiters, lk.waiters[1:])
	lk.waiters = lk.waiters[:len(lk.waiters)-1]
	lk.owner = next.client
	next.fn()
}

// release hands the lock to the next waiter, if any.
func (fs *FS) release(key stripeKey) {
	lk := fs.locks[key]
	if lk == nil || !lk.held {
		panic("pfs: release of unheld stripe lock")
	}
	if len(lk.waiters) == 0 {
		lk.held = false
		return
	}
	next := lk.waiters[0]
	copy(lk.waiters, lk.waiters[1:])
	lk.waiters = lk.waiters[:len(lk.waiters)-1]
	fs.hLockWait.Observe(float64(fs.eng.Now() - next.since))
	fs.grant(lk, next.client, next.fn)
}

// BytesWritten sums payload bytes written across servers (excludes RMW
// traffic).
func (fs *FS) BytesWritten() int64 {
	var n int64
	for _, s := range fs.servers {
		n += s.bytesWritten
	}
	return n
}

// ServerUtilizations returns each server's disk-queue utilization.
func (fs *FS) ServerUtilizations() []float64 {
	out := make([]float64, len(fs.servers))
	for i, s := range fs.servers {
		out[i] = s.dq.Utilization()
	}
	return out
}
