package pfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// faultConfig is testConfig with lease/rebuild semantics made visible.
func faultConfig(servers int) Config {
	c := testConfig(servers)
	c.FailTimeout = sim.Time(10e-3)
	c.LeaseExpiry = sim.Time(50e-3)
	c.RebuildTime = sim.Time(1)
	return c
}

func TestWriteToCrashedServerTimesOut(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, faultConfig(2))
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), 0, 0).Add(OSSTarget(1), 0, 0))
	cl := fs.NewClient(0)
	var gotErr error
	var doneAt sim.Time
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 4096, func(err error) {
			gotErr = err
			doneAt = eng.Now()
		})
	})
	eng.Run()
	if !errors.Is(gotErr, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", gotErr)
	}
	if doneAt < fs.Cfg.FailTimeout {
		t.Fatalf("failure reported at %v, before the %v timeout", doneAt, fs.Cfg.FailTimeout)
	}
	if fs.FaultStats().FailedOps == 0 {
		t.Fatal("failed op not counted")
	}
}

func TestFailedWriteDoesNotGrowFile(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, faultConfig(2))
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), 0, 0).Add(OSSTarget(1), 0, 0))
	cl := fs.NewClient(0)
	var f *File
	cl.Create("/f", func(h *File) {
		f = h
		cl.WriteErr(h, 0, 1<<20, func(error) {})
	})
	eng.Run()
	if f.Size() != 0 {
		t.Fatalf("failed write grew file to %d bytes", f.Size())
	}
}

func TestCrashMidWriteFailsInFlightOp(t *testing.T) {
	// Crash both servers while a large write is in their disk queues: the
	// pieces were accepted but the acks die with the servers.
	eng := sim.NewEngine()
	fs := New(eng, faultConfig(2))
	fs.InjectFaults(sim.NewFaultPlan().
		Add(OSSTarget(0), sim.Time(1e-3), 0).
		Add(OSSTarget(1), sim.Time(1e-3), 0))
	cl := fs.NewClient(0)
	var gotErr error
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 8<<20, func(err error) { gotErr = err })
	})
	eng.Run()
	if !errors.Is(gotErr, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", gotErr)
	}
}

// diskBoundConfig removes the network bottleneck so disk-level penalties
// (parity reconstruction) dominate the measured latency.
func diskBoundConfig(servers int) Config {
	c := faultConfig(servers)
	c.ClientNetBW = 1e12
	c.ServerNetBW = 1e12
	return c
}

func TestDegradedReadServedBySurvivorAtPenalty(t *testing.T) {
	run := func(crash bool) (elapsed sim.Time, err error) {
		eng := sim.NewEngine()
		cfg := diskBoundConfig(4)
		fs := New(eng, cfg)
		cl := fs.NewClient(0)
		var f *File
		cl.Create("/f", func(h *File) {
			f = h
			cl.Write(h, 0, 4<<20, nil)
		})
		eng.Run()
		if crash {
			// Crash one server after the write; reads of its stripes must
			// be reconstructed by a neighbour.
			fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), eng.Now(), 0))
		}
		start := eng.Now()
		cl.ReadErr(f, 0, 4<<20, func(e error) {
			elapsed = eng.Now() - start
			err = e
		})
		eng.Run()
		return elapsed, err
	}
	healthy, err := run(false)
	if err != nil {
		t.Fatalf("healthy read failed: %v", err)
	}
	degraded, err := run(true)
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if degraded <= healthy {
		t.Fatalf("degraded read (%v) not slower than healthy read (%v)", degraded, healthy)
	}
}

func TestReadDuringRebuildPaysPenaltyThenRecovers(t *testing.T) {
	eng := sim.NewEngine()
	cfg := diskBoundConfig(2)
	fs := New(eng, cfg)
	cl := fs.NewClient(0)
	var f *File
	cl.Create("/f", func(h *File) {
		f = h
		cl.Write(h, 0, 2<<20, nil)
	})
	eng.Run()

	// Crash and recover server 0; it rebuilds for RebuildTime.
	at := eng.Now()
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), at, sim.Time(10e-3)))
	eng.RunUntil(at + sim.Time(20e-3)) // past recovery, inside rebuild

	timeRead := func() sim.Time {
		start := eng.Now()
		var elapsed sim.Time
		cl.ReadErr(f, 0, 2<<20, func(err error) {
			if err != nil {
				t.Fatalf("read failed: %v", err)
			}
			elapsed = eng.Now() - start
		})
		eng.Run()
		return elapsed
	}
	during := timeRead()
	if fs.FaultStats().DegradedReads == 0 {
		t.Fatal("rebuild-window read not counted as degraded")
	}
	// Push past the rebuild window and measure the same read again.
	eng.RunUntil(at + cfg.RebuildTime + 1)
	after := timeRead()
	if during <= after {
		t.Fatalf("rebuild-window read (%v) not slower than post-rebuild read (%v)", during, after)
	}
	st := fs.FaultStats()
	if st.Rebuilds != 1 || st.RebuildBusy != cfg.RebuildTime {
		t.Fatalf("rebuild stats = %+v, want 1 rebuild of %v", st, cfg.RebuildTime)
	}
}

func TestAllServersDownReadFails(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, faultConfig(2))
	cl := fs.NewClient(0)
	var f *File
	cl.Create("/f", func(h *File) {
		f = h
		cl.Write(h, 0, 1<<20, nil)
	})
	eng.Run()
	fs.InjectFaults(sim.NewFaultPlan().
		Add(OSSTarget(0), eng.Now(), 0).
		Add(OSSTarget(1), eng.Now(), 0))
	var gotErr error
	cl.ReadErr(f, 0, 1<<20, func(err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", gotErr)
	}
}

func TestLeaseExpiryDelaysNextWriter(t *testing.T) {
	// Client 0's write dies holding the stripe lock; client 1's write to
	// the same stripe must wait out the lease before it can proceed.
	eng := sim.NewEngine()
	cfg := faultConfig(2)
	fs := New(eng, cfg)
	fs.InjectFaults(sim.NewFaultPlan().
		Add(OSSTarget(0), sim.Time(50e-6), sim.Time(5e-3)).
		Add(OSSTarget(1), sim.Time(50e-6), sim.Time(5e-3)))
	cl0, cl1 := fs.NewClient(0), fs.NewClient(1)
	var doneAt sim.Time
	cl0.Create("/f", func(f *File) {
		cl0.WriteErr(f, 0, 4096, func(error) {})
		cl1.WriteErr(f, 0, 4096, func(error) { doneAt = eng.Now() })
	})
	eng.Run()
	if fs.FaultStats().LeaseExpiries == 0 {
		t.Fatal("no lease expiry recorded")
	}
	if doneAt < cfg.LeaseExpiry {
		t.Fatalf("second writer finished at %v, inside the %v lease", doneAt, cfg.LeaseExpiry)
	}
}

func TestRecoveredServerServesWrites(t *testing.T) {
	eng := sim.NewEngine()
	cfg := faultConfig(2)
	cfg.RebuildTime = 0
	fs := New(eng, cfg)
	fs.InjectFaults(sim.NewFaultPlan().
		Add(OSSTarget(0), 0, sim.Time(100e-3)).
		Add(OSSTarget(1), 0, sim.Time(100e-3)))
	eng.RunUntil(sim.Time(200e-3)) // both servers back up
	cl := fs.NewClient(0)
	var gotErr = errors.New("never completed")
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 1<<20, func(err error) { gotErr = err })
	})
	eng.Run()
	if gotErr != nil {
		t.Fatalf("write after recovery failed: %v", gotErr)
	}
	st := fs.FaultStats()
	if st.Crashes != 2 || st.Recoveries != 2 {
		t.Fatalf("stats = %+v, want 2 crashes and 2 recoveries", st)
	}
}

func TestFaultCountersAppearInSnapshot(t *testing.T) {
	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	eng.Instrument(reg, tr)
	fs := New(eng, faultConfig(2))
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), 0, sim.Time(10e-3)))
	cl := fs.NewClient(0)
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 1<<20, func(error) {})
	})
	eng.Run()
	s := reg.Snapshot()
	if s.Counters["pfs.faults.crashes"] != 1 {
		t.Fatalf("pfs.faults.crashes = %d, want 1", s.Counters["pfs.faults.crashes"])
	}
	if s.Counters["pfs.faults.recoveries"] != 1 {
		t.Fatalf("pfs.faults.recoveries = %d, want 1", s.Counters["pfs.faults.recoveries"])
	}
	if s.Counters["sim.faults.injected"] != 1 {
		t.Fatalf("sim.faults.injected = %d, want 1", s.Counters["sim.faults.injected"])
	}
}

func TestUnknownFaultTargetsIgnored(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, faultConfig(2))
	fs.InjectFaults(sim.NewFaultPlan().
		Add("mds", 0, 0).        // foreign subsystem
		Add(OSSTarget(7), 0, 0)) // out of range
	eng.Run()
	if st := fs.FaultStats(); st.Crashes != 0 {
		t.Fatalf("foreign targets crashed %d servers", st.Crashes)
	}
}

func TestNoFaultsRunIsByteIdenticalWithFaultLayerPresent(t *testing.T) {
	// The fault layer must be zero-cost when disabled: a run with fault
	// knobs set but no plan injected produces the same metrics snapshot
	// as one with a default config.
	run := func(cfg Config) string {
		eng := sim.NewEngine()
		reg := obs.NewRegistry()
		eng.Instrument(reg, obs.NewTracer())
		fs := New(eng, cfg)
		cl := fs.NewClient(0)
		cl.Create("/f", func(f *File) {
			cl.Write(f, 0, 8<<20, func() {
				cl.Read(f, 0, 8<<20, nil)
			})
		})
		eng.Run()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := run(testConfig(4))
	knobbed := run(faultConfig(4))
	if plain != knobbed {
		t.Fatal("fault knobs changed a fault-free run's metrics snapshot")
	}
}
