package pfs

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func testConfig(servers int) Config {
	c := PanFSLike(servers)
	return c
}

func TestSplitCoversRangeExactly(t *testing.T) {
	cases := []struct {
		off, size, unit int64
		wantPieces      int
	}{
		{0, 64 << 10, 64 << 10, 1},       // exactly one unit
		{0, 128 << 10, 64 << 10, 2},      // two full units
		{100, 64 << 10, 64 << 10, 2},     // unaligned straddle
		{(64 << 10) - 1, 2, 64 << 10, 2}, // minimal straddle
		{10, 20, 64 << 10, 1},            // tiny interior write
	}
	for _, c := range cases {
		pieces := split(c.off, c.size, c.unit)
		if len(pieces) != c.wantPieces {
			t.Fatalf("split(%d,%d,%d) = %d pieces, want %d", c.off, c.size, c.unit, len(pieces), c.wantPieces)
		}
		var total int64
		off := c.off
		for _, p := range pieces {
			if p.unit != off/c.unit {
				t.Fatalf("piece unit %d, want %d", p.unit, off/c.unit)
			}
			if p.offIn != off%c.unit {
				t.Fatalf("piece offIn %d, want %d", p.offIn, off%c.unit)
			}
			total += p.size
			off += p.size
		}
		if total != c.size {
			t.Fatalf("pieces cover %d bytes, want %d", total, c.size)
		}
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, testConfig(4))
	cl := fs.NewClient(0)
	var wrote, read bool
	cl.Create("/ckpt", func(f *File) {
		cl.Write(f, 0, 1<<20, func() {
			wrote = true
			if f.Size() != 1<<20 {
				t.Errorf("Size = %d, want %d", f.Size(), 1<<20)
			}
			cl.Read(f, 0, 1<<20, func() { read = true })
		})
	})
	eng.Run()
	if !wrote || !read {
		t.Fatalf("wrote=%v read=%v, want both true", wrote, read)
	}
	if fs.BytesWritten() != 1<<20 {
		t.Fatalf("BytesWritten = %d, want %d", fs.BytesWritten(), 1<<20)
	}
	if fs.MetadataOps() != 1 {
		t.Fatalf("MetadataOps = %d, want 1", fs.MetadataOps())
	}
}

func TestWriteGrowsFileMonotonically(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, testConfig(2))
	cl := fs.NewClient(0)
	cl.Create("/f", func(f *File) {
		cl.Write(f, 100, 50, nil)
		cl.Write(f, 0, 10, nil) // does not shrink
	})
	eng.Run()
	cl2 := fs.NewClient(1)
	var size int64
	cl2.Open("/f", func(f *File) { size = f.Size() })
	eng.Run()
	if size != 150 {
		t.Fatalf("size = %d, want 150", size)
	}
}

func TestZeroSizeOpsCompleteImmediately(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, testConfig(2))
	cl := fs.NewClient(0)
	calls := 0
	cl.Create("/f", func(f *File) {
		cl.Write(f, 0, 0, func() { calls++ })
		cl.Read(f, 0, 0, func() { calls++ })
	})
	eng.Run()
	if calls != 2 {
		t.Fatalf("zero-size callbacks = %d, want 2", calls)
	}
}

// aggregateWrite runs nClients each writing perClient bytes with the given
// pattern and returns achieved aggregate bandwidth in bytes/sec.
func aggregateWrite(t *testing.T, cfg Config, nClients int, perClient int64, recSize int64, shared bool) float64 {
	t.Helper()
	eng := sim.NewEngine()
	fs := New(eng, cfg)
	var start sim.Time
	var elapsed sim.Time
	doneAll := sim.NewBarrier(eng, nClients, func(at sim.Time) { elapsed = at - start })

	launch := func(cl *Client, f *File, rank int) {
		nRecs := perClient / recSize
		var issue func(i int64)
		issue = func(i int64) {
			if i == nRecs {
				doneAll.Arrive()
				return
			}
			var off int64
			if shared {
				// N-1 strided: record i of rank r lands at global record
				// index i*nClients + r.
				off = (i*int64(nClients) + int64(rank)) * recSize
			} else {
				off = i * recSize
			}
			cl.Write(f, off, recSize, func() { issue(i + 1) })
		}
		issue(0)
	}

	if shared {
		cl0 := fs.NewClient(0)
		cl0.Create("/shared", func(f *File) {
			start = eng.Now()
			for r := 0; r < nClients; r++ {
				cl := fs.NewClient(r)
				launch(cl, f, r)
			}
		})
	} else {
		start = 0
		for r := 0; r < nClients; r++ {
			r := r
			cl := fs.NewClient(r)
			cl.Create(fmt.Sprintf("/f.%d", r), func(f *File) { launch(cl, f, r) })
		}
	}
	eng.Run()
	if elapsed <= 0 {
		t.Fatal("workload did not complete")
	}
	return float64(perClient) * float64(nClients) / float64(elapsed)
}

func TestNToNBeatsStridedNTo1(t *testing.T) {
	// The foundational PLFS observation: on the same hardware, N-N
	// streaming vastly outperforms small strided N-1 writes.
	cfg := testConfig(4)
	nn := aggregateWrite(t, cfg, 8, 4<<20, 1<<20, false)
	n1 := aggregateWrite(t, cfg, 8, 4<<20, 47008, true) // small unaligned records
	if ratio := nn / n1; ratio < 5 {
		t.Fatalf("N-N/N-1 bandwidth ratio = %.1f (nn=%.0f n1=%.0f), want >= 5", ratio, nn, n1)
	}
}

func TestLargeAlignedNTo1IsFine(t *testing.T) {
	// N-1 with stripe-aligned full-unit records should be in the same
	// ballpark as N-N; the pathology is specifically small unaligned
	// records.
	cfg := testConfig(4)
	aligned := aggregateWrite(t, cfg, 8, 4<<20, cfg.StripeUnit, true)
	small := aggregateWrite(t, cfg, 8, 4<<20, 47008, true)
	if aligned < 3*small {
		t.Fatalf("aligned N-1 %.0f should far exceed unaligned N-1 %.0f", aligned, small)
	}
}

func TestMoreServersMoreBandwidth(t *testing.T) {
	cfg2 := testConfig(2)
	cfg8 := testConfig(8)
	bw2 := aggregateWrite(t, cfg2, 8, 2<<20, 1<<20, false)
	bw8 := aggregateWrite(t, cfg8, 8, 2<<20, 1<<20, false)
	if bw8 <= bw2 {
		t.Fatalf("8 servers (%.0f B/s) should beat 2 servers (%.0f B/s)", bw8, bw2)
	}
}

func TestLockRevocationCostsShowUpInSharedWrites(t *testing.T) {
	base := testConfig(4)
	noLocks := base
	noLocks.LockRevoke = 0
	withLocks := aggregateWrite(t, base, 8, 1<<20, 4096, true)
	lockFree := aggregateWrite(t, noLocks, 8, 1<<20, 4096, true)
	if lockFree <= withLocks {
		t.Fatalf("disabling lock revokes should raise bandwidth: with=%.0f without=%.0f", withLocks, lockFree)
	}
}

func TestServerUtilizationBalancedUnderStriping(t *testing.T) {
	cfg := testConfig(4)
	eng := sim.NewEngine()
	fs := New(eng, cfg)
	cl := fs.NewClient(0)
	cl.Create("/big", func(f *File) {
		cl.Write(f, 0, 64<<20, nil)
	})
	eng.Run()
	utils := fs.ServerUtilizations()
	lo, hi := utils[0], utils[0]
	for _, u := range utils {
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	if hi == 0 || lo < hi*0.5 {
		t.Fatalf("unbalanced server utilizations: %v", utils)
	}
}

func TestReadOfHoleCostsNoDiskTime(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, testConfig(2))
	cl := fs.NewClient(0)
	var done bool
	cl.Create("/sparse", func(f *File) {
		cl.Read(f, 10<<20, 4096, func() { done = true })
	})
	eng.Run()
	if !done {
		t.Fatal("hole read never completed")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range AllPresets(8) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestDeterministicAggregateBandwidth(t *testing.T) {
	cfg := testConfig(4)
	a := aggregateWrite(t, cfg, 4, 1<<20, 4096, true)
	b := aggregateWrite(t, cfg, 4, 1<<20, 4096, true)
	if a != b {
		t.Fatalf("non-deterministic bandwidth: %v vs %v", a, b)
	}
}
