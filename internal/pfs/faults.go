package pfs

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the failure half of the striped-FS model: what one dead OSS
// does to everyone else. An injected crash (FS implements sim.FaultSink, so
// a sim.FaultPlan drives it directly) marks the server down and bumps its
// epoch; operations in flight discover at their next completion stage that
// the acknowledgment they were waiting for died with the server, pay the
// client's RPC timeout, and error back. Stripe locks held by a failed write
// linger for the DLM lease period before waiters may proceed. Reads of the
// dead server's stripes are reconstructed from parity by a surviving
// neighbour at DegradedPenalty× the nominal disk cost, and stay degraded
// through the post-recovery rebuild window. All of it is ordinary
// deterministic event traffic: same plan, same seed, same trajectory.

// ErrServerDown is returned by WriteErr/ReadErr completions when the
// operation's object storage server crashed before acknowledging, or —
// for reads — when no surviving server can reconstruct the data.
var ErrServerDown = errors.New("pfs: object storage server down")

// FaultStats aggregates the failure layer's activity over a run.
type FaultStats struct {
	// Crashes and Recoveries count state transitions actually applied
	// (redundant plan events against an already-down target do not count).
	Crashes    int64
	Recoveries int64

	// Rebuilds counts post-recovery parity rebuilds started; RebuildBusy
	// is their total simulated duration.
	Rebuilds    int64
	RebuildBusy sim.Time

	// FailedOps counts client operations that errored on a dead server.
	FailedOps int64

	// DegradedReads counts reads served from parity reconstruction.
	DegradedReads int64

	// LeaseExpiries counts stripe locks reclaimed from failed writers
	// after the DLM lease period.
	LeaseExpiries int64
}

// FaultStats returns a copy of the failure-layer activity so far.
func (fs *FS) FaultStats() FaultStats { return fs.faults }

// OSSTarget names server i for FaultPlan targeting ("oss0", "oss1", ...).
func OSSTarget(i int) string { return fmt.Sprintf("oss%d", i) }

// InjectFaults arms a fault plan against this file system. Targets are
// OSSTarget names; unknown targets are ignored, so one plan can drive
// several subsystems. A nil or empty plan is a no-op, and with no plan
// injected the fault layer never alters a run. An invalid plan (unsorted
// or overlapping per-target events) is rejected whole with a typed
// *sim.PlanError and arms nothing.
func (fs *FS) InjectFaults(plan *sim.FaultPlan) error {
	return plan.Schedule(fs.eng, fs)
}

// serverByTarget resolves an OSSTarget name, or nil for foreign targets.
func (fs *FS) serverByTarget(target string) *server {
	var i int
	if n, err := fmt.Sscanf(target, "oss%d", &i); err != nil || n != 1 {
		return nil
	}
	if i < 0 || i >= len(fs.servers) {
		return nil
	}
	return fs.servers[i]
}

// CrashTarget implements sim.FaultSink: the named server stops answering.
// Bumping the epoch is what fails operations already inside the server —
// they compare epochs at each completion stage instead of being hunted
// down and cancelled, which keeps the event queue untouched.
func (fs *FS) CrashTarget(target string) {
	srv := fs.serverByTarget(target)
	if srv == nil || srv.down {
		return
	}
	srv.down = true
	srv.epoch++
	fs.faults.Crashes++
	fs.cCrashes.Inc()
	if fs.red != nil {
		fs.ecOnCrash(srv)
	}
}

// RecoverTarget implements sim.FaultSink: the named server returns to
// service and, when RebuildTime is set, spends it reconstructing objects
// from parity — reads in that window still pay the degraded penalty.
func (fs *FS) RecoverTarget(target string) {
	srv := fs.serverByTarget(target)
	if srv == nil || !srv.down {
		return
	}
	srv.down = false
	fs.faults.Recoveries++
	fs.cRecoveries.Inc()
	if fs.red != nil {
		// Under erasure coding recovery means the declustered rebuild
		// stands down (the data is back); the penalty-window model below
		// belongs to the legacy parity-neighbour layer only.
		fs.ecOnRecover(srv)
		return
	}
	if rb := fs.Cfg.RebuildTime; rb > 0 {
		srv.rebuildUntil = fs.eng.Now() + rb
		fs.faults.Rebuilds++
		fs.faults.RebuildBusy += rb
		fs.cRebuilds.Inc()
	}
}

// failTimeout is the client-visible RPC timeout (Config.FailTimeout,
// default 25ms).
func (fs *FS) failTimeout() sim.Time {
	if fs.Cfg.FailTimeout > 0 {
		return fs.Cfg.FailTimeout
	}
	return sim.Time(25e-3)
}

// degradedPenalty is the parity-reconstruction disk-cost multiplier
// (Config.DegradedPenalty, default 4: read the surviving stripe units
// plus parity, then XOR).
func (fs *FS) degradedPenalty() float64 {
	if fs.Cfg.DegradedPenalty > 0 {
		return fs.Cfg.DegradedPenalty
	}
	return 4
}

// failOp errors one client operation against a dead server: the client
// learns nothing until its RPC timeout fires.
func (fs *FS) failOp(done func(error)) {
	fs.faults.FailedOps++
	fs.cFailedOps.Inc()
	fs.eng.Schedule(fs.failTimeout(), func() { done(ErrServerDown) })
}

// failWrite is failOp for a write that may hold a stripe lock: the lock
// is not cleanly released by the dead server, so waiters sit out the DLM
// lease before the manager reclaims it.
func (fs *FS) failWrite(key stripeKey, locked bool, done func(error)) {
	if locked {
		fs.expireLease(key)
	}
	fs.failOp(done)
}

// expireLease reclaims a stripe lock abandoned by a failed write. With
// LeaseExpiry zero the manager reclaims immediately; otherwise waiters
// stall for the full lease — the cost DLM-based systems pay for not
// having to ask a dead server's permission.
func (fs *FS) expireLease(key stripeKey) {
	if fs.Cfg.LeaseExpiry <= 0 {
		fs.release(key)
		return
	}
	fs.faults.LeaseExpiries++
	fs.cLeaseExp.Inc()
	fs.eng.Schedule(fs.Cfg.LeaseExpiry, func() { fs.release(key) })
}

// survivor walks the placement ring from the dead server and returns the
// first live one (its parity group in a real deployment), or nil when the
// whole array is down.
func (fs *FS) survivor(down *server) *server {
	n := len(fs.servers)
	for i := 1; i < n; i++ {
		s := fs.servers[(down.idx+i)%n]
		if !s.down {
			return s
		}
	}
	return nil
}

// readDegraded serves a piece whose home server is down: a surviving
// neighbour reads the remaining stripe fragments plus parity from its own
// disk, reconstructs the data, and ships it — DegradedPenalty× the
// nominal disk cost on the neighbour's queues.
func (fs *FS) readDegraded(alt, home *server, st *fileState, p subOp, ot *obs.OpTimer, done func(error)) {
	key := stripeKey{file: st.id, unit: p.unit}
	diskOff, ok := home.extent[key]
	if !ok {
		// Hole: nothing to reconstruct.
		enq := fs.eng.Now()
		alt.dq.Submit(0, func(at sim.Time) {
			ot.Add(obs.StageQueue, float64(at-enq))
			done(nil)
		})
		return
	}
	base, det := alt.dsk.AccessTimed(diskOff+p.offIn, p.size)
	svc := sim.Time(float64(base) * fs.degradedPenalty())
	ot.Add(obs.StageDiskSeek, det.SeekSec)
	ot.Add(obs.StageDiskRotation, det.RotationSec)
	ot.Add(obs.StageDiskTransfer, det.TransferSec)
	ot.Add(obs.StageDegraded, float64(svc-base))
	alt.bytesRead += p.size
	alt.cOps.Inc()
	alt.cBytesR.Add(p.size)
	epoch := alt.epoch
	enq := fs.eng.Now()
	alt.dq.Submit(svc, func(at sim.Time) {
		ot.Add(obs.StageQueue, float64(at-enq-svc))
		if alt.epoch != epoch {
			// The neighbour died mid-reconstruction too.
			fs.failOp(done)
			return
		}
		xfer := sim.Time(float64(p.size) / fs.Cfg.ServerNetBW)
		enq2 := fs.eng.Now()
		alt.nic.Submit(xfer, func(at2 sim.Time) {
			ot.Add(obs.StageNet, float64(xfer))
			ot.Add(obs.StageQueue, float64(at2-enq2-xfer))
			done(nil)
		})
	})
}
