package pfs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/sim"
)

// This file is the silent-failure half of the failure model: where
// faults.go handles servers that die loudly, this handles drives that lie
// quietly. An armed corruption schedule (disk.Corruptor per server, drawn
// by failure.DrawLSE) marks extents rotten over sim-time; what happens
// next depends on who looks. With Config.Checksums on, every read
// verifies its stripe unit's crc32c and a mismatch triggers the repair
// path: reconstruct the unit from a parity neighbour (the PR 3 degraded-
// read machinery) at DegradedPenalty× cost, rewrite it in place, and
// deliver the repaired data — the application never sees the corruption.
// With checksums off the corrupt bytes flow silently into the read, and
// only the pfs.integrity.silent_reads counter knows. A background Scrub
// pass sweeps every stored extent (always verifying — a scrub is an
// explicit integrity pass, independent of the read path's Checksums
// flag), repairing what it finds, so the window in which a latent error
// can meet a read shrinks with the scrub interval — the trade the
// integrity experiment in cmd/pdsirepro measures. With no corruption
// injected the whole layer is inert: nil corruptors answer without
// allocating, no integrity metrics are registered, and the event
// trajectory is byte-identical to a build without it.

// ErrCorruptData is returned by ReadErr completions when a checksum
// mismatch cannot be repaired — no surviving neighbour is available to
// reconstruct the stripe unit from parity.
var ErrCorruptData = errors.New("pfs: unrecoverable corrupt data")

// IntegrityStats aggregates the integrity layer's activity over a run.
type IntegrityStats struct {
	// Injected counts corruption events armed via InjectCorruption.
	Injected int64

	// Detected counts checksum mismatches found, on reads or by Scrub.
	Detected int64

	// Repaired counts stripe-unit repairs completed (reconstruct from a
	// neighbour + rewrite in place); Unrecoverable counts mismatches with
	// no surviving neighbour to reconstruct from.
	Repaired      int64
	Unrecoverable int64

	// SilentReads counts reads that returned corrupt bytes to the
	// application because checksums were off — the quantity the
	// integrity experiment measures.
	SilentReads int64

	// ScrubbedUnits counts stripe units swept by Scrub passes.
	ScrubbedUnits int64
}

// IntegrityStats returns a copy of the integrity-layer activity so far.
func (fs *FS) IntegrityStats() IntegrityStats { return fs.integrity }

// InjectCorruption arms one drawn corruption schedule per server (see
// failure.DrawLSE); schedules beyond the server count are rejected.
// Arming registers the pfs.integrity.* metrics — they exist only on
// corruption-injected runs, so a clean run's snapshot is untouched.
func (fs *FS) InjectCorruption(events [][]disk.CorruptionEvent) error {
	if len(events) > len(fs.servers) {
		return fmt.Errorf("pfs: %d corruption schedules for %d servers", len(events), len(fs.servers))
	}
	var n int64
	for i, evs := range events {
		if len(evs) == 0 {
			continue
		}
		fs.servers[i].corr = disk.NewCorruptor(evs)
		n += int64(len(evs))
	}
	if n == 0 {
		return nil
	}
	fs.armIntegrity()
	fs.integrity.Injected += n
	fs.cIntInjected.Add(n)
	return nil
}

// CorruptExtent marks [off, off+size) of the named file corrupt as of
// the current sim-time — the landing zone of a write that only partially
// reached the servers, such as a burst-buffer drain torn mid-stream by
// the buffer node's crash (disk.TornWrite mode). The extent is resolved
// through the same stripe-unit placement the data path uses, so the rot
// lands exactly where the drain's pieces would have; pieces whose stripe
// units were never allocated are skipped (nothing stale exists there to
// lie about). Returns the number of stripe-unit pieces marked. Like
// InjectCorruption, a first marked piece arms the pfs.integrity.*
// metrics lazily, so runs without corruption keep their snapshots.
func (fs *FS) CorruptExtent(name string, off, size int64) int {
	st, ok := fs.files[name]
	if !ok || size <= 0 || off < 0 {
		return 0
	}
	now := fs.eng.Now()
	n := 0
	for _, p := range split(off, size, fs.Cfg.StripeUnit) {
		s, _ := fs.dataServer(st, p.unit)
		diskOff, ok := s.extent[stripeKey{file: st.id, unit: p.unit}]
		if !ok {
			continue
		}
		if s.corr == nil {
			s.corr = disk.NewCorruptor(nil)
		}
		s.corr.Add(disk.CorruptionEvent{
			Offset: diskOff + p.offIn,
			Length: p.size,
			At:     now,
			Mode:   disk.TornWrite,
		})
		n++
	}
	if n > 0 {
		fs.armIntegrity()
		fs.integrity.Injected += int64(n)
		fs.cIntInjected.Add(int64(n))
	}
	return n
}

// armIntegrity lazily registers the integrity instruments. Kept out of
// instrument() so that runs without injected corruption — including the
// pre-PR golden snapshots — register exactly the same metric set as
// before this layer existed.
func (fs *FS) armIntegrity() {
	reg := fs.eng.Metrics()
	if reg == nil || fs.cIntDetected != nil {
		return
	}
	fs.cIntInjected = reg.Counter(fs.metric("pfs.integrity.injected"))
	fs.cIntDetected = reg.Counter(fs.metric("pfs.integrity.detected"))
	fs.cIntRepaired = reg.Counter(fs.metric("pfs.integrity.repaired"))
	fs.cIntUnrecov = reg.Counter(fs.metric("pfs.integrity.unrecoverable"))
	fs.cIntSilent = reg.Counter(fs.metric("pfs.integrity.silent_reads"))
	fs.cIntScrubbed = reg.Counter(fs.metric("pfs.integrity.scrubbed_units"))
}

// readCorrupted handles a read whose extent overlaps live corruption.
// Checksums off: the rot rides along to the application, counted but
// unflagged. Checksums on: the mismatch is detected and the unit is
// repaired before delivery, or the read errors with ErrCorruptData.
func (fs *FS) readCorrupted(s *server, gid int, diskOff int64, deliver func(), done func(error)) {
	if !fs.Cfg.Checksums {
		fs.integrity.SilentReads++
		fs.cIntSilent.Inc()
		deliver()
		return
	}
	fs.detectAndRepair(s, gid, diskOff, fs.Cfg.StripeUnit, func(err error, _ bool) {
		if err != nil {
			done(err)
			return
		}
		deliver()
	})
}

// detectAndRepair funnels every checksum-mismatch detection of one disk
// offset through a single repair: the first detector counts the
// detection and launches the reconstruction; detectors arriving while it
// is in flight (a scrub crossing a checksummed read, say) join its
// completion instead of double-repairing and double-counting the
// pfs.integrity.* metrics. done receives the repair outcome and whether
// this caller initiated it (false for joiners — pass-level reports count
// only what they initiated).
func (fs *FS) detectAndRepair(s *server, gid int, diskOff, size int64, done func(err error, initiated bool)) {
	if s.repairing == nil {
		s.repairing = make(map[int64][]func(error))
	}
	if waiters, ok := s.repairing[diskOff]; ok {
		s.repairing[diskOff] = append(waiters, func(err error) { done(err, false) })
		return
	}
	s.repairing[diskOff] = nil
	fs.integrity.Detected++
	fs.cIntDetected.Inc()
	fs.repairUnit(s, gid, diskOff, size, func(err error) {
		waiters := s.repairing[diskOff]
		delete(s.repairing, diskOff)
		done(err, true)
		for _, w := range waiters {
			w(err)
		}
	})
}

// repairUnit reconstructs the unit at diskOff on s and rewrites it in
// place on the home drive, clearing the latent corruption. Under
// redundancy (gid >= 0) the reconstruction reads from k live members of
// the unit's group; otherwise a parity neighbour rebuilds it at
// DegradedPenalty× the nominal disk cost on the neighbour's queues. done
// receives ErrCorruptData when no one survives to reconstruct from,
// ErrServerDown if a server dies mid-repair, else nil.
func (fs *FS) repairUnit(s *server, gid int, diskOff, size int64, done func(error)) {
	if fs.red != nil && gid >= 0 {
		fs.repairFromGroup(s, gid, diskOff, size, done)
		return
	}
	alt := fs.survivor(s)
	if alt == nil {
		fs.integrity.Unrecoverable++
		fs.cIntUnrecov.Inc()
		done(ErrCorruptData)
		return
	}
	svc := sim.Time(float64(alt.dsk.Access(diskOff, size)) * fs.degradedPenalty())
	aepoch := alt.epoch
	alt.dq.Submit(svc, func(sim.Time) {
		if alt.epoch != aepoch {
			fs.failOp(done)
			return
		}
		wsvc := s.dsk.Access(diskOff, size)
		sepoch := s.epoch
		s.dq.Submit(wsvc, func(sim.Time) {
			if s.epoch != sepoch {
				fs.failOp(done)
				return
			}
			s.corr.Repair(diskOff, size, fs.eng.Now())
			fs.integrity.Repaired++
			fs.cIntRepaired.Inc()
			done(nil)
		})
	})
}

// repairFromGroup is repairUnit's erasure-coded path: k parallel
// fragment reads from the unit's redundancy group, then an in-place
// rewrite on the home drive.
func (fs *FS) repairFromGroup(s *server, gid int, diskOff, size int64, done func(error)) {
	red := fs.red
	slot := -1
	for i, idx := range red.groups[gid].members {
		if int(idx) == s.idx {
			slot = i
			break
		}
	}
	readers := fs.ecLiveMembers(gid, slot, red.cfg.K)
	if len(readers) < red.cfg.K {
		fs.integrity.Unrecoverable++
		fs.cIntUnrecov.Inc()
		done(ErrCorruptData)
		return
	}
	failed := false
	barrier := sim.NewBarrier(fs.eng, len(readers), func(sim.Time) {
		if failed {
			fs.failOp(done)
			return
		}
		wsvc := s.dsk.Access(diskOff, size)
		sepoch := s.epoch
		s.dq.Submit(wsvc, func(sim.Time) {
			if s.epoch != sepoch {
				fs.failOp(done)
				return
			}
			s.corr.Repair(diskOff, size, fs.eng.Now())
			fs.integrity.Repaired++
			fs.cIntRepaired.Inc()
			done(nil)
		})
	})
	for _, m := range readers {
		m := m
		roff := fs.ecExtent(m.srv, gid, m.slot)
		svc := m.srv.dsk.Access(roff, size)
		m.srv.bytesRead += size
		m.srv.cOps.Inc()
		m.srv.cBytesR.Add(size)
		epoch := m.srv.epoch
		m.srv.dq.Submit(svc, func(sim.Time) {
			if m.srv.epoch != epoch {
				failed = true
			}
			barrier.Arrive()
		})
	}
}

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	// Units counts stripe units read and verified.
	Units int64

	// Detected, Repaired, and Unrecoverable count this pass's checksum
	// mismatches and their outcomes.
	Detected      int64
	Repaired      int64
	Unrecoverable int64

	// Start and End bound the pass in sim-time.
	Start, End sim.Time
}

// Scrub sweeps every stored stripe unit on every server, verifying
// checksums and repairing mismatches from parity neighbours — the
// background media scrub that bounds how long a latent sector error can
// lie in wait. Servers sweep in parallel; each server walks its extents
// in deterministic (file, unit) order at normal disk cost on its own
// queues, so a scrub competes with foreground traffic exactly like any
// other reader. A server that is down (or dies mid-sweep) abandons its
// sweep for this pass. done, if non-nil, receives the pass summary when
// the last server finishes.
func (fs *FS) Scrub(done func(ScrubReport)) {
	rep := &ScrubReport{Start: fs.eng.Now()}
	barrier := sim.NewBarrier(fs.eng, len(fs.servers), func(at sim.Time) {
		rep.End = at
		if done != nil {
			done(*rep)
		}
	})
	for _, s := range fs.servers {
		fs.scrubServer(s, rep, barrier.Arrive)
	}
}

// scrubServer chains one server's extent sweep; each unit is read, then
// checked against the drive's corruption state, then repaired if rotten.
func (fs *FS) scrubServer(s *server, rep *ScrubReport, done func()) {
	if s.down {
		done()
		return
	}
	keys := make([]stripeKey, 0, len(s.extent))
	for k := range s.extent {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].unit < keys[j].unit
	})
	var next func(i int)
	next = func(i int) {
		if i == len(keys) {
			done()
			return
		}
		k := keys[i]
		diskOff := s.extent[k]
		// Resolve the unit's redundancy group (and true size — erasure-
		// coded fragment regions are group-unit sized) so repairs go
		// through the right reconstruction path.
		size := fs.Cfg.StripeUnit
		gid := -1
		if fs.red != nil {
			if k.file >= 0 {
				gid, _ = fs.red.groupOf(k.file, k.unit)
			} else {
				gid = -k.file - 1
				size = fs.red.cfg.unitBytes()
			}
		}
		svc := s.dsk.Access(diskOff, size)
		epoch := s.epoch
		s.dq.Submit(svc, func(sim.Time) {
			if s.epoch != epoch {
				// The server died mid-sweep: abandon this pass.
				done()
				return
			}
			rep.Units++
			fs.integrity.ScrubbedUnits++
			fs.cIntScrubbed.Inc()
			if !s.corr.FaultIn(diskOff, size, fs.eng.Now()) {
				next(i + 1)
				return
			}
			//lint:allow errflow -- err is deliberately unread when another pass initiated the repair: that pass counts the outcome
			fs.detectAndRepair(s, gid, diskOff, size, func(err error, initiated bool) {
				// A repair someone else initiated is not this pass's: the
				// detection and outcome were already counted there.
				if initiated {
					rep.Detected++
					if err != nil {
						rep.Unrecoverable++
					} else {
						rep.Repaired++
					}
				}
				next(i + 1)
			})
		})
	}
	next(0)
}

// UnrepairedCorruption counts corruption events that have arrived by now
// and not yet been repaired, across all drives (for tests and the
// integrity experiment's bookkeeping).
func (fs *FS) UnrepairedCorruption() int {
	n := 0
	for _, s := range fs.servers {
		n += s.corr.Unrepaired(fs.eng.Now())
	}
	return n
}
