package pfs

import "repro/internal/sim"

// File is a client handle on a file.
type File struct {
	fs *FS
	st *fileState
}

// Size returns the current end-of-file offset.
func (f *File) Size() int64 { return f.st.size }

// Name returns the file's path name.
func (f *File) Name() string { return f.st.name }

// Client issues operations into the file system. Each client has its own
// network link; a client's transfers serialize on that link, as a real
// compute node's do.
type Client struct {
	fs  *FS
	id  int
	nic *sim.Server
}

// NewClient registers a client with the given id (ranks use their MPI rank).
func (fs *FS) NewClient(id int) *Client {
	return &Client{fs: fs, id: id, nic: sim.NewServer(fs.eng, 1)}
}

// ID returns the client id.
func (c *Client) ID() int { return c.id }

// parentDir returns the directory component of a path.
func parentDir(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return ""
}

// Create makes (or truncates) a file via the metadata server and passes the
// handle to done. Creates within one parent directory serialize on that
// directory's lock even when the metadata server has spare threads.
func (c *Client) Create(name string, done func(*File)) {
	fs := c.fs
	dir := parentDir(name)
	done = c.traceSpan("pfs.meta", "create", done)
	fs.acquireDir(dir, c.id, func() {
		fs.mds.Submit(fs.Cfg.MetadataOp, func(sim.Time) {
			fs.metadataOps++
			fs.cMeta.Inc()
			st, ok := fs.files[name]
			if !ok {
				st = &fileState{id: fs.nextID, name: name}
				fs.nextID++
				fs.files[name] = st
			}
			st.size = 0
			fs.releaseDir(dir)
			if done != nil {
				done(&File{fs: fs, st: st})
			}
		})
	})
}

// Open returns a handle on an existing file (creating it if absent, which
// keeps workload code simple) after a metadata round trip.
func (c *Client) Open(name string, done func(*File)) {
	fs := c.fs
	done = c.traceSpan("pfs.meta", "open", done)
	fs.mds.Submit(fs.Cfg.MetadataOp, func(sim.Time) {
		fs.metadataOps++
		fs.cMeta.Inc()
		st, ok := fs.files[name]
		if !ok {
			st = &fileState{id: fs.nextID, name: name}
			fs.nextID++
			fs.files[name] = st
		}
		if done != nil {
			done(&File{fs: fs, st: st})
		}
	})
}

// traceSpan wraps a metadata completion callback in a tracer span from
// now until the callback fires; lanes (tid) are client ids. Returns done
// unchanged when tracing is off, so the disabled path allocates nothing.
func (c *Client) traceSpan(cat, name string, done func(*File)) func(*File) {
	tr := c.fs.eng.Tracer()
	if !tr.Enabled() {
		return done
	}
	eng := c.fs.eng
	start := float64(eng.Now())
	tid := int64(c.id)
	return func(f *File) {
		tr.Span(cat, name, tid, start, float64(eng.Now()), nil)
		if done != nil {
			done(f)
		}
	}
}

// traceIOSpan is traceSpan for data-path completions, annotated with the
// logical offset and size.
func (c *Client) traceIOSpan(name string, off, size int64, done func()) func() {
	tr := c.fs.eng.Tracer()
	if !tr.Enabled() {
		return done
	}
	eng := c.fs.eng
	start := float64(eng.Now())
	tid := int64(c.id)
	return func() {
		tr.Span("pfs", name, tid, start, float64(eng.Now()),
			map[string]any{"off": off, "size": size})
		if done != nil {
			done()
		}
	}
}

// subOp is one stripe-unit-granular piece of a client write or read.
type subOp struct {
	unit        int64
	offIn, size int64 // range within the stripe unit
}

// split decomposes [off, off+size) into per-stripe-unit pieces.
func split(off, size, unit int64) []subOp {
	var out []subOp
	for size > 0 {
		u := off / unit
		within := off % unit
		n := unit - within
		if n > size {
			n = size
		}
		out = append(out, subOp{unit: u, offIn: within, size: n})
		off += n
		size -= n
	}
	return out
}

// Write writes [off, off+size) and calls done at completion. The path per
// stripe unit is: client NIC transfer -> RPC latency -> stripe lock
// acquisition (revoke if another client owns it) -> server NIC -> disk
// write, with read-modify-write if the piece does not cover its unit.
func (c *Client) Write(f *File, off, size int64, done func()) {
	if size <= 0 {
		if done != nil {
			c.fs.eng.Schedule(0, done)
		}
		return
	}
	fs := c.fs
	done = c.traceIOSpan("write", off, size, done)
	pieces := split(off, size, fs.Cfg.StripeUnit)
	barrier := sim.NewBarrier(fs.eng, len(pieces), func(sim.Time) {
		if end := off + size; end > f.st.size {
			f.st.size = end
		}
		if done != nil {
			done()
		}
	})
	for _, p := range pieces {
		p := p
		// The client's link serializes its own pieces.
		c.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ClientNetBW), func(sim.Time) {
			fs.writePiece(c.id, f.st, p, barrier.Arrive)
		})
	}
}

func (fs *FS) writePiece(clientID int, st *fileState, p subOp, done func()) {
	lockSpan := fs.Cfg.LockGranularity
	if lockSpan <= 0 {
		lockSpan = fs.Cfg.StripeUnit
	}
	key := stripeKey{file: st.id, unit: (p.unit*fs.Cfg.StripeUnit + p.offIn) / lockSpan}
	srv := fs.serverFor(st, p.unit)
	perform := func(release bool) {
		fs.eng.Schedule(fs.Cfg.RPCLatency, func() {
			srv.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ServerNetBW), func(sim.Time) {
				srv.write(fs, st, p, func() {
					if release {
						fs.release(key)
					}
					done()
				})
			})
		})
	}
	if fs.Cfg.LockRevoke > 0 {
		fs.acquire(key, clientID, func() { perform(true) })
	} else {
		perform(false)
	}
}

// write performs the disk I/O for one piece at the server.
func (s *server) write(fs *FS, st *fileState, p subOp, done func()) {
	key := stripeKey{file: st.id, unit: p.unit}
	diskOff, ok := s.extent[key]
	if !ok {
		diskOff = s.next
		s.next += fs.Cfg.StripeUnit
		s.extent[key] = diskOff
	}
	full := p.offIn == 0 && p.size == fs.Cfg.StripeUnit
	var svc sim.Time
	if !full && fs.Cfg.RMWPartialStripe && ok {
		// Partial overwrite of an existing unit: read it, modify, write it
		// back — two unit-sized disk ops.
		svc = s.dsk.Access(diskOff, fs.Cfg.StripeUnit) + s.dsk.Access(diskOff, fs.Cfg.StripeUnit)
		fs.cRMW.Inc()
		s.cRMW.Inc()
	} else {
		svc = s.dsk.Access(diskOff+p.offIn, p.size)
	}
	s.bytesWritten += p.size
	s.cOps.Inc()
	s.cBytesW.Add(p.size)
	s.dq.Submit(svc, func(sim.Time) { done() })
}

// Read reads [off, off+size) and calls done at completion. Reads skip the
// lock manager and RMW but follow the same network/disk path.
func (c *Client) Read(f *File, off, size int64, done func()) {
	if size <= 0 {
		if done != nil {
			c.fs.eng.Schedule(0, done)
		}
		return
	}
	fs := c.fs
	done = c.traceIOSpan("read", off, size, done)
	pieces := split(off, size, fs.Cfg.StripeUnit)
	barrier := sim.NewBarrier(fs.eng, len(pieces), func(sim.Time) {
		if done != nil {
			done()
		}
	})
	for _, p := range pieces {
		p := p
		srv := fs.serverFor(f.st, p.unit)
		fs.eng.Schedule(fs.Cfg.RPCLatency, func() {
			srv.read(fs, f.st, p, func() {
				c.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ClientNetBW), func(sim.Time) {
					barrier.Arrive()
				})
			})
		})
	}
}

func (s *server) read(fs *FS, st *fileState, p subOp, done func()) {
	key := stripeKey{file: st.id, unit: p.unit}
	diskOff, ok := s.extent[key]
	if !ok {
		// Reading a hole: no disk work.
		s.dq.Submit(0, func(sim.Time) { done() })
		return
	}
	svc := s.dsk.Access(diskOff+p.offIn, p.size)
	s.bytesRead += p.size
	s.cOps.Inc()
	s.cBytesR.Add(p.size)
	s.dq.Submit(svc, func(sim.Time) {
		s.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ServerNetBW), func(sim.Time) { done() })
	})
}
