package pfs

import (
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/sim"
)

// File is a client handle on a file.
type File struct {
	fs *FS
	st *fileState
}

// Size returns the current end-of-file offset.
func (f *File) Size() int64 { return f.st.size }

// Name returns the file's path name.
func (f *File) Name() string { return f.st.name }

// Client issues operations into the file system. Each client has its own
// network link; a client's transfers serialize on that link, as a real
// compute node's do.
type Client struct {
	fs  *FS
	id  int
	nic *sim.Server
}

// NewClient registers a client with the given id (ranks use their MPI rank).
func (fs *FS) NewClient(id int) *Client {
	return &Client{fs: fs, id: id, nic: sim.NewServer(fs.eng, 1)}
}

// ID returns the client id.
func (c *Client) ID() int { return c.id }

// parentDir returns the directory component of a path.
func parentDir(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return ""
}

// Create makes (or truncates) a file via the metadata server and passes the
// handle to done. Creates within one parent directory serialize on that
// directory's lock even when the metadata server has spare threads.
func (c *Client) Create(name string, done func(*File)) {
	fs := c.fs
	dir := parentDir(name)
	done = c.traceSpan("pfs.meta", "create", done)
	fs.acquireDir(dir, c.id, func() {
		fs.mds.Submit(fs.Cfg.MetadataOp, func(sim.Time) {
			fs.metadataOps++
			fs.cMeta.Inc()
			st, ok := fs.files[name]
			if !ok {
				st = &fileState{id: fs.nextID, name: name}
				fs.nextID++
				fs.files[name] = st
			}
			st.size = 0
			fs.releaseDir(dir)
			if done != nil {
				done(&File{fs: fs, st: st})
			}
		})
	})
}

// Open returns a handle on an existing file (creating it if absent, which
// keeps workload code simple) after a metadata round trip.
func (c *Client) Open(name string, done func(*File)) {
	fs := c.fs
	done = c.traceSpan("pfs.meta", "open", done)
	fs.mds.Submit(fs.Cfg.MetadataOp, func(sim.Time) {
		fs.metadataOps++
		fs.cMeta.Inc()
		st, ok := fs.files[name]
		if !ok {
			st = &fileState{id: fs.nextID, name: name}
			fs.nextID++
			fs.files[name] = st
		}
		if done != nil {
			done(&File{fs: fs, st: st})
		}
	})
}

// traceSpan wraps a metadata completion callback in a tracer span from
// now until the callback fires; lanes (tid) are client ids. Returns done
// unchanged when tracing is off, so the disabled path allocates nothing.
func (c *Client) traceSpan(cat, name string, done func(*File)) func(*File) {
	tr := c.fs.eng.Tracer()
	if !tr.Enabled() {
		return done
	}
	eng := c.fs.eng
	start := float64(eng.Now())
	tid := int64(c.id)
	return func(f *File) {
		tr.Span(cat, name, tid, start, float64(eng.Now()), nil)
		if done != nil {
			done(f)
		}
	}
}

// traceIOSpan is traceSpan for data-path completions, annotated with the
// logical offset and size; failed operations gain an "error" argument
// (fault-free spans are byte-identical with the pre-fault-layer trace).
func (c *Client) traceIOSpan(name string, off, size int64, done func(error)) func(error) {
	tr := c.fs.eng.Tracer()
	if !tr.Enabled() {
		return done
	}
	eng := c.fs.eng
	start := float64(eng.Now())
	tid := int64(c.id)
	return func(err error) {
		args := map[string]any{"off": off, "size": size}
		if err != nil {
			args["error"] = err.Error()
		}
		tr.Span("pfs", name, tid, start, float64(eng.Now()), args)
		if done != nil {
			done(err)
		}
	}
}

// subOp is one stripe-unit-granular piece of a client write or read.
type subOp struct {
	unit        int64
	offIn, size int64 // range within the stripe unit
}

// split decomposes [off, off+size) into per-stripe-unit pieces.
func split(off, size, unit int64) []subOp {
	var out []subOp
	for size > 0 {
		u := off / unit
		within := off % unit
		n := unit - within
		if n > size {
			n = size
		}
		out = append(out, subOp{unit: u, offIn: within, size: n})
		off += n
		size -= n
	}
	return out
}

// Write writes [off, off+size) and calls done at completion. The path per
// stripe unit is: client NIC transfer -> RPC latency -> stripe lock
// acquisition (revoke if another client owns it) -> server NIC -> disk
// write, with read-modify-write if the piece does not cover its unit.
// Write ignores server failures; fault-aware callers use WriteErr.
func (c *Client) Write(f *File, off, size int64, done func()) {
	if done == nil {
		c.WriteErr(f, off, size, nil)
		return
	}
	c.WriteErr(f, off, size, func(error) { done() }) //lint:allow errflow -- Write is the fault-blind variant; its doc sends fault-aware callers to WriteErr
}

// WriteErr is Write with failure reporting: done receives ErrServerDown
// when any piece's server crashed before acknowledging. The file size
// only advances on full success, so a failed checkpoint write leaves no
// phantom extent. Fault-free runs follow the exact event sequence of
// Write — the error plumbing costs a nil comparison per piece. When op
// timers are enabled the write carries a stage timer, observed into the
// pfs.write quantiles on success.
func (c *Client) WriteErr(f *File, off, size int64, done func(error)) {
	set := c.fs.otWrite
	if set == nil {
		c.WriteOp(f, off, size, nil, done)
		return
	}
	ot := c.fs.StartWriteOp()
	c.WriteOp(f, off, size, ot, func(err error) {
		if err == nil {
			c.fs.FinishWriteOp(ot)
		}
		if done != nil {
			done(err)
		}
	})
}

// WriteOp is WriteErr with a caller-owned stage timer: ot (which may be
// nil) accumulates per-stage sim-time but is NOT observed at
// completion, so a retry loop can carry one timer across attempts and
// fold it in once via FinishWriteOp. The event trajectory is identical
// to WriteErr's.
func (c *Client) WriteOp(f *File, off, size int64, ot *obs.OpTimer, done func(error)) {
	if size <= 0 {
		if done != nil {
			c.fs.eng.Schedule(0, func() { done(nil) })
		}
		return
	}
	fs := c.fs
	done = c.traceIOSpan("write", off, size, done)
	pieces := split(off, size, fs.Cfg.StripeUnit)
	track := fs.tsOn
	if track {
		fs.inflight++
	}
	var firstErr error
	barrier := sim.NewBarrier(fs.eng, len(pieces), func(sim.Time) {
		if track {
			fs.inflight--
		}
		if firstErr == nil {
			if end := off + size; end > f.st.size {
				f.st.size = end
			}
		}
		if done != nil {
			done(firstErr)
		}
	})
	arrive := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		barrier.Arrive()
	}
	for _, p := range pieces {
		p := p
		// The client's link serializes its own pieces.
		xfer := sim.Time(float64(p.size) / fs.Cfg.ClientNetBW)
		enq := fs.eng.Now()
		c.nic.Submit(xfer, func(at sim.Time) {
			ot.Add(obs.StageNet, float64(xfer))
			ot.Add(obs.StageQueue, float64(at-enq-xfer))
			fs.writePiece(c.id, f.st, p, ot, arrive)
		})
	}
}

func (fs *FS) writePiece(clientID int, st *fileState, p subOp, ot *obs.OpTimer, done func(error)) {
	lockSpan := fs.Cfg.LockGranularity
	if lockSpan <= 0 {
		lockSpan = fs.Cfg.StripeUnit
	}
	key := stripeKey{file: st.id, unit: (p.unit*fs.Cfg.StripeUnit + p.offIn) / lockSpan}
	srv, gid := fs.dataServer(st, p.unit)
	perform := func(release bool) {
		ot.Add(obs.StageRPC, float64(fs.Cfg.RPCLatency))
		fs.eng.Schedule(fs.Cfg.RPCLatency, func() {
			// RPC arrival at a dead server: nothing answers, the client's
			// timeout fires, and any stripe lock it held sits out its lease.
			if srv.down {
				fs.failWrite(key, release, done)
				return
			}
			epoch := srv.epoch
			xfer := sim.Time(float64(p.size) / fs.Cfg.ServerNetBW)
			enq := fs.eng.Now()
			srv.nic.Submit(xfer, func(at sim.Time) {
				ot.Add(obs.StageNet, float64(xfer))
				ot.Add(obs.StageQueue, float64(at-enq-xfer))
				if srv.epoch != epoch {
					// Crashed while the payload was in its NIC queue.
					fs.failWrite(key, release, done)
					return
				}
				srv.write(fs, st, p, ot, func(err error) {
					if err != nil {
						fs.failWrite(key, release, done)
						return
					}
					finish := func() {
						if release {
							fs.release(key)
						}
						done(nil)
					}
					if gid >= 0 {
						// Erasure-coded: the group's redundancy fragments
						// update before the client's ack, like object-RAID
						// parity, and the stripe lock covers the update.
						fs.writeRedundant(gid, p, ot, finish)
						return
					}
					finish()
				})
			})
		})
	}
	if fs.Cfg.LockRevoke > 0 {
		lockReq := fs.eng.Now()
		fs.acquire(key, clientID, func() {
			ot.Add(obs.StageLockWait, float64(fs.eng.Now()-lockReq))
			perform(true)
		})
	} else {
		perform(false)
	}
}

// write performs the disk I/O for one piece at the server. done receives a
// non-nil error when the server crashes before the write is acknowledged
// (detected by epoch comparison at disk completion — the in-flight
// operation's ack died with the server).
func (s *server) write(fs *FS, st *fileState, p subOp, ot *obs.OpTimer, done func(error)) {
	key := stripeKey{file: st.id, unit: p.unit}
	diskOff, ok := s.extent[key]
	if !ok {
		diskOff = s.next
		s.next += fs.Cfg.StripeUnit
		s.extent[key] = diskOff
	}
	full := p.offIn == 0 && p.size == fs.Cfg.StripeUnit
	var svc sim.Time
	var det disk.AccessDetail
	if !full && fs.Cfg.RMWPartialStripe && ok {
		// Partial overwrite of an existing unit: read it, modify, write it
		// back — two unit-sized disk ops.
		t1, d1 := s.dsk.AccessTimed(diskOff, fs.Cfg.StripeUnit)
		t2, d2 := s.dsk.AccessTimed(diskOff, fs.Cfg.StripeUnit)
		svc = t1 + t2
		det = disk.AccessDetail{
			SeekSec:     d1.SeekSec + d2.SeekSec,
			RotationSec: d1.RotationSec + d2.RotationSec,
			TransferSec: d1.TransferSec + d2.TransferSec,
		}
		fs.cRMW.Inc()
		s.cRMW.Inc()
	} else {
		svc, det = s.dsk.AccessTimed(diskOff+p.offIn, p.size)
	}
	ot.Add(obs.StageDiskSeek, det.SeekSec)
	ot.Add(obs.StageDiskRotation, det.RotationSec)
	ot.Add(obs.StageDiskTransfer, det.TransferSec)
	s.bytesWritten += p.size
	s.cOps.Inc()
	s.cBytesW.Add(p.size)
	epoch := s.epoch
	enq := fs.eng.Now()
	s.dq.Submit(svc, func(at sim.Time) {
		ot.Add(obs.StageQueue, float64(at-enq-svc))
		if s.epoch != epoch {
			done(ErrServerDown)
			return
		}
		// Fresh bytes replace whatever rot had accumulated in the range.
		s.corr.Repair(diskOff+p.offIn, p.size, fs.eng.Now())
		done(nil)
	})
}

// Read reads [off, off+size) and calls done at completion. Reads skip the
// lock manager and RMW but follow the same network/disk path. Read
// ignores server failures; fault-aware callers use ReadErr.
func (c *Client) Read(f *File, off, size int64, done func()) {
	if done == nil {
		c.ReadErr(f, off, size, nil)
		return
	}
	c.ReadErr(f, off, size, func(error) { done() }) //lint:allow errflow -- Read is the fault-blind variant; its doc sends fault-aware callers to ReadErr
}

// ReadErr is Read with failure reporting. A piece whose home server is
// down is reconstructed from parity by a surviving neighbour at degraded
// cost; done receives ErrServerDown only when no server can serve it.
// When op timers are enabled the read carries a stage timer, observed
// into the pfs.read quantiles on success.
func (c *Client) ReadErr(f *File, off, size int64, done func(error)) {
	set := c.fs.otRead
	if set == nil {
		c.ReadOp(f, off, size, nil, done)
		return
	}
	ot := c.fs.StartReadOp()
	c.ReadOp(f, off, size, ot, func(err error) {
		if err == nil {
			c.fs.FinishReadOp(ot)
		}
		if done != nil {
			done(err)
		}
	})
}

// ReadOp is ReadErr with a caller-owned stage timer (see WriteOp).
func (c *Client) ReadOp(f *File, off, size int64, ot *obs.OpTimer, done func(error)) {
	if size <= 0 {
		if done != nil {
			c.fs.eng.Schedule(0, func() { done(nil) })
		}
		return
	}
	fs := c.fs
	done = c.traceIOSpan("read", off, size, done)
	pieces := split(off, size, fs.Cfg.StripeUnit)
	track := fs.tsOn
	if track {
		fs.inflight++
	}
	var firstErr error
	barrier := sim.NewBarrier(fs.eng, len(pieces), func(sim.Time) {
		if track {
			fs.inflight--
		}
		if done != nil {
			done(firstErr)
		}
	})
	arrive := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		barrier.Arrive()
	}
	for _, p := range pieces {
		p := p
		ot.Add(obs.StageRPC, float64(fs.Cfg.RPCLatency))
		fs.eng.Schedule(fs.Cfg.RPCLatency, func() {
			fs.readPiece(f.st, p, ot, func(err error) {
				if err != nil {
					arrive(err)
					return
				}
				xfer := sim.Time(float64(p.size) / fs.Cfg.ClientNetBW)
				enq := fs.eng.Now()
				c.nic.Submit(xfer, func(at sim.Time) {
					ot.Add(obs.StageNet, float64(xfer))
					ot.Add(obs.StageQueue, float64(at-enq-xfer))
					arrive(nil)
				})
			})
		})
	}
}

// readPiece routes one read piece: to the home server when healthy (at
// penalty cost while it rebuilds), to redundancy reconstruction when it
// is down — k-survivor decode under erasure coding, a neighbour's parity
// otherwise — or to a timeout error when nothing can serve it.
func (fs *FS) readPiece(st *fileState, p subOp, ot *obs.OpTimer, done func(error)) {
	srv, gid := fs.dataServer(st, p.unit)
	if srv.down {
		if gid >= 0 {
			fs.readReconstruct(gid, srv, p, ot, done)
			return
		}
		alt := fs.survivor(srv)
		if alt == nil {
			fs.failOp(done)
			return
		}
		fs.faults.DegradedReads++
		fs.cDegraded.Inc()
		fs.readDegraded(alt, srv, st, p, ot, done)
		return
	}
	if srv.rebuildUntil > fs.eng.Now() {
		fs.faults.DegradedReads++
		fs.cDegraded.Inc()
		srv.read(fs, st, p, fs.degradedPenalty(), gid, ot, done)
		return
	}
	srv.read(fs, st, p, 1, gid, ot, done)
}

// read serves one piece from the server's own disk; penalty > 1 models
// parity reconstruction during the post-recovery rebuild window, and gid
// (-1 without redundancy) routes checksum repairs through the piece's
// redundancy group. done receives a non-nil error when the server
// crashes mid-operation.
func (s *server) read(fs *FS, st *fileState, p subOp, penalty float64, gid int, ot *obs.OpTimer, done func(error)) {
	key := stripeKey{file: st.id, unit: p.unit}
	diskOff, ok := s.extent[key]
	if !ok {
		// Reading a hole: no disk work.
		enq := fs.eng.Now()
		s.dq.Submit(0, func(at sim.Time) {
			ot.Add(obs.StageQueue, float64(at-enq))
			done(nil)
		})
		return
	}
	svc, det := s.dsk.AccessTimed(diskOff+p.offIn, p.size)
	ot.Add(obs.StageDiskSeek, det.SeekSec)
	ot.Add(obs.StageDiskRotation, det.RotationSec)
	ot.Add(obs.StageDiskTransfer, det.TransferSec)
	if penalty > 1 {
		base := svc
		svc = sim.Time(float64(svc) * penalty)
		// The extra reconstruction reads beyond the nominal service time
		// are the degraded-mode cost.
		ot.Add(obs.StageDegraded, float64(svc-base))
	}
	s.bytesRead += p.size
	s.cOps.Inc()
	s.cBytesR.Add(p.size)
	epoch := s.epoch
	enq := fs.eng.Now()
	s.dq.Submit(svc, func(at sim.Time) {
		ot.Add(obs.StageQueue, float64(at-enq-svc))
		if s.epoch != epoch {
			fs.failOp(done)
			return
		}
		deliver := func() {
			xfer := sim.Time(float64(p.size) / fs.Cfg.ServerNetBW)
			enq2 := fs.eng.Now()
			s.nic.Submit(xfer, func(at sim.Time) {
				ot.Add(obs.StageNet, float64(xfer))
				ot.Add(obs.StageQueue, float64(at-enq2-xfer))
				if s.epoch != epoch {
					fs.failOp(done)
					return
				}
				done(nil)
			})
		}
		// The bytes are off the platter: this is where a checksum (or the
		// lack of one) decides whether latent corruption is caught.
		if s.corr.FaultIn(diskOff+p.offIn, p.size, fs.eng.Now()) {
			fs.readCorrupted(s, gid, diskOff, deliver, done)
			return
		}
		deliver()
	})
}
