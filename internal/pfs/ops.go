package pfs

import "repro/internal/sim"

// File is a client handle on a file.
type File struct {
	fs *FS
	st *fileState
}

// Size returns the current end-of-file offset.
func (f *File) Size() int64 { return f.st.size }

// Name returns the file's path name.
func (f *File) Name() string { return f.st.name }

// Client issues operations into the file system. Each client has its own
// network link; a client's transfers serialize on that link, as a real
// compute node's do.
type Client struct {
	fs  *FS
	id  int
	nic *sim.Server
}

// NewClient registers a client with the given id (ranks use their MPI rank).
func (fs *FS) NewClient(id int) *Client {
	return &Client{fs: fs, id: id, nic: sim.NewServer(fs.eng, 1)}
}

// ID returns the client id.
func (c *Client) ID() int { return c.id }

// parentDir returns the directory component of a path.
func parentDir(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return ""
}

// Create makes (or truncates) a file via the metadata server and passes the
// handle to done. Creates within one parent directory serialize on that
// directory's lock even when the metadata server has spare threads.
func (c *Client) Create(name string, done func(*File)) {
	fs := c.fs
	dir := parentDir(name)
	done = c.traceSpan("pfs.meta", "create", done)
	fs.acquireDir(dir, c.id, func() {
		fs.mds.Submit(fs.Cfg.MetadataOp, func(sim.Time) {
			fs.metadataOps++
			fs.cMeta.Inc()
			st, ok := fs.files[name]
			if !ok {
				st = &fileState{id: fs.nextID, name: name}
				fs.nextID++
				fs.files[name] = st
			}
			st.size = 0
			fs.releaseDir(dir)
			if done != nil {
				done(&File{fs: fs, st: st})
			}
		})
	})
}

// Open returns a handle on an existing file (creating it if absent, which
// keeps workload code simple) after a metadata round trip.
func (c *Client) Open(name string, done func(*File)) {
	fs := c.fs
	done = c.traceSpan("pfs.meta", "open", done)
	fs.mds.Submit(fs.Cfg.MetadataOp, func(sim.Time) {
		fs.metadataOps++
		fs.cMeta.Inc()
		st, ok := fs.files[name]
		if !ok {
			st = &fileState{id: fs.nextID, name: name}
			fs.nextID++
			fs.files[name] = st
		}
		if done != nil {
			done(&File{fs: fs, st: st})
		}
	})
}

// traceSpan wraps a metadata completion callback in a tracer span from
// now until the callback fires; lanes (tid) are client ids. Returns done
// unchanged when tracing is off, so the disabled path allocates nothing.
func (c *Client) traceSpan(cat, name string, done func(*File)) func(*File) {
	tr := c.fs.eng.Tracer()
	if !tr.Enabled() {
		return done
	}
	eng := c.fs.eng
	start := float64(eng.Now())
	tid := int64(c.id)
	return func(f *File) {
		tr.Span(cat, name, tid, start, float64(eng.Now()), nil)
		if done != nil {
			done(f)
		}
	}
}

// traceIOSpan is traceSpan for data-path completions, annotated with the
// logical offset and size; failed operations gain an "error" argument
// (fault-free spans are byte-identical with the pre-fault-layer trace).
func (c *Client) traceIOSpan(name string, off, size int64, done func(error)) func(error) {
	tr := c.fs.eng.Tracer()
	if !tr.Enabled() {
		return done
	}
	eng := c.fs.eng
	start := float64(eng.Now())
	tid := int64(c.id)
	return func(err error) {
		args := map[string]any{"off": off, "size": size}
		if err != nil {
			args["error"] = err.Error()
		}
		tr.Span("pfs", name, tid, start, float64(eng.Now()), args)
		if done != nil {
			done(err)
		}
	}
}

// subOp is one stripe-unit-granular piece of a client write or read.
type subOp struct {
	unit        int64
	offIn, size int64 // range within the stripe unit
}

// split decomposes [off, off+size) into per-stripe-unit pieces.
func split(off, size, unit int64) []subOp {
	var out []subOp
	for size > 0 {
		u := off / unit
		within := off % unit
		n := unit - within
		if n > size {
			n = size
		}
		out = append(out, subOp{unit: u, offIn: within, size: n})
		off += n
		size -= n
	}
	return out
}

// Write writes [off, off+size) and calls done at completion. The path per
// stripe unit is: client NIC transfer -> RPC latency -> stripe lock
// acquisition (revoke if another client owns it) -> server NIC -> disk
// write, with read-modify-write if the piece does not cover its unit.
// Write ignores server failures; fault-aware callers use WriteErr.
func (c *Client) Write(f *File, off, size int64, done func()) {
	if done == nil {
		c.WriteErr(f, off, size, nil)
		return
	}
	c.WriteErr(f, off, size, func(error) { done() })
}

// WriteErr is Write with failure reporting: done receives ErrServerDown
// when any piece's server crashed before acknowledging. The file size
// only advances on full success, so a failed checkpoint write leaves no
// phantom extent. Fault-free runs follow the exact event sequence of
// Write — the error plumbing costs a nil comparison per piece.
func (c *Client) WriteErr(f *File, off, size int64, done func(error)) {
	if size <= 0 {
		if done != nil {
			c.fs.eng.Schedule(0, func() { done(nil) })
		}
		return
	}
	fs := c.fs
	done = c.traceIOSpan("write", off, size, done)
	pieces := split(off, size, fs.Cfg.StripeUnit)
	var firstErr error
	barrier := sim.NewBarrier(fs.eng, len(pieces), func(sim.Time) {
		if firstErr == nil {
			if end := off + size; end > f.st.size {
				f.st.size = end
			}
		}
		if done != nil {
			done(firstErr)
		}
	})
	arrive := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		barrier.Arrive()
	}
	for _, p := range pieces {
		p := p
		// The client's link serializes its own pieces.
		c.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ClientNetBW), func(sim.Time) {
			fs.writePiece(c.id, f.st, p, arrive)
		})
	}
}

func (fs *FS) writePiece(clientID int, st *fileState, p subOp, done func(error)) {
	lockSpan := fs.Cfg.LockGranularity
	if lockSpan <= 0 {
		lockSpan = fs.Cfg.StripeUnit
	}
	key := stripeKey{file: st.id, unit: (p.unit*fs.Cfg.StripeUnit + p.offIn) / lockSpan}
	srv := fs.serverFor(st, p.unit)
	perform := func(release bool) {
		fs.eng.Schedule(fs.Cfg.RPCLatency, func() {
			// RPC arrival at a dead server: nothing answers, the client's
			// timeout fires, and any stripe lock it held sits out its lease.
			if srv.down {
				fs.failWrite(key, release, done)
				return
			}
			epoch := srv.epoch
			srv.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ServerNetBW), func(sim.Time) {
				if srv.epoch != epoch {
					// Crashed while the payload was in its NIC queue.
					fs.failWrite(key, release, done)
					return
				}
				srv.write(fs, st, p, func(err error) {
					if err != nil {
						fs.failWrite(key, release, done)
						return
					}
					if release {
						fs.release(key)
					}
					done(nil)
				})
			})
		})
	}
	if fs.Cfg.LockRevoke > 0 {
		fs.acquire(key, clientID, func() { perform(true) })
	} else {
		perform(false)
	}
}

// write performs the disk I/O for one piece at the server. done receives a
// non-nil error when the server crashes before the write is acknowledged
// (detected by epoch comparison at disk completion — the in-flight
// operation's ack died with the server).
func (s *server) write(fs *FS, st *fileState, p subOp, done func(error)) {
	key := stripeKey{file: st.id, unit: p.unit}
	diskOff, ok := s.extent[key]
	if !ok {
		diskOff = s.next
		s.next += fs.Cfg.StripeUnit
		s.extent[key] = diskOff
	}
	full := p.offIn == 0 && p.size == fs.Cfg.StripeUnit
	var svc sim.Time
	if !full && fs.Cfg.RMWPartialStripe && ok {
		// Partial overwrite of an existing unit: read it, modify, write it
		// back — two unit-sized disk ops.
		svc = s.dsk.Access(diskOff, fs.Cfg.StripeUnit) + s.dsk.Access(diskOff, fs.Cfg.StripeUnit)
		fs.cRMW.Inc()
		s.cRMW.Inc()
	} else {
		svc = s.dsk.Access(diskOff+p.offIn, p.size)
	}
	s.bytesWritten += p.size
	s.cOps.Inc()
	s.cBytesW.Add(p.size)
	epoch := s.epoch
	s.dq.Submit(svc, func(sim.Time) {
		if s.epoch != epoch {
			done(ErrServerDown)
			return
		}
		// Fresh bytes replace whatever rot had accumulated in the range.
		s.corr.Repair(diskOff+p.offIn, p.size, fs.eng.Now())
		done(nil)
	})
}

// Read reads [off, off+size) and calls done at completion. Reads skip the
// lock manager and RMW but follow the same network/disk path. Read
// ignores server failures; fault-aware callers use ReadErr.
func (c *Client) Read(f *File, off, size int64, done func()) {
	if done == nil {
		c.ReadErr(f, off, size, nil)
		return
	}
	c.ReadErr(f, off, size, func(error) { done() })
}

// ReadErr is Read with failure reporting. A piece whose home server is
// down is reconstructed from parity by a surviving neighbour at degraded
// cost; done receives ErrServerDown only when no server can serve it.
func (c *Client) ReadErr(f *File, off, size int64, done func(error)) {
	if size <= 0 {
		if done != nil {
			c.fs.eng.Schedule(0, func() { done(nil) })
		}
		return
	}
	fs := c.fs
	done = c.traceIOSpan("read", off, size, done)
	pieces := split(off, size, fs.Cfg.StripeUnit)
	var firstErr error
	barrier := sim.NewBarrier(fs.eng, len(pieces), func(sim.Time) {
		if done != nil {
			done(firstErr)
		}
	})
	arrive := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		barrier.Arrive()
	}
	for _, p := range pieces {
		p := p
		srv := fs.serverFor(f.st, p.unit)
		fs.eng.Schedule(fs.Cfg.RPCLatency, func() {
			fs.readPiece(srv, f.st, p, func(err error) {
				if err != nil {
					arrive(err)
					return
				}
				c.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ClientNetBW), func(sim.Time) {
					arrive(nil)
				})
			})
		})
	}
}

// readPiece routes one read piece: to the home server when healthy (at
// penalty cost while it rebuilds), to a surviving neighbour's parity
// reconstruction when it is down, or to a timeout error when the whole
// array is gone.
func (fs *FS) readPiece(srv *server, st *fileState, p subOp, done func(error)) {
	if srv.down {
		alt := fs.survivor(srv)
		if alt == nil {
			fs.failOp(done)
			return
		}
		fs.faults.DegradedReads++
		fs.cDegraded.Inc()
		fs.readDegraded(alt, srv, st, p, done)
		return
	}
	if srv.rebuildUntil > fs.eng.Now() {
		fs.faults.DegradedReads++
		fs.cDegraded.Inc()
		srv.read(fs, st, p, fs.degradedPenalty(), done)
		return
	}
	srv.read(fs, st, p, 1, done)
}

// read serves one piece from the server's own disk; penalty > 1 models
// parity reconstruction during the post-recovery rebuild window. done
// receives a non-nil error when the server crashes mid-operation.
func (s *server) read(fs *FS, st *fileState, p subOp, penalty float64, done func(error)) {
	key := stripeKey{file: st.id, unit: p.unit}
	diskOff, ok := s.extent[key]
	if !ok {
		// Reading a hole: no disk work.
		s.dq.Submit(0, func(sim.Time) { done(nil) })
		return
	}
	svc := s.dsk.Access(diskOff+p.offIn, p.size)
	if penalty > 1 {
		svc = sim.Time(float64(svc) * penalty)
	}
	s.bytesRead += p.size
	s.cOps.Inc()
	s.cBytesR.Add(p.size)
	epoch := s.epoch
	s.dq.Submit(svc, func(sim.Time) {
		if s.epoch != epoch {
			fs.failOp(done)
			return
		}
		deliver := func() {
			s.nic.Submit(sim.Time(float64(p.size)/fs.Cfg.ServerNetBW), func(sim.Time) {
				if s.epoch != epoch {
					fs.failOp(done)
					return
				}
				done(nil)
			})
		}
		// The bytes are off the platter: this is where a checksum (or the
		// lack of one) decides whether latent corruption is caught.
		if s.corr.FaultIn(diskOff+p.offIn, p.size, fs.eng.Now()) {
			fs.readCorrupted(s, diskOff, deliver, done)
			return
		}
		deliver()
	})
}
