package pfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ecConfig is a small erasure-coded deployment sized so tests run in
// milliseconds of sim-time: 256 KiB group units rebuilt in 64 KiB chunks.
func ecConfig(servers, k, m int) Config {
	c := PanFSLike(servers)
	c.FailTimeout = sim.Time(10e-3)
	c.Redundancy = Redundancy{K: k, M: m, UnitBytes: 256 << 10, ChunkBytes: 64 << 10}
	return c
}

func TestRedundancyValidate(t *testing.T) {
	bad := []Redundancy{
		{K: 1},                          // M = 0 while enabled
		{M: 2},                          // K = 0 while enabled
		{K: 4, M: 2, Declustering: 1.5}, // ratio out of range
		{K: 4, M: 2, Throttle: -1},
		{K: 4, M: 2, UnitBytes: -1},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an unusable config", r)
		}
	}
	if err := (Redundancy{K: 8, M: 3, Declustering: 0.5}).Validate(); err != nil {
		t.Fatalf("valid redundancy rejected: %v", err)
	}
	// The deployment must fit a group plus a rebuild spare.
	cfg := ecConfig(6, 4, 2)
	if err := cfg.Validate(); err == nil {
		t.Fatal("6 servers accepted for 4+2 groups with no spare")
	}
	if err := ecConfig(7, 4, 2).Validate(); err != nil {
		t.Fatalf("7 servers rejected for 4+2: %v", err)
	}
}

func TestRedundancyZeroValueInert(t *testing.T) {
	// The zero Redundancy keeps the legacy parity-neighbour model: no
	// group state, no rebuild accounting, and the crash path untouched.
	eng := sim.NewEngine()
	fs := New(eng, faultConfig(4))
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), 0, sim.Time(10e-3)))
	cl := fs.NewClient(0)
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 1<<20, func(error) {})
	})
	eng.Run()
	if fs.RedundancyGroups() != 0 {
		t.Fatalf("zero-value redundancy built %d groups", fs.RedundancyGroups())
	}
	if st := fs.RebuildStats(); st != (RebuildStats{}) {
		t.Fatalf("zero-value redundancy accumulated rebuild stats %+v", st)
	}
	if ls := fs.LossStats(); ls != (LossStats{}) {
		t.Fatalf("zero-value redundancy accumulated loss stats %+v", ls)
	}
}

func TestECWriteUpdatesRedundancyFragments(t *testing.T) {
	// A data write must fan fragment updates to the group's m redundancy
	// members before acknowledging.
	eng := sim.NewEngine()
	fs := New(eng, ecConfig(12, 4, 2))
	cl := fs.NewClient(0)
	var wrote bool
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 64<<10, func(err error) {
			if err != nil {
				t.Errorf("write failed: %v", err)
			}
			wrote = true
		})
	})
	eng.Run()
	if !wrote {
		t.Fatal("write never completed")
	}
	gid, slot := fs.red.groupOf(0, 0)
	g := fs.red.groups[gid]
	home := fs.servers[g.members[slot]]
	if home.bytesWritten != 64<<10 {
		t.Fatalf("home member wrote %d bytes, want %d", home.bytesWritten, 64<<10)
	}
	frags := 0
	for i := fs.red.cfg.K; i < len(g.members); i++ {
		if fs.servers[g.members[i]].bytesWritten > 0 {
			frags++
		}
	}
	if frags != fs.red.cfg.M {
		t.Fatalf("%d of %d redundancy members saw fragment writes", frags, fs.red.cfg.M)
	}
}

func TestECDegradedReadReconstructsFromKSurvivors(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ecConfig(12, 4, 2)
	// Big units keep the rebuild running while the degraded read lands —
	// once a spare takes over, reads stop being degraded.
	cfg.Redundancy.UnitBytes = 64 << 20
	cfg.Redundancy.ChunkBytes = 1 << 20
	fs := New(eng, cfg)
	// Home member of file 0, unit 0 crashes after the write settles.
	gid, slot := fs.red.groupOf(0, 0)
	home := int(fs.red.groups[gid].members[slot])
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(home), sim.Time(1), 0))
	cl := fs.NewClient(0)
	var readErr error
	var read bool
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 64<<10, func(error) {})
		eng.Schedule(sim.Time(1.0001), func() {
			cl.ReadErr(f, 0, 64<<10, func(err error) { readErr = err; read = true })
		})
	})
	eng.Run()
	if !read || readErr != nil {
		t.Fatalf("degraded read: done=%v err=%v", read, readErr)
	}
	if fs.FaultStats().DegradedReads == 0 {
		t.Fatal("reconstruction not counted as a degraded read")
	}
	// The decode touched exactly k surviving members' disks.
	readers := 0
	for _, idx := range fs.red.groups[gid].members {
		if int(idx) != home && fs.servers[idx].bytesRead > 0 {
			readers++
		}
	}
	if readers < fs.red.cfg.K {
		t.Fatalf("only %d group members served the reconstruction, want >= k=%d",
			readers, fs.red.cfg.K)
	}
}

func TestOverlappingFailuresBeyondMAreTypedLossEvents(t *testing.T) {
	// m=1: two overlapping member failures in one group exceed the
	// redundancy. Reads must fail with ErrDataLoss — counted and typed,
	// never a silent read, never a panic.
	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	eng.Instrument(reg, obs.NewTracer())
	fs := New(eng, ecConfig(12, 4, 1))
	gid, slot := fs.red.groupOf(0, 0)
	members := fs.red.groups[gid].members
	a := int(members[slot])
	b := int(members[(slot+1)%len(members)])
	fs.InjectFaults(sim.NewFaultPlan().
		Add(OSSTarget(a), sim.Time(1), 0).
		Add(OSSTarget(b), sim.Time(1), 0))
	cl := fs.NewClient(0)
	var readErr error
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 64<<10, func(error) {})
		eng.Schedule(sim.Time(2), func() {
			cl.ReadErr(f, 0, 64<<10, func(err error) { readErr = err })
		})
	})
	eng.Run()
	if !errors.Is(readErr, ErrDataLoss) {
		t.Fatalf("read of a lost group returned %v, want ErrDataLoss", readErr)
	}
	ls := fs.LossStats()
	if ls.Events < 1 || ls.Groups < 1 || ls.Reads != 1 {
		t.Fatalf("loss accounting %+v, want >=1 events, >=1 groups, exactly 1 read", ls)
	}
	wantBytes := ls.Groups * int64(fs.red.cfg.K) * fs.red.cfg.unitBytes()
	if ls.Bytes != wantBytes {
		t.Fatalf("loss bytes %d, want %d (k * unit per lost group)", ls.Bytes, wantBytes)
	}
	s := reg.Snapshot()
	if s.Counters["pfs.loss.reads"] != 1 {
		t.Fatalf("pfs.loss.reads = %d, want 1", s.Counters["pfs.loss.reads"])
	}
	if int64(s.Counters["pfs.loss.events"]) != ls.Events {
		t.Fatalf("pfs.loss.events = %d, want %d", s.Counters["pfs.loss.events"], ls.Events)
	}
	if int64(s.Counters["pfs.loss.groups"]) != ls.Groups {
		t.Fatalf("pfs.loss.groups = %d, want %d", s.Counters["pfs.loss.groups"], ls.Groups)
	}
}

func TestCrashTriggersDeclusteredRebuild(t *testing.T) {
	// A permanent crash rebuilds every group the dead server belonged to,
	// reading from partners spread across the population and re-creating
	// the shares on spares.
	eng := sim.NewEngine()
	fs := New(eng, ecConfig(16, 4, 2))
	dead := 3
	affected := len(fs.red.byServer[dead])
	if affected == 0 {
		t.Fatal("server 3 belongs to no groups — group map broken")
	}
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(dead), 0, 0))
	eng.Run()
	st := fs.RebuildStats()
	if st.Started != 1 || st.Completed != 1 || st.Aborted != 0 {
		t.Fatalf("rebuild lifecycle %+v, want exactly one completed", st)
	}
	if st.GroupsRebuilt != int64(affected) {
		t.Fatalf("rebuilt %d groups, want %d", st.GroupsRebuilt, affected)
	}
	if want := int64(affected) * fs.red.cfg.unitBytes(); st.Bytes != want {
		t.Fatalf("rebuilt %d bytes, want %d", st.Bytes, want)
	}
	if st.MaxDuration <= 0 || st.Busy <= 0 {
		t.Fatalf("rebuild consumed no sim-time: %+v", st)
	}
	// The dead server serves no groups anymore; spares took its slots.
	if n := len(fs.red.byServer[dead]); n != 0 {
		t.Fatalf("dead server still mapped to %d groups after rebuild", n)
	}
	// Rebuild reads fanned out across many partners, not one neighbour.
	partners := 0
	for i, s := range fs.servers {
		if i != dead && s.bytesRead > 0 {
			partners++
		}
	}
	if partners < fs.red.cfg.K {
		t.Fatalf("rebuild read from only %d partners", partners)
	}
}

func TestRecoveryCancelsRebuild(t *testing.T) {
	// Slow units (64 MiB) make the rebuild long; the server recovers
	// first, so the storm stands down and the groups regain their member.
	eng := sim.NewEngine()
	cfg := ecConfig(12, 4, 2)
	cfg.Redundancy.UnitBytes = 64 << 20
	cfg.Redundancy.ChunkBytes = 1 << 20
	fs := New(eng, cfg)
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), 0, sim.Time(50e-3)))
	eng.Run()
	st := fs.RebuildStats()
	if st.Started != 1 || st.Aborted != 1 || st.Completed != 0 {
		t.Fatalf("rebuild lifecycle %+v, want one aborted", st)
	}
	for gi := range fs.red.groups {
		if fs.red.groups[gi].failed != 0 {
			t.Fatalf("group %d still has failed=%d after recovery", gi, fs.red.groups[gi].failed)
		}
	}
}

func TestAbandonedRebuildRecoveryRestoresFailedCounts(t *testing.T) {
	// Crash 4 of 7 servers at once: every 4+2 group loses at least three
	// members, so every rebuild chain must abandon (fewer than k live
	// members, no live spare). When the servers recover, the abandoned
	// groups' data is back, so every failed count must return to zero —
	// a leak here makes healthy groups report ErrDataLoss forever.
	eng := sim.NewEngine()
	fs := New(eng, ecConfig(7, 4, 2))
	plan := sim.NewFaultPlan()
	for i := 0; i < 4; i++ {
		plan.Add(OSSTarget(i), 0, sim.Time(1))
	}
	fs.InjectFaults(plan)
	eng.Run()
	if st := fs.RebuildStats(); st.AbandonedGroups == 0 {
		t.Fatalf("no rebuild chain abandoned, scenario lost its teeth: %+v", st)
	}
	for gi := range fs.red.groups {
		if f := fs.red.groups[gi].failed; f != 0 {
			t.Fatalf("group %d failed=%d after full recovery, want 0", gi, f)
		}
	}
	if n := len(fs.red.incidents); n != 0 {
		t.Fatalf("%d incidents still registered after full recovery", n)
	}
}

func TestConcurrentGroupRebuildsPickDistinctSpares(t *testing.T) {
	// Two members of one group crash at the same instant — two rebuild
	// chains race for spares. Ring-adjacent dead members make both walks
	// start from the same position, so without spare reservation both
	// chains claim the same server for different slots.
	eng := sim.NewEngine()
	fs := New(eng, ecConfig(16, 4, 2))
	n := len(fs.servers)
	gid, a, b := -1, -1, -1
	for gi := range fs.red.groups {
		g := &fs.red.groups[gi]
		for _, x := range g.members {
			if g.has((x + 1) % int32(n)) {
				gid, a, b = gi, int(x), int((x+1)%int32(n))
				break
			}
		}
		if gid >= 0 {
			break
		}
	}
	if gid < 0 {
		t.Fatal("no group with ring-adjacent members; pick a bigger config")
	}
	fs.InjectFaults(sim.NewFaultPlan().
		Add(OSSTarget(a), 0, 0).
		Add(OSSTarget(b), 0, 0))
	eng.Run()
	seen := make(map[int32]bool)
	for _, m := range fs.red.groups[gid].members {
		if seen[m] {
			t.Fatalf("group %d holds server %d in two slots: %v", gid, m, fs.red.groups[gid].members)
		}
		seen[m] = true
		if fs.servers[m].down {
			t.Fatalf("group %d member %d still down after rebuild", gid, m)
		}
	}
	for si, gids := range fs.red.byServer {
		dup := make(map[int32]bool)
		for _, g := range gids {
			if dup[g] {
				t.Fatalf("byServer[%d] lists group %d twice", si, g)
			}
			dup[g] = true
		}
	}
	for gi := range fs.red.groups {
		if r := fs.red.groups[gi].reserved; len(r) != 0 {
			t.Fatalf("group %d leaked spare reservations %v", gi, r)
		}
	}
}

func TestCrashOfGrouplessServerCountsNoRebuild(t *testing.T) {
	// One group per server over 32 servers leaves 5 groups × 6 slots =
	// 30 memberships, so some servers belong to no group; crashing one
	// must not count a rebuild Started/Completed.
	eng := sim.NewEngine()
	cfg := ecConfig(32, 4, 2)
	cfg.Redundancy.GroupsPerServer = 1
	fs := New(eng, cfg)
	idle := -1
	for i := range fs.servers {
		if len(fs.red.byServer[i]) == 0 {
			idle = i
			break
		}
	}
	if idle < 0 {
		t.Fatal("every server belongs to a group; shrink GroupsPerServer")
	}
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(idle), 0, 0))
	eng.Run()
	if st := fs.RebuildStats(); st != (RebuildStats{}) {
		t.Fatalf("groupless crash accumulated rebuild stats %+v", st)
	}
	if n := len(fs.red.incidents); n != 0 {
		t.Fatalf("groupless crash left %d incidents registered", n)
	}
}

func TestScrubJoinsInFlightRepairWithoutDoubleCounting(t *testing.T) {
	// Two checksummed readers hit the same rotten unit back to back: the
	// second must join the first's in-flight reconstruction instead of
	// double-repairing, so pfs.integrity.* count one detection and one
	// repair. A scrub pass crossing the repaired unit afterwards finds it
	// clean and adds nothing.
	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	eng.Instrument(reg, obs.NewTracer())
	cfg := ecConfig(12, 4, 2)
	cfg.Checksums = true
	fs := New(eng, cfg)
	cl := fs.NewClient(0)
	var errs []error
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 64<<10, func(error) {})
		eng.Schedule(sim.Time(1), func() {
			if n := fs.CorruptExtent("/f", 0, 64<<10); n != 1 {
				t.Errorf("corrupted %d pieces, want 1", n)
			}
			for i := 0; i < 2; i++ {
				cl.ReadErr(f, 0, 64<<10, func(err error) { errs = append(errs, err) })
			}
		})
		eng.Schedule(sim.Time(2), func() { fs.Scrub(nil) })
	})
	eng.Run()
	if len(errs) != 2 || errs[0] != nil || errs[1] != nil {
		t.Fatalf("repaired reads returned %v", errs)
	}
	st := fs.IntegrityStats()
	if st.Detected != 1 || st.Repaired != 1 {
		t.Fatalf("detected=%d repaired=%d, want exactly 1 each (no double repair)",
			st.Detected, st.Repaired)
	}
	s := reg.Snapshot()
	if s.Counters["pfs.integrity.detected"] != 1 || s.Counters["pfs.integrity.repaired"] != 1 {
		t.Fatalf("integrity counters detected=%d repaired=%d, want 1 each",
			s.Counters["pfs.integrity.detected"], s.Counters["pfs.integrity.repaired"])
	}
	if st.ScrubbedUnits == 0 {
		t.Fatal("scrub pass never swept the extents")
	}
}

func TestScrubDuringRebuildStormStaysConsistent(t *testing.T) {
	// A scrub sweeping while a rebuild storm is re-creating shares must
	// neither double-repair nor wedge either chain.
	eng := sim.NewEngine()
	cfg := ecConfig(12, 4, 2)
	cfg.Checksums = true
	fs := New(eng, cfg)
	cl := fs.NewClient(0)
	var scrubbed bool
	cl.Create("/f", func(f *File) {
		cl.WriteErr(f, 0, 1<<20, func(error) {})
	})
	fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(2), sim.Time(1), 0))
	eng.Schedule(sim.Time(1.0001), func() {
		fs.Scrub(func(ScrubReport) { scrubbed = true })
	})
	eng.Run()
	if !scrubbed {
		t.Fatal("scrub pass never completed")
	}
	if st := fs.RebuildStats(); st.Completed != 1 {
		t.Fatalf("rebuild did not complete under concurrent scrub: %+v", st)
	}
	if st := fs.IntegrityStats(); st.Detected != 0 || st.Repaired != 0 {
		t.Fatalf("clean run detected/repaired corruption: %+v", st)
	}
}

func TestECRunDeterministicSnapshot(t *testing.T) {
	run := func() string {
		eng := sim.NewEngine()
		reg := obs.NewRegistry()
		eng.Instrument(reg, obs.NewTracer())
		fs := New(eng, ecConfig(12, 4, 2))
		fs.InjectFaults(sim.NewFaultPlan().
			Add(OSSTarget(1), sim.Time(0.5), 0).
			Add(OSSTarget(7), sim.Time(0.75), sim.Time(2)))
		cl := fs.NewClient(0)
		cl.Create("/f", func(f *File) {
			cl.WriteErr(f, 0, 4<<20, func(error) {
				cl.ReadErr(f, 0, 4<<20, func(error) {})
			})
			eng.Schedule(sim.Time(1), func() {
				cl.ReadErr(f, 0, 4<<20, func(error) {})
			})
		})
		eng.Run()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("same-seed erasure-coded faulted runs diverged")
	}
}

func BenchmarkRebuildStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fs := New(eng, ecConfig(32, 8, 2))
		fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(0), 0, 0))
		eng.Run()
		if fs.RebuildStats().Completed != 1 {
			b.Fatal("rebuild did not complete")
		}
	}
}

func BenchmarkRebuildGroupMap(b *testing.B) {
	cfg := ecConfig(10240, 8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := newRedState(cfg)
		if len(red.groups) == 0 {
			b.Fatal("no groups")
		}
	}
}
