package pfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/sim"
)

// intConfig is testConfig with read-path checksum verification on.
func intConfig(servers int) Config {
	c := testConfig(servers)
	c.Checksums = true
	return c
}

// writeUnits creates /f and writes n full stripe units synchronously,
// returning the handle. Unit u of file 0 lands on server u%servers at
// disk offset 0 of that server (first extent allocated there).
func writeUnits(t *testing.T, eng *sim.Engine, fs *FS, n int) *File {
	t.Helper()
	cl := fs.NewClient(0)
	var f *File
	cl.Create("/f", func(h *File) {
		f = h
		cl.Write(h, 0, int64(n)*fs.Cfg.StripeUnit, nil)
	})
	eng.Run()
	if f == nil || f.Size() != int64(n)*fs.Cfg.StripeUnit {
		t.Fatalf("setup write failed: %+v", f)
	}
	return f
}

func TestChecksumReadDetectsAndRepairs(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, intConfig(2))
	f := writeUnits(t, eng, fs, 1) // unit 0 on server 0, disk offset 0
	if err := fs.InjectCorruption([][]disk.CorruptionEvent{
		{{Offset: 0, Length: 512, At: 1, Mode: disk.MediaError}},
	}); err != nil {
		t.Fatal(err)
	}
	cl := fs.NewClient(1)
	gotErr := errors.New("read never completed")
	eng.At(2, func() {
		cl.ReadErr(f, 0, fs.Cfg.StripeUnit, func(err error) { gotErr = err })
	})
	eng.Run()
	if gotErr != nil {
		t.Fatalf("repaired read errored: %v", gotErr)
	}
	st := fs.IntegrityStats()
	if st.Detected != 1 || st.Repaired != 1 || st.SilentReads != 0 || st.Unrecoverable != 0 {
		t.Fatalf("stats = %+v, want one detected+repaired", st)
	}
	if fs.UnrepairedCorruption() != 0 {
		t.Fatal("corruption survived the repair")
	}
	// The repaired unit reads clean from now on.
	eng.At(eng.Now()+1, func() {
		cl.ReadErr(f, 0, fs.Cfg.StripeUnit, func(err error) { gotErr = err })
	})
	eng.Run()
	if gotErr != nil || fs.IntegrityStats().Detected != 1 {
		t.Fatalf("re-read after repair: err=%v stats=%+v", gotErr, fs.IntegrityStats())
	}
}

func TestChecksumsOffReadsCorruptBytesSilently(t *testing.T) {
	eng := sim.NewEngine()
	cfg := intConfig(2)
	cfg.Checksums = false
	fs := New(eng, cfg)
	f := writeUnits(t, eng, fs, 1)
	if err := fs.InjectCorruption([][]disk.CorruptionEvent{
		{{Offset: 0, Length: 512, At: 1, Mode: disk.TornWrite}},
	}); err != nil {
		t.Fatal(err)
	}
	cl := fs.NewClient(1)
	gotErr := errors.New("read never completed")
	eng.At(2, func() {
		cl.ReadErr(f, 0, fs.Cfg.StripeUnit, func(err error) { gotErr = err })
	})
	eng.Run()
	if gotErr != nil {
		t.Fatalf("silent read errored: %v", gotErr)
	}
	st := fs.IntegrityStats()
	if st.SilentReads != 1 || st.Detected != 0 || st.Repaired != 0 {
		t.Fatalf("stats = %+v, want one silent read", st)
	}
	if fs.UnrepairedCorruption() != 1 {
		t.Fatal("silent read repaired the corruption")
	}
}

func TestChecksumMismatchWithNoSurvivorIsUnrecoverable(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, intConfig(2))
	f := writeUnits(t, eng, fs, 1)
	if err := fs.InjectCorruption([][]disk.CorruptionEvent{
		{{Offset: 0, Length: 512, At: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	// The only other server is permanently down before the read.
	if err := fs.InjectFaults(sim.NewFaultPlan().Add(OSSTarget(1), sim.Time(1.5), 0)); err != nil {
		t.Fatal(err)
	}
	cl := fs.NewClient(1)
	gotErr := errors.New("read never completed")
	eng.At(2, func() {
		cl.ReadErr(f, 0, fs.Cfg.StripeUnit, func(err error) { gotErr = err })
	})
	eng.Run()
	if !errors.Is(gotErr, ErrCorruptData) {
		t.Fatalf("err = %v, want ErrCorruptData", gotErr)
	}
	st := fs.IntegrityStats()
	if st.Detected != 1 || st.Unrecoverable != 1 || st.Repaired != 0 {
		t.Fatalf("stats = %+v, want one unrecoverable", st)
	}
}

func TestOverwriteClearsLatentCorruption(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, intConfig(2))
	f := writeUnits(t, eng, fs, 1)
	if err := fs.InjectCorruption([][]disk.CorruptionEvent{
		{{Offset: 0, Length: 512, At: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	cl := fs.NewClient(0)
	eng.At(2, func() { cl.Write(f, 0, fs.Cfg.StripeUnit, nil) })
	eng.Run()
	if fs.UnrepairedCorruption() != 0 {
		t.Fatal("full overwrite left the corruption live")
	}
	if st := fs.IntegrityStats(); st.Detected != 0 {
		t.Fatalf("overwrite path counted a detection: %+v", st)
	}
}

func TestInjectCorruptionRejectsTooManySchedules(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, intConfig(2))
	err := fs.InjectCorruption(make([][]disk.CorruptionEvent, 3))
	if err == nil {
		t.Fatal("3 schedules for 2 servers accepted")
	}
}

// TestScrubRepairRestoresCleanContents is the property test: for several
// random corruption patterns, one scrub pass after all events arrive
// leaves every stored stripe unit byte-identical to its written contents
// (no live corruption anywhere), and subsequent reads verify clean.
func TestScrubRepairRestoresCleanContents(t *testing.T) {
	const units = 8
	for seed := int64(1); seed <= 5; seed++ {
		eng := sim.NewEngine()
		fs := New(eng, intConfig(4))
		f := writeUnits(t, eng, fs, units)
		// Random events confined to allocated disk space: each server
		// holds units/4 extents starting at disk offset 0.
		r := rand.New(rand.NewSource(seed))
		events := make([][]disk.CorruptionEvent, 4)
		allocated := int64(units/4) * fs.Cfg.StripeUnit
		total := 0
		for s := range events {
			for k := 0; k < 1+r.Intn(4); k++ {
				off := (r.Int63n(allocated / 512)) * 512
				length := int64(512 * (1 + r.Intn(4)))
				if off+length > allocated {
					length = allocated - off
				}
				events[s] = append(events[s], disk.CorruptionEvent{
					Offset: off, Length: length, At: sim.Time(1 + r.Float64()*5),
				})
				total++
			}
		}
		if err := fs.InjectCorruption(events); err != nil {
			t.Fatal(err)
		}
		var rep ScrubReport
		eng.At(10, func() { fs.Scrub(func(r ScrubReport) { rep = r }) })
		eng.Run()
		if fs.UnrepairedCorruption() != 0 {
			t.Fatalf("seed %d: %d events survived the scrub", seed, fs.UnrepairedCorruption())
		}
		if rep.Units != units || rep.Unrecoverable != 0 {
			t.Fatalf("seed %d: report = %+v, want %d units all repairable", seed, rep, units)
		}
		if rep.Detected == 0 || rep.Detected != rep.Repaired {
			t.Fatalf("seed %d: report = %+v, want detected==repaired>0", seed, rep)
		}
		// Every unit now reads back verified-clean.
		cl := fs.NewClient(1)
		var readErr error
		eng.At(eng.Now()+1, func() {
			cl.ReadErr(f, 0, int64(units)*fs.Cfg.StripeUnit, func(err error) { readErr = err })
		})
		before := fs.IntegrityStats()
		eng.Run()
		after := fs.IntegrityStats()
		if readErr != nil {
			t.Fatalf("seed %d: post-scrub read errored: %v", seed, readErr)
		}
		if after.Detected != before.Detected || after.SilentReads != 0 {
			t.Fatalf("seed %d: post-scrub read saw corruption: %+v", seed, after)
		}
	}
}

// TestNoCorruptionReachesReadsUnflagged is the acceptance cross-check:
// under a drawn LSE schedule with checksums on, every read either
// returns verified (possibly repaired) data or a typed error — and the
// pfs.integrity.* counters account for every injected event that a read
// or scrub encountered.
func TestNoCorruptionReachesReadsUnflagged(t *testing.T) {
	const units = 16
	spec := failure.LSESpec{
		Disks:         4,
		CapacityBytes: int64(units/4) * PanFSLike(4).StripeUnit,
		MTBC:          2,
		Shape:         1.0,
		TornFraction:  0.25,
		Horizon:       10,
	}
	events := failure.DrawLSE(spec, 99)
	injected := 0
	for _, evs := range events {
		injected += len(evs)
	}
	if injected == 0 {
		t.Fatal("draw produced no corruption")
	}

	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	eng.Instrument(reg, nil)
	fs := New(eng, intConfig(4))
	f := writeUnits(t, eng, fs, units)
	if err := fs.InjectCorruption(events); err != nil {
		t.Fatal(err)
	}
	// Read the whole file repeatedly across the horizon, then scrub, then
	// read once more after every event has arrived.
	cl := fs.NewClient(1)
	reads, flagged := 0, 0
	readAll := func() {
		cl.ReadErr(f, 0, f.Size(), func(err error) {
			reads++
			if err != nil {
				if !errors.Is(err, ErrCorruptData) {
					t.Errorf("read errored with %v, want nil or ErrCorruptData", err)
				}
				flagged++
			}
		})
	}
	for _, at := range []sim.Time{3, 6, 9} {
		eng.At(at, readAll)
	}
	eng.At(11, func() { fs.Scrub(nil) })
	eng.At(15, readAll)
	eng.Run()

	if reads != 4 {
		t.Fatalf("completed %d reads, want 4", reads)
	}
	st := fs.IntegrityStats()
	if st.Injected != int64(injected) {
		t.Fatalf("Injected = %d, want %d", st.Injected, injected)
	}
	// With checksums on, nothing is silent; every detection was either
	// repaired or surfaced as a typed error.
	if st.SilentReads != 0 {
		t.Fatalf("%d corrupt reads went unflagged", st.SilentReads)
	}
	if st.Detected == 0 || st.Detected != st.Repaired+st.Unrecoverable {
		t.Fatalf("stats = %+v, want detected == repaired+unrecoverable > 0", st)
	}
	if st.Unrecoverable > 0 && flagged == 0 {
		t.Fatal("unrecoverable detections but no read was flagged")
	}
	// All healthy servers: nothing should actually be unrecoverable, so
	// after the final repairs every arrived event is gone.
	if st.Unrecoverable != 0 {
		t.Fatalf("unrecoverable = %d with all servers healthy", st.Unrecoverable)
	}
	if fs.UnrepairedCorruption() != 0 {
		t.Fatalf("%d events never repaired", fs.UnrepairedCorruption())
	}
	// The registry mirrors the struct counters exactly.
	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"pfs.integrity.injected":       st.Injected,
		"pfs.integrity.detected":       st.Detected,
		"pfs.integrity.repaired":       st.Repaired,
		"pfs.integrity.unrecoverable":  st.Unrecoverable,
		"pfs.integrity.silent_reads":   st.SilentReads,
		"pfs.integrity.scrubbed_units": st.ScrubbedUnits,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestIntegrityRunDeterministicPerSeed(t *testing.T) {
	run := func() *bytes.Buffer {
		spec := failure.LSESpec{
			Disks:         2,
			CapacityBytes: 4 * PanFSLike(2).StripeUnit,
			MTBC:          1,
			Shape:         0.8,
			TornFraction:  0.5,
			Horizon:       8,
		}
		eng := sim.NewEngine()
		reg := obs.NewRegistry()
		eng.Instrument(reg, nil)
		fs := New(eng, intConfig(2))
		f := writeUnits(t, eng, fs, 8)
		if err := fs.InjectCorruption(failure.DrawLSE(spec, 7)); err != nil {
			t.Fatal(err)
		}
		cl := fs.NewClient(1)
		eng.At(4, func() { fs.Scrub(nil) })
		eng.At(9, func() { cl.ReadErr(f, 0, f.Size(), func(error) {}) })
		eng.Run()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := run(), run()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed integrity runs diverged")
	}
}
