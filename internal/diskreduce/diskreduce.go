// Package diskreduce implements DiskReduce (Fan, Tantisiriroj, Xiao &
// Gibson, PDSW'09; a PDSI exploration into data-intensive scalable
// computing storage): Hadoop-style triplication is wonderful for write
// performance and task locality but costs 200% capacity overhead, so
// DiskReduce asynchronously converts cold replicated blocks into RAID
// groups (erasure-coded stripes), keeping one full copy plus parity.
// Capacity overhead falls from 3.0x toward ~1.3x while recently-written
// (hot) data keeps its replicas — and the conversion delay is the knob
// trading locality for capacity.
package diskreduce

import (
	"fmt"
)

// Scheme is a redundancy layout for one block group.
type Scheme int

// Redundancy schemes.
const (
	// Triplicated is HDFS-style: 3 full copies.
	Triplicated Scheme = iota
	// RAID5Group keeps one copy plus one parity block per group.
	RAID5Group
	// RAID6Group keeps one copy plus two parity blocks per group.
	RAID6Group
)

func (s Scheme) String() string {
	switch s {
	case Triplicated:
		return "3-replication"
	case RAID5Group:
		return "raid5-group"
	case RAID6Group:
		return "raid6-group"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Overhead returns stored bytes per user byte for a group of size g.
func (s Scheme) Overhead(g int) float64 {
	switch s {
	case Triplicated:
		return 3
	case RAID5Group:
		return 1 + 1/float64(g)
	case RAID6Group:
		return 1 + 2/float64(g)
	default:
		return 0
	}
}

// ToleratesFailures returns how many simultaneous block losses a group
// survives.
func (s Scheme) ToleratesFailures() int {
	switch s {
	case Triplicated, RAID6Group:
		return 2
	case RAID5Group:
		return 1
	default:
		return 0
	}
}

// Config describes the cluster's encoding policy.
type Config struct {
	// Target is the scheme cold blocks are encoded into.
	Target Scheme
	// GroupSize is the number of data blocks per parity group.
	GroupSize int
	// EncodeAfter is the age (in arbitrary time units) after which a
	// block is considered cold and eligible for encoding.
	EncodeAfter float64
}

// DefaultConfig mirrors the paper's RAID-6 groups of 8.
func DefaultConfig() Config {
	return Config{Target: RAID6Group, GroupSize: 8, EncodeAfter: 60}
}

// Block is one stored block's bookkeeping.
type Block struct {
	ID      int64
	Written float64 // creation time
	Encoded bool
	queued  bool // already on the cold list
}

// Store tracks the cluster's blocks and drives background encoding.
type Store struct {
	cfg    Config
	blocks []Block
	// pendingCold holds indexes of cold-but-unencoded blocks awaiting a
	// full group.
	pendingCold []int

	UserBlocks    int64
	ReplicaBlocks int64 // physical blocks attributable to triplication
	EncodedGroups int64
}

// NewStore creates an empty store.
func NewStore(cfg Config) *Store {
	if cfg.GroupSize < 2 || cfg.EncodeAfter < 0 {
		panic(fmt.Sprintf("diskreduce: invalid config %+v", cfg))
	}
	return &Store{cfg: cfg}
}

// Write ingests one block at the given time; new blocks are triplicated.
func (st *Store) Write(id int64, now float64) {
	st.blocks = append(st.blocks, Block{ID: id, Written: now})
	st.UserBlocks++
	st.ReplicaBlocks += 3
}

// EncodeTick runs the background encoder at the given time: cold blocks
// are gathered into full groups and converted to the target scheme.
// Returns the number of groups encoded this tick.
func (st *Store) EncodeTick(now float64) int {
	for i := range st.blocks {
		b := &st.blocks[i]
		if !b.Encoded && !b.queued && now-b.Written >= st.cfg.EncodeAfter {
			b.queued = true
			st.pendingCold = append(st.pendingCold, i)
		}
	}
	groups := 0
	for len(st.pendingCold) >= st.cfg.GroupSize {
		group := st.pendingCold[:st.cfg.GroupSize]
		st.pendingCold = st.pendingCold[st.cfg.GroupSize:]
		for _, idx := range group {
			st.blocks[idx].Encoded = true
		}
		st.EncodedGroups++
		groups++
	}
	return groups
}

// PhysicalBlocks returns current physical block usage.
func (st *Store) PhysicalBlocks() float64 {
	var encoded int64
	for i := range st.blocks {
		if st.blocks[i].Encoded {
			encoded++
		}
	}
	replicated := st.UserBlocks - encoded
	parityPerBlock := st.cfg.Target.Overhead(st.cfg.GroupSize) - 1
	return float64(replicated)*3 + float64(encoded)*(1+parityPerBlock)
}

// CapacityOverhead is physical/user block ratio (3.0 fresh, →1.25-1.3 as
// encoding catches up with a group size of 8).
func (st *Store) CapacityOverhead() float64 {
	if st.UserBlocks == 0 {
		return 0
	}
	return st.PhysicalBlocks() / float64(st.UserBlocks)
}

// LocalityFraction is the share of blocks still holding 3 replicas — the
// proxy for Hadoop task-placement choices (each replica is a scheduling
// option).
func (st *Store) LocalityFraction() float64 {
	if st.UserBlocks == 0 {
		return 0
	}
	var replicated int64
	for i := range st.blocks {
		if !st.blocks[i].Encoded {
			replicated++
		}
	}
	return float64(replicated) / float64(st.UserBlocks)
}

// Simulate ingests writesPerTick blocks per tick for ticks ticks, running
// the encoder each tick, and returns the overhead trajectory.
func Simulate(cfg Config, writesPerTick, ticks int) []float64 {
	st := NewStore(cfg)
	var id int64
	out := make([]float64, 0, ticks)
	for t := 0; t < ticks; t++ {
		now := float64(t)
		for w := 0; w < writesPerTick; w++ {
			st.Write(id, now)
			id++
		}
		st.EncodeTick(now)
		out = append(out, st.CapacityOverhead())
	}
	return out
}

// AgeAccessCoverage computes, for a workload where the probability of
// reading a block decays with age (most DISC reads hit recent data —
// the observation that justifies encoding only cold blocks), the fraction
// of *reads* that still enjoy full replication when blocks older than
// encodeAfter are encoded. accessCDF(age) gives the cumulative fraction
// of reads to blocks at most that old.
func AgeAccessCoverage(encodeAfter float64, accessCDF func(float64) float64) float64 {
	return accessCDF(encodeAfter)
}
