package diskreduce

import (
	"math"
	"testing"
)

func TestSchemeStringsAndOverheads(t *testing.T) {
	if Triplicated.String() != "3-replication" ||
		RAID5Group.String() != "raid5-group" ||
		RAID6Group.String() != "raid6-group" {
		t.Fatal("scheme names wrong")
	}
	if Triplicated.Overhead(8) != 3 {
		t.Fatal("triplication overhead wrong")
	}
	if got := RAID6Group.Overhead(8); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("raid6 group-8 overhead = %v, want 1.25", got)
	}
	if got := RAID5Group.Overhead(4); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("raid5 group-4 overhead = %v, want 1.25", got)
	}
}

func TestFailureTolerancePreserved(t *testing.T) {
	// The paper pairs triplication with RAID-6 precisely because both
	// tolerate two losses.
	if RAID6Group.ToleratesFailures() != Triplicated.ToleratesFailures() {
		t.Fatal("RAID-6 must match triplication's double-failure tolerance")
	}
	if RAID5Group.ToleratesFailures() != 1 {
		t.Fatal("RAID-5 tolerates one failure")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewStore(Config{GroupSize: 1})
}

func TestFreshBlocksTriplicated(t *testing.T) {
	st := NewStore(DefaultConfig())
	for i := int64(0); i < 10; i++ {
		st.Write(i, 0)
	}
	if got := st.CapacityOverhead(); got != 3 {
		t.Fatalf("fresh overhead = %v, want 3", got)
	}
	if got := st.LocalityFraction(); got != 1 {
		t.Fatalf("fresh locality = %v, want 1", got)
	}
}

func TestEncodingReducesOverheadTowardRaid(t *testing.T) {
	cfg := DefaultConfig()
	st := NewStore(cfg)
	for i := int64(0); i < 80; i++ {
		st.Write(i, 0)
	}
	st.EncodeTick(cfg.EncodeAfter + 1)
	// All 80 blocks cold: 10 full groups of 8 encode.
	if st.EncodedGroups != 10 {
		t.Fatalf("encoded %d groups, want 10", st.EncodedGroups)
	}
	if got := st.CapacityOverhead(); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("encoded overhead = %v, want 1.25", got)
	}
	if got := st.LocalityFraction(); got != 0 {
		t.Fatalf("locality after full encoding = %v, want 0", got)
	}
}

func TestPartialGroupsWait(t *testing.T) {
	cfg := DefaultConfig()
	st := NewStore(cfg)
	for i := int64(0); i < 5; i++ { // fewer than a group
		st.Write(i, 0)
	}
	if n := st.EncodeTick(cfg.EncodeAfter + 1); n != 0 {
		t.Fatalf("encoded %d groups from a partial set, want 0", n)
	}
	if st.CapacityOverhead() != 3 {
		t.Fatal("partial group must stay replicated")
	}
}

func TestHotBlocksKeepReplicas(t *testing.T) {
	cfg := DefaultConfig()
	st := NewStore(cfg)
	for i := int64(0); i < 8; i++ {
		st.Write(i, 0) // cold by t=100
	}
	for i := int64(8); i < 16; i++ {
		st.Write(i, 90) // still hot at t=100
	}
	st.EncodeTick(100)
	if st.EncodedGroups != 1 {
		t.Fatalf("groups = %d, want 1 (only the cold batch)", st.EncodedGroups)
	}
	if got := st.LocalityFraction(); got != 0.5 {
		t.Fatalf("locality = %v, want 0.5", got)
	}
}

func TestSteadyStateTrajectory(t *testing.T) {
	// Continuous ingest: overhead starts at 3 and settles well below 2 as
	// the encoder keeps pace, but never reaches the pure-RAID floor while
	// hot data exists.
	cfg := DefaultConfig()
	cfg.EncodeAfter = 10
	traj := Simulate(cfg, 100, 200)
	if traj[0] != 3 {
		t.Fatalf("initial overhead = %v, want 3", traj[0])
	}
	last := traj[len(traj)-1]
	if last > 1.5 {
		t.Fatalf("steady-state overhead = %v, want well below 2", last)
	}
	if last <= 1.25 {
		t.Fatalf("steady-state overhead = %v cannot beat the RAID floor with hot data", last)
	}
	// Monotone non-increasing after the first encode wave (fresh writes
	// perturb slightly; allow small wiggle).
	for i := int(cfg.EncodeAfter) + 2; i < len(traj); i++ {
		if traj[i] > traj[i-1]+0.02 {
			t.Fatalf("overhead rising at tick %d: %v -> %v", i, traj[i-1], traj[i])
		}
	}
}

func TestAgeAccessCoverage(t *testing.T) {
	// 90% of reads hit blocks younger than 60 time units: encoding after
	// 60 keeps replicas for 90% of reads.
	cdf := func(age float64) float64 {
		if age >= 60 {
			return 0.9 + 0.1*(1-math.Exp(-(age-60)/600))
		}
		return 0.9 * age / 60
	}
	if got := AgeAccessCoverage(60, cdf); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("coverage = %v, want 0.9", got)
	}
}

func TestDeterministic(t *testing.T) {
	a := Simulate(DefaultConfig(), 50, 100)
	b := Simulate(DefaultConfig(), 50, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic trajectory")
		}
	}
}
