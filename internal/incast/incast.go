// Package incast simulates TCP throughput collapse in cluster storage
// ("INCAST", Phanishayee et al. FAST'08) and the fine-grained
// retransmission-timer fix (Vasudevan et al. SIGCOMM'09) that PDSI
// demonstrated on PanFS and pushed into Linux: Figure 9 of the report.
//
// The scenario is a synchronized read: one client requests a data block
// striped over N servers and cannot proceed to the next block until every
// server's portion (the server request unit, SRU) arrives. All N
// responses converge on the client's single switch port, whose shallow
// output buffer overflows; a server that loses the tail of its SRU gets
// no duplicate ACKs (it has nothing more to send), so only a
// retransmission timeout recovers it — and with the conventional 200 ms
// minimum RTO the link sits idle for aeons on every round. Goodput
// collapses by an order of magnitude once N exceeds the buffer's
// capacity, and recovers when the minimum RTO is lowered to ~1 ms
// (with a little randomization to desynchronize retransmissions at very
// large N).
package incast

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Params configures one incast experiment.
type Params struct {
	Senders       int
	LinkBandwidth float64  // bottleneck (client port) bytes/second
	PacketSize    int64    // bytes per packet, headers included
	BufferPackets int      // switch output queue capacity in packets
	PropDelay     sim.Time // one-way propagation delay
	MinRTO        sim.Time // minimum retransmission timeout
	RTORandomize  bool     // add uniform jitter in [0, MinRTO/2) to timeouts
	SRUBytes      int64    // server request unit per sender per round
	Rounds        int
	Seed          int64
}

// DefaultParams models the paper's 1GbE testbed with a shallow-buffered
// commodity switch.
func DefaultParams(senders int) Params {
	return Params{
		Senders:       senders,
		LinkBandwidth: 1e9 / 8,
		PacketSize:    1500,
		BufferPackets: 64,
		PropDelay:     sim.Time(25e-6),
		MinRTO:        sim.Time(200e-3),
		SRUBytes:      256 << 10,
		Rounds:        4,
		Seed:          1,
	}
}

func (p Params) validate() error {
	switch {
	case p.Senders < 1:
		return fmt.Errorf("incast: Senders %d < 1", p.Senders)
	case p.LinkBandwidth <= 0 || p.PacketSize <= 0 || p.BufferPackets < 1:
		return fmt.Errorf("incast: bad link parameters")
	case p.SRUBytes < p.PacketSize:
		return fmt.Errorf("incast: SRU smaller than one packet")
	case p.Rounds < 1:
		return fmt.Errorf("incast: Rounds %d < 1", p.Rounds)
	}
	return nil
}

// Result reports one experiment.
type Result struct {
	Params      Params
	Elapsed     sim.Time
	GoodputBps  float64
	Timeouts    int
	Drops       int
	Retransmits int
}

const initialSsthresh = 12

// sender is one server's TCP state for the current round.
type sender struct {
	id          int
	total       int // packets in this SRU
	nextSeq     int // next new packet to send
	cumAcked    int // packets cumulatively acknowledged
	cwnd        float64
	ssthresh    float64
	dupAcks     int
	inflight    int
	timer       sim.EventID
	timerArmed  bool
	rtoBackoff  int
	done        bool
	recoverUpTo int // fast-recovery high-water mark
}

type experiment struct {
	p   Params
	eng *sim.Engine
	rng *rand.Rand

	// Bottleneck queue state: pending is the FIFO of packets occupying the
	// switch output queue; queueLen counts them plus the one in service.
	pending  []pendingPkt
	queueLen int
	linkBusy bool

	senders []*sender
	// received[i] marks packets that arrived from sender i this round.
	received [][]bool
	doneCnt  int
	round    int

	roundStart sim.Time

	res Result
}

// Run executes the experiment and returns aggregate goodput.
func Run(p Params) Result {
	return RunProbed(p, nil, nil)
}

// RunProbed is Run with a metrics registry and tracer attached (either
// may be nil). Rounds appear as spans on the "incast" category; drop,
// timeout, and retransmit totals accumulate as counters.
func RunProbed(p Params, reg *obs.Registry, tr *obs.Tracer) Result {
	if err := p.validate(); err != nil {
		panic(err)
	}
	e := &experiment{
		p:   p,
		eng: sim.NewEngine(),
		rng: rand.New(rand.NewSource(p.Seed)),
	}
	e.eng.Instrument(reg, tr)
	e.res.Params = p
	e.startRound()
	e.eng.Run()
	e.res.Elapsed = e.eng.Now()
	total := float64(p.Senders) * float64(p.SRUBytes) * float64(p.Rounds)
	if e.res.Elapsed > 0 {
		e.res.GoodputBps = total / float64(e.res.Elapsed)
	}
	reg.Counter("incast.timeouts").Add(int64(e.res.Timeouts))
	reg.Counter("incast.drops").Add(int64(e.res.Drops))
	reg.Counter("incast.retransmits").Add(int64(e.res.Retransmits))
	reg.Counter("incast.rounds").Add(int64(p.Rounds))
	return e.res
}

func (e *experiment) packetsPerSRU() int {
	n := int(e.p.SRUBytes / e.p.PacketSize)
	if e.p.SRUBytes%e.p.PacketSize != 0 {
		n++
	}
	return n
}

func (e *experiment) startRound() {
	e.senders = e.senders[:0]
	e.received = e.received[:0]
	e.doneCnt = 0
	e.roundStart = e.eng.Now()
	n := e.packetsPerSRU()
	for i := 0; i < e.p.Senders; i++ {
		s := &sender{id: i, total: n, cwnd: 2, ssthresh: initialSsthresh}
		e.senders = append(e.senders, s)
		e.received = append(e.received, make([]bool, n))
		// The client's request reaches each server after one propagation
		// delay; tiny per-server jitter avoids a perfectly synchronized
		// artificial tie-break cascade.
		jitter := sim.Time(e.rng.Float64() * 2e-6)
		e.eng.Schedule(e.p.PropDelay+jitter, func() { e.pump(s) })
	}
}

// pump sends as many new packets as the window allows.
func (e *experiment) pump(s *sender) {
	for !s.done && s.inflight < int(s.cwnd) && s.nextSeq < s.total {
		seq := s.nextSeq
		s.nextSeq++
		s.inflight++
		e.transmit(s, seq)
	}
	if !s.done && !s.timerArmed && s.cumAcked < s.total {
		e.armTimer(s)
	}
}

// transmit offers a packet to the bottleneck queue.
func (e *experiment) transmit(s *sender, seq int) {
	if e.queueLen >= e.p.BufferPackets {
		e.res.Drops++
		return // dropped at the switch; recovery via dupacks or timeout
	}
	e.queueLen++
	e.serviceLink(s, seq)
}

// serviceLink models the bottleneck port draining one packet at a time.
func (e *experiment) serviceLink(s *sender, seq int) {
	// Each queued packet is dequeued after the packets ahead of it; we
	// model the queue implicitly by serializing transmissions through a
	// busy flag and a FIFO of pending packets.
	e.pending = append(e.pending, pendingPkt{s: s, seq: seq})
	if !e.linkBusy {
		e.drain()
	}
}

type pendingPkt struct {
	s   *sender
	seq int
}

func (e *experiment) drain() {
	if len(e.pending) == 0 {
		e.linkBusy = false
		return
	}
	e.linkBusy = true
	pkt := e.pending[0]
	copy(e.pending, e.pending[1:])
	e.pending = e.pending[:len(e.pending)-1]
	txTime := sim.Time(float64(e.p.PacketSize) / e.p.LinkBandwidth)
	e.eng.Schedule(txTime, func() {
		e.queueLen--
		// Deliver after propagation; keep draining concurrently.
		e.eng.Schedule(e.p.PropDelay, func() { e.deliver(pkt.s, pkt.seq) })
		e.drain()
	})
}

// deliver processes a packet at the client and returns an ACK.
func (e *experiment) deliver(s *sender, seq int) {
	if s.done || e.received[s.id] == nil {
		return // stale packet from a previous round
	}
	rcv := e.received[s.id]
	if seq < len(rcv) {
		rcv[seq] = true
	}
	cum := s.cumAcked
	for cum < s.total && rcv[cum] {
		cum++
	}
	// ACK travels back after one propagation delay.
	e.eng.Schedule(e.p.PropDelay, func() { e.ack(s, cum) })
}

// ack runs standard NewReno-flavored congestion control at the sender.
func (e *experiment) ack(s *sender, cum int) {
	if s.done {
		return
	}
	if cum > s.cumAcked {
		newly := cum - s.cumAcked
		s.cumAcked = cum
		s.inflight -= newly
		if s.inflight < 0 {
			s.inflight = 0
		}
		s.dupAcks = 0
		s.rtoBackoff = 0
		if s.cwnd < s.ssthresh {
			s.cwnd += float64(newly) // slow start
		} else {
			s.cwnd += float64(newly) / s.cwnd // congestion avoidance
		}
		if s.cumAcked >= s.total {
			e.finish(s)
			return
		}
		e.disarmTimer(s)
		e.armTimer(s)
		e.pump(s)
		return
	}
	// Duplicate ACK.
	s.dupAcks++
	if s.dupAcks == 3 && s.cumAcked < s.nextSeq {
		// Fast retransmit.
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.cwnd = s.ssthresh
		s.dupAcks = 0
		e.res.Retransmits++
		e.transmit(s, s.cumAcked)
		e.disarmTimer(s)
		e.armTimer(s)
	}
}

func (e *experiment) rto(s *sender) sim.Time {
	base := e.p.MinRTO
	nominal := 4 * e.p.PropDelay
	if nominal > base {
		base = nominal
	}
	for i := 0; i < s.rtoBackoff; i++ {
		base *= 2
	}
	if e.p.RTORandomize {
		base += sim.Time(e.rng.Float64()) * e.p.MinRTO / 2
	}
	return base
}

func (e *experiment) armTimer(s *sender) {
	s.timerArmed = true
	s.timer = e.eng.Schedule(e.rto(s), func() { e.timeout(s) })
}

func (e *experiment) disarmTimer(s *sender) {
	if s.timerArmed {
		e.eng.Cancel(s.timer)
		s.timerArmed = false
	}
}

// timeout retransmits from the last cumulative ACK with a collapsed window.
func (e *experiment) timeout(s *sender) {
	s.timerArmed = false
	if s.done || s.cumAcked >= s.total {
		return
	}
	e.res.Timeouts++
	e.res.Retransmits++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.inflight = 0
	s.nextSeq = s.cumAcked // go-back-N from the hole
	s.rtoBackoff++
	if s.rtoBackoff > 8 {
		s.rtoBackoff = 8
	}
	e.pump(s)
}

func (e *experiment) finish(s *sender) {
	s.done = true
	e.disarmTimer(s)
	e.doneCnt++
	if e.doneCnt == e.p.Senders {
		e.eng.Tracer().Span("incast", fmt.Sprintf("round %d", e.round),
			int64(e.p.Senders), float64(e.roundStart), float64(e.eng.Now()), nil)
		e.round++
		if e.round < e.p.Rounds {
			e.startRound()
		}
	}
}

// Sweep runs the experiment across sender counts and returns goodput per
// point — the Figure 9 curves.
func Sweep(counts []int, mutate func(*Params)) []Result {
	return SweepProbed(counts, mutate, nil, nil)
}

// SweepProbed is Sweep with a metrics registry and tracer attached
// (either may be nil); the points accumulate into the same registry.
func SweepProbed(counts []int, mutate func(*Params), reg *obs.Registry, tr *obs.Tracer) []Result {
	out := make([]Result, 0, len(counts))
	for _, n := range counts {
		p := DefaultParams(n)
		if mutate != nil {
			mutate(&p)
		}
		out = append(out, RunProbed(p, reg, tr))
	}
	return out
}
