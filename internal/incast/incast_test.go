package incast

import (
	"testing"
)

func quickParams(senders int) Params {
	p := DefaultParams(senders)
	p.SRUBytes = 64 << 10
	p.Rounds = 2
	return p
}

func TestValidateRejectsBadParams(t *testing.T) {
	for _, bad := range []Params{
		{},
		{Senders: 1, LinkBandwidth: 1, PacketSize: 1500, BufferPackets: 4, SRUBytes: 100, Rounds: 1},
		{Senders: 1, LinkBandwidth: 1e9, PacketSize: 1500, BufferPackets: 4, SRUBytes: 64 << 10, Rounds: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %+v should panic", bad)
				}
			}()
			Run(bad)
		}()
	}
}

func TestSingleSenderNearLineRate(t *testing.T) {
	// One sender cannot overflow the buffer; goodput approaches link rate.
	r := Run(quickParams(1))
	if r.Timeouts != 0 {
		t.Fatalf("single sender suffered %d timeouts", r.Timeouts)
	}
	link := r.Params.LinkBandwidth
	if r.GoodputBps < 0.5*link {
		t.Fatalf("goodput %.0f, want >= 50%% of link %.0f", r.GoodputBps, link)
	}
}

func TestFewSendersStillFast(t *testing.T) {
	r := Run(quickParams(4))
	if r.GoodputBps < 0.5*r.Params.LinkBandwidth {
		t.Fatalf("4 senders goodput %.0f collapsed prematurely", r.GoodputBps)
	}
}

func TestGoodputCollapsesAtScaleWithHighMinRTO(t *testing.T) {
	// Figure 9's left curve: with 200ms minimum RTO, goodput collapses by
	// an order of magnitude once senders overrun the buffer.
	small := Run(quickParams(2))
	big := Run(quickParams(48))
	if big.Timeouts == 0 {
		t.Fatal("48 synchronized senders should suffer timeouts")
	}
	ratio := small.GoodputBps / big.GoodputBps
	if ratio < 5 {
		t.Fatalf("collapse ratio = %.1fx (%.0f -> %.0f), want >= 5x",
			ratio, small.GoodputBps, big.GoodputBps)
	}
}

func TestLowMinRTORestoresGoodput(t *testing.T) {
	// Figure 9's fix: dropping the minimum RTO to 1ms restores goodput.
	slow := Run(quickParams(48))
	fast := func() Result {
		p := quickParams(48)
		p.MinRTO = 1e-3
		return Run(p)
	}()
	if fast.GoodputBps < 3*slow.GoodputBps {
		t.Fatalf("1ms RTO goodput %.0f should be >= 3x the 200ms goodput %.0f",
			fast.GoodputBps, slow.GoodputBps)
	}
	if fast.GoodputBps < 0.3*fast.Params.LinkBandwidth {
		t.Fatalf("1ms RTO goodput %.0f still far from line rate", fast.GoodputBps)
	}
}

func TestDropsOccurOnlyUnderOverflow(t *testing.T) {
	one := Run(quickParams(1))
	if one.Drops != 0 {
		t.Fatalf("single sender saw %d drops", one.Drops)
	}
	many := Run(quickParams(64))
	if many.Drops == 0 {
		t.Fatal("64 senders should overflow the buffer")
	}
}

func TestLargerBufferDelaysCollapse(t *testing.T) {
	shallow := quickParams(32)
	deep := quickParams(32)
	deep.BufferPackets = 1024
	rs, rd := Run(shallow), Run(deep)
	if rd.GoodputBps <= rs.GoodputBps {
		t.Fatalf("deep buffer %.0f should beat shallow %.0f at 32 senders",
			rd.GoodputBps, rs.GoodputBps)
	}
}

func TestRandomizedRTOHelpsAtExtremeScale(t *testing.T) {
	// At very large N even 1ms RTO senders retransmit in lockstep; the
	// SIGCOMM'09 fix adds timer randomization.
	base := quickParams(128)
	base.MinRTO = 1e-3
	plain := Run(base)
	jittered := base
	jittered.RTORandomize = true
	j := Run(jittered)
	// Randomization should not hurt; typically it helps or ties.
	if j.GoodputBps < 0.8*plain.GoodputBps {
		t.Fatalf("randomized RTO %.0f much worse than plain %.0f", j.GoodputBps, plain.GoodputBps)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	a, b := Run(quickParams(16)), Run(quickParams(16))
	if a.Elapsed != b.Elapsed || a.Timeouts != b.Timeouts || a.Drops != b.Drops {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSweepShape(t *testing.T) {
	counts := []int{1, 4, 16, 48}
	rs := Sweep(counts, func(p *Params) { p.SRUBytes = 64 << 10; p.Rounds = 2 })
	if len(rs) != len(counts) {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	if rs[len(rs)-1].GoodputBps >= rs[0].GoodputBps {
		t.Fatalf("sweep should collapse: %v -> %v", rs[0].GoodputBps, rs[len(rs)-1].GoodputBps)
	}
}

func TestAllDataDelivered(t *testing.T) {
	// Conservation: the run only terminates when every round's every SRU
	// is fully delivered, so elapsed must be finite and positive and no
	// events may linger.
	r := Run(quickParams(24))
	if r.Elapsed <= 0 {
		t.Fatal("experiment did not complete")
	}
}
