package failure

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// Event is one interrupt/failure record, in the style of the released LANL
// trace (system, node, timestamp).
type Event struct {
	System int
	Node   int
	At     float64 // seconds since system deployment
}

// ClusterSpec describes one synthetic cluster for trace generation.
type ClusterSpec struct {
	System int
	Nodes  int
	// ChipsPerNode scales the per-node interrupt rate: interrupts are
	// proportional to chips, not nodes (the Figure 4 finding).
	ChipsPerNode int
	// PerChipRate is interrupts per chip-year.
	PerChipRate float64
	// Shape sets the Weibull shape of interarrival times; 1.0 is Poisson,
	// <1 produces the bursty, decreasing-hazard interarrivals observed in
	// the LANL data.
	Shape float64
}

// Chips returns the cluster's total chip count.
func (c ClusterSpec) Chips() int { return c.Nodes * c.ChipsPerNode }

// GenerateTrace produces years' worth of interrupt events for a cluster.
// Interarrivals are Weibull with the requested shape, scaled so the mean
// rate equals Chips * PerChipRate per year.
func GenerateTrace(spec ClusterSpec, years float64, seed int64) []Event {
	if spec.Nodes < 1 || spec.ChipsPerNode < 1 || spec.PerChipRate <= 0 || spec.Shape <= 0 {
		panic(fmt.Sprintf("failure: invalid cluster spec %+v", spec))
	}
	r := rand.New(rand.NewSource(seed))
	ratePerSec := spec.PerChipRate * float64(spec.Chips()) / SecondsPerYear
	meanGap := 1 / ratePerSec
	// Weibull with requested shape and mean == meanGap.
	scale := meanGap / stats.Weibull{Shape: spec.Shape, Scale: 1}.Mean()
	d := stats.Weibull{Shape: spec.Shape, Scale: scale}
	horizon := years * SecondsPerYear
	var events []Event
	t := 0.0
	for {
		t += d.Sample(r)
		if t >= horizon {
			break
		}
		events = append(events, Event{
			System: spec.System,
			Node:   r.Intn(spec.Nodes),
			At:     t,
		})
	}
	return events
}

// Interarrivals extracts the gaps between consecutive events.
func Interarrivals(events []Event) []float64 {
	if len(events) < 2 {
		return nil
	}
	out := make([]float64, 0, len(events)-1)
	for i := 1; i < len(events); i++ {
		out = append(out, events[i].At-events[i-1].At)
	}
	return out
}

// SystemStats summarizes one system's trace for the linear-in-chips fit.
type SystemStats struct {
	System         int
	Chips          int
	Events         int
	Years          float64
	PerYear        float64
	MTTISeconds    float64
	InterarrivalCV float64
}

// Analyze summarizes a trace.
func Analyze(spec ClusterSpec, events []Event, years float64) SystemStats {
	s := SystemStats{System: spec.System, Chips: spec.Chips(), Events: len(events), Years: years}
	if years > 0 {
		s.PerYear = float64(len(events)) / years
	}
	if len(events) > 0 {
		s.MTTISeconds = years * SecondsPerYear / float64(len(events))
	}
	gaps := Interarrivals(events)
	if len(gaps) > 1 {
		s.InterarrivalCV = stats.Summarize(gaps).CoefficientVar
	}
	return s
}

// FitInterruptsVsChips regresses annual interrupt counts against chip
// counts across systems — the Figure 4 "best simple model suggests the
// number of interrupts is linear in the number of processor chips" result.
func FitInterruptsVsChips(sys []SystemStats) (stats.LinearFit, error) {
	xs := make([]float64, len(sys))
	ys := make([]float64, len(sys))
	for i, s := range sys {
		xs[i] = float64(s.Chips)
		ys[i] = s.PerYear
	}
	return stats.FitLinear(xs, ys)
}

// LANLStyleFleet generates a set of clusters shaped like the released LANL
// data: many clusters of diverse sizes observed for up to nine years, all
// sharing a common per-chip interrupt rate.
func LANLStyleFleet(nClusters int, perChipRate, shape float64, seed int64) []ClusterSpec {
	r := rand.New(rand.NewSource(seed))
	sizes := []int{49, 128, 164, 256, 512, 1024, 2048, 4096}
	chips := []int{1, 2, 4}
	specs := make([]ClusterSpec, nClusters)
	for i := range specs {
		specs[i] = ClusterSpec{
			System:       i,
			Nodes:        sizes[r.Intn(len(sizes))],
			ChipsPerNode: chips[r.Intn(len(chips))],
			PerChipRate:  perChipRate,
			Shape:        shape,
		}
	}
	return specs
}

// NodeInterruptCounts tallies events per node, used to check that failures
// concentrate on a minority of nodes when shape < 1 (burstiness) and to
// drive repair policies.
func NodeInterruptCounts(events []Event, nodes int) []int {
	counts := make([]int, nodes)
	for _, e := range events {
		if e.Node >= 0 && e.Node < nodes {
			counts[e.Node]++
		}
	}
	return counts
}

// MergeTraces combines multiple systems' events into one ordered stream.
func MergeTraces(traces ...[]Event) []Event {
	var all []Event
	for _, t := range traces {
		all = append(all, t...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		if all[i].System != all[j].System {
			return all[i].System < all[j].System
		}
		return all[i].Node < all[j].Node
	})
	return all
}
