package failure

import (
	"fmt"
	"math/rand"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file draws silent-corruption schedules — the latent-sector-error
// and bit-rot arrivals that the report's reliability studies (and the
// DiskReduce RAID-in-HDFS work) treat as the second failure channel next
// to whole-drive replacement. Where DrawOSSFaults makes servers die
// loudly, DrawLSE makes their drives lie quietly: each drive accumulates
// corrupted extents over the run, discovered only when the integrity
// layer in internal/pfs reads or scrubs them.

// LSESpec parameterizes a latent-sector-error draw for a set of drives.
type LSESpec struct {
	// Disks is the number of drives (one event stream each).
	Disks int

	// CapacityBytes bounds corrupted offsets: events land uniformly in
	// [0, CapacityBytes), sector-aligned.
	CapacityBytes int64

	// SectorSize aligns event offsets and sizes (default 512).
	SectorSize int64

	// MTBC is each drive's mean time between corruption events in
	// seconds — the per-drive LSE arrival rate inverted.
	MTBC float64

	// Shape is the Weibull shape of interarrivals: 1.0 is Poisson, <1
	// gives the bursty, spatially-correlated behaviour the LSE field
	// study observed.
	Shape float64

	// TornFraction is the probability an event is a torn write spanning
	// several sectors instead of a single-sector media error.
	TornFraction float64

	// TornSectors is the maximum torn-write span in sectors (uniform in
	// [2, TornSectors]; default 8, minimum 2).
	TornSectors int

	// Horizon bounds the draw: events arrive in [0, Horizon) seconds.
	Horizon float64
}

func (s LSESpec) validate() error {
	if s.Disks < 1 || s.CapacityBytes <= 0 || s.MTBC <= 0 || s.Shape <= 0 || s.Horizon <= 0 {
		return fmt.Errorf("failure: invalid LSE spec %+v", s)
	}
	if s.TornFraction < 0 || s.TornFraction > 1 {
		return fmt.Errorf("failure: LSE torn fraction %v outside [0,1]", s.TornFraction)
	}
	return nil
}

// DrawLSE draws one deterministic corruption schedule per drive: the same
// spec and seed always produce the same events, and each drive uses an
// independent stream (seed offset by drive index), so adding a drive
// never perturbs the others. Feed each slice to disk.NewCorruptor.
func DrawLSE(spec LSESpec, seed int64) [][]disk.CorruptionEvent {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	sector := spec.SectorSize
	if sector <= 0 {
		sector = 512
	}
	maxTorn := spec.TornSectors
	if maxTorn < 2 {
		maxTorn = 8
	}
	sectors := spec.CapacityBytes / sector
	if sectors < 1 {
		sectors = 1
	}
	scale := spec.MTBC / stats.Weibull{Shape: spec.Shape, Scale: 1}.Mean()
	d := stats.Weibull{Shape: spec.Shape, Scale: scale}
	out := make([][]disk.CorruptionEvent, spec.Disks)
	for i := 0; i < spec.Disks; i++ {
		r := rand.New(rand.NewSource(seed + int64(i)))
		var evs []disk.CorruptionEvent
		for t := d.Sample(r); t < spec.Horizon; t += d.Sample(r) {
			ev := disk.CorruptionEvent{
				Offset: r.Int63n(sectors) * sector,
				Length: sector,
				At:     sim.Time(t),
				Mode:   disk.MediaError,
			}
			if r.Float64() < spec.TornFraction {
				ev.Mode = disk.TornWrite
				ev.Length = sector * int64(2+r.Intn(maxTorn-1))
			}
			if ev.Offset+ev.Length > spec.CapacityBytes {
				ev.Offset = spec.CapacityBytes - ev.Length
			}
			evs = append(evs, ev)
		}
		out[i] = evs
	}
	return out
}

// ExpectedLSECount returns the analytic mean number of corruption events
// per drive over the horizon — the expectation the integrity experiment
// in cmd/pdsirepro compares its injected counts against.
func (s LSESpec) ExpectedLSECount() float64 {
	if s.MTBC <= 0 {
		return 0
	}
	return s.Horizon / s.MTBC
}
