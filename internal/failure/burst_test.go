package failure

import (
	"math"
	"testing"
)

func bb() BurstBuffer {
	// 600s of disk-time worth of state, flash 10x faster than disk.
	return BurstBuffer{CheckpointBytes: 600, FlashBandwidth: 10, DiskBandwidth: 1}
}

func TestBurstBufferTimes(t *testing.T) {
	b := bb()
	if got := b.AbsorbTime(); got != 60 {
		t.Fatalf("AbsorbTime = %v, want 60", got)
	}
	if got := b.DrainTime(); got != 600 {
		t.Fatalf("DrainTime = %v, want 600", got)
	}
}

func TestEffectiveDeltaRegimes(t *testing.T) {
	b := bb()
	// Long interval: drain fits, host pays only the absorb.
	if got := b.EffectiveDelta(2000); got != 60 {
		t.Fatalf("EffectiveDelta(2000) = %v, want 60", got)
	}
	// Short interval: drain overhangs; host stalls for the remainder.
	got := b.EffectiveDelta(300)
	want := 60 + (600 - (300 - 60)) // absorb + overhang
	if math.Abs(got-float64(want)) > 1e-9 {
		t.Fatalf("EffectiveDelta(300) = %v, want %v", got, want)
	}
	// The stall can never make delta worse than checkpointing straight to
	// disk plus the absorb.
	if got > 600+60 {
		t.Fatalf("EffectiveDelta(300) = %v exceeds disk+absorb bound", got)
	}
}

func TestBurstBufferBeatsDiskOnlyCheckpointing(t *testing.T) {
	const restart, mtti = 600.0, 4 * 3600.0
	diskOnly := Daly{Delta: 600, Restart: restart, MTTI: mtti}.OptimalUtilization()
	withBB, _ := BurstBufferUtilization(bb(), restart, mtti)
	if withBB <= diskOnly {
		t.Fatalf("burst buffer utilization %v should beat disk-only %v", withBB, diskOnly)
	}
}

func TestBurstBufferProjectionDelaysCrossing(t *testing.T) {
	p := ReportProjection(18)
	diskOnly := BalancedUtilization(p, 600, 600, 2008, 2022)
	withBB := BurstBufferProjection(p, 600, 600, 10, 2008, 2022)
	yDisk := CrossingYear(diskOnly, 0.5)
	yBB := CrossingYear(withBB, 0.5)
	if yBB != -1 && yDisk != -1 && yBB <= yDisk {
		t.Fatalf("burst buffer crossing %d should be later than disk-only %d", yBB, yDisk)
	}
	// Utilization pointwise at least as good.
	for i := range diskOnly {
		if withBB[i].Utilization+1e-9 < diskOnly[i].Utilization {
			t.Fatalf("year %d: burst buffer %v below disk-only %v",
				diskOnly[i].Year, withBB[i].Utilization, diskOnly[i].Utilization)
		}
	}
}

func TestBurstBufferConvergesAtTinyMTTI(t *testing.T) {
	// Even when intervals get so short the drain overhangs, the fixed
	// point must converge and produce a sane utilization.
	u, tau := BurstBufferUtilization(bb(), 600, 1200)
	if tau <= 0 || u <= 0 || u >= 1 {
		t.Fatalf("degenerate fixed point: u=%v tau=%v", u, tau)
	}
}
