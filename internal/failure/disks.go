package failure

import (
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// This file reproduces the statistical machinery of the FAST'07 study
// "Disk failures in the real world: What does an MTTF of 1,000,000 hours
// mean to you?" (Schroeder & Gibson), whose conclusions the report
// highlights: field replacement rates far exceed datasheet AFRs, show no
// infant-mortality "bathtub", grow steadily with age, look similar for
// enterprise and nearline drives, and have bursty, correlated arrivals.

// DriveClass parameterizes a drive population.
type DriveClass struct {
	Name string
	// DatasheetMTTFHours is the vendor claim (e.g. 1,000,000 hours).
	DatasheetMTTFHours float64
	// Lifetime is the true time-to-replacement distribution in hours. A
	// Weibull with shape > 1 yields replacement rates that grow with age.
	Lifetime stats.Weibull
}

// EnterpriseClass mirrors a 1M-hour-MTTF FC/SCSI drive whose observed
// replacement behaviour is far worse than the datasheet.
func EnterpriseClass() DriveClass {
	return DriveClass{
		Name:               "enterprise",
		DatasheetMTTFHours: 1.0e6,
		// Increasing hazard calibrated to the field observation: ~2-3% ARR
		// in year one climbing toward ~6% by year five — several times the
		// datasheet's implied 0.88%.
		Lifetime: stats.Weibull{Shape: 1.4, Scale: 1.5e5},
	}
}

// NearlineClass mirrors a desktop/SATA drive with a lower datasheet MTTF
// but essentially similar field behaviour — the study's surprise.
func NearlineClass() DriveClass {
	return DriveClass{
		Name:               "nearline",
		DatasheetMTTFHours: 6.0e5,
		Lifetime:           stats.Weibull{Shape: 1.35, Scale: 1.4e5},
	}
}

// DatasheetAFR converts an MTTF claim into the annual failure rate the
// datasheet implies.
func (c DriveClass) DatasheetAFR() float64 {
	return 8760 / c.DatasheetMTTFHours
}

// FleetYearStats reports observed replacements for one deployment year.
type FleetYearStats struct {
	Year         int
	DriveYears   float64
	Replacements int
	// ARR is the annual replacement rate: replacements per drive-year.
	ARR float64
}

// SimulateFleet deploys n drives at time zero and replaces each drive on
// failure with a new one (whose age restarts), observing the fleet for
// years. It reports per-deployment-year replacement statistics: with an
// increasing-hazard lifetime the early years show low ARR that grows
// steadily — no infant-mortality spike, no stable middle — because the
// population's age mix shifts upward.
func SimulateFleet(class DriveClass, n int, years int, seed int64) []FleetYearStats {
	r := rand.New(rand.NewSource(seed))
	horizon := float64(years) * 8760
	type drive struct{ deployed, fails float64 }
	drives := make([]drive, n)
	var events []float64
	for i := range drives {
		drives[i] = drive{deployed: 0, fails: class.Lifetime.Sample(r)}
	}
	for i := range drives {
		for drives[i].deployed+drives[i].fails < horizon {
			t := drives[i].deployed + drives[i].fails
			events = append(events, t)
			drives[i] = drive{deployed: t, fails: class.Lifetime.Sample(r)}
		}
	}
	out := make([]FleetYearStats, years)
	for y := 0; y < years; y++ {
		out[y] = FleetYearStats{Year: y + 1, DriveYears: float64(n)}
	}
	for _, t := range events {
		y := int(t / 8760)
		if y >= 0 && y < years {
			out[y].Replacements++
		}
	}
	for y := range out {
		out[y].ARR = float64(out[y].Replacements) / out[y].DriveYears
	}
	return out
}

// ObservedAFR returns the fleet-average annual replacement rate over the
// whole observation window.
func ObservedAFR(statsPerYear []FleetYearStats) float64 {
	var repl int
	var dy float64
	for _, s := range statsPerYear {
		repl += s.Replacements
		dy += s.DriveYears
	}
	if dy == 0 {
		return 0
	}
	return float64(repl) / dy
}

// BathtubDeparture quantifies how far the observed per-year ARR profile is
// from the bathtub assumption: it returns the ratio of the last year's ARR
// to the first year's. Bathtub predicts >= 1 only at end of life with a
// high year-1 (infant mortality) rate; the field data shows a steady climb
// (ratio well above 1, with year 1 the minimum).
func BathtubDeparture(statsPerYear []FleetYearStats) float64 {
	if len(statsPerYear) < 2 || statsPerYear[0].ARR == 0 {
		return 0
	}
	return statsPerYear[len(statsPerYear)-1].ARR / statsPerYear[0].ARR
}

// ReplacementInterarrivals simulates a fixed-size fleet and returns the
// time gaps between successive replacement events anywhere in the fleet,
// for distribution fitting (the FAST'07 data shows these are far from
// exponential: CoV > 1 and autocorrelated).
func ReplacementInterarrivals(class DriveClass, n int, years int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	horizon := float64(years) * 8760
	var events []float64
	for i := 0; i < n; i++ {
		t := 0.0
		for {
			t += class.Lifetime.Sample(r)
			if t >= horizon {
				break
			}
			events = append(events, t)
		}
	}
	if len(events) < 2 {
		return nil
	}
	sort.Float64s(events)
	gaps := make([]float64, len(events)-1)
	for i := 1; i < len(events); i++ {
		gaps[i-1] = events[i] - events[i-1]
	}
	return gaps
}
