package failure

import "math"

// This file models the burst-buffer mitigation listed among the PLFS
// follow-ons ("double-buffer writes in NAND Flash storage to decouple host
// blocking during checkpoint from disk write time in the storage system"):
// the application blocks only while its memory image streams into a fast
// flash tier; the flash tier drains to disk in the background. The host's
// effective checkpoint capture time shrinks by the flash/disk bandwidth
// ratio — as long as the drain finishes before the next checkpoint needs
// the buffer.

// BurstBuffer describes the absorb/drain tiers.
type BurstBuffer struct {
	// CheckpointBytes is the memory image per checkpoint.
	CheckpointBytes float64
	// FlashBandwidth is the absorb rate the hosts see.
	FlashBandwidth float64
	// DiskBandwidth is the background drain rate to the parallel FS.
	DiskBandwidth float64
}

// AbsorbTime is the host-visible checkpoint capture time.
func (bb BurstBuffer) AbsorbTime() float64 { return bb.CheckpointBytes / bb.FlashBandwidth }

// DrainTime is how long the buffer needs to empty to disk.
func (bb BurstBuffer) DrainTime() float64 { return bb.CheckpointBytes / bb.DiskBandwidth }

// EffectiveDelta returns the host-blocking checkpoint time at interval tau:
// the absorb time when the drain fits inside the interval, otherwise the
// host stalls for the unfinished remainder of the previous drain (the
// buffer is still busy when the next checkpoint arrives).
func (bb BurstBuffer) EffectiveDelta(tau float64) float64 {
	absorb := bb.AbsorbTime()
	spare := tau - absorb // time the drain has before the next checkpoint
	overhang := bb.DrainTime() - spare
	if overhang > 0 {
		return absorb + overhang
	}
	return absorb
}

// BurstBufferUtilization computes optimal-interval utilization with the
// burst buffer in front of the same disk system. It fixed-point iterates
// because the optimal interval depends on the effective delta, which
// depends on the interval.
func BurstBufferUtilization(bb BurstBuffer, restart, mtti float64) (utilization, interval float64) {
	delta := bb.AbsorbTime()
	for i := 0; i < 20; i++ {
		d := Daly{Delta: delta, Restart: restart, MTTI: mtti}
		tau := d.OptimalInterval()
		next := bb.EffectiveDelta(tau)
		if math.Abs(next-delta) < 1e-9 {
			delta = next
			break
		}
		delta = next
	}
	d := Daly{Delta: delta, Restart: restart, MTTI: mtti}
	interval = d.OptimalInterval()
	return d.Utilization(interval), interval
}

// BurstBufferProjection extends the Figure 5 projection with a flash tier
// whose bandwidth is flashRatio times the disk system's. diskDelta is the
// disk-only capture time (as in BalancedUtilization).
func BurstBufferProjection(p Projection, diskDelta, restart, flashRatio float64, fromYear, toYear int) []UtilizationPoint {
	var out []UtilizationPoint
	for y := fromYear; y <= toYear; y++ {
		m := p.MTTISeconds(y)
		bb := BurstBuffer{
			CheckpointBytes: diskDelta, // normalized: disk BW = 1 byte/s
			FlashBandwidth:  flashRatio,
			DiskBandwidth:   1,
		}
		u, tau := BurstBufferUtilization(bb, restart, m)
		out = append(out, UtilizationPoint{
			Year:        y,
			Chips:       p.Chips(y),
			MTTI:        m,
			Delta:       bb.EffectiveDelta(tau),
			OptimalTau:  tau,
			Utilization: u,
		})
	}
	return out
}
