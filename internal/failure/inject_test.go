package failure

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func testSpec() OSSFaultSpec {
	return OSSFaultSpec{Servers: 4, MTBF: 100, Shape: 1, Downtime: 5, Horizon: 2000}
}

func TestDrawOSSFaultsDeterministic(t *testing.T) {
	a := DrawOSSFaults(testSpec(), 42).Events()
	b := DrawOSSFaults(testSpec(), 42).Events()
	if len(a) == 0 {
		t.Fatal("no faults drawn over 20 MTBFs")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec and seed drew different plans")
	}
	c := DrawOSSFaults(testSpec(), 43).Events()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical plans")
	}
}

func TestDrawOSSFaultsTargetsAndHorizon(t *testing.T) {
	spec := testSpec()
	for _, ev := range DrawOSSFaults(spec, 1).Events() {
		if !strings.HasPrefix(ev.Target, "oss") {
			t.Fatalf("target %q does not follow the oss<i> convention", ev.Target)
		}
		if float64(ev.At) >= spec.Horizon {
			t.Fatalf("event at %v beyond horizon %v", ev.At, spec.Horizon)
		}
		if ev.Permanent() {
			t.Fatalf("downtime %v drew a permanent event", spec.Downtime)
		}
	}
}

func TestDrawOSSFaultsPermanentStopsPerServer(t *testing.T) {
	spec := testSpec()
	spec.Downtime = 0
	perServer := map[string]int{}
	for _, ev := range DrawOSSFaults(spec, 7).Events() {
		if !ev.Permanent() {
			t.Fatalf("zero downtime drew recoverable event %+v", ev)
		}
		perServer[ev.Target]++
	}
	for target, n := range perServer {
		if n != 1 {
			t.Fatalf("permanently failed %s %d times", target, n)
		}
	}
}

func TestDrawOSSFaultsRateTracksMTBF(t *testing.T) {
	spec := OSSFaultSpec{Servers: 1, MTBF: 50, Shape: 1, Downtime: 1, Horizon: 500000}
	n := DrawOSSFaults(spec, 3).Len()
	// Expected ~ Horizon/(MTBF+Downtime) events; allow wide slack.
	want := spec.Horizon / (spec.MTBF + spec.Downtime)
	if f := float64(n) / want; f < 0.8 || f > 1.2 {
		t.Fatalf("drew %d events, want about %.0f", n, want)
	}
}

func TestDrawOSSFaultsTargetOverride(t *testing.T) {
	spec := testSpec()
	spec.Target = func(i int) string { return fmt.Sprintf("disk%d", i) }
	for _, ev := range DrawOSSFaults(spec, 1).Events() {
		if !strings.HasPrefix(ev.Target, "disk") {
			t.Fatalf("override ignored: target %q", ev.Target)
		}
	}
}

func TestDrawOSSFaultsBurstsScheduleSimultaneousCrashes(t *testing.T) {
	spec := testSpec()
	spec.Servers = 50
	spec.MTBF = 10000 // keep the independent draw sparse
	spec.Horizon = 200
	spec.Bursts = BurstSpec{MTBB: 20, Size: 4, Downtime: 3}
	plan, bs := DrawOSSFaultsDetailed(spec, 11)
	if err := plan.Validate(); err != nil {
		t.Fatalf("burst-merged plan invalid: %v", err)
	}
	if bs.Bursts == 0 || bs.Crashes == 0 {
		t.Fatalf("no bursts drawn over 10 MTBBs: %+v", bs)
	}
	// At least one burst must have >= 2 members crashing at the same
	// instant on distinct targets — the correlated signature.
	byTime := map[float64]map[string]bool{}
	for _, ev := range plan.Events() {
		at := float64(ev.At)
		if byTime[at] == nil {
			byTime[at] = map[string]bool{}
		}
		byTime[at][ev.Target] = true
	}
	simultaneous := 0
	for _, targets := range byTime {
		if len(targets) >= 2 {
			simultaneous++
		}
	}
	if simultaneous == 0 {
		t.Fatal("no simultaneous multi-target crashes in a burst-enabled draw")
	}

	// Determinism and independence: the same seed redraws the same plan,
	// and disarming bursts reproduces the burst-free independent draw.
	again, _ := DrawOSSFaultsDetailed(spec, 11)
	if !reflect.DeepEqual(plan.Events(), again.Events()) {
		t.Fatal("burst draw not deterministic")
	}
	noBursts := spec
	noBursts.Bursts = BurstSpec{}
	base := DrawOSSFaults(noBursts, 11)
	if plan.Len() != base.Len()+bs.Crashes {
		t.Fatalf("burst plan has %d events, want base %d + burst crashes %d",
			plan.Len(), base.Len(), bs.Crashes)
	}
}

func TestBurstInsertSkipsOverlaps(t *testing.T) {
	// One server already down for [10, 20): a burst at t=15 must be
	// skipped for it, and the plan must still validate.
	spec := OSSFaultSpec{Servers: 1, MTBF: 1, Shape: 1, Downtime: 10, Horizon: 100}
	evs := []plannedEvent{{at: 10, down: 10}}
	if _, ok := insertEvent(evs, plannedEvent{at: 15, down: 2}, spec.Horizon); ok {
		t.Fatal("insert inside an existing outage succeeded")
	}
	if _, ok := insertEvent(evs, plannedEvent{at: 5, down: 8}, spec.Horizon); ok {
		t.Fatal("insert whose outage swallows the next event succeeded")
	}
	out, ok := insertEvent(evs, plannedEvent{at: 25, down: 2}, spec.Horizon)
	if !ok || len(out) != 2 || out[1].at != 25 {
		t.Fatalf("clean insert failed: %v %v", out, ok)
	}
	// A permanent event admits nothing after it, and cannot be inserted
	// before later events.
	perm := []plannedEvent{{at: 10, down: 0}}
	if _, ok := insertEvent(perm, plannedEvent{at: 50, down: 1}, spec.Horizon); ok {
		t.Fatal("insert after a permanent failure succeeded")
	}
	if _, ok := insertEvent(evs, plannedEvent{at: 30, down: 0}, spec.Horizon); !ok {
		t.Fatal("trailing permanent insert failed")
	}
}

func TestDrawOSSFaultsInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	DrawOSSFaults(OSSFaultSpec{}, 0)
}
