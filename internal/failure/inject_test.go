package failure

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func testSpec() OSSFaultSpec {
	return OSSFaultSpec{Servers: 4, MTBF: 100, Shape: 1, Downtime: 5, Horizon: 2000}
}

func TestDrawOSSFaultsDeterministic(t *testing.T) {
	a := DrawOSSFaults(testSpec(), 42).Events()
	b := DrawOSSFaults(testSpec(), 42).Events()
	if len(a) == 0 {
		t.Fatal("no faults drawn over 20 MTBFs")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec and seed drew different plans")
	}
	c := DrawOSSFaults(testSpec(), 43).Events()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical plans")
	}
}

func TestDrawOSSFaultsTargetsAndHorizon(t *testing.T) {
	spec := testSpec()
	for _, ev := range DrawOSSFaults(spec, 1).Events() {
		if !strings.HasPrefix(ev.Target, "oss") {
			t.Fatalf("target %q does not follow the oss<i> convention", ev.Target)
		}
		if float64(ev.At) >= spec.Horizon {
			t.Fatalf("event at %v beyond horizon %v", ev.At, spec.Horizon)
		}
		if ev.Permanent() {
			t.Fatalf("downtime %v drew a permanent event", spec.Downtime)
		}
	}
}

func TestDrawOSSFaultsPermanentStopsPerServer(t *testing.T) {
	spec := testSpec()
	spec.Downtime = 0
	perServer := map[string]int{}
	for _, ev := range DrawOSSFaults(spec, 7).Events() {
		if !ev.Permanent() {
			t.Fatalf("zero downtime drew recoverable event %+v", ev)
		}
		perServer[ev.Target]++
	}
	for target, n := range perServer {
		if n != 1 {
			t.Fatalf("permanently failed %s %d times", target, n)
		}
	}
}

func TestDrawOSSFaultsRateTracksMTBF(t *testing.T) {
	spec := OSSFaultSpec{Servers: 1, MTBF: 50, Shape: 1, Downtime: 1, Horizon: 500000}
	n := DrawOSSFaults(spec, 3).Len()
	// Expected ~ Horizon/(MTBF+Downtime) events; allow wide slack.
	want := spec.Horizon / (spec.MTBF + spec.Downtime)
	if f := float64(n) / want; f < 0.8 || f > 1.2 {
		t.Fatalf("drew %d events, want about %.0f", n, want)
	}
}

func TestDrawOSSFaultsTargetOverride(t *testing.T) {
	spec := testSpec()
	spec.Target = func(i int) string { return fmt.Sprintf("disk%d", i) }
	for _, ev := range DrawOSSFaults(spec, 1).Events() {
		if !strings.HasPrefix(ev.Target, "disk") {
			t.Fatalf("override ignored: target %q", ev.Target)
		}
	}
}

func TestDrawOSSFaultsInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	DrawOSSFaults(OSSFaultSpec{}, 0)
}
