package failure

import (
	"reflect"
	"testing"

	"repro/internal/disk"
)

func lseSpec() LSESpec {
	return LSESpec{
		Disks:         4,
		CapacityBytes: 1 << 30,
		MTBC:          3600,
		Shape:         1.0,
		TornFraction:  0.3,
		Horizon:       10 * 3600,
	}
}

func TestDrawLSEDeterministicPerSeed(t *testing.T) {
	a := DrawLSE(lseSpec(), 42)
	b := DrawLSE(lseSpec(), 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different corruption schedules")
	}
	c := DrawLSE(lseSpec(), 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical schedules")
	}
}

func TestDrawLSEIndependentStreams(t *testing.T) {
	small, big := lseSpec(), lseSpec()
	big.Disks = small.Disks + 2
	a := DrawLSE(small, 7)
	b := DrawLSE(big, 7)
	if !reflect.DeepEqual(a, b[:small.Disks]) {
		t.Fatal("adding drives perturbed existing streams")
	}
}

func TestDrawLSEEventShape(t *testing.T) {
	spec := lseSpec()
	var media, torn, total int
	for _, evs := range DrawLSE(spec, 1) {
		for _, e := range evs {
			total++
			if e.Offset < 0 || e.Offset+e.Length > spec.CapacityBytes {
				t.Fatalf("event out of bounds: %+v", e)
			}
			if e.Offset%512 != 0 || e.Length%512 != 0 {
				t.Fatalf("event not sector aligned: %+v", e)
			}
			if e.At < 0 || float64(e.At) >= spec.Horizon {
				t.Fatalf("event outside horizon: %+v", e)
			}
			switch e.Mode {
			case disk.MediaError:
				media++
				if e.Length != 512 {
					t.Fatalf("media error spans %d bytes", e.Length)
				}
			case disk.TornWrite:
				torn++
				if e.Length < 1024 {
					t.Fatalf("torn write spans only %d bytes", e.Length)
				}
			}
		}
	}
	if total == 0 || media == 0 || torn == 0 {
		t.Fatalf("draw too thin: total=%d media=%d torn=%d", total, media, torn)
	}
	// Mean count per drive should be in the right ballpark of the
	// analytic expectation (10 per drive here).
	want := spec.ExpectedLSECount()
	got := float64(total) / float64(spec.Disks)
	if got < want/3 || got > want*3 {
		t.Fatalf("mean events per drive = %v, expected near %v", got, want)
	}
}
