// Package failure implements the PDSI failure characterization and
// fault-tolerance modeling line of work. Each piece maps to a specific
// result in the report:
//
//   - GenerateTrace / LANLStyleFleet / Analyze synthesize and summarize
//     event streams shaped like the released LANL 9-year failure traces:
//     Weibull interarrivals (stats.Weibull) whose shape < 1 reproduces the
//     bursty, decreasing-hazard behaviour observed in the data, and
//     FitInterruptsVsChips recovers the report's "interrupts are linear in
//     processor chips" regression (Figure 4's underlying fit).
//
//   - Projection / ReportProjection extrapolate that fit under top500
//     growth: chip counts — and interrupt rates — compound as aggregate
//     speed doubles yearly while per-chip speed lags (Figure 4's MTTI
//     projection for 18/24/30-month chip doubling periods).
//
//   - Daly is the checkpoint/restart model behind the report's
//     checkpoint-interval figures: OptimalInterval and Utilization give
//     the optimum dump interval and the resulting effective application
//     utilization, and BalancedUtilization traces Figure 5's year-by-year
//     decline through the 50% crossing before 2014. ProcessPairsUtilization
//     and DiskGrowth quantify the report's alternatives-and-costs
//     discussion (process pairs; disk-count growth when disk bandwidth
//     lags required aggregate bandwidth).
//
//   - DrawOSSFaults (inject.go) turns the same distributions into a
//     sim.FaultPlan, so the analytic optimum-interval predictions can be
//     checked against a simulation whose storage servers actually crash
//     mid-checkpoint (the `faults` experiment).
//
// The FAST'07 disk-replacement analysis that overturned the "bathtub
// curve" and enterprise-vs-desktop assumptions motivates the Weibull
// machinery in package stats.
package failure

import (
	"fmt"
	"math"
)

// Daly models checkpoint/restart fault tolerance for an application on a
// machine with exponential interrupts of mean MTTI. Delta is the time to
// capture one checkpoint; Restart is the time to reboot/rework after a
// failure. All fields share one time unit (seconds in this repo).
type Daly struct {
	Delta   float64 // checkpoint capture time
	Restart float64 // restart cost after an interrupt
	MTTI    float64 // mean time to interrupt
}

func (d Daly) validate() error {
	if d.Delta <= 0 || d.MTTI <= 0 || d.Restart < 0 {
		return fmt.Errorf("failure: invalid Daly model %+v", d)
	}
	return nil
}

// ExpectedTimePerSegment returns the expected wall-clock time to complete
// one segment of tau seconds of useful work, checkpoint included, under
// exponential failures: E = e^{R/M} * M * (e^{(tau+delta)/M} - 1).
// (J. Daly, "A higher order estimate of the optimum checkpoint interval
// for restart dumps".)
func (d Daly) ExpectedTimePerSegment(tau float64) float64 {
	m := d.MTTI
	return math.Exp(d.Restart/m) * m * (math.Exp((tau+d.Delta)/m) - 1)
}

// Utilization returns useful work divided by expected wall-clock time at
// checkpoint interval tau.
func (d Daly) Utilization(tau float64) float64 {
	if tau <= 0 {
		return 0
	}
	return tau / d.ExpectedTimePerSegment(tau)
}

// OptimalInterval numerically maximizes utilization over tau. It brackets
// around the first-order estimate sqrt(2*delta*MTTI) and refines by golden
// section search.
func (d Daly) OptimalInterval() float64 {
	if err := d.validate(); err != nil {
		panic(err)
	}
	guess := math.Sqrt(2 * d.Delta * d.MTTI)
	lo, hi := guess/32, guess*32
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	e := a + phi*(b-a)
	f := func(t float64) float64 { return -d.Utilization(t) }
	fc, fe := f(c), f(e)
	for i := 0; i < 200 && (b-a) > 1e-9*guess; i++ {
		if fc < fe {
			b, e, fe = e, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, e, fe
			e = a + phi*(b-a)
			fe = f(e)
		}
	}
	return (a + b) / 2
}

// OptimalUtilization is the utilization at the optimal interval — the
// "effective application utilization" plotted in Figure 5.
func (d Daly) OptimalUtilization() float64 {
	return d.Utilization(d.OptimalInterval())
}

// Projection holds the Figure 4 growth model: the largest systems grow
// aggregate speed 100% per year (top500 trend) while per-chip speed grows
// at Moore's-law-or-slower doubling periods, so chip counts — and with the
// observed ~0.1 interrupts per chip-year, interrupt rates — grow
// relentlessly.
type Projection struct {
	BaseYear int
	// BaseChips is the number of processor chips in the BaseYear system
	// (the report baselines a 1 PFLOP system in 2008).
	BaseChips float64
	// SystemGrowthPerYear is the aggregate speed multiplier per year (2.0
	// = 100%/year).
	SystemGrowthPerYear float64
	// ChipDoublingMonths is the per-chip speed doubling period (18 =
	// Moore's law; 24 or 30 model the multicore slowdown).
	ChipDoublingMonths float64
	// InterruptsPerChipYear is the empirical per-chip interrupt rate
	// (the report uses an optimistic 0.1).
	InterruptsPerChipYear float64
}

// ReportProjection returns the parameters used in the report's Figure 4,
// with the given chip-speed doubling period in months.
func ReportProjection(chipDoublingMonths float64) Projection {
	return Projection{
		BaseYear:              2008,
		BaseChips:             20000, // ~1 PFLOP system of 2008
		SystemGrowthPerYear:   2.0,
		ChipDoublingMonths:    chipDoublingMonths,
		InterruptsPerChipYear: 0.1,
	}
}

// Chips returns the projected chip count in the given year.
func (p Projection) Chips(year int) float64 {
	dy := float64(year - p.BaseYear)
	system := math.Pow(p.SystemGrowthPerYear, dy)
	chip := math.Pow(2, dy*12/p.ChipDoublingMonths)
	return p.BaseChips * system / chip
}

// MTTISeconds returns the projected system mean time to interrupt in
// seconds, assuming interrupts are linear in chips.
func (p Projection) MTTISeconds(year int) float64 {
	perYear := p.InterruptsPerChipYear * p.Chips(year)
	return SecondsPerYear / perYear
}

// SecondsPerYear converts the projection's per-year rates.
const SecondsPerYear = 365.25 * 24 * 3600

// UtilizationPoint is one year of the Figure 5 projection.
type UtilizationPoint struct {
	Year        int
	Chips       float64
	MTTI        float64 // seconds
	Delta       float64 // checkpoint capture seconds
	OptimalTau  float64
	Utilization float64
}

// BalancedUtilization projects effective application utilization year by
// year for a *balanced* system: memory and storage bandwidth both track
// aggregate speed, so the checkpoint capture time delta stays constant
// while MTTI shrinks. restart is the recovery cost in seconds.
func BalancedUtilization(p Projection, delta, restart float64, fromYear, toYear int) []UtilizationPoint {
	var out []UtilizationPoint
	for y := fromYear; y <= toYear; y++ {
		m := p.MTTISeconds(y)
		d := Daly{Delta: delta, Restart: restart, MTTI: m}
		out = append(out, UtilizationPoint{
			Year:        y,
			Chips:       p.Chips(y),
			MTTI:        m,
			Delta:       delta,
			OptimalTau:  d.OptimalInterval(),
			Utilization: d.OptimalUtilization(),
		})
	}
	return out
}

// CrossingYear returns the first year utilization falls below the
// threshold, or -1 if it never does in the projected range.
func CrossingYear(points []UtilizationPoint, threshold float64) int {
	for _, pt := range points {
		if pt.Utilization < threshold {
			return pt.Year
		}
	}
	return -1
}

// DiskGrowth quantifies the report's storage-cost argument: if disk
// bandwidth grows only diskBWGrowth per year (~20%) while required
// aggregate storage bandwidth grows bwGrowth per year, the disk *count*
// must grow by the ratio, compounding.
func DiskGrowth(bwGrowth, diskBWGrowth float64) float64 {
	return (1 + bwGrowth) / (1 + diskBWGrowth)
}

// ProcessPairsUtilization models the report's process-pairs alternative:
// running two copies of the computation halves peak utilization but nearly
// eliminates checkpoint overhead (checkpoints only at the interrupt rate).
func ProcessPairsUtilization(d Daly) float64 {
	// Duplicate every node: usable fraction is 0.5, and the surviving copy
	// checkpoints once per failure instead of continuously. The residual
	// overhead is one delta per MTTI.
	return 0.5 * (1 - d.Delta/(d.MTTI+d.Delta))
}
