package failure

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDalyOptimalIntervalNearFirstOrder(t *testing.T) {
	d := Daly{Delta: 600, Restart: 600, MTTI: 24 * 3600}
	got := d.OptimalInterval()
	first := math.Sqrt(2 * d.Delta * d.MTTI)
	if got < first*0.6 || got > first*1.4 {
		t.Fatalf("optimal tau = %v, want near sqrt(2*delta*M) = %v", got, first)
	}
}

func TestDalyUtilizationDecreasesWithMTTI(t *testing.T) {
	u := func(mtti float64) float64 {
		return Daly{Delta: 600, Restart: 60, MTTI: mtti}.OptimalUtilization()
	}
	if !(u(1e6) > u(1e5) && u(1e5) > u(1e4) && u(1e4) > u(2e3)) {
		t.Fatalf("utilization not monotone in MTTI: %v %v %v %v", u(1e6), u(1e5), u(1e4), u(2e3))
	}
}

func TestDalyOptimalIsOptimalProperty(t *testing.T) {
	f := func(rawDelta uint16, rawMTTI uint32) bool {
		delta := float64(rawDelta%1000) + 1
		mtti := float64(rawMTTI%100000) + 10*delta
		d := Daly{Delta: delta, Restart: delta, MTTI: mtti}
		tau := d.OptimalInterval()
		best := d.Utilization(tau)
		for _, alt := range []float64{tau * 0.5, tau * 0.8, tau * 1.25, tau * 2} {
			if d.Utilization(alt) > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDalyInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Daly did not panic")
		}
	}()
	Daly{Delta: 0, MTTI: 100}.OptimalInterval()
}

func TestProjectionChipsGrow(t *testing.T) {
	p := ReportProjection(18)
	if p.Chips(2008) != 20000 {
		t.Fatalf("base chips = %v, want 20000", p.Chips(2008))
	}
	// System 2x/yr, chips 1.587x/yr => chip count grows ~1.26x/yr.
	ratio := p.Chips(2009) / p.Chips(2008)
	if ratio < 1.2 || ratio > 1.3 {
		t.Fatalf("chip growth/yr = %v, want ~1.26", ratio)
	}
	// Slower chip speed growth means more chips.
	p30 := ReportProjection(30)
	if p30.Chips(2015) <= p.Chips(2015) {
		t.Fatal("slower per-chip growth should need more chips")
	}
}

func TestProjectionMTTIFallsToMinutesByExascale(t *testing.T) {
	// Figure 4's alarming conclusion: by the exascale era (~2018 with
	// 100%/yr growth from 1 PF in 2008) MTTI drops to tens of minutes or
	// less under Moore's-law chip growth.
	p := ReportProjection(18)
	m2008 := p.MTTISeconds(2008)
	m2018 := p.MTTISeconds(2018)
	if m2008 < 3600 {
		t.Fatalf("2008 MTTI = %v s, expected hours", m2008)
	}
	if m2018 > 3600 {
		t.Fatalf("2018 MTTI = %v s, expected well under an hour", m2018)
	}
	if m2018 >= m2008 {
		t.Fatal("MTTI must fall over time")
	}
}

func TestBalancedUtilizationCrossesBefore2014(t *testing.T) {
	// Figure 5: "the effective application utilization may cross under 50%
	// before 2014".
	p := ReportProjection(18)
	points := BalancedUtilization(p, 600, 600, 2008, 2020)
	year := CrossingYear(points, 0.5)
	if year == -1 || year > 2014 {
		t.Fatalf("50%% crossing year = %d, want <= 2014", year)
	}
	// And utilization in 2008 should still be healthy.
	if points[0].Utilization < 0.7 {
		t.Fatalf("2008 utilization = %v, want > 0.7", points[0].Utilization)
	}
	// Monotone decline.
	for i := 1; i < len(points); i++ {
		if points[i].Utilization >= points[i-1].Utilization {
			t.Fatalf("utilization not declining at %d", points[i].Year)
		}
	}
}

func TestSlowerChipGrowthCrossesEarlier(t *testing.T) {
	u18 := BalancedUtilization(ReportProjection(18), 600, 600, 2008, 2022)
	u30 := BalancedUtilization(ReportProjection(30), 600, 600, 2008, 2022)
	y18, y30 := CrossingYear(u18, 0.5), CrossingYear(u30, 0.5)
	if y30 == -1 || y18 == -1 || y30 > y18 {
		t.Fatalf("30-month doubling should cross earlier: y18=%d y30=%d", y18, y30)
	}
}

func TestDiskGrowthRates(t *testing.T) {
	// Balanced growth (100%/yr) on disks improving 20%/yr needs ~67%/yr
	// more disks.
	g := DiskGrowth(1.0, 0.2)
	if math.Abs(g-5.0/3.0) > 1e-12 {
		t.Fatalf("disk count growth = %v, want 1.667", g)
	}
}

func TestProcessPairsBeatsCheckpointingAtLowMTTI(t *testing.T) {
	// When MTTI gets very small, process pairs' flat ~50% beats
	// checkpoint/restart's collapsing utilization.
	d := Daly{Delta: 600, Restart: 600, MTTI: 1800}
	if cp := d.OptimalUtilization(); ProcessPairsUtilization(d) <= cp {
		t.Fatalf("process pairs %v should beat checkpointing %v at MTTI=30min",
			ProcessPairsUtilization(d), cp)
	}
}

func TestGenerateTraceRateMatchesSpec(t *testing.T) {
	spec := ClusterSpec{System: 0, Nodes: 1024, ChipsPerNode: 2, PerChipRate: 0.1, Shape: 1.0}
	years := 10.0
	events := GenerateTrace(spec, years, 7)
	wantPerYear := 0.1 * float64(spec.Chips())
	gotPerYear := float64(len(events)) / years
	if math.Abs(gotPerYear-wantPerYear)/wantPerYear > 0.15 {
		t.Fatalf("events/yr = %v, want ~%v", gotPerYear, wantPerYear)
	}
	// Events must be time ordered and in range.
	for i, e := range events {
		if e.At < 0 || e.At > years*SecondsPerYear {
			t.Fatalf("event %d at %v out of range", i, e.At)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Fatal("events out of order")
		}
		if e.Node < 0 || e.Node >= spec.Nodes {
			t.Fatalf("event node %d out of range", e.Node)
		}
	}
}

func TestBurstyTraceHasHighCV(t *testing.T) {
	smooth := Analyze(ClusterSpec{Nodes: 512, ChipsPerNode: 2, PerChipRate: 0.2, Shape: 1.0},
		GenerateTrace(ClusterSpec{System: 0, Nodes: 512, ChipsPerNode: 2, PerChipRate: 0.2, Shape: 1.0}, 10, 3), 10)
	bursty := Analyze(ClusterSpec{Nodes: 512, ChipsPerNode: 2, PerChipRate: 0.2, Shape: 0.6},
		GenerateTrace(ClusterSpec{System: 1, Nodes: 512, ChipsPerNode: 2, PerChipRate: 0.2, Shape: 0.6}, 10, 3), 10)
	if bursty.InterarrivalCV <= smooth.InterarrivalCV {
		t.Fatalf("bursty CV %v should exceed Poisson CV %v", bursty.InterarrivalCV, smooth.InterarrivalCV)
	}
	if smooth.InterarrivalCV < 0.8 || smooth.InterarrivalCV > 1.2 {
		t.Fatalf("Poisson CV = %v, want ~1", smooth.InterarrivalCV)
	}
}

func TestFitInterruptsVsChipsIsLinear(t *testing.T) {
	// The Figure 4 experiment: across a fleet of diverse clusters sharing
	// a per-chip rate, annual interrupts regress linearly on chip count.
	specs := LANLStyleFleet(22, 0.25, 0.8, 11)
	var sys []SystemStats
	for i, spec := range specs {
		events := GenerateTrace(spec, 9, int64(100+i))
		sys = append(sys, Analyze(spec, events, 9))
	}
	fit, err := FitInterruptsVsChips(sys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.9 {
		t.Fatalf("R2 = %v, want >= 0.9 (linear in chips)", fit.R2)
	}
	if math.Abs(fit.Slope-0.25)/0.25 > 0.2 {
		t.Fatalf("slope = %v interrupts/chip-year, want ~0.25", fit.Slope)
	}
}

func TestInvalidClusterSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	GenerateTrace(ClusterSpec{}, 1, 1)
}

func TestMergeTracesOrdered(t *testing.T) {
	a := []Event{{System: 0, At: 1}, {System: 0, At: 5}}
	b := []Event{{System: 1, At: 2}, {System: 1, At: 4}}
	m := MergeTraces(a, b)
	if len(m) != 4 {
		t.Fatalf("merged %d events, want 4", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].At < m[i-1].At {
			t.Fatal("merge not ordered")
		}
	}
}

func TestNodeInterruptCounts(t *testing.T) {
	events := []Event{{Node: 0}, {Node: 0}, {Node: 2}}
	counts := NodeInterruptCounts(events, 3)
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestObservedAFRFarExceedsDatasheet(t *testing.T) {
	// FAST'07 headline: field ARR of 2-6% vs datasheet ~0.88%.
	class := EnterpriseClass()
	fleet := SimulateFleet(class, 5000, 5, 21)
	afr := ObservedAFR(fleet)
	if afr < 2*class.DatasheetAFR() {
		t.Fatalf("observed AFR %v should far exceed datasheet %v", afr, class.DatasheetAFR())
	}
	if afr > 0.15 {
		t.Fatalf("observed AFR %v implausibly high", afr)
	}
}

func TestNoBathtubARRGrowsWithAge(t *testing.T) {
	fleet := SimulateFleet(EnterpriseClass(), 10000, 5, 22)
	// Year 1 must be the minimum (no infant mortality spike) and the
	// profile must climb.
	for _, y := range fleet[1:] {
		if y.ARR < fleet[0].ARR {
			t.Fatalf("year %d ARR %v below year 1 %v: bathtub-like", y.Year, y.ARR, fleet[0].ARR)
		}
	}
	if dep := BathtubDeparture(fleet); dep < 1.3 {
		t.Fatalf("ARR growth ratio = %v, want steady climb >= 1.3", dep)
	}
}

func TestEnterpriseAndNearlineSimilar(t *testing.T) {
	// The study found similar replacement rates for enterprise and
	// desktop-class drives.
	e := ObservedAFR(SimulateFleet(EnterpriseClass(), 5000, 5, 23))
	n := ObservedAFR(SimulateFleet(NearlineClass(), 5000, 5, 24))
	ratio := e / n
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("enterprise/nearline AFR ratio = %v, want within 2x", ratio)
	}
}

func TestReplacementInterarrivalsFitWeibull(t *testing.T) {
	gaps := ReplacementInterarrivals(EnterpriseClass(), 2000, 5, 25)
	if len(gaps) < 100 {
		t.Fatalf("too few replacement events: %d", len(gaps))
	}
	if _, err := stats.FitWeibull(gaps); err != nil {
		t.Fatal(err)
	}
}
