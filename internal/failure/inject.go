package failure

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stats"
)

// This file bridges the package's closed-form failure models into the
// discrete-event simulator: instead of only *predicting* how often servers
// die (Figure 4) and what that does to utilization (Figure 5), a drawn
// FaultPlan makes servers actually die inside a running simulation, so the
// analytic models can be validated against injected-failure measurements
// (the `faults` experiment in cmd/pdsirepro).

// OSSFaultSpec parameterizes a fault draw for a striped file system's
// object storage servers. Each server fails independently with Weibull
// interarrival times of the given shape, scaled so the mean matches MTBF —
// the same machinery as GenerateTrace, aimed at storage servers instead
// of compute nodes.
type OSSFaultSpec struct {
	// Servers is the number of object storage servers ("oss0"..).
	Servers int

	// MTBF is each server's mean time between failures in seconds.
	MTBF float64

	// Shape is the Weibull shape of interarrivals: 1.0 is Poisson, <1
	// gives the bursty, decreasing-hazard behaviour of the LANL traces.
	Shape float64

	// Downtime is how long each crash keeps a server down, in seconds.
	// Zero or negative makes every failure permanent for the run.
	Downtime float64

	// Horizon bounds the draw: failures are generated in [0, Horizon).
	Horizon float64

	// Target overrides the "oss<i>" naming convention (the one
	// internal/pfs resolves) when the plan drives another subsystem.
	Target func(i int) string

	// Bursts adds correlated multi-server failures on top of the
	// independent per-server draw. The zero value disables bursts and
	// keeps the draw byte-identical to the burst-free one.
	Bursts BurstSpec
}

// BurstSpec parameterizes correlated failure bursts: simultaneous
// multi-drive crashes of the kind a shared power rail, cooling zone, or
// rack switch produces, which the independent per-server Weibull streams
// of DrawOSSFaults can never generate. Bursts arrive as a Poisson
// process and crash Size randomly chosen servers at the same instant —
// exactly the overlapping-failure pattern that defeats single-parity
// redundancy and that the rebuild experiment uses to probe k+m groups.
type BurstSpec struct {
	// MTBB is the mean time between bursts in seconds; <= 0 disables
	// bursts entirely.
	MTBB float64

	// Size is the number of servers each burst crashes simultaneously
	// (minimum 2; values below are raised to 2).
	Size int

	// Downtime is each burst member's outage in seconds; zero inherits
	// the spec's Downtime (so zero there too means permanent).
	Downtime float64
}

func (s OSSFaultSpec) validate() error {
	if s.Servers < 1 || s.MTBF <= 0 || s.Shape <= 0 || s.Horizon <= 0 {
		return fmt.Errorf("failure: invalid OSS fault spec %+v", s)
	}
	return nil
}

// BurstStats reports what a burst-enabled draw actually scheduled.
type BurstStats struct {
	// Bursts counts burst arrivals inside the horizon; Crashes counts
	// the member crash events added to the plan.
	Bursts  int
	Crashes int

	// Skipped counts members dropped because the burst landed inside an
	// existing outage of theirs (a sim.FaultPlan admits no overlapping
	// per-target events, and a crash during an outage is unobservable
	// anyway).
	Skipped int
}

// plannedEvent is one (crash, outage) pair during plan assembly.
type plannedEvent struct {
	at   sim.Time
	down sim.Time
}

// end returns the first instant after the outage; a permanent failure
// (down <= 0) never ends.
func (e plannedEvent) end(horizon float64) sim.Time {
	if e.down <= 0 {
		return sim.Time(horizon)
	}
	return e.at + e.down
}

// DrawOSSFaults draws a deterministic fault plan from the spec: the same
// spec and seed always produce the same plan, and the plan is plain data,
// so the whole fault-injected simulation inherits the engine's
// reproducibility. Servers draw from independent streams (seed offset by
// server index), so adding a server never perturbs the others' schedules.
// With spec.Bursts armed, correlated multi-server crashes merge into the
// same plan (see DrawOSSFaultsDetailed for their accounting).
func DrawOSSFaults(spec OSSFaultSpec, seed int64) *sim.FaultPlan {
	plan, _ := DrawOSSFaultsDetailed(spec, seed)
	return plan
}

// DrawOSSFaultsDetailed is DrawOSSFaults plus the burst accounting. The
// burst stream is drawn from its own generator (independent of every
// per-server stream), each burst picks Size distinct members, and a
// member crash merges into that server's independent schedule unless it
// overlaps an existing outage — overlapping events are skipped (counted
// in Skipped) so the plan always validates.
func DrawOSSFaultsDetailed(spec OSSFaultSpec, seed int64) (*sim.FaultPlan, BurstStats) {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	target := spec.Target
	if target == nil {
		target = func(i int) string { return fmt.Sprintf("oss%d", i) }
	}
	scale := spec.MTBF / stats.Weibull{Shape: spec.Shape, Scale: 1}.Mean()
	d := stats.Weibull{Shape: spec.Shape, Scale: scale}
	down := sim.Time(spec.Downtime)
	if down < 0 {
		down = 0
	}
	events := make([][]plannedEvent, spec.Servers)
	for i := 0; i < spec.Servers; i++ {
		r := rand.New(rand.NewSource(seed + int64(i)))
		for t := d.Sample(r); t < spec.Horizon; t += d.Sample(r) {
			events[i] = append(events[i], plannedEvent{at: sim.Time(t), down: down})
			if down <= 0 {
				// Permanent failure: nothing later matters for this server.
				break
			}
			// Interarrivals restart after the recovery, not mid-outage.
			t += spec.Downtime
		}
	}
	var bs BurstStats
	if spec.Bursts.MTBB > 0 {
		bs = drawBursts(spec, seed, events)
	}
	plan := sim.NewFaultPlan()
	for i := 0; i < spec.Servers; i++ {
		name := target(i)
		for _, ev := range events[i] {
			plan.Add(name, ev.at, ev.down)
		}
	}
	return plan, bs
}

// drawBursts merges correlated burst crashes into the per-server event
// lists, keeping each list sorted and overlap-free. The burst stream's
// seed is decorrelated from the per-server streams (which use seed+i) by
// a fixed xor, so arming bursts never perturbs the independent draw.
func drawBursts(spec OSSFaultSpec, seed int64, events [][]plannedEvent) BurstStats {
	var bs BurstStats
	size := spec.Bursts.Size
	if size < 2 {
		size = 2
	}
	if size > spec.Servers {
		size = spec.Servers
	}
	bdown := sim.Time(spec.Bursts.Downtime)
	if bdown <= 0 {
		bdown = sim.Time(spec.Downtime)
	}
	if bdown < 0 {
		bdown = 0
	}
	r := rand.New(rand.NewSource(seed ^ 0x6273747273)) // "bstrs"
	for t := r.ExpFloat64() * spec.Bursts.MTBB; t < spec.Horizon; t += r.ExpFloat64() * spec.Bursts.MTBB {
		bs.Bursts++
		members := make(map[int]bool, size)
		for len(members) < size {
			members[r.Intn(spec.Servers)] = true
		}
		// Map iteration order is not deterministic; the plan must be.
		ordered := make([]int, 0, size)
		for i := 0; i < spec.Servers && len(ordered) < size; i++ {
			if members[i] {
				ordered = append(ordered, i)
			}
		}
		for _, i := range ordered {
			if ev, ok := insertEvent(events[i], plannedEvent{at: sim.Time(t), down: bdown}, spec.Horizon); ok {
				events[i] = ev
				bs.Crashes++
			} else {
				bs.Skipped++
			}
		}
	}
	return bs
}

// insertEvent splices ev into the sorted schedule if it neither lands
// inside an existing outage nor swallows a later event, preserving the
// FaultPlan invariants (sorted, non-overlapping, permanent-is-last).
func insertEvent(evs []plannedEvent, ev plannedEvent, horizon float64) ([]plannedEvent, bool) {
	pos := len(evs)
	for i, e := range evs {
		if ev.at < e.at {
			pos = i
			break
		}
	}
	if pos > 0 && evs[pos-1].end(horizon) > ev.at {
		return evs, false // lands inside the previous outage
	}
	if pos < len(evs) && ev.end(horizon) > evs[pos].at {
		return evs, false // its outage would swallow the next event
	}
	evs = append(evs, plannedEvent{})
	copy(evs[pos+1:], evs[pos:])
	evs[pos] = ev
	return evs, true
}
