package failure

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stats"
)

// This file bridges the package's closed-form failure models into the
// discrete-event simulator: instead of only *predicting* how often servers
// die (Figure 4) and what that does to utilization (Figure 5), a drawn
// FaultPlan makes servers actually die inside a running simulation, so the
// analytic models can be validated against injected-failure measurements
// (the `faults` experiment in cmd/pdsirepro).

// OSSFaultSpec parameterizes a fault draw for a striped file system's
// object storage servers. Each server fails independently with Weibull
// interarrival times of the given shape, scaled so the mean matches MTBF —
// the same machinery as GenerateTrace, aimed at storage servers instead
// of compute nodes.
type OSSFaultSpec struct {
	// Servers is the number of object storage servers ("oss0"..).
	Servers int

	// MTBF is each server's mean time between failures in seconds.
	MTBF float64

	// Shape is the Weibull shape of interarrivals: 1.0 is Poisson, <1
	// gives the bursty, decreasing-hazard behaviour of the LANL traces.
	Shape float64

	// Downtime is how long each crash keeps a server down, in seconds.
	// Zero or negative makes every failure permanent for the run.
	Downtime float64

	// Horizon bounds the draw: failures are generated in [0, Horizon).
	Horizon float64

	// Target overrides the "oss<i>" naming convention (the one
	// internal/pfs resolves) when the plan drives another subsystem.
	Target func(i int) string
}

func (s OSSFaultSpec) validate() error {
	if s.Servers < 1 || s.MTBF <= 0 || s.Shape <= 0 || s.Horizon <= 0 {
		return fmt.Errorf("failure: invalid OSS fault spec %+v", s)
	}
	return nil
}

// DrawOSSFaults draws a deterministic fault plan from the spec: the same
// spec and seed always produce the same plan, and the plan is plain data,
// so the whole fault-injected simulation inherits the engine's
// reproducibility. Servers draw from independent streams (seed offset by
// server index), so adding a server never perturbs the others' schedules.
func DrawOSSFaults(spec OSSFaultSpec, seed int64) *sim.FaultPlan {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	target := spec.Target
	if target == nil {
		target = func(i int) string { return fmt.Sprintf("oss%d", i) }
	}
	scale := spec.MTBF / stats.Weibull{Shape: spec.Shape, Scale: 1}.Mean()
	d := stats.Weibull{Shape: spec.Shape, Scale: scale}
	down := sim.Time(spec.Downtime)
	if down < 0 {
		down = 0
	}
	plan := sim.NewFaultPlan()
	for i := 0; i < spec.Servers; i++ {
		r := rand.New(rand.NewSource(seed + int64(i)))
		name := target(i)
		for t := d.Sample(r); t < spec.Horizon; t += d.Sample(r) {
			plan.Add(name, sim.Time(t), down)
			if down <= 0 {
				// Permanent failure: nothing later matters for this server.
				break
			}
			// Interarrivals restart after the recovery, not mid-outage.
			t += spec.Downtime
		}
	}
	return plan
}
