package hdf5sim

import (
	"testing"

	"repro/internal/pfs"
)

func fsCfg() pfs.Config { return pfs.LustreLike(8) }

func TestCodeAndLevelStrings(t *testing.T) {
	if Chombo.String() != "Chombo" || GCRM.String() != "GCRM" {
		t.Fatal("code names wrong")
	}
	names := map[StackLevel]string{
		Baseline:            "baseline",
		PlusAlignment:       "+alignment",
		PlusCollective:      "+collective buffering",
		PlusMetaAggregation: "+metadata aggregation",
		PlusStripeTuning:    "+stripe tuning",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(l), l.String(), want)
		}
	}
}

func TestAtLevelCumulative(t *testing.T) {
	c := AtLevel(Chombo, 8, 1<<20, PlusCollective)
	if !c.Align || !c.Collective || c.MetaAggregate || c.TuneStriping {
		t.Fatalf("PlusCollective flags = %+v", c)
	}
	b := AtLevel(Chombo, 8, 1<<20, Baseline)
	if b.Align || b.Collective {
		t.Fatalf("Baseline flags = %+v", b)
	}
}

func TestProgramsCoverAllBytes(t *testing.T) {
	for _, l := range []StackLevel{Baseline, PlusAlignment, PlusCollective, PlusStripeTuning} {
		cfg := AtLevel(GCRM, 16, 2<<20, l)
		progs := cfg.programs(fsCfg())
		var data int64
		for _, p := range progs {
			for _, o := range p.Ops {
				if o.Size > 512 && o.Off >= 16<<20 { // skip metadata ops
					data += o.Size
				}
			}
		}
		want := int64(16) * (2 << 20)
		// Alignment padding may round per-rank totals up slightly.
		if data < want*95/100 || data > want*120/100 {
			t.Fatalf("%v: programs carry %d data bytes, want ~%d", l, data, want)
		}
	}
}

func TestStackMonotonicallyImproves(t *testing.T) {
	// Figure 13's shape: each cumulative optimization raises bandwidth (or
	// at least never hurts).
	results := RunStack(fsCfg(), Chombo, 32, 2<<20)
	if len(results) != 5 {
		t.Fatalf("got %d levels", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Bandwidth < results[i-1].Bandwidth*0.95 {
			t.Fatalf("level %v (%.0f B/s) regressed vs %v (%.0f B/s)",
				results[i].Level, results[i].Bandwidth,
				results[i-1].Level, results[i-1].Bandwidth)
		}
	}
}

func TestFullStackOrderOfMagnitude(t *testing.T) {
	// "Increased parallel I/O performance by up to 33 times": demand at
	// least an order of magnitude end to end on the Lustre-like system.
	results := RunStack(fsCfg(), Chombo, 32, 2<<20)
	final := results[len(results)-1]
	if final.SpeedupVsBaseline < 8 {
		t.Fatalf("full stack speedup = %.1fx, want >= 8x", final.SpeedupVsBaseline)
	}
}

func TestGCRMAlsoImproves(t *testing.T) {
	results := RunStack(fsCfg(), GCRM, 32, 2<<20)
	final := results[len(results)-1]
	if final.SpeedupVsBaseline < 4 {
		t.Fatalf("GCRM stack speedup = %.1fx, want >= 4x", final.SpeedupVsBaseline)
	}
}

func TestTunedStackNearFSPeak(t *testing.T) {
	// "Raised performance close to the achievable peak of the underlying
	// file system": compare to the N-N streaming bandwidth on the same fs.
	results := RunStack(fsCfg(), Chombo, 32, 2<<20)
	final := results[len(results)-1]
	// Achievable peak approximated by aggregate server NIC bandwidth.
	cfg := fsCfg()
	peak := float64(cfg.NumServers) * cfg.ServerNetBW
	if final.Bandwidth < 0.25*peak {
		t.Fatalf("tuned bandwidth %.0f is below 25%% of peak %.0f", final.Bandwidth, peak)
	}
}

func TestDeterministic(t *testing.T) {
	a := RunStack(fsCfg(), Chombo, 8, 1<<20)
	b := RunStack(fsCfg(), Chombo, 8, 1<<20)
	for i := range a {
		if a[i].Bandwidth != b[i].Bandwidth {
			t.Fatal("non-deterministic stack results")
		}
	}
}
