// Package hdf5sim models the NERSC Parallel HDF5 Performance Analysis
// project (Figure 13 of the report): the cumulative effect of a stack of
// formatted-I/O optimizations on two demanding codes, Chombo (adaptive
// mesh refinement dumps) and GCRM (the Global Cloud Resolving Model).
// Baseline parallel HDF5 emitted many small unaligned writes interleaved
// with metadata updates; the tuning collaboration added, cumulatively:
//
//  1. chunk/stripe alignment (removes read-modify-write and false sharing),
//  2. collective buffering (two-phase I/O: aggregators assemble large
//     contiguous buffers before touching the file system),
//  3. metadata aggregation (defer + coalesce header updates to one rank),
//  4. stripe tuning (buffer size matched to a full stripe across servers),
//
// raising throughput up to ~33x and near the file system's achievable peak.
// Each optimization is a switch in Config; the model emits the resulting
// op streams and replays them on the simulated parallel file system.
package hdf5sim

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/workload"
)

// Code selects a modeled application profile.
type Code int

// Modeled codes.
const (
	Chombo Code = iota
	GCRM
)

func (c Code) String() string {
	if c == Chombo {
		return "Chombo"
	}
	return "GCRM"
}

// Config is one point in the optimization stack.
type Config struct {
	Code  Code
	Ranks int
	// BytesPerRank is each rank's share of the dump.
	BytesPerRank int64

	Align         bool
	Collective    bool
	MetaAggregate bool
	TuneStriping  bool

	// Aggregators is the number of collective-buffering writer ranks
	// (defaults to one per file system server when 0).
	Aggregators int
}

// profile returns the code's raw write granularity and metadata chattiness.
func (c Config) profile() (recordSize int64, metaEvery int64) {
	switch c.Code {
	case Chombo:
		// AMR boxes: modest variable records, frequent header updates.
		return 52 << 10, 8
	default:
		// GCRM: geodesic grid slabs, slightly larger but unaligned.
		return 112 << 10, 16
	}
}

// StackLevel names the cumulative optimization levels of Figure 13.
type StackLevel int

// Cumulative levels, each including all prior optimizations.
const (
	Baseline StackLevel = iota
	PlusAlignment
	PlusCollective
	PlusMetaAggregation
	PlusStripeTuning
)

func (l StackLevel) String() string {
	switch l {
	case Baseline:
		return "baseline"
	case PlusAlignment:
		return "+alignment"
	case PlusCollective:
		return "+collective buffering"
	case PlusMetaAggregation:
		return "+metadata aggregation"
	case PlusStripeTuning:
		return "+stripe tuning"
	default:
		return fmt.Sprintf("StackLevel(%d)", int(l))
	}
}

// AtLevel returns the config with the cumulative optimizations of level l.
func AtLevel(code Code, ranks int, bytesPerRank int64, l StackLevel) Config {
	return Config{
		Code:          code,
		Ranks:         ranks,
		BytesPerRank:  bytesPerRank,
		Align:         l >= PlusAlignment,
		Collective:    l >= PlusCollective,
		MetaAggregate: l >= PlusMetaAggregation,
		TuneStriping:  l >= PlusStripeTuning,
	}
}

// programs builds each rank's op stream under the configuration.
func (c Config) programs(fsCfg pfs.Config) []workload.Program {
	recSize, metaEvery := c.profile()
	progs := make([]workload.Program, c.Ranks)
	unit := fsCfg.StripeUnit

	aggs := c.Aggregators
	if aggs <= 0 {
		aggs = fsCfg.NumServers
	}
	if aggs > c.Ranks {
		aggs = c.Ranks
	}

	// Metadata region lives at the head of the file; data begins after, on
	// a lock-extent boundary so data writers never contend with the header.
	const metaBase = 0
	dataBase := int64(16 << 20)

	addMeta := func(ops []workload.Op, rank int, k int64) []workload.Op {
		if c.MetaAggregate {
			return ops // deferred; rank 0 writes one header at the end
		}
		// Unaligned tiny header update near the file head — every writer
		// touches the same region, the classic HDF5 serialization point.
		return append(ops, workload.Op{File: "/dump.h5", Off: metaBase + (k%8)*512, Size: 512})
	}

	switch {
	case !c.Collective:
		// Independent I/O: every rank writes its own records directly.
		nRecs := c.BytesPerRank / recSize
		if nRecs < 1 {
			nRecs = 1
		}
		for r := 0; r < c.Ranks; r++ {
			var ops []workload.Op
			for i := int64(0); i < nRecs; i++ {
				var off int64
				if c.Align {
					// Records padded to stripe-unit alignment, segmented
					// per rank: no two ranks share a unit.
					perRank := ((nRecs*recSize + unit - 1) / unit) * unit
					off = dataBase + int64(r)*perRank + i*((perRank+nRecs-1)/nRecs)
					off -= off % unit
					if i > 0 {
						off = dataBase + int64(r)*perRank + i*unit
					}
				} else {
					// Interleaved unaligned records across the shared file.
					off = dataBase + (i*int64(c.Ranks)+int64(r))*recSize
				}
				size := recSize
				if c.Align && size > unit {
					size = unit
				}
				ops = append(ops, workload.Op{File: "/dump.h5", Off: off, Size: size})
				if i%metaEvery == 0 {
					ops = addMeta(ops, r, i)
				}
			}
			var creates []string
			if r == 0 {
				creates = []string{"/dump.h5"}
			}
			progs[r] = workload.Program{Creates: creates, Ops: ops}
		}
	default:
		// Collective buffering: the data of all ranks funnels through
		// aggregators that write large aligned buffers. The shuffle cost
		// appears as extra bytes through the aggregator's client link:
		// each aggregator also "receives" the data (modeled by issuing the
		// writes themselves, which serializes on its NIC, plus a gather
		// op per buffer to a scratch region is unnecessary — the NIC
		// serialization already charges the volume).
		total := c.BytesPerRank * int64(c.Ranks)
		perAgg := total / int64(aggs)
		bufSize := int64(4 << 20)
		// Aggregator regions are spaced at perAgg by default; stripe tuning
		// additionally aligns each region to the file system's lock
		// granularity so no two aggregators ever share a lock extent (the
		// cb_align / Lustre-group-lock effect).
		spacing := perAgg
		if c.TuneStriping {
			bufSize = unit * int64(fsCfg.NumServers) // one full stripe row
			alignTo := fsCfg.LockGranularity
			if alignTo < unit {
				alignTo = unit
			}
			if rem := spacing % alignTo; rem != 0 {
				spacing += alignTo - rem
			}
		}
		for r := 0; r < c.Ranks; r++ {
			var ops []workload.Op
			if r < aggs {
				base := dataBase + int64(r)*spacing
				for off := int64(0); off < perAgg; off += bufSize {
					n := bufSize
					if perAgg-off < n {
						n = perAgg - off
					}
					// Aligned large writes, chunked to stripe units by the
					// underlying client.
					ops = append(ops, workload.Op{File: "/dump.h5", Off: base + off, Size: n})
					if !c.MetaAggregate && (off/bufSize)%metaEvery == 0 {
						ops = addMeta(ops, r, off/bufSize)
					}
				}
			}
			var creates []string
			if r == 0 {
				creates = []string{"/dump.h5"}
			}
			progs[r] = workload.Program{Creates: creates, Ops: ops}
		}
	}
	if c.MetaAggregate {
		// One coalesced header write by rank 0 at the end.
		progs[0].Ops = append(progs[0].Ops, workload.Op{File: "/dump.h5", Off: metaBase, Size: 64 << 10})
	}
	return progs
}

// Result is one measured stack level.
type Result struct {
	Level             StackLevel
	Config            Config
	Bandwidth         float64
	SpeedupVsBaseline float64
}

// RunStack measures every cumulative level on the given file system and
// returns them in order — the bars of Figure 13.
func RunStack(fsCfg pfs.Config, code Code, ranks int, bytesPerRank int64) []Result {
	levels := []StackLevel{Baseline, PlusAlignment, PlusCollective, PlusMetaAggregation, PlusStripeTuning}
	out := make([]Result, 0, len(levels))
	var base float64
	for _, l := range levels {
		cfg := AtLevel(code, ranks, bytesPerRank, l)
		res := workload.RunPrograms(fsCfg, cfg.programs(fsCfg))
		r := Result{Level: l, Config: cfg, Bandwidth: res.Bandwidth}
		if l == Baseline {
			base = res.Bandwidth
		}
		if base > 0 {
			r.SpeedupVsBaseline = res.Bandwidth / base
		}
		out = append(out, r)
	}
	return out
}
