package disk

import (
	"testing"

	"repro/internal/sim"
)

func TestNilCorruptorIsInert(t *testing.T) {
	var c *Corruptor
	if c.FaultIn(0, 1<<30, 1e9) {
		t.Fatal("nil corruptor reported a fault")
	}
	if c.Repair(0, 1<<30, 1e9) != 0 || c.Unrepaired(1e9) != 0 || c.Len() != 0 {
		t.Fatal("nil corruptor not inert")
	}
	if c.Stats() != (CorruptionStats{}) {
		t.Fatal("nil corruptor has stats")
	}
}

func TestCorruptorArrivalAndOverlap(t *testing.T) {
	c := NewCorruptor([]CorruptionEvent{
		{Offset: 4096, Length: 512, At: 10, Mode: MediaError},
		{Offset: 100, Length: 1024, At: 20, Mode: TornWrite},
	})
	// Before arrival: clean.
	if c.FaultIn(4096, 512, 5) {
		t.Fatal("fault reported before arrival")
	}
	// After arrival: overlapping reads hit, disjoint reads do not.
	if !c.FaultIn(4096, 512, 10) {
		t.Fatal("exact-overlap read missed the fault")
	}
	if !c.FaultIn(0, 4097, 15) {
		t.Fatal("partial-overlap read missed the fault")
	}
	if c.FaultIn(4608, 512, 15) {
		t.Fatal("adjacent read falsely hit")
	}
	// Second event arrives later.
	if c.FaultIn(100, 10, 15) {
		t.Fatal("torn write visible before arrival")
	}
	if !c.FaultIn(100, 10, 25) {
		t.Fatal("torn write missed after arrival")
	}
	if got := c.Unrepaired(25); got != 2 {
		t.Fatalf("Unrepaired = %d, want 2", got)
	}
}

func TestCorruptorRepairClearsFaults(t *testing.T) {
	c := NewCorruptor([]CorruptionEvent{
		{Offset: 0, Length: 512, At: 1},
		{Offset: 512, Length: 512, At: 1},
	})
	if n := c.Repair(0, 512, 2); n != 1 {
		t.Fatalf("Repair cleared %d events, want 1", n)
	}
	if c.FaultIn(0, 512, 3) {
		t.Fatal("repaired extent still faults")
	}
	if !c.FaultIn(512, 512, 3) {
		t.Fatal("repair leaked onto a disjoint event")
	}
	if n := c.Repair(0, 1024, 3); n != 1 {
		t.Fatalf("second Repair cleared %d events, want 1", n)
	}
	if c.Unrepaired(100) != 0 {
		t.Fatal("events left unrepaired")
	}
	st := c.Stats()
	if st.Arrived != 2 || st.Repaired != 2 {
		t.Fatalf("stats = %+v, want Arrived=2 Repaired=2", st)
	}
}

func TestCorruptorRepairIgnoresFutureEvents(t *testing.T) {
	c := NewCorruptor([]CorruptionEvent{{Offset: 0, Length: 512, At: 50}})
	if n := c.Repair(0, 1<<20, 10); n != 0 {
		t.Fatalf("Repair cleared %d future events", n)
	}
	if !c.FaultIn(0, 512, sim.Time(60)) {
		t.Fatal("future event lost by early repair")
	}
}
