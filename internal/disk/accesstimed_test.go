package disk

import "testing"

func TestAccessTimedDecompositionSumsToService(t *testing.T) {
	d := New(Enterprise2006())
	ref := New(Enterprise2006())
	ops := []struct{ off, size int64 }{
		{0, 64 << 10},        // sequential from park position
		{64 << 10, 64 << 10}, // continues the stream: no positioning
		{10 << 30, 4096},     // long seek
		{10 << 30, 4096},     // rewrite in place: head moved past, seeks back
		{100e9, 1 << 20},
	}
	for _, op := range ops {
		svc, det := d.AccessTimed(op.off, op.size)
		if got := det.SeekSec + det.RotationSec + det.TransferSec; float64(svc) != got {
			t.Fatalf("Access(%d,%d): detail sums to %v, service %v", op.off, op.size, got, svc)
		}
		if want := ref.Access(op.off, op.size); svc != want {
			t.Fatalf("AccessTimed(%d,%d) = %v, Access = %v", op.off, op.size, svc, want)
		}
		if det.TransferSec <= 0 {
			t.Fatalf("Access(%d,%d): non-positive transfer %v", op.off, op.size, det.TransferSec)
		}
	}
	// The second op streamed sequentially, so it must carry no
	// positioning cost.
	d2 := New(Enterprise2006())
	d2.Access(0, 64<<10)
	if _, det := d2.AccessTimed(64<<10, 64<<10); det.SeekSec != 0 || det.RotationSec != 0 {
		t.Fatalf("sequential access paid positioning: %+v", det)
	}
}

func TestAccessTimedZeroSize(t *testing.T) {
	d := New(Enterprise2006())
	svc, det := d.AccessTimed(100, 0)
	if svc != 0 || det != (AccessDetail{}) {
		t.Fatalf("zero-size access = %v, %+v", svc, det)
	}
}

func TestAccessTimedAllocatesNothing(t *testing.T) {
	d := New(Enterprise2006())
	if n := testing.AllocsPerRun(100, func() {
		d.AccessTimed(4096, 4096)
	}); n != 0 {
		t.Fatalf("AccessTimed allocated %v times per run, want 0", n)
	}
}
