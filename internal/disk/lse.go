package disk

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// This file models the failures that do not announce themselves: latent
// sector errors and bit rot. The PDSI report's reliability studies (and
// the LSE field study they cite) show sectors silently going bad between
// the write that stored them and the read that needs them — discovered
// only if someone checks. The model is deliberately stateful rather than
// byte-level: the striped-FS simulation above carries no payload, so a
// corruption is a fact about an extent ("bytes [off,off+len) on this
// drive are rotten since time t"), consulted by the integrity layer on
// every read and cleared when a repair rewrites the extent. The zero-cost
// rule holds: a nil *Corruptor answers every query negatively without
// allocating, so fault-free runs are untouched.

// CorruptionMode distinguishes how an extent went bad.
type CorruptionMode int

const (
	// MediaError is classic bit rot / a latent sector error: one sector
	// unreadable or silently wrong.
	MediaError CorruptionMode = iota

	// TornWrite is a multi-sector write that only partially reached the
	// medium — adjacent sectors are stale or garbage.
	TornWrite
)

func (m CorruptionMode) String() string {
	switch m {
	case MediaError:
		return "media-error"
	case TornWrite:
		return "torn-write"
	default:
		return fmt.Sprintf("CorruptionMode(%d)", int(m))
	}
}

// CorruptionEvent is one latent corruption: the byte range [Offset,
// Offset+Length) on a drive is silently wrong from time At onward, until
// some repair rewrites it. Events are plain data drawn ahead of the run
// (see failure.DrawLSE), so the whole corruption trajectory is
// deterministic per seed.
type CorruptionEvent struct {
	Offset, Length int64
	At             sim.Time
	Mode           CorruptionMode
}

// overlaps reports whether the event intersects [off, off+size).
func (e CorruptionEvent) overlaps(off, size int64) bool {
	return off < e.Offset+e.Length && e.Offset < off+size
}

// CorruptionStats counts a drive's corruption activity.
type CorruptionStats struct {
	// Arrived counts events whose arrival time has passed (monotone over
	// queries; an event is counted once).
	Arrived int64

	// Hits counts FaultIn queries that found live corruption.
	Hits int64

	// Repaired counts events cleared by Repair.
	Repaired int64
}

// Corruptor tracks latent corruption for one drive. It is pure state: the
// caller (the integrity layer in internal/pfs) decides what a hit means —
// detected and repaired when checksums are on, silently returned to the
// application when they are off. All methods are nil-safe no-ops so the
// fault-free path costs nothing.
type Corruptor struct {
	events   []CorruptionEvent
	repaired []bool
	arrived  []bool
	stats    CorruptionStats
}

// NewCorruptor returns a Corruptor armed with the given events (copied;
// sorted by arrival time for deterministic iteration). Nil or empty
// events return a valid Corruptor that never reports corruption.
func NewCorruptor(events []CorruptionEvent) *Corruptor {
	evs := append([]CorruptionEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, e := range evs {
		if e.Offset < 0 || e.Length <= 0 || e.At < 0 {
			panic(fmt.Sprintf("disk: invalid corruption event %+v", e))
		}
	}
	return &Corruptor{
		events:   evs,
		repaired: make([]bool, len(evs)),
		arrived:  make([]bool, len(evs)),
	}
}

// Add arms one more event at run time — how a torn burst-buffer drain
// lands corruption discovered mid-simulation rather than drawn ahead of
// it. The event is inserted in arrival order so the sorted-by-At
// invariant every query relies on still holds; an event whose At has
// already passed is legal and becomes visible to the next query.
// Invalid events panic exactly as NewCorruptor's do.
func (c *Corruptor) Add(e CorruptionEvent) {
	if e.Offset < 0 || e.Length <= 0 || e.At < 0 {
		panic(fmt.Sprintf("disk: invalid corruption event %+v", e))
	}
	i := sort.Search(len(c.events), func(i int) bool { return c.events[i].At > e.At })
	c.events = append(c.events, CorruptionEvent{})
	c.repaired = append(c.repaired, false)
	c.arrived = append(c.arrived, false)
	copy(c.events[i+1:], c.events[i:])
	copy(c.repaired[i+1:], c.repaired[i:])
	copy(c.arrived[i+1:], c.arrived[i:])
	c.events[i] = e
	c.repaired[i] = false
	c.arrived[i] = false
}

// Len reports the total number of armed events (0 on nil).
func (c *Corruptor) Len() int {
	if c == nil {
		return 0
	}
	return len(c.events)
}

// markArrivals advances the arrival accounting to time now.
func (c *Corruptor) markArrivals(now sim.Time) {
	for i := range c.events {
		if c.events[i].At > now {
			break // events sorted by At
		}
		if !c.arrived[i] {
			c.arrived[i] = true
			c.stats.Arrived++
		}
	}
}

// FaultIn reports whether any unrepaired corruption that has arrived by
// now overlaps the read [off, off+size). Nil receivers report false.
func (c *Corruptor) FaultIn(off, size int64, now sim.Time) bool {
	if c == nil || len(c.events) == 0 || size <= 0 {
		return false
	}
	c.markArrivals(now)
	for i, e := range c.events {
		if e.At > now {
			break
		}
		if !c.repaired[i] && e.overlaps(off, size) {
			c.stats.Hits++
			return true
		}
	}
	return false
}

// Repair clears every arrived, unrepaired event overlapping [off,
// off+size) — the rewrite that a checksum-triggered reconstruction or a
// scrub pass performs — and returns how many events it cleared.
func (c *Corruptor) Repair(off, size int64, now sim.Time) int {
	if c == nil || len(c.events) == 0 || size <= 0 {
		return 0
	}
	c.markArrivals(now)
	n := 0
	for i, e := range c.events {
		if e.At > now {
			break
		}
		if !c.repaired[i] && e.overlaps(off, size) {
			c.repaired[i] = true
			c.stats.Repaired++
			n++
		}
	}
	return n
}

// Unrepaired counts events that have arrived by now and not been
// repaired — the drive's live latent corruption.
func (c *Corruptor) Unrepaired(now sim.Time) int {
	if c == nil {
		return 0
	}
	c.markArrivals(now)
	n := 0
	for i, e := range c.events {
		if e.At > now {
			break
		}
		if !c.repaired[i] {
			n++
		}
	}
	return n
}

// Stats returns the accumulated corruption accounting (zero value on nil).
func (c *Corruptor) Stats() CorruptionStats {
	if c == nil {
		return CorruptionStats{}
	}
	return c.stats
}
