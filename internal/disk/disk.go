// Package disk models a mechanical disk drive: positioning time (seek plus
// rotational latency) followed by media transfer. The model captures the
// single most important fact driving every result in the PDSI report — the
// enormous gap between sequential streaming bandwidth and small random I/O
// throughput (~100 IOPS for a 2006-era drive) — without simulating track
// geometry in detail.
package disk

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Geometry describes a drive. The zero value is invalid; use a preset or
// fill every field.
type Geometry struct {
	Name string

	// CapacityBytes is the addressable capacity.
	CapacityBytes int64

	// SeqBandwidth is sustained media transfer rate in bytes/second.
	SeqBandwidth float64

	// FullSeek is the full-stroke seek time in seconds; TrackSeek is the
	// track-to-track (minimum) seek.
	FullSeek  float64
	TrackSeek float64

	// RPM sets rotational latency (average is half a revolution).
	RPM float64
}

// AvgRotation returns the average rotational latency (half a revolution).
func (g Geometry) AvgRotation() float64 {
	if g.RPM <= 0 {
		return 0
	}
	return 0.5 * 60.0 / g.RPM
}

// Enterprise2006 is a 10K RPM FC/SCSI-class drive of the report's era.
func Enterprise2006() Geometry {
	return Geometry{
		Name:          "enterprise-10k-2006",
		CapacityBytes: 300e9,
		SeqBandwidth:  80e6,
		FullSeek:      8e-3,
		TrackSeek:     0.4e-3,
		RPM:           10000,
	}
}

// Nearline2006 is a 7200 RPM SATA capacity drive.
func Nearline2006() Geometry {
	return Geometry{
		Name:          "nearline-7200-2006",
		CapacityBytes: 750e9,
		SeqBandwidth:  70e6,
		FullSeek:      12e-3,
		TrackSeek:     0.8e-3,
		RPM:           7200,
	}
}

// Disk is a stateful drive: it remembers the head position so that
// sequential access streams at full bandwidth while scattered access pays
// positioning costs. Disk computes service times; queueing is layered on
// top with a sim.Server.
type Disk struct {
	Geom Geometry

	// headPos is the byte offset the head is parked after the last I/O.
	headPos int64

	stats Stats
}

// Stats decomposes accumulated service time into its mechanical parts.
// The seek/rotation vs transfer split is the single most diagnostic
// number in the simulator: a workload whose positioning time dominates
// its transfer time is the pathology PLFS exists to remove.
type Stats struct {
	// Accesses counts I/Os; Positioned counts the subset that paid a seek
	// plus rotational latency (i.e. were not sequential with the previous
	// I/O).
	Accesses   int64
	Positioned int64

	// SeekSec, RotationSec, and TransferSec partition total service time.
	SeekSec     float64
	RotationSec float64
	TransferSec float64
}

// New returns a Disk with the head at offset 0.
func New(g Geometry) *Disk {
	if g.CapacityBytes <= 0 || g.SeqBandwidth <= 0 {
		panic(fmt.Sprintf("disk: invalid geometry %+v", g))
	}
	return &Disk{Geom: g}
}

// seekTime models seek as track-to-track cost plus a square-root curve to
// full stroke, the standard first-order approximation.
func (d *Disk) seekTime(from, to int64) float64 {
	if from == to {
		return 0
	}
	dist := math.Abs(float64(to - from))
	frac := dist / float64(d.Geom.CapacityBytes)
	if frac > 1 {
		frac = 1
	}
	return d.Geom.TrackSeek + (d.Geom.FullSeek-d.Geom.TrackSeek)*math.Sqrt(frac)
}

// AccessDetail decomposes one I/O's service time into its mechanical
// parts — the per-operation analogue of the accumulated Stats split.
// Latency-attribution probes feed these into per-stage quantiles.
type AccessDetail struct {
	SeekSec     float64
	RotationSec float64
	TransferSec float64
}

// Access returns the service time for an I/O of size bytes at offset and
// advances the head. Reads and writes are symmetric in this model.
func (d *Disk) Access(offset, size int64) sim.Time {
	t, _ := d.AccessTimed(offset, size)
	return t
}

// AccessTimed is Access plus the mechanical decomposition of that one
// I/O's service time. It allocates nothing, so probed hot paths can call
// it unconditionally.
func (d *Disk) AccessTimed(offset, size int64) (sim.Time, AccessDetail) {
	var det AccessDetail
	if size <= 0 {
		return 0, det
	}
	if offset != d.headPos {
		det.SeekSec = d.seekTime(d.headPos, offset)
		det.RotationSec = d.Geom.AvgRotation()
		d.stats.Positioned++
		d.stats.SeekSec += det.SeekSec
		d.stats.RotationSec += det.RotationSec
	}
	det.TransferSec = float64(size) / d.Geom.SeqBandwidth
	d.stats.Accesses++
	d.stats.TransferSec += det.TransferSec
	d.headPos = offset + size
	return sim.Time(det.SeekSec + det.RotationSec + det.TransferSec), det
}

// Stats returns the accumulated service-time decomposition.
func (d *Disk) Stats() Stats { return d.stats }

// SeqTime returns the pure streaming time for size bytes, ignoring head
// state (a convenience for back-of-envelope comparisons).
func (d *Disk) SeqTime(size int64) sim.Time {
	return sim.Time(float64(size) / d.Geom.SeqBandwidth)
}

// RandomIOPS estimates steady-state random IOPS at the given request size,
// assuming every request pays an average seek (one third of full stroke
// distance) plus average rotation.
func (d *Disk) RandomIOPS(size int64) float64 {
	avgSeek := d.Geom.TrackSeek + (d.Geom.FullSeek-d.Geom.TrackSeek)*math.Sqrt(1.0/3.0)
	per := avgSeek + d.Geom.AvgRotation() + float64(size)/d.Geom.SeqBandwidth
	return 1 / per
}

// HeadPos reports the current head byte offset (for tests).
func (d *Disk) HeadPos() int64 { return d.headPos }

// Reset parks the head back at offset zero.
func (d *Disk) Reset() { d.headPos = 0 }
