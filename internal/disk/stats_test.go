package disk

import (
	"math"
	"testing"
)

func TestStatsSplitSequentialStream(t *testing.T) {
	d := New(Enterprise2006())
	// Head starts at 0; the first access at 0 is sequential, and each
	// subsequent access continues where the last ended.
	var off int64
	for i := 0; i < 10; i++ {
		d.Access(off, 1<<20)
		off += 1 << 20
	}
	s := d.Stats()
	if s.Accesses != 10 || s.Positioned != 0 {
		t.Fatalf("accesses %d positioned %d, want 10/0", s.Accesses, s.Positioned)
	}
	if s.SeekSec != 0 || s.RotationSec != 0 {
		t.Fatalf("sequential stream paid positioning: seek %v rot %v", s.SeekSec, s.RotationSec)
	}
	wantTransfer := float64(10<<20) / d.Geom.SeqBandwidth
	if math.Abs(s.TransferSec-wantTransfer) > 1e-12 {
		t.Fatalf("transfer = %v, want %v", s.TransferSec, wantTransfer)
	}
}

func TestStatsSplitScatteredAccess(t *testing.T) {
	d := New(Enterprise2006())
	// Jump around: every access after the first lands away from the head.
	offsets := []int64{10 << 20, 500 << 20, 1 << 30, 40 << 20}
	for _, off := range offsets {
		d.Access(off, 4096)
	}
	s := d.Stats()
	if s.Accesses != 4 || s.Positioned != 4 {
		t.Fatalf("accesses %d positioned %d, want 4/4", s.Accesses, s.Positioned)
	}
	if s.SeekSec <= 0 || s.RotationSec <= 0 {
		t.Fatalf("scattered access free: seek %v rot %v", s.SeekSec, s.RotationSec)
	}
	// Four average rotational latencies, exactly.
	wantRot := 4 * d.Geom.AvgRotation()
	if math.Abs(s.RotationSec-wantRot) > 1e-12 {
		t.Fatalf("rotation = %v, want %v", s.RotationSec, wantRot)
	}
	// For small random I/O, positioning must dominate transfer — the
	// pathology the report (and PLFS) is about.
	if s.SeekSec+s.RotationSec < 10*s.TransferSec {
		t.Fatalf("positioning %v should dwarf transfer %v",
			s.SeekSec+s.RotationSec, s.TransferSec)
	}
}

func TestStatsAccountAllServiceTime(t *testing.T) {
	d := New(Nearline2006())
	var total float64
	for _, off := range []int64{0, 1 << 30, 1<<30 + 4096, 77 << 20} {
		total += float64(d.Access(off, 4096))
	}
	s := d.Stats()
	if got := s.SeekSec + s.RotationSec + s.TransferSec; math.Abs(got-total) > 1e-12 {
		t.Fatalf("stats sum %v != returned service time sum %v", got, total)
	}
}
