package disk

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestSequentialAccessHasNoPositioning(t *testing.T) {
	d := New(Enterprise2006())
	const chunk = 1 << 20
	first := d.Access(0, chunk)
	second := d.Access(chunk, chunk) // head is already there
	want := d.SeqTime(chunk)
	if second != want {
		t.Fatalf("sequential access = %v, want pure transfer %v", second, want)
	}
	if first != want {
		t.Fatalf("first access from parked head at 0 = %v, want %v", first, want)
	}
}

func TestRandomAccessPaysSeekAndRotation(t *testing.T) {
	d := New(Enterprise2006())
	d.Access(0, 4096)
	far := d.Geom.CapacityBytes / 2
	got := d.Access(far, 4096)
	minPositioning := sim.Time(d.Geom.TrackSeek + d.Geom.AvgRotation())
	if got <= minPositioning {
		t.Fatalf("random access %v should exceed positioning floor %v", got, minPositioning)
	}
}

func TestSeekMonotoneInDistance(t *testing.T) {
	d := New(Enterprise2006())
	prev := 0.0
	for _, frac := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		to := int64(frac * float64(d.Geom.CapacityBytes))
		s := d.seekTime(0, to)
		if s <= prev {
			t.Fatalf("seek(%v) = %v not monotone (prev %v)", frac, s, prev)
		}
		prev = s
	}
	if s := d.seekTime(100, 100); s != 0 {
		t.Fatalf("zero-distance seek = %v, want 0", s)
	}
	full := d.seekTime(0, d.Geom.CapacityBytes)
	if full > d.Geom.FullSeek+1e-12 {
		t.Fatalf("full-stroke seek %v exceeds FullSeek %v", full, d.Geom.FullSeek)
	}
}

func TestRandomIOPSMatchesEraDrives(t *testing.T) {
	// The report repeatedly quotes "closer to 100 IOPS" for magnetic disks.
	iops := New(Enterprise2006()).RandomIOPS(4096)
	if iops < 80 || iops > 180 {
		t.Fatalf("enterprise random 4K IOPS = %.0f, want O(100)", iops)
	}
	nl := New(Nearline2006()).RandomIOPS(4096)
	if nl >= iops {
		t.Fatalf("nearline IOPS %.0f should trail enterprise %.0f", nl, iops)
	}
}

func TestSequentialVsRandomGap(t *testing.T) {
	// Streaming bandwidth should exceed random 4K throughput by >100x:
	// this gap is what PLFS exploits.
	d := New(Enterprise2006())
	seqBytesPerSec := d.Geom.SeqBandwidth
	randBytesPerSec := d.RandomIOPS(4096) * 4096
	if ratio := seqBytesPerSec / randBytesPerSec; ratio < 100 {
		t.Fatalf("seq/random bandwidth ratio = %.0f, want > 100", ratio)
	}
}

func TestAccessAdvancesHead(t *testing.T) {
	d := New(Nearline2006())
	d.Access(1000, 500)
	if d.HeadPos() != 1500 {
		t.Fatalf("HeadPos = %d, want 1500", d.HeadPos())
	}
	d.Reset()
	if d.HeadPos() != 0 {
		t.Fatalf("Reset did not park head")
	}
}

func TestZeroSizeAccessFree(t *testing.T) {
	d := New(Enterprise2006())
	if got := d.Access(12345, 0); got != 0 {
		t.Fatalf("zero-size access = %v, want 0", got)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero geometry did not panic")
		}
	}()
	New(Geometry{})
}

func TestWorkloadTimeDeterminism(t *testing.T) {
	run := func() sim.Time {
		d := New(Enterprise2006())
		r := rand.New(rand.NewSource(7))
		var total sim.Time
		for i := 0; i < 1000; i++ {
			off := r.Int63n(d.Geom.CapacityBytes - 8192)
			total += d.Access(off, 8192)
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
}
