package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 0.5}
	r := rng()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	got := sum / n
	if math.Abs(got-2) > 0.05 {
		t.Fatalf("sample mean = %v, want ~2", got)
	}
	if d.Mean() != 2 {
		t.Fatalf("Mean() = %v, want 2", d.Mean())
	}
}

func TestWeibullMeanAndCDF(t *testing.T) {
	d := Weibull{Shape: 0.7, Scale: 100}
	r := rng()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	got := sum / n
	want := d.Mean()
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("sample mean = %v, want ~%v", got, want)
	}
	if d.CDF(0) != 0 {
		t.Errorf("CDF(0) = %v, want 0", d.CDF(0))
	}
	if c := d.CDF(1e9); c < 0.999999 {
		t.Errorf("CDF(inf) = %v, want ~1", c)
	}
	// Shape < 1 means decreasing hazard.
	if d.Hazard(10) <= d.Hazard(1000) {
		t.Errorf("shape<1 hazard should decrease: h(10)=%v h(1000)=%v", d.Hazard(10), d.Hazard(1000))
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w := Weibull{Shape: 1, Scale: 10}
	e := Exponential{Rate: 0.1}
	for _, x := range []float64{1, 5, 20, 100} {
		we := w.CDF(x)
		ee := 1 - math.Exp(-e.Rate*x)
		if math.Abs(we-ee) > 1e-12 {
			t.Fatalf("Weibull(k=1) CDF(%v)=%v != Exponential CDF %v", x, we, ee)
		}
	}
}

func TestLognormalCDFMedian(t *testing.T) {
	d := Lognormal{Mu: math.Log(4096), Sigma: 2}
	if got := d.CDF(4096); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CDF(median) = %v, want 0.5", got)
	}
	if d.CDF(-1) != 0 {
		t.Fatalf("CDF(-1) = %v, want 0", d.CDF(-1))
	}
}

func TestParetoSampleAboveXm(t *testing.T) {
	d := Pareto{Xm: 3, Alpha: 2}
	r := rng()
	for i := 0; i < 1000; i++ {
		if v := d.Sample(r); v < 3 {
			t.Fatalf("Pareto sample %v below xm", v)
		}
	}
	if got := d.Mean(); got != 6 {
		t.Fatalf("Mean() = %v, want 6", got)
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("Mean() with alpha<=1 should be +Inf")
	}
}

func TestMixtureMeanAndSampling(t *testing.T) {
	m := Mixture{
		Components: []Dist{Constant{V: 1}, Constant{V: 10}},
		Weights:    []float64{3, 1},
	}
	if got, want := m.Mean(), (3*1+1*10)/4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean() = %v, want %v", got, want)
	}
	r := rng()
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("component 1 drawn %.3f of the time, want ~0.75", frac)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v, want sqrt(2.5)", s.Stddev)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("empty summary N = %d", empty.N)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 0.5); got != 5 {
		t.Fatalf("P50 of [0,10] = %v, want 5", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element percentile = %v, want 7", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if got := e.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", got)
	}
	if got := e.At(0); got != 0 {
		t.Fatalf("At(0) = %v, want 0", got)
	}
	if got := e.At(100); got != 1 {
		t.Fatalf("At(100) = %v, want 1", got)
	}
	xs, ys := e.Points(4)
	if len(xs) != 4 || ys[3] != 1 {
		t.Fatalf("Points = %v %v", xs, ys)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = v
		}
		e := NewECDF(vals)
		prev := -1.0
		for _, x := range vals {
			p := e.At(x)
			if p < 0 || p > 1 {
				return false
			}
			_ = prev
		}
		// Monotonicity over a sweep.
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		last := 0.0
		for i := 0; i <= 10; i++ {
			x := lo + (hi-lo)*float64(i)/10
			p := e.At(x)
			if p+1e-12 < last {
				return false
			}
			last = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to bin 0
	h.Add(50) // clamps to last bin
	if h.Total != 12 {
		t.Fatalf("Total = %d, want 12", h.Total)
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts)
	}
	if got := h.Fraction(0); math.Abs(got-2.0/12) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", got)
	}
}

func TestFitLinearRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-3) > 1e-9 || math.Abs(f.Intercept-7) > 1e-9 || f.R2 < 0.999999 {
		t.Fatalf("fit = %+v, want slope 3 intercept 7 r2 1", f)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("short input should error")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x should error")
	}
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	truth := Weibull{Shape: 0.8, Scale: 250}
	r := rng()
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = truth.Sample(r)
	}
	got, err := FitWeibull(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Shape-truth.Shape)/truth.Shape > 0.1 {
		t.Fatalf("shape = %v, want ~%v", got.Shape, truth.Shape)
	}
	if math.Abs(got.Scale-truth.Scale)/truth.Scale > 0.1 {
		t.Fatalf("scale = %v, want ~%v", got.Scale, truth.Scale)
	}
}

func TestFitWeibullDistinguishesExponential(t *testing.T) {
	// An exponential sample should fit with shape ~1; a decreasing-hazard
	// sample should fit with shape well below 1. This is the statistical
	// heart of the FAST'07 "no bathtub" result.
	r := rng()
	expSample := make([]float64, 4000)
	for i := range expSample {
		expSample[i] = Exponential{Rate: 1.0 / 100}.Sample(r)
	}
	wSample := make([]float64, 4000)
	for i := range wSample {
		wSample[i] = Weibull{Shape: 0.6, Scale: 100}.Sample(r)
	}
	fe, err := FitWeibull(expSample)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := FitWeibull(wSample)
	if err != nil {
		t.Fatal(err)
	}
	if fe.Shape < 0.9 || fe.Shape > 1.1 {
		t.Fatalf("exponential sample fit shape %v, want ~1", fe.Shape)
	}
	if fw.Shape > 0.7 {
		t.Fatalf("weibull(0.6) sample fit shape %v, want < 0.7", fw.Shape)
	}
}

func TestAutoCorrelation(t *testing.T) {
	// A strongly alternating series has negative lag-1 autocorrelation.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if ac := AutoCorrelation(alt, 1); ac > -0.9 {
		t.Fatalf("alternating lag-1 autocorr = %v, want ~-1", ac)
	}
	// A linear ramp has strong positive lag-1 autocorrelation.
	ramp := make([]float64, 100)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if ac := AutoCorrelation(ramp, 1); ac < 0.9 {
		t.Fatalf("ramp lag-1 autocorr = %v, want ~1", ac)
	}
	if !math.IsNaN(AutoCorrelation(ramp, 0)) {
		t.Fatal("lag 0 should be NaN (invalid)")
	}
}

func TestDistributionSamplesNonNegativeProperty(t *testing.T) {
	r := rng()
	dists := []Dist{
		Exponential{Rate: 2},
		Weibull{Shape: 0.7, Scale: 10},
		Lognormal{Mu: 0, Sigma: 1},
		Pareto{Xm: 1, Alpha: 1.5},
		Uniform{Lo: 0, Hi: 5},
	}
	for _, d := range dists {
		for i := 0; i < 1000; i++ {
			if v := d.Sample(r); v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%T sample %v invalid", d, v)
			}
		}
	}
}
