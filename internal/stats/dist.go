// Package stats provides the probability distributions, empirical CDFs,
// summary statistics, and model-fitting helpers used across the PDSI
// reproduction: Weibull hazards for the failure characterization work
// (Schroeder & Gibson, FAST'07), lognormal file-size populations for the
// fsstats survey, and exponential/Pareto interarrivals for workloads.
package stats

import (
	"math"
	"math/rand"
)

// Dist is a sampleable distribution. Every implementation is deterministic
// given the *rand.Rand it samples from.
type Dist interface {
	// Sample draws one value.
	Sample(r *rand.Rand) float64
	// Mean returns the distribution mean.
	Mean() float64
}

// Exponential is the memoryless distribution with the given rate (1/mean).
type Exponential struct{ Rate float64 }

// Sample draws an exponential variate via inversion.
func (d Exponential) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / d.Rate
}

// Mean returns 1/Rate.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// Weibull has shape k and scale lambda. The FAST'07 disk-replacement study
// found field replacement data fit Weibull shapes around 0.7-0.8 (a
// decreasing hazard early, then steadily increasing replacement rates with
// age) rather than the "bathtub" assumed by vendors.
type Weibull struct {
	Shape float64 // k
	Scale float64 // lambda
}

// Sample draws a Weibull variate via inversion.
func (d Weibull) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return d.Scale * math.Pow(-math.Log(u), 1/d.Shape)
}

// Mean returns lambda * Gamma(1 + 1/k).
func (d Weibull) Mean() float64 { return d.Scale * math.Gamma(1+1/d.Shape) }

// Hazard returns the instantaneous failure rate at age t.
func (d Weibull) Hazard(t float64) float64 {
	if t <= 0 {
		t = 1e-12
	}
	return (d.Shape / d.Scale) * math.Pow(t/d.Scale, d.Shape-1)
}

// CDF returns P(X <= t).
func (d Weibull) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(t/d.Scale, d.Shape))
}

// Lognormal has the given mu and sigma of the underlying normal. File size
// distributions in the Dayal fsstats survey are heavy-tailed and well
// approximated by lognormals with large sigma.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a lognormal variate.
func (d Lognormal) Sample(r *rand.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// CDF returns P(X <= t).
func (d Lognormal) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(t)-d.Mu)/(d.Sigma*math.Sqrt2))
}

// Pareto is the heavy-tailed distribution with minimum xm and tail index
// alpha, used for burst sizes and large-file tails.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws a Pareto variate via inversion.
func (d Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean returns alpha*xm/(alpha-1) for alpha > 1, +Inf otherwise.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Uniform is uniform on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniform variate.
func (d Uniform) Sample(r *rand.Rand) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Mean returns the midpoint.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Constant always returns V; it lets deterministic parameters flow through
// APIs that accept a Dist.
type Constant struct{ V float64 }

// Sample returns V.
func (d Constant) Sample(*rand.Rand) float64 { return d.V }

// Mean returns V.
func (d Constant) Mean() float64 { return d.V }

// Mixture samples component i with probability Weights[i] (weights need
// not be normalized). It builds multi-modal populations such as "mostly
// small files plus a heavy tail of checkpoint files".
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// Sample picks a component by weight, then samples it.
func (d Mixture) Sample(r *rand.Rand) float64 {
	total := 0.0
	for _, w := range d.Weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range d.Weights {
		if u < w {
			return d.Components[i].Sample(r)
		}
		u -= w
	}
	return d.Components[len(d.Components)-1].Sample(r)
}

// Mean returns the weight-averaged component mean.
func (d Mixture) Mean() float64 {
	total, m := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		m += w * d.Components[i].Mean()
	}
	if total == 0 {
		return 0
	}
	return m / total
}
