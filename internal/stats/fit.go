package stats

import (
	"errors"
	"math"
	"sort"
)

// LinearFit is a least-squares line y = Slope*x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
}

// FitLinear performs ordinary least squares on (xs, ys). It is used to test
// the report's claim that application interrupts grow linearly with the
// number of processor chips (Figure 4).
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, errors.New("stats: FitLinear needs >= 2 equal-length samples")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	var f LinearFit
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := f.Slope*xs[i] + f.Intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else {
		f.R2 = 1
	}
	return f, nil
}

// FitWeibull estimates Weibull shape and scale from a complete
// (uncensored) sample using the standard regression on the linearized CDF:
// ln(-ln(1-F)) = k ln(t) - k ln(lambda) with median-rank plotting positions.
// The FAST'07 analysis used exactly this family of fits to show field disk
// replacement data has shape < 1 early and overall increasing hazard,
// contradicting the constant-rate (exponential, k = 1) vendor model.
func FitWeibull(sample []float64) (Weibull, error) {
	if len(sample) < 3 {
		return Weibull{}, errors.New("stats: FitWeibull needs >= 3 samples")
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	xs := make([]float64, 0, len(s))
	ys := make([]float64, 0, len(s))
	n := float64(len(s))
	for i, t := range s {
		if t <= 0 {
			continue
		}
		// Bernard's median rank approximation.
		f := (float64(i+1) - 0.3) / (n + 0.4)
		xs = append(xs, math.Log(t))
		ys = append(ys, math.Log(-math.Log(1-f)))
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		return Weibull{}, err
	}
	k := fit.Slope
	if k <= 0 {
		return Weibull{}, errors.New("stats: non-positive shape estimate")
	}
	lambda := math.Exp(-fit.Intercept / k)
	return Weibull{Shape: k, Scale: lambda}, nil
}

// AutoCorrelation returns the lag-k sample autocorrelation, used to show
// failure interarrivals are correlated (another FAST'07 finding that
// contradicts Poisson-failure assumptions).
func AutoCorrelation(sample []float64, lag int) float64 {
	n := len(sample)
	if lag <= 0 || lag >= n {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range sample {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := sample[i] - mean
		den += d * d
	}
	for i := 0; i < n-lag; i++ {
		num += (sample[i] - mean) * (sample[i+lag] - mean)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
