package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics and moments of a sample.
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Stddev   float64
	P50, P90, P99  float64
	Sum            float64
	CoefficientVar float64
}

// Summarize computes a Summary over values. It copies and sorts internally;
// the input is not modified.
func Summarize(values []float64) Summary {
	var s Summary
	s.N = len(values)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	for _, v := range sorted {
		s.Sum += v
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, v := range sorted {
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Mean != 0 {
		s.CoefficientVar = s.Stddev / s.Mean
	}
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 1) of an
// already-sorted sample using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Stddev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from values (copied, then sorted).
func NewECDF(values []float64) *ECDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the value below which fraction p of the sample lies.
func (e *ECDF) Quantile(p float64) float64 { return Percentile(e.sorted, p) }

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns up to n (x, F(x)) pairs spanning the sample, suitable for
// plotting a CDF curve like Figure 3 of the report.
func (e *ECDF) Points(n int) (xs, ys []float64) {
	if len(e.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(n-1, 1)
		xs[i] = e.sorted[idx]
		ys[i] = float64(idx+1) / float64(len(e.sorted))
	}
	return xs, ys
}

// Histogram counts samples into k equal-width bins over [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram with k bins spanning [lo, hi].
func NewHistogram(lo, hi float64, k int) *Histogram {
	if k < 1 {
		k = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, k)}
}

// Add records one observation; out-of-range values clamp to the end bins.
func (h *Histogram) Add(x float64) {
	k := len(h.Counts)
	var i int
	switch {
	case x <= h.Lo:
		i = 0
	case x >= h.Hi:
		i = k - 1
	default:
		i = int(float64(k) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= k {
			i = k - 1
		}
	}
	h.Counts[i]++
	h.Total++
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
