// Package fsstats reproduces the PDSI file-system statistics survey
// (Dayal, "Characterizing HEC Storage Systems at Rest", CMU-PDL-08-109;
// Figure 3 of the report): static surveys of file size distributions
// across production HEC file systems, published so storage designers
// could ground capacity and metadata decisions in data. Since the actual
// survey hosts are gone, the package generates synthetic populations
// calibrated to the survey's headline shape — most files are small, most
// bytes live in a few huge files — and reimplements the fsstats-style
// survey reporting over them.
package fsstats

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// SystemSpec describes one surveyed file system's synthetic population.
type SystemSpec struct {
	Name  string
	Files int
	// Sizes generates file sizes in bytes.
	Sizes stats.Dist
}

// ElevenSystems returns populations standing in for the eleven
// non-archival file systems of Figure 3: scratch, project, and home
// volumes with varying medians and tail weights. All are
// lognormal-with-heavy-tail mixtures; parameters vary the median from a
// few hundred bytes to ~100 KiB as the survey observed.
func ElevenSystems(filesPerSystem int) []SystemSpec {
	mk := func(name string, mu, sigma float64, tailWeight float64) SystemSpec {
		return SystemSpec{
			Name:  name,
			Files: filesPerSystem,
			Sizes: stats.Mixture{
				Components: []stats.Dist{
					stats.Lognormal{Mu: mu, Sigma: sigma},
					// Checkpoint/dataset tail: hundreds of MB to tens of GB.
					stats.Pareto{Xm: 256 << 20, Alpha: 1.3},
				},
				Weights: []float64{1 - tailWeight, tailWeight},
			},
		}
	}
	return []SystemSpec{
		mk("scratch1", math.Log(2048), 2.4, 0.004),
		mk("scratch2", math.Log(8192), 2.6, 0.006),
		mk("scratch3", math.Log(32768), 2.2, 0.01),
		mk("project1", math.Log(4096), 2.8, 0.003),
		mk("project2", math.Log(16384), 2.4, 0.005),
		mk("home1", math.Log(700), 2.3, 0.0005),
		mk("home2", math.Log(1500), 2.5, 0.001),
		mk("apps1", math.Log(6000), 2.1, 0.0008),
		mk("wrkstn-backup", math.Log(900), 2.7, 0.0004),
		mk("viz1", math.Log(65536), 2.5, 0.012),
		mk("archive-stage", math.Log(100000), 2.9, 0.02),
	}
}

// Generate draws the population's file sizes.
func Generate(spec SystemSpec, seed int64) []int64 {
	if spec.Files < 1 || spec.Sizes == nil {
		panic(fmt.Sprintf("fsstats: invalid spec %+v", spec))
	}
	r := rand.New(rand.NewSource(seed))
	sizes := make([]int64, spec.Files)
	for i := range sizes {
		s := spec.Sizes.Sample(r)
		if s < 0 {
			s = 0
		}
		if s > 1<<46 {
			s = 1 << 46
		}
		sizes[i] = int64(s)
	}
	return sizes
}

// Report is an fsstats-style survey of one file system.
type Report struct {
	Name       string
	Count      int
	TotalBytes int64
	MeanSize   float64
	MedianSize float64
	P90Size    float64
	P99Size    float64

	// FractionFilesUnder maps thresholds to the fraction of *files* at or
	// under them; FractionBytesOver maps thresholds to the fraction of
	// *bytes* in files strictly larger.
	FractionFilesUnder map[int64]float64
	FractionBytesOver  map[int64]float64

	cdf *stats.ECDF
}

// Thresholds used in survey tables.
var Thresholds = []int64{4 << 10, 64 << 10, 1 << 20, 64 << 20, 1 << 30}

// Survey computes the report over a population.
func Survey(name string, sizes []int64) Report {
	rep := Report{
		Name:               name,
		Count:              len(sizes),
		FractionFilesUnder: make(map[int64]float64),
		FractionBytesOver:  make(map[int64]float64),
	}
	if len(sizes) == 0 {
		return rep
	}
	fs := make([]float64, len(sizes))
	for i, s := range sizes {
		fs[i] = float64(s)
		rep.TotalBytes += s
	}
	sum := stats.Summarize(fs)
	rep.MeanSize = sum.Mean
	rep.MedianSize = sum.P50
	rep.P90Size = sum.P90
	rep.P99Size = sum.P99
	rep.cdf = stats.NewECDF(fs)
	for _, th := range Thresholds {
		rep.FractionFilesUnder[th] = rep.cdf.At(float64(th))
		var over int64
		for _, s := range sizes {
			if s > th {
				over += s
			}
		}
		rep.FractionBytesOver[th] = float64(over) / float64(rep.TotalBytes)
	}
	return rep
}

// CDF exposes the file-size ECDF for plotting Figure 3.
func (r Report) CDF() *stats.ECDF { return r.cdf }

// CDFPoints returns n (size, fraction) pairs of the file-size CDF.
func (r Report) CDFPoints(n int) (sizes, fractions []float64) {
	if r.cdf == nil {
		return nil, nil
	}
	return r.cdf.Points(n)
}

// MostFilesSmallMostBytesLarge reports whether the population exhibits the
// survey's headline property: the median file is under smallTh while the
// majority of bytes live in files over largeTh.
func (r Report) MostFilesSmallMostBytesLarge(smallTh, largeTh int64) bool {
	return r.MedianSize <= float64(smallTh) && r.FractionBytesOver[largeTh] >= 0.5
}
