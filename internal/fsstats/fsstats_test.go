package fsstats

import (
	"testing"
)

func TestGenerateProducesRequestedCount(t *testing.T) {
	spec := ElevenSystems(5000)[0]
	sizes := Generate(spec, 1)
	if len(sizes) != 5000 {
		t.Fatalf("generated %d sizes, want 5000", len(sizes))
	}
	for _, s := range sizes {
		if s < 0 {
			t.Fatalf("negative size %d", s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := ElevenSystems(1000)[2]
	a, b := Generate(spec, 7), Generate(spec, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	Generate(SystemSpec{}, 1)
}

func TestSurveyBasics(t *testing.T) {
	sizes := []int64{100, 200, 300, 400, 1 << 30}
	rep := Survey("tiny", sizes)
	if rep.Count != 5 {
		t.Fatalf("Count = %d", rep.Count)
	}
	if rep.TotalBytes != 1000+1<<30 {
		t.Fatalf("TotalBytes = %d", rep.TotalBytes)
	}
	if rep.MedianSize != 300 {
		t.Fatalf("MedianSize = %v", rep.MedianSize)
	}
	// 4 of 5 files are <= 4K.
	if got := rep.FractionFilesUnder[4<<10]; got != 0.8 {
		t.Fatalf("FractionFilesUnder[4K] = %v, want 0.8", got)
	}
	// Nearly all bytes in the 1GiB file.
	if got := rep.FractionBytesOver[1<<20]; got < 0.99 {
		t.Fatalf("FractionBytesOver[1M] = %v, want ~1", got)
	}
}

func TestSurveyEmpty(t *testing.T) {
	rep := Survey("empty", nil)
	if rep.Count != 0 || rep.TotalBytes != 0 {
		t.Fatalf("empty survey = %+v", rep)
	}
	if xs, ys := rep.CDFPoints(5); xs != nil || ys != nil {
		t.Fatal("empty survey should have no CDF points")
	}
}

func TestElevenSystemsHeadlineShape(t *testing.T) {
	// Figure 3's story: across the surveyed systems, the median file is
	// small while most bytes live in large files.
	for i, spec := range ElevenSystems(30000) {
		rep := Survey(spec.Name, Generate(spec, int64(50+i)))
		if rep.MedianSize > 512<<10 {
			t.Errorf("%s: median %v too large for the survey shape", spec.Name, rep.MedianSize)
		}
		if !rep.MostFilesSmallMostBytesLarge(512<<10, 1<<20) {
			t.Errorf("%s: expected most-files-small/most-bytes-large: median=%.0f bytesOver1M=%.2f",
				spec.Name, rep.MedianSize, rep.FractionBytesOver[1<<20])
		}
	}
}

func TestSystemsDiffer(t *testing.T) {
	// The eleven CDFs must not be identical — the survey's spread is the
	// point of plotting them together.
	specs := ElevenSystems(20000)
	repHome := Survey(specs[5].Name, Generate(specs[5], 9))
	repViz := Survey(specs[9].Name, Generate(specs[9], 9))
	if repHome.MedianSize >= repViz.MedianSize {
		t.Fatalf("home median %v should be below viz median %v",
			repHome.MedianSize, repViz.MedianSize)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	spec := ElevenSystems(10000)[1]
	rep := Survey(spec.Name, Generate(spec, 3))
	xs, ys := rep.CDFPoints(50)
	if len(xs) != 50 {
		t.Fatalf("got %d points", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ys[i] < ys[i-1] {
			t.Fatal("CDF points not monotone")
		}
	}
	if ys[len(ys)-1] != 1 {
		t.Fatalf("CDF should end at 1, got %v", ys[len(ys)-1])
	}
}
