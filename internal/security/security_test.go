package security

import (
	"testing"
)

func TestModeStrings(t *testing.T) {
	if NoSecurity.String() != "no-security" ||
		PerFileCaps.String() != "per-file caps" ||
		ExtendedCaps.String() != "extended caps (Maat)" {
		t.Fatal("mode names wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Run(Config{})
}

func TestBaselineIssuesNothing(t *testing.T) {
	res := Run(DefaultConfig(16, NoSecurity, true))
	if res.CapsIssued != 0 || res.VerifiesDone != 0 {
		t.Fatalf("unsecured run touched security machinery: %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Fatal("run did not complete")
	}
}

func TestCapabilityIssuanceCounts(t *testing.T) {
	perFile := Run(DefaultConfig(32, PerFileCaps, true))
	if perFile.CapsIssued != 32 {
		t.Fatalf("per-file caps issued %d, want one per client", perFile.CapsIssued)
	}
	ext := Run(DefaultConfig(32, ExtendedCaps, true))
	if ext.CapsIssued != 1 {
		t.Fatalf("extended caps issued %d, want 1 job-wide", ext.CapsIssued)
	}
	if ext.VerifiesDone != 32*200 {
		t.Fatalf("verifies = %d, want one per op", ext.VerifiesDone)
	}
}

func TestMaatOverheadWithinPublishedBounds(t *testing.T) {
	// "performance degradation of at most 6-7% on workloads with shared
	// files and shared disks, with typical overheads averaging 1-2%".
	shared := Overhead(DefaultConfig(32, ExtendedCaps, true))
	if shared < 0 || shared > 0.07 {
		t.Fatalf("shared-file Maat overhead = %.3f, want <= 0.07", shared)
	}
	private := Overhead(DefaultConfig(32, ExtendedCaps, false))
	if private < 0 || private > 0.05 {
		t.Fatalf("private-file Maat overhead = %.3f, want small", private)
	}
}

func TestExtendedCapsBeatPerFileCapsOnSharedOpens(t *testing.T) {
	// The N-1 open storm: per-(client,file) capabilities serialize at the
	// MDS; the job-wide capability does not.
	pf := Run(DefaultConfig(64, PerFileCaps, true))
	ext := Run(DefaultConfig(64, ExtendedCaps, true))
	if ext.Elapsed > pf.Elapsed {
		t.Fatalf("extended caps %v should not be slower than per-file %v",
			ext.Elapsed, pf.Elapsed)
	}
	if pf.CapsIssued <= ext.CapsIssued {
		t.Fatal("per-file caps should issue more capabilities")
	}
}

func TestOverheadGrowsWithVerifyCost(t *testing.T) {
	cheap := DefaultConfig(16, ExtendedCaps, true)
	costly := cheap
	costly.OSDVerify = cheap.OSDVerify * 20
	if Overhead(costly) <= Overhead(cheap) {
		t.Fatal("20x verify cost should raise overhead")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(DefaultConfig(16, ExtendedCaps, true))
	b := Run(DefaultConfig(16, ExtendedCaps, true))
	if a.Elapsed != b.Elapsed || a.CapsIssued != b.CapsIssued {
		t.Fatal("non-deterministic security run")
	}
}
