// Package security models the UCSC scalable security exploration for
// petascale parallel file systems (§4.2.4 of the report; Maat, Leung et
// al. SC'07): capability-based authorization where the metadata server
// signs capabilities that object storage devices verify on every I/O.
// Naive per-(client, file) capabilities melt down under HEC workloads —
// an N-process job opening one shared file triggers N capability
// issuances at once — so Maat introduced *extended capabilities* that
// authorize whole jobs on whole file sets with one token, plus client
// caching and short lifetimes instead of revocation messages. The
// published result, reproduced here: at most 6-7% degradation on shared
// file/disk workloads, with typical overheads of 1-2%.
package security

import (
	"fmt"

	"repro/internal/sim"
)

// Mode selects the authorization scheme.
type Mode int

// Authorization schemes under comparison.
const (
	// NoSecurity is the performance baseline.
	NoSecurity Mode = iota
	// PerFileCaps issues one capability per (client, file) pair.
	PerFileCaps
	// ExtendedCaps issues one capability per job covering all its files
	// and clients (Maat).
	ExtendedCaps
)

func (m Mode) String() string {
	switch m {
	case NoSecurity:
		return "no-security"
	case PerFileCaps:
		return "per-file caps"
	case ExtendedCaps:
		return "extended caps (Maat)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes the secured cluster and workload.
type Config struct {
	Clients int
	Servers int
	Mode    Mode

	// OpsPerClient I/O operations per client, each of OpBytes.
	OpsPerClient int
	OpBytes      int64

	// SharedFile: all clients hit one file (N-1) versus one file each.
	SharedFile bool

	// MDSIssue is the metadata server time to mint one capability;
	// OSDVerify the server-side signature check per I/O; ClientSign the
	// client-side request signing cost.
	MDSIssue   sim.Time
	OSDVerify  sim.Time
	ClientSign sim.Time

	// ServerOpTime is the unsecured per-op service time at a server.
	ServerOpTime sim.Time
}

// DefaultConfig mirrors the small-scale Ceph prototype experiments.
func DefaultConfig(clients int, mode Mode, shared bool) Config {
	return Config{
		Clients:      clients,
		Servers:      8,
		Mode:         mode,
		OpsPerClient: 200,
		OpBytes:      64 << 10,
		SharedFile:   shared,
		MDSIssue:     sim.Time(300e-6),
		OSDVerify:    sim.Time(15e-6),
		ClientSign:   sim.Time(8e-6),
		ServerOpTime: sim.Time(700e-6),
	}
}

// Result reports one run.
type Result struct {
	Config       Config
	Elapsed      sim.Time
	CapsIssued   int
	VerifiesDone int64
	Throughput   float64 // ops/second aggregate
}

// Run executes the workload under the configured scheme.
func Run(cfg Config) Result {
	if cfg.Clients < 1 || cfg.Servers < 1 || cfg.OpsPerClient < 1 {
		panic(fmt.Sprintf("security: invalid config %+v", cfg))
	}
	eng := sim.NewEngine()
	mds := sim.NewServer(eng, 1)
	servers := make([]*sim.Server, cfg.Servers)
	for i := range servers {
		servers[i] = sim.NewServer(eng, 1)
	}
	var res Result
	res.Config = cfg

	// Capability state: which grants exist. For PerFileCaps the key is
	// (client, file); for ExtendedCaps a single job-wide capability.
	type capKey struct{ client, file int }
	granted := map[capKey]bool{}
	jobCapGranted := false

	fileFor := func(client int) int {
		if cfg.SharedFile {
			return 0
		}
		return client
	}

	done := sim.NewBarrier(eng, cfg.Clients, func(at sim.Time) { res.Elapsed = at })
	for c := 0; c < cfg.Clients; c++ {
		c := c
		var issue func(op int)
		runOp := func(op int) {
			srv := servers[(c+op)%cfg.Servers]
			svc := cfg.ServerOpTime
			if cfg.Mode != NoSecurity {
				svc += cfg.OSDVerify
				res.VerifiesDone++
			}
			// Client-side signing happens before the request leaves.
			delay := sim.Time(0)
			if cfg.Mode != NoSecurity {
				delay = cfg.ClientSign
			}
			eng.Schedule(delay, func() {
				srv.Submit(svc, func(sim.Time) { issue(op + 1) })
			})
		}
		issue = func(op int) {
			if op == cfg.OpsPerClient {
				done.Arrive()
				return
			}
			// Acquire a capability if this op needs one we don't hold.
			switch cfg.Mode {
			case PerFileCaps:
				key := capKey{client: c, file: fileFor(c)}
				if !granted[key] {
					granted[key] = true
					res.CapsIssued++
					mds.Submit(cfg.MDSIssue, func(sim.Time) { runOp(op) })
					return
				}
			case ExtendedCaps:
				if !jobCapGranted {
					jobCapGranted = true
					res.CapsIssued++
					mds.Submit(cfg.MDSIssue, func(sim.Time) { runOp(op) })
					return
				}
			}
			runOp(op)
		}
		issue(0)
	}
	eng.Run()
	total := float64(cfg.Clients) * float64(cfg.OpsPerClient)
	if res.Elapsed > 0 {
		res.Throughput = total / float64(res.Elapsed)
	}
	return res
}

// Overhead returns the fractional slowdown of the secured run versus the
// unsecured baseline with otherwise identical parameters.
func Overhead(cfg Config) float64 {
	base := cfg
	base.Mode = NoSecurity
	b := Run(base)
	s := Run(cfg)
	return float64(s.Elapsed)/float64(b.Elapsed) - 1
}
