package posixext

import (
	"testing"
	"testing/quick"
)

func TestOpenModeStrings(t *testing.T) {
	if PosixOpen.String() != "posix open() x N" || GroupOpen.String() != "openg()+bcast+openfh()" {
		t.Fatal("mode names wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	RunOpen(OpenConfig{})
}

func TestPosixOpenStormSerializesAtMDS(t *testing.T) {
	r := RunOpen(DefaultOpenConfig(256, PosixOpen))
	if r.MDSOps != 256 {
		t.Fatalf("MDS ops = %d, want one per process", r.MDSOps)
	}
	// 256 resolutions / 4 threads at 1ms each: at least 64ms.
	if r.Elapsed < 0.064 {
		t.Fatalf("elapsed %v too fast for a serialized storm", r.Elapsed)
	}
}

func TestGroupOpenSingleResolution(t *testing.T) {
	r := RunOpen(DefaultOpenConfig(256, GroupOpen))
	if r.MDSOps != 1 {
		t.Fatalf("MDS ops = %d, want 1", r.MDSOps)
	}
}

func TestGroupOpenMuchFasterAtScale(t *testing.T) {
	posix := RunOpen(DefaultOpenConfig(256, PosixOpen))
	group := RunOpen(DefaultOpenConfig(256, GroupOpen))
	if ratio := float64(posix.Elapsed) / float64(group.Elapsed); ratio < 10 {
		t.Fatalf("group open advantage %.1fx at 256 procs, want >= 10x", ratio)
	}
}

func TestGroupOpenScalesLogarithmically(t *testing.T) {
	small := RunOpen(DefaultOpenConfig(64, GroupOpen))
	big := RunOpen(DefaultOpenConfig(4096, GroupOpen))
	// 64x more processes should cost far less than 2x the time.
	if float64(big.Elapsed) > 2*float64(small.Elapsed) {
		t.Fatalf("group open grew %v -> %v for 64x procs; want near-log growth",
			small.Elapsed, big.Elapsed)
	}
}

func TestTreeLevel(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4}
	for p, want := range cases {
		if got := treeLevel(p); got != want {
			t.Errorf("treeLevel(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestAlignUp(t *testing.T) {
	l := Layout{StripeUnit: 64 << 10, StripeCount: 8}
	if got := l.AlignUp(47008); got != 64<<10 {
		t.Fatalf("AlignUp(47008) = %d, want 65536", got)
	}
	if got := l.AlignUp(64 << 10); got != 64<<10 {
		t.Fatalf("aligned size changed: %d", got)
	}
	if got := (Layout{}).AlignUp(100); got != 100 {
		t.Fatalf("zero layout should be identity, got %d", got)
	}
}

func TestAlignUpProperty(t *testing.T) {
	l := Layout{StripeUnit: 64 << 10}
	f := func(raw uint32) bool {
		size := int64(raw%(4<<20)) + 1
		a := l.AlignUp(size)
		return a >= size && a%l.StripeUnit == 0 && a-size < l.StripeUnit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMisalignment(t *testing.T) {
	l := Layout{StripeUnit: 100}
	if got := l.Misalignment(250); got != 0.5 {
		t.Fatalf("Misalignment(250) = %v, want 0.5", got)
	}
	if got := l.Misalignment(200); got != 0 {
		t.Fatalf("Misalignment(200) = %v, want 0", got)
	}
}

func TestDeterministic(t *testing.T) {
	a := RunOpen(DefaultOpenConfig(128, GroupOpen))
	b := RunOpen(DefaultOpenConfig(128, GroupOpen))
	if a.Elapsed != b.Elapsed {
		t.Fatal("non-deterministic")
	}
}
