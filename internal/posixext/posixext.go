// Package posixext models the High End Computing POSIX I/O API extensions
// PDSI pushed through the Open Group (§2.2 of the report): most
// prominently the group-open family (openg/openfh — one process resolves
// the path and broadcasts a portable handle, instead of N processes
// hammering the metadata server with identical path resolutions) and the
// layout-query call that was accepted into a future POSIX revision
// (applications read a file's parallel layout to align their I/O). PDSI,
// the SDM center, and ANL "performed tests on approximations of various
// POSIX extensions to demonstrate the performance advantages"; this
// package is such an approximation.
package posixext

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// OpenMode selects how N processes open one shared file.
type OpenMode int

// Open strategies.
const (
	// PosixOpen: every process resolves the path at the metadata server.
	PosixOpen OpenMode = iota
	// GroupOpen: one process opens (openg), broadcasts the handle over
	// the interconnect tree, and the rest convert it locally (openfh).
	GroupOpen
)

func (m OpenMode) String() string {
	if m == PosixOpen {
		return "posix open() x N"
	}
	return "openg()+bcast+openfh()"
}

// OpenConfig parameterizes the open storm.
type OpenConfig struct {
	Procs int
	Mode  OpenMode
	// PathResolve is the metadata server's per-open service time (path
	// walk, permission checks); MDSThreads its concurrency.
	PathResolve sim.Time
	MDSThreads  int
	// RPC is client-MDS latency; BcastHop one interconnect hop of the
	// broadcast tree; OpenFH the local handle-conversion cost.
	RPC      sim.Time
	BcastHop sim.Time
	OpenFH   sim.Time
}

// DefaultOpenConfig matches a mid-2000s cluster: ~1ms path resolution,
// microsecond-scale interconnect hops.
func DefaultOpenConfig(procs int, mode OpenMode) OpenConfig {
	return OpenConfig{
		Procs:       procs,
		Mode:        mode,
		PathResolve: sim.Time(1e-3),
		MDSThreads:  4,
		RPC:         sim.Time(100e-6),
		BcastHop:    sim.Time(5e-6),
		OpenFH:      sim.Time(10e-6),
	}
}

// OpenResult reports one storm.
type OpenResult struct {
	Config  OpenConfig
	Elapsed sim.Time // until every process holds an open handle
	MDSOps  int64
}

// RunOpen executes the open storm.
func RunOpen(cfg OpenConfig) OpenResult {
	if cfg.Procs < 1 || cfg.PathResolve <= 0 {
		panic(fmt.Sprintf("posixext: invalid config %+v", cfg))
	}
	if cfg.MDSThreads < 1 {
		cfg.MDSThreads = 1
	}
	eng := sim.NewEngine()
	mds := sim.NewServer(eng, cfg.MDSThreads)
	var res OpenResult
	res.Config = cfg
	done := sim.NewBarrier(eng, cfg.Procs, func(at sim.Time) { res.Elapsed = at })

	switch cfg.Mode {
	case PosixOpen:
		for p := 0; p < cfg.Procs; p++ {
			eng.Schedule(cfg.RPC, func() {
				res.MDSOps++
				mds.Submit(cfg.PathResolve, func(sim.Time) {
					eng.Schedule(cfg.RPC, done.Arrive)
				})
			})
		}
	case GroupOpen:
		// Rank 0 resolves once...
		eng.Schedule(cfg.RPC, func() {
			res.MDSOps++
			mds.Submit(cfg.PathResolve, func(sim.Time) {
				eng.Schedule(cfg.RPC, func() {
					done.Arrive() // rank 0 holds the handle
					// ...then a binomial-tree broadcast hands everyone the
					// portable handle; each recipient converts it locally.
					depth := int(math.Ceil(math.Log2(float64(cfg.Procs))))
					for p := 1; p < cfg.Procs; p++ {
						// A process at tree level l receives after l hops.
						level := treeLevel(p)
						if level > depth {
							level = depth
						}
						delay := sim.Time(float64(level))*cfg.BcastHop + cfg.OpenFH
						eng.Schedule(delay, done.Arrive)
					}
				})
			})
		})
	}
	eng.Run()
	return res
}

// treeLevel returns the binomial-tree depth at which rank p receives the
// broadcast (the position of p's highest set bit, 1-indexed).
func treeLevel(p int) int {
	level := 0
	for p > 0 {
		p >>= 1
		level++
	}
	return level
}

// LayoutQuery models the accepted POSIX extension: with the layout
// visible, the application aligns its records to stripe boundaries. The
// benefit is quantified elsewhere (hdf5sim's alignment level, pfs's RMW
// penalty); here we expose the decision helper applications would use.
type Layout struct {
	StripeUnit  int64
	StripeCount int
}

// AlignUp rounds a record size up to the next stripe-unit boundary, the
// canonical use of the layout-query extension.
func (l Layout) AlignUp(recordSize int64) int64 {
	if l.StripeUnit <= 0 || recordSize <= 0 {
		return recordSize
	}
	rem := recordSize % l.StripeUnit
	if rem == 0 {
		return recordSize
	}
	return recordSize + l.StripeUnit - rem
}

// Misalignment reports the fraction of each record that would land in a
// partial stripe without alignment.
func (l Layout) Misalignment(recordSize int64) float64 {
	if l.StripeUnit <= 0 || recordSize <= 0 {
		return 0
	}
	rem := recordSize % l.StripeUnit
	return float64(rem) / float64(l.StripeUnit)
}
