package giga

import (
	"fmt"

	"repro/internal/sim"
)

// CreateStormResult reports one mdtest/Metarates-style create benchmark.
type CreateStormResult struct {
	Servers          int
	Clients          int
	Files            int
	Elapsed          sim.Time
	CreatesPerSecond float64
	Partitions       int
	Splits           int64
	AddressingErrors int64
	LoadImbalance    float64
}

// CreateStorm runs nClients synchronous create streams totalling nFiles
// file creations against a GIGA+ directory and reports throughput — the
// Figure 7 experiment ("Scale and performance of Giga+ using UCAR
// Metarates benchmark").
func CreateStorm(cfg Config, nClients, nFiles int) CreateStormResult {
	eng := sim.NewEngine()
	dir := NewDir(eng, cfg)
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i] = dir.NewClient(i)
	}
	perClient := nFiles / nClients
	var res CreateStormResult
	done := sim.NewBarrier(eng, nClients, func(at sim.Time) { res.Elapsed = at })
	for i, c := range clients {
		i, c := i, c
		var next func(k int)
		next = func(k int) {
			if k == perClient {
				done.Arrive()
				return
			}
			c.Create(fmt.Sprintf("f.%d.%d", i, k), func() { next(k + 1) })
		}
		next(0)
	}
	eng.Run()
	res.Servers = cfg.Servers
	res.Clients = nClients
	res.Files = perClient * nClients
	if res.Elapsed > 0 {
		res.CreatesPerSecond = float64(res.Files) / float64(res.Elapsed)
	}
	res.Partitions = dir.Partitions()
	res.Splits = dir.Splits
	res.AddressingErrors = dir.AddressingErrors
	res.LoadImbalance = dir.LoadImbalance()
	return res
}

// SingleServerBaseline measures the same create storm against one
// conventional metadata server (no partitioning): the non-scalable
// baseline that motivates GIGA+.
func SingleServerBaseline(insertTime, rpc sim.Time, nClients, nFiles int) CreateStormResult {
	eng := sim.NewEngine()
	srv := sim.NewServer(eng, 1)
	perClient := nFiles / nClients
	var res CreateStormResult
	done := sim.NewBarrier(eng, nClients, func(at sim.Time) { res.Elapsed = at })
	for i := 0; i < nClients; i++ {
		var next func(k int)
		next = func(k int) {
			if k == perClient {
				done.Arrive()
				return
			}
			eng.Schedule(rpc, func() {
				srv.Submit(insertTime, func(sim.Time) {
					eng.Schedule(rpc, func() { next(k + 1) })
				})
			})
		}
		next(0)
	}
	eng.Run()
	res.Servers = 1
	res.Clients = nClients
	res.Files = perClient * nClients
	if res.Elapsed > 0 {
		res.CreatesPerSecond = float64(res.Files) / float64(res.Elapsed)
	}
	res.Partitions = 1
	return res
}
