package giga

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMappingLocateRoot(t *testing.T) {
	m := mapping{0: 0}
	for _, h := range []uint64{0, 1, 12345, ^uint64(0)} {
		if p := m.locate(h); p.Index != 0 || p.Depth != 0 {
			t.Fatalf("locate(%d) = %+v, want root", h, p)
		}
	}
}

func TestMappingLocateAfterSplits(t *testing.T) {
	// Split root: 0@1 and 1@1. Then split 1@1: 1@2 and 3@2.
	m := mapping{0: 1, 1: 2, 3: 2}
	cases := []struct {
		h    uint64
		want partitionID
	}{
		{0b000, partitionID{0, 1}},
		{0b010, partitionID{0, 1}},
		{0b001, partitionID{1, 2}},
		{0b101, partitionID{1, 2}},
		{0b011, partitionID{3, 2}},
		{0b111, partitionID{3, 2}},
	}
	for _, c := range cases {
		if got := m.locate(c.h); got != c.want {
			t.Fatalf("locate(%03b) = %+v, want %+v", c.h, got, c.want)
		}
	}
}

func TestLocateTotalProperty(t *testing.T) {
	// After any valid split sequence, every hash locates exactly one live
	// partition whose index matches the hash's low bits.
	f := func(seed int64, nSplits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := mapping{0: 0}
		for s := 0; s < int(nSplits%40); s++ {
			// Pick a random live partition to split.
			keys := make([]uint64, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			slices.Sort(keys)
			k := keys[r.Intn(len(keys))]
			d := m[k]
			if d >= maxDepth {
				continue
			}
			m[k] = d + 1
			m[k|1<<uint(d)] = d + 1
		}
		for i := 0; i < 200; i++ {
			h := r.Uint64()
			p := m.locate(h)
			if d, ok := m[p.Index]; !ok || d != p.Depth {
				return false
			}
			if h&((1<<uint(p.Depth))-1) != p.Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateStormCompletesAllFiles(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.SplitThreshold = 100
	res := CreateStorm(cfg, 8, 4000)
	if res.Files != 4000 {
		t.Fatalf("Files = %d, want 4000", res.Files)
	}
	if res.CreatesPerSecond <= 0 {
		t.Fatalf("throughput = %v", res.CreatesPerSecond)
	}
	if res.Splits == 0 || res.Partitions < 4 {
		t.Fatalf("directory never split: %+v", res)
	}
}

func TestThroughputScalesWithServers(t *testing.T) {
	// Figure 7: near-linear create throughput scaling.
	// Enough clients to keep the largest configuration server-bound.
	through := func(servers int) float64 {
		cfg := DefaultConfig(servers)
		cfg.SplitThreshold = 200
		return CreateStorm(cfg, 128, 40000).CreatesPerSecond
	}
	t1, t4, t16 := through(1), through(4), through(16)
	if t4 < 2*t1 {
		t.Fatalf("4 servers %.0f/s, want >= 2x 1 server %.0f/s", t4, t1)
	}
	if t16 < 2.2*t4 {
		t.Fatalf("16 servers %.0f/s, want >= 2.2x 4 servers %.0f/s", t16, t4)
	}
}

func TestGigaBeatsSingleServerBaseline(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.SplitThreshold = 200
	giga := CreateStorm(cfg, 32, 20000)
	base := SingleServerBaseline(cfg.InsertTime, cfg.RPC, 32, 20000)
	if giga.CreatesPerSecond < 3*base.CreatesPerSecond {
		t.Fatalf("GIGA+ %.0f/s should be >= 3x single server %.0f/s",
			giga.CreatesPerSecond, base.CreatesPerSecond)
	}
}

func TestAddressingErrorsBoundedAndLazy(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.SplitThreshold = 100
	res := CreateStorm(cfg, 16, 8000)
	if res.AddressingErrors == 0 {
		t.Fatal("expected some addressing errors from stale maps")
	}
	// GIGA+ guarantee: stale maps cost a small bounded number of extra
	// hops; across the run they must be a modest fraction of creates.
	if frac := float64(res.AddressingErrors) / float64(res.Files); frac > 0.5 {
		t.Fatalf("addressing errors = %.2f of creates, want bounded", frac)
	}
}

func TestLazyBeatsSyncInvalidation(t *testing.T) {
	// The ablation: synchronous invalidation makes every client pay for
	// every split; lazy stale maps are strictly cheaper.
	lazy := DefaultConfig(8)
	lazy.SplitThreshold = 100
	syn := lazy
	syn.SyncInvalidate = true
	lr := CreateStorm(lazy, 16, 8000)
	sr := CreateStorm(syn, 16, 8000)
	if lr.CreatesPerSecond <= sr.CreatesPerSecond {
		t.Fatalf("lazy %.0f/s should beat sync-invalidate %.0f/s",
			lr.CreatesPerSecond, sr.CreatesPerSecond)
	}
}

func TestLoadBalancedAcrossServers(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.SplitThreshold = 100
	res := CreateStorm(cfg, 16, 16000)
	if res.LoadImbalance > 3 {
		t.Fatalf("load imbalance = %.2f, want < 3", res.LoadImbalance)
	}
}

func TestDeterministicStorm(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.SplitThreshold = 100
	a := CreateStorm(cfg, 8, 2000)
	b := CreateStorm(cfg, 8, 2000)
	if a.Elapsed != b.Elapsed || a.Splits != b.Splits {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewDir(sim.NewEngine(), Config{})
}

func TestHashNameStable(t *testing.T) {
	if hashName("foo") != hashName("foo") {
		t.Fatal("hash not stable")
	}
	if hashName("foo") == hashName("bar") {
		t.Fatal("suspicious collision on trivial inputs")
	}
}

func TestClientMergeConvergence(t *testing.T) {
	// A client starting with a stale root map converges to the truth with
	// bounded bounces even after many splits.
	eng := sim.NewEngine()
	cfg := DefaultConfig(4)
	cfg.SplitThreshold = 10
	dir := NewDir(eng, cfg)
	warm := dir.NewClient(0)
	// Grow the directory with one client.
	var grow func(k int)
	grow = func(k int) {
		if k == 500 {
			return
		}
		warm.Create(fmt.Sprintf("w%d", k), func() { grow(k + 1) })
	}
	grow(0)
	eng.Run()
	if dir.Partitions() < 8 {
		t.Fatalf("directory did not grow: %d partitions", dir.Partitions())
	}
	// New client with only the root in its map.
	cold := &Client{dir: dir, m: mapping{0: 0}, id: 99}
	dir.clients = append(dir.clients, cold)
	did := 0
	var create func(k int)
	create = func(k int) {
		if k == 50 {
			return
		}
		did++
		cold.Create(fmt.Sprintf("c%d", k), func() { create(k + 1) })
	}
	create(0)
	eng.Run()
	if did != 50 {
		t.Fatalf("cold client completed %d creates", did)
	}
	// Bounded hops: far fewer than maxDepth per create on average.
	if cold.Bounces > int64(50*6) {
		t.Fatalf("cold client bounced %d times for 50 creates", cold.Bounces)
	}
}
