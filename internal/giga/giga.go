// Package giga implements GIGA+ (Patil & Gibson; PDSI's scalable-directory
// work, Figure 7 of the report): a directory hash-partitioned over many
// metadata servers that splits partitions *independently* as they grow and
// lets client partition maps go stale, correcting them lazily with a
// bounded number of extra hops instead of synchronously invalidating every
// client on every split. The result is file-create throughput that scales
// near-linearly with servers — the operation that single-server
// directories and cache-consistent designs serialize.
package giga

import (
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
)

// maxDepth bounds the extensible-hash radix depth (2^maxDepth partitions).
const maxDepth = 24

// partitionID names one partition: the low-Depth bits of an entry hash
// equal Index.
type partitionID struct {
	Index uint64
	Depth int
}

// mapping is the GIGA+ partition map: for each live partition index, its
// depth. Splitting partition (i, d) produces (i, d+1) and (i|1<<d, d+1).
type mapping map[uint64]int

// locate walks the split history to the live partition owning hash h.
// With a stale map this may return a partition that has since split — the
// server detects that and returns corrections.
func (m mapping) locate(h uint64) partitionID {
	d := 0
	for {
		i := h & ((1 << uint(d)) - 1)
		if pd, ok := m[i]; ok && pd == d {
			return partitionID{Index: i, Depth: d}
		}
		d++
		if d > maxDepth {
			panic("giga: split depth exceeds maxDepth")
		}
	}
}

// clone copies a mapping (server → client map transfer).
func (m mapping) clone() mapping {
	c := make(mapping, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Config tunes the directory service.
type Config struct {
	Servers int
	// SplitThreshold is the entry count at which a partition splits.
	SplitThreshold int
	// InsertTime is the server CPU time to insert one entry.
	InsertTime sim.Time
	// PerEntryMove is the server time per entry migrated during a split.
	PerEntryMove sim.Time
	// RPC is one-way client-server messaging latency.
	RPC sim.Time
	// SyncInvalidate, when true, models the conventional alternative:
	// every split synchronously updates every client's map, costing each
	// client an RPC round trip before its next operation (the ablation of
	// GIGA+'s lazy stale-map design).
	SyncInvalidate bool
}

// DefaultConfig returns parameters resembling the PVFS-backed prototype.
func DefaultConfig(servers int) Config {
	return Config{
		Servers:        servers,
		SplitThreshold: 2000,
		InsertTime:     sim.Time(150e-6),
		PerEntryMove:   sim.Time(20e-6),
		RPC:            sim.Time(100e-6),
	}
}

func (c Config) validate() error {
	if c.Servers < 1 || c.SplitThreshold < 2 || c.InsertTime <= 0 {
		return fmt.Errorf("giga: invalid config %+v", c)
	}
	return nil
}

// Dir is a GIGA+ directory instance bound to a sim engine.
type Dir struct {
	cfg     Config
	eng     *sim.Engine
	servers []*sim.Server

	// truth is the authoritative partition map (union of all servers'
	// knowledge; servers always know the truth about partitions they own,
	// which is all locate ever needs).
	truth mapping
	// load counts entries per partition.
	load map[uint64]int

	// Counters.
	Creates          int64
	AddressingErrors int64
	Splits           int64

	clients      []*Client
	pendingInval map[*Client]bool
}

// NewDir creates an empty directory (one partition at depth 0 on server 0).
func NewDir(eng *sim.Engine, cfg Config) *Dir {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	d := &Dir{
		cfg:          cfg,
		eng:          eng,
		truth:        mapping{0: 0},
		load:         map[uint64]int{0: 0},
		pendingInval: make(map[*Client]bool),
	}
	for i := 0; i < cfg.Servers; i++ {
		d.servers = append(d.servers, sim.NewServer(eng, 1))
	}
	return d
}

// serverOf maps a partition to its metadata server.
func (d *Dir) serverOf(p partitionID) int {
	// Deterministic spread: fold index and depth. Splits place siblings on
	// different servers, which is what balances load as the directory grows.
	return int((p.Index*2654435761 + uint64(p.Depth)) % uint64(d.cfg.Servers))
}

// Client issues directory operations with its own (possibly stale) map.
type Client struct {
	dir *Dir
	m   mapping
	id  int

	Bounces int64
}

// NewClient registers a client holding a fresh copy of the current map.
func (d *Dir) NewClient(id int) *Client {
	c := &Client{dir: d, m: d.truth.clone(), id: id}
	d.clients = append(d.clients, c)
	return c
}

// hashName hashes a file name into the partition keyspace.
func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Create inserts name into the directory, calling done when the server has
// acknowledged it. The client addresses the partition its own map names;
// if that partition has split since, the owning server bounces the request
// with map corrections and the client retries (at most maxDepth hops).
func (c *Client) Create(name string, done func()) {
	h := hashName(name)
	c.attempt(h, 0, done)
}

func (c *Client) attempt(h uint64, hops int, done func()) {
	if hops > maxDepth+1 {
		// merge guarantees one bounce resolves a stale target, so
		// exceeding the split depth means the correction protocol is
		// broken — fail loudly rather than looping.
		panic("giga: unbounded addressing-error loop")
	}
	d := c.dir
	target := c.m.locate(h)
	srvIdx := d.serverOf(target)
	// Client -> server RPC.
	d.eng.Schedule(d.cfg.RPC, func() {
		actual := d.truth.locate(h)
		if actual != target {
			// Stale client map: the server returns the relevant split
			// history and the client retries. Each bounce refines the map
			// by at least one level.
			d.AddressingErrors++
			c.Bounces++
			d.servers[srvIdx].Submit(d.cfg.InsertTime/4, func(sim.Time) {
				c.merge(actual)
				d.eng.Schedule(d.cfg.RPC, func() { c.attempt(h, hops+1, done) })
			})
			return
		}
		owner := d.serverOf(actual)
		d.servers[owner].Submit(d.cfg.InsertTime, func(sim.Time) {
			d.load[actual.Index]++
			d.Creates++
			d.maybeSplit(actual, owner)
			// Reply RPC.
			d.eng.Schedule(d.cfg.RPC, func() {
				c.syncPenalty(done)
			})
		})
	})
}

// merge folds authoritative knowledge about partition p into the client
// map. Knowing p exists at depth p.Depth implies (a) every ancestor along
// p's prefix was split, so any map entry placing an ancestor at a depth
// <= its split point is stale and must go — a stale shallow ancestor
// would shadow p in locate and the client would bounce forever — and (b)
// each split also produced a sibling at the next depth, which is recorded
// (possibly itself stale-shallow; a later bounce refines it). After
// merge(p), locate resolves any hash owned by p to p: one bounce per
// stale target, the GIGA+ bounded-correction guarantee.
func (c *Client) merge(p partitionID) {
	for d := 0; d < p.Depth; d++ {
		ancestor := p.Index & ((1 << uint(d)) - 1)
		if pd, ok := c.m[ancestor]; ok && pd <= d {
			delete(c.m, ancestor)
		}
		sib := (p.Index & ((1 << uint(d+1)) - 1)) ^ (1 << uint(d))
		if _, ok := c.m[sib]; !ok {
			c.m[sib] = d + 1
		}
	}
	c.m[p.Index] = p.Depth
}

// syncPenalty models the SyncInvalidate ablation: if a split happened that
// this client has not yet acknowledged, it pays a map-refresh round trip.
func (c *Client) syncPenalty(done func()) {
	d := c.dir
	if d.cfg.SyncInvalidate && d.pendingInval[c] {
		delete(d.pendingInval, c)
		c.m = d.truth.clone()
		d.eng.Schedule(2*d.cfg.RPC, done)
		return
	}
	done()
}

// maybeSplit splits a partition that crossed the threshold, billing the
// migration work to both the source and destination servers.
func (d *Dir) maybeSplit(p partitionID, owner int) {
	if d.load[p.Index] < d.cfg.SplitThreshold || p.Depth >= maxDepth {
		return
	}
	moved := d.load[p.Index] / 2
	d.load[p.Index] -= moved
	child := partitionID{Index: p.Index | 1<<uint(p.Depth), Depth: p.Depth + 1}
	d.truth[p.Index] = p.Depth + 1
	d.truth[child.Index] = child.Depth
	d.load[child.Index] = moved
	d.Splits++
	cost := sim.Time(float64(moved)) * d.cfg.PerEntryMove
	d.servers[owner].Submit(cost, nil)
	d.servers[d.serverOf(child)].Submit(cost, nil)
	if d.cfg.SyncInvalidate {
		// Cache-consistent designs do not let a split complete until every
		// client's mapping is invalidated: the splitting server performs a
		// callback round trip per client (serialized server work, the way
		// DLM-style consistency behaves), and every client still refreshes
		// its map before its next operation.
		d.servers[owner].Submit(2*d.cfg.RPC*sim.Time(float64(len(d.clients))), nil)
		for _, c := range d.clients {
			d.pendingInval[c] = true
		}
	}
}

// Partitions reports the live partition count.
func (d *Dir) Partitions() int { return len(d.load) }

// ServerUtilizations returns per-server busy fractions.
func (d *Dir) ServerUtilizations() []float64 {
	out := make([]float64, len(d.servers))
	for i, s := range d.servers {
		out[i] = s.Utilization()
	}
	return out
}

// LoadImbalance returns max/mean entries across partitions' servers.
func (d *Dir) LoadImbalance() float64 {
	perServer := make([]int, d.cfg.Servers)
	for idx, n := range d.load {
		depth := d.truth[idx]
		perServer[d.serverOf(partitionID{Index: idx, Depth: depth})] += n
	}
	total, maxLoad := 0, 0
	for _, n := range perServer {
		total += n
		if n > maxLoad {
			maxLoad = n
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(d.cfg.Servers)
	return float64(maxLoad) / mean
}
