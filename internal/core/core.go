package core
