//lint:allowfile goroutine -- sanctioned site: the in-memory backend is shared by concurrent writer ranks and must be internally synchronized

// Package core implements PLFS, the Parallel Log-structured File System
// (Bent et al., SC'09; conceived and prototyped within PDSI). PLFS is
// interposition middleware: an application's shared logical file is backed
// by a *container* — a directory holding one append-only data log and one
// index log per writer, spread across hostdirs. Writes, however small,
// strided, or unaligned, become pure appends to the writer's own log; the
// logical file's contents are resolved at read time by merging the index
// logs, with last-writer-wins semantics for overlaps.
//
// The package separates semantics from storage: all container logic works
// against the Backend interface, so the same code runs on the in-memory
// backend (unit tests, examples) and on simulated parallel file systems
// (benchmarks measuring the checkpoint speedups of Figure 8).
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Backend is the slice of a POSIX-ish namespace PLFS needs from its
// underlying ("backing") file system: creating directories, creating and
// opening append-oriented files, and listing directories.
type Backend interface {
	// Mkdir creates a directory; it is an error if it exists.
	Mkdir(path string) error
	// Create creates or truncates a file.
	Create(path string) (BackendFile, error)
	// Open opens an existing file for reading.
	Open(path string) (BackendFile, error)
	// ReadDir lists the names (not full paths) of entries in a directory.
	ReadDir(path string) ([]string, error)
	// Exists reports whether a file or directory exists.
	Exists(path string) bool
}

// BackendFile is an append-writable, randomly readable file.
type BackendFile interface {
	io.Writer   // appends at end of file
	io.ReaderAt // random read
	Size() int64
	Close() error
}

// Truncator is an optional BackendFile capability: cutting a file to a
// shorter length. plfsck uses it to repair torn log tails; backends
// without it are still recoverable (the torn bytes are simply ignored
// on every subsequent open).
type Truncator interface {
	Truncate(size int64) error
}

// Errors returned by backends and container operations.
var (
	ErrNotExist = errors.New("plfs: no such file or directory")
	ErrExist    = errors.New("plfs: already exists")
	ErrClosed   = errors.New("plfs: use of closed handle")
)

// MemBackend is a thread-safe in-memory Backend. It is the reference
// storage used by unit tests and the quickstart example.
type MemBackend struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMemBackend returns an empty in-memory backend with a root directory.
func NewMemBackend() *MemBackend {
	return &MemBackend{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{"/": true},
	}
}

func clean(path string) string {
	if path == "" {
		return "/"
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	for strings.Contains(path, "//") {
		path = strings.ReplaceAll(path, "//", "/")
	}
	if len(path) > 1 {
		path = strings.TrimSuffix(path, "/")
	}
	return path
}

func parent(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Mkdir creates a directory under an existing parent.
func (b *MemBackend) Mkdir(path string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	path = clean(path)
	if b.dirs[path] || b.files[path] != nil {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	if !b.dirs[parent(path)] {
		return fmt.Errorf("%w: parent of %s", ErrNotExist, path)
	}
	b.dirs[path] = true
	return nil
}

// Create creates or truncates a file under an existing directory.
func (b *MemBackend) Create(path string) (BackendFile, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	path = clean(path)
	if b.dirs[path] {
		return nil, fmt.Errorf("%w: %s is a directory", ErrExist, path)
	}
	if !b.dirs[parent(path)] {
		return nil, fmt.Errorf("%w: parent of %s", ErrNotExist, path)
	}
	f := &memFile{}
	b.files[path] = f
	return &memHandle{f: f}, nil
}

// Open opens an existing file.
func (b *MemBackend) Open(path string) (BackendFile, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	path = clean(path)
	f, ok := b.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return &memHandle{f: f}, nil
}

// ReadDir lists immediate children of a directory.
func (b *MemBackend) ReadDir(path string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	path = clean(path)
	if !b.dirs[path] {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	seen := map[string]bool{}
	var names []string
	add := func(p string) {
		if !strings.HasPrefix(p, prefix) || p == path {
			return
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.Index(rest, "/"); i >= 0 {
			rest = rest[:i]
		}
		if rest != "" && !seen[rest] {
			seen[rest] = true
			names = append(names, rest)
		}
	}
	for p := range b.files {
		add(p)
	}
	for p := range b.dirs {
		add(p)
	}
	sort.Strings(names)
	return names, nil
}

// CorruptRange flips the high bit of n bytes starting at off in the
// named file, simulating silent media corruption beneath the container.
// Test-only helper: real corruption arrives through the disk model.
func (b *MemBackend) CorruptRange(path string, off, n int64) error {
	b.mu.Lock()
	f, ok := b.files[clean(path)]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || n < 0 || off+n > int64(len(f.data)) {
		return fmt.Errorf("plfs: corrupt range [%d,%d) outside %d-byte file %s", off, off+n, len(f.data), path)
	}
	for i := off; i < off+n; i++ {
		f.data[i] ^= 0x80
	}
	return nil
}

// Exists reports whether path names a file or directory.
func (b *MemBackend) Exists(path string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	path = clean(path)
	return b.dirs[path] || b.files[path] != nil
}

// memFile is the shared content of a file; handles reference it.
type memFile struct {
	mu   sync.Mutex
	data []byte
}

type memHandle struct {
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, ErrClosed
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, ErrClosed
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Truncate(size int64) error {
	if h.closed {
		return ErrClosed
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("plfs: truncate to %d outside %d-byte file", size, len(h.f.data))
	}
	h.f.data = h.f.data[:size]
	return nil
}

func (h *memHandle) Size() int64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return int64(len(h.f.data))
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
