package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// This file preserves the pre-sweep-line BuildGlobalIndex — the per-entry
// overlay that copied the whole extent slice on every insert — as a
// reference implementation. The sweep-line merge must reproduce its output
// bit-for-bit; the tests here check that on randomized inputs and the
// benchmarks keep the quadratic baseline measurable next to the new path.

func buildGlobalIndexOverlay(entries []IndexEntry) *GlobalIndex {
	g := &GlobalIndex{entries: len(entries)}
	sorted := append([]IndexEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Timestamp != b.Timestamp {
			return a.Timestamp < b.Timestamp
		}
		if a.Writer != b.Writer {
			return a.Writer < b.Writer
		}
		return a.LogOffset < b.LogOffset
	})
	for _, e := range sorted {
		if e.Length <= 0 {
			continue
		}
		g.insertOverlay(extent{logical: e.LogicalOffset, length: e.Length, writer: e.Writer, logOff: e.LogOffset})
		if end := e.LogicalOffset + e.Length; end > g.size {
			g.size = end
		}
	}
	return g
}

// insertOverlay overlays x on the extent list, truncating or splitting
// anything it overlaps (x is newer than everything already present).
func (g *GlobalIndex) insertOverlay(x extent) {
	i := sort.Search(len(g.extents), func(i int) bool {
		return g.extents[i].end() > x.logical
	})
	var out []extent
	out = append(out, g.extents[:i]...)
	j := i
	for ; j < len(g.extents); j++ {
		old := g.extents[j]
		if old.logical >= x.end() {
			break
		}
		if old.logical < x.logical {
			out = append(out, extent{
				logical: old.logical,
				length:  x.logical - old.logical,
				writer:  old.writer,
				logOff:  old.logOff,
			})
		}
		if old.end() > x.end() {
			cut := x.end() - old.logical
			tail := extent{
				logical: x.end(),
				length:  old.end() - x.end(),
				writer:  old.writer,
				logOff:  old.logOff + cut,
			}
			out = append(out, x, tail)
			out = append(out, g.extents[j+1:]...)
			g.extents = out
			return
		}
	}
	out = append(out, x)
	out = append(out, g.extents[j:]...)
	g.extents = out
}

// randomEntries draws n entries with unique timestamps (as the container
// clock guarantees) over a small logical space so overlaps are dense.
func randomEntries(r *rand.Rand, n int) []IndexEntry {
	entries := make([]IndexEntry, n)
	for i := range entries {
		entries[i] = IndexEntry{
			LogicalOffset: int64(r.Intn(400)),
			Length:        int64(r.Intn(80) + 1),
			Writer:        int32(r.Intn(6)),
			LogOffset:     int64(r.Intn(4096)),
			Timestamp:     uint64(i + 1),
		}
	}
	// Shuffle so timestamps do not arrive in slice order, as when many
	// hostdir logs are concatenated.
	r.Shuffle(n, func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	return entries
}

// TestSweepMatchesOverlayReference is the equivalence guarantee behind the
// rewrite: identical extent lists (not just identical resolved bytes) on
// randomized inputs, including zero-length entries and dense overlaps.
func TestSweepMatchesOverlayReference(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		entries := randomEntries(r, int(nOps)%120+1)
		if int(nOps)%7 == 0 {
			entries = append(entries, IndexEntry{LogicalOffset: 10, Length: 0, Writer: 1, Timestamp: 0})
		}
		got := BuildGlobalIndex(entries)
		want := buildGlobalIndexOverlay(entries)
		if got.CheckInvariants() != nil {
			return false
		}
		return got.size == want.size &&
			got.entries == want.entries &&
			reflect.DeepEqual(got.extents, want.extents)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepMatchesOverlayOnCheckpointShapes(t *testing.T) {
	for name, entries := range map[string][]IndexEntry{
		"strided": stridedCheckpointEntries(1<<12, 16),
		"overlap": overlappingEntries(1 << 12),
		"empty":   nil,
	} {
		got := BuildGlobalIndex(entries)
		want := buildGlobalIndexOverlay(entries)
		if !reflect.DeepEqual(got.extents, want.extents) || got.size != want.size {
			t.Errorf("%s: sweep and overlay outputs differ (%d vs %d extents)",
				name, got.NumExtents(), want.NumExtents())
		}
	}
}

// BenchmarkBuildGlobalIndexOverlayRef is the pre-rewrite baseline, kept
// runnable (at sizes the quadratic algorithm can finish) so regressions in
// the comparison are visible in one bench run.
func BenchmarkBuildGlobalIndexOverlayRef(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			entries := stridedCheckpointEntries(n, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := buildGlobalIndexOverlay(entries)
				if g.NumEntries() != len(entries) {
					b.Fatal("bad merge")
				}
			}
		})
	}
}
