package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/obs"
)

// newFaultyContainer builds a container over a FaultyBackend with retries
// enabled.
func newFaultyContainer(t *testing.T, opts Options) (*FaultyBackend, *Container) {
	t.Helper()
	fb := NewFaultyBackend(NewMemBackend())
	c, err := CreateContainer(fb, "/ckpt", opts)
	if err != nil {
		t.Fatal(err)
	}
	return fb, c
}

func retryOpts() Options {
	o := DefaultOptions()
	o.Retry = RetryPolicy{MaxRetries: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	return o
}

func readBack(t *testing.T, c *Container, off, n int64) []byte {
	t.Helper()
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, n)
	if _, err := r.ReadAt(buf, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

func TestTransientWriteErrorRetriedInPlace(t *testing.T) {
	fb, c := newFaultyContainer(t, retryOpts())
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abc"), 100)
	fb.FailNextWrites = 2 // fewer than MaxRetries: recovers in place
	if _, err := w.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.FaultStats()
	if st.Retries == 0 {
		t.Fatal("transient failure recovered without counted retries")
	}
	if st.Failovers != 0 {
		t.Fatalf("in-place recovery failed over %d times", st.Failovers)
	}
	// 1ms + 2ms for the two retries of the capped exponential schedule.
	if want := 3 * time.Millisecond; st.Backoff != want {
		t.Fatalf("backoff = %v, want %v", st.Backoff, want)
	}
	if got := readBack(t, c, 0, int64(len(payload))); !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch after retried write")
	}
}

func TestPersistentWriteErrorFailsOverToNewGeneration(t *testing.T) {
	fb, c := newFaultyContainer(t, retryOpts())
	w, err := c.OpenWriter(3)
	if err != nil {
		t.Fatal(err)
	}
	before := []byte("written before the storage failed")
	if _, err := w.WriteAt(before, 0); err != nil {
		t.Fatal(err)
	}
	after := []byte("written after failover")
	// Exhaust every in-place retry: the data append fails 1+MaxRetries
	// times, forcing a generation switch.
	fb.FailNextWrites = 1 + c.opts.Retry.MaxRetries
	if _, err := w.WriteAt(after, int64(len(before))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if g := w.Generation(); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	if st := w.FaultStats(); st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	want := append(append([]byte(nil), before...), after...)
	if got := readBack(t, c, 0, int64(len(want))); !bytes.Equal(got, want) {
		t.Fatalf("read-back mismatch across generations: %q", got)
	}
}

func TestPartialAppendBytesDroppedAndReadsStayCorrect(t *testing.T) {
	fb, c := newFaultyContainer(t, retryOpts())
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	fb.FailNextWrites = 1
	fb.PartialBytes = 100 // the failed append tears 100 bytes into the log
	if _, err := w.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	more := bytes.Repeat([]byte{0xCD}, 512)
	if _, err := w.WriteAt(more, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st := w.FaultStats(); st.DroppedBytes != 100 {
		t.Fatalf("dropped bytes = %d, want 100", st.DroppedBytes)
	}
	want := append(append([]byte(nil), payload...), more...)
	if got := readBack(t, c, 0, int64(len(want))); !bytes.Equal(got, want) {
		t.Fatal("read-back mismatch after dropped partial append")
	}
}

func TestZeroRetryPolicySurfacesFirstError(t *testing.T) {
	fb, c := newFaultyContainer(t, DefaultOptions())
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	fb.FailNextWrites = 1
	if _, err := w.WriteAt([]byte("x"), 0); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want the injected error", err)
	}
}

func TestFailoverBlockedByCreateErrorSurfaces(t *testing.T) {
	fb, c := newFaultyContainer(t, retryOpts())
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	fb.FailNextWrites = 1 + c.opts.Retry.MaxRetries
	fb.FailCreates = 2 // the new generation's logs cannot be created
	if _, err := w.WriteAt([]byte("x"), 0); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want the injected error", err)
	}
}

func TestIndexAppendErrorAlsoFailsOver(t *testing.T) {
	// Coalescing defers the index append to Sync, so failures armed there
	// hit the index log specifically: the entry must land in the new
	// generation's index log while still naming the data log that holds
	// its bytes.
	o := retryOpts()
	o.CoalesceIndex = true
	fb, c := newFaultyContainer(t, o)
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("indexed data")
	if _, err := w.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	fb.FailNextWrites = 1 + c.opts.Retry.MaxRetries
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st := w.FaultStats(); st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if got := readBack(t, c, 0, int64(len(payload))); !bytes.Equal(got, payload) {
		t.Fatalf("read-back mismatch after index failover: %q", got)
	}
}

func TestCoalescingDoesNotMergeAcrossGenerations(t *testing.T) {
	o := retryOpts()
	o.CoalesceIndex = true
	fb, c := newFaultyContainer(t, o)
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{1}, 256)
	b := bytes.Repeat([]byte{2}, 256)
	if _, err := w.WriteAt(a, 0); err != nil {
		t.Fatal(err)
	}
	fb.FailNextWrites = 1 + c.opts.Retry.MaxRetries
	if _, err := w.WriteAt(b, 256); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), a...), b...)
	if got := readBack(t, c, 0, 512); !bytes.Equal(got, want) {
		t.Fatal("read-back mismatch for coalesced writes across a failover")
	}
}

func TestTruncatedDataLogSurfacesTypedError(t *testing.T) {
	b := NewMemBackend()
	c, err := CreateContainer(b, "/ckpt", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a crashed writer: the index entry claims 64 bytes but the
	// data log holds only 16 (the index append outlived the data append).
	short := truncatingBackendFile{w.data}
	w.data = short
	if _, err := w.WriteAt(bytes.Repeat([]byte{7}, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 64)
	if _, err := r.ReadAt(buf, 0); !errors.Is(err, ErrTruncatedLog) {
		t.Fatalf("err = %v, want ErrTruncatedLog", err)
	}
}

// truncatingBackendFile persists only the first 16 bytes of each append
// while reporting full success — a write lost in a dying server's cache.
type truncatingBackendFile struct {
	BackendFile
}

func (f truncatingBackendFile) Write(p []byte) (int, error) {
	keep := p
	if len(keep) > 16 {
		keep = keep[:16]
	}
	if _, err := f.BackendFile.Write(keep); err != nil {
		return 0, err
	}
	return len(p), nil
}

func TestRetriesVisibleInMetricsRegistry(t *testing.T) {
	o := retryOpts()
	reg := obs.NewRegistry()
	o.Metrics = reg
	fb, c := newFaultyContainer(t, o)
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	fb.FailNextWrites = 1 + c.opts.Retry.MaxRetries
	if _, err := w.WriteAt([]byte("counted"), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["plfs.write.retries"] == 0 {
		t.Fatal("plfs.write.retries not counted")
	}
	if s.Counters["plfs.write.failovers"] != 1 {
		t.Fatalf("plfs.write.failovers = %d, want 1", s.Counters["plfs.write.failovers"])
	}
}
