package core

import (
	"fmt"
	"io"
	"testing"
)

// Library micro-benchmarks: the costs a PLFS user actually pays — appends
// on the write path, index merge on open, resolved lookups on the read
// path — independent of any simulated file system.

func BenchmarkWriterAppend4K(b *testing.B) {
	backend := NewMemBackend()
	c, err := CreateContainer(backend, "/c", DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	w, err := c.OpenWriter(0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.WriteAt(buf, int64(i)*8192); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterAppendCoalesced(b *testing.B) {
	backend := NewMemBackend()
	c, err := CreateContainer(backend, "/c", Options{NumHostdirs: 32, CoalesceIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	w, err := c.OpenWriter(0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.WriteAt(buf, int64(i)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func buildContainer(b *testing.B, writers, recsPerWriter int) *Container {
	b.Helper()
	backend := NewMemBackend()
	c, err := CreateContainer(backend, "/c", DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	for wtr := 0; wtr < writers; wtr++ {
		w, err := c.OpenWriter(int32(wtr))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < recsPerWriter; i++ {
			off := int64((i*writers + wtr) * 4096)
			if _, err := w.WriteAt(buf, off); err != nil {
				b.Fatal(err)
			}
		}
		w.Close()
	}
	return c
}

func BenchmarkOpenReaderIndexMerge(b *testing.B) {
	for _, writers := range []int{4, 32} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			c := buildContainer(b, writers, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := c.OpenReader()
				if err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
		})
	}
}

func BenchmarkReaderStridedReadBack(b *testing.B) {
	c := buildContainer(b, 16, 256)
	r, err := c.OpenReader()
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%8) << 20
		if _, err := r.ReadAt(buf, off); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGlobalIndex(b *testing.B) {
	entries := make([]IndexEntry, 8192)
	for i := range entries {
		entries[i] = IndexEntry{
			LogicalOffset: int64((i * 37) % 4096 * 4096),
			Length:        4096,
			Writer:        int32(i % 64),
			LogOffset:     int64(i) * 4096,
			Timestamp:     uint64(i + 1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := BuildGlobalIndex(entries)
		if g.NumEntries() != len(entries) {
			b.Fatal("bad merge")
		}
	}
}

// stridedCheckpointEntries models an N-1 strided checkpoint: writers
// interleave fixed-size records round-robin and entries arrive in
// timestamp order. Every record is disjoint, so the resolved extent list
// grows to n — the pattern that made the old per-entry overlay quadratic.
func stridedCheckpointEntries(n, writers int) []IndexEntry {
	const rec = 4096
	entries := make([]IndexEntry, 0, n)
	var ts uint64
	for i := 0; len(entries) < n; i++ {
		for w := 0; w < writers && len(entries) < n; w++ {
			ts++
			entries = append(entries, IndexEntry{
				LogicalOffset: int64(i*writers+w) * rec,
				Length:        rec,
				Writer:        int32(w),
				LogOffset:     int64(i) * rec,
				Timestamp:     ts,
			})
		}
	}
	return entries
}

// overlappingEntries is the fully-overlapping worst case: every entry
// overlays half of its predecessor, so each one must split what came
// before it during conflict resolution.
func overlappingEntries(n int) []IndexEntry {
	const rec = 4096
	entries := make([]IndexEntry, n)
	for i := range entries {
		entries[i] = IndexEntry{
			LogicalOffset: int64(i) * rec / 2,
			Length:        rec,
			Writer:        int32(i % 64),
			LogOffset:     int64(i) * rec,
			Timestamp:     uint64(i + 1),
		}
	}
	return entries
}

func benchBuild(b *testing.B, entries []IndexEntry) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := BuildGlobalIndex(entries)
		if g.NumEntries() != len(entries) {
			b.Fatal("bad merge")
		}
	}
}

// BenchmarkBuildGlobalIndexStrided is the headline adversarial case: a
// disjoint N-1 strided checkpoint at small (old-shape) and large
// (new-shape) entry counts, up to the 1M-entry restart the ISSUE targets.
func BenchmarkBuildGlobalIndexStrided(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15, 1 << 17, 1 << 20} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			benchBuild(b, stridedCheckpointEntries(n, 64))
		})
	}
}

// BenchmarkBuildGlobalIndexOverlap stresses conflict resolution: every
// entry overlaps its predecessor, maximizing splits.
func BenchmarkBuildGlobalIndexOverlap(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15, 1 << 17} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			benchBuild(b, overlappingEntries(n))
		})
	}
}

func BenchmarkGlobalIndexLookup(b *testing.B) {
	entries := make([]IndexEntry, 4096)
	for i := range entries {
		entries[i] = IndexEntry{
			LogicalOffset: int64(i) * 4096,
			Length:        4096,
			Writer:        int32(i % 16),
			LogOffset:     int64(i/16) * 4096,
			Timestamp:     uint64(i + 1),
		}
	}
	g := BuildGlobalIndex(entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Lookup(int64(i%4000)*4096, 65536); len(got) == 0 {
			b.Fatal("empty lookup")
		}
	}
}

func BenchmarkFlatten(b *testing.B) {
	c := buildContainer(b, 8, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.OpenReader()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Flatten(fmt.Sprintf("/flat.%d", i)); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}
