package core

import (
	"fmt"
	"io"
	"testing"
)

// Library micro-benchmarks: the costs a PLFS user actually pays — appends
// on the write path, index merge on open, resolved lookups on the read
// path — independent of any simulated file system.

func BenchmarkWriterAppend4K(b *testing.B) {
	backend := NewMemBackend()
	c, err := CreateContainer(backend, "/c", DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	w, err := c.OpenWriter(0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.WriteAt(buf, int64(i)*8192); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterAppendCoalesced(b *testing.B) {
	backend := NewMemBackend()
	c, err := CreateContainer(backend, "/c", Options{NumHostdirs: 32, CoalesceIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	w, err := c.OpenWriter(0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.WriteAt(buf, int64(i)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func buildContainer(b *testing.B, writers, recsPerWriter int) *Container {
	b.Helper()
	backend := NewMemBackend()
	c, err := CreateContainer(backend, "/c", DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	for wtr := 0; wtr < writers; wtr++ {
		w, err := c.OpenWriter(int32(wtr))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < recsPerWriter; i++ {
			off := int64((i*writers + wtr) * 4096)
			if _, err := w.WriteAt(buf, off); err != nil {
				b.Fatal(err)
			}
		}
		w.Close()
	}
	return c
}

func BenchmarkOpenReaderIndexMerge(b *testing.B) {
	for _, writers := range []int{4, 32} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			c := buildContainer(b, writers, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := c.OpenReader()
				if err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
		})
	}
}

func BenchmarkReaderStridedReadBack(b *testing.B) {
	c := buildContainer(b, 16, 256)
	r, err := c.OpenReader()
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%8) << 20
		if _, err := r.ReadAt(buf, off); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGlobalIndex(b *testing.B) {
	entries := make([]IndexEntry, 8192)
	for i := range entries {
		entries[i] = IndexEntry{
			LogicalOffset: int64((i * 37) % 4096 * 4096),
			Length:        4096,
			Writer:        int32(i % 64),
			LogOffset:     int64(i) * 4096,
			Timestamp:     uint64(i + 1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := BuildGlobalIndex(entries)
		if g.NumEntries() != len(entries) {
			b.Fatal("bad merge")
		}
	}
}

func BenchmarkGlobalIndexLookup(b *testing.B) {
	entries := make([]IndexEntry, 4096)
	for i := range entries {
		entries[i] = IndexEntry{
			LogicalOffset: int64(i) * 4096,
			Length:        4096,
			Writer:        int32(i % 16),
			LogOffset:     int64(i/16) * 4096,
			Timestamp:     uint64(i + 1),
		}
	}
	g := BuildGlobalIndex(entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Lookup(int64(i%4000)*4096, 65536); len(got) == 0 {
			b.Fatal("empty lookup")
		}
	}
}

func BenchmarkFlatten(b *testing.B) {
	c := buildContainer(b, 8, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.OpenReader()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Flatten(fmt.Sprintf("/flat.%d", i)); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}
