package core

import (
	"errors"
	"fmt"
	"time"
)

// This file is PLFS's side of fault tolerance: what a writer does when the
// backing store starts failing under it. The log-structured layout makes
// recovery unusually cheap — a writer owns its logs outright, so after a
// persistent append error it simply abandons them and opens a fresh
// *generation* of data+index logs (a failover), losing nothing already
// durable: index entries carry the originating log's id in their Writer
// field, so one writer's logical extents may span generations and the
// read path merges them like any other set of logs. This is exactly the
// PLFS argument applied to failures — transforming "rewrite the damaged
// file" into "append somewhere else".

// ErrTruncatedLog reports a data log shorter than its index claims — the
// signature of a writer that crashed after appending an index entry but
// before its data append became durable. Reads surface it instead of
// fabricating zero bytes (errors.Is-matchable under wrapped detail).
var ErrTruncatedLog = errors.New("plfs: data log truncated")

// genShift packs a writer's failover generation into the IndexEntry
// Writer field: log id = writer id + generation<<genShift. Writer ids
// must stay below 1<<genShift when retries are enabled.
const genShift = 20

// logKey derives the on-backend log id for a writer generation.
func logKey(id int32, gen int32) int32 { return id + gen<<genShift }

// RetryPolicy tunes a Writer's handling of backend append errors. The
// zero value disables retries: the first error surfaces to the caller,
// preserving the pre-fault-layer behaviour.
type RetryPolicy struct {
	// MaxRetries bounds in-place retries of a failed append before the
	// writer fails over to a fresh generation of logs.
	MaxRetries int

	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff (which defaults to
	// BaseBackoff when zero). The writer never sleeps on its own —
	// accumulated backoff is reported through WriterFaultStats so a
	// simulation charges it to virtual time; set Sleep for deployments
	// that should actually wait.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Sleep, when non-nil, is invoked with each backoff delay.
	Sleep func(time.Duration)

	// Appends are assumed atomic per record at the backend: a failed
	// data-log Write may report partially appended bytes (they become
	// dropped, never-indexed garbage and are accounted as such), but a
	// torn index record is not repaired — it surfaces at read time
	// through readIndexLog's corruption checks.
}

// enabled reports whether the policy does anything at all.
func (p RetryPolicy) enabled() bool { return p.MaxRetries > 0 }

// WriterFaultStats aggregates one writer's recovery activity.
type WriterFaultStats struct {
	// Retries counts in-place re-appends after a backend error.
	Retries int64

	// Failovers counts generation switches after persistent errors.
	Failovers int64

	// DroppedBytes counts data-log bytes appended by failed writes and
	// abandoned: the index never references them, so reads stay correct,
	// but later entries' log offsets account for them.
	DroppedBytes int64

	// Backoff is the total backoff the policy's schedule imposed.
	Backoff time.Duration
}

// FaultStats reports the writer's recovery activity so far.
func (w *Writer) FaultStats() WriterFaultStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.faults
}

// Generation reports how many times the writer has failed over.
func (w *Writer) Generation() int32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// backoffLocked charges one step of the capped exponential schedule and
// returns the next delay.
func (w *Writer) backoffLocked(delay time.Duration) time.Duration {
	pol := w.c.opts.Retry
	w.faults.Backoff += delay
	if pol.Sleep != nil && delay > 0 {
		pol.Sleep(delay)
	}
	next := delay * 2
	maxB := pol.MaxBackoff
	if maxB <= 0 {
		maxB = pol.BaseBackoff
	}
	if next > maxB {
		next = maxB
	}
	return next
}

// dropLocked accounts bytes a failed append left in the data log. They
// advance the log offset — the next entry must not claim them — but no
// index entry will ever reference them.
func (w *Writer) dropLocked(n int) {
	if n <= 0 {
		return
	}
	w.dataOff += int64(n)
	w.faults.DroppedBytes += int64(n)
	w.c.cDropped.Add(int64(n))
}

// recoverDataAppendLocked retries a failed data-log append per the retry
// policy and, when the error persists, fails over to a new generation and
// appends there. Returns the byte count of the successful append.
func (w *Writer) recoverDataAppendLocked(buf []byte, wrote int, err error) (int, error) {
	pol := w.c.opts.Retry
	if !pol.enabled() {
		return wrote, err
	}
	w.dropLocked(wrote)
	delay := pol.BaseBackoff
	for attempt := 0; attempt < pol.MaxRetries; attempt++ {
		delay = w.backoffLocked(delay)
		w.faults.Retries++
		w.c.cRetries.Inc()
		n, rerr := w.data.Write(buf)
		if rerr == nil {
			return n, nil
		}
		w.dropLocked(n)
		err = rerr
	}
	if ferr := w.failoverLocked(); ferr != nil {
		return 0, fmt.Errorf("plfs: writer %d failover after %v: %w", w.id, err, ferr)
	}
	n, rerr := w.data.Write(buf)
	if rerr != nil {
		w.dropLocked(n)
		return 0, fmt.Errorf("plfs: writer %d gen %d data append: %w", w.id, w.gen, rerr)
	}
	return n, nil
}

// recoverIndexAppendLocked is recoverDataAppendLocked for the index log.
// A persistent index error also forces a failover — the data already
// written stays readable because the re-appended entry still names the
// generation that holds it.
func (w *Writer) recoverIndexAppendLocked(rec []byte, err error) error {
	pol := w.c.opts.Retry
	if !pol.enabled() {
		return err
	}
	delay := pol.BaseBackoff
	for attempt := 0; attempt < pol.MaxRetries; attempt++ {
		delay = w.backoffLocked(delay)
		w.faults.Retries++
		w.c.cRetries.Inc()
		if _, rerr := w.index.Write(rec); rerr == nil {
			return nil
		} else {
			err = rerr
		}
	}
	if ferr := w.failoverLocked(); ferr != nil {
		return fmt.Errorf("plfs: writer %d failover after %v: %w", w.id, err, ferr)
	}
	if _, rerr := w.index.Write(rec); rerr != nil {
		return fmt.Errorf("plfs: writer %d gen %d index append: %w", w.id, w.gen, rerr)
	}
	return nil
}

// failoverLocked abandons the current generation's logs and opens fresh
// ones under the derived log id. Any coalesced-but-unflushed entry is
// appended to the new index log first (it still names the old
// generation's data log, which remains readable on the backend).
func (w *Writer) failoverLocked() error {
	if w.id >= 1<<genShift {
		return fmt.Errorf("plfs: writer id %d too large for failover generations", w.id)
	}
	gen := w.gen + 1
	key := logKey(w.id, gen)
	hd := w.c.hostdir(key)
	data, err := w.c.backend.Create(fmt.Sprintf("%s/%s%d", hd, dataPrefix, key))
	if err != nil {
		return err
	}
	index, err := w.c.backend.Create(fmt.Sprintf("%s/%s%d", hd, indexPrefix, key))
	if err != nil {
		data.Close() //lint:allow errflow -- the Create failure is the error; this close releases the unused data handle
		return err
	}
	// Best-effort close of the dead handles; their contents stay on the
	// backend for the reader.
	//lint:allow errflow -- dead handles after a simulated crash; nothing to report to
	w.data.Close()
	w.index.Close() //lint:allow errflow -- dead handles after a simulated crash; nothing to report to
	pending := w.pending
	w.pending = nil
	w.data, w.index = data, index
	w.dataOff = 0
	w.gen = gen
	w.logID = key
	w.faults.Failovers++
	w.c.cFailovers.Inc()
	if pending != nil {
		rec := encodeEntryRecord(*pending, w.c.version >= 2)
		if _, err := w.index.Write(rec); err != nil {
			return fmt.Errorf("plfs: writer %d gen %d pending entry: %w", w.id, gen, err)
		}
		w.nEntries++
		w.c.cIndexEntries.Inc()
	}
	return nil
}

// recoverFramedAppendLocked retries a failed framed (v2) data-log append.
// A frame is only usable if it lands whole: once the backend admits to a
// partial append, retrying in place would interleave fragments of two
// frame copies, so the writer accounts the torn bytes (plfsck truncates
// or ignores them on a later open), fails over to a fresh generation,
// and appends the frame there. Only clean zero-byte failures are retried
// in place.
func (w *Writer) recoverFramedAppendLocked(frame []byte, wrote int, err error) error {
	pol := w.c.opts.Retry
	if !pol.enabled() {
		return err
	}
	delay := pol.BaseBackoff
	for attempt := 0; wrote == 0 && attempt < pol.MaxRetries; attempt++ {
		delay = w.backoffLocked(delay)
		w.faults.Retries++
		w.c.cRetries.Inc()
		n, rerr := w.data.Write(frame)
		if rerr == nil {
			return nil
		}
		wrote, err = n, rerr
	}
	w.dropLocked(wrote)
	if ferr := w.failoverLocked(); ferr != nil {
		return fmt.Errorf("plfs: writer %d failover after %v: %w", w.id, err, ferr)
	}
	n, rerr := w.data.Write(frame)
	if rerr != nil {
		w.dropLocked(n)
		return fmt.Errorf("plfs: writer %d gen %d data append: %w", w.id, w.gen, rerr)
	}
	return nil
}

// FaultyBackend wraps a Backend and fails a scripted number of appends —
// the deterministic stand-in for a storage system dropping out from under
// a writer. Failures are whole-operation for index-record-sized appends
// and may be partial for larger ones (PartialBytes), exercising the
// dropped-extent accounting.
type FaultyBackend struct {
	Backend

	// FailNextWrites makes that many upcoming Write calls fail.
	FailNextWrites int

	// PartialBytes, when > 0, makes each failed Write first append that
	// many bytes of the payload (only when the payload is larger, so
	// index records never tear).
	PartialBytes int

	// FailCreates makes Create fail while positive (blocks failover).
	FailCreates int

	// Writes and Failures count Write calls seen and failed.
	Writes, Failures int
}

// errInjected is the error injected by FaultyBackend.
var errInjected = errors.New("injected backend write failure")

// NewFaultyBackend wraps b with no failures armed.
func NewFaultyBackend(b Backend) *FaultyBackend { return &FaultyBackend{Backend: b} }

// Create delegates to the wrapped backend unless create failures are armed.
func (b *FaultyBackend) Create(path string) (BackendFile, error) {
	if b.FailCreates > 0 {
		b.FailCreates--
		return nil, fmt.Errorf("%w: create %s", errInjected, path)
	}
	f, err := b.Backend.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{BackendFile: f, b: b}, nil
}

// Open wraps opened files so appends through reopened handles also fail.
func (b *FaultyBackend) Open(path string) (BackendFile, error) {
	f, err := b.Backend.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{BackendFile: f, b: b}, nil
}

type faultyFile struct {
	BackendFile
	b *FaultyBackend
}

func (f *faultyFile) Write(p []byte) (int, error) {
	f.b.Writes++
	if f.b.FailNextWrites > 0 {
		f.b.FailNextWrites--
		f.b.Failures++
		n := 0
		if pb := f.b.PartialBytes; pb > 0 && pb < len(p) {
			n, _ = f.BackendFile.Write(p[:pb])
		}
		return n, errInjected
	}
	return f.BackendFile.Write(p)
}
