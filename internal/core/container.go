//lint:allowfile goroutine -- sanctioned site: PLFS containers are written by N uncoordinated ranks concurrently; per-writer locks and the bounded ingest pool are the product, not an accident

package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Container names within a PLFS container directory.
const (
	hostdirPrefix = "hostdir."
	dataPrefix    = "data."
	indexPrefix   = "index."
	accessFile    = ".plfsaccess"
)

// Options tunes container layout.
type Options struct {
	// NumHostdirs spreads per-writer logs over this many subdirectories to
	// avoid metadata hot-spotting on one directory (PLFS's hostdir
	// mechanism). Must be >= 1.
	NumHostdirs int

	// CoalesceIndex, when true, merges contiguous same-writer index
	// entries at write time, shrinking the index logs (an ablation of the
	// follow-on index-compression work).
	CoalesceIndex bool

	// IngestWorkers bounds the goroutines decoding hostdir index logs in
	// OpenReader. 0 means runtime.GOMAXPROCS(0). Results are merged in
	// hostdir order, so the GlobalIndex is identical for any worker count.
	IngestWorkers int

	// Metrics, when non-nil, receives the container's counters (writes,
	// index entries, merge sizes, read-resolution fan-out) under the
	// "plfs." prefix. Nil disables instrumentation at the cost of one
	// branch per probe site.
	Metrics *obs.Registry

	// Retry governs writer recovery from backend append errors (see
	// faults.go). The zero value surfaces the first error unchanged.
	Retry RetryPolicy

	// Framed selects the v2 checksummed log format at CreateContainer:
	// every data and index record is length-prefixed and crc32c-trailed
	// (see frame.go), enabling VerifyOnOpen recovery. The format is
	// recorded in the access file, so an existing container keeps the
	// format it was created with regardless of this flag.
	Framed bool

	// VerifyOnOpen runs the plfsck recovery pass while OpenReader scans
	// a v2 container: index frames failing their checksum are dropped,
	// torn log tails truncated (where the backend supports Truncator),
	// and data frames failing their checksum quarantined — reads
	// overlapping them return ErrCorruptExtent. A v1 container has no
	// checksums to verify, so the flag is inert there.
	VerifyOnOpen bool
}

// DefaultOptions matches the PLFS defaults: 32 hostdirs, no write-time
// coalescing.
func DefaultOptions() Options { return Options{NumHostdirs: 32} }

func (o Options) validate() error {
	if o.NumHostdirs < 1 {
		return fmt.Errorf("plfs: NumHostdirs %d < 1", o.NumHostdirs)
	}
	if o.IngestWorkers < 0 {
		return fmt.Errorf("plfs: IngestWorkers %d < 0", o.IngestWorkers)
	}
	return nil
}

// ingestWorkers resolves the effective worker count for n index logs.
func (o Options) ingestWorkers(n int) int {
	w := o.IngestWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Container is an open PLFS container: the middleware's representation of
// one logical file. Concurrent writers each obtain their own Writer; a
// Reader merges all logs.
type Container struct {
	backend Backend
	path    string
	opts    Options
	clock   atomic.Uint64

	// version is the container's negotiated log format: 1 appends bare
	// records (the legacy byte-identical path), 2 frames every record
	// with a length prefix and crc32c trailer.
	version int

	mu      sync.Mutex
	writers map[int32]*Writer

	// Instrument handles (nil without Options.Metrics).
	cWrites        *obs.Counter
	cBytesData     *obs.Counter
	cIndexEntries  *obs.Counter
	cReads         *obs.Counter
	cMerges        *obs.Counter
	cMergedEntries *obs.Counter
	cMergedExtents *obs.Counter
	cIngestLogs    *obs.Counter
	cLookupReuse   *obs.Counter
	cRetries       *obs.Counter
	cFailovers     *obs.Counter
	cDropped       *obs.Counter
	hReadFanout    *obs.Histogram

	// Integrity instrument handles, registered only under VerifyOnOpen
	// so verification-free snapshots stay byte-identical.
	cFramesOK   *obs.Counter
	cDroppedRec *obs.Counter
	cTornBytes  *obs.Counter
	cQuarExt    *obs.Counter
	cQuarReads  *obs.Counter
}

// instrument wires the container's probe handles from Options.Metrics.
// Counter names are container-independent so that a run over many
// containers aggregates naturally.
func (c *Container) instrument() *Container {
	reg := c.opts.Metrics
	if reg == nil {
		return c
	}
	c.cWrites = reg.Counter("plfs.writes")
	c.cBytesData = reg.Counter("plfs.bytes_data")
	c.cIndexEntries = reg.Counter("plfs.index.entries")
	c.cReads = reg.Counter("plfs.reads")
	c.cMerges = reg.Counter("plfs.index.merges")
	c.cMergedEntries = reg.Counter("plfs.index.entries_merged")
	c.cMergedExtents = reg.Counter("plfs.index.extents_resolved")
	// Ingest width and scratch-buffer reuse are worker-count-independent,
	// so snapshots stay byte-identical across IngestWorkers settings (the
	// actual goroutine count is reported by tooling, not the registry).
	c.cIngestLogs = reg.Counter("plfs.index.ingest.logs")
	c.cLookupReuse = reg.Counter("plfs.lookup.scratch_reuse")
	c.cRetries = reg.Counter("plfs.write.retries")
	c.cFailovers = reg.Counter("plfs.write.failovers")
	c.cDropped = reg.Counter("plfs.write.dropped_bytes")
	c.hReadFanout = reg.Histogram("plfs.read.fanout", obs.CountBuckets())
	if c.opts.VerifyOnOpen {
		c.cFramesOK = reg.Counter("plfs.integrity.frames_verified")
		c.cDroppedRec = reg.Counter("plfs.integrity.records_dropped")
		c.cTornBytes = reg.Counter("plfs.integrity.torn_bytes")
		c.cQuarExt = reg.Counter("plfs.integrity.quarantined_extents")
		c.cQuarReads = reg.Counter("plfs.integrity.quarantined_reads")
	}
	return c
}

// CreateContainer makes a new container directory tree on the backend.
func CreateContainer(b Backend, path string, opts Options) (*Container, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if b.Exists(path) {
		return nil, fmt.Errorf("%w: %s", ErrExist, path)
	}
	if err := b.Mkdir(path); err != nil {
		return nil, err
	}
	for i := 0; i < opts.NumHostdirs; i++ {
		if err := b.Mkdir(fmt.Sprintf("%s/%s%d", path, hostdirPrefix, i)); err != nil {
			return nil, err
		}
	}
	// The access file marks the directory as a PLFS container (it is what
	// makes the container look like a regular file through the FUSE
	// interface) and records the negotiated log format version.
	version := 1
	if opts.Framed {
		version = 2
	}
	f, err := b.Create(path + "/" + accessFile)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(fmt.Sprintf("plfs container v%d\n", version))); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	c := &Container{backend: b, path: path, opts: opts, version: version, writers: make(map[int32]*Writer)}
	return c.instrument(), nil
}

// containerVersion parses the access file's signature line. Legacy
// containers predating versioned signatures read as v1.
func containerVersion(b Backend, path string) (int, error) {
	f, err := b.Open(path + "/" + accessFile)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf, err := readAll(f, "access file")
	if err != nil {
		return 0, err
	}
	if len(buf) == 0 {
		return 1, nil
	}
	var v int
	if n, err := fmt.Sscanf(string(buf), "plfs container v%d", &v); err != nil || n != 1 {
		return 0, fmt.Errorf("plfs: unrecognized container signature %q", string(buf))
	}
	if v < 1 || v > 2 {
		return 0, fmt.Errorf("plfs: unsupported container version %d", v)
	}
	return v, nil
}

// OpenContainer opens an existing container, negotiating the log format
// from its access file.
func OpenContainer(b Backend, path string, opts Options) (*Container, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if !b.Exists(path + "/" + accessFile) {
		return nil, fmt.Errorf("%w: %s is not a PLFS container", ErrNotExist, path)
	}
	version, err := containerVersion(b, path)
	if err != nil {
		return nil, err
	}
	c := &Container{backend: b, path: path, opts: opts, version: version, writers: make(map[int32]*Writer)}
	return c.instrument(), nil
}

// IsContainer reports whether path holds a PLFS container.
func IsContainer(b Backend, path string) bool {
	return b.Exists(path + "/" + accessFile)
}

// Path returns the container's backing path.
func (c *Container) Path() string { return c.path }

func (c *Container) hostdir(writer int32) string {
	return fmt.Sprintf("%s/%s%d", c.path, hostdirPrefix, int(writer)%c.opts.NumHostdirs)
}

// Writer is one process's (rank's) write handle: an append-only data log
// plus an append-only index log. Writers never coordinate with each other —
// that independence is the whole point of PLFS.
type Writer struct {
	c       *Container
	id      int32
	data    BackendFile
	index   BackendFile
	dataOff int64
	closed  bool

	// gen counts failovers; logID (= logKey(id, gen)) names the current
	// generation's log pair and stamps new index entries, so entries from
	// all generations merge like independent writers (see faults.go).
	gen    int32
	logID  int32
	faults WriterFaultStats

	// pending is the not-yet-flushed last entry when coalescing.
	pending   *IndexEntry
	mu        sync.Mutex
	nWrites   int64
	nEntries  int64
	bytesData int64
}

// OpenWriter creates (or reopens) the write handle for writer id. Each id
// may have at most one live Writer per Container.
func (c *Container) OpenWriter(id int32) (*Writer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, live := c.writers[id]; live {
		return nil, fmt.Errorf("plfs: writer %d already open", id)
	}
	hd := c.hostdir(id)
	dataPath := fmt.Sprintf("%s/%s%d", hd, dataPrefix, id)
	indexPath := fmt.Sprintf("%s/%s%d", hd, indexPrefix, id)
	var data, index BackendFile
	var err error
	if c.backend.Exists(dataPath) {
		if data, err = c.backend.Open(dataPath); err != nil {
			return nil, err
		}
		if index, err = c.backend.Open(indexPath); err != nil {
			return nil, err
		}
	} else {
		if data, err = c.backend.Create(dataPath); err != nil {
			return nil, err
		}
		if index, err = c.backend.Create(indexPath); err != nil {
			return nil, err
		}
	}
	w := &Writer{c: c, id: id, logID: id, data: data, index: index, dataOff: data.Size()}
	c.writers[id] = w
	return w, nil
}

// WriteAt records a write of buf at logical offset off. The data is
// appended to the writer's data log; the mapping is appended to its index
// log. The call never touches any other writer's state.
func (w *Writer) WriteAt(buf []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if len(buf) == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, fmt.Errorf("plfs: negative offset %d", off)
	}
	var payloadAt int64
	if w.c.version >= 2 {
		// v2: one [len][payload][crc32c] frame per write; the index entry
		// names the payload start, so reads are frame-oblivious.
		frame := appendFrame(make([]byte, 0, frameOverhead+len(buf)), buf)
		n, err := w.data.Write(frame)
		if err != nil {
			if err = w.recoverFramedAppendLocked(frame, n, err); err != nil {
				return 0, err
			}
		}
		payloadAt = w.dataOff + frameHeaderSize
		w.dataOff += int64(len(frame))
	} else {
		n, err := w.data.Write(buf)
		if err != nil {
			// Retry in place, then fail over to a new log generation (see
			// faults.go). Recovery adjusts dataOff for dropped bytes and
			// generation resets, so the entry below stays truthful.
			if n, err = w.recoverDataAppendLocked(buf, n, err); err != nil {
				return 0, err
			}
		}
		payloadAt = w.dataOff
		w.dataOff += int64(len(buf))
	}
	entry := IndexEntry{
		LogicalOffset: off,
		Length:        int64(len(buf)),
		Writer:        w.logID,
		LogOffset:     payloadAt,
		Timestamp:     w.c.clock.Add(1),
	}
	w.nWrites++
	w.bytesData += int64(len(buf))
	w.c.cWrites.Inc()
	w.c.cBytesData.Add(int64(len(buf)))

	if w.c.opts.CoalesceIndex {
		if p := w.pending; p != nil && p.Writer == entry.Writer &&
			p.LogicalOffset+p.Length == entry.LogicalOffset &&
			p.LogOffset+p.Length == entry.LogOffset {
			p.Length += entry.Length
			p.Timestamp = entry.Timestamp
			return len(buf), nil
		}
		if err := w.flushPendingLocked(); err != nil {
			return len(buf), err
		}
		e := entry
		w.pending = &e
		return len(buf), nil
	}
	return len(buf), w.appendEntryLocked(entry)
}

func (w *Writer) appendEntryLocked(e IndexEntry) error {
	if w.c.version >= 2 {
		frame := encodeEntryRecord(e, true)
		if _, err := w.index.Write(frame); err != nil {
			if err = w.recoverIndexAppendLocked(frame, err); err != nil {
				return err
			}
		}
	} else {
		var rec [indexEntrySize]byte
		e.encode(rec[:])
		if _, err := w.index.Write(rec[:]); err != nil {
			if err = w.recoverIndexAppendLocked(rec[:], err); err != nil {
				return err
			}
		}
	}
	w.nEntries++
	w.c.cIndexEntries.Inc()
	return nil
}

func (w *Writer) flushPendingLocked() error {
	if w.pending == nil {
		return nil
	}
	e := *w.pending
	w.pending = nil
	return w.appendEntryLocked(e)
}

// Sync flushes any coalesced-but-unwritten index entry.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.flushPendingLocked()
}

// Close flushes and releases the handle.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	err := w.flushPendingLocked()
	w.closed = true
	w.mu.Unlock()

	w.c.mu.Lock()
	delete(w.c.writers, w.id)
	w.c.mu.Unlock()
	if e := w.data.Close(); e != nil && err == nil {
		err = e
	}
	if e := w.index.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

// Stats reports writer-side counters.
func (w *Writer) Stats() (writes, indexEntries, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.nEntries
	if w.pending != nil {
		n++
	}
	return w.nWrites, n, w.bytesData
}

// Reader resolves the container's logical contents. Opening a reader scans
// every hostdir for index logs and merges them into a GlobalIndex; reads
// then binary-search the index and fetch from the data logs.
type Reader struct {
	c     *Container
	index *GlobalIndex
	data  map[int32]BackendFile

	// quar holds, per data log, the byte ranges plfsck quarantined —
	// payloads of frames whose checksum failed. Reads overlapping one
	// return ErrCorruptExtent. Nil unless VerifyOnOpen found damage.
	quar map[int32][]logRange

	// fsck is the VerifyOnOpen recovery report (nil when no pass ran).
	fsck *FsckReport

	// scratch is the steady-state piece buffer: ReadAt claims it with an
	// atomic swap and returns it when done, so repeated reads allocate
	// nothing while concurrent reads safely fall back to a fresh buffer.
	scratch atomic.Pointer[[]Piece]
}

// indexLogRef locates one writer's index (and data) log pair.
type indexLogRef struct {
	hostdir string
	id      int32
}

// ingestLog decodes one writer's index log and opens its data log. For a
// v2 container it verifies index frames — strictly by default, leniently
// (dropping damaged frames, truncating torn tails, quarantining data
// extents) under VerifyOnOpen, reporting repairs through the returned
// logFsck (nil for v1 or a clean strict pass).
func (c *Container) ingestLog(ref indexLogRef) ([]IndexEntry, BackendFile, *logFsck, error) {
	idx, err := c.backend.Open(fmt.Sprintf("%s/%s%d", ref.hostdir, indexPrefix, ref.id))
	if err != nil {
		return nil, nil, nil, err
	}
	var es []IndexEntry
	var lf *logFsck
	if c.version < 2 {
		es, err = readIndexLog(idx)
	} else {
		var buf []byte
		if buf, err = readAll(idx, "index log"); err == nil {
			if c.opts.VerifyOnOpen {
				var dropped, torn int64
				es, dropped, torn, err = decodeFramedIndexLog(buf, false)
				lf = &logFsck{id: ref.id, frames: int64(len(es)) + dropped, dropped: dropped, torn: torn}
				if torn > 0 {
					truncateTail(idx, int64(len(buf))-torn)
				}
			} else {
				es, _, _, err = decodeFramedIndexLog(buf, true)
			}
		}
	}
	if e := idx.Close(); e != nil && err == nil {
		err = e
	}
	if err != nil {
		return nil, nil, nil, err
	}
	df, err := c.backend.Open(fmt.Sprintf("%s/%s%d", ref.hostdir, dataPrefix, ref.id))
	if err != nil {
		return nil, nil, nil, err
	}
	if lf != nil {
		// Sweep the data log's frames too: quarantine checksum failures,
		// truncate the torn tail a crashed append left behind.
		buf, err := readAll(df, "data log")
		if err != nil {
			df.Close() //lint:allow errflow -- the read failure is the error being reported; this close just releases the handle
			return nil, nil, nil, err
		}
		quarantined, frames, clean := verifyDataFrames(buf)
		lf.quarantined = quarantined
		lf.frames += frames
		if torn := int64(len(buf)) - clean; torn > 0 {
			lf.torn += torn
			truncateTail(df, clean)
		}
	}
	return es, df, lf, nil
}

// OpenReader builds the merged read view. Any live writers should Sync (or
// Close) first or their trailing coalesced entries may be invisible.
//
// Index logs are decoded by a bounded worker pool (Options.IngestWorkers)
// and the per-log results are concatenated in hostdir-scan order before
// the merge, so the GlobalIndex is byte-identical no matter how the work
// was scheduled.
func (c *Container) OpenReader() (*Reader, error) {
	var refs []indexLogRef
	for i := 0; i < c.opts.NumHostdirs; i++ {
		hd := fmt.Sprintf("%s/%s%d", c.path, hostdirPrefix, i)
		names, err := c.backend.ReadDir(hd)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			var id int32
			if _, err := fmt.Sscanf(name, indexPrefix+"%d", &id); err != nil || fmt.Sprintf("%s%d", indexPrefix, id) != name {
				continue
			}
			refs = append(refs, indexLogRef{hostdir: hd, id: id})
		}
	}

	perLog := make([][]IndexEntry, len(refs))
	files := make([]BackendFile, len(refs))
	fscks := make([]*logFsck, len(refs))
	if workers := c.opts.ingestWorkers(len(refs)); workers <= 1 {
		for t, ref := range refs {
			es, df, lf, err := c.ingestLog(ref)
			if err != nil {
				closeAll(files)
				return nil, err
			}
			perLog[t], files[t], fscks[t] = es, df, lf
		}
	} else {
		var (
			nextTask atomic.Int64
			failed   atomic.Bool
			errOnce  sync.Once
			firstErr error
			wg       sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed.Load() {
					t := int(nextTask.Add(1)) - 1
					if t >= len(refs) {
						return
					}
					es, df, lf, err := c.ingestLog(refs[t])
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						failed.Store(true)
						return
					}
					perLog[t], files[t], fscks[t] = es, df, lf
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			closeAll(files)
			return nil, firstErr
		}
	}

	total := 0
	for _, es := range perLog {
		total += len(es)
	}
	entries := make([]IndexEntry, 0, total)
	data := make(map[int32]BackendFile, len(refs))
	for t, es := range perLog {
		entries = append(entries, es...)
		data[refs[t].id] = files[t]
	}
	gi := BuildGlobalIndex(entries)
	// Index-merge cost: raw entries in vs resolved extents out. The ratio
	// measures fragmentation, the driver of read-back index size.
	c.cMerges.Inc()
	c.cMergedEntries.Add(int64(gi.NumEntries()))
	c.cMergedExtents.Add(int64(gi.NumExtents()))
	c.cIngestLogs.Add(int64(len(refs)))
	r := &Reader{c: c, index: gi, data: data}
	if c.opts.VerifyOnOpen && c.version >= 2 {
		// Merge the per-log fsck results (populated in ref order, so the
		// report is identical for any worker count).
		report := &FsckReport{IndexLogs: len(refs), DataLogs: len(refs)}
		for _, lf := range fscks {
			if lf == nil {
				continue
			}
			report.FramesVerified += lf.frames
			report.RecordsDropped += lf.dropped
			report.TornBytes += lf.torn
			report.QuarantinedExtents += len(lf.quarantined)
			for _, q := range lf.quarantined {
				report.QuarantinedBytes += q.end - q.off
			}
			if len(lf.quarantined) > 0 {
				if r.quar == nil {
					r.quar = make(map[int32][]logRange)
				}
				r.quar[lf.id] = lf.quarantined
			}
		}
		c.cFramesOK.Add(report.FramesVerified)
		c.cDroppedRec.Add(report.RecordsDropped)
		c.cTornBytes.Add(report.TornBytes)
		c.cQuarExt.Add(int64(report.QuarantinedExtents))
		r.fsck = report
	}
	return r, nil
}

// closeAll releases whichever backend files a failed ingest already opened.
func closeAll(files []BackendFile) {
	for _, f := range files {
		if f != nil {
			f.Close() //lint:allow errflow -- best-effort release on the ingest failure path; the ingest error is the one reported
		}
	}
}

// Size returns the logical file size.
func (r *Reader) Size() int64 { return r.index.Size() }

// Index exposes the merged index (read-only use).
func (r *Reader) Index() *GlobalIndex { return r.index }

// FsckReport returns the VerifyOnOpen recovery report, or nil when no
// verification pass ran (v1 container or the option off).
func (r *Reader) FsckReport() *FsckReport { return r.fsck }

// ReadAt fills buf from logical offset off. Holes read as zeros. It
// returns io.EOF when the range extends past the logical size, matching
// io.ReaderAt semantics.
func (r *Reader) ReadAt(buf []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("plfs: negative offset %d", off)
	}
	want := int64(len(buf))
	avail := r.index.Size() - off
	if avail <= 0 {
		return 0, io.EOF
	}
	n := want
	if n > avail {
		n = avail
	}
	// Claim the reader's scratch piece buffer; a concurrent ReadAt that
	// loses the swap race simply starts from a nil slice.
	scratch := r.scratch.Swap(nil)
	if scratch == nil {
		scratch = new([]Piece)
	} else {
		r.c.cLookupReuse.Inc()
	}
	pieces := r.index.LookupAppend((*scratch)[:0], off, n)
	// Read-resolution fan-out: how many log pieces one logical read
	// touches — 1 for a uniform restart, many for shifted reads. Piece
	// coalescing means one piece per contiguous log run, not per extent.
	r.c.cReads.Inc()
	r.c.hReadFanout.Observe(float64(len(pieces)))
	err := r.readPieces(buf, off, pieces)
	*scratch = pieces
	r.scratch.Store(scratch)
	if err != nil {
		return 0, err
	}
	if n < want {
		return int(n), io.EOF
	}
	return int(n), nil
}

// readPieces fills buf (based at logical offset off) from resolved pieces.
// Like readIndexLog, it retries legal short reads until each piece is
// complete and surfaces a log that ends before its indexed extent as
// ErrTruncatedLog — the signature of a writer that crashed between its
// index append and its data append becoming durable. Silently returning
// whatever the log had would hand the application zero-filled bytes it
// never wrote.
func (r *Reader) readPieces(buf []byte, off int64, pieces []Piece) error {
	for _, p := range pieces {
		dst := buf[p.Logical-off : p.Logical-off+p.Length]
		if p.Writer < 0 {
			for i := range dst {
				dst[i] = 0
			}
			continue
		}
		df, ok := r.data[p.Writer]
		if !ok {
			return fmt.Errorf("plfs: index references missing data log for writer %d", p.Writer)
		}
		for _, q := range r.quar[p.Writer] {
			if p.LogOff < q.end && q.off < p.LogOff+p.Length {
				r.c.cQuarReads.Inc()
				return fmt.Errorf("%w: writer %d log bytes [%d,%d)",
					ErrCorruptExtent, p.Writer, q.off, q.end)
			}
		}
		for got := 0; got < len(dst); {
			n, err := df.ReadAt(dst[got:], p.LogOff+int64(got))
			got += n
			if got >= len(dst) {
				break
			}
			switch {
			case err == io.EOF:
				return fmt.Errorf("%w: writer %d log offset %d: %d of %d bytes",
					ErrTruncatedLog, p.Writer, p.LogOff, got, len(dst))
			case err != nil:
				return err
			case n == 0:
				return fmt.Errorf("plfs: data log read stalled at %d of %d bytes: %w",
					got, len(dst), io.ErrNoProgress)
			}
		}
	}
	return nil
}

// Close releases the data log handles.
func (r *Reader) Close() error {
	var err error
	for _, f := range r.data {
		if e := f.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Flatten materializes the logical file into a flat output file on the
// backend — the "impact determined on later reading" made durable. It
// returns the number of bytes written.
func (r *Reader) Flatten(dstPath string) (int64, error) {
	dst, err := r.c.backend.Create(dstPath)
	if err != nil {
		return 0, err
	}
	defer dst.Close()
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	var written int64
	for off := int64(0); off < r.Size(); off += chunk {
		n := r.Size() - off
		if n > chunk {
			n = chunk
		}
		if _, err := r.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return written, err
		}
		m, err := dst.Write(buf[:n])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
