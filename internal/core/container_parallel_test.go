package core

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/obs"
)

// buildStridedContainer lays down an N-1 strided checkpoint across enough
// writers to populate many hostdirs, so parallel ingest has real fan-out.
func buildStridedContainer(t testing.TB, b *MemBackend, path string, writers, recsPerWriter int, opts Options) {
	t.Helper()
	c, err := CreateContainer(b, path, opts)
	if err != nil {
		t.Fatal(err)
	}
	const rec = 512
	for w := 0; w < writers; w++ {
		wr, err := c.OpenWriter(int32(w))
		if err != nil {
			t.Fatal(err)
		}
		buf := bytes.Repeat([]byte{byte(w + 1)}, rec)
		for i := 0; i < recsPerWriter; i++ {
			if _, err := wr.WriteAt(buf, int64((i*writers+w)*rec)); err != nil {
				t.Fatal(err)
			}
		}
		if err := wr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelIngestDeterministic is the acceptance check for parallel
// ingest: worker counts 1, 4, and GOMAXPROCS must produce identical
// GlobalIndex contents and byte-identical metrics snapshots.
func TestParallelIngestDeterministic(t *testing.T) {
	backend := NewMemBackend()
	buildStridedContainer(t, backend, "/ckpt", 24, 16, Options{NumHostdirs: 8})

	type result struct {
		extents []extent
		size    int64
		flat    []byte
		metrics []byte
	}
	open := func(workers int) result {
		reg := obs.NewRegistry()
		c, err := OpenContainer(backend, "/ckpt", Options{NumHostdirs: 8, IngestWorkers: workers, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.OpenReader()
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		flat := make([]byte, r.Size())
		if _, err := r.ReadAt(flat, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		var snap bytes.Buffer
		if err := reg.WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		return result{extents: r.Index().extents, size: r.Size(), flat: flat, metrics: snap.Bytes()}
	}

	base := open(1)
	if len(base.extents) == 0 || base.size == 0 {
		t.Fatal("empty base index")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := open(workers)
		if !reflect.DeepEqual(got.extents, base.extents) {
			t.Errorf("workers=%d: extent list differs from sequential ingest", workers)
		}
		if got.size != base.size || !bytes.Equal(got.flat, base.flat) {
			t.Errorf("workers=%d: resolved contents differ", workers)
		}
		if !bytes.Equal(got.metrics, base.metrics) {
			t.Errorf("workers=%d: metrics snapshots differ:\n%s\nvs\n%s", workers, got.metrics, base.metrics)
		}
	}
}

// TestOpenReaderConcurrently opens one container from many goroutines with
// parallel ingest enabled — the race-detector test for the worker pool.
func TestOpenReaderConcurrently(t *testing.T) {
	backend := NewMemBackend()
	buildStridedContainer(t, backend, "/ckpt", 16, 8, Options{NumHostdirs: 4})
	c, err := OpenContainer(backend, "/ckpt", Options{NumHostdirs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.OpenReader()
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close()
			buf := make([]byte, 4096)
			for off := int64(0); off < r.Size(); off += int64(len(buf)) {
				if _, err := r.ReadAt(buf, off); err != nil && err != io.EOF {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReaderConcurrentReadAt hammers one Reader from many goroutines; the
// scratch-buffer swap must keep concurrent reads independent.
func TestReaderConcurrentReadAt(t *testing.T) {
	backend := NewMemBackend()
	buildStridedContainer(t, backend, "/ckpt", 8, 8, Options{NumHostdirs: 4})
	c, err := OpenContainer(backend, "/ckpt", Options{NumHostdirs: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < 200; i++ {
				off := int64((i*8 + g) % 60 * 512)
				if _, err := r.ReadAt(buf, off); err != nil && err != io.EOF {
					t.Error(err)
					return
				}
				if buf[0] == 0 {
					t.Errorf("read a hole byte at %d", off)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReadAtSteadyStateAllocs asserts the cached-lookup read path is
// allocation-free once the scratch piece buffer is warm.
func TestReadAtSteadyStateAllocs(t *testing.T) {
	backend := NewMemBackend()
	buildStridedContainer(t, backend, "/ckpt", 8, 16, Options{NumHostdirs: 4})
	c, err := OpenContainer(backend, "/ckpt", Options{NumHostdirs: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 16*512)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err) // warm the scratch buffer
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ReadAt allocates %.1f objects/op, want 0", allocs)
	}
}

// TestScratchReuseCounter checks the allocs-avoided probe.
func TestScratchReuseCounter(t *testing.T) {
	reg := obs.NewRegistry()
	backend := NewMemBackend()
	buildStridedContainer(t, backend, "/ckpt", 4, 4, Options{NumHostdirs: 2})
	c, err := OpenContainer(backend, "/ckpt", Options{NumHostdirs: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 512)
	for i := 0; i < 5; i++ {
		if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	// First read allocates the scratch buffer; the next four reuse it.
	if got := reg.Snapshot().Counters["plfs.lookup.scratch_reuse"]; got != 4 {
		t.Errorf("plfs.lookup.scratch_reuse = %d, want 4", got)
	}
}

func TestNegativeIngestWorkersRejected(t *testing.T) {
	b := NewMemBackend()
	if _, err := CreateContainer(b, "/c", Options{NumHostdirs: 1, IngestWorkers: -1}); err == nil {
		t.Fatal("negative IngestWorkers accepted")
	}
}

// shortReadFile returns at most chunk bytes per ReadAt with a nil error —
// legal for an io.ReaderAt-ish backend, and exactly the behavior that used
// to truncate index logs silently.
type shortReadFile struct {
	BackendFile
	chunk int
}

func (s shortReadFile) ReadAt(p []byte, off int64) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.BackendFile.ReadAt(p, off)
}

// truncatedFile claims a larger size than its backing file holds, so reads
// past the real end hit io.EOF early.
type truncatedFile struct {
	BackendFile
	claim int64
}

func (tf truncatedFile) Size() int64 { return tf.claim }

func TestReadIndexLogToleratesShortReads(t *testing.T) {
	b := NewMemBackend()
	f, err := b.Create("/idx")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]IndexEntry, 10)
	for i := range want {
		want[i] = IndexEntry{LogicalOffset: int64(i) * 64, Length: 64, Writer: 1, LogOffset: int64(i) * 64, Timestamp: uint64(i + 1)}
		var rec [indexEntrySize]byte
		want[i].encode(rec[:])
		if _, err := f.Write(rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	// Odd chunk size: reads split mid-record.
	got, err := readIndexLog(shortReadFile{BackendFile: f, chunk: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("short-read decode = %+v, want %+v", got, want)
	}
}

func TestReadIndexLogRejectsTruncatedLog(t *testing.T) {
	b := NewMemBackend()
	f, err := b.Create("/idx")
	if err != nil {
		t.Fatal(err)
	}
	var rec [indexEntrySize]byte
	IndexEntry{Length: 1, Timestamp: 1}.encode(rec[:])
	if _, err := f.Write(rec[:]); err != nil {
		t.Fatal(err)
	}
	// Claim two records while only one is on disk: the old implementation
	// silently decoded a zero-filled second entry.
	if _, err := readIndexLog(truncatedFile{BackendFile: f, claim: 2 * indexEntrySize}); err == nil {
		t.Fatal("truncated index log not detected")
	}
}

// TestIngestErrorClosesOpenedFiles exercises the failure path of the
// worker pool: a missing data log must surface the error from every worker
// count without leaking handles or panicking.
func TestIngestErrorPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		backend := NewMemBackend()
		buildStridedContainer(t, backend, "/ckpt", 8, 2, Options{NumHostdirs: 4})
		// Corrupt one index log so decoding fails.
		hd := "/ckpt/" + fmt.Sprintf("%s%d", hostdirPrefix, 3)
		idx, err := backend.Open(fmt.Sprintf("%s/%s%d", hd, indexPrefix, 3))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.Write([]byte{0xff}); err != nil { // no longer a record multiple
			t.Fatal(err)
		}
		idx.Close()
		c, err := OpenContainer(backend, "/ckpt", Options{NumHostdirs: 4, IngestWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.OpenReader(); err == nil {
			t.Fatalf("workers=%d: corrupt index log not reported", workers)
		}
	}
}
