package core

import (
	"encoding/binary"
	"testing"
)

// fuzzEntries decodes a fuzz payload into up to 64 index entries, 8 bytes
// each, over a small logical space so overlaps are dense. Timestamps come
// from the payload too, so duplicate timestamps (and tie-breaking) get
// exercised — something container-generated entries never produce.
func fuzzEntries(data []byte) []IndexEntry {
	const per = 8
	n := len(data) / per
	if n > 64 {
		n = 64
	}
	entries := make([]IndexEntry, 0, n)
	for i := 0; i < n; i++ {
		rec := data[i*per : (i+1)*per]
		entries = append(entries, IndexEntry{
			LogicalOffset: int64(binary.LittleEndian.Uint16(rec[0:]) % 1024),
			Length:        int64(rec[2] % 128), // zero lengths allowed
			Writer:        int32(rec[3] % 8),
			LogOffset:     int64(binary.LittleEndian.Uint16(rec[4:])),
			Timestamp:     uint64(binary.LittleEndian.Uint16(rec[6:]) % 16), // force ties
		})
	}
	return entries
}

// FuzzBuildGlobalIndex cross-checks the sweep-line merge against a naive
// per-byte oracle: every logical byte must belong to the covering entry
// that wins priorityLess, and must map to that entry's data log at the
// right offset.
func FuzzBuildGlobalIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 10, 1, 0, 0, 1, 0, 5, 0, 10, 2, 0, 1, 2, 0})
	seed := make([]byte, 64*8)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		entries := fuzzEntries(data)
		g := BuildGlobalIndex(entries)
		if err := g.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if g.NumEntries() != len(entries) {
			t.Fatalf("NumEntries = %d, want %d", g.NumEntries(), len(entries))
		}

		// Oracle: resolve ownership byte by byte.
		var size int64
		for _, e := range entries {
			if e.Length > 0 && e.LogicalOffset+e.Length > size {
				size = e.LogicalOffset + e.Length
			}
		}
		if g.Size() != size {
			t.Fatalf("Size = %d, want %d", g.Size(), size)
		}
		owner := make([]*IndexEntry, size)
		for i := range entries {
			e := &entries[i]
			if e.Length <= 0 {
				continue
			}
			for b := e.LogicalOffset; b < e.LogicalOffset+e.Length; b++ {
				if owner[b] == nil || priorityLess(*owner[b], *e) {
					owner[b] = e
				}
			}
		}
		cur := int64(0)
		for _, p := range g.Lookup(0, size) {
			if p.Logical != cur || p.Length <= 0 {
				t.Fatalf("pieces not contiguous at %d: %+v", cur, p)
			}
			for b := p.Logical; b < p.Logical+p.Length; b++ {
				want := owner[b]
				if p.Writer < 0 {
					if want != nil {
						t.Fatalf("byte %d: hole, oracle says writer %d", b, want.Writer)
					}
					continue
				}
				if want == nil {
					t.Fatalf("byte %d: writer %d, oracle says hole", b, p.Writer)
				}
				if p.Writer != want.Writer {
					t.Fatalf("byte %d: writer %d, oracle says %d", b, p.Writer, want.Writer)
				}
				gotLog := p.LogOff + (b - p.Logical)
				wantLog := want.LogOffset + (b - want.LogicalOffset)
				if gotLog != wantLog {
					t.Fatalf("byte %d: log offset %d, oracle says %d", b, gotLog, wantLog)
				}
			}
			cur += p.Length
		}
		if cur != size {
			t.Fatalf("lookup covered %d of %d bytes", cur, size)
		}
	})
}
