package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func entry(off, length int64, writer int32, logOff int64, ts uint64) IndexEntry {
	return IndexEntry{LogicalOffset: off, Length: length, Writer: writer, LogOffset: logOff, Timestamp: ts}
}

func TestIndexEntryEncodeDecodeRoundTrip(t *testing.T) {
	e := entry(123456789, 4096, 42, 98765, 777)
	var buf [indexEntrySize]byte
	e.encode(buf[:])
	if got := decodeEntry(buf[:]); got != e {
		t.Fatalf("round trip = %+v, want %+v", got, e)
	}
}

func TestGlobalIndexSimpleDisjoint(t *testing.T) {
	g := BuildGlobalIndex([]IndexEntry{
		entry(0, 10, 1, 0, 1),
		entry(20, 10, 2, 0, 2),
	})
	if g.Size() != 30 {
		t.Fatalf("Size = %d, want 30", g.Size())
	}
	if g.NumExtents() != 2 {
		t.Fatalf("NumExtents = %d, want 2", g.NumExtents())
	}
	pieces := g.Lookup(0, 30)
	// extent, hole, extent
	if len(pieces) != 3 || pieces[1].Writer != -1 || pieces[1].Length != 10 {
		t.Fatalf("pieces = %+v", pieces)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalIndexLastWriterWins(t *testing.T) {
	g := BuildGlobalIndex([]IndexEntry{
		entry(0, 100, 1, 0, 1),
		entry(40, 20, 2, 0, 2), // newer write punches the middle
	})
	pieces := g.Lookup(0, 100)
	if len(pieces) != 3 {
		t.Fatalf("pieces = %+v, want 3", pieces)
	}
	if pieces[0].Writer != 1 || pieces[0].Length != 40 {
		t.Fatalf("prefix = %+v", pieces[0])
	}
	if pieces[1].Writer != 2 || pieces[1].Length != 20 {
		t.Fatalf("middle = %+v", pieces[1])
	}
	if pieces[2].Writer != 1 || pieces[2].LogOff != 60 || pieces[2].Length != 40 {
		t.Fatalf("suffix = %+v (log offset must account for the split)", pieces[2])
	}
}

func TestGlobalIndexTimestampOrderNotInsertOrder(t *testing.T) {
	// Entries arrive out of timestamp order (as they do when merging many
	// index logs); the higher timestamp must still win.
	a := []IndexEntry{
		entry(0, 50, 1, 0, 9), // newer, listed first
		entry(0, 50, 2, 0, 3), // older
	}
	g := BuildGlobalIndex(a)
	pieces := g.Lookup(0, 50)
	if len(pieces) != 1 || pieces[0].Writer != 1 {
		t.Fatalf("pieces = %+v, want single extent owned by writer 1", pieces)
	}
}

func TestGlobalIndexExactOverwrite(t *testing.T) {
	g := BuildGlobalIndex([]IndexEntry{
		entry(10, 30, 1, 0, 1),
		entry(10, 30, 2, 0, 2),
	})
	pieces := g.Lookup(10, 30)
	if len(pieces) != 1 || pieces[0].Writer != 2 {
		t.Fatalf("pieces = %+v", pieces)
	}
	if g.NumExtents() != 1 {
		t.Fatalf("NumExtents = %d, want 1", g.NumExtents())
	}
}

func TestGlobalIndexChainedOverlaps(t *testing.T) {
	g := BuildGlobalIndex([]IndexEntry{
		entry(0, 30, 1, 0, 1),
		entry(20, 30, 2, 0, 2),
		entry(40, 30, 3, 0, 3),
	})
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	pieces := g.Lookup(0, 70)
	want := []struct {
		w int32
		n int64
	}{{1, 20}, {2, 20}, {3, 30}}
	if len(pieces) != len(want) {
		t.Fatalf("pieces = %+v", pieces)
	}
	for i, w := range want {
		if pieces[i].Writer != w.w || pieces[i].Length != w.n {
			t.Fatalf("piece %d = %+v, want writer %d len %d", i, pieces[i], w.w, w.n)
		}
	}
}

func TestLookupPartialRange(t *testing.T) {
	g := BuildGlobalIndex([]IndexEntry{entry(100, 100, 7, 500, 1)})
	pieces := g.Lookup(150, 20)
	if len(pieces) != 1 {
		t.Fatalf("pieces = %+v", pieces)
	}
	p := pieces[0]
	if p.Logical != 150 || p.Length != 20 || p.LogOff != 550 {
		t.Fatalf("piece = %+v, want logical 150 len 20 logOff 550", p)
	}
}

func TestLookupBeyondEOFIsHole(t *testing.T) {
	g := BuildGlobalIndex([]IndexEntry{entry(0, 10, 1, 0, 1)})
	pieces := g.Lookup(50, 10)
	if len(pieces) != 1 || pieces[0].Writer != -1 {
		t.Fatalf("pieces = %+v, want one hole", pieces)
	}
	if g.Lookup(0, 0) != nil {
		t.Fatal("zero-length lookup should be nil")
	}
}

func TestCoalesceMergesContiguous(t *testing.T) {
	// Sequential appends by one writer: N entries collapse to 1.
	var entries []IndexEntry
	for i := int64(0); i < 10; i++ {
		entries = append(entries, entry(i*100, 100, 3, i*100, uint64(i+1)))
	}
	g := BuildGlobalIndex(entries)
	if g.NumExtents() != 10 {
		t.Fatalf("pre-coalesce extents = %d, want 10", g.NumExtents())
	}
	g.Coalesce()
	if g.NumExtents() != 1 {
		t.Fatalf("post-coalesce extents = %d, want 1", g.NumExtents())
	}
	pieces := g.Lookup(0, 1000)
	if len(pieces) != 1 || pieces[0].Length != 1000 {
		t.Fatalf("pieces = %+v", pieces)
	}
}

func TestCoalesceDoesNotMergeDifferentWriters(t *testing.T) {
	g := BuildGlobalIndex([]IndexEntry{
		entry(0, 100, 1, 0, 1),
		entry(100, 100, 2, 0, 2),
	})
	g.Coalesce()
	if g.NumExtents() != 2 {
		t.Fatalf("extents = %d, want 2 (different writers must not merge)", g.NumExtents())
	}
}

// referenceModel computes the expected logical contents byte-by-byte.
func referenceModel(entries []IndexEntry) map[int64]int32 {
	owner := map[int64]int32{}
	ts := map[int64]uint64{}
	for _, e := range entries {
		for b := e.LogicalOffset; b < e.LogicalOffset+e.Length; b++ {
			if e.Timestamp >= ts[b] {
				ts[b] = e.Timestamp
				owner[b] = e.Writer
			}
		}
	}
	return owner
}

func TestGlobalIndexMatchesReferenceModelProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nOps)%40 + 1
		var entries []IndexEntry
		for i := 0; i < n; i++ {
			off := int64(r.Intn(200))
			length := int64(r.Intn(50) + 1)
			entries = append(entries, entry(off, length, int32(r.Intn(5)), int64(i)*1000, uint64(i+1)))
		}
		g := BuildGlobalIndex(entries)
		if g.CheckInvariants() != nil {
			return false
		}
		want := referenceModel(entries)
		for _, p := range g.Lookup(0, g.Size()) {
			for b := p.Logical; b < p.Logical+p.Length; b++ {
				w, written := want[b]
				if p.Writer == -1 {
					if written {
						return false
					}
				} else if !written || w != p.Writer {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupCoversRequestedRangeExactlyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var entries []IndexEntry
		for i := 0; i < 20; i++ {
			entries = append(entries, entry(int64(r.Intn(500)), int64(r.Intn(64)+1), int32(i), int64(i*64), uint64(i+1)))
		}
		g := BuildGlobalIndex(entries)
		off := int64(r.Intn(600))
		length := int64(r.Intn(200) + 1)
		cur := off
		for _, p := range g.Lookup(off, length) {
			if p.Logical != cur || p.Length <= 0 {
				return false
			}
			cur += p.Length
		}
		return cur == off+length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptIndexLogDetected(t *testing.T) {
	b := NewMemBackend()
	f, err := b.Create("/idx")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, indexEntrySize+3)) // not a record multiple
	if _, err := readIndexLog(f); err == nil {
		t.Fatal("corrupt index log not detected")
	}
}
