//lint:allowfile goroutine -- sanctioned site: a Mount is opened by concurrent application ranks, mirroring the FUSE layer it models

package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Mount is the FUSE-flavored face of PLFS: a mount point under which every
// logical path transparently resolves to a container on the backing store.
// Applications that know nothing about PLFS open, write, read, and close
// files; the mount turns each logical file into a container and each
// process's handle into a per-writer log. This is how non-MPI applications
// used PLFS in production (the MPI-IO path uses Container directly).
type Mount struct {
	backend Backend
	root    string
	opts    Options

	mu         sync.Mutex
	containers map[string]*Container
}

// NewMount attaches a mount at root (created if needed) on the backend.
func NewMount(b Backend, root string, opts Options) (*Mount, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Create the mount directory and any missing ancestors.
	var prefix string
	for _, part := range strings.Split(strings.Trim(root, "/"), "/") {
		prefix += "/" + part
		if !b.Exists(prefix) {
			if err := b.Mkdir(prefix); err != nil {
				return nil, err
			}
		}
	}
	return &Mount{backend: b, root: root, opts: opts, containers: make(map[string]*Container)}, nil
}

// path maps a logical file name to its backing container path.
func (m *Mount) path(name string) string {
	return m.root + "/" + name
}

// container returns (opening or creating as requested) the container for a
// logical file.
func (m *Mount) container(name string, create bool) (*Container, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.containers[name]; ok {
		return c, nil
	}
	p := m.path(name)
	var c *Container
	var err error
	switch {
	case IsContainer(m.backend, p):
		c, err = OpenContainer(m.backend, p, m.opts)
	case create:
		// Logical names may contain directories; materialize them under
		// the mount root before creating the container.
		if i := strings.LastIndex(name, "/"); i > 0 {
			prefix := m.root
			for _, part := range strings.Split(name[:i], "/") {
				if part == "" {
					continue
				}
				prefix += "/" + part
				if !m.backend.Exists(prefix) {
					if err := m.backend.Mkdir(prefix); err != nil {
						return nil, err
					}
				}
			}
		}
		c, err = CreateContainer(m.backend, p, m.opts)
	default:
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return nil, err
	}
	m.containers[name] = c
	return c, nil
}

// LogicalFile is an open handle through the mount. Writes go to the
// owning process's log; reads see the merged container. The handle is
// valid for one process id (pid), mirroring the FUSE daemon's bookkeeping.
type LogicalFile struct {
	mount *Mount
	name  string
	pid   int32

	// mu is read/write: reads through an already-built reader only take
	// the read lock, so restart-style concurrent reads on one handle
	// proceed in parallel (Reader.ReadAt is itself concurrency-safe and
	// allocation-free). Writes, reader (re)builds, and Close take the
	// write lock, which also guarantees the reader is never closed while
	// a read holds the read lock.
	mu     sync.RWMutex
	writer *Writer // lazily opened on first write
	reader *Reader // lazily opened, invalidated by writes
	closed bool
}

// OpenFile opens (creating if create is set) a logical file for process
// pid. Multiple processes may hold handles on the same name concurrently.
func (m *Mount) OpenFile(name string, pid int32, create bool) (*LogicalFile, error) {
	if _, err := m.container(name, create); err != nil {
		return nil, err
	}
	return &LogicalFile{mount: m, name: name, pid: pid}, nil
}

// Exists reports whether a logical file exists under the mount.
func (m *Mount) Exists(name string) bool {
	return IsContainer(m.backend, m.path(name))
}

// WriteAt appends through the process's log.
func (f *LogicalFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if f.writer == nil {
		c, err := f.mount.container(f.name, false)
		if err != nil {
			return 0, err
		}
		w, err := c.OpenWriter(f.pid)
		if err != nil {
			return 0, err
		}
		f.writer = w
	}
	// Any cached read view is stale after a write.
	if f.reader != nil {
		if err := f.reader.Close(); err != nil {
			return 0, err
		}
		f.reader = nil
	}
	return f.writer.WriteAt(p, off)
}

// ReadAt reads the merged logical contents. The first read after a write
// re-merges the index (PLFS's read-after-write visibility point); the
// handle's own pending writes are flushed first.
func (f *LogicalFile) ReadAt(p []byte, off int64) (int, error) {
	// Fast path: the reader exists, which means no write has invalidated
	// it (WriteAt drops it), so there is nothing to sync or rebuild.
	f.mu.RLock()
	if !f.closed && f.reader != nil {
		defer f.mu.RUnlock()
		return f.reader.ReadAt(p, off)
	}
	f.mu.RUnlock()

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.ensureReaderLocked(); err != nil {
		return 0, err
	}
	return f.reader.ReadAt(p, off)
}

// Size returns the current logical size.
func (f *LogicalFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.ensureReaderLocked(); err != nil {
		return 0, err
	}
	return f.reader.Size(), nil
}

func (f *LogicalFile) ensureReaderLocked() error {
	if f.writer != nil {
		if err := f.writer.Sync(); err != nil {
			return err
		}
	}
	if f.reader == nil {
		c, err := f.mount.container(f.name, false)
		if err != nil {
			return err
		}
		r, err := c.OpenReader()
		if err != nil {
			return err
		}
		f.reader = r
	}
	return nil
}

// Sync flushes buffered index state so other handles can see the writes.
func (f *LogicalFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.writer != nil {
		return f.writer.Sync()
	}
	return nil
}

// Close releases the handle's writer and reader.
func (f *LogicalFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	var err error
	if f.writer != nil {
		err = f.writer.Close()
		f.writer = nil
	}
	if f.reader != nil {
		if e := f.reader.Close(); e != nil && err == nil {
			err = e
		}
		f.reader = nil
	}
	return err
}

// ReadSeeker adapts a LogicalFile to io.Reader/io.Seeker for tooling.
type ReadSeeker struct {
	f   *LogicalFile
	pos int64
}

// NewReadSeeker wraps f at position zero.
func NewReadSeeker(f *LogicalFile) *ReadSeeker { return &ReadSeeker{f: f} }

// Read implements io.Reader.
func (rs *ReadSeeker) Read(p []byte) (int, error) {
	n, err := rs.f.ReadAt(p, rs.pos)
	rs.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (rs *ReadSeeker) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = rs.pos
	case io.SeekEnd:
		size, err := rs.f.Size()
		if err != nil {
			return rs.pos, err
		}
		base = size
	default:
		return rs.pos, fmt.Errorf("plfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return rs.pos, fmt.Errorf("plfs: negative seek position")
	}
	rs.pos = base + offset
	return rs.pos, nil
}
