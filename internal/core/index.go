package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// IndexEntry records one logical write: logical byte range -> position in a
// writer's data log, stamped with a logical timestamp for last-writer-wins
// resolution. Entries are fixed-size binary records appended to the
// writer's index log.
type IndexEntry struct {
	LogicalOffset int64  // offset in the logical file
	Length        int64  // bytes written
	Writer        int32  // writer (rank/pid) id
	LogOffset     int64  // offset within the writer's data log
	Timestamp     uint64 // container-wide logical clock
}

// indexEntrySize is the on-log size of a serialized IndexEntry.
const indexEntrySize = 8 + 8 + 4 + 8 + 8

func (e IndexEntry) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.LogicalOffset))
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.Length))
	binary.LittleEndian.PutUint32(buf[16:], uint32(e.Writer))
	binary.LittleEndian.PutUint64(buf[20:], uint64(e.LogOffset))
	binary.LittleEndian.PutUint64(buf[28:], e.Timestamp)
}

func decodeEntry(buf []byte) IndexEntry {
	return IndexEntry{
		LogicalOffset: int64(binary.LittleEndian.Uint64(buf[0:])),
		Length:        int64(binary.LittleEndian.Uint64(buf[8:])),
		Writer:        int32(binary.LittleEndian.Uint32(buf[16:])),
		LogOffset:     int64(binary.LittleEndian.Uint64(buf[20:])),
		Timestamp:     binary.LittleEndian.Uint64(buf[28:]),
	}
}

// readAll reads an entire backend file into memory. ReadAt is retried
// until the whole file is in: a backend may legally return fewer bytes
// than asked alongside a nil or io.EOF error, and silently accepting a
// partial buffer would fabricate content. what names the file's role in
// error messages ("index log", "data log", "access file").
func readAll(f BackendFile, what string) ([]byte, error) {
	size := f.Size()
	buf := make([]byte, size)
	for got := int64(0); got < size; {
		n, err := f.ReadAt(buf[got:], got)
		got += int64(n)
		if got >= size {
			break
		}
		switch {
		case err == io.EOF:
			return nil, fmt.Errorf("plfs: short %s read: %d of %d bytes", what, got, size)
		case err != nil:
			return nil, err
		case n == 0:
			return nil, fmt.Errorf("plfs: %s read stalled at %d of %d bytes: %w", what, got, size, io.ErrNoProgress)
		}
	}
	return buf, nil
}

// readIndexLog decodes every entry in a v1 (unframed) index log.
func readIndexLog(f BackendFile) ([]IndexEntry, error) {
	size := f.Size()
	if size%indexEntrySize != 0 {
		return nil, fmt.Errorf("plfs: corrupt index log: %d bytes not a record multiple", size)
	}
	buf, err := readAll(f, "index log")
	if err != nil {
		return nil, err
	}
	entries := make([]IndexEntry, 0, size/indexEntrySize)
	for off := int64(0); off < size; off += indexEntrySize {
		entries = append(entries, decodeEntry(buf[off:off+indexEntrySize]))
	}
	return entries, nil
}

// extent is a resolved, non-overlapping slice of the logical file mapping
// to one writer's data log.
type extent struct {
	logical int64 // logical start
	length  int64
	writer  int32
	logOff  int64 // start within the writer's data log
}

func (x extent) end() int64 { return x.logical + x.length }

// GlobalIndex is the merged, conflict-resolved view of every writer's
// index log: a sorted list of disjoint extents. Lookups binary-search it.
type GlobalIndex struct {
	extents []extent
	size    int64
	entries int // raw entries merged (before overlap resolution)
}

// priorityLess is the last-writer-wins total order: the entry with the
// larger timestamp wins overlaps (ties broken by writer id, then log
// offset, then logical offset and length, for determinism).
func priorityLess(a, b IndexEntry) bool {
	if a.Timestamp != b.Timestamp {
		return a.Timestamp < b.Timestamp
	}
	if a.Writer != b.Writer {
		return a.Writer < b.Writer
	}
	if a.LogOffset != b.LogOffset {
		return a.LogOffset < b.LogOffset
	}
	if a.LogicalOffset != b.LogicalOffset {
		return a.LogicalOffset < b.LogicalOffset
	}
	return a.Length < b.Length
}

// entryHeap is a hand-rolled max-heap of IndexEntry keyed by priorityLess.
// container/heap would box every pushed entry into an interface; at a
// million entries per merge that is a million avoidable allocations.
type entryHeap struct {
	es []IndexEntry
}

func (h *entryHeap) push(e IndexEntry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !priorityLess(h.es[p], h.es[i]) {
			break
		}
		h.es[p], h.es[i] = h.es[i], h.es[p]
		i = p
	}
}

func (h *entryHeap) pop() {
	n := len(h.es) - 1
	h.es[0] = h.es[n]
	h.es = h.es[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && priorityLess(h.es[big], h.es[l]) {
			big = l
		}
		if r < n && priorityLess(h.es[big], h.es[r]) {
			big = r
		}
		if big == i {
			return
		}
		h.es[i], h.es[big] = h.es[big], h.es[i]
		i = big
	}
}

// BuildGlobalIndex merges raw entries, resolving overlaps so that the entry
// with the larger timestamp wins (ties broken by writer id, then log
// offset, for determinism). This is the "read-back" step PLFS defers from
// write time to read time.
//
// The merge is a single O(n log n) sweep: entries are sorted by logical
// offset, the sweep visits every entry boundary left to right keeping the
// set of entries covering the current position in a max-heap ordered by
// priorityLess, and the heap top owns each inter-boundary segment.
// Consecutive segments owned by the same entry are emitted as one extent,
// which reproduces the previous per-entry overlay implementation
// bit-for-bit (an entry's surviving fragments are maximal runs of its
// ownership) without its quadratic slice copying.
func BuildGlobalIndex(entries []IndexEntry) *GlobalIndex {
	g := &GlobalIndex{entries: len(entries)}
	live := make([]IndexEntry, 0, len(entries))
	for _, e := range entries {
		if e.Length > 0 {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		return g
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].LogicalOffset != live[j].LogicalOffset {
			return live[i].LogicalOffset < live[j].LogicalOffset
		}
		// Among entries starting together, push the winner first so the
		// order is deterministic under sort.Slice's unstable sort.
		return priorityLess(live[j], live[i])
	})
	// Every entry start and end is a sweep boundary; segment ownership is
	// constant between consecutive boundaries.
	bounds := make([]int64, 0, 2*len(live))
	for _, e := range live {
		bounds = append(bounds, e.LogicalOffset, e.LogicalOffset+e.Length)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq
	g.size = bounds[len(bounds)-1]

	g.extents = make([]extent, 0, len(live))
	var active entryHeap
	active.es = make([]IndexEntry, 0, 64)
	next := 0 // next live entry to activate
	var prev IndexEntry
	prevValid := false
	for bi := 0; bi+1 < len(bounds); bi++ {
		pos, segEnd := bounds[bi], bounds[bi+1]
		for next < len(live) && live[next].LogicalOffset == pos {
			active.push(live[next])
			next++
		}
		// Entries that ended at or before pos are dead; they only need to
		// leave the heap once they surface at the top.
		for len(active.es) > 0 && active.es[0].LogicalOffset+active.es[0].Length <= pos {
			active.pop()
		}
		if len(active.es) == 0 {
			prevValid = false // a hole; the next extent cannot extend across it
			continue
		}
		w := active.es[0]
		if prevValid && w == prev {
			g.extents[len(g.extents)-1].length += segEnd - pos
			continue
		}
		g.extents = append(g.extents, extent{
			logical: pos,
			length:  segEnd - pos,
			writer:  w.Writer,
			logOff:  w.LogOffset + (pos - w.LogicalOffset),
		})
		prev, prevValid = w, true
	}
	return g
}

// Size returns the logical file size (highest written byte + 1).
func (g *GlobalIndex) Size() int64 { return g.size }

// NumExtents reports resolved extents; NumEntries reports raw entries
// merged. Their ratio measures index fragmentation.
func (g *GlobalIndex) NumExtents() int { return len(g.extents) }

// NumEntries reports the raw entry count before resolution.
func (g *GlobalIndex) NumEntries() int { return g.entries }

// Lookup maps the logical range [off, off+length) to data-log pieces.
// Ranges not covered by any write are returned as holes (writer < 0).
type Piece struct {
	Logical int64
	Length  int64
	Writer  int32 // -1 for a hole (reads as zeros)
	LogOff  int64
}

// Lookup resolves a logical range into an ordered piece list covering it
// exactly. The output slice is sized up front from the number of extents
// the range overlaps; callers that resolve repeatedly should prefer
// LookupAppend with a reused buffer.
func (g *GlobalIndex) Lookup(off, length int64) []Piece {
	if length <= 0 {
		return nil
	}
	lo := sort.Search(len(g.extents), func(i int) bool {
		return g.extents[i].end() > off
	})
	hi := sort.Search(len(g.extents), func(i int) bool {
		return g.extents[i].logical >= off+length
	})
	// k overlapping extents resolve to at most k pieces plus k+1 holes.
	return g.LookupAppend(make([]Piece, 0, 2*(hi-lo)+1), off, length)
}

// LookupAppend appends the pieces covering [off, off+length) to dst and
// returns the extended slice, allocating only when dst lacks capacity.
// Adjacent pieces that are contiguous in both logical space and the same
// writer's log are coalesced into one piece (as are adjacent holes), so a
// reader issues one backend read per contiguous log run.
func (g *GlobalIndex) LookupAppend(dst []Piece, off, length int64) []Piece {
	if length <= 0 {
		return dst
	}
	end := off + length
	i := sort.Search(len(g.extents), func(i int) bool {
		return g.extents[i].end() > off
	})
	cur := off
	for ; i < len(g.extents) && cur < end; i++ {
		x := g.extents[i]
		if x.logical >= end {
			break
		}
		if x.logical > cur {
			dst = appendPiece(dst, Piece{Logical: cur, Length: x.logical - cur, Writer: -1})
			cur = x.logical
		}
		from := cur - x.logical
		n := x.end() - cur
		if n > end-cur {
			n = end - cur
		}
		dst = appendPiece(dst, Piece{Logical: cur, Length: n, Writer: x.writer, LogOff: x.logOff + from})
		cur += n
	}
	if cur < end {
		dst = appendPiece(dst, Piece{Logical: cur, Length: end - cur, Writer: -1})
	}
	return dst
}

// appendPiece adds p to dst, merging it into the final piece when the two
// form one contiguous run (same writer, adjacent logically, and — for real
// pieces — adjacent in the data log).
func appendPiece(dst []Piece, p Piece) []Piece {
	if n := len(dst); n > 0 {
		last := &dst[n-1]
		if last.Writer == p.Writer && last.Logical+last.Length == p.Logical &&
			(p.Writer < 0 || last.LogOff+last.Length == p.LogOff) {
			last.Length += p.Length
			return dst
		}
	}
	return append(dst, p)
}

// Coalesce merges adjacent extents that are contiguous in both logical
// space and the same writer's log. This is the index-compression ablation
// the PLFS follow-on work explored ("compress read-back indexes").
func (g *GlobalIndex) Coalesce() {
	if len(g.extents) < 2 {
		return
	}
	out := g.extents[:1]
	for _, x := range g.extents[1:] {
		last := &out[len(out)-1]
		if last.writer == x.writer &&
			last.end() == x.logical &&
			last.logOff+last.length == x.logOff {
			last.length += x.length
			continue
		}
		out = append(out, x)
	}
	g.extents = out
}

// CheckInvariants verifies the extent list is sorted and non-overlapping.
func (g *GlobalIndex) CheckInvariants() error {
	for i := 1; i < len(g.extents); i++ {
		prev, cur := g.extents[i-1], g.extents[i]
		if cur.logical < prev.end() {
			return fmt.Errorf("plfs: overlapping extents %d..%d and %d..%d",
				prev.logical, prev.end(), cur.logical, cur.end())
		}
	}
	for _, x := range g.extents {
		if x.length <= 0 {
			return fmt.Errorf("plfs: non-positive extent length %d", x.length)
		}
	}
	return nil
}
