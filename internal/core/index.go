package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// IndexEntry records one logical write: logical byte range -> position in a
// writer's data log, stamped with a logical timestamp for last-writer-wins
// resolution. Entries are fixed-size binary records appended to the
// writer's index log.
type IndexEntry struct {
	LogicalOffset int64  // offset in the logical file
	Length        int64  // bytes written
	Writer        int32  // writer (rank/pid) id
	LogOffset     int64  // offset within the writer's data log
	Timestamp     uint64 // container-wide logical clock
}

// indexEntrySize is the on-log size of a serialized IndexEntry.
const indexEntrySize = 8 + 8 + 4 + 8 + 8

func (e IndexEntry) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.LogicalOffset))
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.Length))
	binary.LittleEndian.PutUint32(buf[16:], uint32(e.Writer))
	binary.LittleEndian.PutUint64(buf[20:], uint64(e.LogOffset))
	binary.LittleEndian.PutUint64(buf[28:], e.Timestamp)
}

func decodeEntry(buf []byte) IndexEntry {
	return IndexEntry{
		LogicalOffset: int64(binary.LittleEndian.Uint64(buf[0:])),
		Length:        int64(binary.LittleEndian.Uint64(buf[8:])),
		Writer:        int32(binary.LittleEndian.Uint32(buf[16:])),
		LogOffset:     int64(binary.LittleEndian.Uint64(buf[20:])),
		Timestamp:     binary.LittleEndian.Uint64(buf[28:]),
	}
}

// readIndexLog decodes every entry in an index log.
func readIndexLog(f BackendFile) ([]IndexEntry, error) {
	size := f.Size()
	if size%indexEntrySize != 0 {
		return nil, fmt.Errorf("plfs: corrupt index log: %d bytes not a record multiple", size)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	entries := make([]IndexEntry, 0, size/indexEntrySize)
	for off := int64(0); off < size; off += indexEntrySize {
		entries = append(entries, decodeEntry(buf[off:off+indexEntrySize]))
	}
	return entries, nil
}

// extent is a resolved, non-overlapping slice of the logical file mapping
// to one writer's data log.
type extent struct {
	logical int64 // logical start
	length  int64
	writer  int32
	logOff  int64 // start within the writer's data log
}

func (x extent) end() int64 { return x.logical + x.length }

// GlobalIndex is the merged, conflict-resolved view of every writer's
// index log: a sorted list of disjoint extents. Lookups binary-search it.
type GlobalIndex struct {
	extents []extent
	size    int64
	entries int // raw entries merged (before overlap resolution)
}

// BuildGlobalIndex merges raw entries, resolving overlaps so that the entry
// with the larger timestamp wins (ties broken by writer id, then log
// offset, for determinism). This is the "read-back" step PLFS defers from
// write time to read time.
func BuildGlobalIndex(entries []IndexEntry) *GlobalIndex {
	g := &GlobalIndex{entries: len(entries)}
	sorted := append([]IndexEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Timestamp != b.Timestamp {
			return a.Timestamp < b.Timestamp
		}
		if a.Writer != b.Writer {
			return a.Writer < b.Writer
		}
		return a.LogOffset < b.LogOffset
	})
	for _, e := range sorted {
		if e.Length <= 0 {
			continue
		}
		g.insert(extent{logical: e.LogicalOffset, length: e.Length, writer: e.Writer, logOff: e.LogOffset})
		if end := e.LogicalOffset + e.Length; end > g.size {
			g.size = end
		}
	}
	return g
}

// insert overlays x on the extent list, truncating or splitting anything it
// overlaps (x is newer than everything already present).
func (g *GlobalIndex) insert(x extent) {
	// Find the first extent whose end is beyond x.logical.
	i := sort.Search(len(g.extents), func(i int) bool {
		return g.extents[i].end() > x.logical
	})
	var out []extent
	out = append(out, g.extents[:i]...)
	j := i
	for ; j < len(g.extents); j++ {
		old := g.extents[j]
		if old.logical >= x.end() {
			break
		}
		// Keep any prefix of old before x.
		if old.logical < x.logical {
			out = append(out, extent{
				logical: old.logical,
				length:  x.logical - old.logical,
				writer:  old.writer,
				logOff:  old.logOff,
			})
		}
		// Defer any suffix of old after x; it is handled below because it
		// must come after x in sorted order.
		if old.end() > x.end() {
			cut := x.end() - old.logical
			tail := extent{
				logical: x.end(),
				length:  old.end() - x.end(),
				writer:  old.writer,
				logOff:  old.logOff + cut,
			}
			out = append(out, x, tail)
			out = append(out, g.extents[j+1:]...)
			g.extents = out
			return
		}
	}
	out = append(out, x)
	out = append(out, g.extents[j:]...)
	g.extents = out
}

// Size returns the logical file size (highest written byte + 1).
func (g *GlobalIndex) Size() int64 { return g.size }

// NumExtents reports resolved extents; NumEntries reports raw entries
// merged. Their ratio measures index fragmentation.
func (g *GlobalIndex) NumExtents() int { return len(g.extents) }

// NumEntries reports the raw entry count before resolution.
func (g *GlobalIndex) NumEntries() int { return g.entries }

// Lookup maps the logical range [off, off+length) to data-log pieces.
// Ranges not covered by any write are returned as holes (writer < 0).
type Piece struct {
	Logical int64
	Length  int64
	Writer  int32 // -1 for a hole (reads as zeros)
	LogOff  int64
}

// Lookup resolves a logical range into an ordered piece list covering it
// exactly.
func (g *GlobalIndex) Lookup(off, length int64) []Piece {
	if length <= 0 {
		return nil
	}
	end := off + length
	var out []Piece
	i := sort.Search(len(g.extents), func(i int) bool {
		return g.extents[i].end() > off
	})
	cur := off
	for ; i < len(g.extents) && cur < end; i++ {
		x := g.extents[i]
		if x.logical >= end {
			break
		}
		if x.logical > cur {
			out = append(out, Piece{Logical: cur, Length: x.logical - cur, Writer: -1})
			cur = x.logical
		}
		from := cur - x.logical
		n := x.end() - cur
		if n > end-cur {
			n = end - cur
		}
		out = append(out, Piece{Logical: cur, Length: n, Writer: x.writer, LogOff: x.logOff + from})
		cur += n
	}
	if cur < end {
		out = append(out, Piece{Logical: cur, Length: end - cur, Writer: -1})
	}
	return out
}

// Coalesce merges adjacent extents that are contiguous in both logical
// space and the same writer's log. This is the index-compression ablation
// the PLFS follow-on work explored ("compress read-back indexes").
func (g *GlobalIndex) Coalesce() {
	if len(g.extents) < 2 {
		return
	}
	out := g.extents[:1]
	for _, x := range g.extents[1:] {
		last := &out[len(out)-1]
		if last.writer == x.writer &&
			last.end() == x.logical &&
			last.logOff+last.length == x.logOff {
			last.length += x.length
			continue
		}
		out = append(out, x)
	}
	g.extents = out
}

// CheckInvariants verifies the extent list is sorted and non-overlapping.
func (g *GlobalIndex) CheckInvariants() error {
	for i := 1; i < len(g.extents); i++ {
		prev, cur := g.extents[i-1], g.extents[i]
		if cur.logical < prev.end() {
			return fmt.Errorf("plfs: overlapping extents %d..%d and %d..%d",
				prev.logical, prev.end(), cur.logical, cur.end())
		}
	}
	for _, x := range g.extents {
		if x.length <= 0 {
			return fmt.Errorf("plfs: non-positive extent length %d", x.length)
		}
	}
	return nil
}
