package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"testing"
)

// goldenLogicalSHA/goldenBackingSHA pin the exact bytes a deterministic v1
// container produced before the integrity layer existed (captured from the
// pre-PR tree). If either changes, the legacy unframed path is no longer
// byte-identical — version negotiation leaked v2 behaviour into v1.
const (
	goldenLogicalSHA  = "cdd933cc063fffdc917f232dc2ac79896c0fea980f872244b13864e821f6bfd2"
	goldenLogicalSize = 13478
	goldenBackingSHA  = "a3e3f2a4716df9138efff967dfd88614b54c47b960dcfa2b58b95cb3fe671a08"
	goldenBackingN    = 7
)

// buildGoldenV1 reproduces the fixed workload the golden hashes were
// captured from: 3 writers, 40 strided writes each, v1 (unframed) format.
func buildGoldenV1(t *testing.T) (*MemBackend, *Container) {
	t.Helper()
	b := NewMemBackend()
	c, err := CreateContainer(b, "/g", Options{NumHostdirs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for w := int32(0); w < 3; w++ {
		wr, err := c.OpenWriter(w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			buf := make([]byte, 100+int(w)*7)
			for j := range buf {
				buf[j] = byte(int(w)*31 + i*7 + j)
			}
			if _, err := wr.WriteAt(buf, int64(i*3)*int64(len(buf))+int64(w)*13); err != nil {
				t.Fatal(err)
			}
		}
		if err := wr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return b, c
}

// walkBackingFiles lists every file under dir in sorted DFS order.
func walkBackingFiles(t *testing.T, b *MemBackend, dir string) []string {
	t.Helper()
	names, err := b.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var paths []string
	for _, n := range names {
		p := dir + "/" + n
		if f, err := b.Open(p); err == nil {
			f.Close()
			paths = append(paths, p)
		} else {
			paths = append(paths, walkBackingFiles(t, b, p)...)
		}
	}
	return paths
}

// TestV1ContainerBytesMatchPrePRGolden pins the legacy format: both the
// resolved logical contents and every backing log byte of a v1 container
// must match the hashes captured before framing existed.
func TestV1ContainerBytesMatchPrePRGolden(t *testing.T) {
	b, c := buildGoldenV1(t)
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != goldenLogicalSize {
		t.Fatalf("logical size = %d, want %d", r.Size(), goldenLogicalSize)
	}
	out := make([]byte, r.Size())
	if _, err := r.ReadAt(out, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(out)); got != goldenLogicalSHA {
		t.Fatalf("logical sha256 = %s, want %s", got, goldenLogicalSHA)
	}
	paths := walkBackingFiles(t, b, "/g")
	if len(paths) != goldenBackingN {
		t.Fatalf("backing files = %d, want %d: %v", len(paths), goldenBackingN, paths)
	}
	h := sha256.New()
	for _, p := range paths {
		f, err := b.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, f.Size())
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		f.Close()
		fmt.Fprintf(h, "%s\n", p)
		h.Write(data)
	}
	if got := fmt.Sprintf("%x", h.Sum(nil)); got != goldenBackingSHA {
		t.Fatalf("backing sha256 = %s, want %s", got, goldenBackingSHA)
	}
}

// framedContainer creates a v2 container with one hostdir (so log paths
// are predictable in corruption tests).
func framedContainer(t *testing.T, opts Options) (*MemBackend, *Container) {
	t.Helper()
	opts.Framed = true
	if opts.NumHostdirs == 0 {
		opts.NumHostdirs = 1
	}
	b := NewMemBackend()
	c, err := CreateContainer(b, "/c", opts)
	if err != nil {
		t.Fatal(err)
	}
	return b, c
}

// writeRecords appends deterministic records through writer 0 and returns
// the expected logical contents.
func writeRecords(t *testing.T, c *Container, n, size int) []byte {
	t.Helper()
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	logical := make([]byte, n*size)
	for i := 0; i < n; i++ {
		buf := make([]byte, size)
		for j := range buf {
			buf[j] = byte(i*37 + j)
		}
		copy(logical[i*size:], buf)
		if _, err := w.WriteAt(buf, int64(i*size)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return logical
}

// TestFramedRoundTrip checks that a v2 container resolves the same logical
// bytes as v1 would, that the version is renegotiated from the access file
// on open, and that a clean verify pass reports nothing to repair.
func TestFramedRoundTrip(t *testing.T) {
	b, c := framedContainer(t, Options{})
	want := writeRecords(t, c, 5, 64)

	// Reopen without the Framed flag: the access file, not the option,
	// decides the format.
	c2, err := OpenContainer(b, "/c", Options{NumHostdirs: 1, VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	if c2.version != 2 {
		t.Fatalf("reopened version = %d, want 2", c2.version)
	}
	r, err := c2.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, r.Size())
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("framed round trip: logical contents differ")
	}
	rep := r.FsckReport()
	if rep == nil {
		t.Fatal("VerifyOnOpen produced no fsck report")
	}
	if !rep.Clean() {
		t.Fatalf("clean container reported damage: %+v", *rep)
	}
	// 5 data frames + 5 index frames, each checksum-verified.
	if rep.FramesVerified != 10 {
		t.Fatalf("FramesVerified = %d, want 10", rep.FramesVerified)
	}
}

// TestVerifyOnOpenQuarantinesCorruptData flips bits inside a data frame's
// payload and checks the damaged extent is quarantined: reads overlapping
// it fail with ErrCorruptExtent, reads elsewhere still return good bytes.
func TestVerifyOnOpenQuarantinesCorruptData(t *testing.T) {
	const nRec, recSize = 4, 128
	b, c := framedContainer(t, Options{})
	want := writeRecords(t, c, nRec, recSize)

	// Record 1's frame starts at 1*(recSize+frameOverhead); its payload
	// frameHeaderSize later.
	frameStart := int64(recSize + frameOverhead)
	if err := b.CorruptRange("/c/hostdir.0/data.0", frameStart+frameHeaderSize+10, 3); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenContainer(b, "/c", Options{NumHostdirs: 1, VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c2.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rep := r.FsckReport()
	if rep.QuarantinedExtents != 1 || rep.QuarantinedBytes != recSize {
		t.Fatalf("quarantine = %d extents / %d bytes, want 1 / %d", rep.QuarantinedExtents, rep.QuarantinedBytes, recSize)
	}

	// The read overlapping the quarantined extent must fail typed.
	buf := make([]byte, recSize)
	if _, err := r.ReadAt(buf, recSize); !errors.Is(err, ErrCorruptExtent) {
		t.Fatalf("read of corrupt extent: err = %v, want ErrCorruptExtent", err)
	}
	// A single byte inside it fails too — no partial delivery.
	one := make([]byte, 1)
	if _, err := r.ReadAt(one, recSize+10); !errors.Is(err, ErrCorruptExtent) {
		t.Fatalf("1-byte read of corrupt extent: err = %v, want ErrCorruptExtent", err)
	}
	// Untouched records still read clean.
	if _, err := r.ReadAt(buf, 2*recSize); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != string(want[2*recSize:3*recSize]) {
		t.Fatal("clean record's bytes changed")
	}
}

// TestVerifyOnOpenDropsCorruptIndexFrames damages one index frame: the
// lenient pass drops just that record (the fixed frame size keeps the
// walk in sync), while a strict open fails with ErrCorruptFrame.
func TestVerifyOnOpenDropsCorruptIndexFrames(t *testing.T) {
	const nRec, recSize = 3, 64
	b, c := framedContainer(t, Options{})
	want := writeRecords(t, c, nRec, recSize)

	// Corrupt the payload of index frame 1.
	if err := b.CorruptRange("/c/hostdir.0/index.0", int64(indexFrameSize+frameHeaderSize+2), 1); err != nil {
		t.Fatal(err)
	}

	// Strict open (no verify): the corruption is an error, not bad data.
	cStrict, err := OpenContainer(b, "/c", Options{NumHostdirs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cStrict.OpenReader(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("strict open of corrupt index: err = %v, want ErrCorruptFrame", err)
	}

	// Lenient open: record 1 is dropped, its logical range reads as a hole.
	cv, err := OpenContainer(b, "/c", Options{NumHostdirs: 1, VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cv.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rep := r.FsckReport(); rep.RecordsDropped != 1 {
		t.Fatalf("RecordsDropped = %d, want 1", rep.RecordsDropped)
	}
	buf := make([]byte, recSize)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != string(want[:recSize]) {
		t.Fatal("surviving record 0 changed")
	}
	if _, err := r.ReadAt(buf, recSize); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("dropped record read byte %d = %d, want 0 (hole)", i, v)
		}
	}
}

// TestVerifyOnOpenTruncatesTornTails appends partial-frame garbage to both
// logs (a crashed writer's torn appends) and checks the verify pass cuts
// them so a later strict open succeeds.
func TestVerifyOnOpenTruncatesTornTails(t *testing.T) {
	b, c := framedContainer(t, Options{})
	writeRecords(t, c, 2, 32)
	for _, p := range []string{"/c/hostdir.0/data.0", "/c/hostdir.0/index.0"} {
		f, err := b.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xFF, 0x01, 0x02, 0x03, 0x04}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	rep, err := Fsck(b, "/c", Options{NumHostdirs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 10 {
		t.Fatalf("TornBytes = %d, want 10", rep.TornBytes)
	}
	if rep.RecordsDropped != 0 || rep.QuarantinedExtents != 0 {
		t.Fatalf("unexpected damage beyond torn tails: %+v", *rep)
	}

	// The tails are gone: a strict open now parses every log cleanly.
	cs, err := OpenContainer(b, "/c", Options{NumHostdirs: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cs.OpenReader()
	if err != nil {
		t.Fatalf("strict open after fsck: %v", err)
	}
	r.Close()
}

// TestFramedPartialAppendFailsOver drives a framed writer into a partial
// data append: the writer must abandon the torn generation rather than
// retry in place, and the verify pass must account the torn bytes while
// every acknowledged write stays readable.
func TestFramedPartialAppendFailsOver(t *testing.T) {
	const recSize = 96
	mb := NewMemBackend()
	fb := NewFaultyBackend(mb)
	c, err := CreateContainer(fb, "/c", Options{
		NumHostdirs: 1,
		Framed:      true,
		Retry:       RetryPolicy{MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 3*recSize)
	for i := 0; i < 3; i++ {
		buf := make([]byte, recSize)
		for j := range buf {
			buf[j] = byte(i*53 + j)
		}
		copy(want[i*recSize:], buf)
		if i == 1 {
			// Tear this frame: 10 payload bytes land, then the device dies.
			fb.FailNextWrites, fb.PartialBytes = 1, 10
		}
		if _, err := w.WriteAt(buf, int64(i*recSize)); err != nil {
			t.Fatal(err)
		}
	}
	if w.FaultStats().Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1 (partial frame must not retry in place)", w.FaultStats().Failovers)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenContainer(fb, "/c", Options{NumHostdirs: 1, VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c2.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rep := r.FsckReport(); rep.TornBytes != 10 || !(rep.QuarantinedExtents == 0 && rep.RecordsDropped == 0) {
		t.Fatalf("fsck after torn failover: %+v, want 10 torn bytes only", *r.FsckReport())
	}
	got := make([]byte, len(want))
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("acknowledged writes lost across torn-frame failover")
	}
}

// TestTruncatedReadDeliversNoFabricatedBytes is the zero-fill regression
// pin: when a data log is shorter than its index claims, reads must fail
// with ErrTruncatedLog and deliver zero bytes — never a silently
// zero-filled buffer.
func TestTruncatedReadDeliversNoFabricatedBytes(t *testing.T) {
	b := NewMemBackend()
	c, err := CreateContainer(b, "/c", Options{NumHostdirs: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i + 1) // no zero bytes, so fabrication is detectable
	}
	if _, err := w.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Cut the data log mid-extent, as a crash between the index append
	// becoming durable and the data append completing would.
	f, err := b.Open("/c/hostdir.0/data.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.(Truncator).Truncate(100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 256)
	n, err := r.ReadAt(buf, 0)
	if !errors.Is(err, ErrTruncatedLog) {
		t.Fatalf("read past truncation: n=%d err=%v, want ErrTruncatedLog", n, err)
	}
	if n != 0 {
		t.Fatalf("read returned %d bytes alongside the error; corrupt reads must deliver nothing", n)
	}
	// A read entirely within the surviving prefix still works.
	if _, err := r.ReadAt(buf[:100], 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:100]) != string(payload[:100]) {
		t.Fatal("surviving prefix changed")
	}
}

// FuzzDecodeIndexFrames mutates a valid framed index log with byte flips
// and truncations: the strict decoder must return entries or a typed
// ErrCorruptFrame (never panic), and the lenient decoder must never
// produce an entry that was not in the original log.
func FuzzDecodeIndexFrames(f *testing.F) {
	var valid []byte
	orig := make(map[IndexEntry]bool)
	for i := 0; i < 4; i++ {
		e := IndexEntry{
			LogicalOffset: int64(i * 100),
			Length:        100,
			Writer:        int32(i),
			LogOffset:     int64(i * 100),
			Timestamp:     uint64(i + 1),
		}
		orig[e] = true
		valid = append(valid, encodeEntryRecord(e, true)...)
	}
	f.Add(valid, uint16(0), byte(0))
	f.Add(valid, uint16(50), byte(0xFF))
	f.Add(valid[:len(valid)-3], uint16(7), byte(1))
	f.Fuzz(func(t *testing.T, data []byte, pos uint16, flip byte) {
		buf := append([]byte(nil), data...)
		if len(buf) > 0 {
			buf[int(pos)%len(buf)] ^= flip
		}
		entries, dropped, torn, err := decodeFramedIndexLog(buf, false)
		if err != nil {
			t.Fatalf("lenient decode errored: %v", err)
		}
		for _, e := range entries {
			if !orig[e] && flip != 0 {
				// A surviving entry must be one of the originals unless the
				// flip landed outside every frame we fed in (different data).
				if string(data) == string(valid) {
					t.Fatalf("lenient decode fabricated entry %+v", e)
				}
			}
		}
		if want := int64(len(buf)) % indexFrameSize; torn != want {
			t.Fatalf("torn = %d, want %d", torn, want)
		}
		if int64(len(entries))+dropped != int64(len(buf))/indexFrameSize {
			t.Fatalf("entries+dropped = %d, want %d frames", int64(len(entries))+dropped, int64(len(buf))/indexFrameSize)
		}
		if _, _, _, serr := decodeFramedIndexLog(buf, true); serr != nil && !errors.Is(serr, ErrCorruptFrame) {
			t.Fatalf("strict decode returned untyped error: %v", serr)
		}
		// The data-frame walker must hold its invariants on arbitrary bytes.
		quar, frames, clean := verifyDataFrames(buf)
		if clean < 0 || clean > int64(len(buf)) || frames < int64(len(quar)) {
			t.Fatalf("verifyDataFrames invariants broken: quar=%d frames=%d clean=%d", len(quar), frames, clean)
		}
	})
}

// TestAppendFrameLayout pins the frame wire format so torn-tail arithmetic
// in other tests stays honest.
func TestAppendFrameLayout(t *testing.T) {
	payload := []byte("abcdef")
	frame := appendFrame(nil, payload)
	if len(frame) != frameOverhead+len(payload) {
		t.Fatalf("frame length = %d, want %d", len(frame), frameOverhead+len(payload))
	}
	if got := binary.LittleEndian.Uint32(frame); got != uint32(len(payload)) {
		t.Fatalf("length field = %d, want %d", got, len(payload))
	}
	if string(frame[frameHeaderSize:frameHeaderSize+len(payload)]) != string(payload) {
		t.Fatal("payload not in place")
	}
}
