package core

import (
	"io"
	"testing"

	"repro/internal/obs"
)

func TestContainerMetricsPopulate(t *testing.T) {
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Metrics = reg
	b := NewMemBackend()
	c, err := CreateContainer(b, "/ckpt", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two writers lay down interleaved records so the read path must fan
	// out across both data logs.
	const rec = 1024
	for id := int32(0); id < 2; id++ {
		w, err := c.OpenWriter(id)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, rec)
		for i := range buf {
			buf[i] = byte(id + 1)
		}
		for k := 0; k < 4; k++ {
			off := int64(k*2+int(id)) * rec
			if _, err := w.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// One read spanning the whole file crosses every record boundary.
	got := make([]byte, 8*rec)
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters["plfs.writes"]; got != 8 {
		t.Errorf("plfs.writes = %d, want 8", got)
	}
	if got := s.Counters["plfs.bytes_data"]; got != 8*rec {
		t.Errorf("plfs.bytes_data = %d, want %d", got, 8*rec)
	}
	if got := s.Counters["plfs.index.entries"]; got != 8 {
		t.Errorf("plfs.index.entries = %d, want 8", got)
	}
	if got := s.Counters["plfs.index.merges"]; got != 1 {
		t.Errorf("plfs.index.merges = %d, want 1", got)
	}
	if got := s.Counters["plfs.index.entries_merged"]; got <= 0 {
		t.Errorf("plfs.index.entries_merged = %d, want > 0", got)
	}
	if got := s.Counters["plfs.reads"]; got != 1 {
		t.Errorf("plfs.reads = %d, want 1", got)
	}
	h, ok := s.Histograms["plfs.read.fanout"]
	if !ok || h.Count != 1 {
		t.Fatalf("read fanout histogram = %+v", h)
	}
	// The spanning read resolves through all 8 interleaved extents.
	if h.Sum != 8 {
		t.Errorf("read fanout = %v extents, want 8", h.Sum)
	}
}

func TestContainerWithoutMetricsStillWorks(t *testing.T) {
	// Options.Metrics nil: every probe is a nil no-op.
	_, c := newContainer(t, DefaultOptions())
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, 1)
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if got[0] != 'x' {
		t.Fatalf("read %q", got)
	}
}
