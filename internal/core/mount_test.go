package core

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func newMount(t *testing.T) *Mount {
	t.Helper()
	m, err := NewMount(NewMemBackend(), "/mnt/plfs", Options{NumHostdirs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMountCreateWriteRead(t *testing.T) {
	m := newMount(t)
	f, err := m.OpenFile("ckpt.dat", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if size, _ := f.Size(); size != 5 {
		t.Fatalf("Size = %d", size)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMountOpenMissingWithoutCreate(t *testing.T) {
	m := newMount(t)
	if _, err := m.OpenFile("nope", 0, false); err == nil {
		t.Fatal("open of missing logical file should fail")
	}
	if m.Exists("nope") {
		t.Fatal("Exists(nope) = true")
	}
}

func TestMountMultiProcessSharedFile(t *testing.T) {
	// The production scenario: many processes write one logical file
	// through independent handles; a later reader sees the union.
	m := newMount(t)
	const pids = 8
	var wg sync.WaitGroup
	for pid := 0; pid < pids; pid++ {
		pid := pid
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := m.OpenFile("shared", int32(pid), true)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			payload := bytes.Repeat([]byte{byte('a' + pid)}, 10)
			if _, err := f.WriteAt(payload, int64(pid)*10); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	f, err := m.OpenFile("shared", 99, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, pids*10)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for pid := 0; pid < pids; pid++ {
		if buf[pid*10] != byte('a'+pid) {
			t.Fatalf("segment %d = %c", pid, buf[pid*10])
		}
	}
}

func TestMountReadAfterWriteVisibility(t *testing.T) {
	m := newMount(t)
	f, _ := m.OpenFile("f", 0, true)
	defer f.Close()
	f.WriteAt([]byte("one"), 0)
	buf := make([]byte, 3)
	f.ReadAt(buf, 0)
	if string(buf) != "one" {
		t.Fatalf("first read %q", buf)
	}
	// Write again: the cached reader must be invalidated.
	f.WriteAt([]byte("two"), 0)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "two" {
		t.Fatalf("read after overwrite = %q, want two", buf)
	}
}

func TestMountCrossHandleVisibilityAfterSync(t *testing.T) {
	m := newMount(t)
	w, _ := m.OpenFile("f", 1, true)
	w.WriteAt([]byte("data"), 0)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := m.OpenFile("f", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 4)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("cross-handle read %q", buf)
	}
	w.Close()
}

func TestMountClosedHandle(t *testing.T) {
	m := newMount(t)
	f, _ := m.OpenFile("f", 0, true)
	f.WriteAt([]byte("x"), 0)
	f.Close()
	if _, err := f.WriteAt([]byte("y"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteAt after close = %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after close = %v", err)
	}
	if _, err := f.Size(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Size after close = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v", err)
	}
}

func TestMountPersistenceAcrossMounts(t *testing.T) {
	backend := NewMemBackend()
	m1, err := NewMount(backend, "/mnt", Options{NumHostdirs: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := m1.OpenFile("persist", 0, true)
	f.WriteAt([]byte("still here"), 0)
	f.Close()

	// A fresh mount over the same backend must see the container.
	m2, err := NewMount(backend, "/mnt", Options{NumHostdirs: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m2.OpenFile("persist", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := make([]byte, 10)
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "still here" {
		t.Fatalf("reopened read %q", buf)
	}
}

func TestReadSeeker(t *testing.T) {
	m := newMount(t)
	f, _ := m.OpenFile("seek", 0, true)
	defer f.Close()
	f.WriteAt([]byte("0123456789"), 0)
	rs := NewReadSeeker(f)

	buf := make([]byte, 4)
	n, err := rs.Read(buf)
	if n != 4 || (err != nil && err != io.EOF) {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	if string(buf) != "0123" {
		t.Fatalf("sequential read %q", buf)
	}
	if pos, _ := rs.Seek(2, io.SeekCurrent); pos != 6 {
		t.Fatalf("SeekCurrent pos = %d", pos)
	}
	rs.Read(buf)
	if string(buf) != "6789" {
		t.Fatalf("post-seek read %q", buf)
	}
	if pos, _ := rs.Seek(-3, io.SeekEnd); pos != 7 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	if _, err := rs.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek should error")
	}
	if _, err := rs.Seek(0, 99); err == nil {
		t.Fatal("bad whence should error")
	}
	// Reading everything via io.ReadAll from the start.
	rs.Seek(0, io.SeekStart)
	all, err := io.ReadAll(rs)
	if err != nil {
		t.Fatal(err)
	}
	if string(all) != "0123456789" {
		t.Fatalf("ReadAll = %q", all)
	}
}

// TestMountParallelIngest drives the parallel index-ingest path through
// the mount layer: contents must be identical for any worker count.
func TestMountParallelIngest(t *testing.T) {
	backend := NewMemBackend()
	want := make([]byte, 0, 16*8*64)
	{
		m, err := NewMount(backend, "/mnt", Options{NumHostdirs: 4})
		if err != nil {
			t.Fatal(err)
		}
		for pid := int32(0); pid < 16; pid++ {
			f, err := m.OpenFile("ckpt", pid, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				rec := bytes.Repeat([]byte{byte('a' + pid)}, 64)
				if _, err := f.WriteAt(rec, int64((i*16+int(pid))*64)); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 16*8; i++ {
		want = append(want, bytes.Repeat([]byte{byte('a' + i%16)}, 64)...)
	}
	for _, workers := range []int{1, 4, 0} {
		m, err := NewMount(backend, "/mnt", Options{NumHostdirs: 4, IngestWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		f, err := m.OpenFile("ckpt", 99, false)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: mount read differs from sequential ingest", workers)
		}
		f.Close()
	}
}

// TestMountConcurrentReadsOneHandle exercises the read-lock fast path:
// many goroutines read through one LogicalFile while no writes occur.
func TestMountConcurrentReadsOneHandle(t *testing.T) {
	m := newMount(t)
	w, err := m.OpenFile("f", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abcdefgh"), 512)
	if _, err := w.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("f", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Warm the reader so every goroutine takes the RLock path.
	if _, err := f.ReadAt(make([]byte, 1), 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 100; i++ {
				off := int64((i*8 + g) % 60 * 64)
				if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
					t.Error(err)
					return
				}
				if buf[0] != payload[off] {
					t.Errorf("offset %d: got %q, want %q", off, buf[0], payload[off])
					return
				}
			}
		}()
	}
	wg.Wait()
}
