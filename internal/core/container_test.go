package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newContainer(t *testing.T, opts Options) (*MemBackend, *Container) {
	t.Helper()
	b := NewMemBackend()
	c, err := CreateContainer(b, "/ckpt", opts)
	if err != nil {
		t.Fatal(err)
	}
	return b, c
}

func TestCreateOpenContainer(t *testing.T) {
	b, _ := newContainer(t, DefaultOptions())
	if !IsContainer(b, "/ckpt") {
		t.Fatal("IsContainer = false for a created container")
	}
	if _, err := OpenContainer(b, "/ckpt", DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenContainer(b, "/nope", DefaultOptions()); err == nil {
		t.Fatal("opening a non-container should fail")
	}
	if _, err := CreateContainer(b, "/ckpt", DefaultOptions()); err == nil {
		t.Fatal("re-creating an existing container should fail")
	}
}

func TestInvalidOptionsRejected(t *testing.T) {
	b := NewMemBackend()
	if _, err := CreateContainer(b, "/c", Options{NumHostdirs: 0}); err == nil {
		t.Fatal("zero hostdirs should be rejected")
	}
}

func TestSingleWriterRoundTrip(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, err := c.OpenWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello plfs container")
	if _, err := w.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(payload))
	}
	got := make([]byte, len(payload))
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q, want %q", got, payload)
	}
}

func TestNTo1StridedPattern(t *testing.T) {
	// The canonical checkpoint pattern: N ranks write interleaved records
	// into one logical file. Verify the reassembled contents byte for byte.
	const (
		ranks   = 8
		recSize = 100
		recs    = 16
	)
	_, c := newContainer(t, DefaultOptions())
	for rank := 0; rank < ranks; rank++ {
		w, err := c.OpenWriter(int32(rank))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < recs; i++ {
			off := int64((i*ranks + rank) * recSize)
			rec := bytes.Repeat([]byte{byte('A' + rank)}, recSize)
			if _, err := w.WriteAt(rec, off); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := int64(ranks * recs * recSize)
	if r.Size() != want {
		t.Fatalf("Size = %d, want %d", r.Size(), want)
	}
	buf := make([]byte, want)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i := int64(0); i < want; i++ {
		rec := i / recSize
		rank := rec % ranks
		if buf[i] != byte('A'+rank) {
			t.Fatalf("byte %d = %c, want %c", i, buf[i], byte('A'+rank))
		}
	}
}

func TestConcurrentWritersFromGoroutines(t *testing.T) {
	// PLFS writers are independent by construction; hammer them from real
	// goroutines to verify handle/clock thread safety.
	const ranks = 16
	_, c := newContainer(t, DefaultOptions())
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := c.OpenWriter(int32(rank))
			if err != nil {
				t.Error(err)
				return
			}
			defer w.Close()
			for i := 0; i < 50; i++ {
				off := int64((i*ranks + rank) * 64)
				buf := bytes.Repeat([]byte{byte(rank)}, 64)
				if _, err := w.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := r.Size(), int64(ranks*50*64); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	buf := make([]byte, 64)
	for rec := 0; rec < ranks*50; rec++ {
		if _, err := r.ReadAt(buf, int64(rec*64)); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		wantByte := byte(rec % ranks)
		if buf[0] != wantByte || buf[63] != wantByte {
			t.Fatalf("record %d corrupted: got %d, want %d", rec, buf[0], wantByte)
		}
	}
}

func TestOverwriteSemantics(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(0)
	w.WriteAt(bytes.Repeat([]byte{1}, 100), 0)
	w.WriteAt(bytes.Repeat([]byte{2}, 50), 25)
	w.Close()
	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 100)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		want := byte(1)
		if i >= 25 && i < 75 {
			want = 2
		}
		if buf[i] != want {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], want)
		}
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(0)
	w.WriteAt([]byte{9}, 1000) // single byte at offset 1000
	w.Close()
	r, _ := c.OpenReader()
	defer r.Close()
	if r.Size() != 1001 {
		t.Fatalf("Size = %d, want 1001", r.Size())
	}
	buf := make([]byte, 1001)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, buf[i])
		}
	}
	if buf[1000] != 9 {
		t.Fatalf("tail byte = %d, want 9", buf[1000])
	}
}

func TestReadAtEOFSemantics(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(0)
	w.WriteAt([]byte("abc"), 0)
	w.Close()
	r, _ := c.OpenReader()
	defer r.Close()
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read = (%d, %v), want (3, EOF)", n, err)
	}
	if _, err := r.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past EOF err = %v, want EOF", err)
	}
}

func TestWriterReopenAppends(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(5)
	w.WriteAt([]byte("1111"), 0)
	w.Close()
	w2, err := c.OpenWriter(5)
	if err != nil {
		t.Fatal(err)
	}
	w2.WriteAt([]byte("2222"), 4)
	w2.Close()
	r, _ := c.OpenReader()
	defer r.Close()
	buf := make([]byte, 8)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "11112222" {
		t.Fatalf("contents = %q, want 11112222", buf)
	}
}

func TestDoubleOpenWriterFails(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	if _, err := c.OpenWriter(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenWriter(1); err == nil {
		t.Fatal("second live writer with same id should fail")
	}
}

func TestClosedHandleErrors(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(0)
	w.Close()
	if _, err := w.WriteAt([]byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteAt on closed = %v, want ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync on closed = %v, want ErrClosed", err)
	}
}

func TestNegativeOffsetsRejected(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(0)
	defer w.Close()
	if _, err := w.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	w.WriteAt([]byte("x"), 0)
	w.Sync()
	r, _ := c.OpenReader()
	defer r.Close()
	if _, err := r.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read offset accepted")
	}
}

func TestCoalescedIndexShrinksButContentsIdentical(t *testing.T) {
	run := func(coalesce bool) (int64, []byte) {
		b := NewMemBackend()
		c, err := CreateContainer(b, "/c", Options{NumHostdirs: 4, CoalesceIndex: coalesce})
		if err != nil {
			t.Fatal(err)
		}
		w, _ := c.OpenWriter(0)
		// Sequential appends: maximally coalescible.
		for i := 0; i < 100; i++ {
			w.WriteAt(bytes.Repeat([]byte{byte(i)}, 64), int64(i*64))
		}
		_, entries, _ := w.Stats()
		w.Close()
		r, _ := c.OpenReader()
		defer r.Close()
		buf := make([]byte, 6400)
		if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		return entries, buf
	}
	plainEntries, plainData := run(false)
	coEntries, coData := run(true)
	if coEntries >= plainEntries {
		t.Fatalf("coalesced entries %d, want < plain %d", coEntries, plainEntries)
	}
	if coEntries != 1 {
		t.Fatalf("sequential appends should coalesce to 1 entry, got %d", coEntries)
	}
	if !bytes.Equal(plainData, coData) {
		t.Fatal("coalescing changed file contents")
	}
}

func TestCoalescePendingVisibleAfterSync(t *testing.T) {
	b := NewMemBackend()
	c, _ := CreateContainer(b, "/c", Options{NumHostdirs: 2, CoalesceIndex: true})
	w, _ := c.OpenWriter(0)
	w.WriteAt([]byte("abcd"), 0)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r, _ := c.OpenReader()
	defer r.Close()
	if r.Size() != 4 {
		t.Fatalf("Size = %d after Sync, want 4", r.Size())
	}
	w.Close()
}

func TestFlatten(t *testing.T) {
	b, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(0)
	payload := bytes.Repeat([]byte("0123456789"), 1000)
	w.WriteAt(payload, 0)
	w.Close()
	r, _ := c.OpenReader()
	defer r.Close()
	n, err := r.Flatten("/flat")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("Flatten wrote %d, want %d", n, len(payload))
	}
	f, err := b.Open("/flat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("flattened contents differ")
	}
}

func TestHostdirSpreading(t *testing.T) {
	b, c := newContainer(t, Options{NumHostdirs: 4})
	for rank := 0; rank < 8; rank++ {
		w, err := c.OpenWriter(int32(rank))
		if err != nil {
			t.Fatal(err)
		}
		w.WriteAt([]byte("x"), 0)
		w.Close()
	}
	// Each of the 4 hostdirs should hold logs for 2 ranks (2 files each).
	for i := 0; i < 4; i++ {
		names, err := b.ReadDir(fmt.Sprintf("/ckpt/hostdir.%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 4 { // 2 ranks x (data + index)
			t.Fatalf("hostdir.%d has %d entries, want 4: %v", i, len(names), names)
		}
	}
}

func TestWriterStats(t *testing.T) {
	_, c := newContainer(t, DefaultOptions())
	w, _ := c.OpenWriter(0)
	w.WriteAt(make([]byte, 100), 0)
	w.WriteAt(make([]byte, 50), 500)
	writes, entries, bytesOut := w.Stats()
	if writes != 2 || entries != 2 || bytesOut != 150 {
		t.Fatalf("Stats = (%d,%d,%d), want (2,2,150)", writes, entries, bytesOut)
	}
	w.Close()
}

// TestRandomWorkloadMatchesShadowModel cross-checks the container against a
// simple in-memory byte array under randomized concurrent-looking (but
// deterministically sequenced) writes.
func TestRandomWorkloadMatchesShadowModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewMemBackend()
		c, err := CreateContainer(b, "/c", Options{NumHostdirs: 3})
		if err != nil {
			return false
		}
		const space = 2000
		shadow := make([]byte, space)
		var maxEnd int64
		writers := make([]*Writer, 4)
		for i := range writers {
			writers[i], err = c.OpenWriter(int32(i))
			if err != nil {
				return false
			}
		}
		for op := 0; op < 60; op++ {
			wi := r.Intn(len(writers))
			off := int64(r.Intn(space - 100))
			n := r.Intn(100) + 1
			data := make([]byte, n)
			r.Read(data)
			if _, err := writers[wi].WriteAt(data, off); err != nil {
				return false
			}
			copy(shadow[off:off+int64(n)], data)
			if end := off + int64(n); end > maxEnd {
				maxEnd = end
			}
		}
		for _, w := range writers {
			if err := w.Close(); err != nil {
				return false
			}
		}
		rd, err := c.OpenReader()
		if err != nil {
			return false
		}
		defer rd.Close()
		if rd.Size() != maxEnd {
			return false
		}
		got := make([]byte, maxEnd)
		if _, err := rd.ReadAt(got, 0); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, shadow[:maxEnd]) && rd.Index().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMemBackendDirectorySemantics(t *testing.T) {
	b := NewMemBackend()
	if err := b.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Mkdir("/a"); err == nil {
		t.Fatal("duplicate mkdir should fail")
	}
	if err := b.Mkdir("/missing/child"); err == nil {
		t.Fatal("mkdir under missing parent should fail")
	}
	if _, err := b.Create("/missing/f"); err == nil {
		t.Fatal("create under missing parent should fail")
	}
	if _, err := b.Open("/nope"); err == nil {
		t.Fatal("open of missing file should fail")
	}
	b.Create("/a/f1")
	b.Mkdir("/a/sub")
	b.Create("/a/sub/f2")
	names, err := b.ReadDir("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "f1" || names[1] != "sub" {
		t.Fatalf("ReadDir(/a) = %v, want [f1 sub]", names)
	}
	if _, err := b.ReadDir("/a/f1"); err == nil {
		t.Fatal("ReadDir of a file should fail")
	}
}
