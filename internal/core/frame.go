package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// This file defines the v2 checksummed log format and plfsck, the
// container recovery pass. A v1 container appends raw 36-byte index
// records and raw payload bytes — fast, but a flipped bit or a torn
// append is invisible until the application reads garbage. A v2
// container frames every record: [u32 length][payload][u32 crc32c],
// little-endian, Castagnoli polynomial. Index frames are fixed-size
// (length always indexEntrySize, 44 bytes total) so a damaged frame
// never desynchronizes the walk; data frames are variable and walked
// sequentially. IndexEntry.LogOffset points at the *payload* start —
// frameHeaderSize past the frame — so the read path fetches data
// exactly as it does from a v1 log, paying nothing for framing until it
// chooses to verify. The container's version is negotiated through the
// access file ("plfs container v1\n" vs "v2\n"): v1 containers keep
// reading and writing byte-identically through the legacy path.
//
// plfsck is the recovery half: a sequential sweep of every log that
// drops index frames failing their checksum, truncates torn tails
// (when the backend file supports Truncator), and quarantines the
// payload ranges of data frames whose checksum fails — reads
// overlapping a quarantined range return ErrCorruptExtent instead of
// bytes the writer never wrote. It is wired into OpenReader behind
// Options.VerifyOnOpen and usable standalone via Fsck.

const (
	frameHeaderSize  = 4
	frameTrailerSize = 4
	frameOverhead    = frameHeaderSize + frameTrailerSize
	indexFrameSize   = frameOverhead + indexEntrySize
)

// castagnoli is the crc32c table (iSCSI/ext4 polynomial — the standard
// storage-integrity choice).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptFrame reports a log frame whose length or checksum failed
// verification (errors.Is-matchable under wrapped detail).
var ErrCorruptFrame = errors.New("plfs: corrupt log frame")

// ErrCorruptExtent reports a read overlapping a data extent that plfsck
// quarantined: its frame's checksum failed and the bytes cannot be
// trusted. Returned instead of fabricated data, never alongside it.
var ErrCorruptExtent = errors.New("plfs: extent quarantined by verification")

// appendFrame appends one [len][payload][crc32c] frame to dst.
func appendFrame(dst, payload []byte) []byte {
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], uint32(len(payload)))
	dst = append(dst, word[:]...)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(word[:], crc32.Checksum(payload, castagnoli))
	return append(dst, word[:]...)
}

// encodeEntryRecord serializes one index entry in the container's log
// format: a bare 36-byte record for v1, a 44-byte frame for v2.
func encodeEntryRecord(e IndexEntry, framed bool) []byte {
	var rec [indexEntrySize]byte
	e.encode(rec[:])
	if !framed {
		out := rec
		return out[:]
	}
	return appendFrame(make([]byte, 0, indexFrameSize), rec[:])
}

// decodeFramedIndexLog walks buf as fixed-size index frames. In strict
// mode the first bad frame or short tail fails the whole decode with a
// typed error. In lenient (fsck) mode, frames failing their length or
// checksum are dropped (counted, skipped — the fixed frame size keeps
// the walk in sync) and a short tail is reported as torn; clean is the
// byte length of the well-framed prefix structure (everything before
// the torn tail).
func decodeFramedIndexLog(buf []byte, strict bool) (entries []IndexEntry, dropped, torn int64, err error) {
	n := int64(len(buf))
	entries = make([]IndexEntry, 0, n/indexFrameSize)
	off := int64(0)
	for ; off+indexFrameSize <= n; off += indexFrameSize {
		frame := buf[off : off+indexFrameSize]
		length := binary.LittleEndian.Uint32(frame[0:])
		payload := frame[frameHeaderSize : frameHeaderSize+indexEntrySize]
		want := binary.LittleEndian.Uint32(frame[frameHeaderSize+indexEntrySize:])
		if length != indexEntrySize || crc32.Checksum(payload, castagnoli) != want {
			if strict {
				return nil, 0, 0, fmt.Errorf("%w: index frame at %d", ErrCorruptFrame, off)
			}
			dropped++
			continue
		}
		entries = append(entries, decodeEntry(payload))
	}
	if off < n {
		if strict {
			return nil, 0, 0, fmt.Errorf("%w: torn index tail: %d trailing bytes", ErrCorruptFrame, n-off)
		}
		torn = n - off
	}
	return entries, dropped, torn, nil
}

// logRange is a half-open byte range within one data log.
type logRange struct {
	off, end int64
}

// verifyDataFrames walks buf as variable-size data frames, returning the
// payload ranges of frames failing their checksum (quarantined) and the
// length of the parseable prefix (clean). A header whose length field
// cannot fit in the remaining bytes ends the walk — everything from
// there is a torn tail, since a variable-size walk cannot resync past a
// damaged length.
func verifyDataFrames(buf []byte) (quarantined []logRange, frames int64, clean int64) {
	n := int64(len(buf))
	off := int64(0)
	for off+frameOverhead <= n {
		length := int64(binary.LittleEndian.Uint32(buf[off:]))
		if length <= 0 || off+frameOverhead+length > n {
			break
		}
		payload := buf[off+frameHeaderSize : off+frameHeaderSize+length]
		want := binary.LittleEndian.Uint32(buf[off+frameHeaderSize+length:])
		frames++
		if crc32.Checksum(payload, castagnoli) != want {
			quarantined = append(quarantined, logRange{
				off: off + frameHeaderSize,
				end: off + frameHeaderSize + length,
			})
		}
		off += frameOverhead + length
	}
	return quarantined, frames, off
}

// FsckReport summarizes one plfsck recovery pass over a container.
type FsckReport struct {
	// IndexLogs and DataLogs count logs scanned.
	IndexLogs, DataLogs int

	// FramesVerified counts frames whose checksum was checked (index and
	// data), RecordsDropped the index frames discarded for failing it.
	FramesVerified int64
	RecordsDropped int64

	// TornBytes counts trailing bytes cut (or, when the backend cannot
	// truncate, ignored) as torn appends — index and data tails.
	TornBytes int64

	// QuarantinedExtents counts data frames failing verification, and
	// QuarantinedBytes their total payload; reads overlapping them
	// return ErrCorruptExtent.
	QuarantinedExtents int
	QuarantinedBytes   int64
}

// clean reports whether the pass found nothing wrong.
func (r FsckReport) Clean() bool {
	return r.RecordsDropped == 0 && r.TornBytes == 0 && r.QuarantinedExtents == 0
}

// logFsck is one log pair's contribution to the container FsckReport,
// produced by ingest workers and merged in deterministic ref order.
type logFsck struct {
	id          int32
	frames      int64
	dropped     int64
	torn        int64
	quarantined []logRange
}

// truncateTail cuts a torn tail when the backend file supports it. The
// repair is opportunistic: a backend without Truncator leaves the tail
// in place and the decoder simply keeps ignoring it.
func truncateTail(f BackendFile, clean int64) {
	if tr, ok := f.(Truncator); ok {
		tr.Truncate(clean) //lint:allow errflow -- opportunistic repair: a failed truncate leaves the tail for the decoder to keep ignoring
	}
}

// Fsck runs the plfsck recovery pass standalone: open the container,
// sweep and repair every log (VerifyOnOpen forced on), and report. The
// container is left in its repaired state — torn tails truncated where
// the backend allows, so a subsequent strict open succeeds.
func Fsck(b Backend, path string, opts Options) (*FsckReport, error) {
	opts.VerifyOnOpen = true
	c, err := OpenContainer(b, path, opts)
	if err != nil {
		return nil, err
	}
	r, err := c.OpenReader()
	if err != nil {
		return nil, err
	}
	rep := r.FsckReport()
	if err := r.Close(); err != nil {
		return nil, err
	}
	return rep, nil
}
