// Package trace implements PDSI-style parallel I/O traces and the Ninjat
// visualization (LANL's tool for concurrent single-file write patterns,
// Figure 15 of the report): each record is one write (rank, offset,
// length, time); the renderer wraps the file's byte range into rows and
// marks each region with the rank that wrote it, which makes N-1 strided
// interleavings instantly recognizable. The package also provides the
// pattern classifier used by the analysis tooling.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Record is one traced write.
type Record struct {
	Rank   int32
	Offset int64
	Length int64
	Start  float64 // seconds
	End    float64
}

// Trace is an ordered set of records for one logical file.
type Trace struct {
	Records []Record
}

// Add appends a record.
func (t *Trace) Add(r Record) { t.Records = append(t.Records, r) }

// Size returns the highest byte written + 1.
func (t *Trace) Size() int64 {
	var max int64
	for _, r := range t.Records {
		if end := r.Offset + r.Length; end > max {
			max = end
		}
	}
	return max
}

// Ranks returns the number of distinct ranks appearing.
func (t *Trace) Ranks() int {
	seen := map[int32]bool{}
	for _, r := range t.Records {
		seen[r.Rank] = true
	}
	return len(seen)
}

// rankGlyph maps a rank to a printable cell.
func rankGlyph(rank int32) byte {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if rank < 0 {
		return '.'
	}
	return glyphs[int(rank)%len(glyphs)]
}

// RenderMap draws the Ninjat "file as a wrapped linear array" view: width
// cells per row, rows covering the whole file; each cell shows the rank
// whose write covers the majority of that cell ('.' = never written).
func (t *Trace) RenderMap(width, rows int) []string {
	size := t.Size()
	if size == 0 || width < 1 || rows < 1 {
		return nil
	}
	cells := width * rows
	owner := make([]int32, cells)
	coverage := make([]int64, cells)
	for i := range owner {
		owner[i] = -1
	}
	bytesPerCell := (size + int64(cells) - 1) / int64(cells)
	for _, r := range t.Records {
		first := r.Offset / bytesPerCell
		last := (r.Offset + r.Length - 1) / bytesPerCell
		for c := first; c <= last && c < int64(cells); c++ {
			cellStart := c * bytesPerCell
			cellEnd := cellStart + bytesPerCell
			lo, hi := r.Offset, r.Offset+r.Length
			if lo < cellStart {
				lo = cellStart
			}
			if hi > cellEnd {
				hi = cellEnd
			}
			if hi-lo > coverage[c] {
				coverage[c] = hi - lo
				owner[c] = r.Rank
			}
		}
	}
	out := make([]string, rows)
	var b strings.Builder
	for row := 0; row < rows; row++ {
		b.Reset()
		for col := 0; col < width; col++ {
			b.WriteByte(rankGlyph(owner[row*width+col]))
		}
		out[row] = b.String()
	}
	return out
}

// RenderTimeline draws the left-hand Ninjat view: time on x, offset on y;
// each cell marks the rank writing that offset band during that time band.
func (t *Trace) RenderTimeline(width, rows int) []string {
	size := t.Size()
	if size == 0 || len(t.Records) == 0 {
		return nil
	}
	var tMax float64
	for _, r := range t.Records {
		if r.End > tMax {
			tMax = r.End
		}
	}
	if tMax == 0 {
		tMax = 1
	}
	grid := make([][]int32, rows)
	for i := range grid {
		grid[i] = make([]int32, width)
		for j := range grid[i] {
			grid[i][j] = -1
		}
	}
	for _, r := range t.Records {
		col := int(r.Start / tMax * float64(width))
		if col >= width {
			col = width - 1
		}
		row := int(float64(r.Offset) / float64(size) * float64(rows))
		if row >= rows {
			row = rows - 1
		}
		grid[rows-1-row][col] = r.Rank // offset grows upward
	}
	out := make([]string, rows)
	var b strings.Builder
	for i, rowCells := range grid {
		b.Reset()
		for _, rank := range rowCells {
			b.WriteByte(rankGlyph(rank))
		}
		out[i] = b.String()
	}
	return out
}

// Pattern classifies a concurrent-write trace.
type Pattern int

// Recognized patterns.
const (
	Unknown Pattern = iota
	N1StridedPattern
	N1SegmentedPattern
	NNPattern // single-writer (per-file) sequential
)

func (p Pattern) String() string {
	switch p {
	case N1StridedPattern:
		return "N-1 strided"
	case N1SegmentedPattern:
		return "N-1 segmented"
	case NNPattern:
		return "N-N (single writer)"
	default:
		return "unknown"
	}
}

// Classify infers the access pattern from offsets: single writer ->
// NNPattern; per-rank contiguous blocks -> segmented; per-rank constant
// stride larger than the record -> strided.
func Classify(t *Trace) Pattern {
	if len(t.Records) == 0 {
		return Unknown
	}
	byRank := map[int32][]Record{}
	for _, r := range t.Records {
		byRank[r.Rank] = append(byRank[r.Rank], r)
	}
	if len(byRank) == 1 {
		return NNPattern
	}
	strided, segmented := 0, 0
	for _, recs := range byRank {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Offset < recs[j].Offset })
		if len(recs) < 2 {
			continue
		}
		// Examine gaps between consecutive writes of this rank.
		contiguous, constStride := true, true
		stride := recs[1].Offset - recs[0].Offset
		for i := 1; i < len(recs); i++ {
			gap := recs[i].Offset - recs[i-1].Offset
			if gap != recs[i-1].Length {
				contiguous = false
			}
			if gap != stride {
				constStride = false
			}
		}
		switch {
		case contiguous:
			segmented++
		case constStride && stride > recs[0].Length:
			strided++
		}
	}
	switch {
	case strided > segmented && strided > 0:
		return N1StridedPattern
	case segmented > 0:
		return N1SegmentedPattern
	default:
		return Unknown
	}
}

// Stats summarizes a trace the way the released PDSI characterizations do.
type Stats struct {
	Records     int
	Ranks       int
	Bytes       int64
	MeanSize    float64
	Aligned4K   float64 // fraction of writes 4KiB-aligned in offset and size
	Pattern     Pattern
	Description string
}

// Summarize computes trace statistics.
func Summarize(t *Trace) Stats {
	s := Stats{Records: len(t.Records), Ranks: t.Ranks(), Pattern: Classify(t)}
	var aligned int
	for _, r := range t.Records {
		s.Bytes += r.Length
		if r.Offset%4096 == 0 && r.Length%4096 == 0 {
			aligned++
		}
	}
	if s.Records > 0 {
		s.MeanSize = float64(s.Bytes) / float64(s.Records)
		s.Aligned4K = float64(aligned) / float64(s.Records)
	}
	s.Description = fmt.Sprintf("%d writes by %d ranks, %d bytes, mean %.0f B, %.0f%% 4K-aligned, pattern %s",
		s.Records, s.Ranks, s.Bytes, s.MeanSize, s.Aligned4K*100, s.Pattern)
	return s
}

// SyntheticN1Strided builds the canonical checkpoint trace: ranks writes
// recs records of recSize each, interleaved round-robin.
func SyntheticN1Strided(ranks, recs int, recSize int64) *Trace {
	t := &Trace{}
	for i := 0; i < recs; i++ {
		for rank := 0; rank < ranks; rank++ {
			idx := int64(i*ranks + rank)
			t.Add(Record{
				Rank:   int32(rank),
				Offset: idx * recSize,
				Length: recSize,
				Start:  float64(i),
				End:    float64(i) + 0.5,
			})
		}
	}
	return t
}

// SyntheticN1Segmented builds the contiguous-segment shared-file trace.
func SyntheticN1Segmented(ranks, recs int, recSize int64) *Trace {
	t := &Trace{}
	perRank := int64(recs) * recSize
	for rank := 0; rank < ranks; rank++ {
		base := int64(rank) * perRank
		for i := 0; i < recs; i++ {
			t.Add(Record{
				Rank:   int32(rank),
				Offset: base + int64(i)*recSize,
				Length: recSize,
				Start:  float64(i),
				End:    float64(i) + 0.5,
			})
		}
	}
	return t
}
