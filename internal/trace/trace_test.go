package trace

import (
	"strings"
	"testing"
)

func TestSyntheticTraceSizes(t *testing.T) {
	tr := SyntheticN1Strided(4, 10, 100)
	if got, want := tr.Size(), int64(4*10*100); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if tr.Ranks() != 4 {
		t.Fatalf("Ranks = %d, want 4", tr.Ranks())
	}
	if len(tr.Records) != 40 {
		t.Fatalf("records = %d, want 40", len(tr.Records))
	}
}

func TestClassifyStrided(t *testing.T) {
	tr := SyntheticN1Strided(8, 20, 47008)
	if got := Classify(tr); got != N1StridedPattern {
		t.Fatalf("Classify = %v, want strided", got)
	}
}

func TestClassifySegmented(t *testing.T) {
	tr := SyntheticN1Segmented(8, 20, 47008)
	if got := Classify(tr); got != N1SegmentedPattern {
		t.Fatalf("Classify = %v, want segmented", got)
	}
}

func TestClassifySingleWriter(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Add(Record{Rank: 0, Offset: int64(i * 100), Length: 100})
	}
	if got := Classify(tr); got != NNPattern {
		t.Fatalf("Classify = %v, want NN", got)
	}
	if Classify(&Trace{}) != Unknown {
		t.Fatal("empty trace should classify Unknown")
	}
}

func TestPatternStrings(t *testing.T) {
	if N1StridedPattern.String() != "N-1 strided" ||
		N1SegmentedPattern.String() != "N-1 segmented" ||
		NNPattern.String() != "N-N (single writer)" ||
		Unknown.String() != "unknown" {
		t.Fatal("pattern names wrong")
	}
}

func TestRenderMapShowsInterleaving(t *testing.T) {
	// 2 ranks, 2 records each of 100 bytes: layout 0,1,0,1.
	tr := SyntheticN1Strided(2, 2, 100)
	rows := tr.RenderMap(4, 1)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0] != "0101" {
		t.Fatalf("map = %q, want 0101", rows[0])
	}
}

func TestRenderMapSegmented(t *testing.T) {
	tr := SyntheticN1Segmented(2, 2, 100)
	rows := tr.RenderMap(4, 1)
	if rows[0] != "0011" {
		t.Fatalf("map = %q, want 0011", rows[0])
	}
}

func TestRenderMapDimensions(t *testing.T) {
	tr := SyntheticN1Strided(4, 8, 1000)
	rows := tr.RenderMap(16, 4)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, row := range rows {
		if len(row) != 16 {
			t.Fatalf("row %q has width %d, want 16", row, len(row))
		}
	}
	if tr2 := (&Trace{}); tr2.RenderMap(8, 2) != nil {
		t.Fatal("empty trace should render nil")
	}
}

func TestRenderTimelineNonEmpty(t *testing.T) {
	tr := SyntheticN1Strided(4, 8, 1000)
	rows := tr.RenderTimeline(20, 6)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	joined := strings.Join(rows, "")
	if !strings.ContainsAny(joined, "0123") {
		t.Fatalf("timeline shows no ranks: %q", joined)
	}
}

func TestSummarize(t *testing.T) {
	tr := SyntheticN1Strided(4, 10, 4096)
	s := Summarize(tr)
	if s.Records != 40 || s.Ranks != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Bytes != 40*4096 {
		t.Fatalf("Bytes = %d", s.Bytes)
	}
	if s.Aligned4K != 1.0 {
		t.Fatalf("Aligned4K = %v, want 1 for 4096-byte records", s.Aligned4K)
	}
	if s.Pattern != N1StridedPattern {
		t.Fatalf("Pattern = %v", s.Pattern)
	}
	un := SyntheticN1Strided(4, 10, 47008)
	su := Summarize(un)
	if su.Aligned4K != 0 {
		t.Fatalf("unaligned trace Aligned4K = %v, want 0", su.Aligned4K)
	}
	if !strings.Contains(su.Description, "N-1 strided") {
		t.Fatalf("description %q missing pattern", su.Description)
	}
}

func TestRankGlyphs(t *testing.T) {
	if rankGlyph(-1) != '.' {
		t.Fatal("hole glyph wrong")
	}
	if rankGlyph(0) != '0' || rankGlyph(10) != 'a' {
		t.Fatal("glyph mapping wrong")
	}
	// Wraps for very large ranks.
	if rankGlyph(62) != '0' {
		t.Fatalf("glyph(62) = %c, want wrap to 0", rankGlyph(62))
	}
}
