// Package errwrap holds fixtures for the errwrap analyzer: direct
// comparison and string matching of sentinel errors are flagged;
// errors.Is/As and %w wrapping are not.
package errwrap

import (
	"errors"
	"fmt"
	"strings"
)

var ErrBoom = errors.New("boom")
var ErrOther = errors.New("other")

// notSentinel is unexported and lowercase: not matched by the Err[A-Z]
// sentinel shape.
var notSentinel = errors.New("background noise")

func badCompare(err error) bool {
	if err == ErrBoom { // want `ErrBoom compared with ==`
		return true
	}
	return err != ErrOther // want `ErrOther compared with !=`
}

func badSwitch(err error) string {
	switch err {
	case ErrBoom: // want `switch on error compares ErrBoom with ==`
		return "boom"
	case nil:
		return ""
	}
	return "?"
}

func badWrap(err error) error {
	return fmt.Errorf("context: %v", ErrBoom) // want `sentinel ErrBoom passed to fmt.Errorf without %w`
}

func badStringMatch(err error) bool {
	if err.Error() == "boom" { // want `comparing Error\(\) text`
		return true
	}
	return strings.Contains(err.Error(), "boom") // want `matching Error\(\) text with strings.Contains`
}

func good(err error) error {
	if errors.Is(err, ErrBoom) {
		return fmt.Errorf("saw boom: %w", err)
	}
	if err == nil {
		return nil
	}
	if err == notSentinel {
		return nil
	}
	return fmt.Errorf("wrapped: %w", ErrOther)
}

func allowed(err error) bool {
	return err == ErrBoom //lint:allow errwrap -- fixture: escape hatch
}
