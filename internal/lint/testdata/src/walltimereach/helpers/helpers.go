// Fixture for the walltime-reach analyzer, helper side: a direct
// wall-clock reader (walltime's territory, silent here) and a wrapper
// that smuggles it to callers (flagged with the call chain).
package helpers

import "time"

// WallNow reads the clock directly; the syntactic walltime analyzer
// owns that finding, so walltime-reach stays silent on this line.
func WallNow() int64 { return time.Now().UnixNano() }

func Wrap() int64 { // want `transitively reaches the wall clock via helpers\.Wrap -> helpers\.WallNow`
	return WallNow()
}
