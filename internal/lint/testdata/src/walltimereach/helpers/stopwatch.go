//lint:allowfile walltime,walltime-reach -- fixture stand-in for obs.Stopwatch, the one sanctioned wall-clock root
package helpers

import "time"

// StopwatchStart is the sanctioned root: taint propagation stops here,
// but callers outside cmd/ harnesses and tests are flagged at the call
// site instead.
func StopwatchStart() int64 { return time.Now().UnixNano() }
