// Fixture for the walltime-reach analyzer, caller side: a simulation
// package that reaches the clock through another package's helper, and
// one that leans on the sanctioned stopwatch from non-harness code.
package app

import "walltimereach/helpers"

func Report() int64 { // want `transitively reaches the wall clock via app\.Report -> helpers\.Wrap`
	return helpers.Wrap()
}

func Timed() int64 {
	return helpers.StopwatchStart() // want `harness stopwatch helpers\.StopwatchStart used outside a cmd/ harness or test`
}
