// Package maporder holds fixtures for the maporder analyzer:
// map-iteration order leaking into slices, output streams, traces, or
// gauges is flagged; the sorted-keys idiom and commutative updates are
// not.
package maporder

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/obs"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range leaks map-iteration order`
	}
	return keys
}

func goodSortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSlicesSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside a map range emits output in map-iteration order`
	}
}

func badWriter(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `Buffer.WriteString inside a map range writes in map-iteration order`
	}
}

func badTracer(m map[string]int, tr *obs.Tracer) {
	for k, v := range m {
		tr.Instant("cat", k, int64(v), 0) // want `obs.Tracer.Instant inside a map range records trace events in map-iteration order`
	}
}

func badGauge(m map[string]float64, g *obs.Gauge) {
	for _, v := range m {
		g.Set(v) // want `obs.Gauge.Set inside a map range is last-value-wins over map-iteration order`
	}
}

func badGaugeFunc(m map[string]float64, reg *obs.Registry) {
	for k, v := range m {
		v := v
		reg.GaugeFunc("pkg."+k, func() float64 { return v }) // want `obs.Registry.GaugeFunc inside a map range registers callbacks in map-iteration order`
	}
}

func goodCommutative(m map[string]int, c *obs.Counter, h *obs.Histogram) int {
	sum := 0
	for _, v := range m {
		sum += v
		c.Add(int64(v))
		h.Observe(float64(v))
	}
	return sum
}

func goodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func goodKeyedAppend(pairs map[string][]int) map[string][]int {
	grouped := make(map[string][]int)
	for k, vs := range pairs {
		grouped[k] = append(grouped[k], vs...)
		grouped[k+".copy"] = append(grouped[k+".copy"], len(vs))
	}
	return grouped
}

func badFixedKeyAppend(m map[string]int, out map[string][]string) {
	for k := range m {
		out["all"] = append(out["all"], k) // want `append to out\["all"\] inside a map range leaks map-iteration order`
	}
}

func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func allowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maporder -- fixture: caller sorts
	}
	return keys
}

func badChannelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside a map range delivers values in map-iteration order`
	}
}

func badGoSpawn(m map[string]int, sink *int) {
	for k := range m {
		k := k
		go func() { // want `go statement inside a map range spawns goroutines in map-iteration order`
			*sink = len(k)
		}()
	}
}

func goodSortedHandoff(m map[string]int, ch chan string) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ch <- k
	}
}
