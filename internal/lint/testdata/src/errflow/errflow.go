// Fixture for the errflow analyzer: errors from module-internal APIs
// must be consumed on every control-flow path.
package errflow

import "errors"

var errBoom = errors.New("boom")

func fail() error { return errBoom }

func two() (int, error) { return 0, errBoom }

func writeErr(off int, done func(err error)) { done(nil) }

func ready() bool { return false }

func discard() {
	fail() // want `error result of fail discarded`
}

func blank() {
	_ = fail() // want `error result of fail assigned to _`
}

func blankTuple() {
	n, _ := two() // want `error result of two assigned to _`
	println(n)
}

func droppedOnPath(b bool) {
	err := fail() // want `error from fail is dropped: a path reaches function exit without reading it`
	if b {
		println(err.Error())
	}
}

func overwritten(b bool) {
	err := fail() // want `error from fail is overwritten before being read on some path`
	if b {
		err = fail()
	}
	if err != nil {
		println("late check")
	}
}

// firstErrorWins drops the second error whenever err is already set —
// the exact idiom this analyzer caught in core's Writer.Close.
func firstErrorWins(err error) error {
	if e := fail(); err == nil { // want `error from fail is dropped: a path reaches function exit without reading it`
		err = e
	}
	return err
}

// firstErrorWinsFixed reads the second error before deciding: clean.
func firstErrorWinsFixed(err error) error {
	if e := fail(); e != nil && err == nil {
		err = e
	}
	return err
}

// checked consumes the error on every path: clean.
func checked() error {
	err := fail()
	if err != nil {
		return err
	}
	return nil
}

// loopRedef reads the error before each redefinition: clean.
func loopRedef() {
	for i := 0; i < 3; i++ {
		err := fail()
		if err != nil {
			println(err.Error())
		}
	}
}

// escapes hands the error to a deferred closure: the path analysis
// declines rather than guesses, so this is clean.
func escapes() {
	err := fail()
	defer func() { _ = err }()
}

func callbackIgnored() {
	writeErr(1, func(err error) { // want `error parameter err of callback passed to writeErr is ignored on a path to return`
		println("done")
	})
}

func callbackBlank() {
	writeErr(2, func(_ error) { // want `error parameter of callback passed to writeErr is discarded with _`
	})
}

func callbackUnnamed() {
	writeErr(3, func(error) { // want `error parameter of callback passed to writeErr is unnamed and so silently ignored`
	})
}

func callbackPartial() {
	writeErr(4, func(err error) { // want `error parameter err of callback passed to writeErr is ignored on a path to return`
		if ready() {
			println(err.Error())
		}
	})
}

// callbackChecked reads the error first on every path: clean.
func callbackChecked() {
	writeErr(5, func(err error) {
		if err != nil {
			println(err.Error())
		}
	})
}

// The line-level escape hatch still works.
func allowed() {
	fail() //lint:allow errflow -- fixture proves the escape hatch
}
