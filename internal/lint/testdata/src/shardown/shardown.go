// Fixture for the shardown analyzer: Cluster.Shard is setup-only, and
// no event callback — directly or through helpers — may reach it. The
// fixture imports the real sim package so receiver detection matches
// production code.
package shardown

import "repro/internal/sim"

// Wire resolves shard engines at setup time: legal.
func Wire(cl *sim.Cluster) []*sim.Engine {
	engines := make([]*sim.Engine, cl.NumShards())
	for i := range engines {
		engines[i] = cl.Shard(i)
	}
	return engines
}

// peek reaches into the shard table; fine when called at setup, fatal
// when reached from an event callback.
func peek(cl *sim.Cluster, i int) sim.Time {
	return cl.Shard(i).Now()
}

func Direct(cl *sim.Cluster) {
	eng := cl.Shard(0)
	eng.Schedule(10, func() { // clean: the callback touches only its own shard
		println("tick")
	})
	eng.Schedule(20, func() { // want `event callback reaches Cluster.Shard`
		cl.Shard(1).Schedule(1, func() {})
	})
}

func Transitive(cl *sim.Cluster) {
	cl.Sample(100, func(now sim.Time) { // want `event callback reaches Cluster.Shard`
		if peek(cl, 0) > now {
			println("skew")
		}
	})
}

var theCluster *sim.Cluster

func crossShard() {
	theCluster.Shard(1).Schedule(1, func() {})
}

func tick() { println("t") }

func Named(eng *sim.Engine) {
	eng.At(5, tick)       // clean: tick never touches the shard table
	eng.At(7, crossShard) // want `event callback reaches Cluster.Shard`
}

func Bound(eng *sim.Engine, cl *sim.Cluster) {
	relay := func() {
		cl.Shard(0).Schedule(1, func() {})
	}
	eng.Schedule(3, relay) // want `event callback reaches Cluster.Shard`
}

func Queue(srv *sim.Server, cl *sim.Cluster) {
	srv.Submit(10, func(at sim.Time) { // want `event callback reaches Cluster.Shard`
		cl.Shard(0).At(at, func() {})
	})
}

// SendClean is the sanctioned cross-shard path: the Send callback runs
// on the destination shard and needs no table lookup.
func SendClean(cl *sim.Cluster) {
	cl.Send(0, 1, "rpc", 5, func() {
		println("delivered")
	})
}

// The line-level escape hatch still works.
func Allowed(eng *sim.Engine, cl *sim.Cluster) {
	//lint:allow shardown -- fixture proves the escape hatch
	eng.Schedule(9, func() { cl.Shard(1).Schedule(1, func() {}) })
}
