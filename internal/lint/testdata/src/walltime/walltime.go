// Package walltime holds fixtures for the walltime analyzer: wall-clock
// reads are flagged, explicit time construction is not, and the
// //lint:allow escape hatch suppresses both trailing and line-above.
package walltime

import (
	"time"
	wall "time"
)

func bad(d time.Duration) {
	_ = time.Now()        // want `wall-clock call time.Now`
	_ = time.Since(now()) // want `wall-clock call time.Since`
	_ = time.Until(now()) // want `wall-clock call time.Until`
	time.Sleep(d)         // want `wall-clock call time.Sleep`
	_ = time.After(d)     // want `wall-clock call time.After`
	_ = time.NewTimer(d)  // want `wall-clock call time.NewTimer`
	_ = time.NewTicker(d) // want `wall-clock call time.NewTicker`
	_ = wall.Now()        // want `wall-clock call time.Now`
}

func good() {
	_ = time.Unix(0, 0)
	_ = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	_ = time.Duration(42) * time.Second
	_ = now().Add(time.Second)
}

func allowed() {
	_ = time.Now() //lint:allow walltime -- fixture: trailing directive
	//lint:allow walltime -- fixture: directive on the line above
	_ = time.Now()
}

// now stands in for a sim-time source so the good cases type-check.
func now() time.Time { return time.Unix(0, 0) }
