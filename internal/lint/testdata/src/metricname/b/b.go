// Package b completes the cross-package metricname fixtures started in
// sibling package a.
package b

import "repro/internal/obs"

func register(reg *obs.Registry) {
	reg.Counter("dup.metric.count") // want `metric "dup.metric.count" is already registered by package metricname/a`
	reg.Counter("pkg.read.count")
	reg.GaugeFunc("pkg.mixed.kind", func() float64 { return 0 }) // want `metric "pkg.mixed.kind" registered as both Gauge \(metricname/a\) and GaugeFunc \(metricname/b\)`
	reg.Quantile("pkg.queue.depth")                              // want `metric "pkg.queue.depth" registered as both Gauge \(metricname/a\) and Quantile \(metricname/b\)`
}
