// Package a holds metricname fixtures: grammar violations and the
// first halves of the cross-package duplicate and near-miss pairs
// completed by sibling package b.
package a

import "repro/internal/obs"

func register(reg *obs.Registry, tr *obs.Tracer) {
	reg.Counter("pkg.ops.count")
	reg.Counter("BadName")    // want `metric name "BadName" does not match the pkg.noun\[.verb\] grammar`
	reg.Counter("single")     // want `metric name "single" does not match the pkg.noun\[.verb\] grammar`
	reg.Counter("pkg..twice") // want `metric name "pkg..twice" does not match the pkg.noun\[.verb\] grammar`
	reg.Gauge("pkg.queue.depth")
	reg.Histogram("pkg.wait.seconds", nil)
	reg.Quantile("pkg.latency.seconds")
	reg.Quantile("BadQuantile") // want `metric name "BadQuantile" does not match the pkg.noun\[.verb\] grammar`
	reg.TimeSeries("pkg.util.series")
	reg.TimeSeries("series") // want `metric name "series" does not match the pkg.noun\[.verb\] grammar`
	reg.OpTimerSet("pkg.write")
	reg.OpTimerSet("op timer") // want `metric name "op timer" does not match the pkg.noun\[.verb\] grammar`

	reg.Counter("dup.metric.count")
	reg.Counter("pkg.reads.count") // want `metric name "pkg.reads.count" is one edit away from counter "pkg.read.count"`

	reg.Gauge("pkg.mixed.kind")

	tr.Span("cat", "write", 0, 0, 1, nil)
	tr.Span("Bad Cat", "write", 0, 0, 1, nil) // want `trace category "Bad Cat" does not match`
	tr.Instant("cat", " padded", 0, 0)        // want `trace event name " padded" has leading or trailing whitespace`
}
