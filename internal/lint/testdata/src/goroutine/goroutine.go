// Fixture for the goroutine analyzer: concurrency primitives are
// forbidden in simulation code; sanctioned pools use an allowfile
// directive (pool.go) and test files are exempt (exempt_test.go).
package goroutine

import (
	"sync"
	"sync/atomic"
)

var mu sync.Mutex // want `sync.Mutex in simulation code`

func work() {}

func spawn() {
	go work() // want `go statement in simulation code`
}

func channels() {
	ch := make(chan int) // want `channel type in simulation code`
	ch <- 1              // want `channel send in simulation code`
	<-ch                 // want `channel receive in simulation code`
	close(ch)            // want `close of a channel in simulation code`
	for range ch {       // want `range over channel in simulation code`
	}
}

func choose(ch chan int) { // want `channel type in simulation code`
	select { // want `select in simulation code`
	case <-ch: // want `channel receive in simulation code`
	}
}

func count(n *int64) {
	atomic.AddInt64(n, 1) // want `sync/atomic.AddInt64 in simulation code`
}

// The line-level escape hatch still works for a single statement.
func sanctionedLine() {
	//lint:allow goroutine -- fixture proves the line escape hatch
	go work()
}
