//lint:allowfile goroutine -- fixture worker pool stands in for the sanctioned shard-runner sites
package goroutine

// A whole file of concurrency, silenced by the file-scope directive
// above: this is the shape of sim/cluster.go's shard runner pool.
func pool(jobs []func()) {
	ch := make(chan func(), len(jobs))
	done := make(chan struct{})
	go func() {
		for f := range ch {
			f()
		}
		close(done)
	}()
	for _, f := range jobs {
		ch <- f
	}
	close(ch)
	<-done
}
