package goroutine

// Test files are exempt: race tests and parallel harnesses exercise
// concurrency on purpose. Nothing here is flagged.
func testOnlyConcurrency() {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	<-ch
}
