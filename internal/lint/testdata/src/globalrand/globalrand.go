// Package globalrand holds fixtures for the globalrand analyzer: the
// package-global math/rand source and untraceable seeds are flagged;
// explicit streams seeded from parameters are not.
package globalrand

import (
	"math/rand"
	"os"
)

func bad(seed int64) {
	_ = rand.Intn(10)                                // want `rand.Intn draws from the package-global source`
	_ = rand.Float64()                               // want `rand.Float64 draws from the package-global source`
	_ = rand.Perm(4)                                 // want `rand.Perm draws from the package-global source`
	rand.Shuffle(2, swap)                            // want `rand.Shuffle draws from the package-global source`
	rand.Seed(seed)                                  // want `rand.Seed draws from the package-global source`
	_ = rand.New(rand.NewSource(int64(os.Getpid()))) // want `seed derives from a call \(Getpid\)`
}

func good(seed int64, cfg struct{ Seed int64 }) {
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(10)
	_ = rand.New(rand.NewSource(cfg.Seed + int64(3)))
	_ = rand.New(rand.NewSource(42))
	src := rand.NewSource(seed ^ 7)
	_ = rand.New(src)
	_ = rand.NewZipf(r, 1.1, 1, 100)
}

func allowed() {
	_ = rand.Int() //lint:allow globalrand -- fixture: escape hatch
}

func swap(i, j int) {}
