package lint_test

import (
	"os"
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the meta-test behind the CI gate: the full
// analyzer suite, run over this repository exactly as
// `go run ./cmd/pdsilint ./...` does, must produce zero findings. Any
// new wall-clock read, global-rand draw, order-leaking map range,
// malformed metric name, or unwrapped sentinel comparison fails this
// test before it can perturb a golden snapshot.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("pdsilint run failed: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
	if len(findings) > 0 {
		t.Fatalf("pdsilint found %d violation(s); fix them or add a //lint:allow with justification (see DESIGN.md)", len(findings))
	}
}
