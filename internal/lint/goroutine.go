package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/engine"
)

// Goroutine forbids concurrency primitives in simulation code: go
// statements, channel types and operations (send, receive, close,
// select, range-over-channel), and any use of sync or sync/atomic. The
// deterministic simulation contract requires each shard's engine to be
// strictly single-threaded — event order, and therefore every snapshot
// byte, is defined by the heap and the conservative-lookahead windows,
// not by the Go scheduler. Code that genuinely needs threads is a
// sanctioned site, marked with a file-scope
// `//lint:allowfile goroutine -- reason` directive: sim.Cluster's shard
// runner pool, core's bounded index-ingest pool, and obs's
// mutex-guarded registry (shared by parallel shard engines). Test files
// are exempt: race tests and parallel harnesses exercise concurrency on
// purpose.
var Goroutine = &engine.Analyzer{
	Name: "goroutine",
	Doc: "forbid go statements, channels, and sync primitives in simulation code; " +
		"per-shard determinism requires single-threaded engines (sanctioned pools use //lint:allowfile)",
	Run: func(pass *engine.Pass) (any, error) {
		for _, f := range pass.Files {
			if isTestFile(pass, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(),
						"go statement in simulation code: shard engines must stay single-threaded; cross-shard work goes through Cluster.Send")
				case *ast.SendStmt:
					pass.Reportf(n.Pos(),
						"channel send in simulation code: event handoff must go through the engine (Schedule/At) or Cluster.Send")
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						pass.Reportf(n.Pos(),
							"channel receive in simulation code: take inputs from scheduled events, not channels")
					}
				case *ast.SelectStmt:
					pass.Reportf(n.Pos(),
						"select in simulation code: nondeterministic case choice breaks same-seed replay")
				case *ast.ChanType:
					pass.Reportf(n.Pos(),
						"channel type in simulation code: carry work as scheduled events, not channel traffic")
				case *ast.RangeStmt:
					if t := pass.TypesInfo.TypeOf(n.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							pass.Reportf(n.Pos(),
								"range over channel in simulation code: consume scheduled events instead")
						}
					}
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
						if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && obj.Name() == "close" {
							pass.Reportf(n.Pos(), "close of a channel in simulation code")
						}
					}
				case *ast.SelectorExpr:
					if id, ok := n.X.(*ast.Ident); ok {
						if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
							switch pn.Imported().Path() {
							case "sync", "sync/atomic":
								pass.Reportf(n.Pos(),
									"%s.%s in simulation code: locking and atomics imply shared-memory threading; "+
										"single-threaded shard engines need neither", pn.Imported().Path(), n.Sel.Name)
							}
						}
					}
				}
				return true
			})
		}
		return nil, nil
	},
}
