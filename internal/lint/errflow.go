package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/engine"
)

// Errflow is the CFG-based dropped-error check. An error produced by a
// module-internal API — WriteErr/ReadErr done callbacks, Submit chains,
// the drain and rebuild paths — must be consumed on every control-flow
// path: returned, checked, passed on, or recorded. A silently dropped
// error in a rebuild chain corrupts pfs.loss.* accounting without
// failing any test until a golden snapshot moves, so dropping one is a
// lint error, not a review nit. Four shapes are flagged:
//
//   - a call statement that discards an error-returning result outright;
//   - an error result assigned to the blank identifier;
//   - an error variable with a control-flow path from its definition to
//     a redefinition or to function exit on which it is never read
//     (reaching-definitions over the engine's CFG);
//   - an error-typed parameter of a callback literal handed to a
//     module-internal call (the WriteErr/ReadErr done shape) that some
//     path ignores.
//
// Only module-internal callees are in scope: stdlib error discipline is
// vet/staticcheck territory, and the invariant this analyzer guards is
// the simulator's accounting. Test files are exempt for the same
// reason — a test that drops a Close error fails its own assertions,
// not the simulation's books. Values that escape into closures,
// deferred calls, or through & are left to those closures — the path
// analysis declines rather than guesses.
var Errflow = &engine.Analyzer{
	Name: "errflow",
	Doc: "errors from module APIs must be consumed on every control-flow path: " +
		"no discarded results, blank assigns, or paths that drop an error before reading it",
	Run: func(pass *engine.Pass) (any, error) {
		for _, f := range pass.Files {
			if isTestFile(pass, f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkErrflowBody(pass, fd.Body, namedResults(fd.Type))
				// Function literals get their own pass each, so their
				// local error handling is judged on their own CFG.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkErrflowBody(pass, lit.Body, namedResults(lit.Type))
					}
					return true
				})
			}
		}
		return nil, nil
	},
}

// namedResults reports whether ft declares named results (a naked
// return then reads them all).
func namedResults(ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, f := range ft.Results.List {
		if len(f.Names) > 0 {
			return true
		}
	}
	return false
}

// moduleCallee resolves the static callee of call when it is a
// module-internal function or method (including interface methods on
// module types), returning it and a display name.
func moduleCallee(pass *engine.Pass, call *ast.CallExpr) (*types.Func, string) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil {
		return nil, ""
	}
	path := fn.Pkg().Path()
	unitPath := strings.TrimSuffix(pass.Unit.ImportPath, "_test")
	mod := pass.Unit.ModulePath
	if path != unitPath && path != mod && !strings.HasPrefix(path, mod+"/") {
		return nil, ""
	}
	return fn, fn.Name()
}

// errResultIndexes returns the positions of error-typed results in the
// callee's signature (nil when there are none).
func errResultIndexes(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if implementsError(res.At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

// checkErrflowBody analyzes one function or literal body. Nested
// literals are opaque here (they get their own invocation); the def/use
// layer marks variables they capture as escaped.
func checkErrflowBody(pass *engine.Pass, body *ast.BlockStmt, naked bool) {
	var cfg *engine.CFG // built lazily: most bodies track nothing

	type trackedDef struct {
		obj    types.Object
		pos    ast.Node
		callee string
	}
	var defs []trackedDef

	// topLevel walks body but not nested literals.
	var topLevel func(n ast.Node, visit func(ast.Node) bool)
	topLevel = func(n ast.Node, visit func(ast.Node) bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false
			}
			return visit(m)
		})
	}

	topLevel(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, name := moduleCallee(pass, call)
			if fn == nil {
				return true
			}
			if idx := errResultIndexes(fn); len(idx) > 0 {
				pass.Reportf(call.Pos(),
					"error result of %s discarded: consume it on every path or assign and check it", name)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, name := moduleCallee(pass, call)
			if fn == nil {
				return true
			}
			idx := errResultIndexes(fn)
			if len(idx) == 0 {
				return true
			}
			sig := fn.Type().(*types.Signature)
			for _, i := range idx {
				if sig.Results().Len() != len(n.Lhs) && sig.Results().Len() > 1 {
					continue // assigned as a tuple mismatch; let the compiler complain
				}
				pos := i
				if sig.Results().Len() == 1 {
					if len(n.Lhs) != 1 {
						continue
					}
					pos = 0
				}
				id, ok := n.Lhs[pos].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(id.Pos(),
						"error result of %s assigned to _: name it and consume it, or carry a //lint:allow errflow with the reason it is safe to drop", name)
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && !v.IsField() &&
					v.Pos() >= body.Pos() && v.Pos() < body.End() {
					defs = append(defs, trackedDef{obj: obj, pos: id, callee: name})
				}
			}
		case *ast.CallExpr:
			// Callback literals with error parameters handed to module
			// APIs: the done-func shape.
			fn, name := moduleCallee(pass, n)
			if fn == nil {
				return true
			}
			for _, arg := range n.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok || lit.Type.Params == nil {
					continue
				}
				checkCallbackErrParams(pass, lit, name, &cfg)
			}
		}
		return true
	})

	if len(defs) == 0 {
		return
	}
	if cfg == nil {
		cfg = engine.BuildCFG(body)
	}
	for _, d := range defs {
		fl := engine.FlowFor(cfg, pass.TypesInfo, d.obj)
		if naked {
			fl.MarkNakedReturnUse()
		}
		switch fl.DropPaths(d.pos.Pos()) {
		case engine.DropExit:
			pass.Reportf(d.pos.Pos(),
				"error from %s is dropped: a path reaches function exit without reading it", d.callee)
		case engine.DropOverwrite:
			pass.Reportf(d.pos.Pos(),
				"error from %s is overwritten before being read on some path", d.callee)
		}
	}
}

// checkCallbackErrParams flags error-typed parameters of a callback
// literal that some path ignores. cfgSlot is unused here (each literal
// builds its own CFG) but threaded so future layers can share.
func checkCallbackErrParams(pass *engine.Pass, lit *ast.FuncLit, callee string, _ **engine.CFG) {
	var litCFG *engine.CFG
	for _, field := range lit.Type.Params.List {
		ft := pass.TypesInfo.TypeOf(field.Type)
		if ft == nil || !implementsError(ft) {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(),
				"error parameter of callback passed to %s is unnamed and so silently ignored", callee)
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				pass.Reportf(id.Pos(),
					"error parameter of callback passed to %s is discarded with _", callee)
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue
			}
			if litCFG == nil {
				litCFG = engine.BuildCFG(lit.Body)
			}
			fl := engine.FlowFor(litCFG, pass.TypesInfo, obj)
			if namedResults(lit.Type) {
				fl.MarkNakedReturnUse()
			}
			switch fl.DropFromEntry() {
			case engine.DropExit:
				pass.Reportf(id.Pos(),
					"error parameter %s of callback passed to %s is ignored on a path to return", id.Name, callee)
			case engine.DropOverwrite:
				pass.Reportf(id.Pos(),
					"error parameter %s of callback passed to %s is overwritten before being read", id.Name, callee)
			}
		}
	}
}
