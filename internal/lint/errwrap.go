package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/engine"
)

var sentinelNameRE = regexp.MustCompile(`^Err[A-Z0-9_]`)

// Errwrap enforces the sentinel-error contract: sentinels such as
// ErrCorruptData, ErrServerDown, ErrTruncatedLog, and ErrCorruptExtent
// travel wrapped (fmt.Errorf with %w) and are tested with
// errors.Is/errors.As. Direct ==/!= against a sentinel silently breaks
// the moment any layer wraps the error — which the fault-injection and
// integrity paths all do — and string matching on Error() text breaks
// on any message edit. Flagged shapes:
//
//   - err == ErrX / err != ErrX, and switch err { case ErrX: }
//   - fmt.Errorf with a sentinel argument but no %w verb
//   - comparing .Error() output with == / != / strings.Contains etc.
var Errwrap = &engine.Analyzer{
	Name: "errwrap",
	Doc: "sentinel errors must be wrapped with %w and tested with errors.Is/As, " +
		"never compared with == or matched as strings",
	Run: func(pass *engine.Pass) (any, error) {
		info := pass.TypesInfo
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for _, side := range []ast.Expr{n.X, n.Y} {
						if name, ok := sentinelRef(info, side); ok {
							pass.Reportf(n.Pos(),
								"%s compared with %s: use errors.Is, the sentinel may be wrapped", name, n.Op)
						}
						if isErrorStringCall(info, side) {
							pass.Reportf(n.Pos(),
								"comparing Error() text: match errors with errors.Is/As, not strings")
						}
					}
				case *ast.SwitchStmt:
					if n.Tag == nil || !isErrorExpr(info, n.Tag) {
						return true
					}
					for _, stmt := range n.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, e := range cc.List {
							if name, ok := sentinelRef(info, e); ok {
								pass.Reportf(e.Pos(),
									"switch on error compares %s with ==: use errors.Is, the sentinel may be wrapped", name)
							}
						}
					}
				case *ast.CallExpr:
					if fn, ok := pkgFuncCall(info, n, "fmt"); ok && fn == "Errorf" && len(n.Args) >= 2 {
						format, ok := stringLit(n.Args[0])
						if !ok || strings.Contains(format, "%w") {
							return true
						}
						for _, arg := range n.Args[1:] {
							if name, ok := sentinelRef(info, arg); ok {
								pass.Reportf(arg.Pos(),
									"sentinel %s passed to fmt.Errorf without %%w: the chain becomes opaque to errors.Is", name)
							}
						}
					}
					if fn, ok := pkgFuncCall(info, n, "strings"); ok {
						switch fn {
						case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
							for _, arg := range n.Args {
								if isErrorStringCall(info, arg) {
									pass.Reportf(n.Pos(),
										"matching Error() text with strings.%s: use errors.Is/As instead", fn)
								}
							}
						}
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

// sentinelRef reports whether expr references a package-level error
// variable named Err* (a sentinel), returning its display name.
func sentinelRef(info *types.Info, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !sentinelNameRE.MatchString(v.Name()) || !implementsError(v.Type()) {
		return "", false
	}
	return types.ExprString(expr), true
}

// isErrorExpr reports whether expr has error type.
func isErrorExpr(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	return t != nil && implementsError(t)
}

// isErrorStringCall reports whether expr is a call of the form
// x.Error() on an error value.
func isErrorStringCall(info *types.Info, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorExpr(info, sel.X)
}
