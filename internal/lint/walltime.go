package lint

import (
	"go/ast"

	"repro/internal/lint/engine"
)

// wallFuncs are the package time functions that read or wait on the
// wall clock. Formatting, parsing, and constructing time.Time values
// from explicit components stay legal — only the ambient clock is
// banned, because any value derived from it varies across runs and
// breaks same-seed bit-identical output.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime forbids reading the wall clock anywhere in the module.
// Simulated components take time from the sim kernel; benchmark
// harnesses measure elapsed wall time through obs.Stopwatch, whose
// implementation file is the single sanctioned call site (marked with
// //lint:allow walltime).
var Walltime = &engine.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Sleep and friends: simulation code must use sim time; " +
		"harnesses must use obs.Stopwatch",
	Run: func(pass *engine.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := pkgFuncCall(pass.TypesInfo, call, "time"); ok && wallFuncs[name] {
					pass.Reportf(call.Pos(),
						"wall-clock call time.%s: derive time from the simulation kernel, or use obs.Stopwatch in harnesses", name)
				}
				return true
			})
		}
		return nil, nil
	},
}
