package lint

import (
	"go/ast"

	"repro/internal/lint/engine"
)

var randPkgs = []string{"math/rand", "math/rand/v2"}

// randConstructors are the math/rand functions that build an explicit
// stream (legal when seeded traceably) rather than draw from the
// package-global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Globalrand forbids the package-global math/rand source and
// untraceable seeds. Every random stream in this repository must be an
// explicit *rand.Rand derived from a seed value that flows in from a
// parameter or config field, so that a run is reproducible from its
// seed alone. Top-level rand.Intn etc. share one mutable global stream
// (cross-package interference reorders draws), and seeds computed from
// calls like time.Now().UnixNano() are not reproducible at all.
var Globalrand = &engine.Analyzer{
	Name: "globalrand",
	Doc: "forbid top-level math/rand functions and rand.New with an untraceable seed: " +
		"every stream must derive from a seed parameter",
	Run: func(pass *engine.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, pkg := range randPkgs {
					name, ok := pkgFuncCall(pass.TypesInfo, call, pkg)
					if !ok {
						continue
					}
					if !randConstructors[name] {
						pass.Reportf(call.Pos(),
							"rand.%s draws from the package-global source; use an explicit rand.New(rand.NewSource(seed)) stream", name)
						break
					}
					// Constructor: every call inside its arguments must
					// itself be a rand constructor or a type conversion;
					// anything else (time.Now().UnixNano(), os.Getpid(),
					// crypto/rand reads) makes the seed untraceable.
					for _, arg := range call.Args {
						checkSeedExpr(pass, arg)
					}
					// Don't descend: nested constructor args were just
					// checked, and descending would double-report them.
					return false
				}
				return true
			})
		}
		return nil, nil
	},
}

// checkSeedExpr walks a seed expression and reports any embedded call
// that is neither a type conversion nor a rand constructor.
func checkSeedExpr(pass *engine.Pass, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion like int64(i)
		}
		for _, pkg := range randPkgs {
			if name, ok := pkgFuncCall(pass.TypesInfo, call, pkg); ok && randConstructors[name] {
				return true // nested rand.NewSource(...)
			}
		}
		var buf []byte
		if fn, ok := call.Fun.(*ast.SelectorExpr); ok {
			buf = append(buf, fn.Sel.Name...)
		} else if id, ok := call.Fun.(*ast.Ident); ok {
			buf = append(buf, id.Name...)
		}
		pass.Reportf(call.Pos(),
			"seed derives from a call (%s): seeds must be traceable values flowing from a parameter or config field", string(buf))
		return false
	})
}
