// Package analysistest runs one analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// offline engine. A want comment holds one or more quoted regular
// expressions and binds to its own source line:
//
//	time.Sleep(d) // want `wall-clock call`
//
// Every diagnostic must match a want on its line and every want must be
// matched by at least one diagnostic; //lint:allow suppression is
// applied before matching, so fixtures can also prove the escape hatch
// works by pairing a violation with an allow directive and no want.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/engine"
)

// Run loads testdata/src/<pkg> for each named fixture package (relative
// to the calling test's working directory), applies the analyzer, and
// reports mismatches through t. Multiple packages load into one run so
// cross-package Finish diagnostics can be tested.
func Run(t *testing.T, a *engine.Analyzer, pkgs ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		loader.RegisterDir(pkg, filepath.Join(wd, "testdata", "src", filepath.FromSlash(pkg)))
	}
	var units []*engine.Unit
	for _, pkg := range pkgs {
		u, err := loader.LoadDir(pkg, filepath.Join(wd, "testdata", "src", filepath.FromSlash(pkg)))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		units = append(units, u)
	}
	findings, err := engine.Run(units, []*engine.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := map[string][]*want{}
	for _, u := range units {
		for _, f := range u.Files {
			name := loader.Fset.Position(f.Pos()).Filename
			ws, err := parseWants(name)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range ws {
				wants[k] = append(wants[k], v...)
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE matches the comment marker; quoted patterns follow it.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// tokenRE matches one Go string literal (interpreted or raw).
var tokenRE = regexp.MustCompile("^`[^`]*`|^\"(\\\\.|[^\"\\\\])*\"")

// parseWants scans one fixture file for want comments, keyed by
// "filename:line".
func parseWants(filename string) (map[string][]*want, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	out := map[string][]*want{}
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			tok := tokenRE.FindString(rest)
			if tok == "" {
				break
			}
			rest = strings.TrimSpace(rest[len(tok):])
			pat, err := strconv.Unquote(tok)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", filename, i+1, tok, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", filename, i+1, pat, err)
			}
			key := fmt.Sprintf("%s:%d", filename, i+1)
			out[key] = append(out[key], &want{re: re})
		}
	}
	return out, nil
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
