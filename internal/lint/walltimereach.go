package lint

import (
	"fmt"
	"go/ast"
	"strings"

	"repro/internal/lint/engine"
)

// Walltimereach upgrades the walltime ban from per-file syntax to
// call-graph reachability. The syntactic analyzer stops direct
// time.Now calls, but a helper that wraps the clock behind a local
// //lint:allow — or behind one level of indirection in another package —
// would hand wall time to every caller unseen. This analyzer computes
// the set of module functions that can transitively observe the wall
// clock and flags each of them, with the shortest call chain in the
// message. Propagation stops at the single sanctioned root: functions
// declared in a file carrying `//lint:allowfile walltime-reach`
// (obs.Stopwatch's file), whose callers are, by policy, allowed to
// measure elapsed real time. A second check pins that policy down:
// the sanctioned root itself may only be called from cmd/ harness
// packages, test files, or its own package — simulation packages that
// time themselves with the Stopwatch would smuggle wall time into sim
// state.
//
// Approximation: the call graph resolves direct calls, static method
// calls, function values, and locally bound literals; dynamic dispatch
// through interfaces is not followed. A wall clock hidden behind an
// interface still needs a concrete implementation somewhere, and that
// implementation is flagged.
var Walltimereach = &engine.Analyzer{
	Name: "walltime-reach",
	Doc: "flag functions that transitively reach the wall clock through helpers; " +
		"obs.Stopwatch (//lint:allowfile walltime-reach) is the single sanctioned root, callable only from harnesses",
	Run: func(pass *engine.Pass) (any, error) {
		return nil, nil // all work happens cross-package, in Finish
	},
	Finish: func(results []engine.UnitResult) []engine.Diagnostic {
		units := make([]*engine.Unit, len(results))
		for i, r := range results {
			units[i] = r.Unit
		}
		g := engine.BuildCallGraph(units)

		// Classify nodes: direct wall-clock callers and sanctioned
		// roots (declared in an allowfile walltime-reach file).
		direct := map[engine.FuncID]bool{}
		sanctioned := map[engine.FuncID]bool{}
		for _, id := range g.SortedIDs() {
			n := g.Nodes[id]
			if n.Unit.FileAllowed(n.Pos, "walltime-reach") {
				sanctioned[id] = true
			}
			if n.Body == nil {
				continue
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok && m != n.Decl {
					return false // literal bodies are their own nodes
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if name, ok := pkgFuncCall(n.Unit.Info, call, "time"); ok && wallFuncs[name] {
						direct[id] = true
					}
				}
				return true
			})
		}

		// Propagate wall taint up the reversed graph; sanctioned roots
		// absorb taint instead of passing it on.
		tainted := map[engine.FuncID]bool{}
		for id := range direct {
			tainted[id] = true
		}
		for changed := true; changed; {
			changed = false
			for _, id := range g.SortedIDs() {
				if tainted[id] {
					continue
				}
				for _, e := range g.Nodes[id].Out {
					if tainted[e.To] && !sanctioned[e.To] {
						tainted[id] = true
						changed = true
						break
					}
				}
			}
		}

		var diags []engine.Diagnostic
		for _, id := range g.SortedIDs() {
			n := g.Nodes[id]
			switch {
			case tainted[id] && !direct[id] && !sanctioned[id]:
				// Indirect reach: walltime already covers direct calls.
				path := g.PathTo(id, func(t engine.FuncID) bool {
					return direct[t] && !sanctioned[t]
				})
				diags = append(diags, engine.Diagnostic{
					Pos: n.Pos,
					Message: fmt.Sprintf(
						"transitively reaches the wall clock via %s: route timing through obs.Stopwatch in a harness, or take time from the sim kernel",
						chainString(id, path)),
				})
			case sanctioned[id]:
				// Enforce the harness-only scope of the sanctioned root.
				for _, caller := range g.SortedIDs() {
					cn := g.Nodes[caller]
					if sanctioned[caller] || harnessContext(cn) {
						continue
					}
					for _, e := range cn.Out {
						if e.To == id {
							diags = append(diags, engine.Diagnostic{
								Pos: e.Pos,
								Message: fmt.Sprintf(
									"harness stopwatch %s used outside a cmd/ harness or test: simulation code must take time from the sim kernel",
									shortID(id)),
							})
						}
					}
				}
			}
		}
		return diags
	},
}

// harnessContext reports whether a function may legitimately consume
// the sanctioned wall-clock root: cmd/ packages, test files, and the
// root's own package (internal/obs exercises its Stopwatch).
func harnessContext(n *engine.FuncNode) bool {
	if n.TestOnly {
		return true
	}
	path := strings.TrimSuffix(n.Unit.ImportPath, "_test")
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return strings.HasSuffix(path, "internal/obs")
}

// shortID trims the module path off a FuncID for messages.
func shortID(id engine.FuncID) string {
	s := string(id)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// chainString renders "a -> b -> c" for a path of edges out of from.
func chainString(from engine.FuncID, path []engine.Edge) string {
	parts := []string{shortID(from)}
	for _, e := range path {
		parts = append(parts, shortID(e.To))
	}
	return strings.Join(parts, " -> ")
}
