// Package lint hosts pdsilint's analyzers: custom static checks that
// enforce the determinism and invariant contracts every result in this
// repository depends on. Same seed must mean bit-identical output, so
// wall clocks, the global rand source, map iteration order leaking into
// observable state, ad-hoc metric names, and unwrappable sentinel-error
// comparisons are all compile-time errors here, not code-review nits.
//
// Each analyzer honors a //lint:allow <name> escape-hatch comment on
// the flagged line or the line above; the policy for using one is in
// DESIGN.md ("Determinism invariants and static enforcement").
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/engine"
)

// All returns every pdsilint analyzer in deterministic order.
func All() []*engine.Analyzer {
	return []*engine.Analyzer{
		Walltime,
		Globalrand,
		Maporder,
		Metricname,
		Errwrap,
		Goroutine,
		Shardown,
		Errflow,
		Walltimereach,
	}
}

// pkgFuncCall reports whether call invokes a package-level function of
// the package with import path pkgPath, returning its name. The check
// resolves the qualifier through go/types, so renamed imports and
// shadowed identifiers are handled correctly.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if _, ok := info.Uses[sel.Sel].(*types.Func); !ok {
		return "", false
	}
	return sel.Sel.Name, true
}

// namedRecv reports the named type (pointer-stripped) of a method
// call's receiver, or nil.
func namedRecv(info *types.Info, call *ast.CallExpr) *types.Named {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isObsType reports whether named is the given type from internal/obs.
func isObsType(named *types.Named, name string) bool {
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isTestFile reports whether the file containing pos is a _test.go file.
func isTestFile(pass *engine.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}
