package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/engine"
)

// Maporder flags `range` loops over maps whose bodies leak iteration
// order into observable state — the canonical silent-nondeterminism bug
// in this codebase. Two body shapes are order-sensitive:
//
//   - appending to a slice declared outside the loop, unless a
//     sort.*/slices.* call over that slice follows later in the same
//     block (the sorted-keys idiom stays legal);
//   - emitting as it goes: fmt printing, io.Writer writes, trace events
//     (obs.Tracer), last-value-wins gauges (obs.Gauge.Set), or
//     obs.Registry.GaugeFunc registration (later registrations replace
//     earlier ones, so registration order is observable);
//   - handing work off as it goes: a channel send delivers values to the
//     consumer in map-iteration order, and a `go` statement spawns
//     workers in map-iteration order — both surfaced by the sharded
//     engine's merge paths, where every cross-shard handoff must be
//     keyed and sorted instead.
//
// Commutative updates (counter adds, histogram observes, sums,
// map-to-map copies) are order-independent and deliberately not
// flagged.
var Maporder = &engine.Analyzer{
	Name: "maporder",
	Doc: "flag map-range loops that append to slices without a subsequent sort or that " +
		"emit output/trace/gauge state in iteration order",
	Run: func(pass *engine.Pass) (any, error) {
		for _, f := range pass.Files {
			engine.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, rng, stack)
				return true
			})
		}
		return nil, nil
	},
}

// appendTarget describes one `s = append(s, ...)` inside a map range.
type appendTarget struct {
	pos  ast.Node
	obj  types.Object // non-nil when the target is a plain identifier
	text string       // fallback textual form for selector targets
}

func checkMapRange(pass *engine.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	var appends []appendTarget
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"channel send inside a map range delivers values in map-iteration order; iterate sorted keys instead")
			return true
		case *ast.GoStmt:
			pass.Reportf(s.Pos(),
				"go statement inside a map range spawns goroutines in map-iteration order; iterate sorted keys instead")
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// Emission in iteration order.
		if name, ok := pkgFuncCall(pass.TypesInfo, call, "fmt"); ok {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				pass.Reportf(call.Pos(),
					"fmt.%s inside a map range emits output in map-iteration order; iterate sorted keys instead", name)
			}
			return true
		}
		if named := namedRecv(pass.TypesInfo, call); named != nil {
			sel := call.Fun.(*ast.SelectorExpr).Sel.Name
			switch {
			case isObsType(named, "Tracer"):
				pass.Reportf(call.Pos(),
					"obs.Tracer.%s inside a map range records trace events in map-iteration order; iterate sorted keys instead", sel)
				return true
			case isObsType(named, "Gauge") && sel == "Set":
				pass.Reportf(call.Pos(),
					"obs.Gauge.Set inside a map range is last-value-wins over map-iteration order; iterate sorted keys instead")
				return true
			case isObsType(named, "Registry") && sel == "GaugeFunc":
				pass.Reportf(call.Pos(),
					"obs.Registry.GaugeFunc inside a map range registers callbacks in map-iteration order; iterate sorted keys instead")
				return true
			case isWriterMethod(named, sel):
				pass.Reportf(call.Pos(),
					"%s.%s inside a map range writes in map-iteration order; iterate sorted keys instead", named.Obj().Name(), sel)
				return true
			}
		}

		// Append accumulation.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				// Per-key accumulation like out[k] = append(out[k], ...)
				// is commutative across iterations: each key owns its
				// slice, so iteration order cannot leak.
				if keyedByRangeVar(pass, rng, call.Args[0]) {
					return true
				}
				tgt := appendTarget{pos: call, text: types.ExprString(call.Args[0])}
				if tid, ok := call.Args[0].(*ast.Ident); ok {
					tgt.obj = pass.TypesInfo.ObjectOf(tid)
				}
				// A slice declared inside the loop body is rebuilt each
				// iteration; order can only leak through some other
				// flagged channel, so skip it here.
				if tgt.obj == nil || tgt.obj.Pos() < rng.Pos() || tgt.obj.Pos() > rng.End() {
					appends = append(appends, tgt)
				}
			}
		}
		return true
	})

	if len(appends) == 0 {
		return
	}
	for _, a := range appends {
		if !sortedAfter(pass, rng, stack, a) {
			pass.Reportf(a.pos.Pos(),
				"append to %s inside a map range leaks map-iteration order; sort it afterwards or iterate sorted keys", a.text)
		}
	}
}

// keyedByRangeVar reports whether the append target is an index into a
// map whose index expression mentions the loop's key or value variable
// — the per-key grouping idiom, which is order-independent.
func keyedByRangeVar(pass *engine.Pass, rng *ast.RangeStmt, target ast.Expr) bool {
	ix, ok := target.(*ast.IndexExpr)
	if !ok {
		return false
	}
	if t := pass.TypesInfo.TypeOf(ix.X); t == nil {
		return false
	} else if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	var loopVars []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				loopVars = append(loopVars, obj)
			}
		}
	}
	found := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			for _, lv := range loopVars {
				if pass.TypesInfo.ObjectOf(id) == lv {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether a sort.*/slices.* call whose arguments
// mention the append target appears after the range loop in the
// innermost enclosing block.
func sortedAfter(pass *engine.Pass, rng *ast.RangeStmt, stack []ast.Node, tgt appendTarget) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pkgFuncCall(pass.TypesInfo, call, "sort")
			if !ok {
				name, ok = pkgFuncCall(pass.TypesInfo, call, "slices")
			}
			if !ok || name == "" {
				return true
			}
			for _, arg := range call.Args {
				if mentionsTarget(pass, arg, tgt) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsTarget reports whether expr references the append target,
// by object identity for identifiers or textually for selectors.
func mentionsTarget(pass *engine.Pass, expr ast.Expr, tgt appendTarget) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && tgt.obj != nil && pass.TypesInfo.ObjectOf(id) == tgt.obj {
			found = true
			return false
		}
		if e, ok := n.(ast.Expr); ok && tgt.obj == nil && types.ExprString(e) == tgt.text {
			found = true
			return false
		}
		return true
	})
	return found
}

// ioWriter is interface{ Write([]byte) (int, error) }, built once so
// the analyzer needs no live reference to the io package.
var ioWriter = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", byteSlice)),
		types.NewTuple(types.NewVar(0, nil, "n", types.Typ[types.Int]), types.NewVar(0, nil, "err", errType)),
		false)
	fn := types.NewFunc(0, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

// isWriterMethod reports whether calling method name on named streams
// bytes to an io.Writer-shaped sink.
func isWriterMethod(named *types.Named, name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	t := types.Type(named)
	return types.Implements(t, ioWriter) || types.Implements(types.NewPointer(t), ioWriter)
}
