package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/engine"
)

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// RunPatterns loads and analyzes the packages named by go-style
// patterns relative to the module root ("./..." for the whole module,
// otherwise directory paths) and returns the sorted findings.
func RunPatterns(moduleRoot string, patterns []string) ([]engine.Finding, error) {
	units, err := LoadUnits(moduleRoot, patterns)
	if err != nil {
		return nil, err
	}
	return engine.Run(units, All())
}

// LoadUnits loads the units named by go-style patterns (see
// RunPatterns) without analyzing them. Drivers that run analyzers one
// at a time — cmd/pdsilint's per-analyzer timing — load once through
// here and invoke engine.Run per analyzer over the same units.
func LoadUnits(moduleRoot string, patterns []string) ([]*engine.Unit, error) {
	loader, err := engine.NewLoader(moduleRoot)
	if err != nil {
		return nil, err
	}
	var units []*engine.Unit
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			units = append(units, all...)
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(moduleRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, u := range all {
				if u.Dir == base || strings.HasPrefix(u.Dir, base+string(filepath.Separator)) {
					units = append(units, u)
				}
			}
		default:
			us, err := loader.LoadDirUnits(filepath.Join(moduleRoot, filepath.FromSlash(pat)))
			if err != nil {
				return nil, err
			}
			units = append(units, us...)
		}
	}
	return units, nil
}
