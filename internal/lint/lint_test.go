package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, lint.Walltime, "walltime")
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, lint.Globalrand, "globalrand")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, lint.Maporder, "maporder")
}

func TestMetricname(t *testing.T) {
	analysistest.Run(t, lint.Metricname, "metricname/a", "metricname/b")
}

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, lint.Errwrap, "errwrap")
}

func TestGoroutine(t *testing.T) {
	analysistest.Run(t, lint.Goroutine, "goroutine")
}

func TestShardown(t *testing.T) {
	analysistest.Run(t, lint.Shardown, "shardown")
}

func TestErrflow(t *testing.T) {
	analysistest.Run(t, lint.Errflow, "errflow")
}

func TestWalltimereach(t *testing.T) {
	analysistest.Run(t, lint.Walltimereach, "walltimereach/helpers", "walltimereach/app")
}

// TestAnalyzerMetadata pins the analyzer set: names are the //lint:allow
// vocabulary and must stay stable.
func TestAnalyzerMetadata(t *testing.T) {
	want := []string{
		"walltime", "globalrand", "maporder", "metricname", "errwrap",
		"goroutine", "shardown", "errflow", "walltime-reach",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}
