package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/engine"
)

// metricNameRE is the naming grammar: at least two dot-separated
// lowercase segments, "pkg.noun[.verb]" style, e.g. "plfs.index.merges"
// or "sim.events_scheduled".
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// traceCatRE is the grammar for trace-event categories: one lowercase
// segment.
var traceCatRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricUse is one literal metric-name registration site.
type metricUse struct {
	Name string
	Kind string // a registryKinds key, e.g. "Counter" or "Quantile"
	Pkg  string
	Pos  token.Pos
}

// registryKinds are the obs.Registry constructors whose first argument
// is a literal metric name subject to the grammar. OpTimerSet's base
// name expands into derived .latency_s/.stage.*/.bottleneck.* names at
// runtime; checking the literal base keeps the whole family legal.
var registryKinds = map[string]bool{
	"Counter": true, "Gauge": true, "GaugeFunc": true, "Histogram": true,
	"Quantile": true, "TimeSeries": true, "OpTimerSet": true,
}

var tracerNameMethods = map[string]bool{
	"Span": true, "Instant": true, "InstantArgs": true,
}

// Metricname enforces the metric/trace naming grammar at every literal
// name passed to the obs Registry and Tracer, and — across the whole
// repository, via the Finish hook — flags the same name registered by
// two different packages, the same name registered as two different
// instrument kinds (a Gauge and a GaugeFunc with one name silently
// shadow each other in snapshots), and near-miss typos (same-kind names
// at Levenshtein distance 1). Names built at runtime by concatenation
// are skipped; _test.go files are exempt because their names are
// fixtures, not emitted metrics.
var Metricname = &engine.Analyzer{
	Name: "metricname",
	Doc: "enforce the pkg.noun[.verb] metric naming grammar and flag cross-package " +
		"duplicates and near-miss typos in obs Registry/Tracer names",
	Run: func(pass *engine.Pass) (any, error) {
		var uses []metricUse
		for _, f := range pass.Files {
			if isTestFile(pass, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				named := namedRecv(pass.TypesInfo, call)
				if named == nil {
					return true
				}
				sel := call.Fun.(*ast.SelectorExpr).Sel.Name
				switch {
				case isObsType(named, "Registry") && registryKinds[sel]:
					name, ok := stringLit(call.Args[0])
					if !ok {
						return true
					}
					if !metricNameRE.MatchString(name) {
						pass.Reportf(call.Args[0].Pos(),
							"metric name %q does not match the pkg.noun[.verb] grammar (lowercase dot-separated segments, at least two)", name)
						return true
					}
					uses = append(uses, metricUse{Name: name, Kind: sel, Pkg: pass.Pkg.Path(), Pos: call.Args[0].Pos()})
				case isObsType(named, "Tracer") && tracerNameMethods[sel] && len(call.Args) >= 2:
					if cat, ok := stringLit(call.Args[0]); ok && !traceCatRE.MatchString(cat) {
						pass.Reportf(call.Args[0].Pos(),
							"trace category %q does not match the single lowercase segment grammar", cat)
					}
					if name, ok := stringLit(call.Args[1]); ok && strings.TrimSpace(name) != name {
						pass.Reportf(call.Args[1].Pos(),
							"trace event name %q has leading or trailing whitespace", name)
					}
				}
				return true
			})
		}
		return uses, nil
	},
	Finish: func(results []engine.UnitResult) []engine.Diagnostic {
		var all []metricUse
		for _, r := range results {
			if uses, ok := r.Result.([]metricUse); ok {
				all = append(all, uses...)
			}
		}
		// Deterministic processing order regardless of load order.
		sort.Slice(all, func(i, j int) bool {
			if all[i].Name != all[j].Name {
				return all[i].Name < all[j].Name
			}
			if all[i].Pkg != all[j].Pkg {
				return all[i].Pkg < all[j].Pkg
			}
			return all[i].Pos < all[j].Pos
		})
		var diags []engine.Diagnostic
		for i, u := range all {
			for j := 0; j < i; j++ {
				prev := all[j]
				switch {
				case prev.Name == u.Name && prev.Kind != u.Kind:
					diags = append(diags, engine.Diagnostic{Pos: u.Pos, Message: fmt.Sprintf(
						"metric %q registered as both %s (%s) and %s (%s); one name must map to one instrument kind",
						u.Name, prev.Kind, prev.Pkg, u.Kind, u.Pkg)})
				case prev.Name == u.Name && prev.Pkg != u.Pkg:
					diags = append(diags, engine.Diagnostic{Pos: u.Pos, Message: fmt.Sprintf(
						"metric %q is already registered by package %s; each package must own its metric namespace",
						u.Name, prev.Pkg)})
				case prev.Name != u.Name && prev.Kind == u.Kind && levenshtein(prev.Name, u.Name) == 1:
					diags = append(diags, engine.Diagnostic{Pos: u.Pos, Message: fmt.Sprintf(
						"metric name %q is one edit away from %s %q (%s): likely typo",
						u.Name, strings.ToLower(prev.Kind), prev.Name, prev.Pkg)})
				}
			}
		}
		return diags
	},
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// levenshtein is the classic edit distance, small inputs only.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
