package engine

import "go/ast"

// WalkStack traverses root in depth-first order, calling fn for every
// node with the stack of its ancestors (stack[0] is root, stack ends
// with n's parent). Returning false prunes the subtree below n.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
