package engine

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the small reaching-definitions / value-use layer on top
// of BuildCFG: given one local variable (a types.Object) and its
// function's CFG, DropPaths answers "is there a control-flow path from
// this definition of the variable to a redefinition or to function exit
// on which the value is never read?" — the shape of a dropped error.

// EventKind classifies one occurrence of the tracked object.
type EventKind int

const (
	EvUse EventKind = iota // the value is read
	EvDef                  // the variable is (re)assigned, killing the value
)

// ObjEvent is one ordered occurrence of the tracked object in a block.
type ObjEvent struct {
	Kind EventKind
	Pos  token.Pos
	Node ast.Node
}

// DropKind says how a definition's value was lost.
type DropKind int

const (
	DropNone      DropKind = iota
	DropExit               // a path reaches function exit without a use
	DropOverwrite          // a path reaches a redefinition without a use
	DropEscaped            // the variable escapes (closure, &x): analysis declined
)

// ObjFlow holds the per-block event streams for one object in one CFG.
type ObjFlow struct {
	cfg *CFG
	// events[block.Index] is the ordered event stream of that block.
	events  [][]ObjEvent
	Escaped bool // captured by a closure, address taken, or deferred use
}

// FlowFor computes the event streams of obj over cfg. Closures are not
// descended into: a reference to obj from within a FuncLit, a unary &obj,
// or any occurrence inside a defer statement marks the flow Escaped, and
// DropPaths then reports nothing — the value may be read at any time, so
// path analysis would lie.
func FlowFor(cfg *CFG, info *types.Info, obj types.Object) *ObjFlow {
	fl := &ObjFlow{cfg: cfg, events: make([][]ObjEvent, len(cfg.Blocks))}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			fl.scan(n, info, obj, blk)
		}
	}
	return fl
}

// scan appends obj's events in n, in source order, to blk's stream.
func (fl *ObjFlow) scan(n ast.Node, info *types.Info, obj types.Object, blk *Block) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// RHS reads happen before LHS writes.
		for _, rhs := range n.Rhs {
			fl.scanExpr(rhs, info, obj, blk)
		}
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				var o types.Object
				if n.Tok == token.DEFINE {
					o = info.Defs[id]
					if o == nil {
						o = info.Uses[id] // re-used var in a := with one new var
					}
				} else {
					o = info.Uses[id]
				}
				if o == obj {
					kind := EvDef
					if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
						kind = EvUse // compound ops (+=) read then write
					}
					fl.emit(blk, ObjEvent{Kind: kind, Pos: id.Pos(), Node: n})
					if kind == EvUse {
						fl.emit(blk, ObjEvent{Kind: EvDef, Pos: id.Pos(), Node: n})
					}
					continue
				}
			}
			// Non-identifier LHS (field, index, deref): reads obj if it
			// appears inside the expression.
			fl.scanExpr(lhs, info, obj, blk)
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok && info.Uses[id] == obj {
			fl.emit(blk, ObjEvent{Kind: EvUse, Pos: id.Pos(), Node: n})
			fl.emit(blk, ObjEvent{Kind: EvDef, Pos: id.Pos(), Node: n})
			return
		}
		fl.scanExpr(n.X, info, obj, blk)
	case *ast.RangeStmt:
		// Only the per-iteration key/value assignment is recorded on the
		// header block (the range expression is a separate node).
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if info.Defs[id] == obj || info.Uses[id] == obj {
					fl.emit(blk, ObjEvent{Kind: EvDef, Pos: id.Pos(), Node: n})
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				fl.scanExpr(v, info, obj, blk)
			}
			for _, id := range vs.Names {
				if info.Defs[id] == obj && len(vs.Values) > 0 {
					fl.emit(blk, ObjEvent{Kind: EvDef, Pos: id.Pos(), Node: n})
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred call runs at exit; if it mentions obj at all the
		// value stays live on every path. Treat as escape.
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			fl.Escaped = true
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			fl.scanExpr(r, info, obj, blk)
		}
		// A naked return in a function with named results reads them
		// all; the caller layers that in via MarkNakedReturnUse.
	default:
		if e, ok := n.(ast.Expr); ok {
			fl.scanExpr(e, info, obj, blk)
			return
		}
		if s, ok := n.(ast.Stmt); ok {
			ast.Inspect(s, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					fl.noteEscapes(m, info, obj)
					return false
				case *ast.UnaryExpr:
					if m.Op == token.AND {
						fl.noteEscapes(m, info, obj)
					}
				case *ast.Ident:
					if info.Uses[m] == obj {
						fl.emit(blk, ObjEvent{Kind: EvUse, Pos: m.Pos(), Node: m})
					}
				}
				return true
			})
		}
	}
}

// scanExpr records reads of obj inside e; a FuncLit capture or address
// taken marks the flow escaped.
func (fl *ObjFlow) scanExpr(e ast.Expr, info *types.Info, obj types.Object, blk *Block) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			fl.noteEscapes(m, info, obj)
			return false
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				fl.noteEscapes(m, info, obj)
			}
		case *ast.Ident:
			if info.Uses[m] == obj {
				fl.emit(blk, ObjEvent{Kind: EvUse, Pos: m.Pos(), Node: m})
			}
		}
		return true
	})
}

// noteEscapes marks the flow escaped if obj occurs anywhere under n.
func (fl *ObjFlow) noteEscapes(n ast.Node, info *types.Info, obj types.Object) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			fl.Escaped = true
		}
		return !fl.Escaped
	})
}

func (fl *ObjFlow) emit(blk *Block, ev ObjEvent) {
	fl.events[blk.Index] = append(fl.events[blk.Index], ev)
}

// MarkNakedReturnUse appends a use event after every naked return in a
// function whose results are named (a naked return reads all of them).
func (fl *ObjFlow) MarkNakedReturnUse() {
	for _, blk := range fl.cfg.Blocks {
		for _, n := range blk.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 0 {
				fl.emit(blk, ObjEvent{Kind: EvUse, Pos: r.Pos(), Node: r})
			}
		}
	}
}

// DropFromEntry reports how a value live at function entry (a
// parameter) can be lost: a path from entry to exit or to a
// redefinition with no intervening read. Used for error-typed callback
// parameters, which the callee is handed exactly once.
func (fl *ObjFlow) DropFromEntry() DropKind {
	if fl.Escaped {
		return DropEscaped
	}
	seen := make(map[*Block]bool, len(fl.cfg.Blocks))
	var walk func(blk *Block) DropKind
	walk = func(blk *Block) DropKind {
		if seen[blk] {
			return DropNone
		}
		seen[blk] = true
		if blk == fl.cfg.Exit {
			return DropExit
		}
		if evs := fl.events[blk.Index]; len(evs) > 0 {
			if evs[0].Kind == EvUse {
				return DropNone
			}
			return DropOverwrite
		}
		if len(blk.Succs) == 0 {
			return DropExit
		}
		for _, s := range blk.Succs {
			if k := walk(s); k != DropNone {
				return k
			}
		}
		return DropNone
	}
	return walk(fl.cfg.Blocks[0])
}

// DropPaths reports how the value written by the definition at defPos
// can be lost: by reaching function exit or a redefinition with no
// intervening read. defPos must be the Pos of a Def event previously
// collected (emit order ties it to its block and index). Returns
// DropNone when every path reads the value first, DropEscaped when the
// variable escapes and the analysis declines to answer.
func (fl *ObjFlow) DropPaths(defPos token.Pos) DropKind {
	if fl.Escaped {
		return DropEscaped
	}
	// Locate the def event.
	var defBlk *Block
	defIdx := -1
	for _, blk := range fl.cfg.Blocks {
		for i, ev := range fl.events[blk.Index] {
			if ev.Kind == EvDef && ev.Pos == defPos {
				defBlk, defIdx = blk, i
				break
			}
		}
		if defBlk != nil {
			break
		}
	}
	if defBlk == nil {
		return DropNone
	}
	// Within the defining block, the next event decides.
	for _, ev := range fl.events[defBlk.Index][defIdx+1:] {
		if ev.Kind == EvUse {
			return DropNone
		}
		return DropOverwrite
	}
	// Walk successors: the first event in each reached block decides for
	// that path; blocks with no event propagate the question.
	seen := make(map[*Block]bool, len(fl.cfg.Blocks))
	var walk func(blk *Block) DropKind
	walk = func(blk *Block) DropKind {
		if seen[blk] {
			return DropNone
		}
		seen[blk] = true
		if blk == fl.cfg.Exit {
			return DropExit
		}
		if evs := fl.events[blk.Index]; len(evs) > 0 {
			if evs[0].Kind == EvUse {
				return DropNone
			}
			return DropOverwrite
		}
		if len(blk.Succs) == 0 {
			return DropExit
		}
		for _, s := range blk.Succs {
			if k := walk(s); k != DropNone {
				return k
			}
		}
		return DropNone
	}
	for _, s := range defBlk.Succs {
		if k := walk(s); k != DropNone {
			return k
		}
	}
	return DropNone
}
