package engine

import (
	"go/ast"
	"go/token"
)

// CFG is a per-function control-flow graph over statements, in the
// style of golang.org/x/tools/go/cfg (unavailable offline). Each Block
// holds the statements and control expressions that execute
// unconditionally once the block is entered, in source order; Succs are
// the possible continuations. Calls do not end blocks — the graph
// models branching, not exceptions — but panic(...) statements and
// calls that the builder can prove never return are treated as jumps to
// Exit so error-path analyses do not follow impossible fallthroughs.
//
// Defer bodies are not spliced into the graph: deferred statements are
// collected in Defers, and analyses that care (the errflow drop check)
// treat values referenced by a deferred call as live at every exit.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry block
	Exit   *Block   // the single synthetic exit block
	Defers []*ast.DeferStmt
}

// Block is one basic block.
type Block struct {
	Index int
	Nodes []ast.Node // stmts and control exprs in execution order
	Succs []*Block
}

// Entry returns the function entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// BuildCFG constructs the control-flow graph of one function body.
// body may be nil (declarations without bodies yield an empty graph).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelInfo{},
	}
	b.cfg.Exit = b.newBlock() // allocated first so Exit has a stable home
	entry := b.newBlock()
	// Entry must be Blocks[0] by contract; swap the two.
	b.cfg.Blocks[0], b.cfg.Blocks[1] = b.cfg.Blocks[1], b.cfg.Blocks[0]
	b.cfg.Blocks[0].Index, b.cfg.Blocks[1].Index = 0, 1
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.link(b.cur, b.cfg.Exit)
	// Resolve forward gotos to labels defined later.
	for _, li := range b.labels {
		for _, from := range li.pendingGoto {
			if li.block == nil {
				// Undefined label: the package type-checked, so this
				// cannot happen; fall through to exit defensively.
				b.link(from, b.cfg.Exit)
				continue
			}
			b.link(from, li.block)
		}
	}
	return b.cfg
}

type labelInfo struct {
	block       *Block // block the label starts
	breakTo     *Block // where a labeled break jumps
	continueTo  *Block // where a labeled continue jumps
	pendingGoto []*Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	breaks []*Block // innermost-last break targets (loops, switch, select)
	conts  []*Block // innermost-last continue targets (loops only)
	labels map[string]*labelInfo

	// label pending attachment to the next loop/switch statement.
	curLabel *labelInfo
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock links cur to a fresh block and makes it current.
func (b *cfgBuilder) startBlock() *Block {
	nb := b.newBlock()
	b.link(b.cur, nb)
	b.cur = nb
	return nb
}

// deadBlock makes a fresh, unreached block current (after return/goto).
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// isPanic reports whether s is a panic(...) call statement.
func isPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.cfg.Exit)
		b.deadBlock()

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		after := b.newBlock()

		thenEntry := b.newBlock()
		b.link(condBlock, thenEntry)
		b.cur = thenEntry
		b.stmt(s.Body)
		b.link(b.cur, after)

		if s.Else != nil {
			elseEntry := b.newBlock()
			b.link(condBlock, elseEntry)
			b.cur = elseEntry
			b.stmt(s.Else)
			b.link(b.cur, after)
		} else {
			b.link(condBlock, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.link(header, after)
		}
		if b.curLabel != nil {
			b.curLabel.block = header
			b.curLabel.breakTo = after
			b.curLabel.continueTo = post
			b.curLabel = nil
		}
		body := b.newBlock()
		b.link(header, body)
		b.cur = body
		b.pushLoop(after, post)
		b.stmt(s.Body)
		b.popLoop()
		b.link(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.link(b.cur, header)
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		header := b.startBlock()
		// The per-iteration key/value assignment happens at the top of
		// each iteration; record it as a node so def/use sees it.
		if s.Key != nil || s.Value != nil {
			header.Nodes = append(header.Nodes, s)
		}
		after := b.newBlock()
		b.link(header, after) // zero iterations
		if b.curLabel != nil {
			b.curLabel.block = header
			b.curLabel.breakTo = after
			b.curLabel.continueTo = header
			b.curLabel = nil
		}
		body := b.newBlock()
		b.link(header, body)
		b.cur = body
		b.pushLoop(after, header)
		b.stmt(s.Body)
		b.popLoop()
		b.link(b.cur, header)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, false)

	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, true)

	case *ast.LabeledStmt:
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// The loop/switch builder fills in break/continue targets.
			b.curLabel = li
			b.stmt(s.Stmt)
			if li.block == nil {
				// switch/select: label only serves break; the statement
				// handler left curLabel set if it did not consume it.
				b.curLabel = nil
			}
		default:
			lb := b.startBlock()
			li.block = lb
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
					b.link(b.cur, li.breakTo)
				}
			} else if n := len(b.breaks); n > 0 {
				b.link(b.cur, b.breaks[n-1])
			}
			b.deadBlock()
		case token.CONTINUE:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
					b.link(b.cur, li.continueTo)
				}
			} else if n := len(b.conts); n > 0 {
				b.link(b.cur, b.conts[n-1])
			}
			b.deadBlock()
		case token.GOTO:
			li := b.labels[s.Label.Name]
			if li == nil {
				li = &labelInfo{}
				b.labels[s.Label.Name] = li
			}
			if li.block != nil {
				b.link(b.cur, li.block)
			} else {
				li.pendingGoto = append(li.pendingGoto, b.cur)
			}
			b.deadBlock()
		case token.FALLTHROUGH:
			// Handled positionally by caseClauses; nothing to do here.
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s) {
			b.link(b.cur, b.cfg.Exit)
			b.deadBlock()
		}

	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		b.add(s)
	}
}

// caseClauses builds the n-way branch of a switch/type-switch (isSelect
// false) or select (true). Each clause body starts a fresh block hung
// off the current (header) block; fallthrough chains a clause into the
// next one.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, isSelect bool) {
	header := b.cur
	after := b.newBlock()
	if b.curLabel != nil {
		b.curLabel.breakTo = after
		b.curLabel = nil
	}
	b.breaks = append(b.breaks, after)

	hasDefault := false
	bodies := make([]*Block, len(clauses))
	ends := make([]*Block, len(clauses))
	falls := make([]bool, len(clauses))
	for i, cl := range clauses {
		entry := b.newBlock()
		b.link(header, entry)
		b.cur = entry
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.add(e)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				b.add(cl.Comm)
			}
			body = cl.Body
		}
		bodies[i] = b.cur
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls[i] = true
			}
		}
		b.stmtList(body)
		ends[i] = b.cur
		b.link(b.cur, after)
	}
	for i := range clauses {
		if falls[i] && i+1 < len(clauses) {
			b.link(ends[i], bodies[i+1])
		}
	}
	if !hasDefault && !isSelect {
		b.link(header, after)
	}
	if !hasDefault && isSelect {
		// A select without default blocks until some case is ready; all
		// paths go through a clause, so no header->after edge. (With no
		// clauses at all it blocks forever; keep the edge to stay sound.)
		if len(clauses) == 0 {
			b.link(header, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.conts = append(b.conts, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}
