package engine_test

import (
	"strings"
	"testing"

	"repro/internal/lint/engine"
)

func buildGraph(t *testing.T, files map[string]string) *engine.CallGraph {
	t.Helper()
	root := writeModule(t, files)
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return engine.BuildCallGraph(units)
}

func TestCallGraphDirectAndMethodEdges(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": `package a

type T struct{}

func (t *T) M() { helper() }

func helper() {}

func Top() {
	var t T
	t.M()
}
`,
	})
	top := g.Nodes["example.test/a.Top"]
	if top == nil {
		t.Fatal("Top not in graph")
	}
	reach := g.Reachable([]engine.FuncID{"example.test/a.Top"})
	for _, want := range []engine.FuncID{
		"example.test/a.(T).M",
		"example.test/a.helper",
	} {
		if !reach[want] {
			t.Errorf("Top does not reach %s; reachable set: %v", want, reach)
		}
	}
}

func TestCallGraphFuncLitAndLocalVarResolution(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": `package a

func target() {}

func Top() {
	var recurse func(int)
	recurse = func(i int) {
		if i > 0 {
			recurse(i - 1)
		}
		target()
	}
	recurse(3)
}
`,
	})
	reach := g.Reachable([]engine.FuncID{"example.test/a.Top"})
	if !reach["example.test/a.target"] {
		t.Errorf("call through a local func variable not resolved; reachable: %v", reach)
	}
	// The literal must have its own node under the parent's id.
	foundLit := false
	for _, id := range g.SortedIDs() {
		if strings.HasPrefix(string(id), "example.test/a.Top$") {
			foundLit = true
		}
	}
	if !foundLit {
		t.Error("function literal did not get its own node")
	}
}

func TestCallGraphRefEdgeForFunctionValue(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": `package a

func callback() {}

func register(fn func()) { fn() }

func Top() { register(callback) }
`,
	})
	// Passing callback as a value must produce a (ref) edge so
	// reachability stays conservative.
	reach := g.Reachable([]engine.FuncID{"example.test/a.Top"})
	if !reach["example.test/a.callback"] {
		t.Errorf("function value reference not tracked; reachable: %v", reach)
	}
}

func TestCallGraphCrossPackageCanonicalIDs(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"lib/lib.go": `package lib

func Leaf() {}
`,
		"lib/lib_test.go": `package lib

import "testing"

func TestLeaf(t *testing.T) { Leaf() }
`,
		"app/app.go": `package app

import "example.test/lib"

func Use() { lib.Leaf() }
`,
	})
	// app's view of lib.Leaf comes from a different type-checker
	// instance than lib's own merged-with-tests unit; the canonical id
	// must unify them so the edge lands on the declared node.
	n := g.Nodes["example.test/lib.Leaf"]
	if n == nil {
		t.Fatal("lib.Leaf has no node")
	}
	if n.Body == nil {
		t.Fatal("lib.Leaf node lost its declaration body")
	}
	reach := g.Reachable([]engine.FuncID{"example.test/app.Use"})
	if !reach["example.test/lib.Leaf"] {
		t.Errorf("cross-package call did not unify ids; reachable: %v", reach)
	}
	if tn := g.Nodes["example.test/lib.TestLeaf"]; tn == nil || !tn.TestOnly {
		t.Error("test function missing or not marked TestOnly")
	}
}

func TestCallGraphPathTo(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": `package a

func c() {}
func b() { c() }
func A() { b() }
`,
	})
	path := g.PathTo("example.test/a.A", func(id engine.FuncID) bool {
		return id == "example.test/a.c"
	})
	if len(path) != 2 {
		t.Fatalf("path length %d, want 2 (A->b->c): %v", len(path), path)
	}
	if path[0].To != "example.test/a.b" || path[1].To != "example.test/a.c" {
		t.Fatalf("unexpected path %v", path)
	}
}
