package engine

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds a module-wide static call graph over the units a
// Loader produced. Because each unit is type-checked independently (the
// merged-with-tests unit and the import-time instance of the same
// package hold distinct types.Func objects), nodes are keyed by a
// canonical string FuncID derived from package path, receiver, and
// name, which is stable across type-checker instances.
//
// The graph is deliberately simple: direct calls and static method
// calls produce Call edges; mentioning a function without calling it
// (passing it as a value, assigning it to a variable) produces a Ref
// edge, so reachability analyses stay conservative. Function literals
// get their own synthetic nodes (parentID$n, in source order) with a
// Ref edge from the enclosing function; literals bound to a local
// variable are resolved at call sites through that variable. Dynamic
// dispatch through interfaces and arbitrary function-typed values is
// not modeled — edges end at the interface method or nowhere — which
// analyzers must state in their Doc.

// FuncID is the canonical, cross-unit identity of a function:
// "pkg/path.Name", "pkg/path.(Recv).Name" for methods, and
// "parent$n" for the n-th function literal inside parent.
type FuncID string

// IDOf returns the canonical id of a named function or method.
func IDOf(fn *types.Func) FuncID {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := "?"
		switch t := t.(type) {
		case *types.Named:
			name = t.Obj().Name()
		case *types.Alias:
			name = t.Obj().Name()
		case *types.Interface:
			name = "interface"
		}
		return FuncID(fmt.Sprintf("%s.(%s).%s", pkg, name, fn.Name()))
	}
	return FuncID(pkg + "." + fn.Name())
}

// EdgeKind distinguishes a call from a bare reference.
type EdgeKind int

const (
	EdgeCall EdgeKind = iota
	EdgeRef
)

// Edge is one caller->callee relation at one source position.
type Edge struct {
	From FuncID
	To   FuncID
	Kind EdgeKind
	Pos  token.Pos
}

// FuncNode is one function (declared or literal) in the graph.
type FuncNode struct {
	ID   FuncID
	Unit *Unit
	Pos  token.Pos      // declaration (or literal) position
	Decl ast.Node       // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt // nil for declarations without bodies
	Out  []Edge         // sorted by (To, Pos) for determinism
	// TestOnly marks functions declared in _test.go files.
	TestOnly bool
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	Nodes map[FuncID]*FuncNode
	ids   []FuncID // sorted, for deterministic iteration
}

// SortedIDs returns every node id in sorted order.
func (g *CallGraph) SortedIDs() []FuncID { return g.ids }

// BuildCallGraph assembles the graph over units. Each unit contributes
// the functions it declares; bodies are walked once. When two units
// declare the same FuncID (a package and its merged-test twin never do,
// but a fixture could), the first unit in order wins.
func BuildCallGraph(units []*Unit) *CallGraph {
	g := &CallGraph{Nodes: map[FuncID]*FuncNode{}}
	for _, u := range units {
		for _, n := range unitFuncs(u) {
			if _, dup := g.Nodes[n.ID]; !dup {
				g.Nodes[n.ID] = n
			}
		}
	}
	g.ids = make([]FuncID, 0, len(g.Nodes))
	for id := range g.Nodes {
		g.ids = append(g.ids, id)
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	return g
}

// UnitFunctions returns the function nodes (declarations and literals)
// one unit contributes to the call graph, building and caching them on
// first use.
func UnitFunctions(u *Unit) []*FuncNode { return unitFuncs(u) }

// unitFuncs computes (and caches on the unit) the function nodes and
// edges a unit contributes.
func unitFuncs(u *Unit) []*FuncNode {
	if u.litIDs != nil {
		return u.funcs
	}
	u.litIDs = map[*ast.FuncLit]FuncID{}
	u.varFuncs = map[types.Object][]FuncID{}
	var out []*FuncNode
	for _, f := range u.Files {
		testFile := strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := u.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			node := &FuncNode{
				ID:       IDOf(obj),
				Unit:     u,
				Pos:      fd.Name.Pos(),
				Decl:     fd,
				Body:     fd.Body,
				TestOnly: testFile,
			}
			out = append(out, node)
			if fd.Body != nil {
				out = append(out, collectEdges(u, node, fd.Body, testFile)...)
			}
		}
	}
	for _, n := range out {
		sort.Slice(n.Out, func(i, j int) bool {
			if n.Out[i].To != n.Out[j].To {
				return n.Out[i].To < n.Out[j].To
			}
			return n.Out[i].Pos < n.Out[j].Pos
		})
	}
	u.funcs = out
	return out
}

// collectEdges walks one function body, creating nodes for its function
// literals and Call/Ref edges for everything it invokes or mentions.
// Returned nodes are the literal nodes created beneath parent.
func collectEdges(u *Unit, parent *FuncNode, body *ast.BlockStmt, testFile bool) []*FuncNode {
	var lits []*FuncNode

	// funcVars maps a local variable object to the ids of the function
	// literals (or named functions) assigned to it anywhere in this
	// body, so `var f func(); f = func(){...}; f()` resolves. It is
	// shared into the unit-level index for analyzers (FuncsBoundTo).
	funcVars := u.varFuncs

	// First pass: allocate literal nodes in source order and record
	// local function-variable bindings.
	litOf := map[*ast.FuncLit]*FuncNode{}
	nLit := 0
	var alloc func(n ast.Node, owner *FuncNode)
	alloc = func(n ast.Node, owner *FuncNode) {
		ast.Inspect(n, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			nLit++
			ln := &FuncNode{
				ID:       FuncID(fmt.Sprintf("%s$%d", parent.ID, nLit)),
				Unit:     u,
				Pos:      lit.Pos(),
				Decl:     lit,
				Body:     lit.Body,
				TestOnly: testFile,
			}
			litOf[lit] = ln
			u.litIDs[lit] = ln.ID
			lits = append(lits, ln)
			// creation edge: the enclosing function references the literal.
			owner.Out = append(owner.Out, Edge{From: owner.ID, To: ln.ID, Kind: EdgeRef, Pos: lit.Pos()})
			alloc(lit.Body, ln)
			return false
		})
	}
	alloc(body, parent)

	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := u.Info.Defs[id]
		if obj == nil {
			obj = u.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		switch r := rhs.(type) {
		case *ast.FuncLit:
			if ln := litOf[r]; ln != nil {
				funcVars[obj] = append(funcVars[obj], ln.ID)
			}
		case *ast.Ident:
			if fo, ok := u.Info.Uses[r].(*types.Func); ok {
				funcVars[obj] = append(funcVars[obj], IDOf(fo))
			}
		}
	}
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Lhs {
					bind(m.Lhs[i], m.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			if gd, ok := m.Decl.(*ast.GenDecl); ok {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
						for i := range vs.Names {
							bind(vs.Names[i], vs.Values[i])
						}
					}
				}
			}
		}
		return true
	})

	// Second pass: edges, attributed to the innermost enclosing node.
	var walk func(n ast.Node, owner *FuncNode)
	walk = func(n ast.Node, owner *FuncNode) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, litOf[m])
				return false
			case *ast.CallExpr:
				for _, to := range CalleeIDs(u.Info, m, funcVars, litOf) {
					owner.Out = append(owner.Out, Edge{From: owner.ID, To: to, Kind: EdgeCall, Pos: m.Lparen})
				}
				// Arguments containing bare function references become
				// Ref edges via the Ident case below.
				return true
			case *ast.Ident:
				if fo, ok := u.Info.Uses[m].(*types.Func); ok {
					owner.Out = append(owner.Out, Edge{From: owner.ID, To: IDOf(fo), Kind: EdgeRef, Pos: m.Pos()})
				}
			}
			return true
		})
	}
	walk(body, parent)
	return lits
}

// CalleeIDs resolves the static callees of one call expression:
// a named function or method, a local variable bound to function
// literals, or a directly invoked literal. funcVars and litOf may be
// nil. Unresolvable calls yield nil.
func CalleeIDs(info *types.Info, call *ast.CallExpr, funcVars map[types.Object][]FuncID, litOf map[*ast.FuncLit]*FuncNode) []FuncID {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fo, ok := info.Uses[fun].(*types.Func); ok {
			return []FuncID{IDOf(fo)}
		}
		if funcVars != nil {
			if obj := info.Uses[fun]; obj != nil {
				return append([]FuncID(nil), funcVars[obj]...)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fo, ok := sel.Obj().(*types.Func); ok {
				return []FuncID{IDOf(fo)}
			}
			return nil
		}
		if fo, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []FuncID{IDOf(fo)}
		}
	case *ast.FuncLit:
		if litOf != nil {
			if ln := litOf[fun]; ln != nil {
				return []FuncID{ln.ID}
			}
		}
	}
	return nil
}

// Reachable returns the set of node ids reachable from the given roots
// by following edges of any kind, roots included. Traversal order is
// deterministic (edges are sorted); ids outside the graph are carried
// into the result but not expanded.
func (g *CallGraph) Reachable(roots []FuncID) map[FuncID]bool {
	seen := map[FuncID]bool{}
	stack := append([]FuncID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		n := g.Nodes[id]
		if n == nil {
			continue
		}
		for i := len(n.Out) - 1; i >= 0; i-- {
			if !seen[n.Out[i].To] {
				stack = append(stack, n.Out[i].To)
			}
		}
	}
	return seen
}

// PathTo returns one shortest edge path from `from` to any id for which
// goal returns true, or nil. Deterministic: BFS expands edges in their
// sorted order.
func (g *CallGraph) PathTo(from FuncID, goal func(FuncID) bool) []Edge {
	type qe struct {
		id   FuncID
		path []Edge
	}
	seen := map[FuncID]bool{from: true}
	queue := []qe{{id: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if goal(cur.id) {
			return cur.path
		}
		n := g.Nodes[cur.id]
		if n == nil {
			continue
		}
		for _, e := range n.Out {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			p := append(append([]Edge(nil), cur.path...), e)
			queue = append(queue, qe{id: e.To, path: p})
		}
	}
	return nil
}
