package engine_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/engine"
)

// writeModule lays out a throwaway module for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// callCounter flags every function call; tests use it to observe
// suppression and ordering behavior independent of any real analyzer.
var callCounter = &engine.Analyzer{
	Name: "callcounter",
	Doc:  "test analyzer: reports every call expression",
	Run: func(pass *engine.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call found")
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestLoadAllAndSuppression(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": `package a

func f() {}

func g() {
	f() // flagged
	f() //lint:allow callcounter -- trailing directive
	//lint:allow callcounter -- directive on the line above
	f()
	f() //lint:allow otherchecker -- wrong analyzer, still flagged
}
`,
		"a/testdata/ignored.go": "package broken!!! not even Go\n",
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("LoadAll returned %d units, want 1 (testdata must be skipped)", len(units))
	}
	if units[0].ImportPath != "example.test/a" {
		t.Fatalf("unit import path = %q", units[0].ImportPath)
	}
	findings, err := engine.Run(units, []*engine.Analyzer{callCounter})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (two of four calls suppressed): %v", len(findings), findings)
	}
	if findings[0].Position.Line != 6 || findings[1].Position.Line != 10 {
		t.Fatalf("finding lines = %d, %d; want 6 and 10", findings[0].Position.Line, findings[1].Position.Line)
	}
}

func TestRunOrderIsDeterministic(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"b/b.go": "package b\n\nfunc h() { g(); g() }\n\nfunc g() {}\n",
		"a/a.go": "package a\n\nfunc f() { f() }\n",
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	first, err := engine.Run(units, []*engine.Analyzer{callCounter})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := engine.Run(units, []*engine.Analyzer{callCounter})
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings, want %d", i, len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("run %d: finding %d = %+v, want %+v", i, j, again[j], first[j])
			}
		}
	}
	if len(first) != 3 {
		t.Fatalf("got %d findings, want 3", len(first))
	}
	if !filepath.IsAbs(first[0].Position.Filename) {
		t.Fatalf("positions should be absolute, got %q", first[0].Position.Filename)
	}
	// a/ sorts before b/ regardless of walk or map order.
	if filepath.Base(first[0].Position.Filename) != "a.go" {
		t.Fatalf("first finding in %s, want a.go", first[0].Position.Filename)
	}
}

func TestAllowFileSuppressesWholeFile(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/sanctioned.go": `package a

//lint:allowfile callcounter -- this whole file is a sanctioned site

func f() {}

func g() {
	f()
	f()
}
`,
		"a/plain.go": `package a

func h() { f() }
`,
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := engine.Run(units, []*engine.Analyzer{callCounter})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (sanctioned.go fully suppressed, plain.go not): %v", len(findings), findings)
	}
	if filepath.Base(findings[0].Position.Filename) != "plain.go" {
		t.Fatalf("finding in %s, want plain.go", findings[0].Position.Filename)
	}
}

func TestAllowFileRequiresReason(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": `package a

//lint:allowfile callcounter

func f() {}

func g() { f() }
`,
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := engine.Run(units, []*engine.Analyzer{callCounter})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: a reason-less allowfile directive must be inert", len(findings))
	}
}

// TestLoaderSkipsBuildConstrainedFiles: a //go:build-excluded helper or
// a foreign-GOOS file must not break type-checking of its package.
func TestLoaderSkipsBuildConstrainedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc F() int { return 1 }\n",
		"a/gen.go": `//go:build ignore

package main

// A generator script: different package name, would wreck the
// type-check if the loader parsed it into package a.
func main() {}
`,
		"a/a_windows.go": "package a\n\nfunc G() int { return windowsOnly() }\n",
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll must skip constrained files: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	if len(units[0].Files) != 1 {
		t.Fatalf("unit has %d files, want 1 (gen.go and a_windows.go skipped)", len(units[0].Files))
	}
}

// TestLoaderExternalTestPackage: package foo_test files form their own
// unit with the _test import-path suffix, and can import the package
// under test.
func TestLoaderExternalTestPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"lib/lib.go": "package lib\n\nfunc V() int { return 42 }\n",
		"lib/ext_test.go": `package lib_test

import (
	"testing"

	"example.test/lib"
)

func TestV(t *testing.T) {
	if lib.V() != 42 {
		t.Fail()
	}
}
`,
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2 (lib + lib_test)", len(units))
	}
	var ext *engine.Unit
	for _, u := range units {
		if u.ImportPath == "example.test/lib_test" {
			ext = u
		}
	}
	if ext == nil {
		t.Fatal("external test package unit not created")
	}
	if !ext.IsTest {
		t.Error("external test unit not marked IsTest")
	}
}

// TestLoaderStdlibImports: packages leaning on cgo-free stdlib imports
// type-check through the source importer with no network or export
// data.
func TestLoaderStdlibImports(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"encoding/hex"
	"hash/crc32"
	"strconv"
)

func F(b []byte) string {
	return strconv.Itoa(int(crc32.ChecksumIEEE(b))) + hex.EncodeToString(b)
}
`,
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("stdlib-importing package failed to load: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
}

func TestLoaderResolvesIntraModuleImports(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":        "module example.test\n\ngo 1.22\n",
		"lib/lib.go":    "package lib\n\n// V is exported for the importer test.\nvar V = 42\n",
		"app/main.go":   "package main\n\nimport \"example.test/lib\"\n\nfunc main() { _ = lib.V }\n",
		"app/util.go":   "package main\n\nimport \"fmt\"\n\nfunc show() { fmt.Println(\"x\") }\n",
		"lib/l_test.go": "package lib\n\nimport \"testing\"\n\nfunc TestV(t *testing.T) { _ = V }\n",
	})
	loader, err := engine.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2", len(units))
	}
	var lib *engine.Unit
	for _, u := range units {
		if u.ImportPath == "example.test/lib" {
			lib = u
		}
	}
	if lib == nil {
		t.Fatal("lib unit not loaded")
	}
	if !lib.IsTest {
		t.Error("lib unit should include its in-package test file")
	}
	if len(lib.Files) != 2 {
		t.Errorf("lib unit has %d files, want 2", len(lib.Files))
	}
}
