package engine

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked collection of files: a plain package, a
// package augmented with its in-package _test.go files, or an external
// _test package. Analyzers see units, not bare packages, so test code
// is linted under the same contracts as production code.
type Unit struct {
	ImportPath string
	// ModulePath is the module the loader was rooted at; analyzers use
	// it to tell module-internal callees from stdlib ones.
	ModulePath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// IsTest marks units that include _test.go files.
	IsTest bool

	// allows maps filename -> line -> comma-joined analyzer names from
	// //lint:allow directives, collected at parse time.
	allows map[string]map[int]string

	// allowFiles maps filename -> comma-joined analyzer names from
	// file-scope //lint:allowfile directives.
	allowFiles map[string]string

	// funcs caches the unit's call-graph contribution (callgraph.go),
	// along with the literal and local-function-variable indexes built
	// during the same walk.
	funcs    []*FuncNode
	litIDs   map[*ast.FuncLit]FuncID
	varFuncs map[types.Object][]FuncID
}

// FileAllowed reports whether a file-scope //lint:allowfile directive
// in the file containing pos names the given analyzer. Analyzers whose
// policy hangs on sanctioned-site files (walltime-reach's Stopwatch
// root) query this directly.
func (u *Unit) FileAllowed(pos token.Pos, analyzer string) bool {
	if !pos.IsValid() {
		return false
	}
	return nameListHas(u.allowFiles[u.Fset.Position(pos).Filename], analyzer)
}

// LitID returns the call-graph id of a function literal in this unit
// (building the unit's function index on first use), or "".
func (u *Unit) LitID(lit *ast.FuncLit) FuncID {
	unitFuncs(u)
	return u.litIDs[lit]
}

// FuncsBoundTo returns the ids of the function literals or named
// functions assigned to a local variable anywhere in its enclosing
// function, resolving the `var f func(); f = func(){...}; use(f)` idiom.
func (u *Unit) FuncsBoundTo(obj types.Object) []FuncID {
	unitFuncs(u)
	return u.varFuncs[obj]
}

// Loader parses and type-checks packages without the go/packages
// machinery (which lives in x/tools, unavailable offline). Imports of
// this module's own packages resolve by walking the source tree;
// everything else falls back to the standard library's source importer,
// which type-checks GOROOT packages from source and needs no network or
// export data.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	std     types.ImporterFrom
	plain   map[string]*types.Package // cache of non-test packages
	loading map[string]bool           // import cycle detection
	extra   map[string]string         // import path -> dir (testdata fixtures)
}

// NewLoader returns a loader rooted at moduleRoot (the directory
// holding go.mod, from which the module path is read).
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint loader: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint loader: no module line in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		Fset:       fset,
		plain:      map[string]*types.Package{},
		loading:    map[string]bool{},
		extra:      map[string]string{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// RegisterDir maps an import path outside the module (testdata fixture
// packages) to a directory so fixtures can import one another.
func (l *Loader) RegisterDir(importPath, dir string) { l.extra[importPath] = dir }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if d, ok := l.extra[path]; ok {
		return l.loadPlain(path, d)
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		return l.loadPlain(path, filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
	}
	return l.std.ImportFrom(path, dir, mode)
}

// loadPlain type-checks the non-test files of one directory, with
// caching and import-cycle detection.
func (l *Loader) loadPlain(path, dir string) (*types.Package, error) {
	if pkg, ok := l.plain[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.plain[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in dir, returning non-test files and
// test files separately, each sorted by filename. Files excluded by
// build constraints — a //go:build line or a GOOS/GOARCH filename
// suffix that does not match the current context — are skipped, the
// way the go tool would skip them, so a foo_windows.go or a
// `//go:build ignore` helper cannot break type-checking of the rest of
// the package.
func (l *Loader) parseDir(dir string) (plain, test []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	ctx := build.Default
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			if match, err := ctx.MatchFile(dir, e.Name()); err != nil || !match {
				continue
			}
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			test = append(test, f)
		} else {
			plain = append(plain, f)
		}
	}
	return plain, test, nil
}

// check runs go/types over files as package path.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// unitFor builds one analyzed Unit over files.
func (l *Loader) unitFor(importPath, dir string, files []*ast.File, isTest bool) (*Unit, error) {
	pkg, info, err := l.check(importPath, files)
	if err != nil {
		return nil, err
	}
	u := &Unit{
		ImportPath: importPath,
		ModulePath: l.ModulePath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		IsTest:     isTest,
		allows:     map[string]map[int]string{},
		allowFiles: map[string]string{},
	}
	for _, f := range files {
		l.collectAllows(u, f)
	}
	return u, nil
}

// LoadDir loads the single package in dir under the given import path
// (used for testdata fixtures). In-package _test.go files are merged
// into the unit, exactly as LoadAll does for module packages, so
// fixtures can exercise analyzer behavior that depends on test-file
// context; external _test packages in fixtures are not supported.
func (l *Loader) LoadDir(importPath, dir string) (*Unit, error) {
	l.RegisterDir(importPath, dir)
	plain, test, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	files := append([]*ast.File{}, plain...)
	isTest := false
	for _, f := range test {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			files = append(files, f)
			isTest = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return l.unitFor(importPath, dir, files, isTest)
}

// LoadAll walks the module tree and returns one unit per package: the
// package itself merged with its in-package _test.go files (so test
// code is linted too), plus a separate unit for any external _test
// package. Directories named testdata, vendored trees, and hidden
// directories are skipped, matching go tool conventions.
func (l *Loader) LoadAll() ([]*Unit, error) {
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			// Walk order interleaves subdirectories between a directory's
			// own files (bench_test.go < cmd/ < integration_test.go), so a
			// "same as last" check would load the module root twice; dedupe
			// with a set.
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var units []*Unit
	for _, dir := range dirs {
		us, err := l.LoadDirUnits(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// LoadDirUnits loads the package rooted at one module directory: the
// package merged with its in-package _test.go files, plus a separate
// unit for an external _test package when present.
func (l *Loader) LoadDirUnits(dir string) ([]*Unit, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module root %s", dir, l.ModuleRoot)
	}
	importPath := l.ModulePath
	if rel != "." {
		importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	plain, test, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(plain)+len(test) == 0 {
		return nil, nil
	}
	var inPkg, external []*ast.File
	for _, f := range test {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	var units []*Unit
	if len(plain)+len(inPkg) > 0 {
		u, err := l.unitFor(importPath, dir, append(append([]*ast.File{}, plain...), inPkg...), len(inPkg) > 0)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(external) > 0 {
		u, err := l.unitFor(importPath+"_test", dir, external, true)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// collectAllows scans a file's comments for //lint:allow and
// //lint:allowfile directives. Grammar:
//
//	//lint:allow name[,name...] [-- free-text reason]
//	//lint:allowfile name[,name...] -- reason
//
// An allow directive covers its own line and the line immediately
// below. An allowfile directive covers the whole file it appears in —
// the sanctioned-site form for files whose entire purpose is an
// exception (the Stopwatch shim, the cluster shard runners) — and must
// carry a reason.
func (l *Loader) collectAllows(u *Unit, f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if rest, ok := strings.CutPrefix(text, "lint:allowfile"); ok {
				names, reason, hasReason := strings.Cut(strings.TrimSpace(rest), " -- ")
				names = strings.TrimSpace(names)
				if names == "" || !hasReason || strings.TrimSpace(reason) == "" {
					continue // a file-scope waiver without a reason is inert
				}
				p := l.Fset.Position(c.Slash)
				if prev := u.allowFiles[p.Filename]; prev != "" {
					names = prev + "," + names
				}
				u.allowFiles[p.Filename] = names
				continue
			}
			rest, ok := strings.CutPrefix(text, "lint:allow")
			if !ok {
				continue
			}
			names, _, _ := strings.Cut(strings.TrimSpace(rest), " -- ")
			names = strings.TrimSpace(names)
			if names == "" {
				continue
			}
			p := l.Fset.Position(c.Slash)
			lines := u.allows[p.Filename]
			if lines == nil {
				lines = map[int]string{}
				u.allows[p.Filename] = lines
			}
			if prev := lines[p.Line]; prev != "" {
				names = prev + "," + names
			}
			lines[p.Line] = names
		}
	}
}
