package engine_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/engine"
)

// parseFunc type-checks one source file and returns the named function
// plus the type info, for CFG/def-use tests.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Error: func(err error) {}} // tolerate missing imports
	pkg, _ := conf.Check("p", fset, []*ast.File{f}, info)
	_ = pkg
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// defOf finds the object and definition position of the named variable.
func defOf(t *testing.T, fd *ast.FuncDecl, info *types.Info, name string) (types.Object, token.Pos) {
	t.Helper()
	var obj types.Object
	var pos token.Pos
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil && obj == nil {
				obj, pos = o, id.Pos()
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("no definition of %s", name)
	}
	return obj, pos
}

func dropKindOf(t *testing.T, src string) engine.DropKind {
	t.Helper()
	fd, info := parseFunc(t, src, "f")
	cfg := engine.BuildCFG(fd.Body)
	obj, pos := defOf(t, fd, info, "err")
	fl := engine.FlowFor(cfg, info, obj)
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			if len(fld.Names) > 0 {
				fl.MarkNakedReturnUse()
				break
			}
		}
	}
	return fl.DropPaths(pos)
}

func TestDropPathsCleanCheck(t *testing.T) {
	src := `package p
func g() error { return nil }
func f() error {
	err := g()
	if err != nil {
		return err
	}
	return nil
}`
	if k := dropKindOf(t, src); k != engine.DropNone {
		t.Fatalf("clean check classified %v, want DropNone", k)
	}
}

func TestDropPathsExit(t *testing.T) {
	src := `package p
func g() error { return nil }
func f(fast bool) error {
	err := g()
	if fast {
		return nil
	}
	return err
}`
	if k := dropKindOf(t, src); k != engine.DropExit {
		t.Fatalf("early-return drop classified %v, want DropExit", k)
	}
}

func TestDropPathsOverwrite(t *testing.T) {
	src := `package p
func g() error { return nil }
func f() error {
	err := g()
	err = g()
	return err
}`
	if k := dropKindOf(t, src); k != engine.DropOverwrite {
		t.Fatalf("overwrite drop classified %v, want DropOverwrite", k)
	}
}

func TestDropPathsLoopRedefIsClean(t *testing.T) {
	src := `package p
func g() error { return nil }
func use(error) {}
func f(n int) {
	for i := 0; i < n; i++ {
		err := g()
		use(err)
	}
}`
	if k := dropKindOf(t, src); k != engine.DropNone {
		t.Fatalf("loop redef classified %v, want DropNone (use precedes back-edge redef)", k)
	}
}

func TestDropPathsSwitchMissingArm(t *testing.T) {
	src := `package p
func g() error { return nil }
func use(error) {}
func f(mode int) {
	err := g()
	switch mode {
	case 0:
		use(err)
	case 1:
	}
}`
	if k := dropKindOf(t, src); k != engine.DropExit {
		t.Fatalf("switch with unchecked arm classified %v, want DropExit", k)
	}
}

func TestDropPathsClosureEscapes(t *testing.T) {
	src := `package p
func g() error { return nil }
func run(fn func()) {}
func f() {
	err := g()
	run(func() {
		if err != nil {
			panic(err)
		}
	})
}`
	if k := dropKindOf(t, src); k != engine.DropEscaped {
		t.Fatalf("closure capture classified %v, want DropEscaped", k)
	}
}

func TestDropPathsDeferEscapes(t *testing.T) {
	src := `package p
func g() error { return nil }
func use(error) {}
func f() {
	err := g()
	defer use(err)
}`
	if k := dropKindOf(t, src); k != engine.DropEscaped {
		t.Fatalf("deferred use classified %v, want DropEscaped", k)
	}
}

func TestDropPathsNakedReturn(t *testing.T) {
	src := `package p
func g() error { return nil }
func f() (err error) {
	err = g()
	return
}`
	if k := dropKindOf(t, src); k != engine.DropNone {
		t.Fatalf("named result + naked return classified %v, want DropNone", k)
	}
}

func TestDropPathsPanicConsumes(t *testing.T) {
	src := `package p
func g() error { return nil }
func f() {
	err := g()
	if err != nil {
		panic("boom")
	}
}`
	if k := dropKindOf(t, src); k != engine.DropNone {
		t.Fatalf("panic guard classified %v, want DropNone (cond reads err on every path)", k)
	}
}

// TestCFGShapes sanity-checks block structure for the statement forms
// the builder must model: loops have back edges, breaks reach the after
// block, selects branch per clause.
func TestCFGShapes(t *testing.T) {
	src := `package p
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		total += i
	}
	switch {
	case n > 10:
		total++
	default:
		total--
	}
	return total
}`
	fd, _ := parseFunc(t, src, "f")
	cfg := engine.BuildCFG(fd.Body)
	if len(cfg.Blocks) < 6 {
		t.Fatalf("got %d blocks, want a branching graph", len(cfg.Blocks))
	}
	// Every block's successors must be in the graph, and the exit block
	// must be reachable from the entry.
	index := map[*engine.Block]bool{}
	for _, b := range cfg.Blocks {
		index[b] = true
	}
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				t.Fatalf("block %d has successor outside graph", b.Index)
			}
		}
	}
	seen := map[*engine.Block]bool{}
	var walk func(b *engine.Block)
	walk = func(b *engine.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Entry())
	if !seen[cfg.Exit] {
		t.Fatal("exit block unreachable from entry")
	}
}
