// Package engine is a self-contained, standard-library-only analysis
// framework modeled on golang.org/x/tools/go/analysis. The repository
// builds offline with no module dependencies, so rather than import the
// x/tools multichecker we reimplement the small slice of its API that
// pdsilint needs: an Analyzer with a Run function over a type-checked
// package, Diagnostics with positions, a package loader, and a driver
// that applies //lint:allow suppression comments. Analyzers written
// against this package port to x/tools go/analysis mechanically should
// that dependency ever become available.
package engine

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used on the command line and in
	// //lint:allow <name> suppression directives.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run executes the check on one type-checked unit. Diagnostics are
	// delivered through pass.Report; the returned value (may be nil) is
	// collected per unit and handed to Finish.
	Run func(pass *Pass) (any, error)

	// Finish, if non-nil, runs once after every unit has been analyzed
	// and may report cross-package diagnostics (e.g. duplicate metric
	// names registered by two different packages). The results slice
	// holds one entry per analyzed unit, in deterministic load order.
	Finish func(results []UnitResult) []Diagnostic
}

// Pass carries the inputs for one Analyzer.Run invocation over one unit.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Unit      *Unit

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// UnitResult pairs an analyzed unit with the value its Run returned.
type UnitResult struct {
	Unit   *Unit
	Result any
}

// Finding is a fully resolved diagnostic ready for printing or testing.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
}

// Run applies every analyzer to every unit, filters suppressed
// diagnostics, invokes Finish hooks, and returns findings sorted by
// file, line, column, then analyzer name — a deterministic order
// regardless of load or map iteration order.
func Run(units []*Unit, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		var results []UnitResult
		for _, u := range units {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				Unit:      u,
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.ImportPath, err)
			}
			results = append(results, UnitResult{Unit: u, Result: res})
			for _, d := range pass.diags {
				if !u.suppressed(a.Name, d.Pos) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Position: u.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				}
			}
		}
		if a.Finish != nil {
			for _, d := range a.Finish(results) {
				// Finish diagnostics carry positions from some unit's
				// FileSet; all units share one FileSet per loader.
				var pos token.Position
				var sup bool
				for _, u := range units {
					if u.covers(d.Pos) {
						pos = u.Fset.Position(d.Pos)
						sup = u.suppressed(a.Name, d.Pos)
						break
					}
				}
				if !sup {
					findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
				}
			}
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, analyzer name,
// then message — the deterministic output order. Exported so drivers
// that run analyzers one at a time (to measure per-analyzer wall time)
// can merge their findings back into canonical order.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// suppressed reports whether an //lint:allow or //lint:allowfile
// directive covers the diagnostic position for the named analyzer: a
// line directive suppresses findings on its own source line and on the
// line immediately below it (so it can trail the offending expression
// or sit on its own line above); a file directive suppresses every
// finding in its file.
func (u *Unit) suppressed(analyzer string, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := u.Fset.Position(pos)
	if nameListHas(u.allowFiles[p.Filename], analyzer) {
		return true
	}
	lines := u.allows[p.Filename]
	if lines == nil {
		return false
	}
	names := lines[p.Line]
	if names == "" {
		names = lines[p.Line-1]
	}
	return nameListHas(names, analyzer)
}

// nameListHas reports whether the comma-joined list contains name.
func nameListHas(list, name string) bool {
	if list == "" {
		return false
	}
	for _, n := range strings.Split(list, ",") {
		if strings.TrimSpace(n) == name {
			return true
		}
	}
	return false
}

// covers reports whether pos falls inside one of the unit's files.
func (u *Unit) covers(pos token.Pos) bool {
	for _, f := range u.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}
