package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/engine"
)

// Shardown enforces shard-state ownership in the sharded simulation
// engine. The conservative-lookahead contract (DESIGN.md, "Sharded
// engine") is that every piece of model state belongs to exactly one
// shard, mutated only by events on that shard's engine; the only legal
// cross-shard channel is Cluster.Send, which carries a declared minimum
// latency and merges deterministically. Reaching into the shard table
// (Cluster.Shard) is therefore a setup-time operation: wiring pods to
// engines before Run. Event-time code that calls Cluster.Shard —
// directly, or through any chain of helpers — is holding another
// shard's Engine without the merge protocol, which breaks byte-identity
// across shard counts in exactly the way no golden test localizes.
//
// Mechanically: every function value scheduled as an event callback
// (the fn of Engine.At/Schedule, Server.Submit's done, Cluster.Send's
// fn, Cluster.Sample's tick) is a root; the analyzer walks the
// module-wide call graph from each root and flags the scheduling site
// if any reachable function calls Cluster.Shard. Engines captured at
// setup and used by their own shard's events are untouched — it is the
// shard *table* lookup at event time that is flagged.
//
// Approximation: callbacks are resolved when they are literals, named
// functions, or locally bound function variables; a callback smuggled
// through a struct field or interface is not traced. Cross-shard writes
// that bypass Shard() entirely (storing a foreign engine in a struct at
// setup and scheduling on it at event time) are out of scope here; the
// goroutine and maporder analyzers fence the other halves of that
// contract.
var Shardown = &engine.Analyzer{
	Name: "shardown",
	Doc: "event-time code must not reach another shard's engine: Cluster.Shard is setup-only, " +
		"cross-shard work travels through Cluster.Send",
	Run: func(pass *engine.Pass) (any, error) {
		return collectShardownFacts(pass), nil
	},
	Finish: finishShardown,
}

// simMethod reports whether call is a method call on the named type
// from internal/sim (or a fixture package named sim), returning the
// method name.
func simMethod(info *types.Info, call *ast.CallExpr, typeName string) (string, bool) {
	named := namedRecv(info, call)
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	p := named.Obj().Pkg().Path()
	if !strings.HasSuffix(p, "internal/sim") && p != "sim" {
		return "", false
	}
	if named.Obj().Name() != typeName {
		return "", false
	}
	sel := call.Fun.(*ast.SelectorExpr) // namedRecv guaranteed the shape
	return sel.Sel.Name, true
}

// callbackParamIndex maps scheduling APIs to the argument position of
// the event callback they enqueue.
func callbackParamIndex(info *types.Info, call *ast.CallExpr) (int, bool) {
	if m, ok := simMethod(info, call, "Engine"); ok {
		switch m {
		case "At", "Schedule":
			return 1, true
		}
	}
	if m, ok := simMethod(info, call, "Server"); ok && m == "Submit" {
		return 1, true
	}
	if m, ok := simMethod(info, call, "Cluster"); ok {
		switch m {
		case "Send":
			return 4, true
		case "Sample":
			return 1, true
		}
	}
	return 0, false
}

// shardownFacts is one unit's contribution: where Cluster.Shard is
// called, per call-graph node, and which nodes are scheduled as event
// callbacks.
type shardownFacts struct {
	// shardCalls maps a function node id to the positions of the
	// Cluster.Shard calls in its body.
	shardCalls map[engine.FuncID][]token.Pos
	// roots are (callback node id, scheduling call position) pairs.
	roots []shardownRoot
}

type shardownRoot struct {
	id  engine.FuncID
	pos token.Pos
}

func collectShardownFacts(pass *engine.Pass) *shardownFacts {
	u := pass.Unit
	facts := &shardownFacts{shardCalls: map[engine.FuncID][]token.Pos{}}

	for _, node := range engine.UnitFunctions(u) {
		if node.Body == nil {
			continue
		}
		n := node
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // literal bodies are their own nodes
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if method, ok := simMethod(u.Info, call, "Cluster"); ok && method == "Shard" {
				facts.shardCalls[n.ID] = append(facts.shardCalls[n.ID], call.Pos())
			}
			if idx, ok := callbackParamIndex(u.Info, call); ok && idx < len(call.Args) {
				for _, id := range callbackFuncIDs(u, call.Args[idx]) {
					facts.roots = append(facts.roots, shardownRoot{id: id, pos: call.Pos()})
				}
			}
			return true
		})
	}
	return facts
}

// callbackFuncIDs resolves a callback argument to call-graph node ids:
// a literal, a named function, or a local variable bound to literals.
func callbackFuncIDs(u *engine.Unit, e ast.Expr) []engine.FuncID {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if id := u.LitID(e); id != "" {
			return []engine.FuncID{id}
		}
	case *ast.Ident:
		if fo, ok := u.Info.Uses[e].(*types.Func); ok {
			return []engine.FuncID{engine.IDOf(fo)}
		}
		if obj := u.Info.Uses[e]; obj != nil {
			return u.FuncsBoundTo(obj)
		}
	}
	return nil
}

func finishShardown(results []engine.UnitResult) []engine.Diagnostic {
	units := make([]*engine.Unit, len(results))
	shardCalls := map[engine.FuncID][]token.Pos{}
	var roots []shardownRoot
	for i, r := range results {
		units[i] = r.Unit
		facts, _ := r.Result.(*shardownFacts)
		if facts == nil {
			continue
		}
		for id, ps := range facts.shardCalls {
			shardCalls[id] = append(shardCalls[id], ps...)
		}
		roots = append(roots, facts.roots...)
	}
	if len(roots) == 0 || len(shardCalls) == 0 {
		return nil
	}
	g := engine.BuildCallGraph(units)

	// reachesShard: reverse-propagate from every Shard-calling node.
	reaches := map[engine.FuncID]bool{}
	for id := range shardCalls {
		reaches[id] = true
	}
	for changed := true; changed; {
		changed = false
		for _, id := range g.SortedIDs() {
			if reaches[id] {
				continue
			}
			for _, e := range g.Nodes[id].Out {
				if reaches[e.To] {
					reaches[id] = true
					changed = true
					break
				}
			}
		}
	}

	// Deduplicate roots by (id, pos): the same callback may be
	// registered from several sites.
	type rootKey struct {
		id  engine.FuncID
		pos token.Pos
	}
	seen := map[rootKey]bool{}
	var diags []engine.Diagnostic
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].pos != roots[j].pos {
			return roots[i].pos < roots[j].pos
		}
		return roots[i].id < roots[j].id
	})
	for _, r := range roots {
		k := rootKey{r.id, r.pos}
		if seen[k] || !reaches[r.id] {
			seen[k] = true
			continue
		}
		seen[k] = true
		path := g.PathTo(r.id, func(id engine.FuncID) bool {
			return len(shardCalls[id]) > 0
		})
		diags = append(diags, engine.Diagnostic{
			Pos: r.pos,
			Message: fmt.Sprintf(
				"event callback reaches Cluster.Shard (%s): the shard table is setup-only; cross-shard work must go through Cluster.Send",
				chainString(r.id, path)),
		})
	}
	return diags
}
