package archive

import (
	"testing"
)

func TestPolicyStrings(t *testing.T) {
	if Striped.String() != "striped" || Packed.String() != "packed" ||
		SemanticGroups.String() != "semantic-groups" {
		t.Fatal("policy names wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Run(Config{})
}

func TestRunProducesRequestsAndEnergy(t *testing.T) {
	res := Run(DefaultConfig(16, SemanticGroups))
	if res.Requests < 100 {
		t.Fatalf("only %d requests in 24h at 30s mean", res.Requests)
	}
	if res.Joules <= 0 || res.AvgWatts <= 0 {
		t.Fatalf("no energy accounted: %+v", res)
	}
	if res.MeanLatency <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestPowerManagedArchiveBeatsAlwaysOn(t *testing.T) {
	cfg := DefaultConfig(16, SemanticGroups)
	res := Run(cfg)
	alwaysOn := AlwaysOnWatts(cfg)
	if res.AvgWatts >= alwaysOn {
		t.Fatalf("power-managed %f W should beat always-on %f W", res.AvgWatts, alwaysOn)
	}
	if res.DiskSleepFrac < 0.3 {
		t.Fatalf("sleep fraction %v too low for an archival workload", res.DiskSleepFrac)
	}
}

func TestStripedWakesEverythingAndBurnsPower(t *testing.T) {
	striped := Run(DefaultConfig(16, Striped))
	grouped := Run(DefaultConfig(16, SemanticGroups))
	if striped.AvgWatts <= grouped.AvgWatts {
		t.Fatalf("striped %f W should exceed semantic groups %f W",
			striped.AvgWatts, grouped.AvgWatts)
	}
	if striped.SpinUps <= grouped.SpinUps {
		t.Fatalf("striped spin-ups %d should exceed grouped %d",
			striped.SpinUps, grouped.SpinUps)
	}
}

func TestSemanticGroupingReducesSpinUpsVsPacked(t *testing.T) {
	// Grouped placement keeps bursts of related requests on the already-
	// spinning disk; packed placement scatters groups across disks.
	grouped := Run(DefaultConfig(24, SemanticGroups))
	packed := Run(DefaultConfig(24, Packed))
	if grouped.SpinUps > packed.SpinUps {
		t.Fatalf("grouped spin-ups %d should not exceed packed %d",
			grouped.SpinUps, packed.SpinUps)
	}
}

func TestMoreDisksCanSaveEnergy(t *testing.T) {
	// The study's counter-intuitive result: with semantic grouping, more
	// disks can *reduce* energy per unit time at low request rates,
	// because the active group is isolated and everything else sleeps —
	// but only if standby power is low. Compare per-disk watts: the
	// bigger archive must not burn proportionally more.
	small := Run(DefaultConfig(8, SemanticGroups))
	big := Run(DefaultConfig(32, SemanticGroups))
	perSmall := small.AvgWatts / 8
	perBig := big.AvgWatts / 32
	if perBig >= perSmall {
		t.Fatalf("per-disk watts should fall with scale: 8 disks %f, 32 disks %f",
			perSmall, perBig)
	}
}

func TestLowRateMakesPlacementIrrelevant(t *testing.T) {
	// "Under very low read and write rates, data placement policies have
	// minimal impact as [standby] power usage dominates."
	slow := func(p Policy) Result {
		cfg := DefaultConfig(16, p)
		cfg.ReadMean = 4 * 3600 // one request every ~4 hours
		cfg.Duration = 7 * 24 * 3600
		return Run(cfg)
	}
	packed := slow(Packed)
	grouped := slow(SemanticGroups)
	ratio := packed.AvgWatts / grouped.AvgWatts
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("at negligible load policies should converge: packed %f W vs grouped %f W",
			packed.AvgWatts, grouped.AvgWatts)
	}
}

func TestSpinUpLatencyVisible(t *testing.T) {
	cfg := DefaultConfig(8, SemanticGroups)
	cfg.GroupLocality = 0 // every request jumps groups: cold disks
	cfg.ReadMean = 600    // long gaps so disks spin down between requests
	res := Run(cfg)
	if res.P99Latency < cfg.Disk.SpinUp {
		t.Fatalf("p99 latency %v should include spin-up %v", res.P99Latency, cfg.Disk.SpinUp)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(DefaultConfig(8, Packed))
	b := Run(DefaultConfig(8, Packed))
	if a.Joules != b.Joules || a.Requests != b.Requests {
		t.Fatal("non-deterministic archive run")
	}
}

func TestAlwaysOnWattsScale(t *testing.T) {
	cfg := DefaultConfig(10, Packed)
	if got := AlwaysOnWatts(cfg); got != 10*cfg.Disk.IdleWatts {
		t.Fatalf("AlwaysOnWatts = %v", got)
	}
}
