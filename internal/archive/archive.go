// Package archive models the UCSC power-managed disk archival storage
// exploration (Pergamum, Storer et al. FAST'08, and the MASCOTS'10
// heterogeneous-archive energy study the report describes): an archive
// built from mostly-idle disks that spin down between accesses, evaluated
// for energy use and access latency against an always-on array and a
// tape-library stand-in. The study's counter-intuitive finding is
// reproduced: under some placements, *more* devices can save energy,
// because spreading the working set lets more disks stay asleep, and
// at very low request rates placement policy barely matters because
// standby power dominates.
package archive

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stats"
)

// DiskPower describes one archival disk's power/performance envelope.
type DiskPower struct {
	ActiveWatts  float64  // spinning + seeking
	IdleWatts    float64  // spinning, no I/O
	StandbyWatts float64  // spun down
	SpinUp       sim.Time // standby -> ready
	SpinUpJoules float64  // energy cost of one spin-up
	Bandwidth    float64  // bytes/second while active
}

// ArchivalDisk2008 approximates a low-power SATA drive of the study era.
func ArchivalDisk2008() DiskPower {
	return DiskPower{
		ActiveWatts:  11,
		IdleWatts:    8,
		StandbyWatts: 1,
		SpinUp:       10,
		SpinUpJoules: 120,
		Bandwidth:    70e6,
	}
}

// Policy selects how objects map to disks.
type Policy int

// Placement policies from the study.
const (
	// Striped spreads every object across all disks (RAID-style): any
	// access wakes everything.
	Striped Policy = iota
	// Packed fills disks one at a time: accesses concentrate on few disks.
	Packed
	// SemanticGroups clusters related objects (same dataset) on the same
	// disk, so a burst of related reads wakes one disk only.
	SemanticGroups
)

func (p Policy) String() string {
	switch p {
	case Striped:
		return "striped"
	case Packed:
		return "packed"
	case SemanticGroups:
		return "semantic-groups"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes the archive and workload.
type Config struct {
	Disks  int
	Disk   DiskPower
	Policy Policy
	// SpinDownAfter is the idle time before a disk spins down.
	SpinDownAfter sim.Time
	// Objects is the number of stored objects; Groups the number of
	// semantic clusters they form.
	Objects int
	Groups  int
	// ReadMean is the mean inter-arrival of read requests (exponential),
	// and ObjectSize the bytes read per request.
	ReadMean   sim.Time
	ObjectSize int64
	Duration   sim.Time
	Seed       int64
	// GroupLocality is the probability a request stays in the previous
	// request's semantic group (burstiness of related accesses).
	GroupLocality float64
}

// DefaultConfig is a small archive under a light, bursty read load.
func DefaultConfig(disks int, policy Policy) Config {
	return Config{
		Disks:         disks,
		Disk:          ArchivalDisk2008(),
		Policy:        policy,
		SpinDownAfter: 60,
		Objects:       10000,
		Groups:        50,
		ReadMean:      30,
		ObjectSize:    256 << 20,
		Duration:      24 * 3600,
		Seed:          1,
		GroupLocality: 0.8,
	}
}

// Result reports energy and latency for one run.
type Result struct {
	Config        Config
	Joules        float64
	AvgWatts      float64
	Requests      int
	SpinUps       int
	MeanLatency   sim.Time
	P99Latency    sim.Time
	DiskSleepFrac float64 // average fraction of disk-time spent in standby
}

// diskState tracks one disk's power timeline.
type diskState struct {
	spinning   bool
	lastChange sim.Time
	busyUntil  sim.Time
	spinJoules float64
	spinSecs   float64 // seconds spent spinning (idle or active)
	sleepSecs  float64
	activeSecs float64
	spinUps    int
}

// Run simulates the archive.
func Run(cfg Config) Result {
	if cfg.Disks < 1 || cfg.Objects < 1 || cfg.Duration <= 0 {
		panic(fmt.Sprintf("archive: invalid config %+v", cfg))
	}
	if cfg.Groups < 1 {
		cfg.Groups = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	disks := make([]diskState, cfg.Disks)
	now := sim.Time(0)
	var res Result
	res.Config = cfg
	var latencies []float64
	prevGroup := 0

	// account transitions a disk's timeline up to time t.
	account := func(d *diskState, t sim.Time) {
		span := float64(t - d.lastChange)
		if span < 0 {
			span = 0
		}
		if d.spinning {
			d.spinSecs += span
		} else {
			d.sleepSecs += span
		}
		d.lastChange = t
	}

	interarrival := stats.Exponential{Rate: 1 / float64(cfg.ReadMean)}
	for {
		gap := sim.Time(interarrival.Sample(r))
		next := now + gap
		if next > cfg.Duration {
			break
		}
		// Spin-down pass: any spinning disk idle long enough sleeps at
		// (its idle start + SpinDownAfter).
		for i := range disks {
			d := &disks[i]
			if d.spinning && next-d.busyUntil > cfg.SpinDownAfter {
				downAt := d.busyUntil + cfg.SpinDownAfter
				if downAt < d.lastChange {
					downAt = d.lastChange
				}
				account(d, downAt)
				d.spinning = false
			}
		}
		now = next
		res.Requests++

		// Pick the object and its disk set.
		group := prevGroup
		if r.Float64() > cfg.GroupLocality {
			group = r.Intn(cfg.Groups)
		}
		prevGroup = group
		obj := group*(cfg.Objects/cfg.Groups) + r.Intn(cfg.Objects/cfg.Groups)
		var targets []int
		switch cfg.Policy {
		case Striped:
			targets = make([]int, cfg.Disks)
			for i := range targets {
				targets[i] = i
			}
		case Packed:
			targets = []int{obj * cfg.Disks / cfg.Objects}
		case SemanticGroups:
			targets = []int{group % cfg.Disks}
		}

		// Serve: wake sleeping targets; transfer split across targets.
		var latency sim.Time
		per := cfg.ObjectSize / int64(len(targets))
		for _, i := range targets {
			d := &disks[i]
			account(d, now)
			if !d.spinning {
				d.spinning = true
				d.spinUps++
				res.SpinUps++
				d.spinJoules += cfg.Disk.SpinUpJoules
				if cfg.Disk.SpinUp > latency {
					latency = cfg.Disk.SpinUp
				}
			}
			xfer := sim.Time(float64(per) / cfg.Disk.Bandwidth)
			d.activeSecs += float64(xfer)
			end := now + cfg.Disk.SpinUp + xfer
			if end > d.busyUntil {
				d.busyUntil = end
			}
		}
		latency += sim.Time(float64(per) / cfg.Disk.Bandwidth)
		latencies = append(latencies, float64(latency))
	}

	// Close out the timeline.
	for i := range disks {
		d := &disks[i]
		if d.spinning && cfg.Duration-d.busyUntil > cfg.SpinDownAfter {
			downAt := d.busyUntil + cfg.SpinDownAfter
			if downAt > d.lastChange && downAt < cfg.Duration {
				account(d, downAt)
				d.spinning = false
			}
		}
		account(d, cfg.Duration)
	}

	var sleepFrac float64
	for i := range disks {
		d := &disks[i]
		res.Joules += d.spinSecs*cfg.Disk.IdleWatts +
			d.activeSecs*(cfg.Disk.ActiveWatts-cfg.Disk.IdleWatts) +
			d.sleepSecs*cfg.Disk.StandbyWatts +
			d.spinJoules
		sleepFrac += d.sleepSecs / float64(cfg.Duration)
	}
	res.DiskSleepFrac = sleepFrac / float64(cfg.Disks)
	res.AvgWatts = res.Joules / float64(cfg.Duration)
	if len(latencies) > 0 {
		s := stats.Summarize(latencies)
		res.MeanLatency = sim.Time(s.Mean)
		res.P99Latency = sim.Time(s.P99)
	}
	return res
}

// AlwaysOnWatts is the power of a conventional array of the same size that
// never spins down (the energy baseline).
func AlwaysOnWatts(cfg Config) float64 {
	return float64(cfg.Disks) * cfg.Disk.IdleWatts
}
