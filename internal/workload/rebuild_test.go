package workload

import (
	"bytes"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func rebuildSpec(shards int) RebuildSpec {
	return RebuildSpec{
		Pods:    4,
		Servers: 12,
		Red:     pfs.Redundancy{K: 4, M: 1, UnitBytes: 256 << 10, ChunkBytes: 64 << 10},
		Faults: failure.OSSFaultSpec{
			MTBF:     30,
			Shape:    1,
			Downtime: 0, // permanent: overlaps accumulate
			Horizon:  4,
			Bursts:   failure.BurstSpec{MTBB: 2, Size: 3},
		},
		Seed:         7,
		Rounds:       4,
		ComputeTime:  sim.Time(0.25),
		WriteBytes:   1 << 20,
		MaxRetries:   3,
		RetryBackoff: sim.Time(5e-3),
		Shards:       shards,
	}
}

func TestRunRebuildShardCountInvariant(t *testing.T) {
	run := func(shards int) (RebuildResult, string) {
		reg := obs.NewRegistry()
		res := RunRebuild(rebuildSpec(shards), reg)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	r1, s1 := run(1)
	r3, s3 := run(3)
	if s1 != s3 {
		t.Fatal("metrics snapshot differs between 1 and 3 shards")
	}
	if r1 != r3 {
		t.Fatalf("results differ across shard counts:\n1: %+v\n3: %+v", r1, r3)
	}
}

func TestRunRebuildStormAccounting(t *testing.T) {
	res := RunRebuild(rebuildSpec(2), obs.NewRegistry())
	if res.Drives != 48 || res.Groups == 0 {
		t.Fatalf("population not realized: %+v", res)
	}
	if res.Crashes == 0 || res.BurstEvents == 0 {
		t.Fatalf("fault schedule never fired: crashes=%d bursts=%d", res.Crashes, res.BurstEvents)
	}
	if res.Rebuild.Started == 0 {
		t.Fatal("no rebuild launched despite crashes")
	}
	if res.Ops == 0 || res.WriteP99 <= 0 {
		t.Fatalf("foreground starved: ops=%d writeP99=%v", res.Ops, res.WriteP99)
	}
	// m=1 under permanent crashes plus size-3 bursts over 4 seconds: the
	// draw at this seed loses groups, and every loss is typed and counted.
	if res.Loss.Groups == 0 || res.PodsWithLoss == 0 {
		t.Fatalf("expected group losses at this seed: %+v", res.Loss)
	}
	if res.GroupLossFrac <= 0 || res.GroupLossFrac > 1 {
		t.Fatalf("loss fraction %v out of range", res.GroupLossFrac)
	}
	wantFrac := float64(res.Loss.Groups) / float64(res.Groups)
	if res.GroupLossFrac != wantFrac {
		t.Fatalf("GroupLossFrac = %v, want %v", res.GroupLossFrac, wantFrac)
	}
}

func TestRunRebuildDataLossOpsTyped(t *testing.T) {
	// A tiny pod where every server but one dies at once: the foreground
	// read after the storm must be dropped as a typed data-loss op, not
	// retried forever and not silently completed.
	spec := rebuildSpec(1)
	spec.Pods = 1
	spec.Servers = 7
	spec.Red = pfs.Redundancy{K: 4, M: 1, UnitBytes: 256 << 10, ChunkBytes: 64 << 10}
	spec.Faults = failure.OSSFaultSpec{
		MTBF:     0.5, // every drive dies almost immediately, permanently
		Shape:    1,
		Downtime: 0,
		Horizon:  60,
	}
	spec.Rounds = 6
	spec.ComputeTime = sim.Time(2)
	res := RunRebuild(spec, nil)
	if res.DataLossOps == 0 {
		t.Fatalf("no foreground op hit typed data loss under total failure: %+v", res)
	}
	if res.Loss.Reads == 0 || res.Loss.Events == 0 {
		t.Fatalf("loss accounting empty: %+v", res.Loss)
	}
}

func TestRunRebuildLSERoutesRepairsThroughGroups(t *testing.T) {
	spec := rebuildSpec(1)
	spec.Pods = 1
	spec.Faults.Bursts = failure.BurstSpec{}
	spec.Faults.MTBF = 1e6 // crash-free: isolate the latent-error path
	spec.LSE = &failure.LSESpec{
		CapacityBytes: 64 << 20,
		MTBC:          0.5,
		Shape:         1,
		TornFraction:  0.25,
		Horizon:       4,
	}
	res := RunRebuild(spec, obs.NewRegistry())
	if res.Ops == 0 {
		t.Fatal("foreground never ran")
	}
	// With checksums forced on, reads over rotten ranges repair through
	// the redundancy groups instead of failing or lying; nothing here
	// should count as data loss.
	if res.DataLossOps != 0 || res.Loss.Events != 0 {
		t.Fatalf("latent errors escalated to loss: %+v", res)
	}
}

func BenchmarkRunRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := rebuildSpec(1)
		spec.Pods = 2
		spec.Rounds = 2
		RunRebuild(spec, nil)
	}
}
