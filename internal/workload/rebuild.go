package workload

import (
	"errors"
	"fmt"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// This file is the rebuild-storm experiment: many independent
// erasure-coded pods — each a pfs.FS with k+m redundancy groups,
// declustered placement, and one drive per OSS — survive a drawn fault
// schedule (independent Weibull crashes plus correlated bursts, and
// optionally latent sector errors) while a foreground client keeps
// checkpointing and reading back. Crashes launch real declustered
// rebuilds that compete with the foreground traffic through the shared
// disk queues; overlapping failures beyond m surface as typed data-loss
// events. The harness reports the population's data-loss probability,
// rebuild behaviour, and the foreground latency quantiles under the
// storm — the trade the paper's petascale reliability argument is about.
// Pods never talk to each other, so the pod population shards
// embarrassingly: the metrics snapshot is byte-identical for any shard
// count.

// RebuildSpec describes one rebuild-storm population run.
type RebuildSpec struct {
	// Pods is the number of independent pods; Servers is the number of
	// object storage servers per pod, each modeled with one drive, so the
	// simulated drive population is Pods * Servers.
	Pods    int
	Servers int

	// Red is each pod's redundancy configuration (k+m, declustering
	// ratio, rebuild sizing). Must be enabled.
	Red pfs.Redundancy

	// Faults is the per-pod fault draw; its Servers and Target fields are
	// overridden per pod. Bursts inside it add correlated multi-drive
	// crashes.
	Faults failure.OSSFaultSpec

	// LSE, when non-nil, arms per-drive latent sector errors (Disks is
	// overridden per pod) and turns on read checksums, so scrub-less
	// detection happens on foreground reads and repairs route through the
	// redundancy groups.
	LSE *failure.LSESpec

	// Seed decorrelates pods: pod p draws with Seed + p*1e6+3 offsets.
	Seed int64

	// Rounds foreground rounds run per pod: ComputeTime of think time,
	// a WriteBytes checkpoint write, then a read-back of the same range.
	Rounds      int
	ComputeTime sim.Time
	WriteBytes  int64

	// MaxRetries and RetryBackoff govern foreground retry-on-failure
	// (exponential backoff, capped at 8x). An op that keeps failing — or
	// hits data loss, which no retry cures — is dropped and counted.
	MaxRetries   int
	RetryBackoff sim.Time

	// Shards is the number of event-queue shards (>= 1); pod p lives
	// whole on shard p % Shards. Snapshots are byte-identical for any
	// value.
	Shards int
}

// Validate reports problems with the spec.
func (s RebuildSpec) Validate() error {
	switch {
	case s.Pods < 1:
		return fmt.Errorf("workload: Pods %d < 1", s.Pods)
	case s.Servers < 1:
		return fmt.Errorf("workload: Servers %d < 1", s.Servers)
	case !s.Red.Enabled():
		return fmt.Errorf("workload: rebuild experiment needs an enabled Redundancy")
	case s.Rounds < 1:
		return fmt.Errorf("workload: Rounds %d < 1", s.Rounds)
	case s.WriteBytes < 1:
		return fmt.Errorf("workload: WriteBytes %d < 1", s.WriteBytes)
	case s.ComputeTime < 0 || s.RetryBackoff < 0:
		return fmt.Errorf("workload: negative time in rebuild spec")
	case s.MaxRetries < 0:
		return fmt.Errorf("workload: MaxRetries %d < 0", s.MaxRetries)
	case s.Shards < 1:
		return fmt.Errorf("workload: Shards %d < 1", s.Shards)
	}
	return s.Red.Validate()
}

// RebuildResult reports one rebuild-storm population run.
type RebuildResult struct {
	// Pods, Servers, Drives, and Groups are the realized totals (Drives
	// = Pods * Servers at one drive per server; Groups sums redundancy
	// groups across pods).
	Pods    int
	Servers int
	Drives  int
	Groups  int

	// Crashes and Recoveries are the fault transitions applied across
	// the population; BurstEvents and BurstCrashes are the correlated
	// share of the drawn schedule.
	Crashes     int64
	Recoveries  int64
	BurstEvents int64
	BurstCrash  int64

	// Rebuild aggregates the declustered-rebuild activity (stats summed,
	// MaxDuration maxed across pods); Loss aggregates data-loss
	// accounting.
	Rebuild pfs.RebuildStats
	Loss    pfs.LossStats

	// PodsWithLoss counts pods that lost at least one group;
	// GroupLossFrac is lost groups over all groups — the measured
	// data-loss probability of the configuration.
	PodsWithLoss  int
	GroupLossFrac float64

	// DegradedReads counts foreground reads served by reconstruction.
	DegradedReads int64

	// Ops counts completed foreground writes+reads; Retries, Dropped,
	// and DataLossOps count the retry traffic, ops abandoned after
	// MaxRetries, and ops abandoned because their group was lost.
	Ops         int64
	Retries     int64
	Dropped     int64
	DataLossOps int64

	// Foreground latency quantiles (seconds) over completed ops,
	// population-wide.
	WriteP50, WriteP99 float64
	ReadP50, ReadP99   float64

	// WallClock is the longest pod's simulated duration.
	WallClock sim.Time
}

// rebuildPod is one pod's harness state; everything here is touched only
// by events on the pod's own shard, so pods run in parallel untouched.
type rebuildPod struct {
	eng *sim.Engine
	fs  *pfs.FS

	burstEvents int64
	burstCrash  int64

	ops, retries, dropped, dataLoss int64
	writeLat, readLat               []float64
}

// RunRebuild executes the rebuild-storm population. The registry
// snapshot is byte-identical for any spec.Shards >= 1 and any
// GOMAXPROCS; pods are fully independent, so the cluster runs with
// unbounded lookahead.
func RunRebuild(spec RebuildSpec, reg *obs.Registry) RebuildResult {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	cl := sim.NewCluster(spec.Shards, sim.Infinity)
	cl.Instrument(reg, nil)

	pods := make([]*rebuildPod, spec.Pods)
	result := RebuildResult{Pods: spec.Pods, Servers: spec.Servers, Drives: spec.Pods * spec.Servers}
	for p := range pods {
		cfg := pfs.PanFSLike(spec.Servers)
		cfg.DisksPerServer = 1 // one OSS = one drive in this experiment
		cfg.Redundancy = spec.Red
		if spec.Pods > 1 {
			cfg.MetricPrefix = fmt.Sprintf("pod%03d.", p)
		}
		if spec.LSE != nil {
			cfg.Checksums = true
		}
		eng := cl.Shard(p % spec.Shards)
		pod := &rebuildPod{eng: eng, fs: pfs.New(eng, cfg)}
		seed := spec.Seed + int64(p)*1_000_003

		fspec := spec.Faults
		fspec.Servers = spec.Servers
		fspec.Target = nil
		plan, bs := failure.DrawOSSFaultsDetailed(fspec, seed)
		pod.burstEvents = int64(bs.Bursts)
		pod.burstCrash = int64(bs.Crashes)
		if err := pod.fs.InjectFaults(plan); err != nil {
			panic(err)
		}
		if spec.LSE != nil {
			lspec := *spec.LSE
			lspec.Disks = spec.Servers
			if err := pod.fs.InjectCorruption(failure.DrawLSE(lspec, seed^0x15e)); err != nil {
				panic(err)
			}
		}
		pods[p] = pod
		result.Groups += pod.fs.RedundancyGroups()
		startRebuildPod(pod, spec)
	}

	result.WallClock = cl.Run()

	var lost, groups int64
	for _, pod := range pods {
		fst := pod.fs.FaultStats()
		result.Crashes += fst.Crashes
		result.Recoveries += fst.Recoveries
		result.DegradedReads += fst.DegradedReads
		rst := pod.fs.RebuildStats()
		result.Rebuild.Started += rst.Started
		result.Rebuild.Completed += rst.Completed
		result.Rebuild.Aborted += rst.Aborted
		result.Rebuild.GroupsRebuilt += rst.GroupsRebuilt
		result.Rebuild.AbandonedGroups += rst.AbandonedGroups
		result.Rebuild.Bytes += rst.Bytes
		result.Rebuild.Busy += rst.Busy
		if rst.MaxDuration > result.Rebuild.MaxDuration {
			result.Rebuild.MaxDuration = rst.MaxDuration
		}
		ls := pod.fs.LossStats()
		result.Loss.Events += ls.Events
		result.Loss.Groups += ls.Groups
		result.Loss.Bytes += ls.Bytes
		result.Loss.Reads += ls.Reads
		if ls.Groups > 0 {
			result.PodsWithLoss++
		}
		lost += ls.Groups
		groups += int64(pod.fs.RedundancyGroups())
		result.BurstEvents += pod.burstEvents
		result.BurstCrash += pod.burstCrash
		result.Ops += pod.ops
		result.Retries += pod.retries
		result.Dropped += pod.dropped
		result.DataLossOps += pod.dataLoss
	}
	if groups > 0 {
		result.GroupLossFrac = float64(lost) / float64(groups)
	}
	// Pod-order aggregation keeps the quantiles shard-count-independent.
	var writes, reads []float64
	for _, pod := range pods {
		writes = append(writes, pod.writeLat...)
		reads = append(reads, pod.readLat...)
	}
	result.WriteP50 = obs.Percentile(writes, 0.50)
	result.WriteP99 = obs.Percentile(writes, 0.99)
	result.ReadP50 = obs.Percentile(reads, 0.50)
	result.ReadP99 = obs.Percentile(reads, 0.99)
	return result
}

// startRebuildPod chains one pod's foreground rounds: compute, write the
// checkpoint range, read it back, repeat — retrying failed ops with
// exponential backoff and dropping (counted) what cannot complete.
func startRebuildPod(pod *rebuildPod, spec RebuildSpec) {
	client := pod.fs.NewClient(0)
	maxBackoff := spec.RetryBackoff * 8

	// attempt runs op with the retry loop; done receives whether it
	// completed. Latency spans all attempts and their backoffs.
	attempt := func(op func(done func(error)), lat *[]float64, done func(ok bool)) {
		start := pod.eng.Now()
		tries := 0
		backoff := spec.RetryBackoff
		var try func()
		try = func() {
			op(func(err error) {
				if err == nil {
					*lat = append(*lat, float64(pod.eng.Now()-start))
					pod.ops++
					done(true)
					return
				}
				if errors.Is(err, pfs.ErrDataLoss) {
					// No retry resurrects a lost group.
					pod.dataLoss++
					done(false)
					return
				}
				if tries < spec.MaxRetries {
					tries++
					pod.retries++
					d := backoff
					if backoff *= 2; backoff > maxBackoff {
						backoff = maxBackoff
					}
					pod.eng.Schedule(d, try)
					return
				}
				pod.dropped++
				done(false)
			})
		}
		try()
	}

	client.Create("/ckpt", func(f *pfs.File) {
		round := 0
		var next func()
		next = func() {
			if round == spec.Rounds {
				return
			}
			round++
			run := func() {
				attempt(func(done func(error)) {
					client.WriteErr(f, 0, spec.WriteBytes, done)
				}, &pod.writeLat, func(bool) {
					// Read back even after a dropped write — a restarting
					// application probes its checkpoint regardless, and
					// that is where lost groups surface as ErrDataLoss.
					attempt(func(done func(error)) {
						client.ReadErr(f, 0, spec.WriteBytes, done)
					}, &pod.readLat, func(bool) { next() })
				})
			}
			if spec.ComputeTime > 0 {
				pod.eng.Schedule(spec.ComputeTime, run)
			} else {
				run()
			}
		}
		next()
	})
}
