package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bb"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// bbFaultSpec is the checkpoint-under-burst-buffer shape the bb
// experiment sweeps: N-N rounds against a write-back tier of two nodes.
func bbFaultSpec() (pfs.Config, FaultSpec) {
	cfg := pfs.PanFSLike(4)
	bcfg := bb.DefaultConfig(2)
	return cfg, FaultSpec{
		Spec: Spec{
			Ranks:        4,
			BytesPerRank: 1 << 20,
			RecordSize:   1 << 18,
			Pattern:      NN,
		},
		Checkpoints: 3,
		ComputeTime: sim.Time(0.5),
		BB:          &bcfg,
	}
}

// TestBufferedCheckpointHidesLatencyAndDrains: the tentpole behaviour.
// Write-back acks must shrink the application-visible checkpoint time
// well below the direct path, while the drain still delivers every
// byte to the striped FS before the run ends.
func TestBufferedCheckpointHidesLatencyAndDrains(t *testing.T) {
	cfg, fspec := bbFaultSpec()
	buffered := RunFaults(cfg, fspec, nil, nil)

	direct := fspec
	direct.BB = nil
	base := RunFaults(cfg, direct, nil, nil)

	if buffered.Elapsed <= 0 || base.Elapsed <= 0 {
		t.Fatalf("runs did not complete: buffered=%v direct=%v", buffered.Elapsed, base.Elapsed)
	}
	if buffered.Elapsed >= base.Elapsed/2 {
		t.Fatalf("buffered checkpoint %v not measurably below direct %v", buffered.Elapsed, base.Elapsed)
	}
	want := buffered.TotalBytes
	if buffered.BB.AbsorbedBytes != want {
		t.Fatalf("absorbed %d bytes, want %d", buffered.BB.AbsorbedBytes, want)
	}
	if buffered.BB.DrainedBytes != want {
		t.Fatalf("drained %d of %d bytes", buffered.BB.DrainedBytes, want)
	}
	if buffered.BB.LostBytes != 0 || buffered.BB.TornDrains != 0 {
		t.Fatalf("fault-free run lost data: %+v", buffered.BB)
	}
	if buffered.DrainedAt < buffered.WallClock {
		t.Fatalf("DrainedAt %v before WallClock %v", buffered.DrainedAt, buffered.WallClock)
	}
	if buffered.Utilization <= base.Utilization {
		t.Fatalf("latency hiding did not raise utilization: %v vs %v", buffered.Utilization, base.Utilization)
	}
}

// TestBufferSaturationStallsCheckpoint: shrink the buffer below one
// round and slow the drain so the race is lost — backpressure must
// surface and the hidden latency must come back.
func TestBufferSaturationStallsCheckpoint(t *testing.T) {
	cfg, fspec := bbFaultSpec()
	small := *fspec.BB
	small.Flash.UserPages = 256 // 1 MiB per node vs 2 MiB per round
	small.DrainBandwidth = 5e6
	sat := fspec
	sat.BB = &small
	sat.ComputeTime = sim.Time(1e-3) // rounds arrive back-to-back

	roomy := RunFaults(cfg, fspec, nil, nil)
	tight := RunFaults(cfg, sat, nil, nil)
	if tight.BB.Stalls == 0 || tight.BB.StallTime <= 0 {
		t.Fatalf("undersized buffer never stalled: %+v", tight.BB)
	}
	if tight.BB.PeakOccupancy < 0.9 {
		t.Fatalf("peak occupancy %v, want saturation", tight.BB.PeakOccupancy)
	}
	if tight.Elapsed <= roomy.Elapsed {
		t.Fatalf("saturated checkpoint %v not slower than roomy %v", tight.Elapsed, roomy.Elapsed)
	}
}

// TestBufferCrashLosesDirtyDataUnderWorkload drives a mixed plan — an
// OSS crash and a buffer-node crash — through the single fan-out sink:
// both layers must see their own targets and the write-back dirty loss
// must surface in the result.
func TestBufferCrashLosesDirtyDataUnderWorkload(t *testing.T) {
	cfg, fspec := bbFaultSpec()
	bcfg := *fspec.BB
	bcfg.DrainBandwidth = 2e6 // slow drain keeps data dirty when the node dies
	fspec.BB = &bcfg
	fspec.ComputeTime = sim.Time(0.1)
	fspec.MaxRetries = 4
	fspec.RetryBackoff = sim.Time(2e-3)
	fspec.Plan = sim.NewFaultPlan().
		Add(bb.NodeTarget(0), 0.15, 0.2).
		Add(pfs.OSSTarget(1), 0.3, 0.1)

	reg := obs.NewRegistry()
	res := RunFaults(cfg, fspec, reg, nil)
	if res.BB.Crashes != 1 {
		t.Fatalf("bb crashes = %d, want 1", res.BB.Crashes)
	}
	if res.Faults.Crashes != 1 {
		t.Fatalf("oss crashes = %d, want 1", res.Faults.Crashes)
	}
	if res.BB.LostBytes == 0 {
		t.Fatalf("write-back crash lost nothing: %+v", res.BB)
	}
	s := reg.Snapshot()
	if got := s.Counters["sim.faults.injected"]; got != 2 {
		t.Fatalf("sim.faults.injected = %d, want 2 (plan scheduled once through the fan-out)", got)
	}
	if s.Counters["bb.faults.lost_bytes"] != res.BB.LostBytes {
		t.Fatalf("bb.faults.lost_bytes = %d, want %d", s.Counters["bb.faults.lost_bytes"], res.BB.LostBytes)
	}
}

// TestBufferedRunShardInvariance is the golden determinism requirement
// for the bb experiment: the same buffered, fault-injected run on a
// 1-shard and a 4-shard cluster serializes byte-identical snapshots and
// traces.
func TestBufferedRunShardInvariance(t *testing.T) {
	run := func(shards int) ([]byte, []byte) {
		cfg, fspec := bbFaultSpec()
		fspec.Shards = shards
		fspec.MaxRetries = 4
		fspec.RetryBackoff = sim.Time(2e-3)
		fspec.Plan = sim.NewFaultPlan().
			Add(bb.NodeTarget(1), 0.2, 0.15).
			Add(pfs.OSSTarget(0), 0.4, 0.1)
		reg := obs.NewRegistry()
		tr := obs.NewTracer()
		RunFaults(cfg, fspec, reg, tr)
		var m, tb bytes.Buffer
		if err := reg.WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(&tb); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), tb.Bytes()
	}
	m1, t1 := run(1)
	m4, t4 := run(4)
	if !bytes.Equal(m1, m4) {
		t.Fatalf("bb snapshots diverge across shard counts:\n%s\nvs\n%s", firstDiff(m1, m4), "")
	}
	if !bytes.Equal(t1, t4) {
		t.Fatal("bb traces diverge across shard counts")
	}
}

// TestDisabledBufferRegistersNothing is the zero-cost contract for this
// layer: a BB-nil run must not register a single bb.* instrument (its
// byte-identity to the pre-tier path is pinned by the existing fault
// and golden snapshot tests).
func TestDisabledBufferRegistersNothing(t *testing.T) {
	cfg, fspec := goldenFaultSpec()
	reg := obs.NewRegistry()
	RunFaults(cfg, fspec, reg, nil)
	s := reg.Snapshot()
	for name := range s.Counters {
		if strings.HasPrefix(name, "bb.") {
			t.Fatalf("BB-nil run registered %q", name)
		}
	}
	for name := range s.Gauges {
		if strings.HasPrefix(name, "bb.") {
			t.Fatalf("BB-nil run registered %q", name)
		}
	}
}
