package workload

import (
	"bytes"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// goldenFaultSpec is a small fault-injected run: N-N checkpoints so the
// pattern itself is healthy, with servers crashing and recovering under
// it.
func goldenFaultSpec() (pfs.Config, FaultSpec) {
	cfg := pfs.PanFSLike(4)
	cfg.FailTimeout = sim.Time(5e-3)
	cfg.LeaseExpiry = sim.Time(20e-3)
	cfg.RebuildTime = sim.Time(0.2)
	plan := failure.DrawOSSFaults(failure.OSSFaultSpec{
		Servers:  4,
		MTBF:     0.4,
		Shape:    1,
		Downtime: 0.1,
		Horizon:  5,
	}, 1234)
	return cfg, FaultSpec{
		Spec: Spec{
			Ranks:        4,
			BytesPerRank: 1 << 20,
			RecordSize:   1 << 18,
			Pattern:      NN,
		},
		Checkpoints:  3,
		ComputeTime:  sim.Time(0.5),
		Plan:         plan,
		MaxRetries:   4,
		RetryBackoff: sim.Time(2e-3),
		MaxBackoff:   sim.Time(50e-3),
	}
}

// TestSameSeedFaultRunsProduceIdenticalMetrics is the fault-injected
// golden determinism test: two runs of the same seeded plan serialize to
// byte-identical metrics snapshots and traces.
func TestSameSeedFaultRunsProduceIdenticalMetrics(t *testing.T) {
	run := func() ([]byte, []byte) {
		cfg, fspec := goldenFaultSpec()
		reg := obs.NewRegistry()
		tr := obs.NewTracer()
		RunFaults(cfg, fspec, reg, tr)
		var m, tb bytes.Buffer
		if err := reg.WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(&tb); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), tb.Bytes()
	}
	m1, t1 := run()
	m2, t2 := run()
	if !bytes.Equal(m1, m2) {
		t.Fatalf("same-seed fault-run metrics snapshots differ:\n%s\nvs\n%s", m1, m2)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same-seed fault-run trace files differ")
	}
}

// TestNoFaultRunMatchesRunProgramsProbed is the zero-cost regression: a
// RunFaults invocation with no plan and no retries must produce the same
// metrics snapshot as RunProgramsProbed issuing the identical phase —
// the fault layer's presence may not perturb a single event.
func TestNoFaultRunMatchesRunProgramsProbed(t *testing.T) {
	cfg, spec := goldenSpec()
	snapshot := func(run func(reg *obs.Registry)) []byte {
		reg := obs.NewRegistry()
		run(reg)
		var m bytes.Buffer
		if err := reg.WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		return m.Bytes()
	}
	base := snapshot(func(reg *obs.Registry) {
		progs := make([]Program, spec.Ranks)
		for r := 0; r < spec.Ranks; r++ {
			progs[r] = Program{Creates: filesFor(spec, r), Ops: rankOps(spec, cfg.StripeUnit, r)}
		}
		RunProgramsProbed(cfg, progs, reg, nil)
	})
	faultless := snapshot(func(reg *obs.Registry) {
		RunFaults(cfg, FaultSpec{Spec: spec, Checkpoints: 1}, reg, nil)
	})
	if !bytes.Equal(base, faultless) {
		t.Fatalf("disabled fault layer perturbed the run:\n%s\nvs\n%s", base, faultless)
	}
}

// TestFaultRunCompletesAndAccounts exercises the full stack: injected
// crashes must surface in the metrics, the run must complete despite
// them, and the slowdown must be application-visible.
func TestFaultRunCompletesAndAccounts(t *testing.T) {
	cfg, fspec := goldenFaultSpec()
	reg := obs.NewRegistry()
	res := RunFaults(cfg, fspec, reg, nil)
	if res.WallClock <= 0 || res.Elapsed <= 0 {
		t.Fatalf("fault run did not complete: %+v", res)
	}
	if res.Faults.Crashes == 0 {
		t.Fatal("plan injected no crashes")
	}
	s := reg.Snapshot()
	if s.Counters["sim.faults.injected"] != int64(fspec.Plan.Len()) {
		t.Fatalf("sim.faults.injected = %d, want %d", s.Counters["sim.faults.injected"], fspec.Plan.Len())
	}
	if s.Counters["pfs.faults.crashes"] == 0 {
		t.Fatal("no crashes visible in metrics")
	}
	if res.Retries == 0 {
		t.Fatal("no retries under sustained faults")
	}
	if s.Counters["workload.ckpt.retries"] != res.Retries {
		t.Fatalf("retry counter %d != result %d", s.Counters["workload.ckpt.retries"], res.Retries)
	}

	// The same workload without faults must be faster and have full
	// utilization headroom.
	clean := fspec
	clean.Plan = nil
	cleanRes := RunFaults(cfg, clean, nil, nil)
	if cleanRes.Elapsed >= res.Elapsed {
		t.Fatalf("faults did not slow checkpoints: clean %v vs faulty %v", cleanRes.Elapsed, res.Elapsed)
	}
	if cleanRes.Utilization <= res.Utilization {
		t.Fatalf("faults did not cost utilization: clean %v vs faulty %v", cleanRes.Utilization, res.Utilization)
	}
}

// TestPermanentTotalFailureStillTerminates drops every server forever
// mid-run: retries exhaust, ops are dropped, and the run still ends.
func TestPermanentTotalFailureStillTerminates(t *testing.T) {
	cfg := pfs.PanFSLike(2)
	cfg.FailTimeout = sim.Time(1e-3)
	plan := sim.NewFaultPlan().
		Add(pfs.OSSTarget(0), sim.Time(1e-3), 0).
		Add(pfs.OSSTarget(1), sim.Time(1e-3), 0)
	res := RunFaults(cfg, FaultSpec{
		Spec:         Spec{Ranks: 2, BytesPerRank: 1 << 20, RecordSize: 1 << 18, Pattern: NN},
		Checkpoints:  2,
		MaxRetries:   2,
		RetryBackoff: sim.Time(1e-3),
		Plan:         plan,
	}, nil, nil)
	if res.DroppedOps == 0 {
		t.Fatal("total permanent failure dropped no ops")
	}
	if res.WallClock <= 0 {
		t.Fatal("run did not terminate")
	}
}

func TestFaultSpecValidation(t *testing.T) {
	_, fspec := goldenFaultSpec()
	bad := fspec
	bad.Checkpoints = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid fault spec did not panic")
		}
	}()
	RunFaults(pfs.PanFSLike(2), bad, nil, nil)
}
