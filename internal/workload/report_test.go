package workload

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/sim"
)

// analyticsRun executes a fault-injected checkpoint workload with the
// full analytics configuration armed (op timers plus sim-time series)
// and returns the rendered report and time-series CSV bytes.
func analyticsRun(t *testing.T) (report, csv []byte) {
	t.Helper()
	cfg, spec := goldenSpec()
	cfg.FailTimeout = sim.Time(5e-3)
	cfg.LeaseExpiry = sim.Time(20e-3)
	cfg.RebuildTime = sim.Time(0.25)
	plan := failure.DrawOSSFaults(failure.OSSFaultSpec{
		Servers:  cfg.NumServers,
		MTBF:     2,
		Shape:    1,
		Downtime: 0.1,
		Horizon:  10,
	}, 4242)
	reg := obs.NewRegistry()
	reg.EnableOpTimers()
	reg.EnableTimeSeries(0.01)
	RunFaults(cfg, FaultSpec{
		Spec:         spec,
		Checkpoints:  2,
		ComputeTime:  sim.Time(0.2),
		Plan:         plan,
		MaxRetries:   6,
		RetryBackoff: sim.Time(5e-3),
		MaxBackoff:   sim.Time(0.1),
	}, reg, nil)
	var rep, ts bytes.Buffer
	if err := obs.WriteReport(&rep, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSeriesCSV(&ts); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), ts.Bytes()
}

// TestReportDeterministicAcrossRunsAndGOMAXPROCS is the analytics
// determinism golden test: the rendered report and time-series CSV must
// be byte-identical across independent runs and across GOMAXPROCS
// settings — simulated latency analytics may depend only on the event
// trajectory, never on host scheduling.
func TestReportDeterministicAcrossRunsAndGOMAXPROCS(t *testing.T) {
	rep1, csv1 := analyticsRun(t)
	rep2, csv2 := analyticsRun(t)
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("same-seed reports differ:\n%s\nvs\n%s", rep1, rep2)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("same-seed time-series CSVs differ")
	}

	prev := runtime.GOMAXPROCS(1)
	repSerial, csvSerial := analyticsRun(t)
	runtime.GOMAXPROCS(4)
	repWide, csvWide := analyticsRun(t)
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(rep1, repSerial) || !bytes.Equal(repSerial, repWide) {
		t.Fatal("report bytes depend on GOMAXPROCS")
	}
	if !bytes.Equal(csv1, csvSerial) || !bytes.Equal(csvSerial, csvWide) {
		t.Fatal("time-series CSV bytes depend on GOMAXPROCS")
	}

	// The report must carry real content, not just section headers.
	for _, want := range []string{
		"pfs.write.latency_s",
		"== Stage attribution",
		"== Top bottlenecks",
		"== Timelines",
		"pfs.ops.inflight",
	} {
		if !bytes.Contains(rep1, []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, rep1)
		}
	}
	if !bytes.HasPrefix(csv1, []byte("t_s,")) || bytes.Count(csv1, []byte("\n")) < 3 {
		t.Fatalf("time-series CSV suspiciously small:\n%s", csv1)
	}
}

// TestAnalyticsRetriesChargeBackoff checks the per-logical-op timer
// survives the workload harness's retry loop: a run that retried at
// least once must attribute backoff seconds.
func TestAnalyticsRetriesChargeBackoff(t *testing.T) {
	cfg, spec := goldenSpec()
	cfg.FailTimeout = sim.Time(5e-3)
	cfg.LeaseExpiry = sim.Time(20e-3)
	cfg.RebuildTime = sim.Time(0.25)
	plan := failure.DrawOSSFaults(failure.OSSFaultSpec{
		Servers: cfg.NumServers, MTBF: 1, Shape: 1, Downtime: 0.05, Horizon: 10,
	}, 7)
	reg := obs.NewRegistry()
	reg.EnableOpTimers()
	res := RunFaults(cfg, FaultSpec{
		Spec: spec, Checkpoints: 2, ComputeTime: sim.Time(0.2), Plan: plan,
		MaxRetries: 6, RetryBackoff: sim.Time(5e-3), MaxBackoff: sim.Time(0.1),
	}, reg, nil)
	if res.Retries == 0 {
		t.Skip("fault draw produced no retries; nothing to attribute")
	}
	if q := reg.Snapshot().Quantiles["pfs.write.stage.backoff_s"]; q.Sum <= 0 {
		t.Fatalf("run retried %d times but backoff stage sum = %v", res.Retries, q.Sum)
	}
}

// TestAnalyticsOffMatchesPlainFaultRun pins the zero-perturbation
// contract on the fault path: arming analytics must not change the
// simulated outcome, and leaving them off must not change the metrics
// a plain probed run records.
func TestAnalyticsOffMatchesPlainFaultRun(t *testing.T) {
	cfg, spec := goldenSpec()
	run := func(arm bool) (FaultResult, []byte) {
		reg := obs.NewRegistry()
		if arm {
			reg.EnableOpTimers()
			reg.EnableTimeSeries(0.01)
		}
		res := RunFaults(cfg, FaultSpec{Spec: spec, Checkpoints: 2, ComputeTime: sim.Time(0.1)}, reg, nil)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	plain, _ := run(false)
	armed, _ := run(true)
	if plain.Elapsed != armed.Elapsed || plain.Utilization != armed.Utilization {
		t.Fatalf("arming analytics changed the simulation: %v/%v vs %v/%v",
			plain.Elapsed, plain.Utilization, armed.Elapsed, armed.Utilization)
	}
}
