package workload

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// integrityFixture is a corruption-heavy run: events land well inside the
// written region (capacity bound below bytes-per-server) and all arrive
// during the hour-long dwell before read-back.
func integrityFixture(checksums bool, scrub sim.Time) (pfs.Config, IntegritySpec) {
	cfg := pfs.PanFSLike(4)
	cfg.Checksums = checksums
	events := failure.DrawLSE(failure.LSESpec{
		Disks:         4,
		CapacityBytes: 1 << 17,
		MTBC:          200,
		Shape:         1.0,
		TornFraction:  0.2,
		Horizon:       3600,
	}, 42)
	return cfg, IntegritySpec{
		Spec: Spec{
			Ranks:        4,
			BytesPerRank: 1 << 18,
			RecordSize:   4096,
			Pattern:      N1Strided,
		},
		Events:        events,
		Expose:        3600,
		ScrubInterval: scrub,
	}
}

// TestIntegrityChecksumsFlagOrRepairEverything is the acceptance pin at
// the workload level: with checksums on, every read overlapping injected
// corruption is either transparently repaired or flagged — nothing rides
// along silently. The counters must balance exactly.
func TestIntegrityChecksumsFlagOrRepairEverything(t *testing.T) {
	cfg, spec := integrityFixture(true, 0)
	res := RunIntegrity(cfg, spec, nil, nil)
	st := res.Stats
	if st.Injected == 0 || st.Detected == 0 {
		t.Fatalf("fixture injected/detected nothing: %+v", st)
	}
	if st.SilentReads != 0 {
		t.Fatalf("%d corrupt reads reached the application un-flagged", st.SilentReads)
	}
	if st.Detected != st.Repaired+st.Unrecoverable {
		t.Fatalf("detection ledger unbalanced: %+v", st)
	}
	// All four servers stayed up, so parity reconstruction always had a
	// surviving neighbour: nothing unrecoverable, nothing flagged.
	if st.Unrecoverable != 0 || res.FlaggedReads != 0 {
		t.Fatalf("healthy cluster had unrecoverable units: %+v flagged=%d", st, res.FlaggedReads)
	}
}

// TestIntegrityScrubShrinksExposure compares checksums-off runs with and
// without background scrubbing: the scrubbed run must deliver strictly
// less silent corruption to the application, because only events arriving
// after the last scrub pass are still rotten at read-back.
func TestIntegrityScrubShrinksExposure(t *testing.T) {
	cfg, bare := integrityFixture(false, 0)
	cfgS, scrubbed := integrityFixture(false, 600)
	resBare := RunIntegrity(cfg, bare, nil, nil)
	resScrub := RunIntegrity(cfgS, scrubbed, nil, nil)

	if resBare.Stats.SilentReads == 0 {
		t.Fatalf("unscrubbed fixture produced no silent reads: %+v", resBare.Stats)
	}
	if resScrub.ScrubPasses == 0 {
		t.Fatal("scrubbed run completed no scrub passes")
	}
	if resScrub.Stats.SilentReads >= resBare.Stats.SilentReads {
		t.Fatalf("scrubbing did not shrink silent reads: %d (scrubbed) vs %d (bare)",
			resScrub.Stats.SilentReads, resBare.Stats.SilentReads)
	}
	if resScrub.UnrepairedAtRead >= resBare.UnrepairedAtRead {
		t.Fatalf("scrubbing did not shrink exposure: %d vs %d unrepaired at read",
			resScrub.UnrepairedAtRead, resBare.UnrepairedAtRead)
	}
	// Scrubs always verify, even with read-path checksums off.
	if resScrub.Stats.Repaired == 0 {
		t.Fatalf("scrub passes repaired nothing: %+v", resScrub.Stats)
	}
}

// TestRunIntegrityDeterministic pins seed determinism end to end: two
// identical runs must agree on every result field and serialize
// byte-identical metrics snapshots.
func TestRunIntegrityDeterministic(t *testing.T) {
	run := func() (IntegrityResult, []byte) {
		cfg, spec := integrityFixture(true, 600)
		reg := obs.NewRegistry()
		res := RunIntegrity(cfg, spec, reg, nil)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	resA, snapA := run()
	resB, snapB := run()
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("results diverged:\nA: %+v\nB: %+v", resA, resB)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("metrics snapshots diverged between same-seed runs")
	}
}
