package workload

import (
	"testing"

	"repro/internal/pfs"
)

func cfg() pfs.Config { return pfs.PanFSLike(4) }

func TestSpecValidate(t *testing.T) {
	good := Spec{Ranks: 2, BytesPerRank: 100, RecordSize: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{Ranks: 0, BytesPerRank: 1, RecordSize: 1},
		{Ranks: 1, BytesPerRank: 0, RecordSize: 1},
		{Ranks: 1, BytesPerRank: 1, RecordSize: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v should be invalid", bad)
		}
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		N1Strided:   "N-1 strided",
		N1Segmented: "N-1 segmented",
		NN:          "N-N",
		PLFSPattern: "PLFS",
		Pattern(9):  "Pattern(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestRankOpsCoverExactBytes(t *testing.T) {
	spec := Spec{Ranks: 4, BytesPerRank: 1 << 20, RecordSize: 47008}
	unit := int64(64 << 10)
	for _, pat := range []Pattern{N1Strided, N1Segmented, NN} {
		spec.Pattern = pat
		for rank := 0; rank < spec.Ranks; rank++ {
			var total int64
			for _, o := range rankOps(spec, unit, rank) {
				total += o.Size
			}
			// Strided covers whole records only; others cover the region.
			wantMin := spec.BytesPerRank - spec.RecordSize
			if total < wantMin || total > spec.BytesPerRank+spec.RecordSize {
				t.Fatalf("%v rank %d ops cover %d bytes, want ~%d", pat, rank, total, spec.BytesPerRank)
			}
		}
	}
}

func TestStridedOpsInterleaveAcrossRanks(t *testing.T) {
	spec := Spec{Ranks: 4, BytesPerRank: 4 * 100, RecordSize: 100, Pattern: N1Strided}
	r0 := rankOps(spec, 1<<16, 0)
	r1 := rankOps(spec, 1<<16, 1)
	if r0[0].Off != 0 || r1[0].Off != 100 {
		t.Fatalf("first records at %d and %d, want 0 and 100", r0[0].Off, r1[0].Off)
	}
	if r0[1].Off != 400 {
		t.Fatalf("rank 0 second record at %d, want stride 400", r0[1].Off)
	}
}

func TestChunkedOpsAreStripeAligned(t *testing.T) {
	unit := int64(64 << 10)
	ops := appendChunked(nil, "/f", 1000, 3*unit, unit)
	// First op heals alignment; middle ops are full units.
	if ops[0].Off != 1000 || ops[0].Size != unit-1000 {
		t.Fatalf("head op = %+v", ops[0])
	}
	for _, o := range ops[1 : len(ops)-1] {
		if o.Off%unit != 0 || o.Size != unit {
			t.Fatalf("middle op %+v not aligned full unit", o)
		}
	}
}

func TestPLFSOpsSplitDataAndIndex(t *testing.T) {
	spec := Spec{Ranks: 2, BytesPerRank: 1 << 20, RecordSize: 4096,
		Pattern: PLFSPattern, PLFSHostdirs: 4, PLFSIndexFlushEvery: 64}
	ops := rankOps(spec, 64<<10, 1)
	var dataBytes, idxBytes int64
	for _, o := range ops {
		switch {
		case o.File == "/container/hostdir.1/data.1":
			dataBytes += o.Size
		case o.File == "/container/hostdir.1/index.1":
			idxBytes += o.Size
		default:
			t.Fatalf("unexpected file %q", o.File)
		}
	}
	if dataBytes != spec.BytesPerRank {
		t.Fatalf("data bytes %d, want %d", dataBytes, spec.BytesPerRank)
	}
	nRecs := spec.BytesPerRank / spec.RecordSize
	if idxBytes != nRecs*indexEntryBytes {
		t.Fatalf("index bytes %d, want %d", idxBytes, nRecs*indexEntryBytes)
	}
}

func TestRunProducesPositiveBandwidth(t *testing.T) {
	res := Run(cfg(), Spec{Ranks: 4, BytesPerRank: 1 << 20, RecordSize: 47008, Pattern: N1Strided})
	if res.Elapsed <= 0 || res.Bandwidth <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.TotalBytes != 4<<20 {
		t.Fatalf("TotalBytes = %d, want %d", res.TotalBytes, 4<<20)
	}
	if res.MetadataOps < 1 {
		t.Fatalf("MetadataOps = %d, want >= 1", res.MetadataOps)
	}
}

func TestPLFSBeatsStridedByOrderOfMagnitude(t *testing.T) {
	// The headline Figure 8 claim: order-of-magnitude speedup for small
	// unaligned strided N-1 checkpoints, on every file system preset.
	for _, c := range pfs.AllPresets(8) {
		_, _, ratio := Speedup(c, 16, 4<<20, 47008)
		if ratio < 5 {
			t.Errorf("%s: PLFS speedup = %.1fx, want >= 5x", c.Name, ratio)
		}
	}
}

func TestPLFSWithinFactorOfNN(t *testing.T) {
	// PLFS turns N-1 into N-N plus index overhead; it should land within a
	// small factor of native N-N bandwidth.
	c := cfg()
	nn := Run(c, Spec{Ranks: 8, BytesPerRank: 4 << 20, RecordSize: 47008, Pattern: NN})
	pl := Run(c, Spec{Ranks: 8, BytesPerRank: 4 << 20, RecordSize: 47008,
		Pattern: PLFSPattern, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64})
	if pl.Bandwidth < nn.Bandwidth/3 {
		t.Fatalf("PLFS %.0f B/s should be within 3x of N-N %.0f B/s", pl.Bandwidth, nn.Bandwidth)
	}
}

func TestSegmentedBetweenStridedAndNN(t *testing.T) {
	c := cfg()
	strided := Run(c, Spec{Ranks: 8, BytesPerRank: 2 << 20, RecordSize: 47008, Pattern: N1Strided})
	seg := Run(c, Spec{Ranks: 8, BytesPerRank: 2 << 20, RecordSize: 47008, Pattern: N1Segmented})
	if seg.Bandwidth <= strided.Bandwidth {
		t.Fatalf("segmented %.0f should beat strided %.0f", seg.Bandwidth, strided.Bandwidth)
	}
}

func TestWeakScalingChekpointTimeGrows(t *testing.T) {
	// Figure 2's shape: with per-rank state fixed, N-1 strided checkpoint
	// time grows with rank count (the storage system is the bottleneck).
	c := cfg()
	t4 := Run(c, Spec{Ranks: 4, BytesPerRank: 1 << 20, RecordSize: 47008, Pattern: N1Strided}).Elapsed
	t16 := Run(c, Spec{Ranks: 16, BytesPerRank: 1 << 20, RecordSize: 47008, Pattern: N1Strided}).Elapsed
	if t16 <= t4 {
		t.Fatalf("weak scaling time should grow: 4 ranks %v, 16 ranks %v", t4, t16)
	}
}

func TestRunDeterministic(t *testing.T) {
	s := Spec{Ranks: 4, BytesPerRank: 1 << 20, RecordSize: 4096, Pattern: N1Strided}
	a := Run(cfg(), s)
	b := Run(cfg(), s)
	if a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with invalid spec did not panic")
		}
	}()
	Run(cfg(), Spec{})
}

func TestCompressionSpeedsUpIOBoundCheckpoint(t *testing.T) {
	// The PLFS follow-on: compressing checkpoints on the fly trades cheap
	// CPU for scarce storage bandwidth.
	base := Spec{Ranks: 16, BytesPerRank: 8 << 20, RecordSize: 47008,
		Pattern: PLFSPattern, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64}
	comp := base
	comp.CompressRatio = 2
	comp.CompressBW = 500e6
	plain := Run(cfg(), base)
	squeezed := Run(cfg(), comp)
	if squeezed.Elapsed >= plain.Elapsed {
		t.Fatalf("2x compression elapsed %v should beat uncompressed %v",
			squeezed.Elapsed, plain.Elapsed)
	}
}

func TestCompressionWithSlowCPUCanLose(t *testing.T) {
	// If compression throughput is below the achievable I/O bandwidth per
	// rank, the CPU becomes the new bottleneck.
	base := Spec{Ranks: 4, BytesPerRank: 8 << 20, RecordSize: 47008,
		Pattern: PLFSPattern, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64}
	slow := base
	slow.CompressRatio = 2
	slow.CompressBW = 5e6 // 5 MB/s compressor
	plain := Run(cfg(), base)
	choked := Run(cfg(), slow)
	if choked.Elapsed <= plain.Elapsed {
		t.Fatalf("a 5 MB/s compressor (%v) should lose to no compression (%v)",
			choked.Elapsed, plain.Elapsed)
	}
}

func TestCompressionOnlyAffectsPLFSData(t *testing.T) {
	spec := Spec{Ranks: 2, BytesPerRank: 1 << 20, RecordSize: 4096,
		Pattern: PLFSPattern, PLFSHostdirs: 4, CompressRatio: 4, CompressBW: 1e9}
	var dataBytes int64
	for _, o := range rankOps(spec, 64<<10, 0) {
		if o.CPU > 0 {
			dataBytes += o.Size
		}
	}
	want := spec.BytesPerRank / 4
	if dataBytes != want {
		t.Fatalf("compressed data ops carry %d bytes, want %d", dataBytes, want)
	}
}
