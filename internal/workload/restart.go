package workload

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// This file implements the restart (read-back) side of checkpointing —
// the concern of the PLFS follow-on work on read performance ("...And eat
// it too: High read performance in write-optimized HPC I/O middleware
// file formats", Polte et al. PDSW'09): a write-optimized layout must
// still restore quickly. Two restart patterns matter:
//
//   - Uniform restart: the job restarts at the same scale and each rank
//     reads back exactly what it wrote. Through PLFS this is a pure
//     sequential scan of the rank's own data log — optimal.
//   - Shifted restart: the job restarts at a different scale (or rank
//     mapping), so each rank's logical region is scattered across many
//     writers' logs; the read decomposes into many small log reads, the
//     case the index-aware aggregation of the follow-on work targets.

// RestartKind selects the read-back pattern.
type RestartKind int

// Restart patterns.
const (
	UniformRestart RestartKind = iota
	ShiftedRestart
)

func (k RestartKind) String() string {
	if k == UniformRestart {
		return "uniform restart"
	}
	return "shifted restart"
}

// restartPrograms builds the read phase. The checkpoint is assumed written
// by `spec` (same geometry); writeFirst embeds the write ops so the files
// exist with allocated extents before reads.
func restartPrograms(spec Spec, unit int64, kind RestartKind) []Program {
	progs := make([]Program, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		progs[r] = Program{Creates: filesFor(spec, r), Ops: rankOps(spec, unit, r)}
	}
	// Append the read phase to each rank's program.
	for r := 0; r < spec.Ranks; r++ {
		var reads []Op
		switch spec.Pattern {
		case PLFSPattern:
			data := fmt.Sprintf("/container/hostdir.%d/data.%d", r%max(spec.PLFSHostdirs, 1), r)
			switch kind {
			case UniformRestart:
				// Rank r reads its own log sequentially.
				for _, o := range appendChunked(nil, data, 0, spec.BytesPerRank, unit) {
					reads = append(reads, Op{File: o.File, Off: o.Off, Size: o.Size, Read: true})
				}
			case ShiftedRestart:
				// Rank r's logical region maps to record-sized pieces of
				// every writer's log: many smaller reads across logs.
				nRecs := spec.BytesPerRank / spec.RecordSize
				for i := int64(0); i < nRecs; i++ {
					src := (r + int(i)) % spec.Ranks
					log := fmt.Sprintf("/container/hostdir.%d/data.%d", src%max(spec.PLFSHostdirs, 1), src)
					reads = append(reads, Op{File: log, Off: i * spec.RecordSize, Size: spec.RecordSize, Read: true})
				}
			}
		case N1Strided:
			// Direct shared-file restart: same strided records, as reads.
			nRecs := spec.BytesPerRank / spec.RecordSize
			for i := int64(0); i < nRecs; i++ {
				off := (i*int64(spec.Ranks) + int64(r)) * spec.RecordSize
				reads = append(reads, Op{File: "/shared", Off: off, Size: spec.RecordSize, Read: true})
			}
		default:
			for _, o := range rankOps(spec, unit, r) {
				reads = append(reads, Op{File: o.File, Off: o.Off, Size: o.Size, Read: true})
			}
		}
		progs[r].Ops = append(progs[r].Ops, reads...)
	}
	return progs
}

// RunRestart measures the combined write+read phase and returns the
// result; Bandwidth covers the full data volume moved (written + read).
func RunRestart(cfg pfs.Config, spec Spec, kind RestartKind) Result {
	return RunRestartProbed(cfg, spec, kind, nil, nil)
}

// RunRestartProbed is RunRestart with a metrics registry and tracer
// attached (either may be nil).
func RunRestartProbed(cfg pfs.Config, spec Spec, kind RestartKind, reg *obs.Registry, tr *obs.Tracer) Result {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	res := RunProgramsProbed(cfg, restartPrograms(spec, cfg.StripeUnit, kind), reg, tr)
	res.Spec = spec
	return res
}
