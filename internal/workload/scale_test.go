package workload

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/obs"
)

func scaleFixtureSpec(shards int) ScaleSpec {
	return ScaleSpec{
		Pods:            6,
		RanksPerPod:     4,
		ServersPerPod:   3,
		Rounds:          3,
		BytesPerRank:    192 << 10,
		ComputeTime:     0.5,
		InterPodLatency: 5e-6,
		Shards:          shards,
	}
}

func runScaleFixture(t *testing.T, shards int) ([]byte, ScaleResult) {
	t.Helper()
	reg := obs.NewRegistry()
	res := RunScale(scaleFixtureSpec(shards), reg)
	var snap bytes.Buffer
	if err := reg.WriteJSON(&snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap.Bytes(), res
}

// TestScaleByteIdenticalAcrossShardsAndProcs is the scale experiment's
// determinism contract: the registry snapshot and every logical result
// field are byte-identical for any shard count at any GOMAXPROCS.
func TestScaleByteIdenticalAcrossShardsAndProcs(t *testing.T) {
	refSnap, refRes := runScaleFixture(t, 1)
	if refRes.WallClock <= 0 {
		t.Fatalf("reference run did not advance: wall=%v", refRes.WallClock)
	}
	if got := len(refRes.RoundElapsed); got != refRes.Rounds {
		t.Fatalf("RoundElapsed has %d entries, want %d", got, refRes.Rounds)
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 8} {
			snap, res := runScaleFixture(t, shards)
			if !bytes.Equal(snap, refSnap) {
				t.Errorf("shards=%d procs=%d: snapshot differs from shards=1 reference", shards, procs)
			}
			if res.WallClock != refRes.WallClock {
				t.Errorf("shards=%d procs=%d: wall %v != %v", shards, procs, res.WallClock, refRes.WallClock)
			}
			if res.Events != refRes.Events {
				t.Errorf("shards=%d procs=%d: events %d != %d", shards, procs, res.Events, refRes.Events)
			}
			for i := range res.RoundElapsed {
				if res.RoundElapsed[i] != refRes.RoundElapsed[i] {
					t.Errorf("shards=%d procs=%d: round %d elapsed %v != %v",
						shards, procs, i, res.RoundElapsed[i], refRes.RoundElapsed[i])
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestScaleRoundsBarrier checks the global round barrier: each round's
// coordinator-observed duration covers at least two interconnect
// crossings plus the compute phase.
func TestScaleRoundsBarrier(t *testing.T) {
	_, res := runScaleFixture(t, 2)
	floor := scaleFixtureSpec(2).ComputeTime + 2*scaleFixtureSpec(2).InterPodLatency
	for i, d := range res.RoundElapsed {
		if d < floor {
			t.Errorf("round %d elapsed %v below floor %v", i, d, floor)
		}
	}
	if res.Ranks != 24 || res.Servers != 18 {
		t.Errorf("totals: ranks=%d servers=%d", res.Ranks, res.Servers)
	}
}

// TestScaleSpecValidate exercises the rejection paths.
func TestScaleSpecValidate(t *testing.T) {
	good := scaleFixtureSpec(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []ScaleSpec{}
	for _, mut := range []func(*ScaleSpec){
		func(s *ScaleSpec) { s.Pods = 0 },
		func(s *ScaleSpec) { s.RanksPerPod = 0 },
		func(s *ScaleSpec) { s.ServersPerPod = 0 },
		func(s *ScaleSpec) { s.Rounds = 0 },
		func(s *ScaleSpec) { s.BytesPerRank = 0 },
		func(s *ScaleSpec) { s.ComputeTime = -1 },
		func(s *ScaleSpec) { s.InterPodLatency = 0 },
		func(s *ScaleSpec) { s.Shards = 0 },
	} {
		s := good
		mut(&s)
		bad = append(bad, s)
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
