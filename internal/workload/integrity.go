package workload

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// This file runs checkpoint workloads under injected silent corruption —
// the harness behind the integrity experiment in cmd/pdsirepro. A run is
// write → dwell → read-back: every rank checkpoints, latent corruption
// events arrive on the drives over the dwell window (optionally swept by
// periodic scrubs), and the read-back phase measures what reaches the
// application — repaired transparently (checksums on), flagged as a typed
// error (unrecoverable), or delivered silently (checksums off).

// IntegritySpec describes one write/dwell/read-back run under corruption.
type IntegritySpec struct {
	// Spec is the checkpoint phase written and then read back.
	Spec Spec

	// Events is the per-server corruption schedule (failure.DrawLSE).
	Events [][]disk.CorruptionEvent

	// Expose is the dwell between write completion and read-back — the
	// window in which latent errors arrive and lie in wait.
	Expose sim.Time

	// ScrubInterval, when > 0, runs a full Scrub pass every interval
	// throughout the dwell window.
	ScrubInterval sim.Time

	// Shards, when > 0, runs the simulation on a sim.Cluster of that
	// many shards with the file system on shard 0 (see
	// FaultSpec.Shards); output is byte-identical for any positive
	// count. Zero keeps the legacy single-engine path.
	Shards int
}

// Validate reports problems with the spec.
func (s IntegritySpec) Validate() error {
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	if s.Expose < 0 || s.ScrubInterval < 0 {
		return fmt.Errorf("workload: negative time in integrity spec")
	}
	if s.Shards < 0 {
		return fmt.Errorf("workload: Shards %d < 0", s.Shards)
	}
	return nil
}

// IntegrityResult reports one integrity run.
type IntegrityResult struct {
	// Write is the checkpoint phase's timing.
	Write Result

	// ReadElapsed covers the read-back phase.
	ReadElapsed sim.Time

	// ScrubPasses counts completed scrub sweeps during the dwell.
	ScrubPasses int

	// FlaggedReads counts read-back ops that failed with a typed error
	// (unrecoverable corruption or a down server) instead of delivering
	// suspect bytes.
	FlaggedReads int64

	// UnrepairedAtRead is the number of corruption events that had arrived
	// and were still unrepaired when read-back began — the exposure the
	// scrub cadence is meant to shrink.
	UnrepairedAtRead int

	// Stats is the file system's integrity-layer accounting; SilentReads
	// is the application-visible corruption count when checksums are off.
	Stats pfs.IntegrityStats
}

// RunIntegrity executes the write/dwell/read-back experiment on a fresh
// file system built from cfg. Determinism carries through: the same cfg,
// spec, and drawn events produce byte-identical metrics snapshots.
func RunIntegrity(cfg pfs.Config, ispec IntegritySpec, reg *obs.Registry, tr *obs.Tracer) IntegrityResult {
	if err := ispec.Validate(); err != nil {
		panic(err)
	}
	eng, run := newSimulation(ispec.Shards, reg, tr)
	fs := pfs.New(eng, cfg)
	if err := fs.InjectCorruption(ispec.Events); err != nil {
		panic(err)
	}

	spec := ispec.Spec
	progs := make([]Program, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		progs[r] = Program{Creates: filesFor(spec, r), Ops: rankOps(spec, cfg.StripeUnit, r)}
	}
	clients := make([]*pfs.Client, len(progs))
	handles := make([]map[string]*pfs.File, len(progs))
	for r := range clients {
		clients[r] = fs.NewClient(r)
		handles[r] = make(map[string]*pfs.File)
	}

	var result IntegrityResult

	// runPhase issues every rank's ops concurrently; reads report errors
	// into FlaggedReads rather than aborting (a flagged checkpoint record
	// is an outcome to measure, not a harness failure).
	runPhase := func(read bool, phaseDone func(elapsed sim.Time)) {
		phaseStart := eng.Now()
		finished := sim.NewBarrier(eng, len(progs), func(at sim.Time) {
			phaseDone(at - phaseStart)
		})
		for r := range progs {
			r := r
			ops := progs[r].Ops
			var issue func(i int)
			issue = func(i int) {
				if i == len(ops) {
					finished.Arrive()
					return
				}
				o := ops[i]
				perform := func(h *pfs.File) {
					complete := func(err error) {
						if err != nil {
							result.FlaggedReads++
						}
						issue(i + 1)
					}
					if read {
						clients[r].ReadErr(h, o.Off, o.Size, complete)
					} else {
						clients[r].WriteErr(h, o.Off, o.Size, complete)
					}
				}
				f, ok := handles[r][o.File]
				if !ok {
					clients[r].Open(o.File, func(h *pfs.File) {
						handles[r][o.File] = h
						perform(h)
					})
					return
				}
				perform(f)
			}
			issue(0)
		}
	}

	readBack := func() {
		result.UnrepairedAtRead = fs.UnrepairedCorruption()
		runPhase(true, func(elapsed sim.Time) {
			result.ReadElapsed = elapsed
		})
	}

	afterWrites := func() {
		// Scrub every interval through the dwell window, then read back.
		if ispec.ScrubInterval > 0 {
			for t := ispec.ScrubInterval; t < ispec.Expose; t += ispec.ScrubInterval {
				eng.Schedule(t, func() {
					fs.Scrub(func(pfs.ScrubReport) { result.ScrubPasses++ })
				})
			}
		}
		if ispec.Expose > 0 {
			eng.Schedule(ispec.Expose, readBack)
		} else {
			readBack()
		}
	}

	startWrites := func() {
		result.Write.SetupElapsed = eng.Now()
		runPhase(false, func(elapsed sim.Time) {
			result.Write.Elapsed = elapsed
			afterWrites()
		})
	}

	var toCreate int
	for r := range progs {
		toCreate += len(progs[r].Creates)
	}
	if toCreate == 0 {
		startWrites()
	} else {
		created := sim.NewBarrier(eng, toCreate, func(sim.Time) { startWrites() })
		for r := range progs {
			for _, name := range progs[r].Creates {
				clients[r].Create(name, func(*pfs.File) { created.Arrive() })
			}
		}
	}

	run()
	result.Write.Spec = spec
	result.Write.TotalBytes = int64(spec.Ranks) * spec.BytesPerRank
	if result.Write.Elapsed > 0 {
		result.Write.Bandwidth = float64(result.Write.TotalBytes) / float64(result.Write.Elapsed)
	}
	result.Write.MetadataOps = fs.MetadataOps()
	result.Stats = fs.IntegrityStats()
	return result
}
