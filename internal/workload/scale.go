package workload

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// This file is the scale experiment: many independent file-system pods —
// each a full pfs.FS with its own servers, clients, and metric namespace
// — checkpointing in globally barriered rounds, driven by a sharded
// sim.Cluster with conservative lookahead. It is the workload the
// sharded engine exists for: the model is too large for one event queue
// to be pleasant, but it decomposes into pods whose only coupling is the
// inter-pod round barrier, which crosses shards through Cluster.Send
// with the pod-interconnect latency as the declared lookahead.
//
// The coordination protocol is deliberately placement-blind: every
// pod-to-coordinator and coordinator-to-pod message goes through
// Cluster.Send with a per-pod stable key, even when both ends live on
// the same shard. That keeps the injected event sequence — and with it
// every snapshot — byte-identical for any shard count.

// ScaleSpec describes one sharded many-pod checkpoint run.
type ScaleSpec struct {
	// Pods is the number of independent file-system pods. Each pod is
	// one shared-state domain: it lives whole on shard pod % Shards.
	Pods int

	// RanksPerPod and ServersPerPod size each pod: RanksPerPod clients
	// checkpoint into a pfs.PanFSLike(ServersPerPod) file system.
	RanksPerPod   int
	ServersPerPod int

	// Rounds is the number of globally barriered compute+checkpoint
	// rounds: no pod starts round r+1 until every pod finished round r.
	Rounds int

	// BytesPerRank is written by every rank every round (N-N pattern,
	// one file per rank, stripe-unit-aggregated flushes).
	BytesPerRank int64

	// ComputeTime is the per-round compute phase preceding each
	// checkpoint.
	ComputeTime sim.Time

	// InterPodLatency is the one-way latency of the pod interconnect —
	// the floor every cross-pod message declares, and therefore the
	// cluster's conservative lookahead.
	InterPodLatency sim.Time

	// Shards is the number of event-queue shards (>= 1). The snapshot
	// is byte-identical for any value; only wall-clock changes.
	Shards int
}

// Validate reports problems with the spec.
func (s ScaleSpec) Validate() error {
	switch {
	case s.Pods < 1:
		return fmt.Errorf("workload: Pods %d < 1", s.Pods)
	case s.RanksPerPod < 1:
		return fmt.Errorf("workload: RanksPerPod %d < 1", s.RanksPerPod)
	case s.ServersPerPod < 1:
		return fmt.Errorf("workload: ServersPerPod %d < 1", s.ServersPerPod)
	case s.Rounds < 1:
		return fmt.Errorf("workload: Rounds %d < 1", s.Rounds)
	case s.BytesPerRank < 1:
		return fmt.Errorf("workload: BytesPerRank %d < 1", s.BytesPerRank)
	case s.ComputeTime < 0:
		return fmt.Errorf("workload: negative ComputeTime")
	case s.InterPodLatency <= 0:
		return fmt.Errorf("workload: InterPodLatency must be > 0 (it is the cluster lookahead)")
	case s.Shards < 1:
		return fmt.Errorf("workload: Shards %d < 1", s.Shards)
	}
	return nil
}

// ScaleResult reports one scale run.
type ScaleResult struct {
	// Pods, Ranks, and Servers are the realized totals.
	Pods    int
	Ranks   int
	Servers int

	// Rounds echoes the spec; TotalBytes is payload over all rounds.
	Rounds     int
	TotalBytes int64

	// WallClock is the full simulated duration.
	WallClock sim.Time

	// RoundElapsed is the coordinator-observed duration of each round:
	// broadcast of the start message to arrival of the last pod's
	// completion (includes two interconnect crossings and the compute
	// phase).
	RoundElapsed []sim.Time

	// Events is the total number of simulation events dispatched,
	// summed over shards.
	Events uint64
}

// scalePod is one pod's harness state.
type scalePod struct {
	shard   int
	eng     *sim.Engine
	fs      *pfs.FS
	clients []*pfs.Client
	handles []*pfs.File
}

// RunScale executes the sharded many-pod experiment. The registry
// snapshot is byte-identical for any spec.Shards >= 1 and any
// GOMAXPROCS; time-series sampling and tracing stay off here because
// per-engine samplers and per-pod trace lanes are engine-local (see
// DESIGN.md on sharding limitations).
func RunScale(spec ScaleSpec, reg *obs.Registry) ScaleResult {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	cl := sim.NewCluster(spec.Shards, spec.InterPodLatency)
	cl.Instrument(reg, nil)

	wspec := Spec{
		Ranks:        spec.RanksPerPod,
		BytesPerRank: spec.BytesPerRank,
		RecordSize:   spec.BytesPerRank,
		Pattern:      NN,
	}
	// One op program per rank, shared across pods (every pod runs the
	// same ranks against its own file system and files).
	pods := make([]*scalePod, spec.Pods)
	for p := range pods {
		shard := p % spec.Shards
		cfg := pfs.PanFSLike(spec.ServersPerPod)
		cfg.MetricPrefix = fmt.Sprintf("pod%03d.", p)
		eng := cl.Shard(shard)
		pod := &scalePod{
			shard:   shard,
			eng:     eng,
			fs:      pfs.New(eng, cfg),
			clients: make([]*pfs.Client, spec.RanksPerPod),
			handles: make([]*pfs.File, spec.RanksPerPod),
		}
		for r := range pod.clients {
			pod.clients[r] = pod.fs.NewClient(r)
		}
		pods[p] = pod
	}
	rankOpsOnce := make([][]Op, spec.RanksPerPod)
	for r := range rankOpsOnce {
		rankOpsOnce[r] = rankOps(wspec, pods[0].fs.Cfg.StripeUnit, r)
	}

	result := ScaleResult{
		Pods:         spec.Pods,
		Ranks:        spec.Pods * spec.RanksPerPod,
		Servers:      spec.Pods * spec.ServersPerPod,
		Rounds:       spec.Rounds,
		TotalBytes:   int64(spec.Pods) * int64(spec.RanksPerPod) * spec.BytesPerRank * int64(spec.Rounds),
		RoundElapsed: make([]sim.Time, 0, spec.Rounds),
	}

	// The coordinator lives on shard 0. All of its state is touched only
	// from shard-0 events (arrivals are Cluster.Send deliveries onto
	// shard 0), so no locking is needed even under a parallel run.
	coord := cl.Shard(0)
	arrived := 0
	round := 0
	var roundStart sim.Time
	var startRound func()
	podKey := func(p int) string { return fmt.Sprintf("pod%03d", p) }

	// podRound runs one pod's compute + checkpoint phase, then reports
	// back to the coordinator. Runs as a shard-local event on the pod's
	// shard.
	podRound := func(p int) {
		pod := pods[p]
		checkpoint := func() {
			finished := sim.NewBarrier(pod.eng, len(pod.clients), func(sim.Time) {
				cl.Send(pod.shard, 0, podKey(p), spec.InterPodLatency, func() {
					arrived++
					if arrived == spec.Pods {
						result.RoundElapsed = append(result.RoundElapsed, coord.Now()-roundStart)
						round++
						startRound()
					}
				})
			})
			for r := range pod.clients {
				r := r
				ops := rankOpsOnce[r]
				var issue func(i int)
				issue = func(i int) {
					if i == len(ops) {
						finished.Arrive()
						return
					}
					o := ops[i]
					pod.clients[r].Write(pod.handles[r], o.Off, o.Size, func() {
						issue(i + 1)
					})
				}
				issue(0)
			}
		}
		if spec.ComputeTime > 0 {
			pod.eng.Schedule(spec.ComputeTime, checkpoint)
		} else {
			checkpoint()
		}
	}

	startRound = func() {
		if round == spec.Rounds {
			return
		}
		arrived = 0
		roundStart = coord.Now()
		for p := range pods {
			p := p
			cl.Send(0, pods[p].shard, podKey(p), spec.InterPodLatency, func() {
				podRound(p)
			})
		}
	}

	// Setup: every rank creates its file (N-N: one file per rank per
	// pod), each pod reports completion, and the coordinator opens round
	// 0 once all pods are ready.
	setupArrived := 0
	for p := range pods {
		p := p
		pod := pods[p]
		ready := sim.NewBarrier(pod.eng, len(pod.clients), func(sim.Time) {
			cl.Send(pod.shard, 0, podKey(p), spec.InterPodLatency, func() {
				setupArrived++
				if setupArrived == spec.Pods {
					startRound()
				}
			})
		})
		for r := range pod.clients {
			r := r
			names := filesFor(wspec, r)
			pod.clients[r].Create(names[0], func(h *pfs.File) {
				pod.handles[r] = h
				ready.Arrive()
			})
		}
	}

	result.WallClock = cl.Run()
	for i := 0; i < cl.NumShards(); i++ {
		result.Events += cl.Shard(i).Steps()
	}
	return result
}
