// Package workload generates the parallel checkpoint I/O patterns of the
// PDSI application studies (S3D, FLASH, Chombo, and the anonymous LANL
// codes visualized by Ninjat) and drives them against the simulated
// parallel file system, either directly or through the PLFS
// transformation. It is the harness behind Figure 2 (S3D weak-scaling
// checkpoint time) and Figure 8 (PLFS speedups).
package workload

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Pattern is a checkpoint access pattern.
type Pattern int

// Checkpoint patterns. N1Strided is the pathological pattern PLFS targets:
// every rank's records interleave throughout one shared file. N1Segmented
// gives each rank one contiguous region of the shared file. NN writes one
// file per rank. PLFSPattern interposes PLFS: per-rank data and index logs
// regardless of the logical pattern.
const (
	N1Strided Pattern = iota
	N1Segmented
	NN
	PLFSPattern
)

func (p Pattern) String() string {
	switch p {
	case N1Strided:
		return "N-1 strided"
	case N1Segmented:
		return "N-1 segmented"
	case NN:
		return "N-N"
	case PLFSPattern:
		return "PLFS"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Spec describes one checkpoint phase.
type Spec struct {
	Ranks        int
	BytesPerRank int64
	// RecordSize is the application write granularity. Small odd sizes
	// (e.g. 47001 bytes) model the unaligned variable-sized records that
	// formatted-I/O libraries emit.
	RecordSize int64
	Pattern    Pattern

	// PLFSHostdirs spreads container logs; only used by PLFSPattern.
	PLFSHostdirs int

	// PLFSIndexFlushEvery appends the buffered index to the index log every
	// this many records (0 = flush only at close). Only for PLFSPattern.
	PLFSIndexFlushEvery int

	// CompressRatio > 1 enables on-the-fly checkpoint compression (a PLFS
	// follow-on): the data volume written shrinks by the ratio while each
	// rank pays CPU time at CompressBW bytes/second over the *uncompressed*
	// stream. Only used by PLFSPattern.
	CompressRatio float64
	// CompressBW is the per-rank compression throughput in bytes/second
	// (defaults to 500 MB/s when zero and CompressRatio > 1).
	CompressBW float64
}

// Validate reports problems with the spec.
func (s Spec) Validate() error {
	switch {
	case s.Ranks < 1:
		return fmt.Errorf("workload: Ranks %d < 1", s.Ranks)
	case s.BytesPerRank < 1:
		return fmt.Errorf("workload: BytesPerRank %d < 1", s.BytesPerRank)
	case s.RecordSize < 1:
		return fmt.Errorf("workload: RecordSize %d < 1", s.RecordSize)
	}
	return nil
}

// Result reports one checkpoint phase.
type Result struct {
	Spec Spec
	// Elapsed covers the write phase; SetupElapsed the preceding
	// create/open phase (where hostdir spreading and directory-lock
	// contention show up).
	Elapsed      sim.Time
	SetupElapsed sim.Time
	TotalBytes   int64
	// Bandwidth is aggregate payload bandwidth in bytes/second.
	Bandwidth float64
	// MetadataOps counts metadata-server operations issued.
	MetadataOps int64
}

// Op is one synchronous I/O step in a rank's program.
type Op struct {
	File string
	Off  int64
	Size int64
	// Read marks the op as a read; the default is a write.
	Read bool
	// CPU is compute time spent before the I/O is issued (e.g. on-the-fly
	// checkpoint compression).
	CPU sim.Time
}

// op aliases Op internally.
type op = Op

// indexEntryBytes is the serialized size of a PLFS index record, matching
// internal/core.
const indexEntryBytes = 36

// rankOps builds the synchronous op sequence one rank issues, already
// aggregated the way a client write-back cache would: contiguous runs are
// flushed in stripe-unit-sized, stripe-aligned chunks. Strided patterns
// cannot be aggregated (each record is discontiguous with the last), which
// is precisely why they behave so badly on the backing file system.
func rankOps(spec Spec, unit int64, rank int) []op {
	nRecs := spec.BytesPerRank / spec.RecordSize
	if nRecs == 0 {
		nRecs = 1
	}
	var ops []op
	switch spec.Pattern {
	case N1Strided:
		for i := int64(0); i < nRecs; i++ {
			off := (i*int64(spec.Ranks) + int64(rank)) * spec.RecordSize
			ops = append(ops, op{File: "/shared", Off: off, Size: spec.RecordSize})
		}
	case N1Segmented:
		base := int64(rank) * spec.BytesPerRank
		ops = appendChunked(ops, "/shared", base, spec.BytesPerRank, unit)
	case NN:
		name := fmt.Sprintf("/ckpt.%d", rank)
		ops = appendChunked(ops, name, 0, spec.BytesPerRank, unit)
	case PLFSPattern:
		data := fmt.Sprintf("/container/hostdir.%d/data.%d", rank%max(spec.PLFSHostdirs, 1), rank)
		index := fmt.Sprintf("/container/hostdir.%d/index.%d", rank%max(spec.PLFSHostdirs, 1), rank)
		// Data log: pure sequential append of every record, aggregated.
		// Compression shrinks the written volume and charges CPU per chunk.
		dataBytes := spec.BytesPerRank
		var cpuPerByte float64
		if spec.CompressRatio > 1 {
			dataBytes = int64(float64(spec.BytesPerRank) / spec.CompressRatio)
			bw := spec.CompressBW
			if bw <= 0 {
				bw = 500e6
			}
			// CPU charged over the uncompressed bytes each written byte
			// represents.
			cpuPerByte = spec.CompressRatio / bw
		}
		start := len(ops)
		ops = appendChunked(ops, data, 0, dataBytes, unit)
		if cpuPerByte > 0 {
			for i := start; i < len(ops); i++ {
				ops[i].CPU = sim.Time(float64(ops[i].Size) * cpuPerByte)
			}
		}
		// Index log: small appends, flushed periodically.
		flushEvery := int64(spec.PLFSIndexFlushEvery)
		if flushEvery <= 0 {
			flushEvery = nRecs
		}
		var idxOff int64
		for done := int64(0); done < nRecs; done += flushEvery {
			n := flushEvery
			if nRecs-done < n {
				n = nRecs - done
			}
			ops = append(ops, op{File: index, Off: idxOff, Size: n * indexEntryBytes})
			idxOff += n * indexEntryBytes
		}
	}
	return ops
}

// appendChunked splits a contiguous region into stripe-aligned unit-sized
// writes (plus unaligned head/tail remnants).
func appendChunked(ops []op, file string, base, length, unit int64) []op {
	off := base
	end := base + length
	for off < end {
		n := unit - off%unit
		if n > end-off {
			n = end - off
		}
		ops = append(ops, op{File: file, Off: off, Size: n})
		off += n
	}
	return ops
}

// filesFor lists the files a rank must create before writing.
func filesFor(spec Spec, rank int) []string {
	switch spec.Pattern {
	case N1Strided, N1Segmented:
		if rank == 0 {
			return []string{"/shared"}
		}
		return nil
	case NN:
		return []string{fmt.Sprintf("/ckpt.%d", rank)}
	case PLFSPattern:
		hd := rank % max(spec.PLFSHostdirs, 1)
		return []string{
			fmt.Sprintf("/container/hostdir.%d/data.%d", hd, rank),
			fmt.Sprintf("/container/hostdir.%d/index.%d", hd, rank),
		}
	}
	return nil
}

// Program is one rank's workload: files it must create, then a sequence
// of synchronous writes (each waits for the previous).
type Program struct {
	Creates []string
	Ops     []Op
}

// RunPrograms executes arbitrary per-rank programs against a fresh file
// system built from cfg: all creates complete (a barrier), then every rank
// runs its op sequence, and Elapsed covers the write phase. TotalBytes
// sums op sizes.
func RunPrograms(cfg pfs.Config, progs []Program) Result {
	return RunProgramsProbed(cfg, progs, nil, nil)
}

// RunProgramsProbed is RunPrograms with an observability probe: the
// metrics registry and tracer (either may be nil) are attached to the
// engine before the model is built, so every substrate's instruments
// land in them. Runs are deterministic, so two probed runs of the same
// programs produce byte-identical metrics snapshots.
func RunProgramsProbed(cfg pfs.Config, progs []Program, reg *obs.Registry, tr *obs.Tracer) Result {
	eng := sim.NewEngine()
	eng.Instrument(reg, tr)
	fs := pfs.New(eng, cfg)

	clients := make([]*pfs.Client, len(progs))
	for r := range clients {
		clients[r] = fs.NewClient(r)
	}

	var result Result
	var phaseStart sim.Time
	runWrites := func() {
		phaseStart = eng.Now()
		result.SetupElapsed = phaseStart
		finished := sim.NewBarrier(eng, len(progs), func(at sim.Time) {
			result.Elapsed = at - phaseStart
		})
		for r := range progs {
			r := r
			ops := progs[r].Ops
			handles := make(map[string]*pfs.File)
			var issue func(i int)
			issue = func(i int) {
				if i == len(ops) {
					finished.Arrive()
					return
				}
				o := ops[i]
				perform := func(h *pfs.File) {
					// Compute (e.g. compression) precedes the I/O.
					if o.Read {
						clients[r].Read(h, o.Off, o.Size, func() { issue(i + 1) })
					} else {
						clients[r].Write(h, o.Off, o.Size, func() { issue(i + 1) })
					}
				}
				withCPU := func(h *pfs.File) {
					if o.CPU > 0 {
						eng.Schedule(o.CPU, func() { perform(h) })
						return
					}
					perform(h)
				}
				f, ok := handles[o.File]
				if !ok {
					clients[r].Open(o.File, func(h *pfs.File) {
						handles[o.File] = h
						withCPU(h)
					})
					return
				}
				withCPU(f)
			}
			issue(0)
		}
	}

	var toCreate int
	for r := range progs {
		toCreate += len(progs[r].Creates)
	}
	if toCreate == 0 {
		runWrites()
	} else {
		created := sim.NewBarrier(eng, toCreate, func(sim.Time) { runWrites() })
		for r := range progs {
			for _, name := range progs[r].Creates {
				clients[r].Create(name, func(*pfs.File) { created.Arrive() })
			}
		}
	}

	eng.Run()
	for _, p := range progs {
		for _, o := range p.Ops {
			result.TotalBytes += o.Size
		}
	}
	if result.Elapsed > 0 {
		result.Bandwidth = float64(result.TotalBytes) / float64(result.Elapsed)
	}
	result.MetadataOps = fs.MetadataOps()
	return result
}

// Run executes the checkpoint phase on a fresh file system built from cfg
// and returns the timing result. The phase is: all ranks create their
// files (the shared-file patterns create once), barrier, all ranks issue
// their ops synchronously (each rank waits for its previous op), barrier.
func Run(cfg pfs.Config, spec Spec) Result {
	return RunProbed(cfg, spec, nil, nil)
}

// RunProbed is Run with a metrics registry and tracer attached (either
// may be nil).
func RunProbed(cfg pfs.Config, spec Spec, reg *obs.Registry, tr *obs.Tracer) Result {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	progs := make([]Program, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		progs[r] = Program{Creates: filesFor(spec, r), Ops: rankOps(spec, cfg.StripeUnit, r)}
	}
	result := RunProgramsProbed(cfg, progs, reg, tr)
	result.Spec = spec
	// Per-spec accounting: payload is BytesPerRank per rank (PLFS ops also
	// include index bytes; report payload).
	result.TotalBytes = int64(spec.Ranks) * spec.BytesPerRank
	if result.Elapsed > 0 {
		result.Bandwidth = float64(result.TotalBytes) / float64(result.Elapsed)
	}
	return result
}

// Speedup runs the same logical checkpoint directly (N-1 strided) and
// through PLFS, returning both results and the bandwidth ratio — the
// Figure 8 experiment for one configuration.
func Speedup(cfg pfs.Config, ranks int, bytesPerRank, recordSize int64) (direct, viaPLFS Result, ratio float64) {
	base := Spec{
		Ranks:        ranks,
		BytesPerRank: bytesPerRank,
		RecordSize:   recordSize,
		Pattern:      N1Strided,
	}
	direct = Run(cfg, base)
	p := base
	p.Pattern = PLFSPattern
	p.PLFSHostdirs = 32
	p.PLFSIndexFlushEvery = 64
	viaPLFS = Run(cfg, p)
	if direct.Bandwidth > 0 {
		ratio = viaPLFS.Bandwidth / direct.Bandwidth
	}
	return direct, viaPLFS, ratio
}
