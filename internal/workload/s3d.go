package workload

import (
	"repro/internal/pfs"
	"repro/internal/sim"
)

// This file reproduces Figure 2 of the report: "Time spent performing
// checkpoint I/O for S3D, c2h4 problem with weak scaling. Left plot (a)
// shows measured time for 10 timesteps and 1 checkpoint, right plot (b)
// shows predicted time spent checkpointing in a 12-hour run."

// S3DPoint is one core count in the weak-scaling sweep.
type S3DPoint struct {
	Ranks          int
	CheckpointTime sim.Time
	// ComputeTime is the (fixed, weak-scaling) compute time for 10
	// timesteps.
	ComputeTime sim.Time
	// FractionIO is checkpoint / (checkpoint + compute) for the measured
	// window — the left plot.
	FractionIO float64
	// Predicted12hFraction extrapolates the fraction of a 12-hour run
	// spent checkpointing at the production checkpoint cadence — the right
	// plot.
	Predicted12hFraction float64
}

// S3DConfig parameterizes the sweep.
type S3DConfig struct {
	// BytesPerRank is each rank's checkpoint state (weak scaling keeps it
	// constant).
	BytesPerRank int64
	// RecordSize is S3D's unaligned Fortran-I/O record granularity.
	RecordSize int64
	// ComputePer10Steps is the fixed compute time between checkpoints.
	ComputePer10Steps sim.Time
	// CheckpointsPer12h is the production cadence for the prediction.
	CheckpointsPer12h int
	Pattern           Pattern
}

// DefaultS3D matches the c2h4-style runs: ~4 MiB of state per rank written
// in small unaligned records into a shared file, ten timesteps of compute
// between checkpoints.
func DefaultS3D() S3DConfig {
	return S3DConfig{
		BytesPerRank:      4 << 20,
		RecordSize:        47008,
		ComputePer10Steps: 30,
		CheckpointsPer12h: 48,
		Pattern:           N1Strided,
	}
}

// S3DWeakScaling sweeps rank counts on the given file system and returns
// the Figure 2 series. The storage system is held fixed while the
// application grows — which is exactly why the I/O fraction explodes (the
// report's "1% of runtime at 512 cores, 30% at 16,000 cores" trend).
func S3DWeakScaling(fsCfg pfs.Config, s3d S3DConfig, rankCounts []int) []S3DPoint {
	out := make([]S3DPoint, 0, len(rankCounts))
	for _, ranks := range rankCounts {
		res := Run(fsCfg, Spec{
			Ranks:        ranks,
			BytesPerRank: s3d.BytesPerRank,
			RecordSize:   s3d.RecordSize,
			Pattern:      s3d.Pattern,
			PLFSHostdirs: 32,
		})
		pt := S3DPoint{
			Ranks:          ranks,
			CheckpointTime: res.Elapsed,
			ComputeTime:    s3d.ComputePer10Steps,
		}
		window := float64(res.Elapsed) + float64(s3d.ComputePer10Steps)
		if window > 0 {
			pt.FractionIO = float64(res.Elapsed) / window
		}
		ioIn12h := float64(s3d.CheckpointsPer12h) * float64(res.Elapsed)
		pt.Predicted12hFraction = ioIn12h / (12 * 3600)
		if pt.Predicted12hFraction > 1 {
			pt.Predicted12hFraction = 1
		}
		out = append(out, pt)
	}
	return out
}
