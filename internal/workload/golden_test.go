package workload

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/obs"
)

// TestFaultFreeRunMatchesPrePRGolden pins the zero-cost rule for the
// whole robustness stack: a fault-free, checksums-off run must serialize
// a metrics snapshot byte-identical to the one captured before the fault
// and integrity layers existed (testdata/golden_fault_free_metrics.json).
// If this fails, some disabled-by-default machinery leaked into the clean
// path — new counters registered eagerly, an extra event scheduled, a
// perturbed service time.
func TestFaultFreeRunMatchesPrePRGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_fault_free_metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg, spec := goldenSpec()
	reg := obs.NewRegistry()
	RunProbed(cfg, spec, reg, nil)
	var got bytes.Buffer
	if err := reg.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("fault-free snapshot diverged from pre-PR golden:\ngot %d bytes, want %d bytes\n%s",
			got.Len(), len(want), firstDiff(got.Bytes(), want))
	}
}

// firstDiff returns a short context window around the first differing
// byte, for a readable failure message.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hi := i + 80
			if hi > n {
				hi = n
			}
			return "got  ..." + string(a[lo:hi]) + "...\nwant ..." + string(b[lo:hi]) + "..."
		}
	}
	return "lengths differ only"
}
