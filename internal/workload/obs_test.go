package workload

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// goldenSpec is small enough to run in milliseconds but exercises the
// strided RMW path, lock contention, and metadata traffic.
func goldenSpec() (pfs.Config, Spec) {
	return pfs.PanFSLike(4), Spec{
		Ranks:        8,
		BytesPerRank: 1 << 20,
		RecordSize:   47008,
		Pattern:      N1Strided,
	}
}

// TestSameSeedRunsProduceIdenticalMetrics is the determinism golden test:
// two independent runs of the same configuration must serialize to
// byte-identical metrics snapshots and trace files.
func TestSameSeedRunsProduceIdenticalMetrics(t *testing.T) {
	run := func() ([]byte, []byte) {
		cfg, spec := goldenSpec()
		reg := obs.NewRegistry()
		tr := obs.NewTracer()
		RunProbed(cfg, spec, reg, tr)
		var m, tb bytes.Buffer
		if err := reg.WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(&tb); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), tb.Bytes()
	}
	m1, t1 := run()
	m2, t2 := run()
	if !bytes.Equal(m1, m2) {
		t.Fatalf("same-seed metrics snapshots differ:\n%s\nvs\n%s", m1, m2)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same-seed trace files differ")
	}
	if len(m1) == 0 || len(t1) == 0 {
		t.Fatal("empty metrics or trace output")
	}
}

// TestProbedRunPopulatesPFSMetrics sanity-checks the probe wiring end to
// end: a strided run on PanFS-like config must record RMW penalties, lock
// traffic, metadata ops, server histograms, and engine counters.
func TestProbedRunPopulatesPFSMetrics(t *testing.T) {
	cfg, spec := goldenSpec()
	reg := obs.NewRegistry()
	res := RunProbed(cfg, spec, reg, nil)
	if res.Bandwidth <= 0 {
		t.Fatalf("bandwidth = %v", res.Bandwidth)
	}
	s := reg.Snapshot()
	for _, name := range []string{
		"pfs.metadata_ops",
		"pfs.rmw_ops",
		"pfs.lock.waits",
		"sim.events_dispatched",
		"pfs.oss00.ops",
		"pfs.oss00.bytes_written",
	} {
		if s.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, s.Counters[name])
		}
	}
	if h, ok := s.Histograms["pfs.oss00.disk.service_s"]; !ok || h.Count == 0 {
		t.Errorf("disk service histogram empty: %+v", h)
	}
	if h, ok := s.Histograms["pfs.lock.wait_s"]; !ok || h.Count == 0 {
		t.Errorf("lock wait histogram empty: %+v", h)
	}
	if g := s.Gauges["pfs.oss00.disk.seek_s"]; g <= 0 {
		t.Errorf("disk seek gauge = %v, want > 0", g)
	}
	if g := s.Gauges["pfs.oss00.disk.utilization"]; g <= 0 || g > 1 {
		t.Errorf("oss disk utilization = %v, want in (0,1]", g)
	}
}

// TestRunWithoutProbesMatchesProbedRun: instrumentation must not perturb
// the simulation itself.
func TestRunWithoutProbesMatchesProbedRun(t *testing.T) {
	cfg, spec := goldenSpec()
	plain := Run(cfg, spec)
	reg := obs.NewRegistry()
	probed := RunProbed(cfg, spec, reg, obs.NewTracer())
	if plain.Elapsed != probed.Elapsed {
		t.Fatalf("probes changed the simulation: %v vs %v", plain.Elapsed, probed.Elapsed)
	}
	if plain.Bandwidth != probed.Bandwidth {
		t.Fatalf("bandwidth differs: %v vs %v", plain.Bandwidth, probed.Bandwidth)
	}
}
