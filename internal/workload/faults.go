package workload

import (
	"fmt"

	"repro/internal/bb"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// This file runs checkpoint workloads under injected storage failures —
// the harness validating the analytic checkpoint-interval models in
// internal/failure against a simulation whose servers actually crash. A
// run alternates compute phases with checkpoint phases; each rank's
// failed writes retry with capped exponential backoff and are abandoned
// (counted, never silently lost) when the error persists, so the run
// completes even through permanent failures and reports the
// application-visible slowdown.

// FaultSpec describes a multi-checkpoint run under a fault plan.
type FaultSpec struct {
	// Spec is the checkpoint phase every round issues.
	Spec Spec

	// Checkpoints is the number of compute+checkpoint rounds.
	Checkpoints int

	// ComputeTime is the useful work simulated between checkpoints — the
	// checkpoint interval tau of the Daly model.
	ComputeTime sim.Time

	// Plan is the fault schedule injected into the file system. Nil runs
	// fault-free: the event trajectory is then identical to the same
	// phases run without the fault layer at all.
	Plan *sim.FaultPlan

	// MaxRetries bounds per-op retries of a failed write or read before
	// the op is dropped. Zero drops on the first error.
	MaxRetries int

	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt, capped at MaxBackoff (default RetryBackoff).
	RetryBackoff sim.Time
	MaxBackoff   sim.Time

	// BB, when non-nil, routes every checkpoint write through a burst-
	// buffer tier of the given shape (see internal/bb) instead of
	// straight into the file system; reads still bypass the buffer.
	// Fault-plan targets named bb.NodeTarget crash buffer nodes (the
	// plan drives both layers through one sim.FanoutSink). Nil keeps
	// the direct path, byte-identical to a build without the tier.
	BB *bb.Config

	// Shards, when > 0, runs the simulation on a sim.Cluster of that
	// many shards instead of a plain engine, with the whole file system
	// on shard 0 (one file system is one shared-state domain; it cannot
	// be split). The trajectory — and therefore every snapshot, trace,
	// and series — is byte-identical for any positive shard count; the
	// CI shard-determinism smoke pins that. Zero keeps the legacy
	// single-engine path, whose golden snapshots predate the cluster.
	Shards int
}

// Validate reports problems with the spec.
func (s FaultSpec) Validate() error {
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	switch {
	case s.Checkpoints < 1:
		return fmt.Errorf("workload: Checkpoints %d < 1", s.Checkpoints)
	case s.ComputeTime < 0 || s.RetryBackoff < 0 || s.MaxBackoff < 0:
		return fmt.Errorf("workload: negative time in fault spec")
	case s.MaxRetries < 0:
		return fmt.Errorf("workload: MaxRetries %d < 0", s.MaxRetries)
	case s.Shards < 0:
		return fmt.Errorf("workload: Shards %d < 0", s.Shards)
	}
	if s.BB != nil {
		if err := s.BB.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// newSimulation builds the event substrate for a harness run: a plain
// instrumented engine when shards == 0 (the legacy path every golden
// snapshot pins), or shard 0 of a decoupled sim.Cluster — infinite
// lookahead, since a single-domain model never sends — whose run
// function drives the windowed coordinator.
func newSimulation(shards int, reg *obs.Registry, tr *obs.Tracer) (*sim.Engine, func() sim.Time) {
	if shards <= 0 {
		eng := sim.NewEngine()
		eng.Instrument(reg, tr)
		return eng, eng.Run
	}
	cl := sim.NewCluster(shards, sim.Infinity)
	cl.Instrument(reg, tr)
	return cl.Shard(0), cl.Run
}

// faulty reports whether any fault machinery is active; a non-faulty run
// must stay byte-identical to RunProgramsProbed of the same phases, so
// even the fault counters are only registered when this is true.
func (s FaultSpec) faulty() bool {
	return s.Plan.Len() > 0 || s.MaxRetries > 0
}

// FaultResult reports a fault-injected checkpoint run. The embedded
// Result's Elapsed sums the checkpoint phases (the application-visible
// checkpoint cost); compute time is excluded from it.
type FaultResult struct {
	Result

	// Checkpoints and ComputeTime echo the spec.
	Checkpoints int
	ComputeTime sim.Time

	// WallClock is the full simulated duration: setup, compute phases,
	// and checkpoint phases.
	WallClock sim.Time

	// Utilization is useful compute divided by wall clock — directly
	// comparable to failure.Daly.Utilization at tau = ComputeTime.
	Utilization float64

	// Retries counts write/read attempts repeated after a failure;
	// DroppedOps counts ops abandoned after MaxRetries.
	Retries    int64
	DroppedOps int64

	// Faults is the file system's failure-layer accounting.
	Faults pfs.FaultStats

	// BB is the burst-buffer tier's accounting (zero without one), and
	// DrainedAt the sim-time the tier finished draining after the last
	// checkpoint round — WallClock excludes that tail because the
	// application is already computing while it drains.
	BB        bb.Stats
	DrainedAt sim.Time
}

// RunFaults executes Checkpoints rounds of compute followed by the
// checkpoint phase from spec.Spec on a fresh file system, with
// spec.Plan's failures injected. Determinism carries through: the same
// cfg, spec, and plan produce byte-identical metrics snapshots.
func RunFaults(cfg pfs.Config, fspec FaultSpec, reg *obs.Registry, tr *obs.Tracer) FaultResult {
	if err := fspec.Validate(); err != nil {
		panic(err)
	}
	eng, run := newSimulation(fspec.Shards, reg, tr)
	fs := pfs.New(eng, cfg)
	var tier *bb.Tier
	if fspec.BB != nil {
		tier = bb.NewTier(fs, *fspec.BB)
	}
	if tier == nil {
		if err := fs.InjectFaults(fspec.Plan); err != nil {
			panic(err)
		}
	} else {
		// One plan drives both layers; scheduling it once through a
		// fan-out keeps the sim.faults.* counters and trace exact.
		if err := fspec.Plan.Schedule(eng, sim.FanoutSink{fs, tier}); err != nil {
			panic(err)
		}
	}

	// Fault-path instruments exist only on faulty runs so that a
	// fault-free run's snapshot matches RunProgramsProbed exactly.
	var cRetries, cDropped, cRounds *obs.Counter
	if fspec.faulty() && reg != nil {
		cRetries = reg.Counter("workload.ckpt.retries")
		cDropped = reg.Counter("workload.ckpt.dropped_ops")
		cRounds = reg.Counter("workload.ckpt.rounds")
	}

	spec := fspec.Spec
	progs := make([]Program, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		progs[r] = Program{Creates: filesFor(spec, r), Ops: rankOps(spec, cfg.StripeUnit, r)}
	}
	clients := make([]*pfs.Client, len(progs))
	handles := make([]map[string]*pfs.File, len(progs))
	for r := range clients {
		clients[r] = fs.NewClient(r)
		handles[r] = make(map[string]*pfs.File)
	}

	result := FaultResult{Checkpoints: fspec.Checkpoints, ComputeTime: fspec.ComputeTime}
	maxBackoff := fspec.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = fspec.RetryBackoff
	}

	runPhase := func(phaseDone func(elapsed sim.Time)) {
		phaseStart := eng.Now()
		finished := sim.NewBarrier(eng, len(progs), func(at sim.Time) {
			phaseDone(at - phaseStart)
		})
		for r := range progs {
			r := r
			ops := progs[r].Ops
			var issue func(i int)
			issue = func(i int) {
				if i == len(ops) {
					finished.Arrive()
					return
				}
				o := ops[i]
				perform := func(h *pfs.File) {
					attempt := 0
					backoff := fspec.RetryBackoff
					// One stage timer spans the whole logical op — every
					// attempt's stages plus the backoff between them — and is
					// observed once, on final success. Dropped ops never fold
					// in, so the quantiles describe completed operations. Nil
					// (one branch per probe) unless op timers are enabled.
					var ot *obs.OpTimer
					if o.Read {
						ot = fs.StartReadOp()
					} else {
						ot = fs.StartWriteOp()
					}
					var try func()
					complete := func(err error) {
						if err == nil {
							if o.Read {
								fs.FinishReadOp(ot)
							} else {
								fs.FinishWriteOp(ot)
							}
							issue(i + 1)
							return
						}
						if attempt < fspec.MaxRetries {
							attempt++
							result.Retries++
							cRetries.Inc()
							d := backoff
							if backoff *= 2; backoff > maxBackoff {
								backoff = maxBackoff
							}
							ot.Add(obs.StageBackoff, float64(d))
							eng.Schedule(d, try)
							return
						}
						// Persistent failure: abandon the op and move on —
						// the degraded checkpoint is accounted, not hung.
						result.DroppedOps++
						cDropped.Inc()
						issue(i + 1)
					}
					try = func() {
						switch {
						case o.Read:
							clients[r].ReadOp(h, o.Off, o.Size, ot, complete)
						case tier != nil:
							tier.WriteOp(r, h, o.Off, o.Size, ot, complete)
						default:
							clients[r].WriteOp(h, o.Off, o.Size, ot, complete)
						}
					}
					try()
				}
				withCPU := func(h *pfs.File) {
					if o.CPU > 0 {
						eng.Schedule(o.CPU, func() { perform(h) })
						return
					}
					perform(h)
				}
				f, ok := handles[r][o.File]
				if !ok {
					clients[r].Open(o.File, func(h *pfs.File) {
						handles[r][o.File] = h
						withCPU(h)
					})
					return
				}
				withCPU(f)
			}
			issue(0)
		}
	}

	round := 0
	var startRound func()
	startRound = func() {
		if round == fspec.Checkpoints {
			result.WallClock = eng.Now()
			return
		}
		begin := func() {
			cRounds.Inc()
			runPhase(func(elapsed sim.Time) {
				result.Elapsed += elapsed
				round++
				startRound()
			})
		}
		if fspec.ComputeTime > 0 {
			eng.Schedule(fspec.ComputeTime, begin)
		} else {
			begin()
		}
	}

	var toCreate int
	for r := range progs {
		toCreate += len(progs[r].Creates)
	}
	startAll := func() {
		result.SetupElapsed = eng.Now()
		startRound()
	}
	if toCreate == 0 {
		startAll()
	} else {
		created := sim.NewBarrier(eng, toCreate, func(sim.Time) { startAll() })
		for r := range progs {
			for _, name := range progs[r].Creates {
				clients[r].Create(name, func(*pfs.File) { created.Arrive() })
			}
		}
	}

	run()
	result.Spec = spec
	result.TotalBytes = int64(spec.Ranks) * spec.BytesPerRank * int64(fspec.Checkpoints)
	if result.Elapsed > 0 {
		result.Bandwidth = float64(result.TotalBytes) / float64(result.Elapsed)
	}
	result.MetadataOps = fs.MetadataOps()
	result.Faults = fs.FaultStats()
	if tier != nil {
		result.BB = tier.Stats()
		result.DrainedAt = eng.Now()
	}
	if result.WallClock > 0 {
		result.Utilization = float64(fspec.ComputeTime) * float64(fspec.Checkpoints) / float64(result.WallClock)
	}
	return result
}
