package workload

import (
	"testing"

	"repro/internal/pfs"
)

func plfsSpec(ranks int) Spec {
	return Spec{
		Ranks: ranks, BytesPerRank: 2 << 20, RecordSize: 47008,
		Pattern: PLFSPattern, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
	}
}

func TestRestartKindString(t *testing.T) {
	if UniformRestart.String() != "uniform restart" || ShiftedRestart.String() != "shifted restart" {
		t.Fatal("restart kind names wrong")
	}
}

func TestRestartCompletes(t *testing.T) {
	for _, kind := range []RestartKind{UniformRestart, ShiftedRestart} {
		res := RunRestart(cfg(), plfsSpec(8), kind)
		if res.Elapsed <= 0 || res.Bandwidth <= 0 {
			t.Fatalf("%v: empty result %+v", kind, res)
		}
		// Write + read phases: total bytes close to twice the payload (the
		// read side covers whole records only, so allow the sub-record
		// remainder).
		payload := int64(8 * (2 << 20))
		if res.TotalBytes < payload*19/10 {
			t.Fatalf("%v: TotalBytes %d, want ~%d", kind, res.TotalBytes, 2*payload)
		}
	}
}

func TestUniformRestartFasterThanShifted(t *testing.T) {
	// Uniform restart reads each rank's own log sequentially; shifted
	// restart scatters record-sized reads across every log.
	uni := RunRestart(cfg(), plfsSpec(8), UniformRestart)
	sh := RunRestart(cfg(), plfsSpec(8), ShiftedRestart)
	if uni.Elapsed >= sh.Elapsed {
		t.Fatalf("uniform restart %v should beat shifted %v", uni.Elapsed, sh.Elapsed)
	}
}

func TestPLFSUniformRestartBeatsDirectStridedRestart(t *testing.T) {
	// Even for read-back, per-rank logs beat strided shared-file reads.
	direct := Spec{Ranks: 8, BytesPerRank: 2 << 20, RecordSize: 47008, Pattern: N1Strided}
	d := RunRestart(cfg(), direct, UniformRestart)
	p := RunRestart(cfg(), plfsSpec(8), UniformRestart)
	if p.Elapsed >= d.Elapsed {
		t.Fatalf("PLFS restart %v should beat direct strided %v", p.Elapsed, d.Elapsed)
	}
}

func TestRestartDeterministic(t *testing.T) {
	a := RunRestart(cfg(), plfsSpec(4), ShiftedRestart)
	b := RunRestart(cfg(), plfsSpec(4), ShiftedRestart)
	if a.Elapsed != b.Elapsed {
		t.Fatal("non-deterministic restart")
	}
}

func TestReadOpsRouteThroughReadPath(t *testing.T) {
	// A read-only program on a pre-written file must finish without lock
	// revocations (reads bypass the lock manager).
	c := pfs.PanFSLike(4)
	progs := []Program{{
		Creates: []string{"/f"},
		Ops: []Op{
			{File: "/f", Off: 0, Size: 1 << 20},             // write
			{File: "/f", Off: 0, Size: 1 << 20, Read: true}, // read back
		},
	}}
	res := RunPrograms(c, progs)
	if res.Elapsed <= 0 {
		t.Fatal("program did not complete")
	}
}
