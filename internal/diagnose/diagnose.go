// Package diagnose reproduces the PDSI automated performance-diagnosis
// experiment (§4.2.6 of the report; Kasick et al., HotDep'09): in a
// parallel file system, a faulty server manifests as *rare* behaviour —
// different from its peers, which all see statistically similar load under
// a balanced parallel workload. Peer comparison over commonly available
// OS-level metrics (throughput, latency, CPU) identified the server
// suffering an injected fault ("rogue hog" processes, blocked or lossy
// resources) at least 66% of the time on a 20-server PVFS cluster, with
// essentially no falsely indicated servers.
package diagnose

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// FaultKind is the class of injected problem.
type FaultKind int

// Injected fault kinds, mirroring the study.
const (
	NoFault FaultKind = iota
	// HogCPU is a rogue process stealing cycles: server latency rises.
	HogCPU
	// HogDisk is a rogue process issuing competing I/O: throughput falls
	// and latency rises.
	HogDisk
	// LossyNet drops packets: latency rises sharply with high variance.
	LossyNet
)

func (k FaultKind) String() string {
	switch k {
	case NoFault:
		return "none"
	case HogCPU:
		return "cpu-hog"
	case HogDisk:
		return "disk-hog"
	case LossyNet:
		return "lossy-net"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Metrics is one server's per-window observations.
type Metrics struct {
	Throughput []float64 // MB/s per window
	Latency    []float64 // ms per window
}

// Cluster is a set of servers' observations plus ground truth.
type Cluster struct {
	Servers     int
	Windows     int
	Fault       FaultKind
	FaultServer int // -1 when Fault == NoFault
	Data        []Metrics
}

// Generate produces observations for a balanced cluster with one injected
// fault (or none). Baseline throughput and latency have ~6% relative noise;
// faults shift the faulty server's distributions the way the study's
// injections did.
func Generate(servers, windows int, fault FaultKind, faultServer int, seed int64) Cluster {
	if servers < 3 || windows < 4 {
		panic(fmt.Sprintf("diagnose: need >= 3 servers and >= 4 windows, got %d/%d", servers, windows))
	}
	if fault == NoFault {
		faultServer = -1
	} else if faultServer < 0 || faultServer >= servers {
		panic("diagnose: fault server out of range")
	}
	r := rand.New(rand.NewSource(seed))
	c := Cluster{Servers: servers, Windows: windows, Fault: fault, FaultServer: faultServer}
	const (
		baseTput = 60.0 // MB/s
		baseLat  = 8.0  // ms
		noise    = 0.06
	)
	for s := 0; s < servers; s++ {
		m := Metrics{
			Throughput: make([]float64, windows),
			Latency:    make([]float64, windows),
		}
		for w := 0; w < windows; w++ {
			// Shared workload phase wobble affects all servers alike.
			phase := 1 + 0.1*math.Sin(float64(w)/5)
			tput := baseTput * phase * (1 + noise*r.NormFloat64())
			lat := baseLat / phase * (1 + noise*r.NormFloat64())
			if s == faultServer {
				switch fault {
				case HogCPU:
					lat *= 1.8 + 0.2*r.Float64()
				case HogDisk:
					tput *= 0.45 + 0.1*r.Float64()
					lat *= 2.2 + 0.3*r.Float64()
				case LossyNet:
					lat *= 2.5 + 1.5*r.Float64()
				}
			}
			m.Throughput[w] = tput
			m.Latency[w] = lat
		}
		c.Data = append(c.Data, m)
	}
	return c
}

// Diagnosis is the verdict for one cluster observation.
type Diagnosis struct {
	// Flagged lists servers diagnosed as anomalous.
	Flagged []int
}

// threshold is the modified-z-score cutoff; 3.5 is the standard choice for
// MAD-based outlier detection.
const threshold = 3.5

// Diagnose runs peer comparison: for each window and metric, a server
// whose value deviates from the window's median by more than `threshold`
// robust standard deviations earns a strike; servers with strikes in a
// majority of windows are flagged.
func Diagnose(c Cluster) Diagnosis {
	strikes := make([]int, c.Servers)
	metric := func(get func(Metrics, int) float64) {
		for w := 0; w < c.Windows; w++ {
			vals := make([]float64, c.Servers)
			for s := 0; s < c.Servers; s++ {
				vals[s] = get(c.Data[s], w)
			}
			med := median(vals)
			devs := make([]float64, c.Servers)
			for s, v := range vals {
				devs[s] = math.Abs(v - med)
			}
			mad := median(devs)
			if mad == 0 {
				continue
			}
			for s, v := range vals {
				if 0.6745*math.Abs(v-med)/mad > threshold {
					strikes[s]++
				}
			}
		}
	}
	metric(func(m Metrics, w int) float64 { return m.Throughput[w] })
	metric(func(m Metrics, w int) float64 { return m.Latency[w] })

	var d Diagnosis
	// Two metrics scanned: a server can earn up to 2 strikes per window.
	need := c.Windows // majority across 2*Windows opportunities
	for s, n := range strikes {
		if n >= need {
			d.Flagged = append(d.Flagged, s)
		}
	}
	return d
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Evaluation aggregates many trials.
type Evaluation struct {
	Trials         int
	TruePositives  int // faulty server flagged
	FalsePositives int // any healthy server flagged
	TPRate         float64
	FPPerTrial     float64
}

// Evaluate runs trials across fault kinds and random fault servers and
// scores the diagnoser — the "at least 66% correct identification ... and
// essentially no falsely indicated servers" experiment.
func Evaluate(servers, windows, trials int, seed int64) Evaluation {
	r := rand.New(rand.NewSource(seed))
	kinds := []FaultKind{HogCPU, HogDisk, LossyNet}
	var ev Evaluation
	for i := 0; i < trials; i++ {
		kind := kinds[r.Intn(len(kinds))]
		fs := r.Intn(servers)
		c := Generate(servers, windows, kind, fs, r.Int63())
		d := Diagnose(c)
		hit := false
		for _, s := range d.Flagged {
			if s == fs {
				hit = true
			} else {
				ev.FalsePositives++
			}
		}
		if hit {
			ev.TruePositives++
		}
		ev.Trials++
	}
	ev.TPRate = float64(ev.TruePositives) / float64(ev.Trials)
	ev.FPPerTrial = float64(ev.FalsePositives) / float64(ev.Trials)
	return ev
}
