package diagnose

import (
	"testing"
)

func TestFaultKindStrings(t *testing.T) {
	for k, want := range map[FaultKind]string{
		NoFault: "none", HogCPU: "cpu-hog", HogDisk: "disk-hog", LossyNet: "lossy-net",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	c := Generate(20, 30, HogDisk, 7, 1)
	if c.Servers != 20 || c.Windows != 30 || len(c.Data) != 20 {
		t.Fatalf("cluster shape wrong: %+v", c)
	}
	if len(c.Data[0].Throughput) != 30 || len(c.Data[0].Latency) != 30 {
		t.Fatal("metric lengths wrong")
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Generate(2, 30, NoFault, -1, 1) },
		func() { Generate(20, 2, NoFault, -1, 1) },
		func() { Generate(20, 30, HogCPU, 99, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid Generate args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNoFaultNoFlags(t *testing.T) {
	// "Essentially no falsely indicated servers."
	for seed := int64(0); seed < 10; seed++ {
		c := Generate(20, 30, NoFault, -1, seed)
		if d := Diagnose(c); len(d.Flagged) != 0 {
			t.Fatalf("seed %d: healthy cluster flagged %v", seed, d.Flagged)
		}
	}
}

func TestDiskHogIdentified(t *testing.T) {
	c := Generate(20, 30, HogDisk, 4, 99)
	d := Diagnose(c)
	if len(d.Flagged) != 1 || d.Flagged[0] != 4 {
		t.Fatalf("flagged %v, want [4]", d.Flagged)
	}
}

func TestEvaluationMeetsReportNumbers(t *testing.T) {
	// Report: at least 66% correct identification, essentially no false
	// positives, on a 20-server cluster.
	ev := Evaluate(20, 30, 200, 5)
	if ev.TPRate < 0.66 {
		t.Fatalf("true positive rate = %.2f, want >= 0.66", ev.TPRate)
	}
	if ev.FPPerTrial > 0.05 {
		t.Fatalf("false positives per trial = %.3f, want ~0", ev.FPPerTrial)
	}
}

func TestDiagnoseDeterministic(t *testing.T) {
	c := Generate(20, 30, LossyNet, 11, 3)
	a, b := Diagnose(c), Diagnose(c)
	if len(a.Flagged) != len(b.Flagged) {
		t.Fatal("non-deterministic diagnosis")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median wrong")
	}
}
