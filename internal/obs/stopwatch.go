package obs

import "time"

// Stopwatch measures elapsed wall-clock time for the benchmark
// harnesses (plfsbench -indexbench, pdsirepro's index/mdindex timing
// loops) that report how fast the real machine runs, as opposed to the
// simulators, which must never see a wall clock.
//
// This file is the one sanctioned wall-time call site in the module:
// the walltime analyzer (cmd/pdsilint) forbids time.Now/time.Since
// everywhere else, so every harness measurement funnels through here
// and the escape-hatch surface stays a single file. Do not add
// //lint:allow walltime anywhere else without updating DESIGN.md's
// escape-hatch policy.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()} //lint:allow walltime -- the sanctioned harness stopwatch
}

// Elapsed returns the wall-clock time since StartStopwatch.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start) //lint:allow walltime -- the sanctioned harness stopwatch
}
