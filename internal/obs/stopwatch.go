//lint:allowfile walltime,walltime-reach -- the one sanctioned wall-clock root: harness stopwatch for cmd/ benchmark timing
package obs

import "time"

// Stopwatch measures elapsed wall-clock time for the benchmark
// harnesses (plfsbench -indexbench, pdsirepro's index/mdindex timing
// loops) that report how fast the real machine runs, as opposed to the
// simulators, which must never see a wall clock.
//
// This file is the one sanctioned wall-time call site in the module:
// the walltime analyzer (cmd/pdsilint) forbids time.Now/time.Since
// everywhere else, and the walltime-reach analyzer treats the functions
// declared in this file — and only these — as sanctioned roots where
// wall-clock taint stops, enforcing in exchange that they are called
// only from cmd/ harnesses and tests. Every harness measurement
// funnels through here and the escape-hatch surface stays a single
// file. Do not add another allowfile for these analyzers without
// updating DESIGN.md's escape-hatch policy.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall-clock time since StartStopwatch.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
