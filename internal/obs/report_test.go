package obs

import (
	"bytes"
	"strings"
	"testing"
)

// reportSnapshot builds a small analytics-enabled snapshot by driving
// real instruments, so the test exercises the same path as a run.
func reportSnapshot() Snapshot {
	r := NewRegistry()
	r.EnableOpTimers()
	r.EnableTimeSeries(0.5)
	set := r.OpTimerSet("pfs.write")
	for i := 0; i < 10; i++ {
		ot := set.Start(float64(i))
		ot.Add(StageNet, 0.010)
		ot.Add(StageDiskTransfer, 0.020)
		set.Observe(ot, float64(i)+0.040)
	}
	r.Gauge("pfs.oss00.disk.utilization").Set(0.75)
	r.Gauge("pfs.oss01.disk.utilization").Set(0.25)
	ts := r.TimeSeries("pfs.ops.inflight")
	for i := 0; i < 8; i++ {
		ts.Observe(float64(i)*0.5, float64(i%4))
	}
	return r.Snapshot()
}

func TestWriteReportSections(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, reportSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== Latency SLOs",
		"pfs.write.latency_s",
		"== Stage attribution",
		"disk_transfer",
		"residual",
		"== Top bottlenecks",
		"pfs.write      disk_transfer",
		"== Busiest servers",
		"pfs.oss00.disk.utilization",
		"== Timelines",
		"pfs.ops.inflight",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Total latency is 0.040 per op; attribution covers 0.030 of it.
	if !strings.Contains(out, "0.400000 s total latency") {
		t.Fatalf("report missing total latency line:\n%s", out)
	}
}

func TestWriteReportDeterministic(t *testing.T) {
	s := reportSnapshot()
	var a, b bytes.Buffer
	if err := WriteReport(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same snapshot differ")
	}
}

func TestWriteReportEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "(none)"); n != 5 {
		t.Fatalf("empty report has %d (none) sections, want 5:\n%s", n, buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1}, 10)
	if got != "▁█" {
		t.Fatalf("sparkline = %q, want low/high pair", got)
	}
	// Constant series renders all-low, not a divide-by-zero artifact.
	if got := sparkline([]float64{5, 5, 5}, 10); got != "▁▁▁" {
		t.Fatalf("constant sparkline = %q", got)
	}
	// Long series resample down to the requested width.
	long := make([]float64, 600)
	for i := range long {
		long[i] = float64(i)
	}
	if got := sparkline(long, 60); len([]rune(got)) != 60 {
		t.Fatalf("resampled sparkline has %d cells, want 60", len([]rune(got)))
	}
}
