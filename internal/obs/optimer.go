package obs

// Per-operation stage attribution. An OpTimer rides along one logical
// operation (a striped write or read, across every piece and retry) and
// accumulates the simulated seconds attributable to each Stage. At
// completion an OpTimerSet folds the timer into exact per-stage
// quantiles plus a "which stage dominated this op" bottleneck counter —
// the critical-path summary the report renderer turns into a top-k
// table. Stage seconds are summed across a striped op's parallel
// pieces, so they measure where simulated work accumulates; the
// end-to-end latency of the op itself is the separate total quantile
// (stages can legitimately sum past it under parallelism, and fall
// short of it where unattributed costs like RPC timeouts or repair
// reads remain — the report shows the residual).

// Stage identifies one latency stage on the pfs data path.
type Stage uint8

const (
	// StageQueue is time spent waiting in any FIFO (client NIC, server
	// NIC, disk queue) before service starts.
	StageQueue Stage = iota
	// StageNet is NIC transfer service time, client and server side.
	StageNet
	// StageRPC is fixed per-piece RPC latency.
	StageRPC
	// StageLockWait is stripe-lock acquisition wait, including revoke
	// round-trips.
	StageLockWait
	// StageDiskSeek is mechanical head-positioning seek time.
	StageDiskSeek
	// StageDiskRotation is rotational latency on non-sequential access.
	StageDiskRotation
	// StageDiskTransfer is media transfer time.
	StageDiskTransfer
	// StageDegraded is the extra disk cost of degraded-mode reads
	// (parity reconstruction or rebuild interference) beyond the
	// fault-free service time.
	StageDegraded
	// StageBackoff is retry backoff delay accumulated across attempts.
	StageBackoff
	// StageFlash is flash program/read service time on the burst-buffer
	// hop (FTL page programming including inline GC).
	StageFlash

	// NumStages is the number of stages; it must stay last.
	NumStages
)

// stageNames are the metric-name segments per stage; they must satisfy
// the pdsilint metricname segment grammar (lowercase, underscores).
var stageNames = [NumStages]string{
	"queue",
	"net",
	"rpc",
	"lock_wait",
	"disk_seek",
	"disk_rotation",
	"disk_transfer",
	"degraded",
	"backoff",
	"flash",
}

// String returns the stage's metric-name segment.
func (s Stage) String() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// OpTimer accumulates per-stage simulated seconds for one operation. It
// is owned by a single logical op inside the single-threaded simulation,
// so it needs no locking. A nil *OpTimer is a valid no-op: probe sites
// call Add unconditionally and pay one branch when analytics are off.
type OpTimer struct {
	start  float64
	stages [NumStages]float64
}

// Add charges sec seconds to stage s. No-op on a nil receiver or an
// out-of-range stage.
func (t *OpTimer) Add(s Stage, sec float64) {
	if t == nil || s >= NumStages {
		return
	}
	t.stages[s] += sec
}

// Stage returns the seconds accumulated against s (0 on a nil receiver).
func (t *OpTimer) Stage(s Stage) float64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.stages[s]
}

// Start returns the sim-time the timer was started at.
func (t *OpTimer) Start() float64 {
	if t == nil {
		return 0
	}
	return t.start
}

// OpTimerSet is the instrument family for one operation kind (e.g.
// "pfs.write"): an end-to-end latency quantile, one quantile per stage,
// and one bottleneck counter per stage. A nil *OpTimerSet is a valid
// no-op — Start returns a nil timer and Observe does nothing — so the
// whole attribution layer vanishes when analytics are disabled.
type OpTimerSet struct {
	total      *Quantile
	stage      [NumStages]*Quantile
	bottleneck [NumStages]*Counter
}

// OpTimerSet returns the instrument family rooted at base, registering
// base+".latency_s", base+".stage.<stage>_s" quantiles and
// base+".bottleneck.<stage>" counters. Returns nil unless EnableOpTimers
// has armed the registry, so op timers are strictly opt-in and default
// snapshots stay byte-identical.
func (r *Registry) OpTimerSet(base string) *OpTimerSet {
	if r == nil || !r.OpTimersEnabled() {
		return nil
	}
	s := &OpTimerSet{total: r.Quantile(base + ".latency_s")}
	for st := Stage(0); st < NumStages; st++ {
		s.stage[st] = r.Quantile(base + ".stage." + st.String() + "_s")
		s.bottleneck[st] = r.Counter(base + ".bottleneck." + st.String())
	}
	return s
}

// EnableOpTimers arms the registry for per-operation stage attribution;
// until called, OpTimerSet returns nil. No-op on a nil registry.
func (r *Registry) EnableOpTimers() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.opTimers = true
}

// OpTimersEnabled reports whether EnableOpTimers has been called (false
// on a nil registry).
func (r *Registry) OpTimersEnabled() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opTimers
}

// Start returns a new timer stamped at sim-time nowSec, or nil on a nil
// set — the one allocation per observed operation, paid only when
// analytics are enabled.
func (s *OpTimerSet) Start(nowSec float64) *OpTimer {
	if s == nil {
		return nil
	}
	return &OpTimer{start: nowSec}
}

// Observe folds a completed operation into the set: total end-to-end
// latency, every stage's accumulated seconds (zeros included, so stage
// quantiles share one population), and one bottleneck count for the
// stage that dominated (ties break to the lowest stage index, which
// keeps runs deterministic). No-op when the set or timer is nil.
func (s *OpTimerSet) Observe(t *OpTimer, endSec float64) {
	if s == nil || t == nil {
		return
	}
	s.total.Observe(endSec - t.start)
	top, topV := -1, 0.0
	for st := Stage(0); st < NumStages; st++ {
		v := t.stages[st]
		s.stage[st].Observe(v)
		if v > topV {
			top, topV = int(st), v
		}
	}
	if top >= 0 {
		s.bottleneck[top].Inc()
	}
}
