package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter Value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge Value = %v", g.Value())
	}
	h := r.Histogram("z", TimeBuckets())
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("nil histogram recorded observations")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot non-empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("util")
	g.Set(0.25)
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75 (last value wins)", got)
	}
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	wantCounts := []uint64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	if s.Count != 5 || s.Min != 0.5 || s.Max != 5000 {
		t.Fatalf("summary = count %d min %v max %v", s.Count, s.Min, s.Max)
	}
	if got, want := h.Mean(), (0.5+5+5+50+5000)/5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("live", func() float64 { return v })
	v = 42
	if got := r.Snapshot().Gauges["live"]; got != 42 {
		t.Fatalf("gauge func = %v, want 42 (lazy evaluation)", got)
	}
}

func TestSnapshotJSONIsStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insert in different orders across the two builds.
		names := []string{"zeta", "alpha", "mid"}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
			r.Gauge("g." + n).Set(float64(len(n)) / 3)
			r.Histogram("h."+n, TimeBuckets()).Observe(1e-3)
		}
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Keys serialize sorted.
	out := a.String()
	if strings.Index(out, `"alpha"`) > strings.Index(out, `"zeta"`) {
		t.Fatalf("keys not sorted:\n%s", out)
	}
	// And the output round-trips as JSON.
	var s Snapshot
	if err := json.Unmarshal(a.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["zeta"] != 4 {
		t.Fatalf("round-trip lost data: %+v", s)
	}
}

func TestSnapshotClampsNonFiniteGauges(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("bad", func() float64 { return 1.0 / zero() })
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("non-finite gauge broke serialization: %v", err)
	}
	if got := r.Snapshot().Gauges["bad"]; got != 0 {
		t.Fatalf("non-finite gauge = %v, want 0", got)
	}
}

// zero defeats constant folding so 1/0 is a runtime +Inf, not a compile
// error.
func zero() float64 { return 0 }

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if n := len(TimeBuckets()); n != 10 {
		t.Fatalf("TimeBuckets len = %d", n)
	}
}
