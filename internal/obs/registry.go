//lint:allowfile goroutine -- sanctioned site: one registry is shared by parallel shard runners; counters use atomics so sim-time code stays lock-free

// Package obs is the deterministic observability layer shared by every
// substrate in this repository: a metrics registry (counters, gauges,
// fixed-bucket histograms) whose snapshots serialize to stable-ordered
// JSON, and a span tracer keyed to simulated time that emits Chrome
// trace-event JSON (viewable in Perfetto or chrome://tracing).
//
// Two properties drive the design:
//
//   - Determinism. Every value recorded is derived from simulation state,
//     never from wall clocks, map iteration order, or goroutine
//     interleaving in the single-threaded simulators. Snapshots are
//     serialized with sorted keys, so two runs with the same seed produce
//     byte-identical output — which makes metrics diffable across commits
//     and lets tests assert on whole snapshots.
//
//   - Near-zero cost when disabled. All instrument handles (*Counter,
//     *Gauge, *Histogram, *Tracer) are nil-safe: methods on nil receivers
//     are no-ops that compile to a pointer test. Code instruments
//     unconditionally; when no registry is attached the handles are nil
//     and the hot path pays a single branch.
//
// The registry knows nothing about the simulation kernel (it works in
// plain float64 seconds), so it sits below every other package.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero of a nil
// *Counter is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= Buckets[i]; one implicit overflow bucket counts the
// rest. Fixed buckets (rather than adaptive ones) keep snapshots
// comparable across runs and configurations.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // sorted upper bounds
	counts  []uint64  // len(buckets)+1, last is overflow
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Buckets: append([]float64(nil), h.buckets...),
		Counts:  append([]uint64(nil), h.counts...),
		Count:   h.count,
		Sum:     h.sum,
	}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	return s
}

// TimeBuckets returns the standard sim-time bucket bounds, exponential
// from 1 microsecond to 1000 seconds — wide enough for RPC latencies and
// whole checkpoint phases alike.
func TimeBuckets() []float64 {
	return ExpBuckets(1e-6, 10, 10)
}

// CountBuckets returns power-of-two bounds 1..1024 for small-integer
// distributions (queue depths, fan-outs).
func CountBuckets() []float64 {
	return ExpBuckets(1, 2, 11)
}

// ExpBuckets returns n bounds starting at start, each factor times the
// previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry holds named instruments. The zero value of a nil *Registry is
// valid: every lookup returns a nil instrument, so uninstrumented runs
// cost one branch per probe site.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	quants   map[string]*Quantile
	series   map[string]*TimeSeries

	// Opt-in analytics switches. Both default off so a plain registry's
	// snapshot is byte-identical to what it was before these layers
	// existed; see EnableOpTimers and EnableTimeSeries.
	opTimers     bool
	seriesWindow float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		quants:   make(map[string]*Quantile),
		series:   make(map[string]*TimeSeries),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated lazily at snapshot time —
// the right shape for end-of-run values (utilizations, accumulated time
// splits) that would otherwise need hot-path updates. Re-registering a
// name replaces the callback (later simulation instances win).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram with the given bucket bounds,
// creating it on first use (an existing histogram keeps its original
// buckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), buckets...)
		sort.Float64s(b)
		h = &Histogram{buckets: b, counts: make([]uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the serialized state of one histogram.
type HistogramSnapshot struct {
	Buckets []float64 `json:"buckets"`
	Counts  []uint64  `json:"counts"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument. Maps serialize
// with sorted keys under encoding/json, so MarshalJSON output is
// byte-stable for identical values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`

	// Quantiles and Series exist only on analytics-enabled runs; omitempty
	// keeps default snapshots byte-identical to the pre-analytics golden.
	Quantiles map[string]QuantileSnapshot   `json:"quantiles,omitempty"`
	Series    map[string]TimeSeriesSnapshot `json:"timeseries,omitempty"`
}

// Snapshot captures current values, evaluating gauge callbacks. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	quants := make(map[string]*Quantile, len(r.quants))
	for k, v := range r.quants {
		quants[k] = v
	}
	series := make(map[string]*TimeSeries, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = finite(g.Value())
	}
	for k, fn := range fns {
		s.Gauges[k] = finite(fn())
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	if len(quants) > 0 {
		s.Quantiles = make(map[string]QuantileSnapshot, len(quants))
		for k, q := range quants {
			s.Quantiles[k] = q.snapshot()
		}
	}
	if len(series) > 0 {
		s.Series = make(map[string]TimeSeriesSnapshot, len(series))
		for k, ts := range series {
			s.Series[k] = ts.snapshot()
		}
	}
	return s
}

// finite clamps NaN and infinities to zero so snapshots always serialize
// (encoding/json rejects non-finite floats).
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WriteJSON serializes a snapshot as indented, stable-ordered JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
