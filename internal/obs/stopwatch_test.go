package obs

import "testing"

func TestStopwatch(t *testing.T) {
	sw := StartStopwatch()
	// Burn a little CPU so the clock observably advances even at coarse
	// timer granularity.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	d1 := sw.Elapsed()
	if d1 < 0 {
		t.Fatalf("Elapsed() = %v, want >= 0", d1)
	}
	d2 := sw.Elapsed()
	if d2 < d1 {
		t.Fatalf("Elapsed() went backwards: %v then %v", d1, d2)
	}
}
