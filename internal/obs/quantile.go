//lint:allowfile goroutine -- sanctioned site: quantile samples arrive from parallel shard runners under a mutex

package obs

import (
	"math"
	"sort"
	"sync"
)

// Quantile records every observation exactly and reports exact
// nearest-rank quantiles at snapshot time. Unlike Histogram, which trades
// precision for fixed memory, a Quantile keeps the full sample set — the
// right trade for per-operation latency SLOs, where a simulated run
// observes thousands of operations (not billions) and the report must
// state p99/p999 exactly, byte-identically across runs.
//
// The zero of a nil *Quantile is a valid no-op instrument, matching the
// other obs handles: probe sites call Observe unconditionally and pay one
// branch when analytics are disabled.
type Quantile struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
}

// Observe records one sample. No-op on a nil receiver.
func (q *Quantile) Observe(v float64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.samples = append(q.samples, v)
	q.sum += v
	q.mu.Unlock()
}

// Count returns the number of observations (0 on a nil receiver).
func (q *Quantile) Count() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.samples)
}

// QuantileSnapshot is the serialized state of one quantile metric. The
// reported ranks are exact (nearest-rank over the full sorted sample
// set), not estimates.
type QuantileSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Percentile returns the exact nearest-rank q-quantile (0 < q <= 1) of
// the samples, or 0 for an empty set. It sorts a copy, leaving the input
// untouched — the standalone companion to the Quantile instrument for
// harnesses that collect their own sample slices (the rebuild experiment
// reports foreground p99 under rebuild storms through it).
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return rank(sorted, q)
}

// rank returns the exact nearest-rank q-quantile (0 < q <= 1) of sorted,
// which must be ascending and non-empty.
func rank(sorted []float64, q float64) float64 {
	i := int(math.Ceil(float64(len(sorted))*q)) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (q *Quantile) snapshot() QuantileSnapshot {
	q.mu.Lock()
	sorted := append([]float64(nil), q.samples...)
	sum := q.sum
	q.mu.Unlock()
	s := QuantileSnapshot{Count: uint64(len(sorted)), Sum: finite(sum)}
	if len(sorted) == 0 {
		return s
	}
	sort.Float64s(sorted)
	s.Min = finite(sorted[0])
	s.Max = finite(sorted[len(sorted)-1])
	s.P50 = finite(rank(sorted, 0.50))
	s.P90 = finite(rank(sorted, 0.90))
	s.P99 = finite(rank(sorted, 0.99))
	s.P999 = finite(rank(sorted, 0.999))
	return s
}

// Quantile returns the named exact-quantile metric, creating it on first
// use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Quantile(name string) *Quantile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.quants[name]
	if !ok {
		q = &Quantile{}
		r.quants[name] = q
	}
	return q
}
