package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Span("cat", "x", 0, 0, 1, nil)
	tr.Instant("cat", "y", 0, 0)
	if tr.Len() != 0 {
		t.Fatalf("nil tracer Len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if f.TraceEvents == nil || len(f.TraceEvents) != 0 {
		t.Fatalf("empty trace should serialize as [], got %v", f.TraceEvents)
	}
}

func TestTracerEmitsChromeTraceEvents(t *testing.T) {
	tr := NewTracer()
	tr.Span("pfs", "write", 3, 0.001, 0.0035, map[string]any{"size": int64(4096)})
	tr.Instant("pfs", "drop", 1, 0.002)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	span := f.TraceEvents[0]
	if span.Ph != "X" || span.Name != "write" || span.Cat != "pfs" || span.TID != 3 {
		t.Fatalf("span = %+v", span)
	}
	// Sim seconds convert to trace microseconds.
	if span.TS != 1000 || span.Dur != 2500 {
		t.Fatalf("span ts/dur = %v/%v, want 1000/2500", span.TS, span.Dur)
	}
	inst := f.TraceEvents[1]
	if inst.Ph != "i" || inst.TS != 2000 {
		t.Fatalf("instant = %+v", inst)
	}
}

func TestTracerDeterministicBytes(t *testing.T) {
	build := func() []byte {
		tr := NewTracer()
		for i := 0; i < 10; i++ {
			tr.Span("c", "op", int64(i%3), float64(i), float64(i)+0.5,
				map[string]any{"i": int64(i), "b": "x"})
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical traces serialized to different bytes")
	}
}

// TestTracerOrderedCanonicalizesAppendOrder: in ordered mode the write
// order is (TS, PID, TID, per-lane arrival index), so traces built by
// appending the same per-lane streams in different global interleavings
// serialize identically — the property sim.Cluster relies on when shard
// workers append concurrently.
func TestTracerOrderedCanonicalizesAppendOrder(t *testing.T) {
	build := func(lanesFirst bool) []byte {
		tr := NewTracer()
		tr.Ordered()
		emit := func(tid int64) {
			for i := 0; i < 5; i++ {
				tr.Span("c", "op", tid, float64(i), float64(i)+0.25, nil)
				tr.Instant("c", "mark", tid, float64(i)+0.5)
			}
		}
		if lanesFirst {
			emit(0)
			emit(1)
		} else {
			emit(1)
			emit(0)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(true), build(false)
	if !bytes.Equal(a, b) {
		t.Fatalf("ordered traces differ by append interleaving:\n%s\nvs\n%s", a, b)
	}
	// Same-timestamp events within one lane must keep arrival order.
	tr := NewTracer()
	tr.Ordered()
	tr.Instant("c", "first", 2, 1.0)
	tr.Instant("c", "second", 2, 1.0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if first := bytes.Index(buf.Bytes(), []byte("first")); first < 0 || bytes.Index(buf.Bytes(), []byte("second")) < first {
		t.Fatalf("same-time lane events reordered: %s", buf.Bytes())
	}
}
