package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report rendering: turn an analytics-enabled Snapshot into the textual
// dashboard behind `pdsirepro -report` — an SLO table of exact latency
// quantiles, a per-stage attribution breakdown with a top-bottleneck
// summary, the busiest servers by utilization, and sim-time utilization
// sparklines. Everything renders from sorted keys with fixed-precision
// formatting, so the same snapshot always produces identical bytes.

const sparkRunes = "▁▂▃▄▅▆▇█"

// sortedKeys returns m's keys in sorted order, for deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sparkline renders vals resampled to at most width cells, scaled
// between min and max.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	n := len(vals)
	if width > n {
		width = n
	}
	runes := []rune(sparkRunes)
	var b strings.Builder
	for i := 0; i < width; i++ {
		v := vals[i*n/width]
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(runes)-1))
		}
		b.WriteRune(runes[idx])
	}
	return b.String()
}

// stageKey splits a per-stage quantile name "<base>.stage.<stage>_s"
// into its base and stage segment; ok is false for any other shape.
func stageKey(name string) (base, stage string, ok bool) {
	i := strings.Index(name, ".stage.")
	if i < 0 || !strings.HasSuffix(name, "_s") {
		return "", "", false
	}
	return name[:i], strings.TrimSuffix(name[i+len(".stage."):], "_s"), true
}

// WriteReport renders the snapshot as a textual dashboard. It is useful
// only on analytics-enabled snapshots (quantiles and/or series
// present); sections with no data render a single "(none)" line so the
// report shape is stable.
func WriteReport(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	writeSLOTable(bw, s)
	writeStageAttribution(bw, s)
	writeBottlenecks(bw, s)
	writeBusiest(bw, s)
	writeTimelines(bw, s)

	return bw.Flush()
}

// writeSLOTable prints exact end-to-end quantiles for every
// non-stage quantile metric.
func writeSLOTable(bw *bufio.Writer, s Snapshot) {
	fmt.Fprintf(bw, "== Latency SLOs (exact quantiles, seconds) ==\n")
	fmt.Fprintf(bw, "%-36s %8s %12s %12s %12s %12s %12s\n",
		"metric", "count", "p50", "p90", "p99", "p999", "max")
	rows := 0
	for _, name := range sortedKeys(s.Quantiles) {
		if _, _, isStage := stageKey(name); isStage {
			continue
		}
		q := s.Quantiles[name]
		fmt.Fprintf(bw, "%-36s %8d %12.6f %12.6f %12.6f %12.6f %12.6f\n",
			name, q.Count, q.P50, q.P90, q.P99, q.P999, q.Max)
		rows++
	}
	if rows == 0 {
		fmt.Fprintf(bw, "(none)\n")
	}
	fmt.Fprintf(bw, "\n")
}

// writeStageAttribution prints, per operation kind, each stage's
// accumulated seconds, its share of the total accumulated latency, and
// exact stage quantiles. The residual row is total minus attributed:
// positive residual is unattributed cost (RPC timeouts, repair reads),
// negative means stages overlapped in parallel across striped pieces.
func writeStageAttribution(bw *bufio.Writer, s Snapshot) {
	fmt.Fprintf(bw, "== Stage attribution (per-op accumulated seconds) ==\n")
	type stageRow struct {
		stage string
		q     QuantileSnapshot
	}
	groups := map[string][]stageRow{}
	for _, name := range sortedKeys(s.Quantiles) {
		base, stage, ok := stageKey(name)
		if !ok {
			continue
		}
		groups[base] = append(groups[base], stageRow{stage, s.Quantiles[name]})
	}
	if len(groups) == 0 {
		fmt.Fprintf(bw, "(none)\n\n")
		return
	}
	for _, base := range sortedKeys(groups) {
		total, hasTotal := s.Quantiles[base+".latency_s"]
		fmt.Fprintf(bw, "%s (%d ops, %.6f s total latency)\n", base, total.Count, total.Sum)
		fmt.Fprintf(bw, "  %-14s %14s %7s %12s %12s %12s\n",
			"stage", "total_s", "share", "p50", "p99", "p999")
		attributed := 0.0
		// Rows sort by accumulated seconds, heaviest first; ties break
		// on the stage name so output stays deterministic.
		rows := groups[base]
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].q.Sum != rows[j].q.Sum {
				return rows[i].q.Sum > rows[j].q.Sum
			}
			return rows[i].stage < rows[j].stage
		})
		for _, row := range rows {
			share := 0.0
			if hasTotal && total.Sum > 0 {
				share = row.q.Sum / total.Sum * 100
			}
			fmt.Fprintf(bw, "  %-14s %14.6f %6.1f%% %12.6f %12.6f %12.6f\n",
				row.stage, row.q.Sum, share, row.q.P50, row.q.P99, row.q.P999)
			attributed += row.q.Sum
		}
		if hasTotal {
			fmt.Fprintf(bw, "  %-14s %14.6f\n", "residual", total.Sum-attributed)
		}
	}
	fmt.Fprintf(bw, "\n")
}

// writeBottlenecks prints the top-k table of dominant stages: for each
// operation kind, how many ops spent most of their attributed time in
// each stage.
func writeBottlenecks(bw *bufio.Writer, s Snapshot) {
	fmt.Fprintf(bw, "== Top bottlenecks (ops dominated by stage) ==\n")
	type row struct {
		base, stage string
		n           int64
	}
	byBase := map[string][]row{}
	var totals = map[string]int64{}
	for _, name := range sortedKeys(s.Counters) {
		i := strings.Index(name, ".bottleneck.")
		if i < 0 {
			continue
		}
		n := s.Counters[name]
		if n == 0 {
			continue
		}
		base, stage := name[:i], name[i+len(".bottleneck."):]
		byBase[base] = append(byBase[base], row{base, stage, n})
		totals[base] += n
	}
	if len(byBase) == 0 {
		fmt.Fprintf(bw, "(none)\n\n")
		return
	}
	fmt.Fprintf(bw, "%-14s %-14s %10s %7s\n", "op", "stage", "ops", "share")
	for _, base := range sortedKeys(byBase) {
		rows := byBase[base]
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].stage < rows[j].stage
		})
		for _, r := range rows {
			fmt.Fprintf(bw, "%-14s %-14s %10d %6.1f%%\n",
				r.base, r.stage, r.n, float64(r.n)/float64(totals[base])*100)
		}
	}
	fmt.Fprintf(bw, "\n")
}

// writeBusiest prints the top-k utilization gauges — the busiest NICs,
// disk queues, and metadata servers of the run.
func writeBusiest(bw *bufio.Writer, s Snapshot) {
	const topK = 10
	fmt.Fprintf(bw, "== Busiest servers (top %d by utilization) ==\n", topK)
	type row struct {
		name string
		util float64
	}
	var rows []row
	for _, name := range sortedKeys(s.Gauges) {
		if strings.HasSuffix(name, ".utilization") {
			rows = append(rows, row{name, s.Gauges[name]})
		}
	}
	if len(rows) == 0 {
		fmt.Fprintf(bw, "(none)\n\n")
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].util != rows[j].util {
			return rows[i].util > rows[j].util
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > topK {
		rows = rows[:topK]
	}
	for _, r := range rows {
		fmt.Fprintf(bw, "%-36s %8.4f\n", r.name, r.util)
	}
	fmt.Fprintf(bw, "\n")
}

// writeTimelines prints one sparkline per sim-time series.
func writeTimelines(bw *bufio.Writer, s Snapshot) {
	fmt.Fprintf(bw, "== Timelines (sim-time series) ==\n")
	if len(s.Series) == 0 {
		fmt.Fprintf(bw, "(none)\n")
		return
	}
	for _, name := range sortedKeys(s.Series) {
		ts := s.Series[name]
		if len(ts.Values) == 0 {
			continue
		}
		lo, hi := ts.Values[0], ts.Values[0]
		for _, v := range ts.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(bw, "%-36s [%.4g..%.4g] %s\n", name, lo, hi, sparkline(ts.Values, 60))
	}
}
