//lint:allowfile goroutine -- sanctioned site: spans are emitted from parallel shard runners under a mutex

package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// TraceEvent is one record in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are in microseconds of *simulated* time;
// "pid" groups a subsystem's lane block and "tid" one actor's lane
// within it (a client rank, a server, a TCP sender).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`

	// laneSeq is the event's arrival index within its (PID, TID) lane,
	// assigned under the tracer lock. Unexported, so it never reaches
	// the JSON; it only breaks same-timestamp ties in ordered mode.
	laneSeq uint64
}

// laneKey identifies one trace lane: a subsystem block and an actor
// within it.
type laneKey struct{ pid, tid int64 }

// Tracer accumulates trace events. A nil *Tracer is the disabled tracer:
// every method is a no-op, so probe sites cost one branch when tracing
// is off.
type Tracer struct {
	mu      sync.Mutex
	events  []TraceEvent
	lanes   map[laneKey]uint64
	ordered bool
}

// NewTracer returns an empty, enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether events will be recorded. Callers with
// non-trivial argument construction should gate on this to keep the
// disabled path free.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records a complete ("ph":"X") event covering [startSec, endSec]
// of simulated time. Args may be nil; when present it is serialized with
// sorted keys, preserving snapshot determinism.
func (t *Tracer) Span(cat, name string, tid int64, startSec, endSec float64, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: startSec * 1e6, Dur: (endSec - startSec) * 1e6,
		TID: tid, Args: args,
	})
}

// Instant records a zero-duration ("ph":"i") event at atSec.
func (t *Tracer) Instant(cat, name string, tid int64, atSec float64) {
	t.InstantArgs(cat, name, tid, atSec, nil)
}

// InstantArgs is Instant with an argument map (serialized with sorted
// keys, preserving snapshot determinism). Fault injectors use it to mark
// crash/recovery points with their target and downtime.
func (t *Tracer) InstantArgs(cat, name string, tid int64, atSec float64, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: atSec * 1e6, TID: tid, Args: args})
}

func (t *Tracer) append(e TraceEvent) {
	k := laneKey{pid: e.PID, tid: e.TID}
	t.mu.Lock()
	if t.lanes == nil {
		t.lanes = make(map[laneKey]uint64)
	}
	e.laneSeq = t.lanes[k]
	t.lanes[k] = e.laneSeq + 1
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Ordered switches the tracer to deterministic write order: WriteJSON
// sorts events by (timestamp, pid, tid, lane arrival index) instead of
// using raw append order. Append order is already deterministic in a
// single-threaded simulation, but a sim.Cluster appends from several
// shard workers whose interleaving depends on scheduling; the sort
// restores a canonical order — byte-identical across shard counts and
// GOMAXPROCS — provided each lane is written from a single shard, which
// is the cluster's lane-affinity contract. No-op on a nil tracer.
func (t *Tracer) Ordered() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ordered = true
	t.mu.Unlock()
}

// Len reports recorded events (0 when nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the on-disk JSON object shape Perfetto and
// chrome://tracing both accept.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON serializes the trace. Event order is append order, which is
// deterministic in the single-threaded simulators; a tracer in ordered
// mode (see Ordered) sorts by (timestamp, lane, lane sequence) instead.
// A nil tracer writes a valid empty trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := []TraceEvent{}
	ordered := false
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		ordered = t.ordered
		t.mu.Unlock()
	}
	if ordered {
		sort.Slice(events, func(i, j int) bool {
			a, b := &events[i], &events[j]
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			if a.PID != b.PID {
				return a.PID < b.PID
			}
			if a.TID != b.TID {
				return a.TID < b.TID
			}
			return a.laneSeq < b.laneSeq
		})
	}
	buf, err := json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
