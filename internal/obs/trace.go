package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceEvent is one record in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are in microseconds of *simulated* time;
// "pid" groups a subsystem's lane block and "tid" one actor's lane
// within it (a client rank, a server, a TCP sender).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer accumulates trace events. A nil *Tracer is the disabled tracer:
// every method is a no-op, so probe sites cost one branch when tracing
// is off.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns an empty, enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether events will be recorded. Callers with
// non-trivial argument construction should gate on this to keep the
// disabled path free.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records a complete ("ph":"X") event covering [startSec, endSec]
// of simulated time. Args may be nil; when present it is serialized with
// sorted keys, preserving snapshot determinism.
func (t *Tracer) Span(cat, name string, tid int64, startSec, endSec float64, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: startSec * 1e6, Dur: (endSec - startSec) * 1e6,
		TID: tid, Args: args,
	})
}

// Instant records a zero-duration ("ph":"i") event at atSec.
func (t *Tracer) Instant(cat, name string, tid int64, atSec float64) {
	t.InstantArgs(cat, name, tid, atSec, nil)
}

// InstantArgs is Instant with an argument map (serialized with sorted
// keys, preserving snapshot determinism). Fault injectors use it to mark
// crash/recovery points with their target and downtime.
func (t *Tracer) InstantArgs(cat, name string, tid int64, atSec float64, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: atSec * 1e6, TID: tid, Args: args})
}

func (t *Tracer) append(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len reports recorded events (0 when nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the on-disk JSON object shape Perfetto and
// chrome://tracing both accept.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON serializes the trace. Event order is append order, which is
// deterministic in the single-threaded simulators. A nil tracer writes a
// valid empty trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := []TraceEvent{}
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
	}
	buf, err := json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
