//lint:allowfile goroutine -- sanctioned site: time series are recorded from parallel shard runners under a mutex

package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
)

// TimeSeries records a value over simulated time in fixed windows: each
// window of width WindowSec keeps the last value observed inside it
// (last-value-wins, like a gauge sampled on a grid). Windows with no
// observation are simply absent, so a series costs memory proportional
// to the samples actually taken, not to elapsed sim time.
//
// Series are opt-in: Registry.TimeSeries returns nil until
// EnableTimeSeries arms the registry with a window width, so default
// runs pay nothing and serialize unchanged snapshots.
type TimeSeries struct {
	mu     sync.Mutex
	window float64
	wins   []int64 // ascending window indices
	vals   []float64
}

// Observe records v for the window containing sim-time tSec (seconds).
// Within one window the last observation wins. Observations must arrive
// in non-decreasing time order, which simulated time guarantees; a
// stale window index is dropped rather than reordered. No-op on a nil
// receiver.
func (ts *TimeSeries) Observe(tSec, v float64) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	w := int64(tSec / ts.window)
	if n := len(ts.wins); n > 0 {
		switch last := ts.wins[n-1]; {
		case w == last:
			ts.vals[n-1] = v
			return
		case w < last:
			return
		}
	}
	ts.wins = append(ts.wins, w)
	ts.vals = append(ts.vals, v)
}

// Len returns the number of populated windows (0 on a nil receiver).
func (ts *TimeSeries) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.wins)
}

// TimeSeriesSnapshot is the serialized state of one series: parallel
// arrays of window-start times and values.
type TimeSeriesSnapshot struct {
	WindowSec float64   `json:"window_s"`
	Times     []float64 `json:"t_s"`
	Values    []float64 `json:"values"`
}

func (ts *TimeSeries) snapshot() TimeSeriesSnapshot {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s := TimeSeriesSnapshot{
		WindowSec: ts.window,
		Times:     make([]float64, len(ts.wins)),
		Values:    make([]float64, len(ts.vals)),
	}
	for i, w := range ts.wins {
		s.Times[i] = finite(float64(w) * ts.window)
		s.Values[i] = finite(ts.vals[i])
	}
	return s
}

// EnableTimeSeries arms the registry for sim-time series with the given
// window width in seconds; until called, TimeSeries returns nil. The
// first call wins — window width is a per-run constant so every series
// shares one time grid. No-op on a nil registry or non-positive window.
func (r *Registry) EnableTimeSeries(windowSec float64) {
	if r == nil || windowSec <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seriesWindow == 0 {
		r.seriesWindow = windowSec
	}
}

// SeriesWindow returns the armed series window in seconds, or 0 when
// series are disabled (including on a nil registry). Probe sites use
// this to skip sampling setup entirely when off.
func (r *Registry) SeriesWindow() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seriesWindow
}

// TimeSeries returns the named series, creating it on first use. Returns
// nil — a valid no-op instrument — on a nil registry or when
// EnableTimeSeries has not armed a window.
func (r *Registry) TimeSeries(name string) *TimeSeries {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seriesWindow == 0 {
		return nil
	}
	ts, ok := r.series[name]
	if !ok {
		ts = &TimeSeries{window: r.seriesWindow}
		r.series[name] = ts
	}
	return ts
}

// WriteSeriesCSV serializes every armed series as one wide CSV table:
// the header is t_s followed by the series names in sorted order, and
// each row is one populated window. A window missing from a series
// leaves that cell empty. Output is byte-stable for identical runs —
// names sort, windows ascend, and floats format with strconv's shortest
// round-trip form.
func (r *Registry) WriteSeriesCSV(w io.Writer) error {
	snaps := map[string]TimeSeriesSnapshot{}
	if r != nil {
		r.mu.Lock()
		series := make(map[string]*TimeSeries, len(r.series))
		for k, v := range r.series {
			series[k] = v
		}
		r.mu.Unlock()
		for k, ts := range series {
			snaps[k] = ts.snapshot()
		}
	}
	names := make([]string, 0, len(snaps))
	for k := range snaps {
		names = append(names, k)
	}
	sort.Strings(names)

	// Union of populated window times across all series.
	timeSet := map[float64]bool{}
	for _, name := range names {
		for _, t := range snaps[name].Times {
			timeSet[t] = true
		}
	}
	times := make([]float64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	bw := bufio.NewWriter(w)
	bw.WriteString("t_s")
	for _, name := range names {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	bw.WriteByte('\n')

	// Per-series cursor into its (ascending) time array.
	cursor := make([]int, len(names))
	for _, t := range times {
		bw.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		for i, name := range names {
			s := snaps[name]
			bw.WriteByte(',')
			if c := cursor[i]; c < len(s.Times) && s.Times[c] == t {
				bw.WriteString(strconv.FormatFloat(s.Values[c], 'g', -1, 64))
				cursor[i]++
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
