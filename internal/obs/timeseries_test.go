package obs

import (
	"bytes"
	"testing"
)

func TestTimeSeriesDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	if r.SeriesWindow() != 0 {
		t.Fatalf("fresh registry SeriesWindow = %v", r.SeriesWindow())
	}
	if ts := r.TimeSeries("pkg.util.series"); ts != nil {
		t.Fatal("TimeSeries returned non-nil before EnableTimeSeries")
	}
	var nilTS *TimeSeries
	nilTS.Observe(0, 1) // must not panic
	if nilTS.Len() != 0 {
		t.Fatal("nil series recorded an observation")
	}
}

func TestTimeSeriesWindowingLastWins(t *testing.T) {
	r := NewRegistry()
	r.EnableTimeSeries(0.5)
	r.EnableTimeSeries(0.1) // first call wins
	if r.SeriesWindow() != 0.5 {
		t.Fatalf("SeriesWindow = %v, want 0.5", r.SeriesWindow())
	}
	ts := r.TimeSeries("pkg.util.series")
	ts.Observe(0.1, 1)  // window 0
	ts.Observe(0.4, 2)  // window 0 again: last wins
	ts.Observe(1.2, 3)  // window 2 (window 1 skipped)
	ts.Observe(0.05, 9) // stale window: dropped
	s := r.Snapshot().Series["pkg.util.series"]
	if s.WindowSec != 0.5 {
		t.Fatalf("WindowSec = %v", s.WindowSec)
	}
	wantT := []float64{0, 1}
	wantV := []float64{2, 3}
	if len(s.Times) != 2 || s.Times[0] != wantT[0] || s.Times[1] != wantT[1] ||
		s.Values[0] != wantV[0] || s.Values[1] != wantV[1] {
		t.Fatalf("series = %v @ %v, want %v @ %v", s.Values, s.Times, wantV, wantT)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	r := NewRegistry()
	r.EnableTimeSeries(1)
	a := r.TimeSeries("pkg.alpha.series")
	b := r.TimeSeries("pkg.beta.series")
	a.Observe(0, 1)
	a.Observe(2, 3)
	b.Observe(1, 10)
	b.Observe(2, 20)
	var buf bytes.Buffer
	if err := r.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_s,pkg.alpha.series,pkg.beta.series\n" +
		"0,1,\n" +
		"1,,10\n" +
		"2,3,20\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}

	// Identical registries render identical bytes.
	var buf2 bytes.Buffer
	if err := r.WriteSeriesCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestWriteSeriesCSVNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "t_s\n" {
		t.Fatalf("nil registry CSV = %q", buf.String())
	}
}
