package obs

import "testing"

func TestOpTimerStageAccumulation(t *testing.T) {
	r := NewRegistry()
	r.EnableOpTimers()
	set := r.OpTimerSet("pfs.write")
	if set == nil {
		t.Fatal("OpTimerSet nil after EnableOpTimers")
	}
	ot := set.Start(10)
	ot.Add(StageNet, 0.25)
	ot.Add(StageNet, 0.25)
	ot.Add(StageDiskSeek, 0.1)
	if got := ot.Stage(StageNet); got != 0.5 {
		t.Fatalf("StageNet = %v, want 0.5", got)
	}
	set.Observe(ot, 12)
	s := r.Snapshot()
	total := s.Quantiles["pfs.write.latency_s"]
	if total.Count != 1 || total.Max != 2 {
		t.Fatalf("latency_s = %+v, want count 1 max 2", total)
	}
	if q := s.Quantiles["pfs.write.stage.net_s"]; q.Max != 0.5 {
		t.Fatalf("stage.net_s max = %v, want 0.5", q.Max)
	}
	// Zero stages still join the population so quantiles are comparable.
	if q := s.Quantiles["pfs.write.stage.backoff_s"]; q.Count != 1 || q.Max != 0 {
		t.Fatalf("stage.backoff_s = %+v, want count 1 max 0", q)
	}
	if n := s.Counters["pfs.write.bottleneck.net"]; n != 1 {
		t.Fatalf("bottleneck.net = %d, want 1", n)
	}
}

func TestOpTimerBottleneckTiesBreakLow(t *testing.T) {
	r := NewRegistry()
	r.EnableOpTimers()
	set := r.OpTimerSet("pfs.read")
	ot := set.Start(0)
	ot.Add(StageQueue, 1)
	ot.Add(StageDiskTransfer, 1) // tie: lower index (queue) wins
	set.Observe(ot, 2)
	// An all-zero timer counts toward no bottleneck.
	set.Observe(set.Start(5), 5)
	s := r.Snapshot()
	if n := s.Counters["pfs.read.bottleneck.queue"]; n != 1 {
		t.Fatalf("bottleneck.queue = %d, want 1", n)
	}
	if n := s.Counters["pfs.read.bottleneck.disk_transfer"]; n != 0 {
		t.Fatalf("bottleneck.disk_transfer = %d, want 0", n)
	}
	if total := s.Quantiles["pfs.read.latency_s"]; total.Count != 2 {
		t.Fatalf("latency count = %d, want 2", total.Count)
	}
}

func TestOpTimerSetDisabledAndNil(t *testing.T) {
	r := NewRegistry()
	if set := r.OpTimerSet("pfs.write"); set != nil {
		t.Fatal("OpTimerSet non-nil before EnableOpTimers")
	}
	var set *OpTimerSet
	ot := set.Start(1)
	if ot != nil {
		t.Fatal("nil set Start returned a timer")
	}
	ot.Add(StageNet, 1) // nil timer: no-op
	set.Observe(ot, 2)  // nil set: no-op
	if got := ot.Stage(StageNet); got != 0 {
		t.Fatalf("nil timer Stage = %v", got)
	}
	var nr *Registry
	nr.EnableOpTimers()
	if nr.OpTimersEnabled() {
		t.Fatal("nil registry reports op timers enabled")
	}
}

func TestStageNamesMatchGrammar(t *testing.T) {
	for st := Stage(0); st < NumStages; st++ {
		name := st.String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has no name", st)
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_') {
				t.Fatalf("stage name %q has illegal rune %q", name, c)
			}
		}
	}
	if NumStages.String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
}

// TestDisabledProbesAllocateNothing is the zero-overhead contract: with
// analytics disabled every hot-path probe must be a branch, not an
// allocation.
func TestDisabledProbesAllocateNothing(t *testing.T) {
	var set *OpTimerSet
	var q *Quantile
	var ts *TimeSeries
	if n := testing.AllocsPerRun(100, func() {
		ot := set.Start(1)
		ot.Add(StageNet, 0.5)
		ot.Add(StageQueue, 0.1)
		set.Observe(ot, 2)
		q.Observe(3)
		ts.Observe(4, 5)
	}); n != 0 {
		t.Fatalf("disabled probes allocated %v times per run, want 0", n)
	}
}

func BenchmarkOpTimerObserve(b *testing.B) {
	r := NewRegistry()
	r.EnableOpTimers()
	set := r.OpTimerSet("bench.op")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ot := set.Start(float64(i))
		ot.Add(StageNet, 0.5)
		ot.Add(StageDiskTransfer, 1.5)
		set.Observe(ot, float64(i)+3)
	}
}

func BenchmarkOpTimerDisabled(b *testing.B) {
	var set *OpTimerSet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ot := set.Start(float64(i))
		ot.Add(StageNet, 0.5)
		set.Observe(ot, float64(i)+1)
	}
}
