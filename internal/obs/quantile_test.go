package obs

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"
)

// bruteRank is the reference nearest-rank quantile: the smallest sample
// such that at least q of the population is <= it.
func bruteRank(samples []float64, q float64) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	n := len(sorted)
	for i, v := range sorted {
		if float64(i+1)/float64(n) >= q {
			return v
		}
	}
	return sorted[n-1]
}

func TestQuantileExactAgainstBruteForce(t *testing.T) {
	// A deterministic but scrambled sample set (LCG, no global rand).
	for _, n := range []int{1, 2, 3, 10, 99, 100, 101, 1000} {
		r := NewRegistry()
		q := r.Quantile("test.latency_s")
		x := uint64(12345)
		var samples []float64
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			v := float64(x%1000000) / 1e6
			samples = append(samples, v)
			q.Observe(v)
		}
		s := r.Snapshot().Quantiles["test.latency_s"]
		if s.Count != uint64(n) {
			t.Fatalf("n=%d: Count = %d", n, s.Count)
		}
		var sum, min, max float64
		min, max = samples[0], samples[0]
		for _, v := range samples {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if math.Abs(s.Sum-sum) > 1e-12 || s.Min != min || s.Max != max {
			t.Fatalf("n=%d: sum/min/max = %v/%v/%v, want %v/%v/%v",
				n, s.Sum, s.Min, s.Max, sum, min, max)
		}
		for _, c := range []struct {
			q    float64
			got  float64
			name string
		}{
			{0.50, s.P50, "p50"}, {0.90, s.P90, "p90"},
			{0.99, s.P99, "p99"}, {0.999, s.P999, "p999"},
		} {
			if want := bruteRank(samples, c.q); c.got != want {
				t.Fatalf("n=%d: %s = %v, want %v", n, c.name, c.got, want)
			}
		}
	}
}

func TestQuantileNilSafe(t *testing.T) {
	var q *Quantile
	q.Observe(1)
	if q.Count() != 0 {
		t.Fatalf("nil quantile Count = %d", q.Count())
	}
	var r *Registry
	if r.Quantile("x.y") != nil {
		t.Fatal("nil registry returned a non-nil quantile")
	}
}

func TestSnapshotOmitsEmptyQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkg.ops.count").Inc()
	buf, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(buf), "quantiles") || strings.Contains(string(buf), "timeseries") {
		t.Fatalf("snapshot without analytics serialized analytics keys: %s", buf)
	}
	r.Quantile("pkg.latency.seconds").Observe(1)
	buf, err = json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), "quantiles") {
		t.Fatalf("snapshot with a quantile lost it: %s", buf)
	}
}

func BenchmarkQuantileObserve(b *testing.B) {
	r := NewRegistry()
	q := r.Quantile("bench.latency_s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Observe(float64(i))
	}
}
