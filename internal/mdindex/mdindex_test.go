package mdindex

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func u32(v uint32) *uint32 { return &v }
func i64(v int64) *int64   { return &v }

// synthesize builds a population with namespace locality: each project
// directory belongs to one owner and favors one extension — the property
// Spyglass partitions exploit.
func synthesize(nProjects, filesPer int, seed int64) []FileMeta {
	r := rand.New(rand.NewSource(seed))
	exts := []string{".h5", ".nc", ".dat", ".txt", ".bin"}
	var out []FileMeta
	for p := 0; p < nProjects; p++ {
		owner := uint32(p % 40)
		favored := exts[p%len(exts)]
		for f := 0; f < filesPer; f++ {
			ext := favored
			if r.Intn(10) == 0 {
				ext = exts[r.Intn(len(exts))]
			}
			out = append(out, FileMeta{
				Path:  fmt.Sprintf("/proj%03d/run%02d/file%04d%s", p, f%8, f, ext),
				Size:  int64(r.Intn(1 << 24)),
				MTime: int64(p*1e5 + f),
				Owner: owner,
				Ext:   ext,
			})
		}
	}
	return out
}

func TestQueryMatches(t *testing.T) {
	m := FileMeta{Path: "/a/b", Size: 100, MTime: 50, Owner: 7, Ext: ".h5"}
	cases := []struct {
		q    Query
		want bool
	}{
		{Query{}, true},
		{Query{Owner: u32(7)}, true},
		{Query{Owner: u32(8)}, false},
		{Query{Ext: ".h5"}, true},
		{Query{Ext: ".nc"}, false},
		{Query{MinSize: i64(100), MaxSize: i64(100)}, true},
		{Query{MinSize: i64(101)}, false},
		{Query{MaxSize: i64(99)}, false},
		{Query{MinMTime: i64(50), MaxMTime: i64(50)}, true},
		{Query{MaxMTime: i64(49)}, false},
	}
	for i, c := range cases {
		if got := c.q.Matches(m); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
}

func TestBuildAndCounts(t *testing.T) {
	records := synthesize(50, 100, 1)
	ix := Build(records, 1)
	if ix.Len() != len(records) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(records))
	}
	if ix.Partitions() != 50 {
		t.Fatalf("Partitions = %d, want 50 (one per project)", ix.Partitions())
	}
}

func TestInvalidDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("depth 0 did not panic")
		}
	}()
	Build(nil, 0)
}

func TestSearchEqualsFlatScan(t *testing.T) {
	records := synthesize(40, 80, 2)
	ix := Build(records, 1)
	queries := []Query{
		{Owner: u32(3)},
		{Ext: ".h5"},
		{Owner: u32(5), Ext: ".nc"},
		{MinSize: i64(1 << 22)},
		{MinMTime: i64(100000), MaxMTime: i64(300000)},
		{Owner: u32(1), MinSize: i64(1000), MaxSize: i64(1 << 20)},
		{Owner: u32(9999)}, // no matches
	}
	for qi, q := range queries {
		got := ix.Search(q)
		want := FlatScan(records, q)
		if len(got) != len(want) {
			t.Fatalf("query %d: index %d results, flat scan %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: result %d differs: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestSearchEqualsFlatScanProperty(t *testing.T) {
	records := synthesize(20, 50, 3)
	ix := Build(records, 1)
	f := func(owner uint8, minSz uint32, span uint16) bool {
		q := Query{
			Owner:   u32(uint32(owner % 40)),
			MinSize: i64(int64(minSz % (1 << 24))),
		}
		maxSz := *q.MinSize + int64(span)*256
		q.MaxSize = &maxSz
		got := ix.Search(q)
		want := FlatScan(records, q)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveQueriesPruneMostPartitions(t *testing.T) {
	// The Spyglass claim rests on pruning: an owner-selective query should
	// touch only that owner's project partitions.
	records := synthesize(100, 100, 4)
	ix := Build(records, 1)
	ix.Search(Query{Owner: u32(7)})
	scanned, pruned := ix.PartitionsScanned, ix.PartitionsPruned
	if scanned+pruned != 100 {
		t.Fatalf("scanned %d + pruned %d != 100", scanned, pruned)
	}
	// Owner 7 owns ~1/40 of projects.
	if scanned > 10 {
		t.Fatalf("scanned %d partitions, want few (signatures should prune)", scanned)
	}
}

func TestRebuildPartition(t *testing.T) {
	records := synthesize(10, 20, 5)
	ix := Build(records, 1)
	before := ix.Search(Query{Owner: u32(3)})
	n, err := ix.RebuildPartition("proj003")
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("rebuilt %d records, want 20", n)
	}
	if ix.Len() != len(records) {
		t.Fatalf("Len after rebuild = %d", ix.Len())
	}
	after := ix.Search(Query{Owner: u32(3)})
	if len(before) != len(after) {
		t.Fatalf("results changed after rebuild: %d vs %d", len(before), len(after))
	}
	if _, err := ix.RebuildPartition("no-such"); err == nil {
		t.Fatal("rebuilding unknown partition should error")
	}
}

func TestDeeperPartitioningStillCorrect(t *testing.T) {
	records := synthesize(10, 80, 6)
	for depth := 1; depth <= 3; depth++ {
		ix := Build(records, depth)
		got := ix.Search(Query{Ext: ".h5"})
		want := FlatScan(records, Query{Ext: ".h5"})
		if len(got) != len(want) {
			t.Fatalf("depth %d: %d vs %d results", depth, len(got), len(want))
		}
	}
}
