// Package mdindex implements the PDSI/UCSC scalable metadata-search
// exploration (Spyglass, Leung et al. FAST'09; §4.2.2 "Content Indexing"
// of the report): file system metadata is divided into namespace
// partitions, each carrying a small summary ("signature") of its
// contents; a query consults the summaries and scans only the partitions
// that might hold matches. Because HEC metadata queries are highly
// selective and metadata has strong namespace locality, the partitioned
// index answers searches 10-1000x faster than a flat scan of a
// database-style table, degrades gracefully (a damaged partition is
// rebuilt alone), and uses far less space than a general DBMS index.
package mdindex

import (
	"fmt"
	"sort"
	"strings"
)

// FileMeta is one file's searchable metadata record.
type FileMeta struct {
	Path  string
	Size  int64
	MTime int64 // seconds
	Owner uint32
	Ext   string // normalized extension, e.g. ".h5"
}

// Query is a conjunctive metadata predicate; zero-valued fields are
// wildcards. Ranges are inclusive.
type Query struct {
	Owner    *uint32
	Ext      string
	MinSize  *int64
	MaxSize  *int64
	MinMTime *int64
	MaxMTime *int64
}

// Matches evaluates the predicate on one record.
func (q Query) Matches(m FileMeta) bool {
	if q.Owner != nil && m.Owner != *q.Owner {
		return false
	}
	if q.Ext != "" && m.Ext != q.Ext {
		return false
	}
	if q.MinSize != nil && m.Size < *q.MinSize {
		return false
	}
	if q.MaxSize != nil && m.Size > *q.MaxSize {
		return false
	}
	if q.MinMTime != nil && m.MTime < *q.MinMTime {
		return false
	}
	if q.MaxMTime != nil && m.MTime > *q.MaxMTime {
		return false
	}
	return true
}

// partition is one namespace subtree's records plus its signature.
type partition struct {
	prefix  string
	records []FileMeta

	// Signature: cheap bounds and small-set summaries consulted before any
	// record is touched.
	minSize, maxSize   int64
	minMTime, maxMTime int64
	owners             map[uint32]struct{}
	exts               map[string]struct{}
}

func (p *partition) absorb(m FileMeta) {
	if len(p.records) == 0 {
		p.minSize, p.maxSize = m.Size, m.Size
		p.minMTime, p.maxMTime = m.MTime, m.MTime
	} else {
		if m.Size < p.minSize {
			p.minSize = m.Size
		}
		if m.Size > p.maxSize {
			p.maxSize = m.Size
		}
		if m.MTime < p.minMTime {
			p.minMTime = m.MTime
		}
		if m.MTime > p.maxMTime {
			p.maxMTime = m.MTime
		}
	}
	p.owners[m.Owner] = struct{}{}
	p.exts[m.Ext] = struct{}{}
	p.records = append(p.records, m)
}

// mayMatch consults only the signature.
func (p *partition) mayMatch(q Query) bool {
	if len(p.records) == 0 {
		return false
	}
	if q.Owner != nil {
		if _, ok := p.owners[*q.Owner]; !ok {
			return false
		}
	}
	if q.Ext != "" {
		if _, ok := p.exts[q.Ext]; !ok {
			return false
		}
	}
	if q.MinSize != nil && p.maxSize < *q.MinSize {
		return false
	}
	if q.MaxSize != nil && p.minSize > *q.MaxSize {
		return false
	}
	if q.MinMTime != nil && p.maxMTime < *q.MinMTime {
		return false
	}
	if q.MaxMTime != nil && p.minMTime > *q.MaxMTime {
		return false
	}
	return true
}

// Index is the partitioned metadata index.
type Index struct {
	depth      int
	partitions map[string]*partition
	// ordered caches the sorted partition keys; rebuilt lazily after
	// inserts so Search never re-sorts the namespace.
	ordered []string
	dirty   bool
	total   int

	// PartitionsScanned counts partitions whose records were touched by
	// queries; RecordsScanned the records evaluated (for the
	// pruning-effectiveness metrics).
	PartitionsScanned int64
	PartitionsPruned  int64
	RecordsScanned    int64
}

// Build partitions records by the first depth path components (namespace
// locality is what makes the signatures selective).
func Build(records []FileMeta, depth int) *Index {
	if depth < 1 {
		panic(fmt.Sprintf("mdindex: depth %d < 1", depth))
	}
	ix := &Index{depth: depth, partitions: make(map[string]*partition)}
	for _, m := range records {
		ix.Insert(m)
	}
	return ix
}

// partitionKey extracts the partition prefix of a path.
func (ix *Index) partitionKey(path string) string {
	trimmed := strings.TrimPrefix(path, "/")
	parts := strings.Split(trimmed, "/")
	if len(parts) > ix.depth {
		parts = parts[:ix.depth]
	}
	return strings.Join(parts, "/")
}

// Insert adds one record.
func (ix *Index) Insert(m FileMeta) {
	key := ix.partitionKey(m.Path)
	p, ok := ix.partitions[key]
	if !ok {
		p = &partition{
			prefix: key,
			owners: make(map[uint32]struct{}),
			exts:   make(map[string]struct{}),
		}
		ix.partitions[key] = p
		ix.dirty = true
	}
	p.absorb(m)
	ix.total++
}

// Len reports total indexed records; Partitions the partition count.
func (ix *Index) Len() int        { return ix.total }
func (ix *Index) Partitions() int { return len(ix.partitions) }

// Search returns every record matching q, consulting signatures first.
// Results are sorted by path for deterministic output.
func (ix *Index) Search(q Query) []FileMeta {
	if ix.dirty {
		ix.ordered = ix.ordered[:0]
		for k := range ix.partitions {
			ix.ordered = append(ix.ordered, k)
		}
		sort.Strings(ix.ordered)
		ix.dirty = false
	}
	var out []FileMeta
	for _, k := range ix.ordered {
		p := ix.partitions[k]
		if !p.mayMatch(q) {
			ix.PartitionsPruned++
			continue
		}
		ix.PartitionsScanned++
		ix.RecordsScanned += int64(len(p.records))
		for _, m := range p.records {
			if q.Matches(m) {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// RebuildPartition drops and re-inserts one partition's records — the
// report's reliability point: "failures in a portion of the index only
// require that portion to be rebuilt". It returns how many records were
// rebuilt, or an error for an unknown prefix.
func (ix *Index) RebuildPartition(prefix string) (int, error) {
	p, ok := ix.partitions[prefix]
	if !ok {
		return 0, fmt.Errorf("mdindex: no partition %q", prefix)
	}
	records := p.records
	ix.total -= len(records)
	delete(ix.partitions, prefix)
	ix.dirty = true
	for _, m := range records {
		ix.Insert(m)
	}
	return len(records), nil
}

// FlatScan is the database-table baseline: evaluate the predicate on every
// record. It returns sorted results identical to Search's.
func FlatScan(records []FileMeta, q Query) []FileMeta {
	var out []FileMeta
	for _, m := range records {
		if q.Matches(m) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
